//! Property-based tests of the autodiff engine: every differentiable
//! op and several random compositions are validated against central
//! finite differences, and algebraic identities of the matrix layer are
//! checked on arbitrary inputs.

use pnc::autodiff::gradcheck::check_gradient;
use pnc::autodiff::Tape;
use pnc::linalg::Matrix;
use proptest::prelude::*;

/// Strategy: a small matrix with entries in a comfortable range (away
/// from kinks and overflow).
fn small_matrix(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(-2.0..2.0f64, rows * cols)
        .prop_map(move |v| Matrix::from_vec(rows, cols, v))
}

/// Keeps values away from the |x| and relu kinks so finite differences
/// are valid.
fn away_from_kinks(m: &Matrix) -> bool {
    m.as_slice().iter().all(|&x| x.abs() > 1e-3)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn smooth_unary_chain_gradcheck(m in small_matrix(2, 3)) {
        let rep = check_gradient(&m, 1e-6, |t, p| {
            let a = t.tanh(p);
            let b = t.sigmoid(a);
            let c = t.exp(b);
            let d = t.square(c);
            t.mean_all(d)
        });
        prop_assert!(rep.passes(1e-5), "{rep:?}");
    }

    #[test]
    fn kinked_ops_gradcheck(m in small_matrix(3, 2).prop_filter("kinks", away_from_kinks)) {
        let rep = check_gradient(&m, 1e-7, |t, p| {
            let a = t.abs(p);
            let b = t.relu(p);
            let s = t.add(a, b);
            t.sum_all(s)
        });
        prop_assert!(rep.passes(1e-5), "{rep:?}");
    }

    #[test]
    fn matmul_with_broadcast_gradcheck(m in small_matrix(3, 2)) {
        let rep = check_gradient(&m, 1e-6, |t, p| {
            let w = t.constant(Matrix::from_rows(&[&[0.5, -1.0, 0.25], &[2.0, 0.1, -0.3]]));
            let y = t.matmul(p, w);              // 3×3
            let row = t.constant(Matrix::row(&[1.0, 2.0, 3.0]));
            let y = t.add_row(y, row);
            let den = t.constant(Matrix::row(&[2.0, 4.0, 8.0]));
            let y = t.div_row(y, den);
            let sq = t.square(y);
            t.sum_all(sq)
        });
        prop_assert!(rep.passes(1e-5), "{rep:?}");
    }

    #[test]
    fn softmax_ce_gradcheck(m in small_matrix(4, 3)) {
        let labels = vec![0usize, 1, 2, 1];
        let rep = check_gradient(&m, 1e-6, move |t, p| {
            t.softmax_cross_entropy(p, &labels)
        });
        prop_assert!(rep.passes(1e-6), "{rep:?}");
    }

    #[test]
    fn division_and_recip_gradcheck(m in small_matrix(2, 2)
        .prop_filter("nonzero", |m| m.as_slice().iter().all(|&x| x.abs() > 0.2))) {
        let rep = check_gradient(&m, 1e-7, |t, p| {
            let r = t.recip(p);
            let q = t.div(p, r); // p² element-wise, via division
            t.sum_all(q)
        });
        prop_assert!(rep.passes(1e-4), "{rep:?}");
    }

    #[test]
    fn scalar_broadcast_ops_gradcheck(m in small_matrix(1, 4)) {
        let rep = check_gradient(&m, 1e-6, |t, p| {
            // Build a scalar from the parameter itself, then broadcast.
            let s = t.mean_all(p);
            let shifted = t.shift_by(p, s);
            let scaled = t.scale_by(shifted, s);
            let sq = t.square(scaled);
            t.sum_all(sq)
        });
        prop_assert!(rep.passes(1e-5), "{rep:?}");
    }

    #[test]
    fn maxes_gradcheck_off_ties(m in small_matrix(3, 3)
        .prop_filter("distinct", |m| {
            // Require clear gaps so the argmax is stable under ±ε.
            for j in 0..3 {
                let mut col: Vec<f64> = (0..3).map(|i| m[(i, j)]).collect();
                col.sort_by(|a, b| a.partial_cmp(b).unwrap());
                if col[2] - col[1] < 1e-3 { return false; }
            }
            for i in 0..3 {
                let mut row: Vec<f64> = (0..3).map(|j| m[(i, j)]).collect();
                row.sort_by(|a, b| a.partial_cmp(b).unwrap());
                if row[2] - row[1] < 1e-3 { return false; }
            }
            true
        })) {
        let rep = check_gradient(&m, 1e-7, |t, p| {
            let cm = t.col_max(p);
            let rm = t.row_max(p);
            let a = t.sum_all(cm);
            let b = t.sum_all(rm);
            t.add(a, b)
        });
        prop_assert!(rep.passes(1e-5), "{rep:?}");
    }

    // ------------------------------------------------------------------
    // Matrix algebra identities.
    // ------------------------------------------------------------------

    #[test]
    fn matmul_is_associative(a in small_matrix(2, 3), b in small_matrix(3, 2), c in small_matrix(2, 2)) {
        let left = a.matmul(&b).matmul(&c);
        let right = a.matmul(&b.matmul(&c));
        prop_assert!(left.approx_eq(&right, 1e-9));
    }

    #[test]
    fn transpose_reverses_products(a in small_matrix(2, 3), b in small_matrix(3, 4)) {
        let lhs = a.matmul(&b).transpose();
        let rhs = b.transpose().matmul(&a.transpose());
        prop_assert!(lhs.approx_eq(&rhs, 1e-10));
    }

    #[test]
    fn fused_transpose_products_agree(a in small_matrix(3, 2), b in small_matrix(3, 4)) {
        let fused = a.t_matmul(&b).unwrap();
        let explicit = a.transpose().matmul(&b);
        prop_assert!(fused.approx_eq(&explicit, 1e-10));
    }

    #[test]
    fn lu_solve_inverts(a in small_matrix(3, 3)
        .prop_filter("well-conditioned", |m| {
            pnc::linalg::decomp::Lu::new(m).map(|lu| lu.det().abs() > 0.1).unwrap_or(false)
        }), x in proptest::collection::vec(-2.0..2.0f64, 3)) {
        let b = a.matvec(&x);
        let solved = pnc::linalg::decomp::solve(&a, &b).unwrap();
        for (s, t) in solved.iter().zip(&x) {
            prop_assert!((s - t).abs() < 1e-6, "{solved:?} vs {x:?}");
        }
    }

    #[test]
    fn backward_accumulates_like_sum_rule(m in small_matrix(2, 2)) {
        // d(f+f)/dx == 2 df/dx
        let mut t1 = Tape::new();
        let p1 = t1.parameter(m.clone());
        let a = t1.tanh(p1);
        let s = t1.sum_all(a);
        let g1 = t1.backward(s);

        let mut t2 = Tape::new();
        let p2 = t2.parameter(m.clone());
        let a2 = t2.tanh(p2);
        let s2 = t2.sum_all(a2);
        let doubled = t2.add(s2, s2);
        let g2 = t2.backward(doubled);

        let lhs = g2.expect(p2);
        let rhs = g1.expect(p1).scale(2.0);
        prop_assert!(lhs.approx_eq(&rhs, 1e-12));
    }
}
