//! Cross-crate integration tests: the full pipeline through the `pnc`
//! facade — SPICE characterization → surrogates → network → constrained
//! training → pruning → evaluation.

use pnc::circuit::activation::{fit_negation_model, LearnableActivation, SurrogateFidelity};
use pnc::circuit::{NetworkConfig, PrintedNetwork};
use pnc::datasets::{Dataset, DatasetId};
use pnc::spice::AfKind;
use pnc::surrogate::NegationModel;
use pnc::train::auglag::{hard_power, train_auglag, AugLagConfig};
use pnc::train::finetune::finetune;
use pnc::train::trainer::{fit_cross_entropy, DataRefs, TrainConfig};
use std::sync::OnceLock;

/// One shared smoke-fidelity surrogate bundle for the whole file.
fn parts() -> &'static (LearnableActivation, NegationModel) {
    static CELL: OnceLock<(LearnableActivation, NegationModel)> = OnceLock::new();
    CELL.get_or_init(|| {
        let act = LearnableActivation::fit(AfKind::PTanh, &SurrogateFidelity::smoke())
            .expect("surrogate fit");
        let neg = fit_negation_model(9).expect("negation fit");
        (act, neg)
    })
}

fn make_net(inputs: usize, outputs: usize, seed: u64) -> PrintedNetwork {
    let (act, neg) = parts().clone();
    let mut rng = pnc::linalg::rng::seeded(seed);
    PrintedNetwork::new(
        inputs,
        outputs,
        NetworkConfig::default(),
        act,
        neg,
        &mut rng,
    )
    .expect("positive widths")
}

#[test]
fn constrained_training_is_feasible_and_learns() {
    let ds = Dataset::generate(DatasetId::Iris, 1);
    let split = ds.split(1);
    let data = DataRefs::from_split(&split);

    let mut reference = make_net(4, 3, 5);
    fit_cross_entropy(&mut reference, &data, &TrainConfig::smoke()).unwrap();
    let p_max = hard_power(&reference, data.x_train).unwrap();

    let budget = 0.4 * p_max;
    let mut net = make_net(4, 3, 5);
    let report = train_auglag(&mut net, &data, &AugLagConfig::smoke(budget)).unwrap();

    assert!(report.feasible, "must satisfy the budget: {report:?}");
    assert!(hard_power(&net, data.x_train).unwrap() <= budget * 1.0001);
    let acc = net.accuracy(&split.test.x, &split.test.labels).unwrap();
    assert!(acc > 0.4, "should beat chance clearly: {acc}");
}

#[test]
fn finetune_preserves_feasibility_end_to_end() {
    let ds = Dataset::generate(DatasetId::Seeds, 2);
    let split = ds.split(2);
    let data = DataRefs::from_split(&split);

    let mut reference = make_net(7, 3, 6);
    fit_cross_entropy(&mut reference, &data, &TrainConfig::smoke()).unwrap();
    let budget = 0.5 * hard_power(&reference, data.x_train).unwrap();

    let mut net = make_net(7, 3, 6);
    train_auglag(&mut net, &data, &AugLagConfig::smoke(budget)).unwrap();
    let ft = finetune(&mut net, &data, budget, &TrainConfig::smoke()).unwrap();
    assert!(ft.feasible, "{ft:?}");
    assert!(hard_power(&net, data.x_train).unwrap() <= budget * 1.0001);
}

#[test]
fn pipeline_is_deterministic() {
    let run = || {
        let ds = Dataset::generate(DatasetId::Iris, 3);
        let split = ds.split(3);
        let data = DataRefs::from_split(&split);
        let mut net = make_net(4, 3, 7);
        let report = train_auglag(&mut net, &data, &AugLagConfig::smoke(5e-5)).unwrap();
        (
            report.power_watts,
            report.val_accuracy,
            net.param_values()[0].clone(),
        )
    };
    let (p1, a1, t1) = run();
    let (p2, a2, t2) = run();
    assert_eq!(p1, p2);
    assert_eq!(a1, a2);
    assert_eq!(t1, t2);
}

#[test]
fn tighter_budgets_never_raise_power() {
    let ds = Dataset::generate(DatasetId::Iris, 4);
    let split = ds.split(4);
    let data = DataRefs::from_split(&split);

    let mut reference = make_net(4, 3, 8);
    fit_cross_entropy(&mut reference, &data, &TrainConfig::smoke()).unwrap();
    let p_max = hard_power(&reference, data.x_train).unwrap();

    let mut powers = Vec::new();
    for frac in [0.2, 0.8] {
        let mut net = make_net(4, 3, 8);
        let report = train_auglag(&mut net, &data, &AugLagConfig::smoke(frac * p_max)).unwrap();
        assert!(report.feasible, "frac {frac}: {report:?}");
        powers.push(report.power_watts);
    }
    assert!(
        powers[0] <= powers[1] * 1.05,
        "20% budget should not burn more than 80%: {powers:?}"
    );
}

#[test]
fn all_four_activation_kinds_train_feasibly() {
    let ds = Dataset::generate(DatasetId::Iris, 5);
    let split = ds.split(5);
    let data = DataRefs::from_split(&split);
    let neg = parts().1;

    for kind in AfKind::ALL {
        let act = LearnableActivation::fit(kind, &SurrogateFidelity::smoke())
            .unwrap_or_else(|e| panic!("{}: {e}", kind.name()));
        let mut rng = pnc::linalg::rng::seeded(9);
        let mut net =
            PrintedNetwork::new(4, 3, NetworkConfig::default(), act, neg, &mut rng).unwrap();
        let p0 = hard_power(&net, data.x_train).unwrap();
        let cfg = AugLagConfig {
            outer_iters: 2,
            inner: TrainConfig {
                max_epochs: 30,
                ..TrainConfig::smoke()
            },
            ..AugLagConfig::smoke(0.6 * p0)
        };
        let report = train_auglag(&mut net, &data, &cfg).unwrap();
        assert!(
            report.feasible,
            "{} failed to satisfy its budget: {report:?}",
            kind.name()
        );
    }
}

#[test]
fn facade_reexports_are_usable() {
    // Compile-time check that every subsystem is reachable through the
    // facade, plus a tiny smoke usage of each.
    let m = pnc::linalg::Matrix::identity(3);
    assert_eq!(m.sum(), 3.0);

    let mut tape = pnc::autodiff::Tape::new();
    let v = tape.parameter(pnc::linalg::Matrix::filled(1, 1, 2.0));
    let s = tape.square(v);
    assert_eq!(tape.scalar(s), 4.0);

    let mut c = pnc::spice::Circuit::new();
    let n = c.node("n");
    c.vsource(n, pnc::spice::Circuit::GROUND, 1.0);
    c.resistor(n, pnc::spice::Circuit::GROUND, 1000.0);
    let op = pnc::spice::solve_dc(&c).expect("divider solves");
    assert!((op.voltage(n) - 1.0).abs() < 1e-9);

    let ds = Dataset::generate(DatasetId::Iris, 1);
    assert_eq!(ds.features(), 4);

    let front = pnc::train::pareto::pareto_front(&[]);
    assert!(front.is_empty());
}
