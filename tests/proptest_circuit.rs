//! Property-based tests of circuit-level invariants: crossbar outputs
//! stay inside physical voltage bounds, power is nonnegative and
//! monotone under pruning, device counts behave like counts, and the
//! SPICE solver respects conservation laws on random ladder networks.

use pnc::autodiff::Tape;
use pnc::circuit::count::{hard_af_count, hard_neg_count, soft_af_count, CountConfig};
use pnc::circuit::crossbar;
use pnc::linalg::Matrix;
use pnc::spice::dc::{residual_norm, solve_dc};
use pnc::spice::Circuit;
use pnc::surrogate::NegationModel;
use proptest::prelude::*;

fn theta_strategy(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(-0.9..0.9f64, rows * cols)
        .prop_map(move |v| Matrix::from_vec(rows, cols, v))
}

fn input_strategy(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(-0.8..0.8f64, rows * cols)
        .prop_map(move |v| Matrix::from_vec(rows, cols, v))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn crossbar_output_is_bounded(theta in theta_strategy(5, 3), x in input_strategy(4, 3)) {
        // Normalized Kirchhoff mixing of voltages in [−1, 1] (plus the
        // 1 V bias) can never leave [−1, 1].
        let neg = NegationModel::ideal(1e-5);
        let mut tape = Tape::new();
        let xv = tape.constant(x);
        let tv = tape.parameter(theta);
        let out = crossbar::forward(&mut tape, xv, tv, &neg, None);
        let vz = tape.value(out.vz);
        prop_assert!(vz.min() >= -1.0 - 1e-9 && vz.max() <= 1.0 + 1e-9, "{vz:?}");
    }

    #[test]
    fn crossbar_power_is_nonnegative(theta in theta_strategy(6, 2), x in input_strategy(5, 4)) {
        let neg = NegationModel::ideal(1e-5);
        let p = crossbar::power_reference(&x, &theta, &neg);
        prop_assert!(p >= 0.0, "negative power {p}");
        prop_assert!(p.is_finite());
    }

    #[test]
    fn pruning_never_raises_crossbar_power(theta in theta_strategy(5, 3), x in input_strategy(4, 3)) {
        let neg = NegationModel::ideal(1e-5);
        let full = crossbar::power_reference(&x, &theta, &neg);
        // Zero the smallest-magnitude half of the entries.
        let mut mags: Vec<f64> = theta.as_slice().iter().map(|v| v.abs()).collect();
        mags.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let cut = mags[mags.len() / 2];
        let pruned_theta = theta.map(|v| if v.abs() <= cut { 0.0 } else { v });
        let pruned = crossbar::power_reference(&x, &pruned_theta, &neg);
        // Fewer conductances dissipate less (voltages shift, but the
        // quadratic form shrinks with the conductance set in practice;
        // allow a sliver for the normalization shift).
        prop_assert!(pruned <= full * 1.25 + 1e-12, "pruned {pruned} vs full {full}");
    }

    #[test]
    fn hard_counts_are_bounded_counts(theta in theta_strategy(6, 4)) {
        let cfg = CountConfig::default();
        let af = hard_af_count(&theta, &cfg);
        let neg = hard_neg_count(&theta, 4, &cfg);
        prop_assert!(af <= 4, "AF count exceeds outputs");
        prop_assert!(neg <= 4, "neg count exceeds inputs");
    }

    #[test]
    fn soft_count_upper_bounds_are_respected(theta in theta_strategy(6, 4)) {
        let cfg = CountConfig::default();
        let mut tape = Tape::new();
        let tv = tape.parameter(theta);
        let c = soft_af_count(&mut tape, tv, &cfg);
        let v = tape.scalar(c);
        prop_assert!((0.0..=4.0 + 1e-9).contains(&v), "soft AF count {v}");
    }

    #[test]
    fn soft_count_tracks_hard_count(theta in theta_strategy(6, 4)
        .prop_filter("entries decisive", |m| {
            m.as_slice().iter().all(|&v| v == 0.0 || v.abs() > 0.05)
        })) {
        let cfg = CountConfig::default();
        let hard = hard_af_count(&theta, &cfg) as f64;
        let mut tape = Tape::new();
        let tv = tape.parameter(theta);
        let c = soft_af_count(&mut tape, tv, &cfg);
        let soft = tape.scalar(c);
        prop_assert!((soft - hard).abs() < 0.1, "soft {soft} vs hard {hard}");
    }

    #[test]
    fn resistor_ladder_conserves_energy(resistances in proptest::collection::vec(1_000.0..1_000_000.0f64, 3..8),
                                        volts in 0.1..1.5f64) {
        // A random series ladder driven by one source: dissipated power
        // equals V²/R_total and equals delivered power.
        let mut c = Circuit::new();
        let top = c.node("top");
        c.vsource(top, Circuit::GROUND, volts);
        let mut prev = top;
        for (i, &r) in resistances.iter().enumerate() {
            let next = if i + 1 == resistances.len() {
                Circuit::GROUND
            } else {
                c.node("n")
            };
            c.resistor(prev, next, r);
            prev = next;
        }
        let op = solve_dc(&c).unwrap();
        prop_assert!(residual_norm(&c, &op) < 1e-9);
        let rep = pnc::spice::power::power_report(&c, &op);
        let r_total: f64 = resistances.iter().sum();
        let expect = volts * volts / r_total;
        prop_assert!((rep.dissipated_watts - expect).abs() < 1e-6 * expect,
            "dissipated {} vs expected {expect}", rep.dissipated_watts);
        prop_assert!((rep.delivered_watts - rep.dissipated_watts).abs() < 1e-4 * expect + 1e-15);
    }

    #[test]
    fn parallel_resistors_split_current(r1 in 1_000.0..100_000.0f64, r2 in 1_000.0..100_000.0f64) {
        let mut c = Circuit::new();
        let top = c.node("top");
        c.vsource(top, Circuit::GROUND, 1.0);
        c.resistor(top, Circuit::GROUND, r1);
        c.resistor(top, Circuit::GROUND, r2);
        let op = solve_dc(&c).unwrap();
        // Source supplies the sum of branch currents.
        let i = -op.source_current(0);
        let expect = 1.0 / r1 + 1.0 / r2;
        prop_assert!((i - expect).abs() < 1e-9 + 1e-6 * expect, "{i} vs {expect}");
    }

    #[test]
    fn negation_model_output_is_bounded(vals in proptest::collection::vec(-1.0..1.0f64, 1..20)) {
        let m = NegationModel::ideal(1e-5);
        for &v in &vals {
            let o = m.eval_scalar(v);
            prop_assert!((-1.0..=1.0).contains(&o), "neg({v}) = {o}");
        }
    }
}
