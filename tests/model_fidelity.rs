//! Model-fidelity integration tests: the differentiable abstraction,
//! the surrogate models and the transistor-level circuit must tell a
//! consistent story.

use pnc::circuit::activation::{fit_negation_model, LearnableActivation, SurrogateFidelity};
use pnc::circuit::export::export_network;
use pnc::circuit::{NetworkConfig, PrintedNetwork};
use pnc::linalg::{rng as lrng, Matrix};
use pnc::spice::af::{input_grid, mean_power, transfer_curve};
use pnc::spice::{AfDesign, AfKind};
use pnc::surrogate::NegationModel;
use std::sync::OnceLock;

fn parts() -> &'static (LearnableActivation, NegationModel) {
    static CELL: OnceLock<(LearnableActivation, NegationModel)> = OnceLock::new();
    CELL.get_or_init(|| {
        let act = LearnableActivation::fit(AfKind::PTanh, &SurrogateFidelity::smoke())
            .expect("surrogate fit");
        let neg = fit_negation_model(11).expect("negation fit");
        (act, neg)
    })
}

#[test]
fn transfer_surrogate_tracks_spice_across_designs() {
    let (act, _) = parts();
    let grid = input_grid(11);
    let vrow = Matrix::row(&grid);
    let mut worst = 0.0f64;
    // Interior designs only: the smoke-fidelity surrogate (24 Sobol
    // samples) is not expected to generalize to the extreme corners of
    // a 6-dimensional design space — the paper-scale fit (10,000
    // samples) covers those.
    for t in [0.4, 0.5, 0.6] {
        let q: Vec<f64> = AfKind::PTanh
            .bounds()
            .iter()
            .map(|&(lo, hi)| lo * (hi / lo).powf(t))
            .collect();
        let design = AfDesign::new(AfKind::PTanh, q.clone()).unwrap();
        let simulated = transfer_curve(&design, &grid).expect("spice");
        let predicted = act.transfer().eval(&vrow, &q);
        let rmse = (simulated
            .iter()
            .enumerate()
            .map(|(j, &y)| (predicted[(0, j)] - y).powi(2))
            .sum::<f64>()
            / grid.len() as f64)
            .sqrt();
        worst = worst.max(rmse);
    }
    assert!(worst < 0.25, "worst transfer RMSE across designs: {worst}");
}

#[test]
fn power_surrogate_tracks_spice_across_designs() {
    let (act, _) = parts();
    for t in [0.3, 0.5, 0.7] {
        let q: Vec<f64> = AfKind::PTanh
            .bounds()
            .iter()
            .map(|&(lo, hi)| lo * (hi / lo).powf(t))
            .collect();
        let design = AfDesign::new(AfKind::PTanh, q.clone()).unwrap();
        let simulated = mean_power(&design, 9).expect("spice");
        let predicted = act.power_surrogate().predict(&q);
        let ratio = (predicted / simulated).max(simulated / predicted);
        assert!(
            ratio < 3.0,
            "power surrogate off by {ratio:.2}× at t = {t} ({predicted:e} vs {simulated:e})"
        );
    }
}

#[test]
fn exported_circuit_agrees_with_abstraction_on_most_samples() {
    let (act, negm) = parts().clone();
    let mut rng = lrng::seeded(61);
    let net =
        PrintedNetwork::new(4, 3, NetworkConfig::default(), act, negm, &mut rng).expect("4-3-3");
    let exported = export_network(&net).expect("lowering");

    let x = lrng::uniform_matrix(&mut rng, 20, 4, -0.7, 0.7);
    let abstract_preds = net.predict(&x).expect("shapes match").row_argmax();
    let circuit_preds = exported.classify(&x).expect("full-circuit inference");
    let agree = abstract_preds
        .iter()
        .zip(&circuit_preds)
        .filter(|(a, b)| a == b)
        .count();
    assert!(
        agree * 2 >= x.rows(),
        "abstraction and circuit should agree on most samples: {agree}/{}",
        x.rows()
    );
}

#[test]
fn negation_surrogate_tracks_its_circuit() {
    let (_, negm) = parts();
    let inputs = input_grid(11);
    let simulated = pnc::spice::af::negation_transfer(&inputs).expect("spice");
    let mut worst = 0.0f64;
    for (i, &v) in inputs.iter().enumerate() {
        worst = worst.max((negm.eval_scalar(v) - simulated[i]).abs());
    }
    assert!(worst < 0.2, "negation surrogate max error {worst}");
}

#[test]
fn exported_stats_scale_with_topology() {
    let (act, negm) = parts().clone();
    let mut rng = lrng::seeded(67);
    let small = PrintedNetwork::new(3, 2, NetworkConfig::default(), act.clone(), negm, &mut rng)
        .expect("3-3-2");
    let mut rng = lrng::seeded(67);
    let large =
        PrintedNetwork::new(9, 5, NetworkConfig::default(), act, negm, &mut rng).expect("9-3-5");
    let s = export_network(&small).unwrap().stats();
    let l = export_network(&large).unwrap().stats();
    assert!(l.crossbar_resistors > s.crossbar_resistors);
    assert!(l.resistors > s.resistors);
}
