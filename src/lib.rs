//! # pnc — Power-Constrained Printed Neuromorphic Hardware Training
//!
//! Facade crate of the reproduction workspace. Re-exports every
//! subsystem so applications (and the `examples/` binaries) can depend
//! on a single crate:
//!
//! * [`linalg`] — dense matrices, LU/QR, Sobol sequences.
//! * [`autodiff`] — reverse-mode automatic differentiation + Adam.
//! * [`spice`] — nonlinear DC circuit simulation (nEGT compact model).
//! * [`surrogate`] — MLP surrogate power models fit on simulated data.
//! * [`circuit`] — printed neuromorphic circuits: crossbars, learnable
//!   activation circuits, power estimation, device counting.
//! * [`datasets`] — the 13 benchmark dataset generators.
//! * [`train`] — augmented Lagrangian constrained training, the
//!   penalty-based baseline, pruning/fine-tuning, and Pareto tooling.
//!
//! See `README.md` for a walkthrough and `DESIGN.md` for the
//! paper-to-module map.

#![forbid(unsafe_code)]

pub use pnc_autodiff as autodiff;
pub use pnc_core as circuit;
pub use pnc_datasets as datasets;
pub use pnc_linalg as linalg;
pub use pnc_spice as spice;
pub use pnc_surrogate as surrogate;
pub use pnc_train as train;
