//! `pnc-lint` CLI: `cargo run -p pnc-lint -- --check`.

use pnc_lint::baseline::Baseline;
use pnc_lint::engine::{apply_baseline, find_root, lint_workspace, render_json, LintError};
use pnc_lint::explain::explain;
use pnc_lint::rules::RULES;
use std::path::PathBuf;
use std::process::ExitCode;

enum Format {
    Text,
    Json,
}

struct Options {
    root: Option<PathBuf>,
    baseline: Option<PathBuf>,
    update_baseline: bool,
    list: bool,
    format: Format,
    explain: Option<String>,
}

const USAGE: &str = "pnc-lint — domain-specific static analysis for the pNC workspace

USAGE:
    cargo run -p pnc-lint -- --check [--root DIR] [--baseline FILE] [--format text|json]
    cargo run -p pnc-lint -- --update-baseline
    cargo run -p pnc-lint -- --list
    cargo run -p pnc-lint -- --explain L008

OPTIONS:
    --check              Run all rules; exit 1 on findings not in the baseline
    --update-baseline    Rewrite the baseline file from the current findings
    --baseline FILE      Baseline path (default: <root>/lint-baseline.txt)
    --root DIR           Workspace root (default: auto-detected)
    --format FMT         Output format for --check: text (default) or json
    --list               Print the rule catalogue and exit
    --explain RULE       Print rationale, examples and suppression syntax for a rule
";

fn parse_args(args: &[String]) -> Result<Options, LintError> {
    let mut opts = Options {
        root: None,
        baseline: None,
        update_baseline: false,
        list: false,
        format: Format::Text,
        explain: None,
    };
    let mut saw_mode = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--check" => saw_mode = true,
            "--update-baseline" => {
                saw_mode = true;
                opts.update_baseline = true;
            }
            "--list" => {
                saw_mode = true;
                opts.list = true;
            }
            "--explain" => {
                saw_mode = true;
                let v = it.next().ok_or_else(|| {
                    LintError::Usage("--explain needs a rule id (e.g. L008)".to_string())
                })?;
                opts.explain = Some(v.clone());
            }
            "--format" => {
                let v = it
                    .next()
                    .ok_or_else(|| LintError::Usage("--format needs a value".to_string()))?;
                opts.format = match v.as_str() {
                    "text" => Format::Text,
                    "json" => Format::Json,
                    other => {
                        return Err(LintError::Usage(format!(
                            "unknown format `{other}` (expected text or json)"
                        )))
                    }
                };
            }
            "--root" => {
                let v = it
                    .next()
                    .ok_or_else(|| LintError::Usage("--root needs a value".to_string()))?;
                opts.root = Some(PathBuf::from(v));
            }
            "--baseline" => {
                let v = it
                    .next()
                    .ok_or_else(|| LintError::Usage("--baseline needs a value".to_string()))?;
                opts.baseline = Some(PathBuf::from(v));
            }
            "--help" | "-h" => {
                return Err(LintError::Usage(USAGE.to_string()));
            }
            other => {
                return Err(LintError::Usage(format!(
                    "unrecognised argument `{other}`\n\n{USAGE}"
                )));
            }
        }
    }
    if !saw_mode {
        return Err(LintError::Usage(USAGE.to_string()));
    }
    Ok(opts)
}

fn run() -> Result<ExitCode, LintError> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = parse_args(&args)?;

    if opts.list {
        for (id, desc) in RULES {
            println!("{id}  {desc}");
        }
        return Ok(ExitCode::SUCCESS);
    }

    if let Some(rule) = &opts.explain {
        return match explain(rule) {
            Some(text) => {
                println!("{text}");
                Ok(ExitCode::SUCCESS)
            }
            None => Err(LintError::Usage(format!(
                "unknown rule `{rule}` — run --list for the catalogue"
            ))),
        };
    }

    let root = match &opts.root {
        Some(r) => r.clone(),
        None => {
            let cwd = std::env::current_dir().map_err(|source| LintError::Io {
                path: PathBuf::from("."),
                source,
            })?;
            find_root(&cwd).ok_or(LintError::NoWorkspaceRoot)?
        }
    };
    let baseline_path = opts
        .baseline
        .unwrap_or_else(|| root.join("lint-baseline.txt"));

    let run = lint_workspace(&root)?;

    if opts.update_baseline {
        let rendered = Baseline::render(&run.findings);
        std::fs::write(&baseline_path, rendered).map_err(|source| LintError::Io {
            path: baseline_path.clone(),
            source,
        })?;
        println!(
            "pnc-lint: wrote {} baseline entr{} to {} ({} files scanned)",
            run.findings.len(),
            if run.findings.len() == 1 { "y" } else { "ies" },
            baseline_path.display(),
            run.files_scanned
        );
        return Ok(ExitCode::SUCCESS);
    }

    let outcome = apply_baseline(&baseline_path, run.findings)?;
    if let Format::Json = opts.format {
        println!("{}", render_json(&outcome.new));
        return Ok(if outcome.new.is_empty() {
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        });
    }
    for f in &outcome.new {
        println!("{}:{}: [{}] {}", f.rel, f.line, f.rule, f.message);
        if !f.snippet.is_empty() {
            println!("    {}", f.snippet);
        }
    }
    if outcome.stale > 0 {
        println!(
            "pnc-lint: {} stale baseline entr{} — findings fixed; run \
             `cargo run -p pnc-lint -- --update-baseline` to burn the baseline down",
            outcome.stale,
            if outcome.stale == 1 { "y" } else { "ies" }
        );
    }
    println!(
        "pnc-lint: {} files scanned, {} new finding{}, {} baselined",
        run.files_scanned,
        outcome.new.len(),
        if outcome.new.len() == 1 { "" } else { "s" },
        outcome.baselined
    );
    if outcome.new.is_empty() {
        Ok(ExitCode::SUCCESS)
    } else {
        Ok(ExitCode::FAILURE)
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(LintError::Usage(msg)) => {
            eprintln!("{msg}");
            ExitCode::from(2)
        }
        Err(e) => {
            eprintln!("pnc-lint: error: {e}");
            ExitCode::from(2)
        }
    }
}
