//! A hand-rolled, comment/string/raw-string/char-literal aware Rust
//! lexer.
//!
//! The workspace builds offline, so `syn` is unavailable; the rules in
//! this crate only need a token stream that is *honest about what is
//! code* — text inside comments, string literals, raw strings, byte
//! strings and char literals must never masquerade as identifiers or
//! operators. The lexer therefore recognises every Rust literal form
//! that can contain arbitrary text, classifies numbers as integer or
//! float (the float-equality rule depends on it), and folds multi-char
//! operators (`==`, `!=`, `::`, `..`, …) into single tokens. It never
//! fails: unterminated literals simply extend to end of input, which is
//! the most useful behaviour for a linter that must not crash on the
//! code it is criticising.

/// Classification of a lexed token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (the rules match on spelling).
    Ident,
    /// A lifetime such as `'a` or `'static`.
    Lifetime,
    /// Integer literal (including hex/octal/binary and int-suffixed).
    Int,
    /// Float literal (`1.0`, `1e-6`, `2f64`, `1.`).
    Float,
    /// String literal of any form: `"…"`, `r#"…"#`, `b"…"`, `br"…"`.
    Str,
    /// Char or byte-char literal: `'x'`, `b'\n'`.
    Char,
    /// Punctuation; multi-char operators are one token.
    Punct,
}

/// One lexed token with its source line (1-based).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Kind of token.
    pub kind: TokenKind,
    /// Exact source text, including quotes/hashes for literals.
    pub text: String,
    /// 1-based line on which the token starts.
    pub line: u32,
}

impl Token {
    /// For [`TokenKind::Str`] tokens: the literal's inner text, with
    /// the `b`/`r`/`#` prefixes and the quotes stripped. Escapes are
    /// *not* processed — rules only compare raw spellings.
    pub fn string_content(&self) -> Option<&str> {
        if self.kind != TokenKind::Str {
            return None;
        }
        let s = self.text.strip_prefix('b').unwrap_or(&self.text);
        let s = s.strip_prefix('r').unwrap_or(s);
        let s = s.trim_start_matches('#').trim_end_matches('#');
        let s = s.strip_prefix('"').unwrap_or(s);
        Some(s.strip_suffix('"').unwrap_or(s))
    }
}

/// A comment, kept out of the token stream but preserved for the
/// suppression parser (`// lint: allow(…)` lives in comments).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Comment {
    /// 1-based line on which the comment starts.
    pub line: u32,
    /// Comment body without the `//` / `/*` markers.
    pub text: String,
}

/// Lexer output: code tokens plus the comments that were skipped.
#[derive(Debug, Clone, Default)]
pub struct LexOutput {
    /// Code tokens in source order.
    pub tokens: Vec<Token>,
    /// Comments in source order.
    pub comments: Vec<Comment>,
}

/// Multi-character operators, longest first so maximal munch wins.
const MULTI_PUNCT: &[&str] = &[
    "..=", "<<=", ">>=", "...", "::", "->", "=>", "==", "!=", "<=", ">=", "&&", "||", "<<", ">>",
    "+=", "-=", "*=", "/=", "%=", "^=", "&=", "|=", "..",
];

struct Cursor {
    chars: Vec<char>,
    pos: usize,
    line: u32,
}

impl Cursor {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.pos).copied();
        if let Some(c) = c {
            self.pos += 1;
            if c == '\n' {
                self.line += 1;
            }
        }
        c
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Lexes `source` into tokens and comments. Never fails; unterminated
/// literals run to end of input.
pub fn lex(source: &str) -> LexOutput {
    let mut cur = Cursor {
        chars: source.chars().collect(),
        pos: 0,
        line: 1,
    };
    let mut out = LexOutput::default();

    while let Some(c) = cur.peek(0) {
        let line = cur.line;
        match c {
            _ if c.is_whitespace() => {
                cur.bump();
            }
            '/' if cur.peek(1) == Some('/') => {
                let text = lex_line_comment(&mut cur);
                out.comments.push(Comment { line, text });
            }
            '/' if cur.peek(1) == Some('*') => {
                let text = lex_block_comment(&mut cur);
                out.comments.push(Comment { line, text });
            }
            '"' => {
                let text = lex_string(&mut cur);
                out.tokens.push(Token {
                    kind: TokenKind::Str,
                    text,
                    line,
                });
            }
            'r' | 'b' if starts_special_literal(&cur) => {
                let tok = lex_special_literal(&mut cur, line);
                out.tokens.push(tok);
            }
            '\'' => {
                let tok = lex_quote(&mut cur, line);
                out.tokens.push(tok);
            }
            _ if c.is_ascii_digit() => {
                let tok = lex_number(&mut cur, line);
                out.tokens.push(tok);
            }
            _ if is_ident_start(c) => {
                let mut text = String::new();
                while let Some(c) = cur.peek(0) {
                    if is_ident_continue(c) {
                        text.push(c);
                        cur.bump();
                    } else {
                        break;
                    }
                }
                out.tokens.push(Token {
                    kind: TokenKind::Ident,
                    text,
                    line,
                });
            }
            _ => {
                let text = lex_punct(&mut cur);
                out.tokens.push(Token {
                    kind: TokenKind::Punct,
                    text,
                    line,
                });
            }
        }
    }
    out
}

fn lex_line_comment(cur: &mut Cursor) -> String {
    cur.bump();
    cur.bump(); // consume `//`
    let mut text = String::new();
    while let Some(c) = cur.peek(0) {
        if c == '\n' {
            break;
        }
        text.push(c);
        cur.bump();
    }
    text
}

fn lex_block_comment(cur: &mut Cursor) -> String {
    cur.bump();
    cur.bump(); // consume `/*`
    let mut depth = 1usize;
    let mut text = String::new();
    while let Some(c) = cur.peek(0) {
        if c == '/' && cur.peek(1) == Some('*') {
            depth += 1;
            text.push_str("/*");
            cur.bump();
            cur.bump();
        } else if c == '*' && cur.peek(1) == Some('/') {
            depth -= 1;
            cur.bump();
            cur.bump();
            if depth == 0 {
                break;
            }
            text.push_str("*/");
        } else {
            text.push(c);
            cur.bump();
        }
    }
    text
}

fn lex_string(cur: &mut Cursor) -> String {
    let mut text = String::new();
    text.push('"');
    cur.bump();
    while let Some(c) = cur.peek(0) {
        if c == '\\' {
            text.push(c);
            cur.bump();
            if let Some(esc) = cur.bump() {
                text.push(esc);
            }
        } else if c == '"' {
            text.push(c);
            cur.bump();
            break;
        } else {
            text.push(c);
            cur.bump();
        }
    }
    text
}

/// True when the cursor sits on `r"`, `r#…"`, `b"`, `b'`, `br"` or
/// `br#…"` — i.e. a literal, not an identifier that begins with r/b.
fn starts_special_literal(cur: &Cursor) -> bool {
    let mut i = 0;
    if cur.peek(0) == Some('b') {
        if matches!(cur.peek(1), Some('\'') | Some('"')) {
            return true;
        }
        if cur.peek(1) != Some('r') {
            return false;
        }
        i = 1;
    }
    // `r"…"`, `r#…` (raw string or raw identifier — both handled by
    // `lex_special_literal`).
    cur.peek(i) == Some('r') && matches!(cur.peek(i + 1), Some('"') | Some('#'))
}

fn lex_special_literal(cur: &mut Cursor, line: u32) -> Token {
    let mut text = String::new();
    if cur.peek(0) == Some('b') {
        text.push('b');
        cur.bump();
        if cur.peek(0) == Some('\'') {
            let inner = lex_quote(cur, line);
            text.push_str(&inner.text);
            return Token {
                kind: TokenKind::Char,
                text,
                line,
            };
        }
        if cur.peek(0) == Some('"') {
            text.push_str(&lex_string(cur));
            return Token {
                kind: TokenKind::Str,
                text,
                line,
            };
        }
    }
    // Raw (possibly byte) string: r, hashes, quote … quote, hashes.
    if cur.peek(0) == Some('r') {
        text.push('r');
        cur.bump();
        let mut hashes = 0usize;
        while cur.peek(0) == Some('#') {
            text.push('#');
            hashes += 1;
            cur.bump();
        }
        if cur.peek(0) == Some('"') {
            text.push('"');
            cur.bump();
            loop {
                match cur.peek(0) {
                    None => break,
                    Some('"') => {
                        // Check for `"` followed by `hashes` hashes.
                        let mut ok = true;
                        for k in 0..hashes {
                            if cur.peek(1 + k) != Some('#') {
                                ok = false;
                                break;
                            }
                        }
                        text.push('"');
                        cur.bump();
                        if ok {
                            for _ in 0..hashes {
                                text.push('#');
                                cur.bump();
                            }
                            break;
                        }
                    }
                    Some(c) => {
                        text.push(c);
                        cur.bump();
                    }
                }
            }
            return Token {
                kind: TokenKind::Str,
                text,
                line,
            };
        }
        // `r#ident`: raw identifier. Fall through to lex the ident part.
        let mut ident = text;
        while let Some(c) = cur.peek(0) {
            if is_ident_continue(c) {
                ident.push(c);
                cur.bump();
            } else {
                break;
            }
        }
        return Token {
            kind: TokenKind::Ident,
            text: ident,
            line,
        };
    }
    // Unreachable by construction of `starts_special_literal`, but be
    // total: emit whatever single char is here as punctuation.
    if let Some(c) = cur.bump() {
        text.push(c);
    }
    Token {
        kind: TokenKind::Punct,
        text,
        line,
    }
}

/// Lexes a `'`-introduced token: lifetime or char literal.
fn lex_quote(cur: &mut Cursor, line: u32) -> Token {
    let mut text = String::new();
    text.push('\'');
    cur.bump();
    match cur.peek(0) {
        Some('\\') => {
            // Escaped char literal: consume escape then closing quote.
            text.push('\\');
            cur.bump();
            if let Some(esc) = cur.bump() {
                text.push(esc);
                if esc == 'u' && cur.peek(0) == Some('{') {
                    while let Some(c) = cur.bump() {
                        text.push(c);
                        if c == '}' {
                            break;
                        }
                    }
                }
            }
            if cur.peek(0) == Some('\'') {
                text.push('\'');
                cur.bump();
            }
            Token {
                kind: TokenKind::Char,
                text,
                line,
            }
        }
        Some(c) if is_ident_start(c) => {
            // `'a'` is a char literal; `'a`/`'static` are lifetimes.
            if cur.peek(1) == Some('\'') {
                text.push(c);
                cur.bump();
                text.push('\'');
                cur.bump();
                return Token {
                    kind: TokenKind::Char,
                    text,
                    line,
                };
            }
            while let Some(c) = cur.peek(0) {
                if is_ident_continue(c) {
                    text.push(c);
                    cur.bump();
                } else {
                    break;
                }
            }
            Token {
                kind: TokenKind::Lifetime,
                text,
                line,
            }
        }
        Some(c) => {
            // Non-alphabetic char literal such as `'+'` or `' '`.
            text.push(c);
            cur.bump();
            if cur.peek(0) == Some('\'') {
                text.push('\'');
                cur.bump();
            }
            Token {
                kind: TokenKind::Char,
                text,
                line,
            }
        }
        None => Token {
            kind: TokenKind::Punct,
            text,
            line,
        },
    }
}

fn lex_number(cur: &mut Cursor, line: u32) -> Token {
    let mut text = String::new();
    let mut is_float = false;

    // Radix-prefixed integers never contain a decimal point.
    if cur.peek(0) == Some('0')
        && matches!(cur.peek(1), Some('x') | Some('X') | Some('o') | Some('b'))
    {
        text.push('0');
        cur.bump();
        if let Some(p) = cur.bump() {
            text.push(p);
        }
        while let Some(c) = cur.peek(0) {
            if c.is_ascii_hexdigit() || c == '_' {
                text.push(c);
                cur.bump();
            } else {
                break;
            }
        }
        return finish_number(cur, text, false, line);
    }

    while let Some(c) = cur.peek(0) {
        if c.is_ascii_digit() || c == '_' {
            text.push(c);
            cur.bump();
        } else {
            break;
        }
    }

    // Decimal point: only part of this number when not a range (`0..`)
    // and not a method call on an integer literal (`1.max(2)`).
    if cur.peek(0) == Some('.') {
        match cur.peek(1) {
            Some('.') => {}
            Some(c) if is_ident_start(c) => {}
            _ => {
                is_float = true;
                text.push('.');
                cur.bump();
                while let Some(c) = cur.peek(0) {
                    if c.is_ascii_digit() || c == '_' {
                        text.push(c);
                        cur.bump();
                    } else {
                        break;
                    }
                }
            }
        }
    }

    // Exponent.
    if matches!(cur.peek(0), Some('e') | Some('E')) {
        let sign = matches!(cur.peek(1), Some('+') | Some('-'));
        let digit_at = if sign { 2 } else { 1 };
        if matches!(cur.peek(digit_at), Some(d) if d.is_ascii_digit()) {
            is_float = true;
            for _ in 0..digit_at {
                if let Some(c) = cur.bump() {
                    text.push(c);
                }
            }
            while let Some(c) = cur.peek(0) {
                if c.is_ascii_digit() || c == '_' {
                    text.push(c);
                    cur.bump();
                } else {
                    break;
                }
            }
        }
    }

    finish_number(cur, text, is_float, line)
}

/// Consumes a type suffix (`f64`, `u32`, …) and classifies the token.
fn finish_number(cur: &mut Cursor, mut text: String, mut is_float: bool, line: u32) -> Token {
    let mut suffix = String::new();
    while let Some(c) = cur.peek(0) {
        if is_ident_continue(c) {
            suffix.push(c);
            cur.bump();
        } else {
            break;
        }
    }
    if suffix.starts_with('f') {
        is_float = true;
    }
    text.push_str(&suffix);
    Token {
        kind: if is_float {
            TokenKind::Float
        } else {
            TokenKind::Int
        },
        text,
        line,
    }
}

fn lex_punct(cur: &mut Cursor) -> String {
    for op in MULTI_PUNCT {
        let mut matches = true;
        for (k, oc) in op.chars().enumerate() {
            if cur.peek(k) != Some(oc) {
                matches = false;
                break;
            }
        }
        if matches {
            for _ in 0..op.chars().count() {
                cur.bump();
            }
            return (*op).to_string();
        }
    }
    match cur.bump() {
        Some(c) => c.to_string(),
        None => String::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        lex(src)
            .tokens
            .into_iter()
            .map(|t| (t.kind, t.text))
            .collect()
    }

    #[test]
    fn comments_are_not_tokens() {
        let out = lex("let x = 1; // panic!(\"no\")\n/* unwrap() */ let y = 2;");
        assert!(out.tokens.iter().all(|t| !t.text.contains("panic")));
        assert!(out.tokens.iter().all(|t| !t.text.contains("unwrap")));
        assert_eq!(out.comments.len(), 2);
        assert!(out.comments[0].text.contains("panic"));
    }

    #[test]
    fn nested_block_comments() {
        let out = lex("/* a /* b */ c */ fn f() {}");
        assert_eq!(out.comments.len(), 1);
        assert_eq!(out.tokens[0].text, "fn");
    }

    #[test]
    fn strings_swallow_operators() {
        let out = lex(r#"let s = "a == b && panic!";"#);
        assert!(!out.tokens.iter().any(|t| t.text == "=="));
        let lit = out
            .tokens
            .iter()
            .find(|t| t.kind == TokenKind::Str)
            .expect("string token");
        assert_eq!(lit.string_content(), Some("a == b && panic!"));
    }

    #[test]
    fn raw_strings_with_hashes() {
        let out = lex(r###"let s = r#"quote " inside"#; let t = 1;"###);
        let lit = out
            .tokens
            .iter()
            .find(|t| t.kind == TokenKind::Str)
            .expect("raw string token");
        assert_eq!(lit.string_content(), Some("quote \" inside"));
        assert!(out.tokens.iter().any(|t| t.text == "t"));
    }

    #[test]
    fn byte_and_char_literals() {
        let out = kinds(r"let a = b'x'; let c = '\n'; let d = 'q';");
        assert!(out.contains(&(TokenKind::Char, "b'x'".to_string())));
        assert!(out.contains(&(TokenKind::Char, r"'\n'".to_string())));
        assert!(out.contains(&(TokenKind::Char, "'q'".to_string())));
        let out = kinds("let e = b\"zz == qq\";");
        assert!(out.contains(&(TokenKind::Str, "b\"zz == qq\"".to_string())));
        assert!(!out.iter().any(|(_, t)| t == "=="));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let out = kinds("fn f<'a>(x: &'a str) -> &'static str { x }");
        assert!(out.contains(&(TokenKind::Lifetime, "'a".to_string())));
        assert!(out.contains(&(TokenKind::Lifetime, "'static".to_string())));
    }

    #[test]
    fn number_classification() {
        assert_eq!(kinds("1")[0].0, TokenKind::Int);
        assert_eq!(kinds("1.0")[0].0, TokenKind::Float);
        assert_eq!(kinds("1e-6")[0].0, TokenKind::Float);
        assert_eq!(kinds("1_000.5")[0].0, TokenKind::Float);
        assert_eq!(kinds("2f64")[0].0, TokenKind::Float);
        assert_eq!(kinds("0xff")[0].0, TokenKind::Int);
        assert_eq!(kinds("7u32")[0].0, TokenKind::Int);
    }

    #[test]
    fn ranges_and_method_calls_on_ints() {
        let toks = kinds("0..10");
        assert_eq!(toks[0], (TokenKind::Int, "0".to_string()));
        assert_eq!(toks[1], (TokenKind::Punct, "..".to_string()));
        let toks = kinds("1.max(2)");
        assert_eq!(toks[0], (TokenKind::Int, "1".to_string()));
        let toks = kinds("0.5..2.0");
        assert_eq!(toks[0].0, TokenKind::Float);
        assert_eq!(toks[1], (TokenKind::Punct, "..".to_string()));
        assert_eq!(toks[2].0, TokenKind::Float);
    }

    #[test]
    fn tuple_field_access_is_not_a_float() {
        let toks = kinds("a.0 == b.0");
        assert!(toks.iter().all(|(k, _)| *k != TokenKind::Float));
        assert!(toks.iter().any(|(_, t)| t == "=="));
    }

    #[test]
    fn multi_char_operators_fold() {
        let toks = kinds("a != b && c == d");
        let ops: Vec<&str> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Punct)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(ops, vec!["!=", "&&", "=="]);
    }

    #[test]
    fn line_numbers_track_newlines() {
        let out = lex("a\nb\n\nc");
        let lines: Vec<u32> = out.tokens.iter().map(|t| t.line).collect();
        assert_eq!(lines, vec![1, 2, 4]);
    }

    #[test]
    fn unterminated_literals_do_not_hang() {
        for src in ["\"abc", "r#\"abc", "/* abc", "'", "b\"x"] {
            let _ = lex(src);
        }
    }

    #[test]
    fn raw_identifiers() {
        let toks = kinds("let r#type = 1;");
        assert!(toks.contains(&(TokenKind::Ident, "r#type".to_string())));
    }
}
