//! A lightweight recursive-descent parser over the lexer's token
//! stream, producing the small expression/item AST the semantic rules
//! (L008–L010) analyse.
//!
//! This is deliberately *not* a full Rust grammar: it understands
//! function items (signature + body), `let` bindings, control flow,
//! closures, method-call chains, macros and the operator zoo — the
//! shapes units and determinism flow through — and degrades to
//! [`Expr::Opaque`] on anything else. Three contracts matter more than
//! coverage, and the proptests pin them:
//!
//! 1. it never panics, on any token stream;
//! 2. it always terminates (every loop consumes tokens or bails);
//! 3. what it does recognise is faithfully shaped — a method chain is
//!    nested [`Expr::MethodCall`]s, an operator is an [`Expr::Binary`]
//!    with its real spelling.
//!
//! Rules are conservative by construction: an `Opaque` node simply has
//! no unit and no determinism obligations, so parser gaps cost recall,
//! never false positives.

use crate::lexer::{Token, TokenKind};

/// Recursion ceiling: expressions nested deeper than this degrade to
/// [`Expr::Opaque`] instead of risking the stack.
const MAX_DEPTH: u32 = 64;

/// One parsed expression. Line numbers are 1-based source lines of the
/// node's head token.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Integer or float literal (kept as spelled).
    Lit {
        /// Literal token kind ([`TokenKind::Int`] or [`TokenKind::Float`]).
        kind: TokenKind,
        /// Exact source spelling.
        text: String,
        /// Source line.
        line: u32,
    },
    /// String or char literal (opaque payload).
    StrLit {
        /// Source line.
        line: u32,
    },
    /// A possibly `::`-qualified path (`x`, `std::env::var`).
    Path {
        /// Path segments, turbofish stripped.
        segs: Vec<String>,
        /// Source line.
        line: u32,
    },
    /// Prefix operator (`-`, `!`, `*`, `&`).
    Unary {
        /// Operator spelling.
        op: char,
        /// Operand.
        inner: Box<Expr>,
        /// Source line.
        line: u32,
    },
    /// Infix operator that is not an assignment.
    Binary {
        /// Operator spelling (`+`, `==`, `&&`, …).
        op: String,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
        /// Source line.
        line: u32,
    },
    /// Assignment, plain or compound (`=`, `+=`, …).
    Assign {
        /// Operator spelling.
        op: String,
        /// Assignment target.
        lhs: Box<Expr>,
        /// Assigned value.
        rhs: Box<Expr>,
        /// Source line.
        line: u32,
    },
    /// Free or path call `callee(args)`.
    Call {
        /// Callee expression (usually a [`Expr::Path`]).
        callee: Box<Expr>,
        /// Arguments in order.
        args: Vec<Expr>,
        /// Source line.
        line: u32,
    },
    /// Method call `recv.name::<T>(args)`.
    MethodCall {
        /// Receiver expression.
        recv: Box<Expr>,
        /// Method name.
        name: String,
        /// Turbofish text (`""` when absent), e.g. `Vec<_>`.
        turbofish: String,
        /// Arguments in order (excluding the receiver).
        args: Vec<Expr>,
        /// Source line.
        line: u32,
    },
    /// Field access `recv.name` (tuple indices appear as numeric names).
    Field {
        /// Receiver expression.
        recv: Box<Expr>,
        /// Field name.
        name: String,
        /// Source line.
        line: u32,
    },
    /// Index `recv[index]`.
    Index {
        /// Receiver expression.
        recv: Box<Expr>,
        /// Index expression.
        index: Box<Expr>,
        /// Source line.
        line: u32,
    },
    /// Cast `inner as ty`.
    Cast {
        /// Casted expression.
        inner: Box<Expr>,
        /// Target type text.
        ty: String,
        /// Source line.
        line: u32,
    },
    /// Closure `|…| body` / `move |…| body`.
    Closure {
        /// Parameter names (typed/destructured params keep their idents).
        params: Vec<String>,
        /// Closure body.
        body: Box<Expr>,
        /// Source line.
        line: u32,
    },
    /// Block `{ stmts }`; the last statement may be a tail expression.
    Block {
        /// Statements in order.
        stmts: Vec<Stmt>,
        /// Source line of `{`.
        line: u32,
    },
    /// `if cond { … } else …` (also carries `if let`, whose scrutinee
    /// becomes `cond`).
    If {
        /// Condition (or `if let` scrutinee).
        cond: Box<Expr>,
        /// Then-block.
        then_blk: Box<Expr>,
        /// Else-branch (a block or another `if`).
        else_blk: Option<Box<Expr>>,
        /// Source line.
        line: u32,
    },
    /// `match scrutinee { … }`; arm patterns are skipped, arm values kept.
    Match {
        /// Scrutinee expression.
        scrutinee: Box<Expr>,
        /// Arm value expressions in order.
        arms: Vec<Expr>,
        /// Source line.
        line: u32,
    },
    /// `for pat in iter { body }`.
    For {
        /// Identifiers bound by the loop pattern.
        pat: Vec<String>,
        /// Iterated expression.
        iter: Box<Expr>,
        /// Loop body.
        body: Vec<Stmt>,
        /// Source line.
        line: u32,
    },
    /// `while cond { body }` (also `while let`).
    While {
        /// Condition (or `while let` scrutinee).
        cond: Box<Expr>,
        /// Loop body.
        body: Vec<Stmt>,
        /// Source line.
        line: u32,
    },
    /// `loop { body }`.
    Loop {
        /// Loop body.
        body: Vec<Stmt>,
        /// Source line.
        line: u32,
    },
    /// Macro invocation `name!(args…)`; arguments are parsed
    /// best-effort as comma-separated expressions.
    Macro {
        /// Macro name (last path segment).
        name: String,
        /// Parsed arguments (may be `Opaque` for non-expression input).
        args: Vec<Expr>,
        /// Source line.
        line: u32,
    },
    /// Struct literal `Path { field: expr, … }`.
    Struct {
        /// Struct path segments.
        segs: Vec<String>,
        /// `(field, value)` pairs; shorthand fields repeat the name as
        /// a path expression.
        fields: Vec<(String, Expr)>,
        /// Source line.
        line: u32,
    },
    /// Tuple or array literal (element units are not tracked).
    Tuple {
        /// Element expressions.
        elems: Vec<Expr>,
        /// Source line.
        line: u32,
    },
    /// Anything the parser does not model.
    Opaque {
        /// Source line.
        line: u32,
    },
}

impl Expr {
    /// Source line of the expression's head token.
    pub fn line(&self) -> u32 {
        match self {
            Expr::Lit { line, .. }
            | Expr::StrLit { line }
            | Expr::Path { line, .. }
            | Expr::Unary { line, .. }
            | Expr::Binary { line, .. }
            | Expr::Assign { line, .. }
            | Expr::Call { line, .. }
            | Expr::MethodCall { line, .. }
            | Expr::Field { line, .. }
            | Expr::Index { line, .. }
            | Expr::Cast { line, .. }
            | Expr::Closure { line, .. }
            | Expr::Block { line, .. }
            | Expr::If { line, .. }
            | Expr::Match { line, .. }
            | Expr::For { line, .. }
            | Expr::While { line, .. }
            | Expr::Loop { line, .. }
            | Expr::Macro { line, .. }
            | Expr::Struct { line, .. }
            | Expr::Tuple { line, .. }
            | Expr::Opaque { line } => *line,
        }
    }

    /// Calls `f` on this expression and every sub-expression,
    /// pre-order.
    pub fn walk(&self, f: &mut dyn FnMut(&Expr)) {
        f(self);
        match self {
            Expr::Unary { inner, .. } => inner.walk(f),
            Expr::Binary { lhs, rhs, .. } | Expr::Assign { lhs, rhs, .. } => {
                lhs.walk(f);
                rhs.walk(f);
            }
            Expr::Call { callee, args, .. } => {
                callee.walk(f);
                for a in args {
                    a.walk(f);
                }
            }
            Expr::MethodCall { recv, args, .. } => {
                recv.walk(f);
                for a in args {
                    a.walk(f);
                }
            }
            Expr::Field { recv, .. } => recv.walk(f),
            Expr::Index { recv, index, .. } => {
                recv.walk(f);
                index.walk(f);
            }
            Expr::Cast { inner, .. } => inner.walk(f),
            Expr::Closure { body, .. } => body.walk(f),
            Expr::Block { stmts, .. } => walk_stmts(stmts, f),
            Expr::If {
                cond,
                then_blk,
                else_blk,
                ..
            } => {
                cond.walk(f);
                then_blk.walk(f);
                if let Some(e) = else_blk {
                    e.walk(f);
                }
            }
            Expr::Match {
                scrutinee, arms, ..
            } => {
                scrutinee.walk(f);
                for a in arms {
                    a.walk(f);
                }
            }
            Expr::For { iter, body, .. } => {
                iter.walk(f);
                walk_stmts(body, f);
            }
            Expr::While { cond, body, .. } => {
                cond.walk(f);
                walk_stmts(body, f);
            }
            Expr::Loop { body, .. } => walk_stmts(body, f),
            Expr::Macro { args, .. } => {
                for a in args {
                    a.walk(f);
                }
            }
            Expr::Struct { fields, .. } => {
                for (_, v) in fields {
                    v.walk(f);
                }
            }
            Expr::Tuple { elems, .. } => {
                for e in elems {
                    e.walk(f);
                }
            }
            Expr::Lit { .. } | Expr::StrLit { .. } | Expr::Path { .. } | Expr::Opaque { .. } => {}
        }
    }
}

fn walk_stmts(stmts: &[Stmt], f: &mut dyn FnMut(&Expr)) {
    for s in stmts {
        match s {
            Stmt::Let { init, .. } => {
                if let Some(e) = init {
                    e.walk(f);
                }
            }
            Stmt::Expr(e) => e.walk(f),
            Stmt::Return { value, .. } => {
                if let Some(e) = value {
                    e.walk(f);
                }
            }
            Stmt::Item(item) => walk_stmts(&item.body, f),
            Stmt::Opaque => {}
        }
    }
}

/// One statement inside a block.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `let [mut] pat [: ty] [= init];`
    Let {
        /// Bound name for simple `let name` patterns, `None` for
        /// destructuring patterns.
        name: Option<String>,
        /// Identifiers bound by the pattern (includes `name`).
        pat_idents: Vec<String>,
        /// Declared type text, tokens joined with spaces.
        ty: Option<String>,
        /// Initialiser expression.
        init: Option<Expr>,
        /// Source line of `let`.
        line: u32,
    },
    /// Expression statement (with or without trailing `;`); the block's
    /// tail expression also lands here as its last `Stmt`.
    Expr(Expr),
    /// `return [expr];`
    Return {
        /// Returned expression.
        value: Option<Expr>,
        /// Source line.
        line: u32,
    },
    /// A nested `fn` item.
    Item(Box<FnItem>),
    /// A statement the parser skipped (inner `use`, `struct`, …).
    Opaque,
}

/// One function parameter.
#[derive(Debug, Clone, PartialEq)]
pub struct Param {
    /// Parameter name (`None` for destructuring patterns).
    pub name: Option<String>,
    /// Type text, tokens joined with spaces.
    pub ty: String,
    /// Source line.
    pub line: u32,
}

/// One parsed `fn` item (free function, method, or nested fn — the
/// parser does not distinguish).
#[derive(Debug, Clone, PartialEq)]
pub struct FnItem {
    /// Function name.
    pub name: String,
    /// Parameters, `self` receivers excluded.
    pub params: Vec<Param>,
    /// True when the parameter list began with a `self` receiver.
    pub has_self: bool,
    /// Return type text (`None` for `()`).
    pub ret_ty: Option<String>,
    /// Body statements (empty for trait-declaration `fn …;`).
    pub body: Vec<Stmt>,
    /// Source line of the `fn` keyword.
    pub line: u32,
    /// Index of the `fn` token in the file's token stream (for
    /// test-region lookups).
    pub tok_idx: usize,
}

/// Parse result for one file: every `fn` item found, at any nesting
/// depth, in source order.
#[derive(Debug, Clone, Default)]
pub struct ParsedFile {
    /// All parsed functions.
    pub fns: Vec<FnItem>,
}

/// Parses `tokens` (as produced by [`crate::lexer::lex`]) into items.
/// Never fails: unparseable regions are skipped or folded into
/// [`Expr::Opaque`].
pub fn parse_file(tokens: &[Token]) -> ParsedFile {
    let mut p = Parser {
        toks: tokens,
        pos: 0,
        fns: Vec::new(),
    };
    while p.pos < p.toks.len() {
        let before = p.pos;
        if p.at_ident("fn") && p.peek_kind(1) == Some(TokenKind::Ident) {
            p.parse_fn(0);
        } else {
            p.pos += 1;
        }
        if p.pos <= before {
            p.pos = before + 1; // hard progress guarantee
        }
    }
    let mut fns = std::mem::take(&mut p.fns);
    fns.sort_by_key(|f| f.tok_idx);
    ParsedFile { fns }
}

struct Parser<'a> {
    toks: &'a [Token],
    pos: usize,
    fns: Vec<FnItem>,
}

impl<'a> Parser<'a> {
    fn peek(&self, ahead: usize) -> Option<&'a Token> {
        self.toks.get(self.pos + ahead)
    }

    fn peek_kind(&self, ahead: usize) -> Option<TokenKind> {
        self.peek(ahead).map(|t| t.kind)
    }

    fn peek_text(&self, ahead: usize) -> &'a str {
        self.peek(ahead).map(|t| t.text.as_str()).unwrap_or("")
    }

    fn at(&self, s: &str) -> bool {
        self.peek_text(0) == s
    }

    fn at_ident(&self, s: &str) -> bool {
        self.peek(0)
            .is_some_and(|t| t.kind == TokenKind::Ident && t.text == s)
    }

    fn line(&self) -> u32 {
        self.peek(0).map(|t| t.line).unwrap_or(0)
    }

    fn bump(&mut self) -> Option<&'a Token> {
        let t = self.toks.get(self.pos);
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, s: &str) -> bool {
        if self.at(s) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    /// Skips tokens until one of `stops` at delimiter depth 0, or end
    /// of input. Does not consume the stop token.
    fn skip_until_top(&mut self, stops: &[&str]) {
        let mut depth = 0usize;
        while let Some(t) = self.peek(0) {
            match t.text.as_str() {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => {
                    if depth == 0 {
                        return;
                    }
                    depth -= 1;
                }
                s if depth == 0 && stops.contains(&s) => return,
                _ => {}
            }
            self.pos += 1;
        }
    }

    /// With the cursor on an opening delimiter, skips past its match.
    fn skip_balanced(&mut self) {
        let (open, close) = match self.peek_text(0) {
            "(" => ("(", ")"),
            "[" => ("[", "]"),
            "{" => ("{", "}"),
            _ => {
                self.pos += 1;
                return;
            }
        };
        let mut depth = 0usize;
        while let Some(t) = self.bump() {
            if t.text == open {
                depth += 1;
            } else if t.text == close {
                depth -= 1;
                if depth == 0 {
                    return;
                }
            }
        }
    }

    /// With the cursor on `#`, skips an attribute `#[…]` / `#![…]`.
    fn skip_attr(&mut self) {
        self.pos += 1; // `#`
        self.eat("!");
        if self.at("[") {
            let mut depth = 0usize;
            while let Some(t) = self.bump() {
                if t.text == "[" {
                    depth += 1;
                } else if t.text == "]" {
                    depth -= 1;
                    if depth == 0 {
                        return;
                    }
                }
            }
        }
    }

    /// Consumes a generic argument list starting at `<`, tracking
    /// `<`/`>` (and `<<`/`>>`) depth; returns the skipped text.
    fn skip_angles(&mut self) -> String {
        let mut angle = 0isize;
        let mut text = String::new();
        while let Some(t) = self.peek(0) {
            match t.text.as_str() {
                "<" => angle += 1,
                "<<" => angle += 2,
                ">" => angle -= 1,
                ">>" => angle -= 2,
                // Guard against `<` that was actually a comparison in
                // soup: bail on tokens that cannot appear in a type.
                ";" | "{" | "}" => break,
                _ => {}
            }
            if !text.is_empty() {
                text.push(' ');
            }
            text.push_str(&t.text);
            self.pos += 1;
            if angle <= 0 {
                break;
            }
        }
        text
    }

    /// Parses a type as flat text, stopping at any of `stops` at
    /// delimiter/angle depth 0.
    fn parse_type_text(&mut self, stops: &[&str]) -> String {
        let mut out = String::new();
        let mut paren = 0isize;
        let mut angle = 0isize;
        let mut steps = 0usize;
        while let Some(t) = self.peek(0) {
            let s = t.text.as_str();
            if paren == 0 && angle <= 0 && stops.contains(&s) {
                break;
            }
            match s {
                "(" | "[" | "{" => paren += 1,
                ")" | "]" | "}" => {
                    if paren == 0 {
                        break;
                    }
                    paren -= 1;
                }
                "<" => angle += 1,
                "<<" => angle += 2,
                ">" => angle -= 1,
                ">>" => angle -= 2,
                _ => {}
            }
            if !out.is_empty() {
                out.push(' ');
            }
            out.push_str(s);
            self.pos += 1;
            steps += 1;
            if steps > 256 {
                break; // a type longer than this is not one we judge
            }
        }
        out
    }

    /// Parses the `fn` item whose `fn` keyword the cursor sits on.
    fn parse_fn(&mut self, depth: u32) {
        let tok_idx = self.pos;
        let line = self.line();
        self.pos += 1; // `fn`
        let name = match self.peek(0) {
            Some(t) if t.kind == TokenKind::Ident => t.text.clone(),
            _ => return,
        };
        self.pos += 1;
        if self.at("<") {
            self.skip_angles();
        }
        if !self.at("(") {
            return;
        }
        // Parameter list.
        let mut params = Vec::new();
        let mut has_self = false;
        self.pos += 1; // `(`
        let mut last_pos = usize::MAX;
        loop {
            if self.at(")") {
                self.pos += 1;
                break;
            }
            if self.peek(0).is_none() {
                break;
            }
            if self.pos == last_pos {
                // The previous iteration consumed nothing — a stray
                // closer (`]`, `}`) in a malformed list stalls every
                // arm. Skip it: hard progress guarantee.
                self.pos += 1;
                continue;
            }
            last_pos = self.pos;
            while self.at("#") {
                self.skip_attr();
            }
            self.eat("mut");
            // `self` receiver forms: `self`, `&self`, `&mut self`,
            // `&'a mut self`, `mut self`, `self: Type`.
            let mut probe = 0usize;
            while matches!(self.peek_text(probe), "&" | "mut")
                || self.peek_kind(probe) == Some(TokenKind::Lifetime)
            {
                probe += 1;
            }
            if self.peek_text(probe) == "self" {
                has_self = true;
                self.skip_until_top(&[","]);
                self.eat(",");
                continue;
            }
            let pline = self.line();
            let name = match self.peek(0) {
                Some(t) if t.kind == TokenKind::Ident && self.peek_text(1) == ":" => {
                    let n = t.text.clone();
                    self.pos += 2; // name `:`
                    Some(n)
                }
                _ => {
                    // Destructuring or unexpected pattern: skip to `:`.
                    self.skip_until_top(&[":", ","]);
                    if self.eat(":") {
                        None
                    } else {
                        self.eat(",");
                        continue;
                    }
                }
            };
            let ty = self.parse_type_text(&[","]);
            params.push(Param {
                name,
                ty,
                line: pline,
            });
            self.eat(",");
        }
        // Return type.
        let ret_ty = if self.eat("->") {
            let t = self.parse_type_text(&["where", "{", ";"]);
            if t.is_empty() {
                None
            } else {
                Some(t)
            }
        } else {
            None
        };
        if self.at_ident("where") {
            self.skip_until_top(&["{", ";"]);
        }
        let body = if self.at("{") {
            self.parse_block_stmts(depth + 1)
        } else {
            self.eat(";");
            Vec::new()
        };
        self.fns.push(FnItem {
            name,
            params,
            has_self,
            ret_ty,
            body,
            line,
            tok_idx,
        });
    }

    /// With the cursor on `{`, parses the block's statements and
    /// consumes the closing `}`.
    fn parse_block_stmts(&mut self, depth: u32) -> Vec<Stmt> {
        if depth > MAX_DEPTH {
            self.skip_balanced();
            return Vec::new();
        }
        let mut stmts = Vec::new();
        if !self.eat("{") {
            return stmts;
        }
        loop {
            let before = self.pos;
            match self.peek(0) {
                None => break,
                Some(t) if t.text == "}" => {
                    self.pos += 1;
                    break;
                }
                Some(t) if t.text == ";" => {
                    self.pos += 1;
                }
                Some(t) if t.text == "#" => self.skip_attr(),
                Some(t) if t.kind == TokenKind::Ident => match t.text.as_str() {
                    "let" => stmts.push(self.parse_let(depth)),
                    "return" | "break" => {
                        let line = t.line;
                        let is_return = t.text == "return";
                        self.pos += 1;
                        let value = if self.at(";") || self.at("}") {
                            None
                        } else {
                            Some(self.parse_expr(0, false, depth + 1))
                        };
                        self.eat(";");
                        if is_return {
                            stmts.push(Stmt::Return { value, line });
                        } else if let Some(v) = value {
                            stmts.push(Stmt::Expr(v));
                        }
                    }
                    "continue" => {
                        self.pos += 1;
                        self.eat(";");
                    }
                    "fn" if self.peek_kind(1) == Some(TokenKind::Ident) => {
                        let marker = self.fns.len();
                        self.parse_fn(depth + 1);
                        if self.fns.len() > marker {
                            // Keep a copy in statement position so body
                            // walks see nested fns; the canonical list
                            // lives on the parser.
                            let item = self.fns[marker].clone();
                            stmts.push(Stmt::Item(Box::new(item)));
                        }
                    }
                    "use" | "mod" | "struct" | "enum" | "trait" | "impl" | "type" | "const"
                    | "static" | "extern" | "macro_rules" | "pub" | "unsafe" | "async" => {
                        self.skip_item_like();
                        stmts.push(Stmt::Opaque);
                    }
                    _ => {
                        let e = self.parse_expr(0, false, depth + 1);
                        self.finish_stmt(&e);
                        stmts.push(Stmt::Expr(e));
                    }
                },
                Some(_) => {
                    let e = self.parse_expr(0, false, depth + 1);
                    self.finish_stmt(&e);
                    stmts.push(Stmt::Expr(e));
                }
            }
            if self.pos <= before {
                self.pos = before + 1; // hard progress guarantee
            }
        }
        stmts
    }

    /// After an expression statement: consume `;` if present; on
    /// anything else that is not `}` the expression did not extend to a
    /// statement boundary, so resynchronise — except after block-ending
    /// expressions (`for`/`if`/`match`/…), which need no `;` and are
    /// legitimately followed by the next statement.
    fn finish_stmt(&mut self, just_parsed: &Expr) {
        if self.eat(";") || self.at("}") {
            return;
        }
        if matches!(
            just_parsed,
            Expr::For { .. }
                | Expr::While { .. }
                | Expr::Loop { .. }
                | Expr::If { .. }
                | Expr::Match { .. }
                | Expr::Block { .. }
        ) {
            return;
        }
        self.skip_until_top(&[";"]);
        self.eat(";");
    }

    /// Skips a non-fn item (`use …;`, `struct … { … }`, `impl … { … }`)
    /// whose introducing keyword the cursor sits on. `impl`/`mod`
    /// bodies are re-scanned for `fn` items at file level, so nothing
    /// is lost by skipping here — except that this is only reached for
    /// items *nested in fn bodies*, where we scan the braces for fns.
    fn skip_item_like(&mut self) {
        let mut guard = 0usize;
        while let Some(t) = self.peek(0) {
            match t.text.as_str() {
                ";" => {
                    self.pos += 1;
                    return;
                }
                "{" => {
                    // Scan the item body for nested fns.
                    let end = self.matching_brace_end();
                    while self.pos < end {
                        if self.at_ident("fn") && self.peek_kind(1) == Some(TokenKind::Ident) {
                            self.parse_fn(1);
                        } else {
                            self.pos += 1;
                        }
                    }
                    self.pos = end;
                    return;
                }
                _ => self.pos += 1,
            }
            guard += 1;
            if guard > 4096 {
                return;
            }
        }
    }

    /// With the cursor on `{`, the index just past its matching `}`.
    fn matching_brace_end(&self) -> usize {
        let mut depth = 0usize;
        let mut k = self.pos;
        while let Some(t) = self.toks.get(k) {
            if t.text == "{" {
                depth += 1;
            } else if t.text == "}" {
                depth -= 1;
                if depth == 0 {
                    return k + 1;
                }
            }
            k += 1;
        }
        self.toks.len()
    }

    fn parse_let(&mut self, depth: u32) -> Stmt {
        let line = self.line();
        self.pos += 1; // `let`
        self.eat("mut");
        let mut pat_idents = Vec::new();
        let name = match self.peek(0) {
            Some(t)
                if t.kind == TokenKind::Ident
                    && !matches!(t.text.as_str(), "mut" | "ref")
                    && matches!(self.peek_text(1), ":" | "=" | ";") =>
            {
                let n = t.text.clone();
                pat_idents.push(n.clone());
                self.pos += 1;
                Some(n)
            }
            _ => {
                // Destructuring pattern: collect bound idents up to the
                // `:`/`=`/`;` at depth 0.
                let mut depth_d = 0usize;
                while let Some(t) = self.peek(0) {
                    match t.text.as_str() {
                        "(" | "[" | "{" => depth_d += 1,
                        ")" | "]" | "}" => {
                            if depth_d == 0 {
                                break;
                            }
                            depth_d -= 1;
                        }
                        ":" | "=" | ";" if depth_d == 0 => break,
                        _ if t.kind == TokenKind::Ident
                            && !matches!(t.text.as_str(), "mut" | "ref" | "_") =>
                        {
                            pat_idents.push(t.text.clone());
                        }
                        _ => {}
                    }
                    self.pos += 1;
                }
                None
            }
        };
        let ty = if self.eat(":") {
            let t = self.parse_type_text(&["=", ";"]);
            if t.is_empty() {
                None
            } else {
                Some(t)
            }
        } else {
            None
        };
        let init = if self.eat("=") {
            Some(self.parse_expr(0, false, depth + 1))
        } else {
            None
        };
        // `let … else { … }`.
        if self.at_ident("else") {
            self.pos += 1;
            if self.at("{") {
                self.skip_balanced();
            }
        }
        self.eat(";");
        Stmt::Let {
            name,
            pat_idents,
            ty,
            init,
            line,
        }
    }

    // ------------------------------------------------------ expressions

    /// Pratt parser. `min_bp` is the minimum binding power to continue;
    /// `no_struct` suppresses struct-literal parsing (condition
    /// position).
    fn parse_expr(&mut self, min_bp: u8, no_struct: bool, depth: u32) -> Expr {
        if depth > MAX_DEPTH {
            let line = self.line();
            self.skip_until_top(&[";", ","]);
            return Expr::Opaque { line };
        }
        let mut lhs = self.parse_prefix(no_struct, depth);
        loop {
            let before = self.pos;
            // Postfix operators bind tightest.
            lhs = self.parse_postfix(lhs, no_struct, depth);
            let Some(op) = self.peek(0) else { break };
            if op.kind != TokenKind::Punct {
                // `as` cast handled in postfix; anything else ends the
                // expression.
                break;
            }
            let op_text = op.text.clone();
            let Some((l_bp, r_bp)) = infix_binding_power(&op_text) else {
                break;
            };
            if l_bp < min_bp {
                break;
            }
            let line = op.line;
            self.pos += 1;
            // `..`/`..=` may be an open range (`a..`): if what follows
            // cannot start an expression, stop with lhs as a range.
            if (op_text == ".." || op_text == "..=") && !self.could_start_expr() {
                lhs = Expr::Binary {
                    op: op_text,
                    lhs: Box::new(lhs),
                    rhs: Box::new(Expr::Opaque { line }),
                    line,
                };
                continue;
            }
            let rhs = self.parse_expr(r_bp, no_struct, depth + 1);
            lhs = if op_text == "="
                || op_text.len() >= 2
                    && op_text.ends_with('=')
                    && matches!(
                        &op_text[..op_text.len() - 1],
                        "+" | "-" | "*" | "/" | "%" | "^" | "&" | "|" | "<<" | ">>"
                    )
            {
                Expr::Assign {
                    op: op_text,
                    lhs: Box::new(lhs),
                    rhs: Box::new(rhs),
                    line,
                }
            } else {
                Expr::Binary {
                    op: op_text,
                    lhs: Box::new(lhs),
                    rhs: Box::new(rhs),
                    line,
                }
            };
            if self.pos <= before {
                break;
            }
        }
        lhs
    }

    fn could_start_expr(&self) -> bool {
        match self.peek(0) {
            None => false,
            Some(t) => match t.kind {
                TokenKind::Punct => matches!(
                    t.text.as_str(),
                    "(" | "[" | "{" | "-" | "!" | "*" | "&" | "|" | "||"
                ),
                TokenKind::Ident => !matches!(t.text.as_str(), "in" | "else" | "as" | "where"),
                _ => true,
            },
        }
    }

    fn parse_prefix(&mut self, no_struct: bool, depth: u32) -> Expr {
        let Some(t) = self.peek(0) else {
            return Expr::Opaque { line: 0 };
        };
        let line = t.line;
        if depth > MAX_DEPTH {
            self.pos += 1;
            return Expr::Opaque { line };
        }
        match t.kind {
            TokenKind::Int | TokenKind::Float => {
                let text = t.text.clone();
                let kind = t.kind;
                self.pos += 1;
                Expr::Lit { kind, text, line }
            }
            TokenKind::Str | TokenKind::Char => {
                self.pos += 1;
                Expr::StrLit { line }
            }
            TokenKind::Lifetime => {
                // Loop label `'a: loop { … }`.
                self.pos += 1;
                self.eat(":");
                self.parse_prefix(no_struct, depth + 1)
            }
            TokenKind::Punct => match t.text.as_str() {
                "-" | "!" | "*" | "&" => {
                    let op = t.text.chars().next().unwrap_or('-');
                    self.pos += 1;
                    if op == '&' {
                        self.eat("&"); // `&&x` lexes as one token elsewhere
                        self.eat("mut");
                    }
                    let inner = self.parse_expr(prefix_binding_power(), no_struct, depth + 1);
                    Expr::Unary {
                        op,
                        inner: Box::new(inner),
                        line,
                    }
                }
                "&&" => {
                    // `&&x` — double reference.
                    self.pos += 1;
                    self.eat("mut");
                    let inner = self.parse_expr(prefix_binding_power(), no_struct, depth + 1);
                    Expr::Unary {
                        op: '&',
                        inner: Box::new(inner),
                        line,
                    }
                }
                "|" | "||" => self.parse_closure(depth),
                "(" => {
                    self.pos += 1;
                    if self.eat(")") {
                        return Expr::Tuple {
                            elems: Vec::new(),
                            line,
                        };
                    }
                    let first = self.parse_expr(0, false, depth + 1);
                    if self.eat(")") {
                        return first;
                    }
                    let mut elems = vec![first];
                    while self.eat(",") {
                        if self.at(")") {
                            break;
                        }
                        elems.push(self.parse_expr(0, false, depth + 1));
                    }
                    if !self.eat(")") {
                        self.skip_until_top(&[]);
                        self.eat(")");
                    }
                    Expr::Tuple { elems, line }
                }
                "[" => {
                    self.pos += 1;
                    let mut elems = Vec::new();
                    loop {
                        if self.eat("]") || self.peek(0).is_none() {
                            break;
                        }
                        elems.push(self.parse_expr(0, false, depth + 1));
                        if !self.eat(",") && !self.eat(";") {
                            if !self.eat("]") {
                                self.skip_until_top(&[]);
                                self.eat("]");
                            }
                            break;
                        }
                    }
                    Expr::Tuple { elems, line }
                }
                "{" => Expr::Block {
                    stmts: self.parse_block_stmts(depth + 1),
                    line,
                },
                ".." | "..=" => {
                    // Open-start range `..x`.
                    self.pos += 1;
                    if self.could_start_expr() {
                        let rhs = self.parse_expr(6, no_struct, depth + 1);
                        Expr::Binary {
                            op: "..".to_string(),
                            lhs: Box::new(Expr::Opaque { line }),
                            rhs: Box::new(rhs),
                            line,
                        }
                    } else {
                        Expr::Opaque { line }
                    }
                }
                _ => {
                    self.pos += 1;
                    Expr::Opaque { line }
                }
            },
            TokenKind::Ident => match t.text.as_str() {
                "if" => self.parse_if(depth),
                "match" => self.parse_match(depth),
                "for" => self.parse_for(depth),
                "while" => self.parse_while(depth),
                "loop" => {
                    self.pos += 1;
                    let body = self.parse_block_stmts(depth + 1);
                    Expr::Loop { body, line }
                }
                "move" => {
                    self.pos += 1;
                    if self.at("|") || self.at("||") {
                        self.parse_closure(depth)
                    } else {
                        // `move` block or soup.
                        self.parse_prefix(no_struct, depth + 1)
                    }
                }
                "unsafe" => {
                    self.pos += 1;
                    self.parse_prefix(no_struct, depth + 1)
                }
                "return" | "break" => {
                    self.pos += 1;
                    if self.could_start_expr() {
                        let v = self.parse_expr(0, no_struct, depth + 1);
                        Expr::Macro {
                            name: "return".to_string(),
                            args: vec![v],
                            line,
                        }
                    } else {
                        Expr::Opaque { line }
                    }
                }
                _ => self.parse_path_like(no_struct, depth),
            },
        }
    }

    /// Parses a path, then whatever it introduces: macro call, struct
    /// literal, or just the path (calls/fields are postfix).
    fn parse_path_like(&mut self, no_struct: bool, depth: u32) -> Expr {
        let line = self.line();
        let mut segs = Vec::new();
        loop {
            match self.peek(0) {
                Some(t) if t.kind == TokenKind::Ident => {
                    segs.push(t.text.clone());
                    self.pos += 1;
                }
                _ => break,
            }
            if self.at("::") {
                // Turbofish `::<…>` or next segment.
                if self.peek_text(1) == "<" {
                    self.pos += 1; // `::`
                    self.skip_angles();
                    if !self.at("::") {
                        break;
                    }
                    self.pos += 1;
                } else {
                    self.pos += 1;
                }
            } else {
                break;
            }
        }
        if segs.is_empty() {
            self.pos += 1;
            return Expr::Opaque { line };
        }
        // Macro invocation.
        if self.at("!") && matches!(self.peek_text(1), "(" | "[" | "{") {
            let name = segs.last().cloned().unwrap_or_default();
            self.pos += 1; // `!`
            let args = self.parse_macro_args(depth);
            return Expr::Macro { name, args, line };
        }
        // Struct literal: `Path { … }` when allowed and the path looks
        // like a type (capitalised last segment, or `Self`).
        let looks_like_type = segs
            .last()
            .is_some_and(|s| s.chars().next().is_some_and(|c| c.is_uppercase()));
        if !no_struct && looks_like_type && self.at("{") && self.looks_like_struct_literal() {
            self.pos += 1; // `{`
            let mut fields = Vec::new();
            loop {
                match self.peek(0) {
                    None => break,
                    Some(t) if t.text == "}" => {
                        self.pos += 1;
                        break;
                    }
                    Some(t) if t.text == ".." => {
                        // Functional-update base.
                        self.pos += 1;
                        let _ = self.parse_expr(0, false, depth + 1);
                    }
                    Some(t) if t.kind == TokenKind::Ident => {
                        let fname = t.text.clone();
                        let fline = t.line;
                        self.pos += 1;
                        let value = if self.eat(":") {
                            self.parse_expr(0, false, depth + 1)
                        } else {
                            Expr::Path {
                                segs: vec![fname.clone()],
                                line: fline,
                            }
                        };
                        fields.push((fname, value));
                    }
                    Some(_) => {
                        self.pos += 1;
                        continue;
                    }
                }
                if !self.eat(",") && !self.at("}") {
                    self.skip_until_top(&[",", "}"]);
                    self.eat(",");
                }
            }
            return Expr::Struct { segs, fields, line };
        }
        Expr::Path { segs, line }
    }

    /// Heuristic look-ahead from `{`: a struct literal body starts with
    /// `}` (empty), `ident:`, `ident,`, `ident}` or `..`.
    fn looks_like_struct_literal(&self) -> bool {
        match self.peek(1) {
            Some(t) if t.text == "}" => true,
            Some(t) if t.text == ".." => true,
            Some(t) if t.kind == TokenKind::Ident => {
                matches!(self.peek_text(2), ":" | "," | "}")
                    // `ident::` would be an expression path, not a field.
                    && self.peek_text(2) != "::"
            }
            _ => false,
        }
    }

    fn parse_macro_args(&mut self, depth: u32) -> Vec<Expr> {
        let close = match self.peek_text(0) {
            "(" => ")",
            "[" => "]",
            "{" => "}",
            _ => return Vec::new(),
        };
        let end = match close {
            ")" | "]" | "}" => {
                // Find the matching close to bound the arg region.
                let mut d = 0usize;
                let mut k = self.pos;
                loop {
                    match self.toks.get(k) {
                        None => break k,
                        Some(t) if matches!(t.text.as_str(), "(" | "[" | "{") => {
                            d += 1;
                            k += 1;
                        }
                        Some(t) if matches!(t.text.as_str(), ")" | "]" | "}") => {
                            d -= 1;
                            if d == 0 {
                                break k;
                            }
                            k += 1;
                        }
                        Some(_) => k += 1,
                    }
                }
            }
            _ => self.pos,
        };
        self.pos += 1; // opening delim
        let mut args = Vec::new();
        let mut guard = 0usize;
        while self.pos < end && guard < 512 {
            guard += 1;
            // Skip format-string-style leading junk that is not an
            // expression head.
            if self.at(",") {
                self.pos += 1;
                continue;
            }
            let before = self.pos;
            let e = self.parse_expr(0, false, depth + 1);
            if self.pos > before {
                args.push(e);
            } else {
                self.pos += 1;
            }
            if self.pos >= end {
                break;
            }
            if !self.eat(",") {
                // Macro-specific separators (`=>`, `;`): skip one token
                // and keep collecting best-effort.
                self.pos += 1;
            }
        }
        self.pos = end.max(self.pos);
        self.eat(close);
        args
    }

    fn parse_closure(&mut self, depth: u32) -> Expr {
        let line = self.line();
        let mut params = Vec::new();
        if self.eat("||") {
            // Empty parameter list.
        } else if self.eat("|") {
            let mut d = 0usize;
            let mut prev_was_name_pos = true;
            while let Some(t) = self.peek(0) {
                match t.text.as_str() {
                    "|" if d == 0 => {
                        self.pos += 1;
                        break;
                    }
                    "(" | "[" | "{" | "<" => d += 1,
                    ")" | "]" | "}" | ">" => d = d.saturating_sub(1),
                    ":" if d == 0 => prev_was_name_pos = false,
                    "," if d == 0 => prev_was_name_pos = true,
                    _ if t.kind == TokenKind::Ident
                        && prev_was_name_pos
                        && !matches!(t.text.as_str(), "mut" | "ref" | "_") =>
                    {
                        params.push(t.text.clone());
                    }
                    _ => {}
                }
                self.pos += 1;
            }
        }
        if self.eat("->") {
            let _ = self.parse_type_text(&["{"]);
        }
        let body = self.parse_expr(2, false, depth + 1);
        Expr::Closure {
            params,
            body: Box::new(body),
            line,
        }
    }

    fn parse_if(&mut self, depth: u32) -> Expr {
        let line = self.line();
        self.pos += 1; // `if`
        let cond = if self.at_ident("let") {
            // `if let PAT = expr` — skip the pattern, keep the
            // scrutinee.
            self.pos += 1;
            self.skip_until_top(&["="]);
            self.eat("=");
            self.parse_expr(0, true, depth + 1)
        } else {
            self.parse_expr(0, true, depth + 1)
        };
        let then_blk = Expr::Block {
            stmts: self.parse_block_stmts(depth + 1),
            line: self.line(),
        };
        let else_blk = if self.at_ident("else") {
            self.pos += 1;
            if self.at_ident("if") {
                Some(Box::new(self.parse_if(depth + 1)))
            } else {
                Some(Box::new(Expr::Block {
                    stmts: self.parse_block_stmts(depth + 1),
                    line: self.line(),
                }))
            }
        } else {
            None
        };
        Expr::If {
            cond: Box::new(cond),
            then_blk: Box::new(then_blk),
            else_blk,
            line,
        }
    }

    fn parse_match(&mut self, depth: u32) -> Expr {
        let line = self.line();
        self.pos += 1; // `match`
        let scrutinee = self.parse_expr(0, true, depth + 1);
        let mut arms = Vec::new();
        if self.at("{") {
            let end = self.matching_brace_end();
            self.pos += 1; // `{`
            let mut guard = 0usize;
            while self.pos < end.saturating_sub(1) && guard < 512 {
                guard += 1;
                // Skip the pattern (and any `if` guard) up to `=>`.
                let mut d = 0usize;
                while self.pos < end.saturating_sub(1) {
                    let t = self.peek_text(0);
                    match t {
                        "(" | "[" | "{" => d += 1,
                        ")" | "]" | "}" => d = d.saturating_sub(1),
                        "=>" if d == 0 => break,
                        _ => {}
                    }
                    self.pos += 1;
                }
                if !self.eat("=>") {
                    break;
                }
                let before = self.pos;
                let value = self.parse_expr(0, false, depth + 1);
                if self.pos > before {
                    arms.push(value);
                } else {
                    self.pos += 1;
                }
                self.eat(",");
            }
            self.pos = end.max(self.pos);
        }
        Expr::Match {
            scrutinee: Box::new(scrutinee),
            arms,
            line,
        }
    }

    fn parse_for(&mut self, depth: u32) -> Expr {
        let line = self.line();
        self.pos += 1; // `for`
        let mut pat = Vec::new();
        let mut d = 0usize;
        while let Some(t) = self.peek(0) {
            match t.text.as_str() {
                "(" | "[" | "{" => d += 1,
                ")" | "]" | "}" => d = d.saturating_sub(1),
                "in" if d == 0 && t.kind == TokenKind::Ident => break,
                _ if t.kind == TokenKind::Ident
                    && !matches!(t.text.as_str(), "mut" | "ref" | "_") =>
                {
                    pat.push(t.text.clone());
                }
                _ => {}
            }
            self.pos += 1;
        }
        self.eat("in");
        let iter = self.parse_expr(0, true, depth + 1);
        let body = self.parse_block_stmts(depth + 1);
        Expr::For {
            pat,
            iter: Box::new(iter),
            body,
            line,
        }
    }

    fn parse_while(&mut self, depth: u32) -> Expr {
        let line = self.line();
        self.pos += 1; // `while`
        let cond = if self.at_ident("let") {
            self.pos += 1;
            self.skip_until_top(&["="]);
            self.eat("=");
            self.parse_expr(0, true, depth + 1)
        } else {
            self.parse_expr(0, true, depth + 1)
        };
        let body = self.parse_block_stmts(depth + 1);
        Expr::While {
            cond: Box::new(cond),
            body,
            line,
        }
    }

    /// Postfix loop: `.field`, `.method(…)`, `(call)`, `[index]`, `?`,
    /// `as ty`.
    fn parse_postfix(&mut self, mut lhs: Expr, _no_struct: bool, depth: u32) -> Expr {
        loop {
            let before = self.pos;
            match self.peek(0) {
                Some(t) if t.text == "." => {
                    let line = t.line;
                    match self.peek(1) {
                        Some(n) if n.kind == TokenKind::Ident => {
                            let name = n.text.clone();
                            self.pos += 2;
                            if name == "await" {
                                continue;
                            }
                            // Turbofish.
                            let mut turbofish = String::new();
                            if self.at("::") && self.peek_text(1) == "<" {
                                self.pos += 1;
                                turbofish = self.skip_angles();
                            }
                            if self.at("(") {
                                let args = self.parse_call_args(depth);
                                lhs = Expr::MethodCall {
                                    recv: Box::new(lhs),
                                    name,
                                    turbofish,
                                    args,
                                    line,
                                };
                            } else {
                                lhs = Expr::Field {
                                    recv: Box::new(lhs),
                                    name,
                                    line,
                                };
                            }
                        }
                        Some(n) if n.kind == TokenKind::Int => {
                            let name = n.text.clone();
                            self.pos += 2;
                            lhs = Expr::Field {
                                recv: Box::new(lhs),
                                name,
                                line,
                            };
                        }
                        Some(n) if n.kind == TokenKind::Float => {
                            // `x.0.1` lexes the `0.1` as a float: treat
                            // as two tuple-index hops.
                            self.pos += 2;
                            lhs = Expr::Field {
                                recv: Box::new(lhs),
                                name: n.text.clone(),
                                line,
                            };
                        }
                        _ => break,
                    }
                }
                Some(t) if t.text == "(" => {
                    let line = t.line;
                    let args = self.parse_call_args(depth);
                    lhs = Expr::Call {
                        callee: Box::new(lhs),
                        args,
                        line,
                    };
                }
                Some(t) if t.text == "[" => {
                    let line = t.line;
                    self.pos += 1;
                    let index = self.parse_expr(0, false, depth + 1);
                    if !self.eat("]") {
                        self.skip_until_top(&[]);
                        self.eat("]");
                    }
                    lhs = Expr::Index {
                        recv: Box::new(lhs),
                        index: Box::new(index),
                        line,
                    };
                }
                Some(t) if t.text == "?" => {
                    self.pos += 1;
                }
                Some(t) if t.kind == TokenKind::Ident && t.text == "as" => {
                    let line = t.line;
                    self.pos += 1;
                    let ty = self.parse_type_text(&[
                        ";", ",", ")", "]", "}", "{", "+", "-", "*", "/", "%", "==", "!=", "<",
                        "<=", ">", ">=", "&&", "||", "?", ".", "..", "..=",
                    ]);
                    lhs = Expr::Cast {
                        inner: Box::new(lhs),
                        ty,
                        line,
                    };
                }
                _ => break,
            }
            if self.pos <= before {
                break;
            }
        }
        lhs
    }

    /// With the cursor on `(`, parses a comma-separated argument list.
    fn parse_call_args(&mut self, depth: u32) -> Vec<Expr> {
        let mut args = Vec::new();
        if !self.eat("(") {
            return args;
        }
        let mut guard = 0usize;
        loop {
            guard += 1;
            if guard > 512 {
                self.skip_until_top(&[]);
                self.eat(")");
                break;
            }
            if self.eat(")") || self.peek(0).is_none() {
                break;
            }
            let before = self.pos;
            args.push(self.parse_expr(0, false, depth + 1));
            if self.pos <= before {
                self.pos += 1;
            }
            if !self.eat(",") {
                if !self.eat(")") {
                    self.skip_until_top(&[]);
                    self.eat(")");
                }
                break;
            }
        }
        args
    }
}

/// Binding power of prefix operators (tighter than any infix).
fn prefix_binding_power() -> u8 {
    23
}

/// `(left, right)` binding powers of infix operators; `None` ends the
/// expression.
fn infix_binding_power(op: &str) -> Option<(u8, u8)> {
    Some(match op {
        "=" | "+=" | "-=" | "*=" | "/=" | "%=" | "^=" | "&=" | "|=" | "<<=" | ">>=" => (2, 1),
        ".." | "..=" => (5, 6),
        "||" => (7, 8),
        "&&" => (9, 10),
        "==" | "!=" | "<" | "<=" | ">" | ">=" => (11, 12),
        "|" => (13, 14),
        "^" => (15, 16),
        "&" => (17, 18),
        "<<" | ">>" => (19, 20),
        "+" | "-" => (21, 22),
        "*" | "/" | "%" => (25, 26),
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse(src: &str) -> ParsedFile {
        parse_file(&lex(src).tokens)
    }

    fn first_fn(src: &str) -> FnItem {
        parse(src).fns.into_iter().next().expect("a fn")
    }

    #[test]
    fn fn_signature_params_and_ret() {
        let f = first_fn("pub fn power(v_volts: f64, i_amps: f64) -> f64 { v_volts * i_amps }");
        assert_eq!(f.name, "power");
        assert_eq!(f.params.len(), 2);
        assert_eq!(f.params[0].name.as_deref(), Some("v_volts"));
        assert_eq!(f.params[0].ty, "f64");
        assert_eq!(f.ret_ty.as_deref(), Some("f64"));
        assert_eq!(f.body.len(), 1);
        match &f.body[0] {
            Stmt::Expr(Expr::Binary { op, .. }) => assert_eq!(op, "*"),
            other => panic!("unexpected body: {other:?}"),
        }
    }

    #[test]
    fn self_receiver_is_excluded() {
        let f = first_fn("impl X { fn total(&self, extra_watts: f64) -> f64 { extra_watts } }");
        assert!(f.has_self);
        assert_eq!(f.params.len(), 1);
        assert_eq!(f.params[0].name.as_deref(), Some("extra_watts"));
    }

    #[test]
    fn let_with_type_and_init() {
        let f = first_fn("fn f() { let m: HashMap<String, f64> = HashMap::new(); }");
        match &f.body[0] {
            Stmt::Let { name, ty, init, .. } => {
                assert_eq!(name.as_deref(), Some("m"));
                assert!(ty.as_deref().unwrap_or("").contains("HashMap"));
                assert!(matches!(init, Some(Expr::Call { .. })));
            }
            other => panic!("unexpected stmt: {other:?}"),
        }
    }

    #[test]
    fn method_chains_nest() {
        let f = first_fn("fn f(m: M) { m.iter().map(|x| x).collect::<Vec<_>>(); }");
        let Stmt::Expr(e) = &f.body[0] else {
            panic!("expected expr stmt");
        };
        let Expr::MethodCall {
            name,
            turbofish,
            recv,
            ..
        } = e
        else {
            panic!("expected method call, got {e:?}");
        };
        assert_eq!(name, "collect");
        assert!(turbofish.contains("Vec"));
        let Expr::MethodCall { name, args, .. } = recv.as_ref() else {
            panic!("expected map");
        };
        assert_eq!(name, "map");
        assert!(matches!(args[0], Expr::Closure { .. }));
    }

    #[test]
    fn for_loop_over_map() {
        let f = first_fn("fn f(m: M) { for (k, v) in &m { body(k, v); } }");
        let Stmt::Expr(Expr::For {
            pat, iter, body, ..
        }) = &f.body[0]
        else {
            panic!("expected for");
        };
        assert_eq!(pat, &["k", "v"]);
        assert!(matches!(iter.as_ref(), Expr::Unary { op: '&', .. }));
        assert_eq!(body.len(), 1);
    }

    #[test]
    fn struct_literal_fields() {
        let f = first_fn("fn f() -> P { P { total_watts: a * b, n } }");
        let Stmt::Expr(Expr::Struct { segs, fields, .. }) = &f.body[0] else {
            panic!("expected struct literal: {:?}", f.body);
        };
        assert_eq!(segs, &["P"]);
        assert_eq!(fields.len(), 2);
        assert_eq!(fields[0].0, "total_watts");
        assert_eq!(fields[1].0, "n");
    }

    #[test]
    fn no_struct_literal_in_if_condition() {
        let f = first_fn("fn f(x: X) { if x { g(); } }");
        let Stmt::Expr(Expr::If { cond, .. }) = &f.body[0] else {
            panic!("expected if: {:?}", f.body);
        };
        assert!(matches!(cond.as_ref(), Expr::Path { .. }));
    }

    #[test]
    fn cast_and_division() {
        let f = first_fn("fn f(us: u64) -> f64 { us as f64 / 1e3 }");
        let Stmt::Expr(Expr::Binary { op, lhs, .. }) = &f.body[0] else {
            panic!("expected binary: {:?}", f.body);
        };
        assert_eq!(op, "/");
        assert!(matches!(lhs.as_ref(), Expr::Cast { .. }));
    }

    #[test]
    fn match_arms_collected() {
        let f =
            first_fn("fn f(x: E) -> f64 { match x { E::A => 1.0, E::B(v) => v * 2.0, _ => 0.0 } }");
        let Stmt::Expr(Expr::Match { arms, .. }) = &f.body[0] else {
            panic!("expected match: {:?}", f.body);
        };
        assert_eq!(arms.len(), 3);
    }

    #[test]
    fn nested_fns_are_found() {
        let p = parse("fn outer() { fn inner(x_mw: f64) -> f64 { x_mw } inner(1.0); }");
        let names: Vec<&str> = p.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, ["outer", "inner"]);
    }

    #[test]
    fn fns_inside_impl_and_mod_are_found() {
        let p = parse("mod m { impl T { pub fn a(&self) {} } pub fn b() {} }");
        let names: Vec<&str> = p.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, ["a", "b"]);
    }

    #[test]
    fn closures_capture_params_and_body() {
        let f = first_fn("fn f(ex: E) { ex.par_map(&items, |i, x| x + i); }");
        let Stmt::Expr(Expr::MethodCall { args, .. }) = &f.body[0] else {
            panic!("expected call: {:?}", f.body);
        };
        let Expr::Closure { params, body, .. } = &args[1] else {
            panic!("expected closure: {:?}", args);
        };
        assert_eq!(params, &["i", "x"]);
        assert!(matches!(body.as_ref(), Expr::Binary { .. }));
    }

    #[test]
    fn macro_args_are_parsed_best_effort() {
        let f = first_fn("fn f(v: V) { writeln!(out, \"{}\", v.len()).ok(); }");
        let mut saw_len = false;
        for s in &f.body {
            if let Stmt::Expr(e) = s {
                e.walk(&mut |e| {
                    if let Expr::MethodCall { name, .. } = e {
                        if name == "len" {
                            saw_len = true;
                        }
                    }
                });
            }
        }
        assert!(saw_len);
    }

    #[test]
    fn opaque_soup_does_not_panic() {
        for src in [
            "fn f() { let = ; :: (((( }",
            "fn f() { x +. 3 ..= }",
            "fn f( { }",
            "fn",
            "fn f() { match { => , => } }",
            "fn f() { a.0.1; }",
        ] {
            let _ = parse(src);
        }
    }

    #[test]
    fn trait_method_declarations_have_empty_bodies() {
        let p = parse("trait T { fn area_m(&self, w_m: f64) -> f64; }");
        assert_eq!(p.fns.len(), 1);
        assert!(p.fns[0].body.is_empty());
        assert_eq!(p.fns[0].params.len(), 1);
    }
}
