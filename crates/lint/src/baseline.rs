//! Committed-baseline support: grandfathered findings that do not fail
//! CI, so the check is enforceable from day one and burned down over
//! time.
//!
//! Keys are content-based (`rule → path → trimmed source line`), not
//! line-number-based, so unrelated edits that shift code do not
//! invalidate the baseline; fixing or deleting a flagged line makes its
//! entry stale, which the tool reports as burn-down progress.

use crate::rules::Finding;
use std::collections::HashMap;

/// A multiset of baseline keys.
#[derive(Debug, Clone, Default)]
pub struct Baseline {
    counts: HashMap<String, usize>,
}

fn key(rule: &str, rel: &str, snippet: &str) -> String {
    format!("{rule}\t{rel}\t{snippet}")
}

impl Baseline {
    /// Parses the committed baseline file format: one tab-separated
    /// `rule<TAB>path<TAB>snippet` entry per line; `#` comments and
    /// blank lines are ignored.
    pub fn parse(text: &str) -> Baseline {
        let mut counts = HashMap::new();
        for line in text.lines() {
            let line = line.trim_end();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            *counts.entry(line.to_string()).or_insert(0) += 1;
        }
        Baseline { counts }
    }

    /// Serializes findings into the baseline format, sorted for stable
    /// diffs.
    pub fn render(findings: &[Finding]) -> String {
        let mut lines: Vec<String> = findings
            .iter()
            .map(|f| key(f.rule, &f.rel, &f.snippet))
            .collect();
        lines.sort();
        let mut out = String::from(
            "# pnc-lint baseline: grandfathered findings (rule<TAB>path<TAB>line text).\n\
             # Regenerate with `cargo run -p pnc-lint -- --update-baseline`.\n\
             # Policy: this file only shrinks — fix or suppress findings, never re-add.\n",
        );
        for l in &lines {
            out.push_str(l);
            out.push('\n');
        }
        out
    }

    /// Total entries.
    pub fn len(&self) -> usize {
        self.counts.values().sum()
    }

    /// True when the baseline has no entries.
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// Splits `findings` into (new, baselined) and reports how many
    /// baseline entries went stale (no longer matched by any finding).
    pub fn apply(&self, findings: Vec<Finding>) -> BaselineOutcome {
        let mut remaining = self.counts.clone();
        let mut new = Vec::new();
        let mut baselined = 0usize;
        for f in findings {
            let k = key(f.rule, &f.rel, &f.snippet);
            match remaining.get_mut(&k) {
                Some(n) if *n > 0 => {
                    *n -= 1;
                    baselined += 1;
                }
                _ => new.push(f),
            }
        }
        let stale = remaining.values().sum();
        BaselineOutcome {
            new,
            baselined,
            stale,
        }
    }
}

/// Result of filtering findings through the baseline.
#[derive(Debug, Clone)]
pub struct BaselineOutcome {
    /// Findings not covered by the baseline — these fail the check.
    pub new: Vec<Finding>,
    /// Findings matched (and consumed) by baseline entries.
    pub baselined: usize,
    /// Baseline entries no longer matched by any finding.
    pub stale: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(rule: &'static str, rel: &str, snippet: &str) -> Finding {
        Finding {
            rule,
            rel: rel.to_string(),
            line: 1,
            message: String::new(),
            snippet: snippet.to_string(),
        }
    }

    #[test]
    fn roundtrip_and_matching() {
        let fs = vec![
            finding("L001", "a.rs", "x.unwrap()"),
            finding("L002", "b.rs", "x == 0.0"),
        ];
        let b = Baseline::parse(&Baseline::render(&fs));
        assert_eq!(b.len(), 2);
        let out = b.apply(fs);
        assert!(out.new.is_empty());
        assert_eq!(out.baselined, 2);
        assert_eq!(out.stale, 0);
    }

    #[test]
    fn new_and_stale_are_detected() {
        let b = Baseline::parse("L001\ta.rs\tx.unwrap()\n");
        let out = b.apply(vec![finding("L001", "a.rs", "y.unwrap()")]);
        assert_eq!(out.new.len(), 1);
        assert_eq!(out.stale, 1);
    }

    #[test]
    fn multiset_counting() {
        let b = Baseline::parse("L001\ta.rs\tx.unwrap()\nL001\ta.rs\tx.unwrap()\n");
        let fs = vec![
            finding("L001", "a.rs", "x.unwrap()"),
            finding("L001", "a.rs", "x.unwrap()"),
            finding("L001", "a.rs", "x.unwrap()"),
        ];
        let out = b.apply(fs);
        assert_eq!(out.baselined, 2);
        assert_eq!(out.new.len(), 1);
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let b = Baseline::parse("# header\n\nL001\ta.rs\tx.unwrap()\n");
        assert_eq!(b.len(), 1);
        assert!(!b.is_empty());
    }
}
