//! L009: iteration over hash-ordered containers must not feed ordered
//! output.
//!
//! `HashMap`/`HashSet` iteration order varies run to run (and stdlib
//! version to version). PR 5 made bit-identical results across
//! `--threads` a product invariant, which hash-order leaks silently
//! break: a `for (k, v) in &map { out.push(…) }` serialises in random
//! order, and `sum += v` over a hash map accumulates floats in random
//! order — different bits every run.
//!
//! The rule tracks hash-container bindings inside each fn (from `let`
//! type annotations, `HashMap::new()`-style constructors, and
//! parameter types), then flags:
//!
//! * `for`-loops over such a binding whose body pushes/writes/formats
//!   into ordered sinks or `+=`-accumulates into a float local, unless
//!   the sink is sorted later in the same block;
//! * iterator chains rooted at such a binding that end in `collect`
//!   (unless the bound result is sorted later in the same block) or in
//!   order-sensitive `sum`/`fold`.
//!
//! Order-insensitive terminals (`count`, `len`, `any`, `all`,
//! `contains…`, `get`, `max/min` on totally ordered keys) stay clean.
//! The fix is a `BTreeMap`/`BTreeSet`, or collect-then-sort before
//! output.

use crate::parse::{Expr, ParsedFile, Stmt};
use crate::rules::Finding;
use crate::source::SourceFile;
use std::collections::HashSet;

/// Iteration adaptors that surface hash order.
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "into_iter",
    "keys",
    "into_keys",
    "values",
    "values_mut",
    "into_values",
    "drain",
    "retain",
];

/// Chain terminals that are insensitive to element order.
const ORDER_FREE_TERMINALS: &[&str] = &[
    "count",
    "len",
    "any",
    "all",
    "contains",
    "is_empty",
    "find",
    "max",
    "min",
    "max_by",
    "min_by",
    "max_by_key",
    "min_by_key",
    "collect_into_set",
    "sum_int",
];

/// Runs L009 over every fn in `parsed` (test code included — a flaky
/// test assertion is still flaky).
pub fn l009_hash_order(file: &SourceFile, parsed: &ParsedFile, findings: &mut Vec<Finding>) {
    for item in &parsed.fns {
        let mut hashes: HashSet<String> = HashSet::new();
        for p in &item.params {
            if let Some(name) = &p.name {
                if is_hash_type(&p.ty) {
                    hashes.insert(name.clone());
                }
            }
        }
        check_stmts(file, &item.body, &mut hashes, findings);
    }
}

/// True when a type string names a std hash container.
fn is_hash_type(ty: &str) -> bool {
    ty.split(|c: char| !c.is_alphanumeric() && c != '_')
        .any(|w| w == "HashMap" || w == "HashSet")
}

/// True when an initialiser expression constructs a hash container
/// (`HashMap::new()`, `HashSet::with_capacity(n)`, `HashMap::from(…)`).
fn is_hash_ctor(expr: &Expr) -> bool {
    match expr {
        Expr::Call { callee, .. } => match callee.as_ref() {
            Expr::Path { segs, .. } => segs.iter().any(|s| s == "HashMap" || s == "HashSet"),
            _ => false,
        },
        Expr::MethodCall { name, recv, .. } => {
            // `….collect::<HashMap<_, _>>()` and re-binding chains keep
            // hashness only through the turbofish; conservative: only
            // direct `HashMap::…` chains.
            name == "collect" && collect_target_is_hash(expr) || is_hash_ctor(recv)
        }
        _ => false,
    }
}

fn collect_target_is_hash(expr: &Expr) -> bool {
    match expr {
        Expr::MethodCall { turbofish, .. } => is_hash_type(turbofish),
        _ => false,
    }
}

/// Walks a statement list, tracking hash bindings and float locals,
/// and flagging hash-ordered iteration that feeds ordered output.
fn check_stmts(
    file: &SourceFile,
    stmts: &[Stmt],
    hashes: &mut HashSet<String>,
    findings: &mut Vec<Finding>,
) {
    let mut floats: HashSet<String> = HashSet::new();
    for (idx, stmt) in stmts.iter().enumerate() {
        match stmt {
            Stmt::Let {
                name,
                ty,
                init,
                line,
                ..
            } => {
                if let Some(n) = name {
                    let hashy = ty.as_deref().is_some_and(is_hash_type)
                        || init.as_ref().is_some_and(is_hash_ctor);
                    if hashy {
                        hashes.insert(n.clone());
                    } else {
                        hashes.remove(n);
                    }
                    if is_float_init(ty.as_deref(), init.as_ref()) {
                        floats.insert(n.clone());
                    } else {
                        floats.remove(n);
                    }
                }
                if let Some(init) = init {
                    // A chain rooted at a hash binding, collected into
                    // an ordered container: clean only if the binding
                    // is sorted later in this block.
                    if let Some(via) = hash_chain_terminal(init, hashes) {
                        match via {
                            Terminal::Collect => {
                                let sorted_later = name
                                    .as_ref()
                                    .is_some_and(|n| sorted_later_in(&stmts[idx + 1..], n));
                                if !sorted_later {
                                    report(file, findings, *line, format!(
                                        "hash-ordered iteration collected into an ordered container{} — \
                                         sort the result, or use a BTreeMap/BTreeSet",
                                        name.as_ref().map(|n| format!(" `{n}`")).unwrap_or_default(),
                                    ));
                                }
                            }
                            Terminal::FloatFold(line2) => {
                                report(
                                    file,
                                    findings,
                                    line2,
                                    "order-sensitive accumulation over hash-ordered iteration — \
                                     results differ bit-for-bit run to run; iterate a sorted \
                                     snapshot instead"
                                        .to_string(),
                                );
                            }
                        }
                    }
                    check_exprs_in(file, init, hashes, &floats, findings);
                }
            }
            Stmt::Expr(e) | Stmt::Return { value: Some(e), .. } => {
                if let Expr::For { .. } = e {
                    check_for(
                        file,
                        e,
                        stmts.get(idx + 1..).unwrap_or(&[]),
                        hashes,
                        &floats,
                        findings,
                    );
                    continue;
                }
                if let Some(via) = hash_chain_terminal(e, hashes) {
                    match via {
                        Terminal::Collect => {
                            report(
                                file,
                                findings,
                                e.line(),
                                "hash-ordered iteration collected into an ordered container — \
                                 sort the result, or use a BTreeMap/BTreeSet"
                                    .to_string(),
                            );
                        }
                        Terminal::FloatFold(line2) => {
                            report(
                                file,
                                findings,
                                line2,
                                "order-sensitive accumulation over hash-ordered iteration — \
                                 results differ bit-for-bit run to run; iterate a sorted \
                                 snapshot instead"
                                    .to_string(),
                            );
                        }
                    }
                }
                check_exprs_in(file, e, hashes, &floats, findings);
            }
            Stmt::Return { value: None, .. } | Stmt::Item(_) | Stmt::Opaque => {}
        }
    }
}

/// Recurse into nested blocks/closures so inner fns and scopes are
/// covered too.
fn check_exprs_in(
    file: &SourceFile,
    expr: &Expr,
    hashes: &mut HashSet<String>,
    _floats: &HashSet<String>,
    findings: &mut Vec<Finding>,
) {
    match expr {
        Expr::Block { stmts, .. } => {
            let mut inner = hashes.clone();
            check_stmts(file, stmts, &mut inner, findings);
        }
        Expr::If {
            cond,
            then_blk,
            else_blk,
            ..
        } => {
            check_exprs_in(file, cond, hashes, _floats, findings);
            check_exprs_in(file, then_blk, hashes, _floats, findings);
            if let Some(e) = else_blk {
                check_exprs_in(file, e, hashes, _floats, findings);
            }
        }
        Expr::Match {
            scrutinee, arms, ..
        } => {
            check_exprs_in(file, scrutinee, hashes, _floats, findings);
            for a in arms {
                check_exprs_in(file, a, hashes, _floats, findings);
            }
        }
        Expr::While { body, .. } | Expr::Loop { body, .. } => {
            let mut inner = hashes.clone();
            check_stmts(file, body, &mut inner, findings);
        }
        Expr::For { .. } => check_for(file, expr, &[], hashes, _floats, findings),
        Expr::Closure { body, .. } => check_exprs_in(file, body, hashes, _floats, findings),
        Expr::Call { callee, args, .. } => {
            check_exprs_in(file, callee, hashes, _floats, findings);
            for a in args {
                check_exprs_in(file, a, hashes, _floats, findings);
            }
        }
        Expr::MethodCall { recv, args, .. } => {
            check_exprs_in(file, recv, hashes, _floats, findings);
            for a in args {
                check_exprs_in(file, a, hashes, _floats, findings);
            }
        }
        Expr::Binary { lhs, rhs, .. } | Expr::Assign { lhs, rhs, .. } => {
            check_exprs_in(file, lhs, hashes, _floats, findings);
            check_exprs_in(file, rhs, hashes, _floats, findings);
        }
        Expr::Unary { inner, .. } | Expr::Cast { inner, .. } => {
            check_exprs_in(file, inner, hashes, _floats, findings);
        }
        _ => {}
    }
}

/// Handles one `for` loop in statement position; `rest` is the
/// remainder of the enclosing block (for the sorted-later check).
fn check_for(
    file: &SourceFile,
    expr: &Expr,
    rest: &[Stmt],
    hashes: &mut HashSet<String>,
    floats: &HashSet<String>,
    findings: &mut Vec<Finding>,
) {
    let Expr::For {
        iter, body, line, ..
    } = expr
    else {
        return;
    };
    if iterates_hash(iter, hashes) {
        // A directive on the loop header vouches for every sink in
        // the body — that is where authors naturally annotate.
        if file.is_suppressed("L009", *line) {
            return;
        }
        // Sink analysis walks the whole body, nested loops included,
        // so do not also recurse (that would double-report).
        let mut sinks: Vec<(String, u32, String)> = Vec::new();
        collect_ordered_sinks(body, floats, &mut sinks);
        for (what, at, sink_name) in sinks {
            // Sorted after the loop → the leak is repaired.
            if !sink_name.is_empty() && sorted_later_in(rest, &sink_name) {
                continue;
            }
            report(
                file,
                findings,
                at,
                format!(
                    "{what} inside iteration over a hash-ordered container (line {line}) — \
                     iterate a sorted snapshot (BTreeMap, or collect + sort) so output and \
                     float accumulation are deterministic"
                ),
            );
        }
    } else {
        let mut inner = hashes.clone();
        check_stmts(file, body, &mut inner, findings);
    }
}

/// True when the loop iterable is a hash binding or a hash-order
/// adaptor chain rooted at one.
fn iterates_hash(iter: &Expr, hashes: &HashSet<String>) -> bool {
    match iter {
        Expr::Path { segs, .. } => segs.len() == 1 && hashes.contains(&segs[0]),
        Expr::Unary {
            op: '&' | '*',
            inner,
            ..
        } => iterates_hash(inner, hashes),
        Expr::MethodCall { recv, name, .. } => {
            (ITER_METHODS.contains(&name.as_str())
                || matches!(
                    name.as_str(),
                    "map"
                        | "filter"
                        | "filter_map"
                        | "flat_map"
                        | "enumerate"
                        | "zip"
                        | "chain"
                        | "cloned"
                        | "copied"
                        | "flatten"
                ))
                && iterates_hash(recv, hashes)
        }
        _ => false,
    }
}

/// Ordered sinks inside a loop body: pushes/writes/appends, and
/// compound float accumulation. Returns (description, line, receiver
/// binding name or "").
fn collect_ordered_sinks(
    body: &[Stmt],
    floats: &HashSet<String>,
    out: &mut Vec<(String, u32, String)>,
) {
    for stmt in body {
        let exprs: Vec<&Expr> = match stmt {
            Stmt::Let { init: Some(e), .. }
            | Stmt::Expr(e)
            | Stmt::Return { value: Some(e), .. } => vec![e],
            _ => Vec::new(),
        };
        for e in exprs {
            e.walk(&mut |e| match e {
                Expr::MethodCall {
                    recv, name, line, ..
                } if matches!(name.as_str(), "push" | "push_str" | "extend" | "append") => {
                    out.push((
                        format!("`.{name}()` into an ordered collection"),
                        *line,
                        base_name(recv).unwrap_or_default(),
                    ));
                }
                // `format!` is deliberately absent: it only builds a
                // string, and whatever ordered sink consumes it is
                // reported instead (avoids double-counting
                // `out.push(format!(…))`).
                Expr::Macro { name, line, .. }
                    if matches!(name.as_str(), "write" | "writeln" | "print" | "println") =>
                {
                    out.push((format!("`{name}!` output"), *line, String::new()));
                }
                Expr::Assign { op, lhs, rhs, line }
                    if matches!(op.as_str(), "+=" | "-=" | "*=") =>
                {
                    let float_target = base_name(lhs).is_some_and(|n| floats.contains(&n));
                    let float_rhs = rhs_is_floatish(rhs);
                    if float_target || float_rhs {
                        out.push((
                            "order-sensitive float accumulation".to_string(),
                            *line,
                            String::new(),
                        ));
                    }
                }
                _ => {}
            });
        }
    }
}

/// The base binding name of a receiver chain (`v` for `v`, `self.v`,
/// `v[i]`).
fn base_name(expr: &Expr) -> Option<String> {
    match expr {
        Expr::Path { segs, .. } if segs.len() == 1 => Some(segs[0].clone()),
        Expr::Field { recv, name, .. } => {
            if matches!(recv.as_ref(), Expr::Path { segs, .. } if segs == &["self"]) {
                Some(name.clone())
            } else {
                base_name(recv)
            }
        }
        Expr::Index { recv, .. } | Expr::Unary { inner: recv, .. } => base_name(recv),
        _ => None,
    }
}

/// A `+=` right-hand side that is visibly floating point: a float
/// literal, float cast, or float-suffixed name.
fn rhs_is_floatish(expr: &Expr) -> bool {
    let mut found = false;
    expr.walk(&mut |e| match e {
        Expr::Lit {
            kind: crate::lexer::TokenKind::Float,
            ..
        } => found = true,
        Expr::Cast { ty, .. } if ty.contains("f64") || ty.contains("f32") => found = true,
        _ => {}
    });
    found
}

fn is_float_init(ty: Option<&str>, init: Option<&Expr>) -> bool {
    if ty.is_some_and(|t| t.split_whitespace().any(|w| w == "f64" || w == "f32")) {
        return true;
    }
    matches!(
        init,
        Some(Expr::Lit {
            kind: crate::lexer::TokenKind::Float,
            ..
        })
    )
}

/// What a hash-rooted iterator chain ends in.
enum Terminal {
    /// `.collect()` into an ordered container.
    Collect,
    /// `.sum()` / `.fold()` with visible float involvement.
    FloatFold(u32),
}

/// When `expr` is an iterator chain rooted at a hash binding with an
/// order-surfacing adaptor, classifies its terminal. `None` = not a
/// hash chain, or an order-free terminal.
fn hash_chain_terminal(expr: &Expr, hashes: &HashSet<String>) -> Option<Terminal> {
    let Expr::MethodCall {
        recv,
        name,
        turbofish,
        line,
        ..
    } = expr
    else {
        return None;
    };
    if !iterates_hash(recv, hashes) {
        return None;
    }
    match name.as_str() {
        "collect" => {
            // Collecting back into a hash/unordered container is fine.
            if is_hash_type(turbofish) {
                None
            } else {
                Some(Terminal::Collect)
            }
        }
        "sum" | "product" | "fold" => Some(Terminal::FloatFold(*line)),
        _ if ORDER_FREE_TERMINALS.contains(&name.as_str()) => None,
        _ => None,
    }
}

/// True when a later statement in the same block sorts `name`
/// (`name.sort()`, `name.sort_by(…)`, `name.sort_unstable…`).
fn sorted_later_in(rest: &[Stmt], name: &str) -> bool {
    let mut found = false;
    for stmt in rest {
        let exprs: Vec<&Expr> = match stmt {
            Stmt::Let { init: Some(e), .. }
            | Stmt::Expr(e)
            | Stmt::Return { value: Some(e), .. } => vec![e],
            _ => Vec::new(),
        };
        for e in exprs {
            e.walk(&mut |e| {
                if let Expr::MethodCall { recv, name: m, .. } = e {
                    if m.starts_with("sort") && base_name(recv).as_deref() == Some(name) {
                        found = true;
                    }
                }
            });
        }
    }
    found
}

fn report(file: &SourceFile, findings: &mut Vec<Finding>, line: u32, message: String) {
    if file.is_suppressed("L009", line) {
        return;
    }
    findings.push(Finding {
        rule: "L009",
        rel: file.rel.clone(),
        line,
        message,
        snippet: file.line_text(line).to_string(),
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_file;

    fn run(src: &str) -> Vec<Finding> {
        let file = SourceFile::parse("crates/bench/src/x.rs", src);
        let parsed = parse_file(&file.tokens);
        let mut findings = Vec::new();
        l009_hash_order(&file, &parsed, &mut findings);
        findings
    }

    #[test]
    fn push_inside_hash_for_loop_is_flagged() {
        let src = "fn f(m: HashMap<String, u32>) -> Vec<String> {\n    let mut out = Vec::new();\n    for (k, _) in &m {\n        out.push(k.clone());\n    }\n    out\n}";
        let f = run(src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("push"));
    }

    #[test]
    fn sort_after_the_loop_repairs_it() {
        let src = "fn f(m: HashMap<String, u32>) -> Vec<String> {\n    let mut out = Vec::new();\n    for (k, _) in &m {\n        out.push(k.clone());\n    }\n    out.sort_unstable();\n    out\n}";
        assert!(run(src).is_empty(), "{:?}", run(src));
    }

    #[test]
    fn float_accumulation_in_hash_loop_is_flagged() {
        let src = "fn f(m: HashMap<String, f64>) -> f64 {\n    let mut sum = 0.0;\n    for (_, v) in &m {\n        sum += v;\n    }\n    sum\n}";
        let f = run(src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("float accumulation"));
    }

    #[test]
    fn int_counter_in_hash_loop_is_clean() {
        let src = "fn f(m: HashMap<String, u32>) -> usize {\n    let mut n = 0;\n    for (_, v) in &m {\n        if *v > 3 { n += 1; }\n    }\n    n\n}";
        assert!(run(src).is_empty(), "{:?}", run(src));
    }

    #[test]
    fn collect_chain_without_sort_is_flagged() {
        let src = "fn f(m: HashMap<String, u32>) -> Vec<String> {\n    let keys: Vec<String> = m.keys().cloned().collect();\n    keys\n}";
        let f = run(src);
        assert_eq!(f.len(), 1, "{f:?}");
    }

    #[test]
    fn collect_then_sort_is_clean() {
        let src = "fn f(m: HashMap<String, u32>) -> Vec<String> {\n    let mut keys: Vec<String> = m.keys().cloned().collect();\n    keys.sort();\n    keys\n}";
        assert!(run(src).is_empty(), "{:?}", run(src));
    }

    #[test]
    fn sum_over_hash_values_is_flagged() {
        let src = "fn f(m: HashMap<String, f64>) -> f64 {\n    m.values().sum()\n}";
        let f = run(src);
        assert_eq!(f.len(), 1, "{f:?}");
    }

    #[test]
    fn order_free_terminals_are_clean() {
        let src = "fn f(m: HashMap<String, f64>) -> usize {\n    let n = m.keys().count();\n    let any = m.values().any(|v| *v > 0.5);\n    if any { n } else { 0 }\n}";
        assert!(run(src).is_empty(), "{:?}", run(src));
    }

    #[test]
    fn btreemap_is_never_flagged() {
        let src = "fn f(m: BTreeMap<String, f64>) -> f64 {\n    let mut sum = 0.0;\n    for (_, v) in &m {\n        sum += v;\n    }\n    sum\n}";
        assert!(run(src).is_empty(), "{:?}", run(src));
    }

    #[test]
    fn ctor_tracked_bindings_are_flagged() {
        let src = "fn f(xs: &[String]) -> Vec<String> {\n    let mut seen = HashSet::new();\n    for x in xs { seen.insert(x.clone()); }\n    let mut out = Vec::new();\n    for s in seen.iter() {\n        out.push(s.clone());\n    }\n    out\n}";
        let f = run(src);
        assert_eq!(f.len(), 1, "{f:?}");
    }

    #[test]
    fn writeln_macro_in_hash_loop_is_flagged() {
        let src = "fn f(m: HashMap<String, f64>, out: &mut String) {\n    for (k, v) in m.iter() {\n        writeln!(out, \"{k} {v}\").ok();\n    }\n}";
        let f = run(src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("writeln"));
    }

    #[test]
    fn suppression_silences_l009() {
        let src = "fn f(m: HashMap<String, f64>) -> f64 {\n    let mut sum = 0.0;\n    for (_, v) in &m {\n        // lint: allow(L009, reason = \"integer-weighted sum, order-independent by construction\")\n        sum += v;\n    }\n    sum\n}";
        assert!(run(src).is_empty(), "{:?}", run(src));
    }

    #[test]
    fn fires_inside_test_code_too() {
        let src = "#[cfg(test)]\nmod tests {\n    fn t(m: HashMap<String, u32>) -> Vec<String> {\n        let mut out = Vec::new();\n        for k in m.keys() { out.push(k.clone()); }\n        out\n    }\n}";
        assert_eq!(run(src).len(), 1);
    }
}
