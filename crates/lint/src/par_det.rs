//! L010: closures handed to the deterministic executor must be
//! deterministic.
//!
//! `pnc_parallel::par_map`/`par_try_map`/`par_reduce`/`par_for_chunks`
//! guarantee bit-identical results across `--threads` only if the
//! per-item closure is a pure function of its arguments. Reading the
//! wall clock, the thread identity, the process id, or the environment
//! inside one — or funnelling results through a locked/shared
//! accumulator instead of the executor's index-ordered collection —
//! reintroduces exactly the scheduling dependence the executor exists
//! to remove.
//!
//! The rule finds every call whose name is one of the executor entry
//! points and walks each closure argument for the forbidden reads.
//! Telemetry scopes (`scope_under`, `emit`) are fine: the telemetry
//! layer owns its clock and is excluded from result bytes.

use crate::parse::{Expr, ParsedFile};
use crate::rules::Finding;
use crate::source::SourceFile;

/// Executor entry points whose closures must stay deterministic.
const PAR_ENTRY_POINTS: &[&str] = &["par_map", "par_try_map", "par_reduce", "par_for_chunks"];

/// Runs L010 over every fn in `parsed` (tests included — a flaky test
/// is the failure mode this rule exists to prevent).
pub fn l010_par_closures(file: &SourceFile, parsed: &ParsedFile, findings: &mut Vec<Finding>) {
    for item in &parsed.fns {
        for stmt in &item.body {
            each_expr(stmt, &mut |e| check_call(file, e, findings));
        }
    }
}

fn each_expr(stmt: &crate::parse::Stmt, f: &mut dyn FnMut(&Expr)) {
    use crate::parse::Stmt;
    match stmt {
        Stmt::Let { init: Some(e), .. } | Stmt::Expr(e) | Stmt::Return { value: Some(e), .. } => {
            e.walk(f);
        }
        Stmt::Item(item) => {
            for s in &item.body {
                each_expr(s, f);
            }
        }
        _ => {}
    }
}

/// When `e` is a `par_*` call, audits its closure arguments.
fn check_call(file: &SourceFile, e: &Expr, findings: &mut Vec<Finding>) {
    let (name, args) = match e {
        Expr::MethodCall { name, args, .. } => (name.as_str(), args),
        Expr::Call { callee, args, .. } => match callee.as_ref() {
            Expr::Path { segs, .. } => match segs.last() {
                Some(n) => (n.as_str(), args),
                None => return,
            },
            _ => return,
        },
        _ => return,
    };
    if !PAR_ENTRY_POINTS.contains(&name) {
        return;
    }
    for arg in args {
        if let Expr::Closure { body, .. } = arg {
            body.walk(&mut |inner| {
                if let Some((what, line)) = nondeterministic_read(inner) {
                    report(
                        file,
                        findings,
                        line,
                        format!(
                            "{what} inside a closure passed to `{name}` — the executor's \
                             bit-identity across --threads holds only for closures that are \
                             pure functions of their arguments"
                        ),
                    );
                }
            });
        }
    }
}

/// Classifies an expression as a forbidden nondeterministic read or
/// shared-state access. Returns a description and line.
fn nondeterministic_read(e: &Expr) -> Option<(String, u32)> {
    match e {
        Expr::Call { callee, line, .. } => {
            let Expr::Path { segs, .. } = callee.as_ref() else {
                return None;
            };
            let path = segs.join("::");
            let last = segs.last().map(String::as_str).unwrap_or("");
            let prev = segs
                .len()
                .checked_sub(2)
                .and_then(|i| segs.get(i))
                .map(String::as_str)
                .unwrap_or("");
            match (prev, last) {
                ("Instant" | "SystemTime", "now") => {
                    Some((format!("wall-clock read `{path}()`"), *line))
                }
                ("thread", "current") => Some((format!("thread-identity read `{path}()`"), *line)),
                ("process", "id") => Some((format!("process-id read `{path}()`"), *line)),
                ("env", "var" | "var_os" | "vars") => {
                    Some((format!("environment read `{path}()`"), *line))
                }
                _ => None,
            }
        }
        Expr::MethodCall {
            name, args, line, ..
        } if args.is_empty() && matches!(name.as_str(), "lock" | "borrow_mut") => {
            Some((format!("shared-state access `.{name}()`"), *line))
        }
        _ => None,
    }
}

fn report(file: &SourceFile, findings: &mut Vec<Finding>, line: u32, message: String) {
    if file.is_suppressed("L010", line) {
        return;
    }
    findings.push(Finding {
        rule: "L010",
        rel: file.rel.clone(),
        line,
        message,
        snippet: file.line_text(line).to_string(),
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_file;

    fn run(src: &str) -> Vec<Finding> {
        let file = SourceFile::parse("crates/train/src/x.rs", src);
        let parsed = parse_file(&file.tokens);
        let mut findings = Vec::new();
        l010_par_closures(&file, &parsed, &mut findings);
        findings
    }

    #[test]
    fn clock_read_in_par_map_closure_is_flagged() {
        let src = "fn f(ex: &E, items: &[u32]) {\n    let out = ex.par_map(items, |i, x| {\n        let t = std::time::Instant::now();\n        x + i\n    });\n}";
        let f = run(src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("wall-clock"));
    }

    #[test]
    fn env_and_thread_reads_are_flagged() {
        let src = "fn f(ex: &E, items: &[u32]) {\n    ex.par_map(items, |i, x| {\n        let v = std::env::var(\"SEED\");\n        let id = std::thread::current();\n        x\n    });\n}";
        let f = run(src);
        assert_eq!(f.len(), 2, "{f:?}");
    }

    #[test]
    fn lock_accumulation_is_flagged() {
        let src = "fn f(ex: &E, items: &[u32], acc: &Mutex<Vec<u32>>) {\n    ex.par_for_chunks(items, 8, |chunk| {\n        acc.lock().push(chunk.len() as u32);\n    });\n}";
        let f = run(src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("lock"));
    }

    #[test]
    fn pure_closures_are_clean() {
        let src = "fn f(ex: &E, items: &[f64]) {\n    let out = ex.par_map(items, |i, x| {\n        let seed = derive_seed(42, i);\n        x * 2.0 + seed as f64\n    });\n}";
        assert!(run(src).is_empty(), "{:?}", run(src));
    }

    #[test]
    fn clock_reads_outside_par_closures_are_not_l010() {
        let src = "fn f() {\n    let t = std::time::Instant::now();\n}";
        assert!(run(src).is_empty());
    }

    #[test]
    fn free_fn_call_form_is_covered() {
        let src = "fn f(items: &[u32]) {\n    let out = par_map(items, |i, x| {\n        std::process::id() + x\n    });\n}";
        let f = run(src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("process-id"));
    }

    #[test]
    fn suppression_silences_l010() {
        let src = "fn f(ex: &E, items: &[u32]) {\n    ex.par_map(items, |i, x| {\n        // lint: allow(L010, reason = \"diagnostic-only timing, excluded from result bytes\")\n        let t = std::time::Instant::now();\n        x\n    });\n}";
        assert!(run(src).is_empty(), "{:?}", run(src));
    }

    #[test]
    fn fires_in_test_code_too() {
        let src = "#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() {\n        let out = ex.par_map(&items, |i, x| std::time::SystemTime::now());\n    }\n}";
        assert_eq!(run(src).len(), 1);
    }
}
