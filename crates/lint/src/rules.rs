//! The rule set: repo-specific invariants L001–L006 (plus L000 for
//! malformed suppression directives).
//!
//! Every rule is a pure function from a [`SourceFile`] to findings;
//! the cross-file telemetry-schema rule (L005) additionally takes the
//! README text. See the README "Static analysis" section for the
//! rationale behind each rule.

use crate::lexer::TokenKind;
use crate::source::SourceFile;

/// One rule violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule id (`L001` … `L005`, or `L000` for broken directives).
    pub rule: &'static str,
    /// Repo-relative path.
    pub rel: String,
    /// 1-based line.
    pub line: u32,
    /// Human-readable explanation.
    pub message: String,
    /// Trimmed source line, used for display and as the baseline key.
    pub snippet: String,
}

/// Crates whose arithmetic is numerically load-bearing: float equality
/// is a correctness smell there (L002).
pub const NUMERIC_CRATES: &[&str] = &[
    "linalg",
    "autodiff",
    "spice",
    "surrogate",
    "core",
    "train",
    "bench",
];

/// Crates whose public `f64` surface models physical quantities and
/// must carry unit-suffixed names (L004).
pub const UNIT_CRATES: &[&str] = &["spice", "core", "surrogate"];

/// Unit words accepted by L004, either as a whole parameter/field name
/// (`volts: f64`) or as a `_suffix` (`budget_watts`). The canonical
/// five from the repo policy come first; the rest extend the same idea
/// to the quantities the SPICE layer actually traffics in.
pub const UNIT_WORDS: &[&str] = &[
    "watts", "volts", "ohms", "seconds", "ms", // canonical
    "mw", "uw", "mv", "kohms", "amps", "ma", "ua", "farads", "nf", "pf", "siemens", "us", "ns",
    "hz", "khz", "m", "um", "nm", "celsius", "joules", "mj", "uj",
];

/// Rule ids with one-line descriptions (`--list`).
pub const RULES: &[(&str, &str)] = &[
    ("L000", "malformed `// lint:` directive"),
    (
        "L001",
        "no panic!/todo!/unimplemented!/.unwrap()/.expect() in non-test library code",
    ),
    ("L002", "no ==/!= against float literals in numeric crates"),
    (
        "L003",
        "no static mut / global interior-mutable state (telemetry stays explicitly threaded)",
    ),
    (
        "L004",
        "public f64 fields and pub fn f64 params in spice/core/surrogate carry a unit suffix",
    ),
    (
        "L005",
        "every telemetry event name emitted in code appears in the README event-schema table",
    ),
    (
        "L006",
        "no raw std::thread::spawn / std::thread::scope outside pnc-parallel (use the executor)",
    ),
    (
        "L007",
        "no raw std::time::Instant::now() outside pnc-telemetry (use Stopwatch)",
    ),
    (
        "L008",
        "unit-suffixed arithmetic is dimensionally consistent (volts*amps=watts, no mw+watts)",
    ),
    (
        "L009",
        "no HashMap/HashSet iteration feeding ordered output or float accumulation without a sort",
    ),
    (
        "L010",
        "no clock/thread/env reads or locked accumulation inside par_map/par_reduce closures",
    ),
];

fn push(
    findings: &mut Vec<Finding>,
    file: &SourceFile,
    rule: &'static str,
    line: u32,
    message: String,
) {
    if file.is_suppressed(rule, line) {
        return;
    }
    findings.push(Finding {
        rule,
        rel: file.rel.clone(),
        line,
        message,
        snippet: file.line_text(line).to_string(),
    });
}

/// Runs every single-file rule (L000–L004) on `file`.
pub fn check_file(file: &SourceFile) -> Vec<Finding> {
    let mut findings = Vec::new();
    l000_malformed_directives(file, &mut findings);
    l001_no_panics(file, &mut findings);
    if NUMERIC_CRATES.contains(&file.crate_name.as_str()) {
        l002_float_equality(file, &mut findings);
    }
    l003_global_state(file, &mut findings);
    if UNIT_CRATES.contains(&file.crate_name.as_str()) {
        l004_unit_suffixes(file, &mut findings);
    }
    if file.crate_name != "parallel" {
        l006_raw_threads(file, &mut findings);
    }
    if file.crate_name != "telemetry" {
        l007_raw_instant(file, &mut findings);
    }
    findings
}

/// Runs the semantic (AST-based) rules L008–L010 on one parsed file,
/// resolving call-site units against the workspace `table`.
pub fn check_file_ast(
    file: &SourceFile,
    parsed: &crate::parse::ParsedFile,
    table: &crate::sym::SymbolTable,
) -> Vec<Finding> {
    let mut findings = Vec::new();
    crate::dim::l008_dimensions(file, parsed, table, &mut findings);
    crate::order::l009_hash_order(file, parsed, &mut findings);
    crate::par_det::l010_par_closures(file, parsed, &mut findings);
    findings
}

/// L000: malformed suppression directives never silently do nothing.
fn l000_malformed_directives(file: &SourceFile, findings: &mut Vec<Finding>) {
    for m in &file.malformed {
        // Not suppressible: a directive cannot vouch for itself.
        findings.push(Finding {
            rule: "L000",
            rel: file.rel.clone(),
            line: m.line,
            message: m.message.clone(),
            snippet: file.line_text(m.line).to_string(),
        });
    }
}

/// L001: panic-free library code. A silent panic inside a SPICE Newton
/// iteration or the augmented-Lagrangian loop invalidates a whole run;
/// library paths must return typed errors instead.
fn l001_no_panics(file: &SourceFile, findings: &mut Vec<Finding>) {
    let toks = &file.tokens;
    for i in 0..toks.len() {
        if file.in_test[i] {
            continue;
        }
        let t = &toks[i];
        if t.kind != TokenKind::Ident {
            continue;
        }
        let next_is = |off: usize, s: &str| toks.get(i + off).is_some_and(|t| t.text == s);
        match t.text.as_str() {
            "panic" | "todo" | "unimplemented" if next_is(1, "!") => {
                push(
                    findings,
                    file,
                    "L001",
                    t.line,
                    format!(
                        "`{}!` in non-test library code — return a typed error instead",
                        t.text
                    ),
                );
            }
            "unwrap" if i > 0 && toks[i - 1].text == "." && next_is(1, "(") && next_is(2, ")") => {
                push(
                    findings,
                    file,
                    "L001",
                    t.line,
                    "`.unwrap()` in non-test library code — propagate the error or document \
                     the invariant with `lint: allow`"
                        .to_string(),
                );
            }
            "expect" if i > 0 && toks[i - 1].text == "." && next_is(1, "(") => {
                push(
                    findings,
                    file,
                    "L001",
                    t.line,
                    "`.expect()` in non-test library code — propagate the error or document \
                     the invariant with `lint: allow`"
                        .to_string(),
                );
            }
            _ => {}
        }
    }
}

/// L002: `==`/`!=` where one operand is a float literal. Exact float
/// comparison is almost always a latent bug in solver/trainer code;
/// genuinely bit-exact sentinels get a justifying `lint: allow`.
fn l002_float_equality(file: &SourceFile, findings: &mut Vec<Finding>) {
    let toks = &file.tokens;
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokenKind::Punct || (t.text != "==" && t.text != "!=") {
            continue;
        }
        let prev_float = i > 0 && toks[i - 1].kind == TokenKind::Float;
        // Look right, skipping unary minus and open parens.
        let mut j = i + 1;
        while toks
            .get(j)
            .is_some_and(|t| t.kind == TokenKind::Punct && (t.text == "-" || t.text == "("))
        {
            j += 1;
        }
        let next_float = toks.get(j).is_some_and(|t| t.kind == TokenKind::Float);
        if prev_float || next_float {
            push(
                findings,
                file,
                "L002",
                t.line,
                format!(
                    "float literal compared with `{}` — use an epsilon tolerance, or justify \
                     bit-exactness with `lint: allow(L002, …)`",
                    t.text
                ),
            );
        }
    }
}

/// Interior-mutability wrappers that make a `static` global state.
fn is_interior_mutable_type(name: &str) -> bool {
    name.starts_with("Atomic")
        || matches!(
            name,
            "Mutex"
                | "RwLock"
                | "RefCell"
                | "Cell"
                | "UnsafeCell"
                | "OnceLock"
                | "OnceCell"
                | "LazyLock"
                | "LazyCell"
        )
}

/// L003: no `static mut`, no interior-mutable statics. The telemetry
/// layer threads its handles explicitly; ambient globals reintroduce
/// exactly the hidden coupling PR 1 removed.
fn l003_global_state(file: &SourceFile, findings: &mut Vec<Finding>) {
    let toks = &file.tokens;
    for i in 0..toks.len() {
        let t = &toks[i];
        if t.kind != TokenKind::Ident || t.text != "static" {
            continue;
        }
        // Test fixtures may cache expensive setup in a static; the rule
        // targets ambient state that production code can reach.
        if file.in_test[i] {
            continue;
        }
        if toks.get(i + 1).is_some_and(|t| t.text == "mut") {
            push(
                findings,
                file,
                "L003",
                t.line,
                "`static mut` — use message passing or an explicitly threaded handle".to_string(),
            );
            continue;
        }
        // `static NAME: <type…> =` — scan the type tokens for interior
        // mutability. Stop at `=` or `;`.
        let mut j = i + 1;
        let mut saw_colon = false;
        while let Some(tok) = toks.get(j) {
            match tok.text.as_str() {
                ":" => saw_colon = true,
                "=" | ";" => break,
                _ if saw_colon
                    && tok.kind == TokenKind::Ident
                    && is_interior_mutable_type(&tok.text) =>
                {
                    push(
                        findings,
                        file,
                        "L003",
                        t.line,
                        format!(
                            "global mutable state: `static … : {}` — thread a handle instead, \
                             or justify with `lint: allow(L003, …)`",
                            tok.text
                        ),
                    );
                    break;
                }
                _ => {}
            }
            j += 1;
            if j > i + 24 {
                break; // types longer than this are not statics we can judge
            }
        }
    }
}

/// True when `name` satisfies the unit-suffix policy.
fn has_unit_suffix(name: &str) -> bool {
    UNIT_WORDS
        .iter()
        .any(|u| name == *u || name.strip_suffix(u).is_some_and(|stem| stem.ends_with('_')))
}

/// L004: public `f64` struct fields and `pub fn` `f64` parameters in
/// the physics-bearing crates carry a unit-suffixed name (`_watts`,
/// `_volts`, …) or an explicit `// lint: dimensionless` note, so a
/// milliwatt can never silently meet a watt.
fn l004_unit_suffixes(file: &SourceFile, findings: &mut Vec<Finding>) {
    let toks = &file.tokens;
    for i in 0..toks.len() {
        if file.in_test[i] || toks[i].text != "pub" || toks[i].kind != TokenKind::Ident {
            continue;
        }
        match toks.get(i + 1) {
            // `pub name: f64` followed by `,` or `}` can only be a
            // struct field (params are never `pub`).
            Some(name) if name.kind == TokenKind::Ident && !is_item_keyword(&name.text) => {
                let is_field = toks.get(i + 2).is_some_and(|t| t.text == ":")
                    && toks.get(i + 3).is_some_and(|t| t.text == "f64")
                    && toks
                        .get(i + 4)
                        .is_some_and(|t| t.text == "," || t.text == "}");
                if is_field && !has_unit_suffix(&name.text) && !file.is_dimensionless(name.line) {
                    push(
                        findings,
                        file,
                        "L004",
                        name.line,
                        format!(
                            "public f64 field `{}` has no unit suffix (_watts, _volts, _ohms, \
                             _seconds, _ms, …) — rename it or annotate `// lint: dimensionless`",
                            name.text
                        ),
                    );
                }
            }
            Some(kw) if kw.text == "fn" => {
                check_pub_fn_params(file, i + 1, findings);
            }
            _ => {}
        }
    }
}

fn is_item_keyword(s: &str) -> bool {
    matches!(
        s,
        "fn" | "struct"
            | "enum"
            | "mod"
            | "use"
            | "const"
            | "static"
            | "type"
            | "trait"
            | "impl"
            | "crate"
            | "unsafe"
            | "async"
            | "extern"
            | "dyn"
            | "self"
            | "Self"
            | "where"
    )
}

/// Scans the parameter list of the `pub fn` whose `fn` token sits at
/// `fn_idx`, flagging `name: f64` / `name: &f64` params without a unit
/// suffix.
fn check_pub_fn_params(file: &SourceFile, fn_idx: usize, findings: &mut Vec<Finding>) {
    let toks = &file.tokens;
    // fn name, then optional generics, then the parameter `(`.
    let mut j = fn_idx + 2;
    if toks.get(fn_idx + 1).is_none() {
        return;
    }
    if toks.get(j).is_some_and(|t| t.text == "<") {
        let mut angle = 0isize;
        while let Some(t) = toks.get(j) {
            match t.text.as_str() {
                "<" | "<<" => angle += if t.text == "<<" { 2 } else { 1 },
                ">" | ">>" => angle -= if t.text == ">>" { 2 } else { 1 },
                _ => {}
            }
            j += 1;
            if angle <= 0 {
                break;
            }
        }
    }
    if toks.get(j).is_none_or(|t| t.text != "(") {
        return;
    }
    let open = j;
    let mut depth = 0isize;
    let mut k = open;
    while let Some(t) = toks.get(k) {
        match t.text.as_str() {
            "(" => depth += 1,
            ")" => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            _ => {}
        }
        // Only match params at the top level of the list: `name : [&[mut]] f64`
        // followed by `,` or the closing `)`.
        if depth == 1
            && t.kind == TokenKind::Ident
            && toks.get(k + 1).is_some_and(|n| n.text == ":")
        {
            let mut v = k + 2;
            if toks.get(v).is_some_and(|n| n.text == "&") {
                v += 1;
                if toks.get(v).is_some_and(|n| n.kind == TokenKind::Lifetime) {
                    v += 1;
                }
                if toks.get(v).is_some_and(|n| n.text == "mut") {
                    v += 1;
                }
            }
            let is_f64 = toks.get(v).is_some_and(|n| n.text == "f64")
                && toks
                    .get(v + 1)
                    .is_some_and(|n| n.text == "," || n.text == ")");
            if is_f64 && !has_unit_suffix(&t.text) && !file.is_dimensionless(t.line) {
                push(
                    findings,
                    file,
                    "L004",
                    t.line,
                    format!(
                        "f64 parameter `{}` of a pub fn has no unit suffix (_watts, _volts, \
                         _ohms, _seconds, _ms, …) — rename it or annotate `// lint: dimensionless`",
                        t.text
                    ),
                );
            }
        }
        k += 1;
    }
}

/// L006: raw thread primitives outside `pnc-parallel`. Hand-rolled
/// `std::thread::spawn`/`scope` bypasses the deterministic executor —
/// its thread-count config, index-ordered collection, and panic
/// propagation — so fan-out goes through `pnc_parallel::Executor`.
/// Applies to test code too: a test that genuinely needs raw threads
/// (e.g. exercising per-thread state) documents that with an allow.
fn l006_raw_threads(file: &SourceFile, findings: &mut Vec<Finding>) {
    let toks = &file.tokens;
    for i in 0..toks.len() {
        let t = &toks[i];
        if t.kind != TokenKind::Ident || t.text != "thread" {
            continue;
        }
        let next_is = |off: usize, s: &str| toks.get(i + off).is_some_and(|t| t.text == s);
        if next_is(1, "::") && (next_is(2, "spawn") || next_is(2, "scope")) {
            let prim = &toks[i + 2].text;
            push(
                findings,
                file,
                "L006",
                t.line,
                format!(
                    "raw `thread::{prim}` outside pnc-parallel — fan out through \
                     `pnc_parallel::Executor` (deterministic, --threads-aware), or justify \
                     with `lint: allow(L006, …)`",
                ),
            );
        }
    }
}

/// L007: raw clock reads outside `pnc-telemetry`. Every elapsed-time
/// measurement goes through `pnc_telemetry::Stopwatch` (or a profiler
/// scope / `StreamHistogram::start_sample`), so the observability
/// layer owns every clock read and timing is attributable. Applies to
/// test code too — tests time things with the same primitives.
fn l007_raw_instant(file: &SourceFile, findings: &mut Vec<Finding>) {
    let toks = &file.tokens;
    for i in 0..toks.len() {
        let t = &toks[i];
        if t.kind != TokenKind::Ident || t.text != "Instant" {
            continue;
        }
        let next_is = |off: usize, s: &str| toks.get(i + off).is_some_and(|t| t.text == s);
        if next_is(1, "::") && next_is(2, "now") {
            push(
                findings,
                file,
                "L007",
                t.line,
                "raw `Instant::now()` outside pnc-telemetry — time through \
                 `pnc_telemetry::Stopwatch` (or a profiler scope), or justify with \
                 `lint: allow(L007, …)`"
                    .to_string(),
            );
        }
    }
}

/// Collects the telemetry event names a file emits: string literals in
/// `Event::new("…", …)` position, outside test code.
pub fn emitted_event_names(file: &SourceFile) -> Vec<(String, u32)> {
    let toks = &file.tokens;
    let mut out = Vec::new();
    for i in 0..toks.len() {
        if file.in_test[i] {
            continue;
        }
        let is = |off: usize, s: &str| toks.get(i + off).is_some_and(|t| t.text == s);
        if toks[i].text == "Event" && is(1, "::") && is(2, "new") && is(3, "(") {
            if let Some(lit) = toks.get(i + 4) {
                if let Some(name) = lit.string_content() {
                    out.push((name.to_string(), lit.line));
                }
            }
        }
    }
    out
}

/// Parses the README's event-schema table: the markdown table whose
/// header row contains an `event` column. Returns every backticked
/// name found in the first column.
pub fn schema_event_names(readme: &str) -> Vec<String> {
    let mut names = Vec::new();
    let mut in_table = false;
    for line in readme.lines() {
        let trimmed = line.trim();
        if !trimmed.starts_with('|') {
            in_table = false;
            continue;
        }
        let first_cell = trimmed.trim_matches('|').split('|').next().unwrap_or("");
        if !in_table {
            if first_cell.trim() == "event" {
                in_table = true;
            }
            continue;
        }
        // Header separator (`|---|…`) and data rows both pass through
        // here; only backticked names are collected.
        let mut rest = first_cell;
        while let Some(start) = rest.find('`') {
            let tail = &rest[start + 1..];
            let Some(end) = tail.find('`') else {
                break;
            };
            let name = &tail[..end];
            if !name.is_empty() {
                names.push(name.to_string());
            }
            rest = &tail[end + 1..];
        }
    }
    names
}

/// L005: schema drift. Every event name emitted by library code must
/// be documented in the README event table — otherwise dashboards and
/// `jq` pipelines silently miss data.
pub fn l005_schema_drift(files: &[SourceFile], readme: &str) -> Vec<Finding> {
    let documented = schema_event_names(readme);
    let mut findings = Vec::new();
    for file in files {
        for (name, line) in emitted_event_names(file) {
            if documented.iter().any(|d| d == &name) {
                continue;
            }
            if file.is_suppressed("L005", line) {
                continue;
            }
            findings.push(Finding {
                rule: "L005",
                rel: file.rel.clone(),
                line,
                message: format!(
                    "telemetry event `{name}` is emitted here but missing from the README \
                     event-schema table — document it (or suppress with a reason)"
                ),
                snippet: file.line_text(line).to_string(),
            });
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(rel: &str, src: &str) -> SourceFile {
        SourceFile::parse(rel, src)
    }

    fn rules_of(findings: &[Finding]) -> Vec<&str> {
        findings.iter().map(|f| f.rule).collect()
    }

    #[test]
    fn l001_fires_outside_tests_only() {
        let src = "fn f(x: Option<u8>) -> u8 { x.unwrap() }\n#[cfg(test)]\nmod tests { fn t() { None::<u8>.unwrap(); } }\n";
        let f = file("crates/core/src/x.rs", src);
        let findings = check_file(&f);
        assert_eq!(rules_of(&findings), vec!["L001"]);
        assert_eq!(findings[0].line, 1);
    }

    #[test]
    fn l001_ignores_unwrap_or_variants() {
        let src = "fn f(x: Option<u8>) -> u8 { x.unwrap_or(0).max(x.unwrap_or_default()) }\n";
        let f = file("crates/core/src/x.rs", src);
        assert!(check_file(&f).is_empty());
    }

    #[test]
    fn l002_only_in_numeric_crates() {
        let src = "fn f(x: f64) -> bool { x == 0.0 }\n";
        assert_eq!(
            rules_of(&check_file(&file("crates/train/src/x.rs", src))),
            vec!["L002"]
        );
        assert!(check_file(&file("crates/cli/src/x.rs", src)).is_empty());
    }

    #[test]
    fn l002_sees_negated_and_parenthesised_literals() {
        let src = "fn f(x: f64) -> bool { x == -(1.5) || 2.0 != x }\n";
        let findings = check_file(&file("crates/linalg/src/x.rs", src));
        assert_eq!(rules_of(&findings), vec!["L002", "L002"]);
    }

    #[test]
    fn l002_ignores_int_comparison() {
        let src = "fn f(x: usize) -> bool { x == 0 }\n";
        assert!(check_file(&file("crates/linalg/src/x.rs", src)).is_empty());
    }

    #[test]
    fn l003_static_mut_and_atomics() {
        let src = "static mut COUNTER: u64 = 0;\nstatic TOTALS: AtomicU64 = AtomicU64::new(0);\nstatic NAMES: Mutex<Vec<String>> = Mutex::new(Vec::new());\n";
        let findings = check_file(&file("crates/core/src/x.rs", src));
        assert_eq!(rules_of(&findings), vec!["L003", "L003", "L003"]);
    }

    #[test]
    fn l003_allows_plain_statics_and_lifetimes() {
        let src = "static NAME: &'static str = \"x\";\npub fn f(s: &'static str) {}\n";
        assert!(check_file(&file("crates/core/src/x.rs", src)).is_empty());
    }

    #[test]
    fn l004_field_and_param() {
        let src = "pub struct P {\n    pub budget: f64,\n    pub budget_watts: f64,\n}\npub fn set(v: f64) {}\npub fn ok(volts: f64, r_ohms: f64) {}\n";
        let findings = check_file(&file("crates/spice/src/x.rs", src));
        assert_eq!(rules_of(&findings), vec!["L004", "L004"]);
        assert!(findings[0].message.contains("budget"));
        assert!(findings[1].message.contains('v'));
    }

    #[test]
    fn l004_respects_dimensionless_note() {
        let src = "pub struct P {\n    // lint: dimensionless\n    pub alpha: f64,\n}\n";
        assert!(check_file(&file("crates/core/src/x.rs", src)).is_empty());
    }

    #[test]
    fn l004_only_unit_crates() {
        let src = "pub struct P { pub alpha: f64 }\n";
        assert!(check_file(&file("crates/train/src/x.rs", src)).is_empty());
    }

    #[test]
    fn l004_generic_fn_params() {
        let src = "pub fn f<T: Fn(f64) -> f64>(cb: T, gain: f64) {}\n";
        let findings = check_file(&file("crates/spice/src/x.rs", src));
        assert_eq!(rules_of(&findings), vec!["L004"]);
        assert!(findings[0].message.contains("gain"));
    }

    #[test]
    fn l005_detects_drift() {
        let readme = "| event | emitted by |\n|---|---|\n| `epoch` | trainer |\n| `dc_solve` / `dc_solve_failed` | spice |\n";
        let src = "fn f(tel: &T) { tel.emit(Event::new(\"epoch\", Level::Info)); tel.emit(Event::new(\"mystery\", Level::Info)); }\n";
        let f = file("crates/train/src/x.rs", src);
        let findings = l005_schema_drift(&[f], readme);
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("mystery"));
    }

    #[test]
    fn l005_slash_separated_cells() {
        let names = schema_event_names(
            "| event | x |\n|---|---|\n| `dc_solve` / `dc_solve_failed` | spice |\n",
        );
        assert_eq!(names, vec!["dc_solve", "dc_solve_failed"]);
    }

    #[test]
    fn l006_flags_raw_spawn_and_scope_everywhere_but_parallel() {
        let src = "fn f() { std::thread::spawn(|| {}); }\nfn g() { std::thread::scope(|s| {}); }\n";
        let findings = check_file(&file("crates/core/src/x.rs", src));
        assert_eq!(rules_of(&findings), vec!["L006", "L006"]);
        assert!(check_file(&file("crates/parallel/src/x.rs", src)).is_empty());
    }

    #[test]
    fn l006_fires_inside_tests_and_ignores_other_thread_items() {
        let in_test = "#[cfg(test)]\nmod tests { fn t() { std::thread::scope(|s| {}); } }\n";
        assert_eq!(
            rules_of(&check_file(&file("crates/core/src/x.rs", in_test))),
            vec!["L006"]
        );
        let benign =
            "fn f() { std::thread::sleep(d); let n = std::thread::available_parallelism(); }\n";
        assert!(check_file(&file("crates/core/src/x.rs", benign)).is_empty());
    }

    #[test]
    fn l007_flags_raw_instant_everywhere_but_telemetry() {
        let src =
            "fn f() { let t = std::time::Instant::now(); }\nfn g() { let t = Instant::now(); }\n";
        let findings = check_file(&file("crates/train/src/x.rs", src));
        assert_eq!(rules_of(&findings), vec!["L007", "L007"]);
        assert!(check_file(&file("crates/telemetry/src/x.rs", src)).is_empty());
    }

    #[test]
    fn l007_fires_in_tests_and_ignores_other_instant_uses() {
        let in_test = "#[cfg(test)]\nmod tests { fn t() { let x = Instant::now(); } }\n";
        assert_eq!(
            rules_of(&check_file(&file("crates/core/src/x.rs", in_test))),
            vec!["L007"]
        );
        let benign = "fn f(started: Instant) -> Duration { started.elapsed() }\n";
        assert!(check_file(&file("crates/core/src/x.rs", benign)).is_empty());
    }

    #[test]
    fn suppression_silences_with_reason() {
        let src = "fn f(x: Option<u8>) -> u8 {\n    // lint: allow(L001, reason = \"prototyping\")\n    x.unwrap()\n}\n";
        assert!(check_file(&file("crates/core/src/x.rs", src)).is_empty());
    }

    #[test]
    fn l000_fires_on_malformed_directive_and_resists_suppression() {
        let src = "// lint: allow(L001)\nfn f() {}\n";
        let findings = check_file(&file("crates/core/src/x.rs", src));
        assert_eq!(rules_of(&findings), vec!["L000"]);
    }
}
