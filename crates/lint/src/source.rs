//! Per-file analysis context: tokens, test regions, suppressions.
//!
//! Rules operate on a [`SourceFile`], which augments the raw token
//! stream with the two pieces of repo policy every rule needs:
//!
//! * **test regions** — token spans under a `#[cfg(test)]` or `#[test]`
//!   attribute. L001 (panic hygiene) only applies outside them, because
//!   tests are exactly where `unwrap()` is idiomatic.
//! * **suppressions** — `// lint: allow(Lxxx, reason = "…")` and
//!   `// lint: dimensionless` comments, honoured on the same line as a
//!   finding or on the line directly above it. A reason is mandatory;
//!   malformed suppressions are themselves reported (rule L000).

use crate::lexer::{lex, Comment, Token};

/// A parsed `// lint: …` directive.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Suppression {
    /// Line the comment starts on (1-based).
    pub line: u32,
    /// Rule ids this directive allows (e.g. `["L001"]`).
    pub rules: Vec<String>,
    /// The mandatory justification.
    pub reason: String,
}

/// A malformed `// lint: …` directive, reported as rule L000.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MalformedSuppression {
    /// Line the comment starts on.
    pub line: u32,
    /// What was wrong with it.
    pub message: String,
}

/// One source file, lexed and annotated for rule evaluation.
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Repo-relative path with `/` separators (stable across hosts —
    /// used in findings and baseline keys).
    pub rel: String,
    /// Crate directory name (`core` for `crates/core/src/…`, `pnc` for
    /// the workspace root `src/`).
    pub crate_name: String,
    /// Raw file text.
    pub text: String,
    /// Code tokens.
    pub tokens: Vec<Token>,
    /// Per-token flag: inside a `#[cfg(test)]`/`#[test]` region.
    pub in_test: Vec<bool>,
    /// Well-formed suppression directives.
    pub suppressions: Vec<Suppression>,
    /// `lint: dimensionless` annotation lines (L004).
    pub dimensionless_lines: Vec<u32>,
    /// Malformed directives to surface as L000.
    pub malformed: Vec<MalformedSuppression>,
}

impl SourceFile {
    /// Lexes and annotates `text` presented under repo-relative `rel`.
    pub fn parse(rel: &str, text: &str) -> SourceFile {
        let out = lex(text);
        let in_test = mark_test_regions(&out.tokens);
        let (suppressions, dimensionless_lines, malformed) = parse_directives(&out.comments);
        SourceFile {
            rel: rel.to_string(),
            crate_name: crate_of(rel),
            text: text.to_string(),
            tokens: out.tokens,
            in_test,
            suppressions,
            dimensionless_lines,
            malformed,
        }
    }

    /// The trimmed text of 1-based `line` (empty when out of range).
    pub fn line_text(&self, line: u32) -> &str {
        self.text
            .lines()
            .nth(line.saturating_sub(1) as usize)
            .map(str::trim)
            .unwrap_or("")
    }

    /// True when `rule` is suppressed for a finding on `line` — i.e. a
    /// well-formed allow directive sits on the same line or the line
    /// directly above.
    pub fn is_suppressed(&self, rule: &str, line: u32) -> bool {
        self.suppressions
            .iter()
            .any(|s| (s.line == line || s.line + 1 == line) && s.rules.iter().any(|r| r == rule))
    }

    /// True when `line` carries (or follows) a `lint: dimensionless`
    /// annotation.
    pub fn is_dimensionless(&self, line: u32) -> bool {
        self.dimensionless_lines
            .iter()
            .any(|&l| l == line || l + 1 == line)
    }
}

/// Maps a repo-relative path to the crate directory that owns it.
fn crate_of(rel: &str) -> String {
    let mut parts = rel.split('/');
    match parts.next() {
        Some("crates") => parts.next().unwrap_or("").to_string(),
        _ => "pnc".to_string(),
    }
}

/// Marks every token under a `#[cfg(test)]` or `#[test]` attribute:
/// from the attribute itself through the matching close brace of the
/// item that follows it.
fn mark_test_regions(tokens: &[Token]) -> Vec<bool> {
    let mut in_test = vec![false; tokens.len()];
    let mut i = 0usize;
    while i < tokens.len() {
        if let Some(attr_end) = test_attribute_end(tokens, i) {
            // Skip any further attributes stacked on the same item.
            let mut j = attr_end;
            while tokens.get(j).is_some_and(|t| t.text == "#") {
                j = skip_attribute(tokens, j);
            }
            // Find the item's opening brace (or a terminating `;` for
            // brace-less items such as `mod tests;`).
            let mut depth = 0usize;
            let mut k = j;
            while k < tokens.len() {
                match tokens[k].text.as_str() {
                    "{" => {
                        depth += 1;
                    }
                    "}" => {
                        depth = depth.saturating_sub(1);
                        if depth == 0 {
                            break;
                        }
                    }
                    ";" if depth == 0 => break,
                    _ => {}
                }
                k += 1;
            }
            let end = (k + 1).min(tokens.len());
            for flag in in_test.iter_mut().take(end).skip(i) {
                *flag = true;
            }
            i = end;
        } else {
            i += 1;
        }
    }
    in_test
}

/// When tokens at `i` spell `#[cfg(test)]` or `#[test]` (possibly
/// `#[cfg(all(test, …))]`), returns the index just past the closing
/// `]`.
fn test_attribute_end(tokens: &[Token], i: usize) -> Option<usize> {
    if tokens.get(i)?.text != "#" || tokens.get(i + 1)?.text != "[" {
        return None;
    }
    let end = skip_attribute(tokens, i);
    let body: Vec<&str> = tokens[i + 2..end.saturating_sub(1)]
        .iter()
        .map(|t| t.text.as_str())
        .collect();
    let is_test = match body.first() {
        Some(&"test") => body.len() == 1,
        Some(&"cfg") => body.contains(&"test"),
        _ => false,
    };
    is_test.then_some(end)
}

/// Given `tokens[i] == "#"` starting an attribute, returns the index
/// just past its closing `]`.
fn skip_attribute(tokens: &[Token], i: usize) -> usize {
    let mut depth = 0usize;
    let mut k = i + 1;
    while k < tokens.len() {
        match tokens[k].text.as_str() {
            "[" => depth += 1,
            "]" => {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    return k + 1;
                }
            }
            _ => {}
        }
        k += 1;
    }
    tokens.len()
}

/// Parses `lint:` directives out of the comment stream.
#[allow(clippy::type_complexity)]
fn parse_directives(
    comments: &[Comment],
) -> (Vec<Suppression>, Vec<u32>, Vec<MalformedSuppression>) {
    let mut sups = Vec::new();
    let mut dimensionless = Vec::new();
    let mut malformed = Vec::new();
    for c in comments {
        let body = c.text.trim();
        let Some(rest) = body.strip_prefix("lint:") else {
            continue;
        };
        let rest = rest.trim();
        if rest.starts_with("dimensionless") {
            dimensionless.push(c.line);
            continue;
        }
        if let Some(args) = rest
            .strip_prefix("allow")
            .and_then(|a| a.trim().strip_prefix('('))
            .and_then(|a| a.rfind(')').map(|p| &a[..p]))
        {
            match parse_allow_args(args) {
                Ok((rules, reason)) => sups.push(Suppression {
                    line: c.line,
                    rules,
                    reason,
                }),
                Err(message) => malformed.push(MalformedSuppression {
                    line: c.line,
                    message,
                }),
            }
        } else {
            malformed.push(MalformedSuppression {
                line: c.line,
                message: format!(
                    "unrecognised lint directive `{body}` — expected \
                     `lint: allow(Lxxx, reason = \"…\")` or `lint: dimensionless`"
                ),
            });
        }
    }
    (sups, dimensionless, malformed)
}

/// Parses the inside of `allow(…)`: one or more rule ids, then a
/// mandatory `reason = "…"`.
fn parse_allow_args(args: &str) -> Result<(Vec<String>, String), String> {
    let mut rules = Vec::new();
    let mut reason = None;
    for part in split_top_level(args) {
        let part = part.trim();
        if let Some(r) = part.strip_prefix("reason") {
            let r = r.trim().strip_prefix('=').map(str::trim).unwrap_or("");
            let r = r.strip_prefix('"').and_then(|r| r.strip_suffix('"'));
            match r {
                Some(text) if !text.trim().is_empty() => reason = Some(text.trim().to_string()),
                _ => return Err("allow() has an empty or unquoted reason".to_string()),
            }
        } else if part.len() == 4
            && part.starts_with('L')
            && part[1..].chars().all(|c| c.is_ascii_digit())
        {
            rules.push(part.to_string());
        } else {
            return Err(format!("unrecognised allow() argument `{part}`"));
        }
    }
    if rules.is_empty() {
        return Err("allow() names no rule (expected e.g. L001)".to_string());
    }
    match reason {
        Some(reason) => Ok((rules, reason)),
        None => Err("allow() is missing the mandatory reason = \"…\"".to_string()),
    }
}

/// Splits on commas that are not inside quotes.
fn split_top_level(s: &str) -> Vec<String> {
    let mut parts = Vec::new();
    let mut cur = String::new();
    let mut in_str = false;
    let mut prev_backslash = false;
    for c in s.chars() {
        match c {
            '"' if !prev_backslash => {
                in_str = !in_str;
                cur.push(c);
            }
            ',' if !in_str => {
                parts.push(std::mem::take(&mut cur));
            }
            _ => cur.push(c),
        }
        prev_backslash = c == '\\' && !prev_backslash;
    }
    if !cur.trim().is_empty() {
        parts.push(cur);
    }
    parts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crate_names() {
        assert_eq!(crate_of("crates/core/src/network.rs"), "core");
        assert_eq!(crate_of("src/lib.rs"), "pnc");
    }

    #[test]
    fn test_region_marking() {
        let src =
            "fn lib() {}\n#[cfg(test)]\nmod tests {\n fn t() { x.unwrap(); }\n}\nfn lib2() {}\n";
        let f = SourceFile::parse("crates/core/src/x.rs", src);
        let unwrap_idx = f
            .tokens
            .iter()
            .position(|t| t.text == "unwrap")
            .expect("unwrap token");
        assert!(f.in_test[unwrap_idx]);
        let lib2 = f
            .tokens
            .iter()
            .position(|t| t.text == "lib2")
            .expect("lib2 token");
        assert!(!f.in_test[lib2]);
    }

    #[test]
    fn test_attribute_on_fn() {
        let src = "#[test]\nfn t() { x.unwrap(); }\nfn lib() {}\n";
        let f = SourceFile::parse("crates/core/src/x.rs", src);
        let unwrap_idx = f
            .tokens
            .iter()
            .position(|t| t.text == "unwrap")
            .expect("unwrap token");
        assert!(f.in_test[unwrap_idx]);
        let lib = f
            .tokens
            .iter()
            .position(|t| t.text == "lib")
            .expect("lib token");
        assert!(!f.in_test[lib]);
    }

    #[test]
    fn stacked_attributes_stay_in_test() {
        let src = "#[cfg(test)]\n#[allow(dead_code)]\nmod tests { fn t() {} }\nfn lib() {}\n";
        let f = SourceFile::parse("crates/core/src/x.rs", src);
        let t = f.tokens.iter().position(|t| t.text == "t").expect("t");
        assert!(f.in_test[t]);
        let lib = f.tokens.iter().position(|t| t.text == "lib").expect("lib");
        assert!(!f.in_test[lib]);
    }

    #[test]
    fn suppression_parsing() {
        let src = "// lint: allow(L001, reason = \"poisoned lock is unrecoverable\")\nx.unwrap();\n// lint: dimensionless\npub alpha: f64,\n";
        let f = SourceFile::parse("crates/core/src/x.rs", src);
        assert!(f.is_suppressed("L001", 2));
        assert!(!f.is_suppressed("L002", 2));
        assert!(!f.is_suppressed("L001", 4));
        assert!(f.is_dimensionless(4));
        assert!(f.malformed.is_empty());
    }

    #[test]
    fn same_line_suppression() {
        let src = "x.unwrap(); // lint: allow(L001, reason = \"checked above\")\n";
        let f = SourceFile::parse("crates/core/src/x.rs", src);
        assert!(f.is_suppressed("L001", 1));
    }

    #[test]
    fn multi_rule_suppression() {
        let src = "// lint: allow(L001, L002, reason = \"both fine here\")\ncode();\n";
        let f = SourceFile::parse("crates/core/src/x.rs", src);
        assert!(f.is_suppressed("L001", 2));
        assert!(f.is_suppressed("L002", 2));
    }

    #[test]
    fn malformed_suppressions_are_reported() {
        for src in [
            "// lint: allow(L001)\n",
            "// lint: allow(reason = \"no rule\")\n",
            "// lint: allow(L001, reason = \"\")\n",
            "// lint: frobnicate\n",
        ] {
            let f = SourceFile::parse("crates/core/src/x.rs", src);
            assert_eq!(f.malformed.len(), 1, "src: {src}");
            assert!(f.suppressions.is_empty(), "src: {src}");
        }
    }
}
