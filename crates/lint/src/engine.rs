//! The driver: walk the workspace sources, run every rule, apply the
//! baseline.

use crate::baseline::{Baseline, BaselineOutcome};
use crate::parse::parse_file;
use crate::rules::{check_file, check_file_ast, l005_schema_drift, Finding};
use crate::source::SourceFile;
use crate::sym::SymbolTable;
use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};

/// Errors the lint driver itself can hit (I/O, bad invocation).
#[derive(Debug)]
pub enum LintError {
    /// Reading a file or directory failed.
    Io {
        /// Path involved.
        path: PathBuf,
        /// Underlying error.
        source: std::io::Error,
    },
    /// The workspace root could not be located.
    NoWorkspaceRoot,
    /// Bad command-line usage.
    Usage(String),
}

impl fmt::Display for LintError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LintError::Io { path, source } => write!(f, "{}: {source}", path.display()),
            LintError::NoWorkspaceRoot => write!(
                f,
                "could not locate the workspace root (a directory containing Cargo.toml and \
                 crates/) — pass --root"
            ),
            LintError::Usage(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for LintError {}

/// Everything one lint run produced, before baseline filtering.
#[derive(Debug)]
pub struct LintRun {
    /// All findings, sorted by path, line, rule.
    pub findings: Vec<Finding>,
    /// Files scanned.
    pub files_scanned: usize,
}

/// Locates the workspace root: walks up from `start` looking for a
/// directory that holds both `Cargo.toml` and `crates/`.
pub fn find_root(start: &Path) -> Option<PathBuf> {
    let mut cur = Some(start.to_path_buf());
    while let Some(dir) = cur {
        if dir.join("Cargo.toml").is_file() && dir.join("crates").is_dir() {
            return Some(dir);
        }
        cur = dir.parent().map(Path::to_path_buf);
    }
    None
}

fn read(path: &Path) -> Result<String, LintError> {
    fs::read_to_string(path).map_err(|source| LintError::Io {
        path: path.to_path_buf(),
        source,
    })
}

/// Collects every `.rs` file under `dir`, recursively, sorted.
fn rust_files(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), LintError> {
    let entries = fs::read_dir(dir).map_err(|source| LintError::Io {
        path: dir.to_path_buf(),
        source,
    })?;
    let mut paths: Vec<PathBuf> = Vec::new();
    for entry in entries {
        let entry = entry.map_err(|source| LintError::Io {
            path: dir.to_path_buf(),
            source,
        })?;
        paths.push(entry.path());
    }
    paths.sort();
    for path in paths {
        if path.is_dir() {
            rust_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// The source roots the lint pass walks: every crate's `src/` plus the
/// workspace-root crate's `src/`. Tests, benches and examples are
/// intentionally out of scope (panic hygiene does not apply there),
/// and the offline dependency shims under `external/` are vendored
/// API-compatibility code, not ours to police.
fn source_roots(root: &Path) -> Result<Vec<PathBuf>, LintError> {
    let mut roots = Vec::new();
    let crates_dir = root.join("crates");
    let entries = fs::read_dir(&crates_dir).map_err(|source| LintError::Io {
        path: crates_dir.clone(),
        source,
    })?;
    let mut dirs: Vec<PathBuf> = Vec::new();
    for entry in entries {
        let entry = entry.map_err(|source| LintError::Io {
            path: crates_dir.clone(),
            source,
        })?;
        dirs.push(entry.path());
    }
    dirs.sort();
    for dir in dirs {
        let src = dir.join("src");
        if src.is_dir() {
            roots.push(src);
        }
    }
    let root_src = root.join("src");
    if root_src.is_dir() {
        roots.push(root_src);
    }
    Ok(roots)
}

fn relative(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

/// Lints the whole workspace under `root`, returning unsorted-by-rule
/// but path-ordered findings.
pub fn lint_workspace(root: &Path) -> Result<LintRun, LintError> {
    let mut files = Vec::new();
    for src_root in source_roots(root)? {
        rust_files(&src_root, &mut files)?;
    }
    let mut parsed = Vec::with_capacity(files.len());
    for path in &files {
        let text = read(path)?;
        parsed.push(SourceFile::parse(&relative(root, path), &text));
    }

    // Semantic pass: parse every file once, build the workspace symbol
    // table, then run the AST rules per file against it.
    let asts: Vec<crate::parse::ParsedFile> =
        parsed.iter().map(|f| parse_file(&f.tokens)).collect();
    let table = SymbolTable::build(&asts);

    let mut findings = Vec::new();
    for (file, ast) in parsed.iter().zip(&asts) {
        findings.extend(check_file(file));
        findings.extend(check_file_ast(file, ast, &table));
    }
    let readme_path = root.join("README.md");
    if readme_path.is_file() {
        let readme = read(&readme_path)?;
        findings.extend(l005_schema_drift(&parsed, &readme));
    }
    sort_findings(&mut findings);
    Ok(LintRun {
        findings,
        files_scanned: parsed.len(),
    })
}

/// Sorts findings into the canonical output order — path, then line,
/// then rule, then message — so reported output is byte-identical
/// regardless of filesystem walk order or rule evaluation order.
pub fn sort_findings(findings: &mut [Finding]) {
    findings.sort_by(|a, b| {
        (&a.rel, a.line, a.rule, &a.message).cmp(&(&b.rel, b.line, b.rule, &b.message))
    });
}

/// Renders findings as a JSON array (std-only, hand-escaped) for
/// `--format json` and CI problem-matcher consumption.
pub fn render_json(findings: &[Finding]) -> String {
    let mut out = String::from("[\n");
    for (i, f) in findings.iter().enumerate() {
        out.push_str(&format!(
            "  {{\"rule\": {}, \"path\": {}, \"line\": {}, \"message\": {}, \"snippet\": {}}}{}\n",
            json_str(f.rule),
            json_str(&f.rel),
            f.line,
            json_str(&f.message),
            json_str(&f.snippet),
            if i + 1 == findings.len() { "" } else { "," }
        ));
    }
    out.push(']');
    out
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Loads the baseline at `path` (absent file = empty baseline) and
/// filters `findings` through it.
pub fn apply_baseline(path: &Path, findings: Vec<Finding>) -> Result<BaselineOutcome, LintError> {
    let baseline = if path.is_file() {
        Baseline::parse(&read(path)?)
    } else {
        Baseline::default()
    };
    Ok(baseline.apply(findings))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn find_root_from_nested_dir() {
        let here = std::env::current_dir().expect("cwd");
        let root = find_root(&here).expect("workspace root");
        assert!(root.join("crates").is_dir());
    }

    #[test]
    fn workspace_scan_sees_many_files() {
        let here = std::env::current_dir().expect("cwd");
        let root = find_root(&here).expect("workspace root");
        let run = lint_workspace(&root).expect("lint run");
        assert!(run.files_scanned > 50, "scanned {}", run.files_scanned);
    }

    fn f(rel: &str, line: u32, rule: &'static str, message: &str) -> Finding {
        Finding {
            rule,
            rel: rel.to_string(),
            line,
            message: message.to_string(),
            snippet: String::new(),
        }
    }

    #[test]
    fn sort_findings_is_canonical_regardless_of_arrival_order() {
        // Scrambled: rule-major, reverse-path, reverse-line — every axis
        // out of order at once.
        let mut scrambled = vec![
            f("crates/z/src/lib.rs", 9, "L001", "late file"),
            f("crates/a/src/lib.rs", 5, "L009", "same line, later rule"),
            f("crates/a/src/lib.rs", 5, "L002", "same line, earlier rule"),
            f("crates/a/src/lib.rs", 2, "L008", "earlier line"),
            f(
                "crates/a/src/lib.rs",
                5,
                "L009",
                "same line+rule, a-message",
            ),
        ];
        let mut reversed: Vec<Finding> = scrambled.iter().cloned().rev().collect();
        sort_findings(&mut scrambled);
        sort_findings(&mut reversed);
        assert_eq!(scrambled, reversed, "sort must erase arrival order");
        let keys: Vec<(&str, u32, &str)> = scrambled
            .iter()
            .map(|x| (x.rel.as_str(), x.line, x.rule))
            .collect();
        assert_eq!(
            keys,
            [
                ("crates/a/src/lib.rs", 2, "L008"),
                ("crates/a/src/lib.rs", 5, "L002"),
                ("crates/a/src/lib.rs", 5, "L009"),
                ("crates/a/src/lib.rs", 5, "L009"),
                ("crates/z/src/lib.rs", 9, "L001"),
            ]
        );
        assert_eq!(scrambled[2].message, "same line+rule, a-message");
    }

    #[test]
    fn workspace_findings_arrive_sorted() {
        let here = std::env::current_dir().expect("cwd");
        let root = find_root(&here).expect("workspace root");
        let run = lint_workspace(&root).expect("lint run");
        let mut resorted = run.findings.clone();
        sort_findings(&mut resorted);
        assert_eq!(run.findings, resorted);
    }

    #[test]
    fn render_json_escapes_and_terminates() {
        let one = vec![f("a.rs", 1, "L001", "say \"no\"\n\ttabbed")];
        let json = render_json(&one);
        assert!(json.starts_with("[\n") && json.ends_with(']'));
        assert!(json.contains("\\\"no\\\""));
        assert!(json.contains("\\n\\ttabbed"));
        assert_eq!(render_json(&[]), "[\n]");
    }
}
