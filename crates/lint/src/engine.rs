//! The driver: walk the workspace sources, run every rule, apply the
//! baseline.

use crate::baseline::{Baseline, BaselineOutcome};
use crate::rules::{check_file, l005_schema_drift, Finding};
use crate::source::SourceFile;
use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};

/// Errors the lint driver itself can hit (I/O, bad invocation).
#[derive(Debug)]
pub enum LintError {
    /// Reading a file or directory failed.
    Io {
        /// Path involved.
        path: PathBuf,
        /// Underlying error.
        source: std::io::Error,
    },
    /// The workspace root could not be located.
    NoWorkspaceRoot,
    /// Bad command-line usage.
    Usage(String),
}

impl fmt::Display for LintError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LintError::Io { path, source } => write!(f, "{}: {source}", path.display()),
            LintError::NoWorkspaceRoot => write!(
                f,
                "could not locate the workspace root (a directory containing Cargo.toml and \
                 crates/) — pass --root"
            ),
            LintError::Usage(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for LintError {}

/// Everything one lint run produced, before baseline filtering.
#[derive(Debug)]
pub struct LintRun {
    /// All findings, sorted by path, line, rule.
    pub findings: Vec<Finding>,
    /// Files scanned.
    pub files_scanned: usize,
}

/// Locates the workspace root: walks up from `start` looking for a
/// directory that holds both `Cargo.toml` and `crates/`.
pub fn find_root(start: &Path) -> Option<PathBuf> {
    let mut cur = Some(start.to_path_buf());
    while let Some(dir) = cur {
        if dir.join("Cargo.toml").is_file() && dir.join("crates").is_dir() {
            return Some(dir);
        }
        cur = dir.parent().map(Path::to_path_buf);
    }
    None
}

fn read(path: &Path) -> Result<String, LintError> {
    fs::read_to_string(path).map_err(|source| LintError::Io {
        path: path.to_path_buf(),
        source,
    })
}

/// Collects every `.rs` file under `dir`, recursively, sorted.
fn rust_files(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), LintError> {
    let entries = fs::read_dir(dir).map_err(|source| LintError::Io {
        path: dir.to_path_buf(),
        source,
    })?;
    let mut paths: Vec<PathBuf> = Vec::new();
    for entry in entries {
        let entry = entry.map_err(|source| LintError::Io {
            path: dir.to_path_buf(),
            source,
        })?;
        paths.push(entry.path());
    }
    paths.sort();
    for path in paths {
        if path.is_dir() {
            rust_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// The source roots the lint pass walks: every crate's `src/` plus the
/// workspace-root crate's `src/`. Tests, benches and examples are
/// intentionally out of scope (panic hygiene does not apply there),
/// and the offline dependency shims under `external/` are vendored
/// API-compatibility code, not ours to police.
fn source_roots(root: &Path) -> Result<Vec<PathBuf>, LintError> {
    let mut roots = Vec::new();
    let crates_dir = root.join("crates");
    let entries = fs::read_dir(&crates_dir).map_err(|source| LintError::Io {
        path: crates_dir.clone(),
        source,
    })?;
    let mut dirs: Vec<PathBuf> = Vec::new();
    for entry in entries {
        let entry = entry.map_err(|source| LintError::Io {
            path: crates_dir.clone(),
            source,
        })?;
        dirs.push(entry.path());
    }
    dirs.sort();
    for dir in dirs {
        let src = dir.join("src");
        if src.is_dir() {
            roots.push(src);
        }
    }
    let root_src = root.join("src");
    if root_src.is_dir() {
        roots.push(root_src);
    }
    Ok(roots)
}

fn relative(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

/// Lints the whole workspace under `root`, returning unsorted-by-rule
/// but path-ordered findings.
pub fn lint_workspace(root: &Path) -> Result<LintRun, LintError> {
    let mut files = Vec::new();
    for src_root in source_roots(root)? {
        rust_files(&src_root, &mut files)?;
    }
    let mut parsed = Vec::with_capacity(files.len());
    for path in &files {
        let text = read(path)?;
        parsed.push(SourceFile::parse(&relative(root, path), &text));
    }

    let mut findings = Vec::new();
    for file in &parsed {
        findings.extend(check_file(file));
    }
    let readme_path = root.join("README.md");
    if readme_path.is_file() {
        let readme = read(&readme_path)?;
        findings.extend(l005_schema_drift(&parsed, &readme));
    }
    findings.sort_by(|a, b| (&a.rel, a.line, a.rule).cmp(&(&b.rel, b.line, b.rule)));
    Ok(LintRun {
        findings,
        files_scanned: parsed.len(),
    })
}

/// Loads the baseline at `path` (absent file = empty baseline) and
/// filters `findings` through it.
pub fn apply_baseline(path: &Path, findings: Vec<Finding>) -> Result<BaselineOutcome, LintError> {
    let baseline = if path.is_file() {
        Baseline::parse(&read(path)?)
    } else {
        Baseline::default()
    };
    Ok(baseline.apply(findings))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn find_root_from_nested_dir() {
        let here = std::env::current_dir().expect("cwd");
        let root = find_root(&here).expect("workspace root");
        assert!(root.join("crates").is_dir());
    }

    #[test]
    fn workspace_scan_sees_many_files() {
        let here = std::env::current_dir().expect("cwd");
        let root = find_root(&here).expect("workspace root");
        let run = lint_workspace(&root).expect("lint run");
        assert!(run.files_scanned > 50, "scanned {}", run.files_scanned);
    }
}
