//! The units algebra behind L008 dimensional analysis.
//!
//! A [`Unit`] is a dimension vector over the five base quantities this
//! repository's physics actually traffics in — volts, amps, seconds,
//! metres, kelvin — plus a decimal scale exponent that distinguishes a
//! milliwatt from a watt. Derived units are composites: `watts = V·A`,
//! `ohms = V/A`, `hz = 1/s`, `farads = A·s/V`. Multiplication adds
//! dimension vectors and scales; division subtracts them; addition,
//! subtraction, comparison and assignment require the vectors (and,
//! when both are known, the scales) to match exactly.
//!
//! The scale is an `Option`: multiplying or dividing by a power-of-ten
//! literal (`1e3`, `0.001`, `1000.0`) is how this codebase converts
//! between scales of the same dimension, so such a factor erases the
//! scale rather than guessing the direction of the conversion. A
//! known-vs-unknown scale never conflicts; two known, different scales
//! do (`x_mw + y_watts` is a finding, `x_watts * 1e3` assigned to a
//! `_mw` name is not).

/// Number of base dimensions: volts, amps, seconds, metres, kelvin.
pub const BASE_DIMS: usize = 5;

/// Names of the base dimensions, for rendering composite units.
const BASE_NAMES: [&str; BASE_DIMS] = ["volts", "amps", "seconds", "m", "celsius"];

/// A unit: base-dimension exponents plus an optional decimal scale
/// exponent (`None` = scale unknown/any, e.g. after a power-of-ten
/// conversion factor).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Unit {
    /// Exponents over [`BASE_NAMES`].
    pub dims: [i8; BASE_DIMS],
    /// Decimal scale exponent relative to the canonical unit
    /// (`Some(-3)` for milli, `Some(0)` for the canonical unit,
    /// `None` for "any scale of these dimensions").
    pub scale10: Option<i16>,
}

/// Suffix words recognised by the dimensional analysis, mapped to
/// their dimension vectors `[V, A, s, m, K]` and scale exponents.
/// Kept in sync with `rules::UNIT_WORDS` (asserted by a test).
pub const SUFFIX_UNITS: &[(&str, [i8; BASE_DIMS], i16)] = &[
    ("volts", [1, 0, 0, 0, 0], 0),
    ("mv", [1, 0, 0, 0, 0], -3),
    ("amps", [0, 1, 0, 0, 0], 0),
    ("ma", [0, 1, 0, 0, 0], -3),
    ("ua", [0, 1, 0, 0, 0], -6),
    ("ohms", [1, -1, 0, 0, 0], 0),
    ("kohms", [1, -1, 0, 0, 0], 3),
    ("siemens", [-1, 1, 0, 0, 0], 0),
    ("watts", [1, 1, 0, 0, 0], 0),
    ("mw", [1, 1, 0, 0, 0], -3),
    ("uw", [1, 1, 0, 0, 0], -6),
    // Energy: joules = watts·seconds = V·A·s.
    ("joules", [1, 1, 1, 0, 0], 0),
    ("mj", [1, 1, 1, 0, 0], -3),
    ("uj", [1, 1, 1, 0, 0], -6),
    ("seconds", [0, 0, 1, 0, 0], 0),
    ("ms", [0, 0, 1, 0, 0], -3),
    ("us", [0, 0, 1, 0, 0], -6),
    ("ns", [0, 0, 1, 0, 0], -9),
    ("hz", [0, 0, -1, 0, 0], 0),
    ("khz", [0, 0, -1, 0, 0], 3),
    ("farads", [-1, 1, 1, 0, 0], 0),
    ("nf", [-1, 1, 1, 0, 0], -9),
    ("pf", [-1, 1, 1, 0, 0], -12),
    ("m", [0, 0, 0, 1, 0], 0),
    ("um", [0, 0, 0, 1, 0], -6),
    ("nm", [0, 0, 0, 1, 0], -9),
    ("celsius", [0, 0, 0, 0, 1], 0),
];

impl Unit {
    /// The unit a suffix word denotes, if it is one we know.
    pub fn from_suffix_word(word: &str) -> Option<Unit> {
        SUFFIX_UNITS
            .iter()
            .find(|(w, _, _)| *w == word)
            .map(|&(_, dims, scale)| Unit {
                dims,
                scale10: Some(scale),
            })
    }

    /// Infers a unit from an identifier: the name must *be* a unit word
    /// or end in `_<word>`. The longest matching word wins (`r_kohms`
    /// is kilo-ohms, not ohms).
    pub fn from_ident(name: &str) -> Option<Unit> {
        let mut best: Option<(&str, Unit)> = None;
        for &(word, dims, scale) in SUFFIX_UNITS {
            let hit = name == word
                || name
                    .strip_suffix(word)
                    .is_some_and(|stem| stem.ends_with('_'));
            if hit && best.is_none_or(|(w, _)| word.len() > w.len()) {
                best = Some((
                    word,
                    Unit {
                        dims,
                        scale10: Some(scale),
                    },
                ));
            }
        }
        best.map(|(_, u)| u)
    }

    /// True when every dimension exponent is zero (a pure number).
    pub fn is_dimensionless(&self) -> bool {
        self.dims.iter().all(|&d| d == 0)
    }

    /// Product of two units: exponents add, scales add (unknown scale
    /// is absorbing).
    pub fn mul(&self, rhs: &Unit) -> Unit {
        let mut dims = [0i8; BASE_DIMS];
        for (i, d) in dims.iter_mut().enumerate() {
            *d = self.dims[i].saturating_add(rhs.dims[i]);
        }
        Unit {
            dims,
            scale10: match (self.scale10, rhs.scale10) {
                (Some(a), Some(b)) => Some(a.saturating_add(b)),
                _ => None,
            },
        }
    }

    /// Quotient of two units: exponents subtract, scales subtract.
    pub fn div(&self, rhs: &Unit) -> Unit {
        self.mul(&rhs.invert())
    }

    /// The reciprocal unit.
    pub fn invert(&self) -> Unit {
        let mut dims = [0i8; BASE_DIMS];
        for (i, d) in dims.iter_mut().enumerate() {
            *d = -self.dims[i];
        }
        Unit {
            dims,
            scale10: self.scale10.map(|s| -s),
        }
    }

    /// Integer power (for `.powi(n)`).
    pub fn powi(&self, n: i32) -> Unit {
        let n = n.clamp(-8, 8) as i8;
        let mut dims = [0i8; BASE_DIMS];
        for (i, d) in dims.iter_mut().enumerate() {
            *d = self.dims[i].saturating_mul(n);
        }
        Unit {
            dims,
            scale10: self.scale10.map(|s| s.saturating_mul(n as i16)),
        }
    }

    /// True when the two units may meet under `+`, `-`, comparison or
    /// assignment: dimension vectors equal, and scales equal whenever
    /// both are known.
    pub fn compatible(&self, rhs: &Unit) -> bool {
        self.dims == rhs.dims
            && match (self.scale10, rhs.scale10) {
                (Some(a), Some(b)) => a == b,
                _ => true,
            }
    }

    /// Scale erased (`Some(_)` → `None`); used after multiplying by a
    /// power-of-ten conversion factor.
    pub fn any_scale(&self) -> Unit {
        Unit {
            dims: self.dims,
            scale10: None,
        }
    }

    /// Renders the unit as the best-known suffix word, or a composite
    /// like `volts*amps/seconds`.
    pub fn render(&self) -> String {
        for &(word, dims, scale) in SUFFIX_UNITS {
            if dims == self.dims && (self.scale10.is_none_or(|s| s == scale)) {
                return match self.scale10 {
                    Some(_) => word.to_string(),
                    None => format!("{word}-dimensioned (any scale)"),
                };
            }
        }
        if self.is_dimensionless() {
            return "dimensionless".to_string();
        }
        let mut num = Vec::new();
        let mut den = Vec::new();
        for (i, &d) in self.dims.iter().enumerate() {
            let name = BASE_NAMES[i];
            match d {
                0 => {}
                1 => num.push(name.to_string()),
                -1 => den.push(name.to_string()),
                d if d > 0 => num.push(format!("{name}^{d}")),
                d => den.push(format!("{name}^{}", -d)),
            }
        }
        let num = if num.is_empty() {
            "1".to_string()
        } else {
            num.join("*")
        };
        if den.is_empty() {
            num
        } else {
            format!("{num}/{}", den.join("/"))
        }
    }
}

/// True when a numeric literal spelling is a power of ten (`10`,
/// `1000.0`, `1e3`, `0.001`, `1e-6`) — the conversion factors that
/// shift a quantity between scales of the same dimension.
pub fn literal_is_power_of_ten(text: &str) -> bool {
    let t = text
        .trim_end_matches("f64")
        .trim_end_matches("f32")
        .trim_end_matches('_')
        .replace('_', "");
    // `1e3` / `1E-6` / `1.0e3` forms: mantissa must itself be a power
    // of ten.
    let (mantissa, _exp) = match t.split_once(['e', 'E']) {
        Some((m, e))
            if e.trim_start_matches(['+', '-'])
                .chars()
                .all(|c| c.is_ascii_digit()) =>
        {
            (m, e)
        }
        Some(_) => return false,
        None => (t.as_str(), "0"),
    };
    let mantissa = mantissa.trim_end_matches('.');
    let (int, frac) = mantissa.split_once('.').unwrap_or((mantissa, ""));
    if !int.chars().all(|c| c.is_ascii_digit()) || !frac.chars().all(|c| c.is_ascii_digit()) {
        return false;
    }
    let digits: String = int.chars().chain(frac.chars()).collect();
    if digits.is_empty() {
        return false;
    }
    // Exactly one `1`, everything else `0`.
    digits.chars().filter(|&c| c == '1').count() == 1
        && digits.chars().all(|c| c == '0' || c == '1')
}

#[cfg(test)]
mod tests {
    use super::*;

    fn u(name: &str) -> Unit {
        Unit::from_ident(name).expect(name)
    }

    #[test]
    fn derived_units_compose() {
        assert_eq!(u("v_volts").mul(&u("i_amps")), u("p_watts"));
        assert_eq!(u("v_volts").div(&u("r_ohms")), u("i_amps"));
        assert_eq!(u("v_volts").div(&u("i_amps")), u("r_ohms"));
        assert_eq!(u("g_siemens").invert(), u("r_ohms"));
        assert_eq!(u("t_seconds").invert(), u("f_hz"));
        assert_eq!(
            u("v_volts").powi(2).div(&u("r_ohms")),
            u("p_watts").mul(&u("v_volts")).div(&u("v_volts"))
        );
    }

    #[test]
    fn energy_units_compose() {
        // The energy-accounting identities: P·t = E, E/t = P, E/P = t.
        assert_eq!(u("p_watts").mul(&u("t_seconds")), u("e_joules"));
        assert_eq!(u("e_joules").div(&u("t_seconds")), u("p_watts"));
        assert_eq!(u("e_joules").div(&u("p_watts")), u("t_seconds"));
        // Scales compose through the product: mW·s = mJ, W·ms = mJ.
        assert_eq!(u("p_mw").mul(&u("t_seconds")), u("e_mj"));
        assert_eq!(u("p_watts").mul(&u("t_ms")), u("e_mj"));
        assert_eq!(u("p_uw").mul(&u("t_seconds")), u("e_uj"));
        // Energy does not meet power under +/-.
        assert!(!u("e_joules").compatible(&u("p_watts")));
        assert_eq!(u("e_joules").render(), "joules");
    }

    #[test]
    fn scales_distinguish_milli_from_canonical() {
        assert!(!u("p_mw").compatible(&u("p_watts")));
        assert!(u("p_mw").compatible(&u("p_watts").any_scale()));
        // volts * milliamps lands on the milliwatt scale.
        assert_eq!(u("v_volts").mul(&u("i_ma")), u("p_mw"));
    }

    #[test]
    fn longest_suffix_wins() {
        assert_eq!(u("r_kohms"), u("kohms"));
        assert_ne!(u("r_kohms"), u("r_ohms"));
        assert_eq!(u("t_ms").dims, u("t_seconds").dims);
        assert_ne!(u("t_ms").scale10, u("t_seconds").scale10);
    }

    #[test]
    fn non_suffixed_names_have_no_unit() {
        for name in ["alpha", "x", "params", "loss", "ohms_budget", "karma"] {
            assert!(Unit::from_ident(name).is_none(), "{name}");
        }
    }

    #[test]
    fn power_of_ten_literals() {
        for t in [
            "10", "1000.0", "1e3", "1E-6", "0.001", "1_000", "100f64", "1.0", "0.1", "10.0e2",
        ] {
            assert!(literal_is_power_of_ten(t), "{t}");
        }
        for t in [
            "2.0", "0.5", "1.5e3", "12", "60.0", "255", "3.14", "1e3.5", "", "abc",
        ] {
            assert!(!literal_is_power_of_ten(t), "{t}");
        }
    }

    #[test]
    fn render_names_common_units() {
        assert_eq!(u("p_watts").render(), "watts");
        assert_eq!(u("p_mw").render(), "mw");
        assert_eq!(u("v_volts").mul(&u("v_volts")).render(), "volts^2");
        assert_eq!(
            u("v_volts").mul(&u("t_seconds")).div(&u("i_amps")).render(),
            "volts*seconds/amps"
        );
    }

    #[test]
    fn suffix_units_cover_unit_words() {
        // Every L004 unit word that denotes a physical quantity is
        // known to the algebra.
        for w in crate::rules::UNIT_WORDS {
            assert!(
                Unit::from_suffix_word(w).is_some(),
                "UNIT_WORDS entry `{w}` missing from SUFFIX_UNITS"
            );
        }
    }
}
