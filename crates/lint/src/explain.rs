//! `--explain <RULE>`: per-rule rationale, examples, and suppression
//! syntax.

/// The long-form explanation of one rule: what it flags, why the
/// invariant matters in this repository, a bad/good example pair, and
/// how to suppress a justified exception.
struct RuleDoc {
    id: &'static str,
    title: &'static str,
    rationale: &'static str,
    bad: &'static str,
    good: &'static str,
    suppress: &'static str,
}

const DOCS: &[RuleDoc] = &[
    RuleDoc {
        id: "L000",
        title: "malformed `// lint:` directive",
        rationale: "A suppression that does not parse silently suppresses nothing — the finding \
                    it meant to justify still fires, or worse, the author believes it is \
                    suppressed. Malformed directives are therefore findings themselves, and \
                    cannot be suppressed (a directive cannot vouch for itself).",
        bad: "// lint: allow(L001)              (missing the mandatory reason)",
        good: "// lint: allow(L001, reason = \"poisoned lock is unrecoverable\")",
        suppress: "not suppressible — fix the directive",
    },
    RuleDoc {
        id: "L001",
        title: "no panics in library code",
        rationale: "A `panic!`/`todo!`/`unimplemented!`/`.unwrap()`/`.expect()` inside a SPICE \
                    Newton iteration or the augmented-Lagrangian training loop aborts a whole \
                    run half-way through a sweep. Library paths return typed errors; tests are \
                    exempt (unwrap is idiomatic there).",
        bad: "let v = solve(x).unwrap();",
        good: "let v = solve(x)?;",
        suppress: "// lint: allow(L001, reason = \"…\") on the same line or the line above",
    },
    RuleDoc {
        id: "L002",
        title: "no float-literal equality in numeric crates",
        rationale: "`x == 0.0` in solver/trainer code is almost always a latent bug — values \
                    arrive through arithmetic that does not round-trip exactly. Compare with an \
                    epsilon, or justify genuine bit-exact sentinels.",
        bad: "if residual == 0.0 { … }",
        good: "if residual.abs() < 1e-12 { … }",
        suppress: "// lint: allow(L002, reason = \"…\")",
    },
    RuleDoc {
        id: "L003",
        title: "no global mutable state",
        rationale: "`static mut` and interior-mutable statics (`Mutex`, `AtomicU64`, `OnceLock`, \
                    …) reintroduce the ambient coupling PR 1 removed: telemetry and \
                    configuration are threaded explicitly so every effect is attributable and \
                    every run reproducible. Test fixtures are exempt.",
        bad: "static CACHE: Mutex<Vec<f64>> = Mutex::new(Vec::new());",
        good: "pub struct Ctx { cache: Vec<f64> }  // passed down explicitly",
        suppress: "// lint: allow(L003, reason = \"…\")",
    },
    RuleDoc {
        id: "L004",
        title: "unit-suffixed public f64 surface",
        rationale: "In `pnc-spice`/`pnc-core`/`pnc-surrogate`, a bare `f64` field or pub-fn \
                    parameter is a milliwatt waiting to meet a watt. Names carry the unit \
                    (`_watts`, `_volts`, `_ohms`, `_seconds`, `_ms`, …) so call sites read \
                    correctly and L008 can check the algebra.",
        bad: "pub voltage: f64,",
        good: "pub voltage_volts: f64,   // or: // lint: dimensionless",
        suppress: "// lint: dimensionless for genuinely unitless quantities",
    },
    RuleDoc {
        id: "L005",
        title: "telemetry event names match the README schema",
        rationale: "Dashboards and `jq` pipelines key on event names. An event emitted in code \
                    but missing from the README event-schema table is invisible downstream — \
                    schema drift that no test catches.",
        bad: "sink.emit(Event::new(\"solver_retry\"));   // not in README table",
        good: "document `solver_retry` in the README event-schema table",
        suppress: "// lint: allow(L005, reason = \"…\") for internal debug events",
    },
    RuleDoc {
        id: "L006",
        title: "no raw threads outside pnc-parallel",
        rationale: "Hand-rolled `std::thread::spawn`/`scope` bypasses the deterministic \
                    executor — its `--threads` config, index-ordered collection, and panic \
                    propagation — so results stop being bit-identical across thread counts. \
                    Fan out through `pnc_parallel::Executor`.",
        bad: "std::thread::scope(|s| { s.spawn(|| work()); });",
        good: "handle.par_map(&items, |i, item| work(item))",
        suppress: "// lint: allow(L006, reason = \"…\")",
    },
    RuleDoc {
        id: "L007",
        title: "no raw Instant::now() outside pnc-telemetry",
        rationale: "Every clock read goes through `pnc_telemetry::Stopwatch` (or a profiler \
                    scope) so the observability layer owns timing: attributable, mockable, and \
                    excluded from result bytes.",
        bad: "let t0 = std::time::Instant::now();",
        good: "let sw = Stopwatch::start(); … sw.elapsed_ms()",
        suppress: "// lint: allow(L007, reason = \"…\")",
    },
    RuleDoc {
        id: "L008",
        title: "dimensional consistency of unit-suffixed arithmetic",
        rationale: "The whole paper is arithmetic over physical quantities under a power budget; \
                    L004 makes names carry units, and L008 checks the algebra those names \
                    imply: volts×amps→watts, volts/ohms→amps, `+`/`-`/comparison/assignment/\
                    return/argument-passing require matching dimensions AND scales (`x_mw + \
                    y_watts` is a finding). Multiplying or dividing by a power-of-ten literal \
                    (`* 1e3`) is recognised as a scale conversion. Anything the analysis cannot \
                    see a unit for is never flagged. Applies to non-test code in \
                    pnc-spice/core/train/surrogate.",
        bad: "let total_mw = p_watts + q_mw;",
        good: "let total_mw = p_watts * 1e3 + q_mw;",
        suppress: "// lint: allow(L008, reason = \"…\") or // lint: dimensionless",
    },
    RuleDoc {
        id: "L009",
        title: "no hash-ordered iteration feeding ordered output",
        rationale: "`HashMap`/`HashSet` iteration order varies run to run, so pushing, writing, \
                    formatting, collecting, or float-accumulating in that order produces \
                    different bytes every run — breaking the bit-identical-across-`--threads` \
                    invariant from PR 5. Iterate a `BTreeMap`, or collect and sort before \
                    output. Order-insensitive terminals (`count`, `any`, `all`, …) and int \
                    counters are fine; a sort later in the same block repairs the leak.",
        bad: "for (k, v) in &hash_map { out.push(format!(\"{k}={v}\")); }",
        good: "let mut rows: Vec<_> = hash_map.iter().collect(); rows.sort(); …",
        suppress: "// lint: allow(L009, reason = \"…\") for provably order-free cases",
    },
    RuleDoc {
        id: "L010",
        title: "deterministic closures in par_map/par_reduce",
        rationale: "The executor guarantees bit-identical results across `--threads` only when \
                    per-item closures are pure functions of their arguments. Wall-clock reads \
                    (`Instant::now`, `SystemTime::now`), thread identity, process id, \
                    environment reads, and locked shared accumulators (`.lock()`, \
                    `.borrow_mut()`) all reintroduce scheduling dependence. Derive randomness \
                    from `derive_seed(base, index)`; collect results through the executor's \
                    index-ordered return value.",
        bad: "ex.par_map(&xs, |i, x| x * rng_from(SystemTime::now()))",
        good: "ex.par_map(&xs, |i, x| x * rng_from(derive_seed(base, i)))",
        suppress: "// lint: allow(L010, reason = \"…\")",
    },
];

/// Renders the explanation for `rule` (e.g. `"L008"`), or `None` for
/// an unknown rule id.
pub fn explain(rule: &str) -> Option<String> {
    let doc = DOCS.iter().find(|d| d.id.eq_ignore_ascii_case(rule))?;
    Some(format!(
        "{id}: {title}\n\n{rationale}\n\n  bad:      {bad}\n  good:     {good}\n  suppress: {suppress}\n",
        id = doc.id,
        title = doc.title,
        rationale = doc.rationale,
        bad = doc.bad,
        good = doc.good,
        suppress = doc.suppress,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_catalogued_rule_has_an_explanation() {
        for (id, _) in crate::rules::RULES {
            assert!(explain(id).is_some(), "missing --explain doc for {id}");
        }
    }

    #[test]
    fn explanations_name_the_suppression_syntax() {
        for doc in DOCS {
            if doc.id == "L000" {
                continue;
            }
            let text = explain(doc.id).expect("doc");
            assert!(
                text.contains("lint:"),
                "{} lacks suppression syntax",
                doc.id
            );
        }
    }

    #[test]
    fn unknown_rule_is_none_and_lookup_is_case_insensitive() {
        assert!(explain("L999").is_none());
        assert!(explain("l008").is_some());
    }
}
