//! L008: dimensional analysis over the parsed AST.
//!
//! Units flow from L004 name suffixes: a parameter, field, variable or
//! function named `…_watts` *is* watts, and the analysis checks that
//! arithmetic respects the algebra in [`crate::units`] — `volts × amps`
//! is watts, `volts / ohms` is amps, `x + y` needs matching units, and
//! a value crossing a suffixed boundary (let binding, assignment,
//! struct field, return, call argument) must match the suffix it lands
//! on.
//!
//! The analysis is deliberately incomplete in the safe direction:
//! anything it cannot see a unit for is `Unknown`, and `Unknown` never
//! produces a finding. Plain numeric literals are *polymorphic* under
//! `+`/`-`/comparison (`x_volts + 0.1` is idiomatic clamping) and
//! dimensionless under `×`/`÷` — except power-of-ten literals, which
//! are scale conversions and erase the scale instead (`p_watts * 1e3`
//! may land in a `_mw` name; `x_mw + y_watts` still cannot).

use crate::parse::{Expr, FnItem, ParsedFile, Stmt};
use crate::rules::Finding;
use crate::source::SourceFile;
use crate::sym::SymbolTable;
use crate::units::{literal_is_power_of_ten, Unit};
use std::collections::HashMap;

/// Crates whose fn bodies L008 analyses (the unit-bearing physics and
/// training layers).
pub const DIM_CRATES: &[&str] = &["spice", "core", "train", "surrogate"];

/// What the analysis knows about a value's unit.
#[derive(Debug, Clone, Copy, PartialEq)]
enum UVal {
    /// No information; compatible with everything.
    Unknown,
    /// A numeric literal; `pow10` marks scale-conversion factors.
    Lit {
        /// The literal is a power of ten.
        pow10: bool,
    },
    /// A known unit.
    Unit(Unit),
}

impl UVal {
    fn unit(self) -> Option<Unit> {
        match self {
            UVal::Unit(u) => Some(u),
            _ => None,
        }
    }
}

/// Runs L008 over every non-test fn in `parsed`, resolving call sites
/// against `table`.
pub fn l008_dimensions(
    file: &SourceFile,
    parsed: &ParsedFile,
    table: &SymbolTable,
    findings: &mut Vec<Finding>,
) {
    if !DIM_CRATES.contains(&file.crate_name.as_str()) {
        return;
    }
    for item in &parsed.fns {
        if file.in_test.get(item.tok_idx).copied().unwrap_or(false) {
            continue;
        }
        Analyzer {
            file,
            table,
            findings,
        }
        .check_fn(item);
    }
}

struct Analyzer<'a> {
    file: &'a SourceFile,
    table: &'a SymbolTable,
    findings: &'a mut Vec<Finding>,
}

type Env = HashMap<String, Unit>;

impl Analyzer<'_> {
    fn report(&mut self, line: u32, message: String) {
        if self.file.is_suppressed("L008", line) || self.file.is_dimensionless(line) {
            return;
        }
        self.findings.push(Finding {
            rule: "L008",
            rel: self.file.rel.clone(),
            line,
            message,
            snippet: self.file.line_text(line).to_string(),
        });
    }

    fn check_fn(&mut self, item: &FnItem) {
        let mut env: Env = HashMap::new();
        for p in &item.params {
            if let Some(name) = &p.name {
                if let Some(u) = Unit::from_ident(name) {
                    env.insert(name.clone(), u);
                }
            }
        }
        let ret_unit = Unit::from_ident(&item.name);
        let tail = self.infer_stmts(&item.body, &mut env, ret_unit);
        if let (Some(want), Some(got)) = (ret_unit, tail.unit()) {
            if !want.compatible(&got) {
                let line = item
                    .body
                    .iter()
                    .rev()
                    .find_map(|s| match s {
                        Stmt::Expr(e) => Some(e.line()),
                        _ => None,
                    })
                    .unwrap_or(item.line);
                self.report(
                    line,
                    format!(
                        "`{}` returns `{}` by its name suffix, but the tail expression is `{}`",
                        item.name,
                        want.render(),
                        got.render()
                    ),
                );
            }
        }
    }

    /// Infers a statement list; returns the unit of the final
    /// expression statement (the block's value position).
    fn infer_stmts(&mut self, stmts: &[Stmt], env: &mut Env, ret_unit: Option<Unit>) -> UVal {
        let mut last = UVal::Unknown;
        for stmt in stmts {
            last = UVal::Unknown;
            match stmt {
                Stmt::Let {
                    name, init, line, ..
                } => {
                    let Some(init) = init else { continue };
                    let got = self.infer(init, env, ret_unit);
                    let Some(name) = name else { continue };
                    match (Unit::from_ident(name), got.unit()) {
                        (Some(want), Some(got_u)) if !want.compatible(&got_u) => {
                            self.report(
                                *line,
                                format!(
                                    "`let {name}` declares `{}` by its suffix but is initialised \
                                     with `{}`",
                                    want.render(),
                                    got_u.render()
                                ),
                            );
                            env.insert(name.clone(), want);
                        }
                        (Some(want), _) => {
                            env.insert(name.clone(), want);
                        }
                        (None, Some(got_u)) => {
                            env.insert(name.clone(), got_u);
                        }
                        (None, None) => {
                            env.remove(name);
                        }
                    }
                }
                Stmt::Expr(e) => last = self.infer(e, env, ret_unit),
                Stmt::Return { value, line } => {
                    if let (Some(want), Some(e)) = (ret_unit, value) {
                        let got = self.infer(e, env, ret_unit);
                        if let Some(got_u) = got.unit() {
                            if !want.compatible(&got_u) {
                                self.report(
                                    *line,
                                    format!(
                                        "return value is `{}` but the fn name declares `{}`",
                                        got_u.render(),
                                        want.render()
                                    ),
                                );
                            }
                        }
                    } else if let Some(e) = value {
                        self.infer(e, env, ret_unit);
                    }
                }
                Stmt::Item(_) | Stmt::Opaque => {}
            }
        }
        last
    }

    #[allow(clippy::too_many_lines)]
    fn infer(&mut self, expr: &Expr, env: &mut Env, ret: Option<Unit>) -> UVal {
        match expr {
            Expr::Lit { text, .. } => UVal::Lit {
                pow10: literal_is_power_of_ten(text),
            },
            Expr::StrLit { .. } | Expr::Opaque { .. } => UVal::Unknown,
            Expr::Path { segs, .. } => {
                if segs.len() == 1 {
                    if let Some(u) = env.get(&segs[0]) {
                        return UVal::Unit(*u);
                    }
                }
                match segs.last().and_then(|s| Unit::from_ident(s)) {
                    Some(u) => UVal::Unit(u),
                    None => UVal::Unknown,
                }
            }
            Expr::Field { recv, name, .. } => {
                self.infer(recv, env, ret);
                match Unit::from_ident(name) {
                    Some(u) => UVal::Unit(u),
                    None => UVal::Unknown,
                }
            }
            Expr::Index { recv, index, .. } => {
                self.infer(index, env, ret);
                self.infer(recv, env, ret)
            }
            Expr::Unary { op, inner, .. } => {
                let v = self.infer(inner, env, ret);
                match op {
                    '-' | '&' | '*' => v,
                    _ => UVal::Unknown,
                }
            }
            Expr::Cast { inner, .. } => self.infer(inner, env, ret),
            Expr::Binary { op, lhs, rhs, line } => self.infer_binary(op, lhs, rhs, *line, env, ret),
            Expr::Assign { op, lhs, rhs, line } => {
                let rv = self.infer(rhs, env, ret);
                let lv = self.infer(lhs, env, ret);
                let additive = matches!(op.as_str(), "=" | "+=" | "-=");
                if additive {
                    if let (Some(l), Some(r)) = (lv.unit(), rv.unit()) {
                        if !l.compatible(&r) {
                            self.report(
                                *line,
                                format!(
                                    "`{op}` assigns `{}` to a `{}` target",
                                    r.render(),
                                    l.render()
                                ),
                            );
                        }
                    }
                    // Plain `=` re-types an unsuffixed local.
                    if op == "=" {
                        if let Expr::Path { segs, .. } = lhs.as_ref() {
                            if segs.len() == 1 && Unit::from_ident(&segs[0]).is_none() {
                                match rv.unit() {
                                    Some(u) => {
                                        env.insert(segs[0].clone(), u);
                                    }
                                    None => {
                                        env.remove(&segs[0]);
                                    }
                                }
                            }
                        }
                    }
                } else if let Expr::Path { segs, .. } = lhs.as_ref() {
                    // `*=` / `/=` change the unit of an unsuffixed
                    // local in ways we do not track: forget it.
                    if segs.len() == 1 && Unit::from_ident(&segs[0]).is_none() {
                        env.remove(&segs[0]);
                    }
                }
                UVal::Unknown
            }
            Expr::Call { callee, args, line } => {
                for a in args {
                    self.infer_nested(a, env, ret);
                }
                if let Expr::Path { segs, .. } = callee.as_ref() {
                    if let Some(name) = segs.last() {
                        if let Some(sig) = self.table.lookup(name, args.len(), false) {
                            let sig = sig.clone();
                            self.check_call_args(name, &sig, args, *line, env, ret);
                            if let Some(u) = sig.ret_unit {
                                return UVal::Unit(u);
                            }
                        }
                        if let Some(u) = Unit::from_ident(name) {
                            return UVal::Unit(u);
                        }
                    }
                }
                UVal::Unknown
            }
            Expr::MethodCall {
                recv,
                name,
                args,
                line,
                ..
            } => {
                let rv = self.infer(recv, env, ret);
                for a in args {
                    self.infer_nested(a, env, ret);
                }
                match name.as_str() {
                    // Unit-preserving; their argument must share the
                    // receiver's unit.
                    "max" | "min" | "clamp" => {
                        if let Some(r) = rv.unit() {
                            for a in args {
                                if let Some(u) = self.infer(a, env, ret).unit() {
                                    if !r.compatible(&u) {
                                        self.report(
                                            *line,
                                            format!(
                                                "`.{name}()` mixes `{}` with `{}`",
                                                r.render(),
                                                u.render()
                                            ),
                                        );
                                    }
                                }
                            }
                        }
                        rv
                    }
                    "abs" | "copysign" | "to_owned" | "clone" => rv,
                    "powi" => {
                        // `x.powi(n)` with a literal exponent.
                        match (rv.unit(), args.first()) {
                            (Some(u), Some(Expr::Lit { text, .. })) => match text.parse::<i32>() {
                                Ok(n) => UVal::Unit(u.powi(n)),
                                Err(_) => UVal::Unknown,
                            },
                            _ => UVal::Unknown,
                        }
                    }
                    "recip" => match rv.unit() {
                        Some(u) => UVal::Unit(u.invert()),
                        None => UVal::Unknown,
                    },
                    _ => {
                        if let Some(sig) = self.table.lookup(name, args.len(), true) {
                            let sig = sig.clone();
                            self.check_call_args(name, &sig, args, *line, env, ret);
                            if let Some(u) = sig.ret_unit {
                                return UVal::Unit(u);
                            }
                        }
                        match Unit::from_ident(name) {
                            Some(u) => UVal::Unit(u),
                            None => UVal::Unknown,
                        }
                    }
                }
            }
            Expr::Struct { fields, .. } => {
                for (fname, value) in fields {
                    let got = self.infer(value, env, ret);
                    if let (Some(want), Some(got_u)) = (Unit::from_ident(fname), got.unit()) {
                        if !want.compatible(&got_u) {
                            self.report(
                                value.line(),
                                format!(
                                    "field `{fname}` declares `{}` by its suffix but is set to \
                                     `{}`",
                                    want.render(),
                                    got_u.render()
                                ),
                            );
                        }
                    }
                }
                UVal::Unknown
            }
            Expr::Block { stmts, .. } => {
                let mut inner = env.clone();
                self.infer_stmts(stmts, &mut inner, ret)
            }
            Expr::If {
                cond,
                then_blk,
                else_blk,
                ..
            } => {
                self.infer(cond, env, ret);
                let t = self.infer(then_blk, env, ret);
                match else_blk {
                    Some(e) => {
                        let f = self.infer(e, env, ret);
                        // Both branches known and equal → that unit.
                        match (t.unit(), f.unit()) {
                            (Some(a), Some(b)) if a.compatible(&b) => t,
                            _ => UVal::Unknown,
                        }
                    }
                    None => UVal::Unknown,
                }
            }
            Expr::Match {
                scrutinee, arms, ..
            } => {
                self.infer(scrutinee, env, ret);
                for a in arms {
                    self.infer_nested(a, env, ret);
                }
                UVal::Unknown
            }
            Expr::For {
                pat, iter, body, ..
            } => {
                let iv = self.infer(iter, env, ret);
                let mut inner = env.clone();
                // A single loop variable over a unit-carrying iterable
                // inherits the element unit (`for p in powers_mw`).
                if let (Some(u), [only]) = (iv.unit(), pat.as_slice()) {
                    inner.insert(only.clone(), u);
                }
                self.infer_stmts(body, &mut inner, ret);
                UVal::Unknown
            }
            Expr::While { cond, body, .. } => {
                self.infer(cond, env, ret);
                let mut inner = env.clone();
                self.infer_stmts(body, &mut inner, ret);
                UVal::Unknown
            }
            Expr::Loop { body, .. } => {
                let mut inner = env.clone();
                self.infer_stmts(body, &mut inner, ret);
                UVal::Unknown
            }
            Expr::Closure { params, body, .. } => {
                let mut inner = env.clone();
                for p in params {
                    match Unit::from_ident(p) {
                        Some(u) => {
                            inner.insert(p.clone(), u);
                        }
                        None => {
                            inner.remove(p);
                        }
                    }
                }
                self.infer(body, &mut inner, ret);
                UVal::Unknown
            }
            Expr::Macro { args, .. } => {
                for a in args {
                    self.infer_nested(a, env, ret);
                }
                UVal::Unknown
            }
            Expr::Tuple { elems, .. } => {
                for e in elems {
                    self.infer_nested(e, env, ret);
                }
                UVal::Unknown
            }
        }
    }

    /// Infers a sub-expression for its side effects (nested findings)
    /// without using its value.
    fn infer_nested(&mut self, expr: &Expr, env: &mut Env, ret: Option<Unit>) {
        self.infer(expr, env, ret);
    }

    fn infer_binary(
        &mut self,
        op: &str,
        lhs: &Expr,
        rhs: &Expr,
        line: u32,
        env: &mut Env,
        ret: Option<Unit>,
    ) -> UVal {
        let l = self.infer(lhs, env, ret);
        let r = self.infer(rhs, env, ret);
        match op {
            "+" | "-" | "==" | "!=" | "<" | "<=" | ">" | ">=" => {
                if let (UVal::Unit(a), UVal::Unit(b)) = (l, r) {
                    if !a.compatible(&b) {
                        self.report(
                            line,
                            format!("`{op}` mixes `{}` with `{}`", a.render(), b.render()),
                        );
                    }
                }
                let result = match (l, r) {
                    (UVal::Unit(a), _) => UVal::Unit(a),
                    (_, UVal::Unit(b)) => UVal::Unit(b),
                    (UVal::Lit { pow10: a }, UVal::Lit { pow10: b }) => UVal::Lit { pow10: a && b },
                    _ => UVal::Unknown,
                };
                if matches!(op, "+" | "-") {
                    result
                } else {
                    UVal::Unknown // comparisons yield bool
                }
            }
            "*" => match (l, r) {
                (UVal::Unit(a), UVal::Unit(b)) => UVal::Unit(a.mul(&b)),
                (UVal::Unit(u), UVal::Lit { pow10 }) | (UVal::Lit { pow10 }, UVal::Unit(u)) => {
                    UVal::Unit(if pow10 { u.any_scale() } else { u })
                }
                (UVal::Lit { pow10: a }, UVal::Lit { pow10: b }) => UVal::Lit { pow10: a && b },
                _ => UVal::Unknown,
            },
            "/" => match (l, r) {
                (UVal::Unit(a), UVal::Unit(b)) => UVal::Unit(a.div(&b)),
                (UVal::Unit(u), UVal::Lit { pow10 }) => {
                    UVal::Unit(if pow10 { u.any_scale() } else { u })
                }
                (UVal::Lit { pow10 }, UVal::Unit(u)) => {
                    let inv = u.invert();
                    UVal::Unit(if pow10 { inv.any_scale() } else { inv })
                }
                (UVal::Lit { pow10: a }, UVal::Lit { pow10: b }) => UVal::Lit { pow10: a && b },
                _ => UVal::Unknown,
            },
            _ => UVal::Unknown,
        }
    }

    fn check_call_args(
        &mut self,
        name: &str,
        sig: &crate::sym::FnSig,
        args: &[Expr],
        line: u32,
        env: &mut Env,
        ret: Option<Unit>,
    ) {
        for (i, arg) in args.iter().enumerate() {
            let Some(Some(want)) = sig.param_units.get(i) else {
                continue;
            };
            if let Some(got) = self.infer(arg, env, ret).unit() {
                if !want.compatible(&got) {
                    let pname = sig.param_names.get(i).map(String::as_str).unwrap_or("_");
                    let at = if arg.line() == 0 { line } else { arg.line() };
                    self.report(
                        at,
                        format!(
                            "argument {} of `{name}` is `{}`, but parameter `{pname}` declares \
                             `{}`",
                            i + 1,
                            got.render(),
                            want.render()
                        ),
                    );
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_file;

    fn run(src: &str) -> Vec<Finding> {
        let file = SourceFile::parse("crates/spice/src/x.rs", src);
        let parsed = parse_file(&file.tokens);
        let table = SymbolTable::build([&parsed]);
        let mut findings = Vec::new();
        l008_dimensions(&file, &parsed, &table, &mut findings);
        findings
    }

    #[test]
    fn adding_volts_to_seconds_is_flagged() {
        let f = run("fn f(v_volts: f64, t_seconds: f64) -> f64 { v_volts + t_seconds }");
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("volts"));
        assert!(f[0].message.contains("seconds"));
    }

    #[test]
    fn ohms_law_composes_cleanly() {
        let src = "fn power_watts(v_volts: f64, r_ohms: f64) -> f64 {\n    let i_amps = v_volts / r_ohms;\n    v_volts * i_amps\n}";
        assert!(run(src).is_empty(), "{:?}", run(src));
    }

    #[test]
    fn milliwatts_do_not_meet_watts() {
        let f = run("fn f(a_mw: f64, b_watts: f64) -> f64 { a_mw + b_watts }");
        assert_eq!(f.len(), 1, "{f:?}");
    }

    #[test]
    fn power_of_ten_conversion_is_clean() {
        let src = "fn total_mw(p_watts: f64) -> f64 { p_watts * 1e3 }";
        assert!(run(src).is_empty(), "{:?}", run(src));
    }

    #[test]
    fn non_power_of_ten_factor_keeps_the_scale() {
        let f = run("fn f(p_watts: f64) -> f64 { let q_mw = p_watts * 2.0; q_mw }");
        assert_eq!(f.len(), 1, "{f:?}");
    }

    #[test]
    fn let_binding_propagates_units() {
        let f = run(
            "fn f(v_volts: f64, i_amps: f64, t_seconds: f64) -> f64 {\n    let p = v_volts * i_amps;\n    p + t_seconds\n}",
        );
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("watts"));
    }

    #[test]
    fn return_unit_comes_from_fn_name() {
        let f = run("fn elapsed_ms(t_seconds: f64) -> f64 { t_seconds }");
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("elapsed_ms"));
    }

    #[test]
    fn call_args_check_against_param_suffixes() {
        let src = "fn heat(p_watts: f64) -> f64 { p_watts }\nfn g(t_ms: f64) -> f64 { heat(t_ms) }";
        let f = run(src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("heat"));
    }

    #[test]
    fn struct_fields_check_against_suffixes() {
        let f = run("fn f(t_seconds: f64) -> P { P { budget_watts: t_seconds } }");
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("budget_watts"));
    }

    #[test]
    fn literals_are_polymorphic_in_addition() {
        assert!(run("fn f(v_volts: f64) -> f64 { v_volts + 0.1 }").is_empty());
        assert!(run("fn f(v_volts: f64) -> bool { v_volts < 2.0 }").is_empty());
    }

    #[test]
    fn max_min_mixing_units_is_flagged() {
        let f = run("fn f(a_mw: f64, b_watts: f64) -> f64 { a_mw.max(b_watts) }");
        assert_eq!(f.len(), 1, "{f:?}");
    }

    #[test]
    fn suppression_and_dimensionless_silence_l008() {
        let sup = "fn f(v_volts: f64, t_seconds: f64) -> f64 {\n    // lint: allow(L008, reason = \"unit test of mixed scales\")\n    v_volts + t_seconds\n}";
        assert!(run(sup).is_empty());
        let dim = "fn f(v_volts: f64, t_seconds: f64) -> f64 {\n    // lint: dimensionless\n    v_volts + t_seconds\n}";
        assert!(run(dim).is_empty());
    }

    #[test]
    fn test_code_and_other_crates_are_exempt() {
        let src =
            "#[cfg(test)]\nmod tests { fn t(v_volts: f64, t_ms: f64) { let _ = v_volts + t_ms; } }";
        assert!(run(src).is_empty());
        let file = SourceFile::parse(
            "crates/telemetry/src/x.rs",
            "fn f(v_volts: f64, t_ms: f64) -> f64 { v_volts + t_ms }",
        );
        let parsed = parse_file(&file.tokens);
        let table = SymbolTable::build([&parsed]);
        let mut findings = Vec::new();
        l008_dimensions(&file, &parsed, &table, &mut findings);
        assert!(findings.is_empty());
    }

    #[test]
    fn compound_assign_checks_units() {
        let f = run("fn f(total_watts: f64, dt_ms: f64) -> f64 {\n    let mut acc_watts = total_watts;\n    acc_watts += dt_ms;\n    acc_watts\n}");
        assert_eq!(f.len(), 1, "{f:?}");
    }
}
