//! Workspace symbol table: unit-bearing `fn` signatures, keyed by name.
//!
//! The dimensional analysis (L008) checks call sites against the units
//! declared by a callee's parameter and function-name suffixes. The
//! table is built once per lint run from every parsed file; functions
//! whose name is reused with *different* unit profiles anywhere in the
//! workspace are marked ambiguous and never checked — the analysis has
//! no type information to disambiguate overloaded-by-module names, and
//! a wrong guess would be a false positive.

use crate::parse::{FnItem, ParsedFile};
use crate::units::Unit;
use std::collections::HashMap;

/// The unit profile of one function, inferred from L004 suffixes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FnSig {
    /// Number of declared parameters (`self` excluded).
    pub arity: usize,
    /// Whether the fn takes a `self` receiver (i.e. is called as a
    /// method).
    pub has_self: bool,
    /// Per-parameter unit from the parameter name suffix (`None` =
    /// no suffix, not checked).
    pub param_units: Vec<Option<Unit>>,
    /// Per-parameter names, for diagnostics.
    pub param_names: Vec<String>,
    /// Return unit from the *function name* suffix (`total_mw` returns
    /// milliwatts).
    pub ret_unit: Option<Unit>,
}

impl FnSig {
    /// Builds the signature of one parsed fn.
    pub fn of(item: &FnItem) -> FnSig {
        let param_units = item
            .params
            .iter()
            .map(|p| p.name.as_deref().and_then(Unit::from_ident))
            .collect();
        let param_names = item
            .params
            .iter()
            .map(|p| p.name.clone().unwrap_or_else(|| "_".to_string()))
            .collect();
        FnSig {
            arity: item.params.len(),
            has_self: item.has_self,
            param_units,
            param_names,
            ret_unit: Unit::from_ident(&item.name),
        }
    }

    /// True when nothing in this signature carries a unit — such sigs
    /// can never produce a finding, so the table drops them.
    pub fn is_unitless(&self) -> bool {
        self.ret_unit.is_none() && self.param_units.iter().all(Option::is_none)
    }
}

/// Name → signature map over the whole lint run. Lookups only (never
/// iterated), so plain hashing is fine and deterministic output is
/// unaffected.
#[derive(Debug, Default)]
pub struct SymbolTable {
    /// `None` marks a name seen with conflicting unit profiles.
    fns: HashMap<String, Option<FnSig>>,
}

impl SymbolTable {
    /// Builds the table from every function in `files`.
    pub fn build<'a, I: IntoIterator<Item = &'a ParsedFile>>(files: I) -> SymbolTable {
        let mut table = SymbolTable::default();
        for file in files {
            for item in &file.fns {
                table.add(&item.name, FnSig::of(item));
            }
        }
        table
    }

    fn add(&mut self, name: &str, sig: FnSig) {
        if sig.is_unitless() {
            // A unitless duplicate still poisons a unit-bearing
            // namesake: the call site cannot tell which one it hits.
            if let Some(existing) = self.fns.get_mut(name) {
                if existing.as_ref().is_some_and(|e| *e != sig) {
                    *existing = None;
                }
            }
            self.fns.entry(name.to_string()).or_insert(None);
            return;
        }
        match self.fns.get_mut(name) {
            None => {
                self.fns.insert(name.to_string(), Some(sig));
            }
            Some(slot) => {
                if slot.as_ref() != Some(&sig) {
                    *slot = None; // ambiguous
                }
            }
        }
    }

    /// The unambiguous unit-bearing signature for `name`, if the call
    /// shape (arity + receiver-ness) matches it.
    pub fn lookup(&self, name: &str, arity: usize, as_method: bool) -> Option<&FnSig> {
        let sig = self.fns.get(name)?.as_ref()?;
        (sig.arity == arity && sig.has_self == as_method).then_some(sig)
    }

    /// Number of resolvable (unambiguous, unit-bearing) entries.
    pub fn len(&self) -> usize {
        self.fns.values().filter(|s| s.is_some()).count()
    }

    /// True when no resolvable entries exist.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parse::parse_file;

    fn table_of(src: &str) -> SymbolTable {
        SymbolTable::build([&parse_file(&lex(src).tokens)])
    }

    #[test]
    fn unit_bearing_fn_is_resolvable() {
        let t =
            table_of("pub fn dissipation_mw(v_volts: f64, i_ma: f64) -> f64 { v_volts * i_ma }");
        let sig = t.lookup("dissipation_mw", 2, false).expect("sig");
        assert!(sig.ret_unit.is_some());
        assert!(sig.param_units[0].is_some());
        assert_eq!(sig.param_names[1], "i_ma");
    }

    #[test]
    fn conflicting_profiles_are_ambiguous() {
        let t = table_of(
            "fn scale(x_watts: f64) -> f64 { x_watts }\nmod b { fn scale(x_ms: f64) -> f64 { x_ms } }",
        );
        assert!(t.lookup("scale", 1, false).is_none());
    }

    #[test]
    fn unitless_fns_are_dropped() {
        let t = table_of("fn helper(n: usize) -> usize { n }");
        assert!(t.lookup("helper", 1, false).is_none());
        assert!(t.is_empty());
    }

    #[test]
    fn unitless_namesake_poisons_unit_bearing_one() {
        let t = table_of(
            "fn load(p_watts: f64) -> f64 { p_watts }\nmod b { fn load(path: P) -> D { read(path) } }",
        );
        assert!(t.lookup("load", 1, false).is_none());
    }

    #[test]
    fn method_and_free_fn_shapes_are_distinguished() {
        let t = table_of("impl X { fn drop_mv(&self, i_ma: f64) -> f64 { i_ma } }");
        assert!(t.lookup("drop_mv", 1, true).is_some());
        assert!(t.lookup("drop_mv", 1, false).is_none());
        assert!(t.lookup("drop_mv", 2, true).is_none());
    }
}
