//! `pnc-lint` — domain-specific static analysis for the pNC workspace.
//!
//! Clippy enforces generic Rust hygiene; this crate enforces the
//! invariants that are *specific to this repository* and invisible to
//! generic tooling:
//!
//! | rule | invariant |
//! |------|-----------|
//! | L001 | library code never panics (`panic!`/`todo!`/`unimplemented!`/`.unwrap()`/`.expect()`) — solver and trainer paths return typed errors |
//! | L002 | no `==`/`!=` against float literals in numeric crates — epsilon compares or justified bit-exactness |
//! | L003 | no `static mut` / interior-mutable statics — telemetry and state stay explicitly threaded |
//! | L004 | public `f64` fields and `pub fn` params in `pnc-spice`/`pnc-core`/`pnc-surrogate` carry unit-suffixed names |
//! | L005 | every telemetry event name emitted in code is documented in the README event-schema table |
//!
//! The implementation is std-only: a hand-rolled lexer
//! ([`lexer`]) that is honest about comments, strings, raw strings and
//! char literals feeds a small rule engine ([`rules`]). Findings can
//! be suppressed inline (`// lint: allow(L001, reason = "…")`,
//! `// lint: dimensionless`) or grandfathered in a committed baseline
//! file ([`baseline`]) that only ever shrinks.
//!
//! Run it with `cargo run -p pnc-lint -- --check`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
pub mod engine;
pub mod lexer;
pub mod rules;
pub mod source;

pub use baseline::{Baseline, BaselineOutcome};
pub use engine::{apply_baseline, find_root, lint_workspace, LintError, LintRun};
pub use rules::{check_file, l005_schema_drift, Finding};
pub use source::SourceFile;

/// Convenience for tests and embedders: lints one in-memory file under
/// a repo-relative path, running every single-file rule.
pub fn lint_source(rel: &str, text: &str) -> Vec<Finding> {
    check_file(&SourceFile::parse(rel, text))
}
