//! `pnc-lint` — domain-specific static analysis for the pNC workspace.
//!
//! Clippy enforces generic Rust hygiene; this crate enforces the
//! invariants that are *specific to this repository* and invisible to
//! generic tooling:
//!
//! | rule | invariant |
//! |------|-----------|
//! | L001 | library code never panics (`panic!`/`todo!`/`unimplemented!`/`.unwrap()`/`.expect()`) — solver and trainer paths return typed errors |
//! | L002 | no `==`/`!=` against float literals in numeric crates — epsilon compares or justified bit-exactness |
//! | L003 | no `static mut` / interior-mutable statics — telemetry and state stay explicitly threaded |
//! | L004 | public `f64` fields and `pub fn` params in `pnc-spice`/`pnc-core`/`pnc-surrogate` carry unit-suffixed names |
//! | L005 | every telemetry event name emitted in code is documented in the README event-schema table |
//! | L006 | no raw `std::thread::spawn`/`scope` outside `pnc-parallel` — fan-out goes through the deterministic executor |
//! | L007 | no raw `Instant::now()` outside `pnc-telemetry` — timing goes through `Stopwatch` |
//! | L008 | unit-suffixed arithmetic is dimensionally consistent (`volts*amps=watts`, no `mw+watts`) |
//! | L009 | no `HashMap`/`HashSet` iteration feeding ordered output or float accumulation without a sort |
//! | L010 | no clock/thread/env reads or locked accumulation inside `par_map`/`par_reduce` closures |
//!
//! The implementation is std-only: a hand-rolled lexer ([`lexer`])
//! that is honest about comments, strings, raw strings and char
//! literals feeds the token rules ([`rules`]), and a recovering
//! recursive-descent parser ([`parse`]) over the same tokens feeds
//! the semantic rules — dimensional analysis ([`dim`] over the
//! [`units`] algebra and the [`sym`] symbol table) and determinism
//! checking ([`order`], [`par_det`]). Findings can be suppressed
//! inline (`// lint: allow(L001, reason = "…")`,
//! `// lint: dimensionless`) or grandfathered in a committed baseline
//! file ([`baseline`]) that only ever shrinks.
//!
//! Run it with `cargo run -p pnc-lint -- --check`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
pub mod dim;
pub mod engine;
pub mod explain;
pub mod lexer;
pub mod order;
pub mod par_det;
pub mod parse;
pub mod rules;
pub mod source;
pub mod sym;
pub mod units;

pub use baseline::{Baseline, BaselineOutcome};
pub use engine::{
    apply_baseline, find_root, lint_workspace, render_json, sort_findings, LintError, LintRun,
};
pub use explain::explain;
pub use parse::{parse_file, ParsedFile};
pub use rules::{check_file, check_file_ast, l005_schema_drift, Finding};
pub use source::SourceFile;
pub use sym::SymbolTable;
pub use units::Unit;

/// Convenience for tests and embedders: lints one in-memory file under
/// a repo-relative path, running every single-file rule — token rules
/// and the semantic rules, with the symbol table built from the file
/// itself.
pub fn lint_source(rel: &str, text: &str) -> Vec<Finding> {
    let file = SourceFile::parse(rel, text);
    let parsed = parse_file(&file.tokens);
    let table = SymbolTable::build([&parsed]);
    let mut findings = check_file(&file);
    findings.extend(check_file_ast(&file, &parsed, &table));
    sort_findings(&mut findings);
    findings
}
