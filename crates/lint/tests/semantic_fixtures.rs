//! Golden fixtures for the semantic rules (L008–L010): one known-bad
//! snippet per trigger, each paired with the rewrite or suppression
//! that silences it. These pin the user-visible contract of the
//! AST-based pass the same way `golden_fixtures.rs` pins the
//! token-based rules.

use pnc_lint::{lint_source, Finding};

fn rules_of(findings: &[Finding]) -> Vec<&'static str> {
    findings.iter().map(|f| f.rule).collect()
}

// ---------------------------------------------------------------- L008

#[test]
fn l008_seeded_unit_mismatch_watts_plus_milliwatts() {
    let src = "fn total(p_watts: f64, q_mw: f64) -> f64 {\n    p_watts + q_mw\n}\n";
    let findings = lint_source("crates/spice/src/bad.rs", src);
    assert_eq!(rules_of(&findings), ["L008"]);
    assert_eq!(findings[0].line, 2);
}

#[test]
fn l008_adding_incompatible_dimensions_is_flagged() {
    let src = "fn nonsense(v_volts: f64, t_seconds: f64) -> f64 {\n    v_volts + t_seconds\n}\n";
    assert_eq!(
        rules_of(&lint_source("crates/core/src/bad.rs", src)),
        ["L008"]
    );
}

#[test]
fn l008_ohms_law_products_are_clean() {
    let src = "fn power(v_volts: f64, r_ohms: f64) -> f64 {\n    let i_amps = v_volts / r_ohms;\n    let p_watts = v_volts * i_amps;\n    p_watts\n}\n";
    assert!(lint_source("crates/spice/src/bad.rs", src).is_empty());
}

#[test]
fn l008_energy_products_are_clean() {
    // watts × seconds → joules: the energy-accounting identity the
    // power reports use (`PowerBreakdown::energy_joules`).
    let src = "fn energy(p_watts: f64, t_seconds: f64) -> f64 {\n    let e_joules = p_watts * t_seconds;\n    e_joules\n}\n";
    assert!(lint_source("crates/core/src/bad.rs", src).is_empty());
}

#[test]
fn l008_energy_quotient_recovers_power() {
    let src = "fn mean(e_joules: f64, t_seconds: f64) -> f64 {\n    let p_watts = e_joules / t_seconds;\n    p_watts\n}\n";
    assert!(lint_source("crates/spice/src/bad.rs", src).is_empty());
}

#[test]
fn l008_adding_joules_to_watts_is_flagged() {
    let src = "fn nonsense(e_joules: f64, p_watts: f64) -> f64 {\n    e_joules + p_watts\n}\n";
    let findings = lint_source("crates/core/src/bad.rs", src);
    assert_eq!(rules_of(&findings), ["L008"]);
    assert_eq!(findings[0].line, 2);
}

#[test]
fn l008_power_of_ten_literal_is_a_scale_conversion() {
    let src = "fn total_mw(p_watts: f64, q_mw: f64) -> f64 {\n    p_watts * 1e3 + q_mw\n}\n";
    assert!(lint_source("crates/train/src/bad.rs", src).is_empty());
}

#[test]
fn l008_call_argument_must_match_the_signature() {
    let src = "fn absorb(p_watts: f64) -> f64 {\n    p_watts\n}\n\nfn drive(x_mw: f64) -> f64 {\n    absorb(x_mw)\n}\n";
    let findings = lint_source("crates/surrogate/src/bad.rs", src);
    assert_eq!(rules_of(&findings), ["L008"]);
    assert_eq!(findings[0].line, 6);
}

#[test]
fn l008_return_unit_comes_from_the_fn_name_suffix() {
    let src = "fn budget_mw(p_watts: f64) -> f64 {\n    p_watts\n}\n";
    assert_eq!(
        rules_of(&lint_source("crates/spice/src/bad.rs", src)),
        ["L008"]
    );
}

#[test]
fn l008_allow_directive_suppresses() {
    let src = "fn total(p_watts: f64, q_mw: f64) -> f64 {\n    // lint: allow(L008, reason = \"q_mw is mis-named, tracked in #42\")\n    p_watts + q_mw\n}\n";
    assert!(lint_source("crates/spice/src/bad.rs", src).is_empty());
}

#[test]
fn l008_dimensionless_directive_suppresses() {
    let src = "fn total(p_watts: f64, q_mw: f64) -> f64 {\n    // lint: dimensionless\n    p_watts + q_mw\n}\n";
    assert!(lint_source("crates/spice/src/bad.rs", src).is_empty());
}

#[test]
fn l008_does_not_apply_in_test_modules_or_other_crates() {
    let bad = "fn total(p_watts: f64, q_mw: f64) -> f64 {\n    p_watts + q_mw\n}\n";
    assert!(lint_source("crates/bench/src/bad.rs", bad).is_empty());
    let in_test = format!("#[cfg(test)]\nmod tests {{\n    {bad}\n}}\n");
    assert!(lint_source("crates/spice/src/bad.rs", &in_test).is_empty());
}

#[test]
fn l008_unsuffixed_names_are_never_guessed_at() {
    let src = "fn mystery(a: f64, b: f64) -> f64 {\n    a + b\n}\n";
    assert!(lint_source("crates/spice/src/bad.rs", src).is_empty());
}

// ---------------------------------------------------------------- L009

#[test]
fn l009_seeded_unordered_hashmap_feeding_pushed_output() {
    let src = "use std::collections::HashMap;\n\nfn rows(m: &HashMap<String, u32>) -> Vec<String> {\n    let mut out = Vec::new();\n    for (k, v) in m {\n        out.push(format!(\"{k}={v}\"));\n    }\n    out\n}\n";
    let findings = lint_source("crates/bench/src/bad.rs", src);
    assert_eq!(rules_of(&findings), ["L009"]);
    assert_eq!(findings[0].line, 6);
}

#[test]
fn l009_sorting_after_the_loop_repairs_the_leak() {
    let src = "use std::collections::HashMap;\n\nfn rows(m: &HashMap<String, u32>) -> Vec<String> {\n    let mut out = Vec::new();\n    for (k, v) in m {\n        out.push(format!(\"{k}={v}\"));\n    }\n    out.sort_unstable();\n    out\n}\n";
    assert!(lint_source("crates/bench/src/bad.rs", src).is_empty());
}

#[test]
fn l009_float_accumulation_over_hash_iteration_is_flagged() {
    let src = "use std::collections::HashMap;\n\nfn mean(m: &HashMap<String, f64>) -> f64 {\n    let mut sum = 0.0;\n    for (_, v) in m {\n        sum += v;\n    }\n    sum\n}\n";
    assert_eq!(
        rules_of(&lint_source("crates/bench/src/bad.rs", src)),
        ["L009"]
    );
}

#[test]
fn l009_btreemap_iteration_is_deterministic_and_clean() {
    let src = "use std::collections::BTreeMap;\n\nfn rows(m: &BTreeMap<String, u32>) -> Vec<String> {\n    let mut out = Vec::new();\n    for (k, v) in m {\n        out.push(format!(\"{k}={v}\"));\n    }\n    out\n}\n";
    assert!(lint_source("crates/bench/src/bad.rs", src).is_empty());
}

#[test]
fn l009_integer_counting_over_hash_iteration_is_fine() {
    let src = "use std::collections::HashMap;\n\nfn live(m: &HashMap<String, u32>) -> usize {\n    let mut n = 0usize;\n    for (_, v) in m {\n        if *v > 0 {\n            n += 1;\n        }\n    }\n    n\n}\n";
    assert!(lint_source("crates/bench/src/bad.rs", src).is_empty());
}

#[test]
fn l009_applies_inside_test_modules_too() {
    let src = "#[cfg(test)]\nmod tests {\n    use std::collections::HashMap;\n\n    fn rows(m: &HashMap<String, u32>) -> Vec<String> {\n        let mut out = Vec::new();\n        for (k, v) in m {\n            out.push(format!(\"{k}={v}\"));\n        }\n        out\n    }\n}\n";
    assert_eq!(
        rules_of(&lint_source("crates/telemetry/src/bad.rs", src)),
        ["L009"]
    );
}

#[test]
fn l009_allow_directive_suppresses() {
    let src = "use std::collections::HashMap;\n\nfn rows(m: &HashMap<String, u32>) -> Vec<String> {\n    let mut out = Vec::new();\n    // lint: allow(L009, reason = \"consumer resorts; order provably irrelevant\")\n    for (k, v) in m {\n        out.push(format!(\"{k}={v}\"));\n    }\n    out\n}\n";
    assert!(lint_source("crates/bench/src/bad.rs", src).is_empty());
}

// ---------------------------------------------------------------- L010

#[test]
fn l010_wall_clock_read_inside_par_map_closure() {
    let src = "fn timed(ex: &Executor, xs: &[f64]) -> Vec<f64> {\n    ex.par_map(xs, |_, x| {\n        let t = std::time::Instant::now();\n        x * t.elapsed().as_secs_f64()\n    })\n}\n";
    // Telemetry path: the same snippet in a solver crate would also
    // (rightly) trip L007's raw-clock ban; telemetry owns the clock,
    // so only the closure-purity violation remains.
    let findings = lint_source("crates/telemetry/src/bad.rs", src);
    assert_eq!(rules_of(&findings), ["L010"]);
}

#[test]
fn l010_locked_accumulator_inside_par_map_closure() {
    let src = "fn accumulate(ex: &Executor, xs: &[f64], total: &Mutex<f64>) {\n    ex.par_map(xs, |_, x| {\n        let mut guard = total.lock();\n        *guard += x;\n    });\n}\n";
    assert_eq!(
        rules_of(&lint_source("crates/train/src/bad.rs", src)),
        ["L010"]
    );
}

#[test]
fn l010_env_read_inside_par_reduce_closure() {
    let src = "fn scaled(ex: &Executor, xs: &[f64]) -> f64 {\n    ex.par_reduce(xs, 0.0, |_, x| {\n        if std::env::var(\"FAST\").is_ok() {\n            x\n        } else {\n            x * 2.0\n        }\n    })\n}\n";
    assert_eq!(
        rules_of(&lint_source("crates/core/src/bad.rs", src)),
        ["L010"]
    );
}

#[test]
fn l010_seeded_randomness_from_the_index_is_clean() {
    let src = "fn jittered(ex: &Executor, xs: &[f64], base: u64) -> Vec<f64> {\n    ex.par_map(xs, |i, x| x + noise(derive_seed(base, i)))\n}\n";
    assert!(lint_source("crates/train/src/bad.rs", src).is_empty());
}

#[test]
fn l010_clock_reads_outside_the_closure_are_not_this_rules_business() {
    // The sequential-path clock read is L007's job (telemetry crate is
    // exempt from L007, which keeps this fixture single-purpose).
    let src = "fn timed(ex: &Executor, xs: &[f64]) -> Vec<f64> {\n    let t0 = std::time::Instant::now();\n    let out = ex.par_map(xs, |_, x| x * 2.0);\n    record(t0.elapsed());\n    out\n}\n";
    assert!(lint_source("crates/telemetry/src/bad.rs", src).is_empty());
}

#[test]
fn l010_applies_inside_test_modules_too() {
    let src = "#[cfg(test)]\nmod tests {\n    fn t(ex: &Executor) {\n        ex.par_map(&[1.0], |_, x| x * std::process::id() as f64);\n    }\n}\n";
    assert_eq!(
        rules_of(&lint_source("crates/train/src/bad.rs", src)),
        ["L010"]
    );
}

#[test]
fn l010_allow_directive_suppresses() {
    let src = "fn t(ex: &Executor, xs: &[f64]) -> Vec<ThreadId> {\n    // lint: allow(L010, reason = \"thread placement is the subject under test\")\n    ex.par_map(xs, |_, _| std::thread::current().id())\n}\n";
    assert!(lint_source("crates/parallel/src/bad.rs", src).is_empty());
}
