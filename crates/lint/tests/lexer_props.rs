//! Property tests for the lint lexer.
//!
//! The rules trust the lexer for exactly three things: it never fails,
//! its line numbers are honest, and text inside comments and string
//! literals never masquerades as code. Each property below pins one of
//! those contracts over generated input.

use pnc_lint::lexer::{lex, TokenKind};
use proptest::prelude::*;

/// Characters chosen to stress literal and comment handling: quote
/// openers, raw-string markers, operator fragments and some multi-byte
/// text, so random soup frequently forms (and un-forms) every literal
/// kind the lexer knows.
const PALETTE: &[char] = &[
    'a', 'Z', '_', '0', '9', ' ', '\n', '\t', '"', '\'', '/', '*', '#', 'r', 'b', '\\', '=', '!',
    '<', '>', '.', ':', '(', ')', '{', '}', ';', '-', '+', 'é', '∂',
];

fn soup() -> impl Strategy<Value = String> {
    proptest::collection::vec(0usize..PALETTE.len(), 0..160)
        .prop_map(|ix| ix.into_iter().map(|i| PALETTE[i]).collect())
}

fn ident() -> impl Strategy<Value = String> {
    proptest::collection::vec(0usize..26, 1..12)
        .prop_map(|ix| ix.into_iter().map(|i| (b'a' + i as u8) as char).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The lexer must not panic on any input, including unterminated
    /// literals and half-open comments, and every token and comment it
    /// reports must carry a line number that exists in the source.
    #[test]
    fn lexing_arbitrary_soup_never_panics(src in soup()) {
        let out = lex(&src);
        let line_count = src.lines().count().max(1) as u32;
        let mut prev = 1u32;
        for t in &out.tokens {
            prop_assert!(t.line >= prev, "token lines must be non-decreasing");
            prop_assert!(t.line <= line_count, "token line {} beyond {line_count}", t.line);
            prev = t.line;
        }
        for c in &out.comments {
            prop_assert!(c.line >= 1 && c.line <= line_count);
        }
    }

    /// Tokens must cover exactly the non-comment, non-whitespace text:
    /// re-joining token texts loses nothing that rules could match on.
    #[test]
    fn token_texts_are_verbatim_source_slices(src in soup()) {
        for t in lex(&src).tokens {
            prop_assert!(
                src.contains(&t.text),
                "token {:?} is not a slice of the source",
                t.text
            );
        }
    }

    /// A line comment swallows the rest of its line: nothing after
    /// `//` may surface as a code token.
    #[test]
    fn line_comments_produce_no_tokens(w in ident()) {
        let src = format!("// {w} == 1.0 .unwrap()\n");
        let out = lex(&src);
        prop_assert!(out.tokens.is_empty(), "comment text leaked: {:?}", out.tokens);
        prop_assert_eq!(out.comments.len(), 1);
        prop_assert!(out.comments[0].text.contains(&w));
    }

    /// String interiors are opaque: one `Str` token, and the payload is
    /// recoverable through `string_content` but never visible as
    /// identifiers or operators.
    #[test]
    fn string_interiors_stay_opaque(w in ident()) {
        // No identifiers outside the literal, so any `Ident` token
        // spelling `w` could only have leaked from inside it.
        let src = format!("(\"{w}.unwrap()\");");
        let out = lex(&src);
        let strs: Vec<_> = out.tokens.iter().filter(|t| t.kind == TokenKind::Str).collect();
        prop_assert_eq!(strs.len(), 1);
        prop_assert_eq!(strs[0].string_content(), Some(format!("{w}.unwrap()").as_str()));
        prop_assert!(out.tokens.iter().all(|t| t.kind != TokenKind::Ident || t.text != w));
        prop_assert!(out.tokens.iter().all(|t| t.text != "unwrap"));
    }

    /// Raw strings hide operators and floats that would otherwise trip
    /// L002; only the literal itself comes out.
    #[test]
    fn raw_string_interiors_stay_opaque(w in ident()) {
        let src = format!("let s = r#\"{w} == 1.5\"#;");
        let out = lex(&src);
        prop_assert!(out.tokens.iter().all(|t| t.kind != TokenKind::Float));
        prop_assert!(out.tokens.iter().all(|t| t.text != "=="));
        prop_assert_eq!(
            out.tokens.iter().filter(|t| t.kind == TokenKind::Str).count(),
            1
        );
    }

    /// Number classification is what L002 runs on: a dotted literal is
    /// a `Float`, a bare one is an `Int`, regardless of digits drawn.
    #[test]
    fn number_classification_tracks_the_dot(a in 0u32..10_000, b in 0u32..10_000) {
        let float_src = format!("let x = {a}.{b};");
        let out = lex(&float_src);
        prop_assert_eq!(out.tokens.iter().filter(|t| t.kind == TokenKind::Float).count(), 1);
        prop_assert!(out.tokens.iter().all(|t| t.kind != TokenKind::Int));

        let int_src = format!("let x = {a};");
        let out = lex(&int_src);
        prop_assert_eq!(out.tokens.iter().filter(|t| t.kind == TokenKind::Int).count(), 1);
        prop_assert!(out.tokens.iter().all(|t| t.kind != TokenKind::Float));
    }

    /// Lexing is insensitive to leading whitespace: same token kinds
    /// and spellings, only line numbers may shift. (Trailing padding is
    /// deliberately not added — an unterminated literal legitimately
    /// absorbs it.)
    #[test]
    fn whitespace_framing_does_not_change_tokens(src in soup()) {
        let framed = format!("\n  \t{src}");
        let a = lex(&src).tokens;
        let b = lex(&framed).tokens;
        prop_assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            prop_assert_eq!(x.kind, y.kind);
            prop_assert_eq!(&x.text, &y.text);
        }
    }
}

#[test]
fn unterminated_string_runs_to_end_of_input_without_panicking() {
    let out = lex("let s = \"never closed");
    let last = out.tokens.last().expect("tokens");
    assert_eq!(last.kind, TokenKind::Str);
    assert_eq!(last.text, "\"never closed");
}

#[test]
fn block_comments_nest_like_rustc() {
    let out = lex("/* outer /* inner */ still comment */ let x = 1;");
    assert!(out.tokens.iter().all(|t| t.text != "still"));
    assert!(out.tokens.iter().any(|t| t.text == "x"));
}

#[test]
fn lifetimes_are_not_char_literals() {
    let out = lex("fn f<'a>(x: &'a str) -> &'a str { x }");
    assert!(out
        .tokens
        .iter()
        .any(|t| t.kind == TokenKind::Lifetime && t.text == "'a"));
    assert!(out.tokens.iter().all(|t| t.kind != TokenKind::Char));
}
