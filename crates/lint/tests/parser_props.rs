//! Property tests for the lint parser.
//!
//! The semantic rules trust the parser for two things: it never
//! panics — on any token stream, however mangled — and the AST it
//! recovers carries honest line numbers. Each property pins one of
//! those contracts over generated input; none of them asserts a
//! particular parse, because recovery (`Expr::Opaque`) is a valid
//! answer to malformed code.

use pnc_lint::lexer::lex;
use pnc_lint::parse::parse_file;
use proptest::prelude::*;

/// The lexer palette plus the tokens that drive the parser's hard
/// paths: `fn`, `let`, `for`, `match`, closures, turbofish, struct
/// literals and raw-string openers, so random soup frequently forms
/// half-open items and expressions mid-recovery.
const PALETTE: &[&str] = &[
    "fn", "let", "for", "in", "match", "if", "else", "while", "loop", "return", "impl", "mod",
    "self", "move", "x", "y", "Foo", "p_watts", "i_amps", "1", "2.5", "1e3", "\"s\"", "r#\"r\"#",
    "(", ")", "{", "}", "[", "]", "<", ">", ",", ";", ":", "::", "->", "=>", "=", "==", "+", "-",
    "*", "/", ".", "..", "|", "||", "&", "#", "'a", "!",
];

fn soup() -> impl Strategy<Value = String> {
    proptest::collection::vec(0usize..PALETTE.len(), 0..120).prop_map(|ix| {
        ix.into_iter()
            .map(|i| PALETTE[i])
            .collect::<Vec<_>>()
            .join(" ")
    })
}

fn ident() -> impl Strategy<Value = String> {
    proptest::collection::vec(0usize..26, 1..12)
        .prop_map(|ix| ix.into_iter().map(|i| (b'a' + i as u8) as char).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The parser must not panic on any token stream — arbitrary soup
    /// exercises recovery, depth limiting, and the progress guarantee
    /// (the parse always terminates).
    #[test]
    fn parsing_arbitrary_soup_never_panics(src in soup()) {
        let out = lex(&src);
        let parsed = parse_file(&out.tokens);
        // Walking the recovered AST must be equally panic-free.
        for f in &parsed.fns {
            let mut n = 0usize;
            for s in &f.body {
                if let pnc_lint::parse::Stmt::Expr(e) = s {
                    e.walk(&mut |_| n += 1);
                }
            }
        }
    }

    /// Line numbers on recovered items stay inside the source: the
    /// findings built from them must point at real lines.
    #[test]
    fn fn_item_lines_are_honest(src in soup()) {
        let line_count = src.lines().count().max(1) as u32;
        let out = lex(&src);
        for f in parse_file(&out.tokens).fns {
            prop_assert!(f.line >= 1 && f.line <= line_count,
                "fn `{}` at line {} of {line_count}", f.name, f.line);
        }
    }

    /// A well-formed fn wrapping a nested raw string parses to exactly
    /// one item, and the raw-string payload — operators, braces,
    /// inner `"#` — never surfaces as code.
    #[test]
    fn nested_raw_strings_stay_opaque_to_the_parser(w in ident()) {
        let src = format!(
            "fn emit() -> String {{\n    let s = r##\"{w} == {{ \"# }}\"##;\n    s.to_string()\n}}\n"
        );
        let out = lex(&src);
        let parsed = parse_file(&out.tokens);
        prop_assert_eq!(parsed.fns.len(), 1);
        prop_assert_eq!(parsed.fns[0].name.as_str(), "emit");
        // The interior `==` must not have become a Binary op operand.
        let mut saw_eq = false;
        for s in &parsed.fns[0].body {
            if let pnc_lint::parse::Stmt::Expr(e) = s {
                e.walk(&mut |x| {
                    if let pnc_lint::parse::Expr::Binary { op, .. } = x {
                        saw_eq |= op == "==";
                    }
                });
            }
        }
        prop_assert!(!saw_eq, "raw-string interior leaked into the AST");
    }

    /// Unbalanced delimiters — the classic parser killer — terminate
    /// cleanly even when every brace in the file is an opener.
    #[test]
    fn unbalanced_open_braces_terminate(n in 1usize..40) {
        let src = format!("fn f() {} let x = 1;", "{".repeat(n));
        let _ = parse_file(&lex(&src).tokens);
    }
}

#[test]
fn truncated_fn_header_is_recovered_not_panicked() {
    for src in [
        "fn",
        "fn f",
        "fn f(",
        "fn f(x:",
        "fn f(x: f64) ->",
        "fn f(x: f64) -> f64 {",
        "fn f(x: f64) -> f64 { x +",
    ] {
        let _ = parse_file(&lex(src).tokens);
    }
}

#[test]
fn deeply_nested_parens_hit_the_depth_limit_without_overflow() {
    let src = format!(
        "fn f() -> i32 {{ {}1{} }}",
        "(".repeat(300),
        ")".repeat(300)
    );
    let _ = parse_file(&lex(&src).tokens);
}
