//! Golden fixtures: one known-bad snippet per rule, fed through the
//! crate's public entry points, each paired with the suppression or
//! rewrite that silences it. These pin the user-visible contract of
//! every rule — if a rule's trigger conditions drift, a fixture here
//! fails before the workspace lint run does.

use pnc_lint::{l005_schema_drift, lint_source, Baseline, Finding, SourceFile};

fn rules_of(findings: &[Finding]) -> Vec<&'static str> {
    findings.iter().map(|f| f.rule).collect()
}

// ---------------------------------------------------------------- L001

#[test]
fn l001_unwrap_in_library_code() {
    let src = "pub fn take(x: Option<u32>) -> u32 {\n    x.unwrap()\n}\n";
    let findings = lint_source("crates/core/src/bad.rs", src);
    assert_eq!(rules_of(&findings), ["L001"]);
    assert_eq!(findings[0].line, 2);
    assert_eq!(findings[0].snippet, "x.unwrap()");
}

#[test]
fn l001_panic_macro_in_library_code() {
    let src = "pub fn boom() {\n    panic!(\"no\");\n}\n";
    let findings = lint_source("crates/train/src/bad.rs", src);
    assert_eq!(rules_of(&findings), ["L001"]);
}

#[test]
fn l001_is_silent_inside_test_modules() {
    let src = "#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() {\n        None::<u8>.unwrap();\n    }\n}\n";
    assert!(lint_source("crates/core/src/bad.rs", src).is_empty());
}

#[test]
fn l001_allow_directive_on_previous_line_suppresses() {
    let src = "pub fn take(x: Option<u32>) -> u32 {\n    // lint: allow(L001, reason = \"caller checked is_some above\")\n    x.unwrap()\n}\n";
    assert!(lint_source("crates/core/src/bad.rs", src).is_empty());
}

#[test]
fn l001_allow_directive_covers_only_the_next_line() {
    let src = "pub fn take(x: Option<u32>) -> u32 {\n    // lint: allow(L001, reason = \"too far away\")\n    let _pad = 0;\n    x.unwrap()\n}\n";
    assert_eq!(
        rules_of(&lint_source("crates/core/src/bad.rs", src)),
        ["L001"]
    );
}

// ---------------------------------------------------------------- L002

#[test]
fn l002_float_literal_equality_in_numeric_crate() {
    let src = "pub fn at_zero(x: f64) -> bool {\n    x == 0.0\n}\n";
    let findings = lint_source("crates/linalg/src/bad.rs", src);
    assert_eq!(rules_of(&findings), ["L002"]);
    assert_eq!(findings[0].line, 2);
}

#[test]
fn l002_does_not_apply_outside_numeric_crates() {
    let src = "pub fn at_zero(x: f64) -> bool {\n    x == 0.0\n}\n";
    assert!(lint_source("crates/telemetry/src/bad.rs", src).is_empty());
}

#[test]
fn l002_integer_equality_is_fine() {
    let src = "pub fn at_zero(x: usize) -> bool {\n    x == 0\n}\n";
    assert!(lint_source("crates/linalg/src/bad.rs", src).is_empty());
}

// ---------------------------------------------------------------- L003

#[test]
fn l003_static_mut_is_flagged() {
    let src = "static mut LAST_SEEN: u64 = 0;\n";
    let findings = lint_source("crates/train/src/bad.rs", src);
    assert_eq!(rules_of(&findings), ["L003"]);
}

#[test]
fn l003_test_fixture_statics_are_exempt() {
    let src = "#[cfg(test)]\nmod tests {\n    use std::sync::OnceLock;\n    static CELL: OnceLock<u8> = OnceLock::new();\n}\n";
    assert!(lint_source("crates/core/src/bad.rs", src).is_empty());
}

// ---------------------------------------------------------------- L004

#[test]
fn l004_unitless_public_f64_field_in_unit_crate() {
    let src = "pub struct Supply {\n    pub voltage: f64,\n}\n";
    let findings = lint_source("crates/spice/src/bad.rs", src);
    assert_eq!(rules_of(&findings), ["L004"]);
    assert_eq!(findings[0].line, 2);
}

#[test]
fn l004_unit_suffix_satisfies_the_rule() {
    let src = "pub struct Supply {\n    pub voltage_volts: f64,\n}\n";
    assert!(lint_source("crates/spice/src/bad.rs", src).is_empty());
}

#[test]
fn l004_dimensionless_annotation_satisfies_the_rule() {
    let src = "pub struct Fit {\n    // lint: dimensionless\n    pub gain: f64,\n}\n";
    assert!(lint_source("crates/spice/src/bad.rs", src).is_empty());
}

#[test]
fn l004_does_not_apply_outside_unit_bearing_crates() {
    let src = "pub struct Supply {\n    pub voltage: f64,\n}\n";
    assert!(lint_source("crates/bench/src/bad.rs", src).is_empty());
}

// ---------------------------------------------------------------- L005

const DOCUMENTED: &str = "\
# telemetry

| event | emitted by | fields |
|-------|------------|--------|
| `epoch_end` | trainer | `epoch` |
";

#[test]
fn l005_undocumented_event_name_is_flagged() {
    let src = "pub fn f(sink: &Sink) {\n    sink.emit(Event::new(\"solver_retry\"));\n}\n";
    let file = SourceFile::parse("crates/telemetry/src/bad.rs", src);
    let findings = l005_schema_drift(&[file], DOCUMENTED);
    assert_eq!(rules_of(&findings), ["L005"]);
    assert!(findings[0].message.contains("solver_retry"));
}

#[test]
fn l005_documented_event_name_passes() {
    let src = "pub fn f(sink: &Sink) {\n    sink.emit(Event::new(\"epoch_end\"));\n}\n";
    let file = SourceFile::parse("crates/telemetry/src/bad.rs", src);
    assert!(l005_schema_drift(&[file], DOCUMENTED).is_empty());
}

#[test]
fn l005_allow_directive_suppresses() {
    let src = "pub fn f(sink: &Sink) {\n    // lint: allow(L005, reason = \"internal debug event, not part of the schema\")\n    sink.emit(Event::new(\"solver_retry\"));\n}\n";
    let file = SourceFile::parse("crates/telemetry/src/bad.rs", src);
    assert!(l005_schema_drift(&[file], DOCUMENTED).is_empty());
}

#[test]
fn l005_solver_observatory_events_are_in_the_real_schema_table() {
    // The observatory emits `solve_trace` and `solver_atlas` from
    // pnc-spice / pnc-surrogate; this pins that the shipped README
    // documents both (dropping a row re-opens a schema-drift finding).
    let readme = std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/../../README.md"))
        .expect("workspace README");
    let src = "pub fn f(sink: &Sink) {\n    sink.emit(Event::new(\"solve_trace\"));\n    sink.emit(Event::new(\"solver_atlas\"));\n}\n";
    let file = SourceFile::parse("crates/spice/src/observe.rs", src);
    assert!(l005_schema_drift(&[file], &readme).is_empty());
}

// ---------------------------------------------------------------- L006

#[test]
fn l006_raw_thread_scope_outside_parallel_crate() {
    let src =
        "pub fn fan_out() {\n    std::thread::scope(|s| {\n        s.spawn(|| {});\n    });\n}\n";
    let findings = lint_source("crates/bench/src/bad.rs", src);
    assert_eq!(rules_of(&findings), ["L006"]);
    assert_eq!(findings[0].line, 2);
}

#[test]
fn l006_does_not_apply_inside_the_parallel_crate() {
    let src =
        "pub fn fan_out() {\n    std::thread::scope(|s| {\n        s.spawn(|| {});\n    });\n}\n";
    assert!(lint_source("crates/parallel/src/lib.rs", src).is_empty());
}

#[test]
fn l006_allow_directive_suppresses() {
    let src = "pub fn fan_out() {\n    // lint: allow(L006, reason = \"exercises per-thread span stacks\")\n    std::thread::scope(|s| {\n        s.spawn(|| {});\n    });\n}\n";
    assert!(lint_source("crates/bench/src/bad.rs", src).is_empty());
}

// ---------------------------------------------------------------- L007

#[test]
fn l007_raw_instant_now_outside_telemetry() {
    let src =
        "pub fn measure() {\n    let t = std::time::Instant::now();\n    let _ = t.elapsed();\n}\n";
    let findings = lint_source("crates/spice/src/bad.rs", src);
    assert_eq!(rules_of(&findings), ["L007"]);
    assert_eq!(findings[0].line, 2);
}

#[test]
fn l007_is_silent_inside_pnc_telemetry() {
    let src =
        "pub fn measure() {\n    let t = std::time::Instant::now();\n    let _ = t.elapsed();\n}\n";
    assert!(lint_source("crates/telemetry/src/stream.rs", src).is_empty());
}

#[test]
fn l007_allow_directive_suppresses() {
    let src = "pub fn measure() {\n    // lint: allow(L007, reason = \"calibrates the Stopwatch itself\")\n    let t = std::time::Instant::now();\n    let _ = t.elapsed();\n}\n";
    assert!(lint_source("crates/bench/src/bad.rs", src).is_empty());
}

// ---------------------------------------------------------------- L000

#[test]
fn l000_allow_without_reason_is_itself_a_finding() {
    let src = "pub fn take(x: Option<u32>) -> u32 {\n    // lint: allow(L001)\n    x.unwrap()\n}\n";
    let findings = lint_source("crates/core/src/bad.rs", src);
    let mut rules = rules_of(&findings);
    rules.sort_unstable();
    // The broken directive does not suppress, so the unwrap fires too.
    assert_eq!(rules, ["L000", "L001"]);
}

// ------------------------------------------------------------ baseline

#[test]
fn baseline_roundtrip_grandfathers_known_findings() {
    let src = "pub fn take(x: Option<u32>) -> u32 {\n    x.unwrap()\n}\n";
    let findings = lint_source("crates/core/src/bad.rs", src);
    let baseline = Baseline::parse(&Baseline::render(&findings));
    assert_eq!(baseline.len(), 1);

    let outcome = baseline.apply(findings);
    assert!(outcome.new.is_empty());
    assert_eq!(outcome.baselined, 1);
    assert_eq!(outcome.stale, 0);

    // A fixed finding leaves its entry stale; a fresh one is new.
    let fresh = lint_source(
        "crates/linalg/src/other.rs",
        "fn f(x: f64) -> bool { x == 0.5 }\n",
    );
    let outcome = baseline.apply(fresh);
    assert_eq!(outcome.new.len(), 1);
    assert_eq!(outcome.baselined, 0);
    assert_eq!(outcome.stale, 1);
}
