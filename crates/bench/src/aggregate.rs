//! Aggregation of per-run results into the paper's table cells.

use pnc_train::experiment::RunResult;

/// Averaged metrics for one (activation, budget) cell of Table I.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CellSummary {
    /// Mean power across datasets, milliwatts.
    pub power_mw: f64,
    /// Mean test accuracy, percent.
    pub accuracy_pct: f64,
    /// Mean device count (rounded for display).
    pub devices: f64,
    /// Fraction of runs that ended feasible.
    pub feasible_rate: f64,
    /// Total training runs consumed.
    pub training_runs: usize,
}

impl CellSummary {
    /// The paper's headline efficiency metric: accuracy (%) per mW.
    pub fn accuracy_per_mw(&self) -> f64 {
        self.accuracy_pct / self.power_mw.max(1e-12)
    }
}

/// Selects the top-`k` results per dataset by test accuracy — the
/// paper's "top three models per dataset" protocol — then averages.
pub fn average_cell(results: &[RunResult], top_k: usize) -> CellSummary {
    assert!(!results.is_empty(), "average_cell: no results");
    // Group by dataset. BTreeMap: the float sums below accumulate in
    // iteration order, so grouping must iterate deterministically for
    // Table I cells to be bit-identical run to run (L009).
    let mut by_dataset: std::collections::BTreeMap<&'static str, Vec<&RunResult>> =
        std::collections::BTreeMap::new();
    for r in results {
        by_dataset.entry(r.dataset.name()).or_default().push(r);
    }
    let mut sum_p = 0.0;
    let mut sum_a = 0.0;
    let mut sum_d = 0.0;
    let mut feas = 0usize;
    let mut n = 0usize;
    let runs: usize = results.iter().map(|r| r.training_runs).sum();
    for (_, mut rs) in by_dataset {
        rs.sort_by(|a, b| b.test_accuracy.total_cmp(&a.test_accuracy));
        for r in rs.into_iter().take(top_k.max(1)) {
            sum_p += r.power_mw;
            sum_a += r.test_accuracy * 100.0;
            sum_d += r.devices as f64;
            feas += usize::from(r.feasible);
            n += 1;
        }
    }
    CellSummary {
        power_mw: sum_p / n as f64,
        accuracy_pct: sum_a / n as f64,
        devices: sum_d / n as f64,
        feasible_rate: feas as f64 / n as f64,
        training_runs: runs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pnc_datasets::DatasetId;
    use pnc_spice::AfKind;

    fn rr(dataset: DatasetId, acc: f64, power: f64, dev: usize) -> RunResult {
        RunResult {
            dataset,
            af: AfKind::PTanh,
            budget_frac: 0.4,
            budget_mw: 1.0,
            power_mw: power,
            test_accuracy: acc,
            val_accuracy: acc,
            devices: dev,
            feasible: power <= 1.0,
            seed: 0,
            training_runs: 1,
        }
    }

    #[test]
    fn averages_top_k_per_dataset() {
        let results = vec![
            rr(DatasetId::Iris, 0.9, 0.5, 30),
            rr(DatasetId::Iris, 0.5, 0.5, 30), // dropped by top-1
            rr(DatasetId::Seeds, 0.7, 1.5, 50),
        ];
        let cell = average_cell(&results, 1);
        assert!((cell.accuracy_pct - 80.0).abs() < 1e-9);
        assert!((cell.power_mw - 1.0).abs() < 1e-9);
        assert!((cell.devices - 40.0).abs() < 1e-9);
        assert!((cell.feasible_rate - 0.5).abs() < 1e-9);
        assert_eq!(cell.training_runs, 3);
    }

    #[test]
    fn accuracy_per_mw() {
        let cell = average_cell(&[rr(DatasetId::Iris, 0.745, 0.25, 20)], 3);
        assert!((cell.accuracy_per_mw() - 74.5 / 0.25).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "no results")]
    fn empty_input_panics() {
        let _ = average_cell(&[], 3);
    }
}
