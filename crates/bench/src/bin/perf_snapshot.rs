//! Perf-snapshot writer: times the standard constrained pipeline per
//! dataset with the hierarchical profiler attached and writes the
//! machine-readable `BENCH_3.json` (wall clock, phase breakdown, and
//! SPICE solver rollup per dataset). `--compare` diffs two snapshot
//! files and exits non-zero when any wall clock or phase regressed by
//! more than 10 %.
//!
//! ```text
//! cargo run --release -p pnc-bench --bin perf_snapshot -- --scale smoke --out BENCH_3.json [--run-id <id>]
//! cargo run --release -p pnc-bench --bin perf_snapshot -- --compare old.json new.json
//! ```

use pnc_bench::harness::{
    cap_for, configure_threads_from_args, fit_bundle_traced, isolate_solver_stats, CappedData,
};
use pnc_bench::snapshot::{
    comparable_thread_counts, compare, DatasetPerf, PerfSnapshot, SolverRollup,
};
use pnc_bench::Scale;
use pnc_spice::AfKind;
use pnc_telemetry::{Profiler, Telemetry};
use pnc_train::auglag::{train_auglag_observed, AugLagConfig};
use pnc_train::experiment::{build_network, unconstrained_reference, PreparedData};
use pnc_train::finetune::finetune;
use pnc_train::observer::TelemetryObserver;
use std::process::ExitCode;
use std::time::Instant;

/// Budget fraction the snapshot pipeline trains at: mid-range, so the
/// augmented Lagrangian does real constraint work without rescue noise.
const SNAPSHOT_BUDGET_FRAC: f64 = 0.6;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    if let Some(i) = args.iter().position(|a| a == "--compare") {
        let (Some(old), Some(new)) = (args.get(i + 1), args.get(i + 2)) else {
            eprintln!("usage: perf_snapshot --compare <old.json> <new.json>");
            return ExitCode::FAILURE;
        };
        return run_compare(old, new);
    }
    let threads = configure_threads_from_args();
    let scale = Scale::from_args();
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_3.json".to_string());
    let run_id = args
        .iter()
        .position(|a| a == "--run-id")
        .and_then(|i| args.get(i + 1))
        .cloned();
    match run_snapshot(scale, &out, run_id, threads) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run_compare(old_path: &str, new_path: &str) -> ExitCode {
    let (old, new) = match (PerfSnapshot::read(old_path), PerfSnapshot::read(new_path)) {
        (Ok(o), Ok(n)) => (o, n),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    if !comparable_thread_counts(&old, &new) {
        eprintln!(
            "error: thread counts differ ({} vs {}); wall clocks are not comparable — \
             re-measure both snapshots at the same --threads",
            old.threads.map_or("?".into(), |t| t.to_string()),
            new.threads.map_or("?".into(), |t| t.to_string()),
        );
        return ExitCode::FAILURE;
    }
    if old.scale != new.scale {
        eprintln!(
            "warning: comparing different scales ({} vs {})",
            old.scale, new.scale
        );
    }
    let regressions = compare(&old, &new);
    if regressions.is_empty() {
        println!(
            "no regressions: {} dataset(s) within 10 % of baseline",
            new.datasets.len()
        );
        ExitCode::SUCCESS
    } else {
        for r in &regressions {
            println!("REGRESSION {r}");
        }
        ExitCode::FAILURE
    }
}

fn run_snapshot(
    scale: Scale,
    out: &str,
    run_id: Option<String>,
    threads: usize,
) -> Result<(), Box<dyn std::error::Error>> {
    let fidelity = scale.fidelity();
    let cap = cap_for(scale);
    let datasets = scale.datasets();
    println!(
        "Perf snapshot — scale {}, {} dataset(s), budget {:.0} %, {} thread(s)",
        scale.name(),
        datasets.len(),
        SNAPSHOT_BUDGET_FRAC * 100.0,
        threads
    );

    // Sequential on purpose: the SPICE solver stats are process-global,
    // so a parallel map would bleed counters across datasets.
    let mut perfs = Vec::with_capacity(datasets.len() + 1);

    // Surrogate characterization is the SPICE-heavy phase (training
    // itself runs on the fitted surrogates), so it gets its own entry
    // — this is where the Newton-iteration rollup carries data.
    eprintln!("[perf] characterization …");
    let tel = Telemetry::disabled().with_profiler(Profiler::enabled());
    let started = Instant::now();
    let (bundle, stats, iters) = {
        let (bundle, stats, iters) = isolate_solver_stats(|| {
            let _scope = tel.profiler().scope("fit_bundle");
            fit_bundle_traced(AfKind::PTanh, &fidelity, &tel)
        });
        (bundle?, stats, iters)
    };
    perfs.push(DatasetPerf::from_report(
        "(characterization)",
        started.elapsed().as_secs_f64() * 1e3,
        &tel.profiler().report(),
        SolverRollup::from_stats(stats, &iters),
    ));
    for &id in &datasets {
        eprintln!("[perf] {} …", id.name());
        let tel = Telemetry::disabled().with_profiler(Profiler::enabled());
        let started = Instant::now();
        let (result, stats, iters) =
            isolate_solver_stats(|| -> Result<(), pnc_train::TrainError> {
                let prep = PreparedData::new(id, 1);
                let data = CappedData::new(&prep, cap);
                let refs = data.refs();
                let (_, p_max) = {
                    let _scope = tel.profiler().scope("reference");
                    unconstrained_reference(
                        id,
                        &bundle.activation,
                        &bundle.negation,
                        &refs,
                        &fidelity.train,
                        1,
                    )?
                };
                let mut net = build_network(id, &bundle.activation, &bundle.negation, 1);
                let budget = SNAPSHOT_BUDGET_FRAC * p_max;
                let mut observer = TelemetryObserver::new(tel.clone());
                train_auglag_observed(
                    &mut net,
                    &refs,
                    &AugLagConfig {
                        budget_watts: budget,
                        mu: fidelity.mu,
                        outer_iters: fidelity.auglag_outer,
                        inner: fidelity.train.with_seed(1),
                        warm_start: true,
                        rescue: true,
                    },
                    &mut observer,
                )?;
                observer.finish();
                let _scope = tel.profiler().scope("finetune");
                finetune(&mut net, &refs, budget, &fidelity.train)?;
                Ok(())
            });
        result?;
        let wall_ms = started.elapsed().as_secs_f64() * 1e3;
        let report = tel.profiler().report();
        perfs.push(DatasetPerf::from_report(
            id.name(),
            wall_ms,
            &report,
            SolverRollup::from_stats(stats, &iters),
        ));
    }

    let snap = PerfSnapshot {
        scale: scale.name().to_string(),
        run_id,
        threads: Some(threads),
        datasets: perfs,
    };
    snap.write(out)?;
    println!("Wrote {out}");
    for d in &snap.datasets {
        println!(
            "  {:<24} {:>9.1} ms   {:>7} solves   newton p95 {:>5.1}",
            d.dataset, d.wall_ms, d.solver.solves, d.solver.iters_p95
        );
    }
    Ok(())
}
