//! Perf-snapshot writer: times the standard constrained pipeline per
//! dataset with the hierarchical profiler attached and writes the
//! machine-readable `BENCH_3.json` (wall clock, phase breakdown,
//! SPICE solver rollup per dataset, and executor utilization).
//! `--compare` diffs two snapshot files and exits non-zero when any
//! wall clock or phase regressed beyond the tolerance (default 10 %
//! relative with a 10 ms noise floor; override with `--rel-tol` /
//! `--noise-floor-ms`). The thresholds a snapshot was gated with are
//! recorded in its JSON.
//!
//! ```text
//! cargo run --release -p pnc-bench --bin perf_snapshot -- --scale smoke --out BENCH_3.json [--run-id <id>]
//! cargo run --release -p pnc-bench --bin perf_snapshot -- --compare old.json new.json [--rel-tol 0.15] [--noise-floor-ms 25]
//! ```

use pnc_bench::harness::{
    cap_for, configure_threads_from_args, fit_bundle_traced, isolate_solver_stats, CappedData,
};
use pnc_bench::snapshot::{
    comparable_thread_counts, compare_with, CompareConfig, DatasetPerf, PerfSnapshot, SolverRollup,
};
use pnc_bench::Scale;
use pnc_spice::AfKind;
use pnc_telemetry::{Profiler, Stopwatch, Telemetry};
use pnc_train::auglag::{train_auglag_observed, AugLagConfig};
use pnc_train::experiment::{build_network, unconstrained_reference, PreparedData};
use pnc_train::finetune::finetune;
use pnc_train::observer::TelemetryObserver;
use std::process::ExitCode;

/// Budget fraction the snapshot pipeline trains at: mid-range, so the
/// augmented Lagrangian does real constraint work without rescue noise.
const SNAPSHOT_BUDGET_FRAC: f64 = 0.6;

/// Parses an `--flag <value>` f64 override, falling back to `default`.
/// Exits with an error message on an unparseable value.
fn parse_f64_flag(args: &[String], flag: &str, default: f64) -> Result<f64, String> {
    let Some(i) = args.iter().position(|a| a == flag) else {
        return Ok(default);
    };
    args.get(i + 1)
        .and_then(|v| v.parse::<f64>().ok())
        .filter(|v| v.is_finite() && *v >= 0.0)
        .ok_or_else(|| format!("{flag} requires a non-negative number"))
}

fn compare_config(args: &[String]) -> Result<CompareConfig, String> {
    let defaults = CompareConfig::default();
    Ok(CompareConfig {
        rel_tol: parse_f64_flag(args, "--rel-tol", defaults.rel_tol)?,
        noise_floor_ms: parse_f64_flag(args, "--noise-floor-ms", defaults.noise_floor_ms)?,
    })
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    let cfg = match compare_config(&args) {
        Ok(cfg) => cfg,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Some(i) = args.iter().position(|a| a == "--compare") {
        let (Some(old), Some(new)) = (args.get(i + 1), args.get(i + 2)) else {
            eprintln!(
                "usage: perf_snapshot --compare <old.json> <new.json> \
                 [--rel-tol 0.10] [--noise-floor-ms 10]"
            );
            return ExitCode::FAILURE;
        };
        return run_compare(old, new, cfg);
    }
    let threads = configure_threads_from_args();
    let scale = Scale::from_args();
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_3.json".to_string());
    let run_id = args
        .iter()
        .position(|a| a == "--run-id")
        .and_then(|i| args.get(i + 1))
        .cloned();
    match run_snapshot(scale, &out, run_id, threads, cfg) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run_compare(old_path: &str, new_path: &str, cfg: CompareConfig) -> ExitCode {
    let (old, new) = match (PerfSnapshot::read(old_path), PerfSnapshot::read(new_path)) {
        (Ok(o), Ok(n)) => (o, n),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    if !comparable_thread_counts(&old, &new) {
        eprintln!(
            "error: thread counts differ ({} vs {}); wall clocks are not comparable — \
             re-measure both snapshots at the same --threads",
            old.threads.map_or("?".into(), |t| t.to_string()),
            new.threads.map_or("?".into(), |t| t.to_string()),
        );
        return ExitCode::FAILURE;
    }
    if old.scale != new.scale {
        eprintln!(
            "warning: comparing different scales ({} vs {})",
            old.scale, new.scale
        );
    }
    let regressions = compare_with(&old, &new, cfg);
    if regressions.is_empty() {
        println!(
            "no regressions: {} dataset(s) within {:.1} % of baseline (noise floor {:.1} ms)",
            new.datasets.len(),
            cfg.rel_tol * 100.0,
            cfg.noise_floor_ms
        );
        ExitCode::SUCCESS
    } else {
        for r in &regressions {
            println!("REGRESSION {r}");
        }
        ExitCode::FAILURE
    }
}

fn run_snapshot(
    scale: Scale,
    out: &str,
    run_id: Option<String>,
    threads: usize,
    cfg: CompareConfig,
) -> Result<(), Box<dyn std::error::Error>> {
    let fidelity = scale.fidelity();
    let cap = cap_for(scale);
    let datasets = scale.datasets();
    println!(
        "Perf snapshot — scale {}, {} dataset(s), budget {:.0} %, {} thread(s)",
        scale.name(),
        datasets.len(),
        SNAPSHOT_BUDGET_FRAC * 100.0,
        threads
    );

    // Sequential on purpose: the SPICE solver stats are process-global,
    // so a parallel map would bleed counters across datasets.
    let mut perfs = Vec::with_capacity(datasets.len() + 1);

    // Surrogate characterization is the SPICE-heavy phase (training
    // itself runs on the fitted surrogates), so it gets its own entry
    // — this is where the Newton-iteration rollup carries data.
    eprintln!("[perf] characterization …");
    // Zero the executor counters so the snapshot's utilization block
    // covers exactly this run.
    pnc_parallel::stats::reset();
    let tel = Telemetry::disabled().with_profiler(Profiler::enabled());
    let started = Stopwatch::start();
    let (bundle, stats, iters) = {
        let (bundle, stats, iters) = isolate_solver_stats(|| {
            let _scope = tel.profiler().scope("fit_bundle");
            fit_bundle_traced(AfKind::PTanh, &fidelity, &tel)
        });
        (bundle?, stats, iters)
    };
    perfs.push(DatasetPerf::from_report(
        "(characterization)",
        started.elapsed_ms(),
        &tel.profiler().report(),
        SolverRollup::from_stats(stats, &iters),
    ));
    for &id in &datasets {
        eprintln!("[perf] {} …", id.name());
        let tel = Telemetry::disabled().with_profiler(Profiler::enabled());
        let started = Stopwatch::start();
        let (result, stats, iters) =
            isolate_solver_stats(|| -> Result<(), pnc_train::TrainError> {
                let prep = PreparedData::new(id, 1);
                let data = CappedData::new(&prep, cap);
                let refs = data.refs();
                let (_, p_max) = {
                    let _scope = tel.profiler().scope("reference");
                    unconstrained_reference(
                        id,
                        &bundle.activation,
                        &bundle.negation,
                        &refs,
                        &fidelity.train,
                        1,
                    )?
                };
                let mut net = build_network(id, &bundle.activation, &bundle.negation, 1);
                let budget = SNAPSHOT_BUDGET_FRAC * p_max;
                let mut observer = TelemetryObserver::new(tel.clone());
                train_auglag_observed(
                    &mut net,
                    &refs,
                    &AugLagConfig {
                        budget_watts: budget,
                        mu: fidelity.mu,
                        outer_iters: fidelity.auglag_outer,
                        inner: fidelity.train.with_seed(1),
                        warm_start: true,
                        rescue: true,
                    },
                    &mut observer,
                )?;
                observer.finish();
                let _scope = tel.profiler().scope("finetune");
                finetune(&mut net, &refs, budget, &fidelity.train)?;
                Ok(())
            });
        result?;
        let wall_ms = started.elapsed_ms();
        let report = tel.profiler().report();
        perfs.push(DatasetPerf::from_report(
            id.name(),
            wall_ms,
            &report,
            SolverRollup::from_stats(stats, &iters),
        ));
    }

    let executor = pnc_parallel::stats::take().into();
    let snap = PerfSnapshot {
        scale: scale.name().to_string(),
        run_id,
        threads: Some(threads),
        rel_tol: Some(cfg.rel_tol),
        noise_floor_ms: Some(cfg.noise_floor_ms),
        executor: Some(executor),
        datasets: perfs,
    };
    snap.write(out)?;
    println!("Wrote {out}");
    println!(
        "  executor: {} call(s), {} item(s), {:.0} % busy, {:.0} items/s",
        executor.calls,
        executor.items,
        executor.utilization * 100.0,
        executor.items_per_sec
    );
    for d in &snap.datasets {
        println!(
            "  {:<24} {:>9.1} ms   {:>7} solves   newton p95 {:>5.1}",
            d.dataset, d.wall_ms, d.solver.solves, d.solver.iters_p95
        );
    }
    Ok(())
}
