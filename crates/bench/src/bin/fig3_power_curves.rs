//! Regenerates **Fig. 3(c)–(f) bottom**: the power behaviour of the
//! four printed activation circuits as a function of input voltage,
//! straight from the SPICE-level simulator (the data the surrogate
//! power models are trained on), plus the transfer curves (top halves).
//!
//! ```text
//! cargo run --release -p pnc-bench --bin fig3_power_curves -- --scale ci
//! ```

use pnc_bench::report::write_csv;
use pnc_bench::Scale;
use pnc_linalg::SobolSequence;
use pnc_spice::af::{input_grid, power_curve, transfer_curve};
use pnc_spice::{AfDesign, AfKind};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    pnc_bench::harness::configure_threads_from_args();
    let scale = Scale::from_args();
    let (designs_per_kind, grid_points) = match scale {
        Scale::Smoke => (2usize, 11usize),
        Scale::Ci => (5, 21),
        Scale::Full => (12, 41),
    };
    println!(
        "Fig. 3 power/transfer curves — scale {}, {} designs per AF, {} grid points",
        scale.name(),
        designs_per_kind,
        grid_points
    );
    let grid = input_grid(grid_points);

    let mut rows: Vec<Vec<String>> = Vec::new();
    for kind in AfKind::ALL {
        // Default design + Sobol-sampled designs across the space.
        let mut designs = vec![kind.default_design()];
        let bounds = kind.bounds();
        let mut sobol = SobolSequence::new(bounds.len())?;
        sobol.burn(1);
        let log_bounds: Vec<(f64, f64)> =
            bounds.iter().map(|&(lo, hi)| (lo.ln(), hi.ln())).collect();
        let samples = sobol.sample_scaled(designs_per_kind.saturating_sub(1), &log_bounds);
        for i in 0..samples.rows() {
            let q: Vec<f64> = samples.row_slice(i).iter().map(|&x| x.exp()).collect();
            designs.push(AfDesign::new(kind, q)?);
        }

        for (d_idx, design) in designs.iter().enumerate() {
            let power = match power_curve(design, &grid) {
                Ok(p) => p,
                Err(e) => {
                    eprintln!("[fig3] {} design {d_idx}: {e}; skipped", kind.name());
                    continue;
                }
            };
            let transfer = transfer_curve(design, &grid)?;
            for (g, (&v, (&p, &t))) in grid
                .iter()
                .zip(power.iter().zip(transfer.iter()))
                .enumerate()
            {
                let _ = g;
                rows.push(vec![
                    kind.name().to_string(),
                    d_idx.to_string(),
                    format!("{v:.4}"),
                    format!("{:.6e}", p * 1e3), // mW
                    format!("{t:.5}"),
                ]);
            }

            if d_idx == 0 {
                // Terminal sparkline of the default design's power curve.
                let pmax = power.iter().cloned().fold(f64::MIN_POSITIVE, f64::max);
                let bars: String = power
                    .iter()
                    .map(|&p| {
                        const LEVELS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
                        let idx = ((p / pmax) * 7.0).round() as usize;
                        LEVELS[idx.min(7)]
                    })
                    .collect();
                println!(
                    "{:>15}  power(V_in ∈ [−1, 1]): {}  (peak {:.3} µW)",
                    kind.name(),
                    bars,
                    pmax * 1e6
                );
            }
        }
    }

    // Qualitative signature checks mirroring the paper's description.
    println!("\nSignature checks (paper Sec. III-A):");
    let check = |name: &str, ok: bool| {
        println!("  [{}] {}", if ok { "ok" } else { "??" }, name);
    };
    let p_relu = power_curve(&AfKind::PRelu.default_design(), &grid)?;
    check(
        "p-ReLU power rises smoothly with input (unbounded)",
        p_relu.last() >= p_relu.first()
            && p_relu.iter().cloned().fold(0.0, f64::max) == *p_relu.last().ok_or("empty grid")?,
    );
    let p_sig = power_curve(&AfKind::PSigmoid.default_design(), &grid)?;
    let left: f64 = p_sig[..grid_points / 3].iter().sum();
    let right: f64 = p_sig[2 * grid_points / 3..].iter().sum();
    check(
        "p-sigmoid draws more current at negative voltages",
        left > right,
    );
    let p_clip = power_curve(&AfKind::PClippedRelu.default_design(), &grid)?;
    let slopes: Vec<f64> = p_clip.windows(2).map(|w| w[1] - w[0]).collect();
    let max_slope = slopes.iter().cloned().fold(0.0f64, f64::max);
    let final_slope = *slopes.last().ok_or("empty grid")?;
    check(
        "p-Clipped_ReLU power spikes near threshold then stabilizes",
        final_slope < 0.3 * max_slope,
    );

    let path = write_csv(
        "fig3_power_curves",
        &["af", "design_index", "v_in", "power_mw", "v_out"],
        &rows,
    );
    println!("\nWrote {}", path.display());
    Ok(())
}
