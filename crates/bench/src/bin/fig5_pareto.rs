//! Regenerates **Fig. 5**: per-dataset penalty-based Pareto fronts
//! (blue scatter → pink front in the paper) against the single-run
//! augmented Lagrangian optima at the four power budgets (the rhombus
//! markers), using the p-tanh activation as in the paper.
//!
//! ```text
//! cargo run --release -p pnc-bench --bin fig5_pareto -- --scale ci
//! ```

use pnc_bench::harness::{
    cap_for, fit_bundle, run_dataset_penalty, run_dataset_tuned, BUDGET_FRACS, MU_GRID,
};
use pnc_bench::report::{write_csv, TableWriter};
use pnc_bench::Scale;
use pnc_datasets::DatasetId;
use pnc_spice::AfKind;
use pnc_train::pareto::{best_under_budget, pareto_front, ParetoPoint};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    pnc_bench::harness::configure_threads_from_args();
    let scale = Scale::from_args();
    let fidelity = scale.fidelity();
    let seeds = scale.seeds();
    let cap = cap_for(scale);
    let datasets: Vec<DatasetId> = match scale {
        Scale::Smoke => vec![DatasetId::Iris],
        Scale::Ci => vec![
            DatasetId::Iris,
            DatasetId::Seeds,
            DatasetId::BreastCancer,
            DatasetId::VertebralColumn,
        ],
        Scale::Full => DatasetId::ALL.to_vec(),
    };
    let (alphas, penalty_seeds) = scale.penalty_sweep();
    println!(
        "Fig. 5 Pareto comparison — scale {}, {} dataset(s), penalty sweep {} α × {} seeds, p-tanh",
        scale.name(),
        datasets.len(),
        alphas.len(),
        penalty_seeds
    );

    let bundle = fit_bundle(AfKind::PTanh, &fidelity)?;
    let mut scatter_rows: Vec<Vec<String>> = Vec::new();
    let mut al_rows: Vec<Vec<String>> = Vec::new();
    let mut comparison = TableWriter::new(&[
        "dataset",
        "budget",
        "AL acc %",
        "AL power mW",
        "front acc %",
        "verdict",
        "AL runs",
        "penalty runs",
    ]);

    for &id in &datasets {
        eprintln!("[fig5] {} …", id.name());
        // Penalty sweep (the expensive blue scatter).
        let sweep_seeds: Vec<u64> = (1..=penalty_seeds as u64).collect();
        let penalty_runs =
            run_dataset_penalty(id, &bundle, &alphas, &sweep_seeds, &fidelity, cap, false)?;
        let points: Vec<ParetoPoint> = penalty_runs
            .iter()
            .map(|r| ParetoPoint {
                power_mw: r.power_mw,
                accuracy: r.test_accuracy,
            })
            .collect();
        let front = pareto_front(&points);
        for r in &penalty_runs {
            scatter_rows.push(vec![
                id.name().to_string(),
                format!("{:.3}", r.budget_frac), // α
                format!("{:.6}", r.power_mw),
                format!("{:.4}", r.test_accuracy),
                r.seed.to_string(),
            ]);
        }

        // Augmented Lagrangian points at each budget, with μ selected
        // from a small validation grid (the paper's RayTune step).
        let al_runs = run_dataset_tuned(id, &bundle, &BUDGET_FRACS, &seeds[..1], &fidelity, cap)?;
        for r in &al_runs {
            al_rows.push(vec![
                id.name().to_string(),
                format!("{:.2}", r.budget_frac),
                format!("{:.6}", r.budget_mw),
                format!("{:.6}", r.power_mw),
                format!("{:.4}", r.test_accuracy),
                r.feasible.to_string(),
            ]);
            let front_at = best_under_budget(&front, r.budget_mw);
            let (front_acc, verdict) = match front_at {
                Some(p) => {
                    let diff = r.test_accuracy - p.accuracy;
                    let verdict = if diff >= -0.02 {
                        "matches/beats front"
                    } else {
                        "below front"
                    };
                    (format!("{:.2}", 100.0 * p.accuracy), verdict)
                }
                None => ("-".to_string(), "front has no feasible point"),
            };
            comparison.row(vec![
                id.name().into(),
                format!("{:.0}%", r.budget_frac * 100.0),
                format!("{:.2}", 100.0 * r.test_accuracy),
                format!("{:.3}", r.power_mw),
                front_acc,
                verdict.into(),
                format!("{}", MU_GRID.len()),
                format!("{}", alphas.len() * penalty_seeds),
            ]);
        }
    }

    println!();
    comparison.print();
    println!(
        "\nCost: the augmented Lagrangian reaches each budget in {} training runs (μ grid, \
         selected on validation); the penalty front costs {} runs per dataset at this scale \
         (paper: 50 α × 10 seeds ≤ 500, 'up to 150 runs' for a usable front).",
        MU_GRID.len(),
        alphas.len() * penalty_seeds
    );

    let p1 = write_csv(
        "fig5_penalty_scatter",
        &["dataset", "alpha", "power_mw", "accuracy", "seed"],
        &scatter_rows,
    );
    let p2 = write_csv(
        "fig5_auglag_points",
        &[
            "dataset",
            "budget_frac",
            "budget_mw",
            "power_mw",
            "accuracy",
            "feasible",
        ],
        &al_rows,
    );
    println!("Wrote {} and {}", p1.display(), p2.display());
    Ok(())
}
