//! μ-sensitivity study — the paper's Sec. III-C notes that "the
//! parameter μ ∈ ℝ⁺ is a hyperparameter that controls the speed of
//! convergence and influences the stability of the method", and
//! Sec. IV-A1 selects it per dataset with RayTune. This binary is the
//! reproduction's RayTune stand-in made visible: it sweeps μ across
//! three orders of magnitude at a fixed budget and reports how
//! feasibility, accuracy and the multiplier trajectory respond, plus
//! what the validation-based selection (`pnc_train::tune`) picks.
//!
//! ```text
//! cargo run --release -p pnc-bench --bin mu_search -- --scale ci
//! ```

use pnc_bench::harness::{cap_for, fit_bundle, CappedData};
use pnc_bench::report::{write_csv, TableWriter};
use pnc_bench::Scale;
use pnc_datasets::DatasetId;
use pnc_spice::AfKind;
use pnc_train::auglag::{train_auglag, AugLagConfig};
use pnc_train::experiment::{unconstrained_reference, PreparedData};
use pnc_train::tune::select_mu;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    pnc_bench::harness::configure_threads_from_args();
    let scale = Scale::from_args();
    let fidelity = scale.fidelity();
    let cap = cap_for(scale);
    let datasets: Vec<DatasetId> = match scale {
        Scale::Smoke => vec![DatasetId::Iris],
        _ => vec![DatasetId::Iris, DatasetId::Seeds, DatasetId::BreastCancer],
    };
    let mu_grid = [0.1, 0.5, 2.0, 8.0, 32.0];
    println!(
        "μ sensitivity — scale {}, {} dataset(s), μ ∈ {:?}, 40% budget",
        scale.name(),
        datasets.len(),
        mu_grid
    );

    let bundle = fit_bundle(AfKind::PTanh, &fidelity)?;
    let mut table = TableWriter::new(&[
        "dataset",
        "mu",
        "feasible",
        "val acc %",
        "power mW",
        "final λ",
        "rescued",
    ]);
    let mut rows: Vec<Vec<String>> = Vec::new();

    for &id in &datasets {
        eprintln!("[mu_search] {} …", id.name());
        let prep = PreparedData::new(id, 1);
        let data = CappedData::new(&prep, cap);
        let refs = data.refs();
        let (_, p_max) = unconstrained_reference(
            id,
            &bundle.activation,
            &bundle.negation,
            &refs,
            &fidelity.train,
            1,
        )?;
        let budget = 0.4 * p_max;

        for &mu in &mu_grid {
            let mut net =
                pnc_train::experiment::build_network(id, &bundle.activation, &bundle.negation, 1);
            let report = train_auglag(
                &mut net,
                &refs,
                &AugLagConfig {
                    budget_watts: budget,
                    mu,
                    outer_iters: fidelity.auglag_outer,
                    inner: fidelity.train.with_seed(1),
                    warm_start: true,
                    // No rescue: expose μ's raw effect on feasibility.
                    rescue: false,
                },
            )?;
            table.row(vec![
                id.name().into(),
                format!("{mu}"),
                report.feasible.to_string(),
                format!("{:.2}", 100.0 * report.val_accuracy),
                format!("{:.3}", report.power_watts * 1e3),
                format!("{:.2}", report.lambda_final),
                report.rescued.to_string(),
            ]);
            rows.push(vec![
                id.name().into(),
                format!("{mu}"),
                report.feasible.to_string(),
                format!("{:.4}", report.val_accuracy),
                format!("{:.6e}", report.power_watts),
                format!("{:.4}", report.lambda_final),
            ]);
        }

        // What the tuner itself picks (with rescue enabled, as the
        // experiments run it).
        let template =
            pnc_train::experiment::build_network(id, &bundle.activation, &bundle.negation, 1);
        let base = AugLagConfig {
            budget_watts: budget,
            mu: 2.0,
            outer_iters: fidelity.auglag_outer,
            inner: fidelity.train.with_seed(1),
            warm_start: true,
            rescue: true,
        };
        let search = select_mu(&template, &refs, &base, &mu_grid)?;
        println!(
            "  {}: validation-selected μ = {} ({} candidates)",
            id.name(),
            search.best_mu(),
            search.trials.len()
        );
    }

    println!();
    table.print();
    println!(
        "\nReading: small μ under-enforces (high accuracy, budget violations); large μ\n\
         over-penalizes early iterations (feasible but can cost accuracy). The mid-range\n\
         is robust — which is why a 3-point validation grid suffices for the experiments."
    );
    let path = write_csv(
        "mu_sensitivity",
        &[
            "dataset",
            "mu",
            "feasible",
            "val_accuracy",
            "power_w",
            "lambda_final",
        ],
        &rows,
    );
    println!("Wrote {}", path.display());
    Ok(())
}
