//! Ablation studies for the starred design decisions in DESIGN.md §5:
//!
//! 1. **Warm-starting** between augmented Lagrangian outer iterations
//!    (the paper prescribes it "to save computation time") — measured in
//!    epochs spent and final accuracy/feasibility.
//! 2. **Soft-count relaxation** — the paper's literal `σ(|θ|)` versus
//!    the sharpened `σ(k(|θ| − τ))` used here, measured by device count
//!    and the gap between soft and hard power.
//! 3. **Constraint handling** — augmented Lagrangian (one run) versus
//!    the penalty method queried at the same budget (many runs).
//!
//! ```text
//! cargo run --release -p pnc-bench --bin ablations -- --scale ci
//! ```

use pnc_bench::harness::{cap_for, fit_bundle, CappedData};
use pnc_bench::report::{write_csv, TableWriter};
use pnc_bench::Scale;
use pnc_core::count::CountConfig;
use pnc_core::NetworkConfig;
use pnc_core::PrintedNetwork;
use pnc_datasets::DatasetId;
use pnc_linalg::rng as lrng;
use pnc_spice::AfKind;
use pnc_train::auglag::{hard_power, train_auglag, AugLagConfig};
use pnc_train::experiment::{unconstrained_reference, PreparedData};
use pnc_train::pareto::{best_under_budget, pareto_front, ParetoPoint};
use pnc_train::penalty::{train_penalty, PenaltyConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    pnc_bench::harness::configure_threads_from_args();
    let scale = Scale::from_args();
    let fidelity = scale.fidelity();
    let cap = cap_for(scale);
    let datasets: Vec<DatasetId> = match scale {
        Scale::Smoke => vec![DatasetId::Iris],
        _ => vec![
            DatasetId::Iris,
            DatasetId::Seeds,
            DatasetId::VertebralColumn,
        ],
    };
    println!(
        "Ablations — scale {}, {} dataset(s)",
        scale.name(),
        datasets.len()
    );
    let bundle = fit_bundle(AfKind::PTanh, &fidelity)?;
    let mut csv_rows: Vec<Vec<String>> = Vec::new();

    // ------------------------------------------------------------------
    // 1. Warm-starting.
    // ------------------------------------------------------------------
    let mut t1 = TableWriter::new(&["dataset", "warm", "acc %", "power mW", "feasible", "epochs"]);
    for &id in &datasets {
        let prep = PreparedData::new(id, 1);
        let data = CappedData::new(&prep, cap);
        let refs = data.refs();
        let (_, p_max) = unconstrained_reference(
            id,
            &bundle.activation,
            &bundle.negation,
            &refs,
            &fidelity.train,
            1,
        )?;
        for warm in [true, false] {
            let mut net =
                pnc_train::experiment::build_network(id, &bundle.activation, &bundle.negation, 1);
            let cfg = AugLagConfig {
                budget_watts: 0.4 * p_max,
                mu: fidelity.mu,
                outer_iters: fidelity.auglag_outer,
                inner: fidelity.train.with_seed(1),
                warm_start: warm,
                rescue: true,
            };
            let report = train_auglag(&mut net, &refs, &cfg)?;
            let test_acc = net.accuracy(&data.x_test, &data.y_test)?;
            let epochs: usize = report.outer.iter().map(|o| o.fit.epochs).sum();
            t1.row(vec![
                id.name().into(),
                warm.to_string(),
                format!("{:.2}", 100.0 * test_acc),
                format!("{:.3}", report.power_watts * 1e3),
                report.feasible.to_string(),
                epochs.to_string(),
            ]);
            csv_rows.push(vec![
                "warmstart".into(),
                id.name().into(),
                warm.to_string(),
                format!("{:.4}", test_acc),
                format!("{:.6}", report.power_watts * 1e3),
                epochs.to_string(),
            ]);
        }
    }
    println!("\n== Ablation 1: warm-starting between outer iterations ==");
    t1.print();

    // ------------------------------------------------------------------
    // 2. Count relaxation: paper-literal σ(|θ|) vs sharpened indicator.
    // ------------------------------------------------------------------
    let mut t2 = TableWriter::new(&[
        "dataset",
        "relaxation",
        "acc %",
        "hard power mW",
        "soft/hard gap",
        "devices",
    ]);
    for &id in &datasets {
        let prep = PreparedData::new(id, 1);
        let data = CappedData::new(&prep, cap);
        let refs = data.refs();
        for (label, count_cfg) in [
            ("sharp σ(k(|θ|−τ))", CountConfig::default()),
            ("paper σ(|θ|)", CountConfig::paper_literal()),
        ] {
            let mut rng = lrng::seeded(1);
            let mut net = PrintedNetwork::new(
                id.features(),
                id.classes(),
                NetworkConfig {
                    count: count_cfg,
                    ..NetworkConfig::default()
                },
                bundle.activation.clone(),
                bundle.negation,
                &mut rng,
            )?;
            let p0 = hard_power(&net, refs.x_train)?;
            let cfg = AugLagConfig {
                budget_watts: 0.5 * p0,
                mu: fidelity.mu,
                outer_iters: fidelity.auglag_outer,
                inner: fidelity.train.with_seed(1),
                warm_start: true,
                rescue: true,
            };
            train_auglag(&mut net, &refs, &cfg)?;
            let test_acc = net.accuracy(&data.x_test, &data.y_test)?;
            let hard = hard_power(&net, refs.x_train)?;
            // Soft (differentiable) power at the solution.
            let mut tape = pnc_autodiff::Tape::new();
            let bound = net.bind(&mut tape, refs.x_train)?;
            let soft = tape.scalar(bound.power);
            let devices = net.device_count();
            t2.row(vec![
                id.name().into(),
                label.into(),
                format!("{:.2}", 100.0 * test_acc),
                format!("{:.3}", hard * 1e3),
                format!("{:.2}", soft / hard.max(1e-12)),
                devices.to_string(),
            ]);
            csv_rows.push(vec![
                "count_relaxation".into(),
                id.name().into(),
                label.into(),
                format!("{:.4}", test_acc),
                format!("{:.6}", hard * 1e3),
                devices.to_string(),
            ]);
        }
    }
    println!("\n== Ablation 2: soft device-count relaxation ==");
    t2.print();
    println!(
        "(soft/hard gap ≈ 1 means the differentiable power the optimizer sees matches the \
         indicator-count power being reported; the paper-literal relaxation overcounts \
         because σ(0) = ½.)"
    );

    // ------------------------------------------------------------------
    // 3. Constraint handling: AL single run vs penalty sweep query.
    // ------------------------------------------------------------------
    let mut t3 = TableWriter::new(&["dataset", "method", "acc % @40% budget", "power mW", "runs"]);
    for &id in &datasets {
        let prep = PreparedData::new(id, 1);
        let data = CappedData::new(&prep, cap);
        let refs = data.refs();
        let (_, p_max) = unconstrained_reference(
            id,
            &bundle.activation,
            &bundle.negation,
            &refs,
            &fidelity.train,
            1,
        )?;
        let budget = 0.4 * p_max;

        // AL: one run.
        let mut net =
            pnc_train::experiment::build_network(id, &bundle.activation, &bundle.negation, 1);
        let cfg = AugLagConfig {
            budget_watts: budget,
            mu: fidelity.mu,
            outer_iters: fidelity.auglag_outer,
            inner: fidelity.train.with_seed(1),
            warm_start: true,
            rescue: true,
        };
        let al = train_auglag(&mut net, &refs, &cfg)?;
        let al_acc = net.accuracy(&data.x_test, &data.y_test)?;
        t3.row(vec![
            id.name().into(),
            "augmented Lagrangian".into(),
            format!("{:.2}", 100.0 * al_acc),
            format!("{:.3}", al.power_watts * 1e3),
            "1".into(),
        ]);

        // Penalty: small sweep, query the front at the budget.
        let alphas = [0.05, 0.1, 0.2, 0.4, 0.7, 1.0];
        let mut points = Vec::new();
        for (k, &alpha) in alphas.iter().enumerate() {
            let mut pnet = pnc_train::experiment::build_network(
                id,
                &bundle.activation,
                &bundle.negation,
                1 + k as u64,
            );
            let r = train_penalty(
                &mut pnet,
                &refs,
                &PenaltyConfig {
                    alpha,
                    p_ref_watts: p_max,
                    inner: fidelity.train.with_seed(1),
                    faithful: false,
                },
            )?;
            let acc = pnet.accuracy(&data.x_test, &data.y_test)?;
            points.push(ParetoPoint {
                power_mw: r.power_watts * 1e3,
                accuracy: acc,
            });
        }
        let front = pareto_front(&points);
        let at_budget = best_under_budget(&front, budget * 1e3);
        t3.row(vec![
            id.name().into(),
            "penalty sweep".into(),
            at_budget
                .map(|p| format!("{:.2}", 100.0 * p.accuracy))
                .unwrap_or_else(|| "no feasible point".into()),
            at_budget
                .map(|p| format!("{:.3}", p.power_mw))
                .unwrap_or_else(|| "-".into()),
            alphas.len().to_string(),
        ]);
        csv_rows.push(vec![
            "constraint_handling".into(),
            id.name().into(),
            "auglag".into(),
            format!("{:.4}", al_acc),
            format!("{:.6}", al.power_watts * 1e3),
            "1".into(),
        ]);
        if let Some(p) = at_budget {
            csv_rows.push(vec![
                "constraint_handling".into(),
                id.name().into(),
                "penalty".into(),
                format!("{:.4}", p.accuracy),
                format!("{:.6}", p.power_mw),
                alphas.len().to_string(),
            ]);
        }
    }
    println!("\n== Ablation 3: constraint handling at a 40% budget ==");
    t3.print();

    let path = write_csv(
        "ablations",
        &[
            "study", "dataset", "variant", "accuracy", "power_mw", "extra",
        ],
        &csv_rows,
    );
    println!("\nWrote {}", path.display());
    Ok(())
}
