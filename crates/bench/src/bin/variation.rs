//! Printing-variation robustness study (extension beyond the paper,
//! grounded in its pPDK reference \[29\] on printed-EGT variability).
//!
//! Trains pNCs at several power budgets, lowers each to its
//! transistor-level netlist, then Monte-Carlo "prints" perturbed copies
//! (resistance, V_th and K_p spreads) and measures the accuracy
//! distribution across prints. The interesting question: does strict
//! power constraining — which prunes devices and pushes conductances
//! toward thresholds — cost robustness?
//!
//! ```text
//! cargo run --release -p pnc-bench --bin variation -- --scale ci
//! ```

use pnc_bench::harness::{cap_for, fit_bundle, CappedData};
use pnc_bench::report::{write_csv, TableWriter};
use pnc_bench::Scale;
use pnc_core::export::export_network;
use pnc_datasets::DatasetId;
use pnc_spice::{AfKind, VariationModel};
use pnc_train::auglag::{hard_power, train_auglag, AugLagConfig};
use pnc_train::experiment::{unconstrained_reference, PreparedData};
use pnc_train::finetune::finetune;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    pnc_bench::harness::configure_threads_from_args();
    let scale = Scale::from_args();
    let fidelity = scale.fidelity();
    let cap = cap_for(scale);
    let (datasets, prints, eval_rows): (Vec<DatasetId>, usize, usize) = match scale {
        Scale::Smoke => (vec![DatasetId::Iris], 12, 16),
        Scale::Ci => (
            vec![
                DatasetId::Iris,
                DatasetId::Seeds,
                DatasetId::VertebralColumn,
            ],
            30,
            24,
        ),
        Scale::Full => (
            vec![
                DatasetId::Iris,
                DatasetId::Seeds,
                DatasetId::VertebralColumn,
                DatasetId::BreastCancer,
                DatasetId::MammographicMass,
            ],
            100,
            40,
        ),
    };
    println!(
        "Printing-variation robustness — scale {}, {} dataset(s), {} Monte Carlo prints",
        scale.name(),
        datasets.len(),
        prints
    );

    let bundle = fit_bundle(AfKind::PTanh, &fidelity)?;
    let corners = [
        ("tight", VariationModel::tight()),
        ("default", VariationModel::default()),
        ("loose", VariationModel::loose()),
    ];

    let mut table = TableWriter::new(&[
        "dataset",
        "budget",
        "nominal acc %",
        "corner",
        "mean acc %",
        "std",
        "worst %",
        "yield %",
    ]);
    let mut rows: Vec<Vec<String>> = Vec::new();

    for &id in &datasets {
        eprintln!("[variation] {} …", id.name());
        let prep = PreparedData::new(id, 1);
        let data = CappedData::new(&prep, cap);
        let refs = data.refs();
        let (_, p_max) = unconstrained_reference(
            id,
            &bundle.activation,
            &bundle.negation,
            &refs,
            &fidelity.train,
            1,
        )?;

        for &frac in &[0.3f64, 1.0] {
            let mut net =
                pnc_train::experiment::build_network(id, &bundle.activation, &bundle.negation, 1);
            let budget = frac * p_max;
            train_auglag(
                &mut net,
                &refs,
                &AugLagConfig {
                    budget_watts: budget,
                    mu: fidelity.mu,
                    outer_iters: fidelity.auglag_outer,
                    inner: fidelity.train.with_seed(1),
                    warm_start: true,
                    rescue: true,
                },
            )?;
            finetune(&mut net, &refs, budget, &fidelity.train)?;
            hard_power(&net, refs.x_train)?;

            let exported = export_network(&net)?;
            // Evaluate on a capped slice of the test set (full-circuit
            // DC per sample per print).
            let n_eval = data.x_test.rows().min(eval_rows);
            let idx: Vec<usize> = (0..n_eval).collect();
            let x_eval = data.x_test.select_rows(&idx);
            let y_eval = &data.y_test[..n_eval];
            let nominal = {
                let preds = exported.classify(&x_eval)?;
                preds.iter().zip(y_eval).filter(|(p, l)| p == l).count() as f64 / n_eval as f64
            };

            for (corner_name, corner) in &corners {
                let mc = exported.monte_carlo(&x_eval, y_eval, corner, prints, 11);
                table.row(vec![
                    id.name().into(),
                    format!("{:.0}%", frac * 100.0),
                    format!("{:.1}", 100.0 * nominal),
                    (*corner_name).into(),
                    format!("{:.1}", 100.0 * mc.mean_accuracy()),
                    format!("{:.1}", 100.0 * mc.std_accuracy()),
                    format!("{:.1}", 100.0 * mc.min_accuracy()),
                    format!("{:.0}", 100.0 * mc.yield_rate()),
                ]);
                rows.push(vec![
                    id.name().into(),
                    format!("{frac:.2}"),
                    (*corner_name).into(),
                    format!("{:.4}", nominal),
                    format!("{:.4}", mc.mean_accuracy()),
                    format!("{:.4}", mc.std_accuracy()),
                    format!("{:.4}", mc.min_accuracy()),
                    format!("{:.4}", mc.yield_rate()),
                    format!("{:.6e}", mc.mean_power()),
                ]);
            }
        }
    }

    println!();
    table.print();
    println!(
        "\nReading: 'budget 30%' rows are strictly power-constrained circuits; 'budget 100%' \
         rows are lightly constrained references. Accuracy spread under the default corner \
         shows how much classification robustness printing variation costs after aggressive \
         power optimization."
    );
    let path = write_csv(
        "variation_robustness",
        &[
            "dataset",
            "budget_frac",
            "corner",
            "nominal_acc",
            "mean_acc",
            "std_acc",
            "worst_acc",
            "yield",
            "mean_power_w",
        ],
        &rows,
    );
    println!("Wrote {}", path.display());
    Ok(())
}
