//! Cross-snapshot trend analytics: aggregates a chronological sequence
//! of `BENCH_*.json` perf snapshots into per-dataset historical series,
//! runs the sustained-regression detector over them, prints the trend
//! table, and exits non-zero when any series is flagged.
//!
//! ```text
//! cargo run --release -p pnc-bench --bin trend -- BENCH_3.json BENCH_4.json \
//!     [--out BENCH_5.json] [--report trend.md] \
//!     [--rel-tol 0.10] [--noise-floor-ms 10] [--window 2]
//! ```
//!
//! Inputs are taken oldest first. A single elevated point never flags —
//! the last `--window` points must *all* exceed the median of the
//! preceding history by both thresholds (see
//! [`pnc_telemetry::trend`]). `--out` writes a machine-readable report
//! (`"bench": "trend"`), `--report` the markdown table CI uploads as an
//! artifact.

use pnc_bench::snapshot::{trend_series, PerfSnapshot};
use pnc_telemetry::json::write_escaped;
use pnc_telemetry::trend::{TrendConfig, TrendReport};
use std::process::ExitCode;

fn parse_flag<T: std::str::FromStr>(args: &[String], flag: &str) -> Result<Option<T>, String> {
    let Some(i) = args.iter().position(|a| a == flag) else {
        return Ok(None);
    };
    args.get(i + 1)
        .and_then(|v| v.parse::<T>().ok())
        .map(Some)
        .ok_or_else(|| format!("{flag} requires a value"))
}

fn report_to_json(report: &TrendReport, inputs: &[String]) -> String {
    let mut out = String::with_capacity(2048);
    out.push_str("{\n  \"bench\": \"trend\",\n  \"version\": 1,\n");
    out.push_str(&format!(
        "  \"rel_tol\": {:.4},\n  \"noise_floor_ms\": {:.3},\n  \"window\": {},\n",
        report.config.rel_tol, report.config.noise_floor, report.config.window
    ));
    out.push_str("  \"inputs\": [");
    for (i, input) in inputs.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        write_escaped(&mut out, input);
    }
    out.push_str("],\n  \"flagged\": ");
    out.push_str(&report.flagged_count().to_string());
    out.push_str(",\n  \"rows\": [");
    let num = |v: f64| {
        if v.is_finite() {
            format!("{v:.3}")
        } else {
            "null".to_string()
        }
    };
    for (i, row) in report.rows.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    {\"metric\": ");
        write_escaped(&mut out, &row.metric);
        out.push_str(&format!(
            ", \"n\": {}, \"baseline\": {}, \"last\": {}, \"delta_pct\": {}, \"flagged\": {}}}",
            row.n,
            num(row.baseline),
            num(row.last),
            num(row.delta_pct),
            row.flagged
        ));
    }
    if !report.rows.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("]\n}\n");
    out
}

fn run() -> Result<ExitCode, String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let defaults = TrendConfig::default();
    let config = TrendConfig {
        rel_tol: parse_flag(&args, "--rel-tol")?.unwrap_or(defaults.rel_tol),
        noise_floor: parse_flag(&args, "--noise-floor-ms")?.unwrap_or(defaults.noise_floor),
        window: parse_flag(&args, "--window")?.unwrap_or(defaults.window),
    };
    let out_path: Option<String> = parse_flag(&args, "--out")?;
    let report_path: Option<String> = parse_flag(&args, "--report")?;

    // Positional args: snapshot files, oldest first. Skip every
    // `--flag value` pair.
    let flags = [
        "--rel-tol",
        "--noise-floor-ms",
        "--window",
        "--out",
        "--report",
    ];
    let mut inputs: Vec<String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        if flags.contains(&args[i].as_str()) {
            i += 2;
            continue;
        }
        inputs.push(args[i].clone());
        i += 1;
    }
    if inputs.len() < 2 {
        return Err(
            "need at least two snapshot files (oldest first), e.g. BENCH_3.json BENCH_4.json"
                .to_string(),
        );
    }

    let mut snapshots = Vec::with_capacity(inputs.len());
    for path in &inputs {
        snapshots.push((path.clone(), PerfSnapshot::read(path)?));
    }
    let series = trend_series(&snapshots);
    let report = TrendReport::analyze(&series, config);

    let markdown = report.render_markdown();
    print!("{markdown}");
    if let Some(path) = &report_path {
        std::fs::write(path, &markdown).map_err(|e| format!("{path}: {e}"))?;
        eprintln!("wrote {path}");
    }
    if let Some(path) = &out_path {
        std::fs::write(path, report_to_json(&report, &inputs))
            .map_err(|e| format!("{path}: {e}"))?;
        eprintln!("wrote {path}");
    }
    Ok(if report.flagged_count() == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
