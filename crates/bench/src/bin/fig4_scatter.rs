//! Regenerates **Fig. 4**: the accuracy–power scatter across datasets,
//! activation functions and power budgets. Each point is a trained pNC;
//! the dashed budget thresholds of the figure become a feasibility
//! column here, and the binary asserts the paper's visual claim that
//! "all results lie below the defined power levels".
//!
//! ```text
//! cargo run --release -p pnc-bench --bin fig4_scatter -- --scale ci
//! ```

use pnc_bench::harness::{
    cap_for, fit_bundle, parallel_over_datasets, run_csv_row, run_dataset, BUDGET_FRACS,
    RUN_CSV_HEADER,
};
use pnc_bench::report::{write_csv, TableWriter};
use pnc_bench::Scale;
use pnc_spice::AfKind;
use pnc_train::experiment::RunResult;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    pnc_bench::harness::configure_threads_from_args();
    let scale = Scale::from_args();
    let fidelity = scale.fidelity();
    let datasets = scale.datasets();
    let seeds = scale.seeds();
    let cap = cap_for(scale);
    println!(
        "Fig. 4 scatter — scale {}, {} datasets × 4 AFs × 4 budgets × {} seed(s)",
        scale.name(),
        datasets.len(),
        seeds.len()
    );

    let mut all: Vec<RunResult> = Vec::new();
    for kind in AfKind::ALL {
        eprintln!("[fig4] {} …", kind.name());
        let bundle = fit_bundle(kind, &fidelity)?;
        let per_dataset = parallel_over_datasets(&datasets, |id| {
            run_dataset(id, &bundle, &BUDGET_FRACS, &seeds, &fidelity, cap)
        });
        for runs in per_dataset {
            all.extend(runs?);
        }
    }

    // Keep the top-3 models per (dataset, AF, budget) — the paper's
    // selection — which with few seeds means "all", exactly as run.
    let rows: Vec<Vec<String>> = all.iter().map(run_csv_row).collect();
    let path = write_csv("fig4_scatter", &RUN_CSV_HEADER, &rows);

    // Feasibility: the paper's headline visual property.
    let infeasible: Vec<&RunResult> = all.iter().filter(|r| !r.feasible).collect();
    println!(
        "\nAll points below their budget line: {} ({} of {} runs feasible)",
        infeasible.is_empty(),
        all.len() - infeasible.len(),
        all.len()
    );
    for r in &infeasible {
        println!(
            "  violation: {} {} at {:.0}%: {:.3} mW > {:.3} mW",
            r.dataset.name(),
            r.af.name(),
            r.budget_frac * 100.0,
            r.power_mw,
            r.budget_mw
        );
    }

    // Per-budget accuracy/power summary (the scatter's vertical bands).
    let mut t = TableWriter::new(&["budget", "af", "mean acc %", "mean power mW", "n"]);
    for &frac in &BUDGET_FRACS {
        for kind in AfKind::ALL {
            let pts: Vec<&RunResult> = all
                .iter()
                .filter(|r| r.af == kind && (r.budget_frac - frac).abs() < 1e-9)
                .collect();
            if pts.is_empty() {
                continue;
            }
            let acc = 100.0 * pts.iter().map(|r| r.test_accuracy).sum::<f64>() / pts.len() as f64;
            let pow = pts.iter().map(|r| r.power_mw).sum::<f64>() / pts.len() as f64;
            t.row(vec![
                format!("{:.0}%", frac * 100.0),
                kind.name().into(),
                format!("{acc:.2}"),
                format!("{pow:.3}"),
                pts.len().to_string(),
            ]);
        }
    }
    println!();
    t.print();

    // The trade-off the figure illustrates: average accuracy should
    // drop as the budget tightens.
    let mean_acc = |frac: f64| {
        let pts: Vec<&RunResult> = all
            .iter()
            .filter(|r| (r.budget_frac - frac).abs() < 1e-9)
            .collect();
        100.0 * pts.iter().map(|r| r.test_accuracy).sum::<f64>() / pts.len().max(1) as f64
    };
    println!(
        "\nBudget–accuracy trade-off: 20% → {:.1}%, 80% → {:.1}% (paper: accuracy decreases at 20%)",
        mean_acc(0.2),
        mean_acc(0.8)
    );
    println!("Wrote {}", path.display());
    Ok(())
}
