//! Sparse/warm-start solve-path benchmark: characterization cost per
//! activation-function kind with the pattern-reusing solver and
//! block-synchronous warm starts engaged (`BENCH_8.json`).
//!
//! Runs the same per-kind characterization as `solver_obs` (which
//! produced `BENCH_7.json` before warm starting existed), records the
//! solver rollups — now including factorization-reuse and warm-start
//! counters — and, when a baseline snapshot recorded at the same scale
//! is readable, prints the per-kind Newton-iteration reduction and
//! enforces the ≥25% aggregate-reduction gate. The existing `trend`
//! binary consumes the output unchanged.
//!
//! ```text
//! cargo run --release -p pnc-bench --bin solver_perf -- \
//!     --scale smoke --out BENCH_8.json --baseline BENCH_7.json
//! ```
//!
//! `--backend dense|sparse|auto` forces the linear-solver backend
//! (operating points are backend-independent; iteration counts change
//! only through warm starting). `--no-warm-start` measures the cold
//! path, `--no-gate` skips the reduction gate (used by CI smoke runs
//! whose scale has no recorded baseline).

use pnc_bench::harness::{configure_threads_from_args, fit_bundle_traced, isolate_solver_stats};
use pnc_bench::snapshot::{DatasetPerf, PerfSnapshot, SolverRollup};
use pnc_bench::Scale;
use pnc_spice::AfKind;
use pnc_surrogate::{atlas, SolverAtlas};
use pnc_telemetry::{Profiler, Stopwatch, Telemetry};
use std::process::ExitCode;

/// Ring seed for the trace recorder: fixed so repeated runs sample the
/// same solves and the snapshot stays reproducible.
const TRACE_SEED: u64 = 7;

/// Required aggregate Newton-iteration reduction against the baseline.
const GATE: f64 = 0.25;

fn arg_value(args: &[String], key: &str) -> Option<String> {
    args.iter().position(|a| a == key).and_then(|i| args.get(i + 1)).cloned()
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    let threads = configure_threads_from_args();
    let scale = Scale::from_args();
    let out = arg_value(&args, "--out").unwrap_or_else(|| "BENCH_8.json".to_string());
    let baseline = arg_value(&args, "--baseline").unwrap_or_else(|| "BENCH_7.json".to_string());
    if let Some(name) = arg_value(&args, "--backend") {
        match pnc_spice::SolverBackend::parse(&name) {
            Some(b) => pnc_spice::dc::set_default_backend(b),
            None => {
                eprintln!("error: --backend: '{name}' is not one of auto, dense, sparse");
                return ExitCode::FAILURE;
            }
        }
    }
    if args.iter().any(|a| a == "--no-warm-start") {
        pnc_surrogate::sampling::set_warm_start(false);
    }
    let gate = !args.iter().any(|a| a == "--no-gate");
    match run(scale, &out, &baseline, gate, threads) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run(
    scale: Scale,
    out: &str,
    baseline: &str,
    gate: bool,
    threads: usize,
) -> Result<(), Box<dyn std::error::Error>> {
    let fidelity = scale.fidelity();
    println!(
        "Sparse/warm-start solver benchmark — scale {}, {} AF kind(s), {} thread(s), warm start {}",
        scale.name(),
        AfKind::ALL.len(),
        threads,
        if pnc_surrogate::sampling::warm_start_enabled() {
            "on"
        } else {
            "off"
        },
    );

    // Sequential on purpose: the trace recorder, the atlas, and the
    // SPICE solver stats are process-global, so a parallel map over AF
    // kinds would bleed one kind's aggregates into another's rollup.
    let mut perfs = Vec::with_capacity(AfKind::ALL.len());
    pnc_parallel::stats::reset();
    for kind in AfKind::ALL {
        eprintln!("[solver_perf] {} …", kind.name());
        pnc_spice::observe::reset();
        pnc_spice::observe::enable(TRACE_SEED, pnc_spice::observe::DEFAULT_RING_CAPACITY);
        atlas::enable();
        let tel = Telemetry::disabled().with_profiler(Profiler::enabled());
        let started = Stopwatch::start();
        let (bundle, stats, iters) = isolate_solver_stats(|| {
            let _scope = tel.profiler().scope("fit_bundle");
            fit_bundle_traced(kind, &fidelity, &tel)
        });
        let wall_ms = started.elapsed_ms();
        pnc_spice::observe::disable();
        atlas::disable();
        let atlas = SolverAtlas::new(atlas::take());
        pnc_spice::observe::reset();
        bundle?;
        let rollup = atlas.rollup();
        perfs.push(DatasetPerf::from_report(
            kind.name(),
            wall_ms,
            &tel.profiler().report(),
            SolverRollup::from_stats(stats, &iters).with_observatory(
                rollup.max_cond1_estimate,
                rollup.fingerprint_cardinality,
                rollup.distance_iters_correlation,
            ),
        ));
    }

    let executor = pnc_parallel::stats::take().into();
    let snap = PerfSnapshot {
        scale: scale.name().to_string(),
        run_id: None,
        threads: Some(threads),
        rel_tol: None,
        noise_floor_ms: None,
        executor: Some(executor),
        datasets: perfs,
    };
    snap.write(out)?;
    println!("Wrote {out}");
    for d in &snap.datasets {
        println!(
            "  {:<14} {:>9.1} ms   {:>6} solves   {:>7} iters   {:>6} warm   {:>4} fact + {:>6} refact",
            d.dataset,
            d.wall_ms,
            d.solver.solves,
            d.solver.newton_iterations,
            d.solver.warm_started_solves,
            d.solver.factorizations,
            d.solver.refactorizations,
        );
    }

    compare_against_baseline(&snap, baseline, gate)
}

/// Prints the per-kind Newton-iteration reduction against a baseline
/// snapshot and enforces the aggregate gate. Missing or differently
/// scaled baselines skip the comparison (with a note) rather than fail:
/// the reduction is only meaningful against the same workload.
fn compare_against_baseline(
    snap: &PerfSnapshot,
    baseline: &str,
    gate: bool,
) -> Result<(), Box<dyn std::error::Error>> {
    let Ok(text) = std::fs::read_to_string(baseline) else {
        println!("No baseline at {baseline}; skipping the reduction gate.");
        return Ok(());
    };
    let Some(base) = PerfSnapshot::from_json(&text) else {
        return Err(format!("{baseline}: not a perf snapshot").into());
    };
    if base.scale != snap.scale {
        println!(
            "Baseline {baseline} was recorded at scale {}, this run at {}; skipping the \
             reduction gate.",
            base.scale, snap.scale
        );
        return Ok(());
    }
    let mut now_total = 0u64;
    let mut base_total = 0u64;
    println!("Newton-iteration reduction vs {baseline}:");
    for d in &snap.datasets {
        let Some(b) = base.datasets.iter().find(|b| b.dataset == d.dataset) else {
            continue;
        };
        now_total += d.solver.newton_iterations;
        base_total += b.solver.newton_iterations;
        let red = reduction(b.solver.newton_iterations, d.solver.newton_iterations);
        println!(
            "  {:<14} {:>7} → {:>7} iters   ({:+.1}%)",
            d.dataset,
            b.solver.newton_iterations,
            d.solver.newton_iterations,
            -100.0 * red
        );
    }
    if base_total == 0 {
        println!("Baseline has no matching datasets; skipping the reduction gate.");
        return Ok(());
    }
    let total = reduction(base_total, now_total);
    println!(
        "  {:<14} {:>7} → {:>7} iters   ({:+.1}%)   gate ≥{:.0}%",
        "total",
        base_total,
        now_total,
        -100.0 * total,
        100.0 * GATE
    );
    if gate && total < GATE {
        return Err(format!(
            "aggregate Newton-iteration reduction {:.1}% is below the {:.0}% gate",
            100.0 * total,
            100.0 * GATE
        )
        .into());
    }
    Ok(())
}

/// Fractional reduction from `base` to `now` (positive = fewer).
fn reduction(base: u64, now: u64) -> f64 {
    if base == 0 {
        return 0.0;
    }
    1.0 - now as f64 / base as f64
}
