//! Surrogate-fidelity audit: per-dataset surrogate-vs-SPICE power
//! error at convergence (`BENCH_6.json`).
//!
//! Training optimizes against the MLP power surrogate and the
//! characterized negation constant; the SPICE engine is the ground
//! truth. For each dataset the binary trains a constrained pNC at the
//! 60 % budget, then re-evaluates the surrogate-modelled circuit power
//! (activation + negation; the crossbar term is analytic in both
//! paths) through SPICE and reports the absolute and relative error —
//! the same comparison `pnc-cli train --fidelity-every` spot-checks
//! during a run, taken once at the converged model.
//!
//! ```text
//! cargo run --release -p pnc-bench --bin fidelity -- --scale smoke
//! cargo run --release -p pnc-bench --bin fidelity -- --scale ci --out BENCH_6.json
//! ```

use pnc_bench::harness::{cap_for, fit_bundle, parallel_over_datasets, AfBundle, CappedData};
use pnc_bench::report::{write_csv, TableWriter};
use pnc_bench::Scale;
use pnc_datasets::DatasetId;
use pnc_spice::AfKind;
use pnc_train::auglag::{train_auglag, AugLagConfig};
use pnc_train::experiment::{build_network, unconstrained_reference, PreparedData};
use pnc_train::fidelity::{fidelity_sample, FidelitySample};
use pnc_train::finetune::finetune;

/// Budget fraction the audit trains at: the middle of the paper's
/// sweep, where both the crossbar and the circuits stay active.
const BUDGET_FRAC: f64 = 0.6;

struct Row {
    dataset: DatasetId,
    budget_mw: f64,
    sample: FidelitySample,
}

fn audit_dataset(
    id: DatasetId,
    bundle: &AfBundle,
    fidelity: &pnc_train::experiment::ExperimentFidelity,
    cap: usize,
    seed: u64,
) -> Result<Row, String> {
    let prep = PreparedData::new(id, seed);
    let data = CappedData::new(&prep, cap);
    let (_, p_max) = unconstrained_reference(
        id,
        &bundle.activation,
        &bundle.negation,
        &data.refs(),
        &fidelity.train,
        seed,
    )
    .map_err(|e| format!("{}: reference: {e}", id.name()))?;
    let budget = BUDGET_FRAC * p_max;
    let mut net = build_network(id, &bundle.activation, &bundle.negation, seed);
    train_auglag(
        &mut net,
        &data.refs(),
        &AugLagConfig {
            budget_watts: budget,
            mu: fidelity.mu,
            outer_iters: fidelity.auglag_outer,
            inner: fidelity.train.with_seed(seed),
            warm_start: true,
            rescue: true,
        },
    )
    .map_err(|e| format!("{}: train: {e}", id.name()))?;
    finetune(&mut net, &data.refs(), budget, &fidelity.train)
        .map_err(|e| format!("{}: finetune: {e}", id.name()))?;
    let sample = fidelity_sample(&net, fidelity.surrogate.transfer_grid)
        .map_err(|e| format!("{}: fidelity: {e}", id.name()))?;
    Ok(Row {
        dataset: id,
        budget_mw: budget * 1e3,
        sample,
    })
}

fn render_json(scale: Scale, grid_points: usize, rows: &[Row]) -> String {
    let mut out = String::from("{\n  \"bench\": \"fidelity\",\n  \"version\": 1,\n");
    out.push_str(&format!(
        "  \"scale\": \"{}\",\n  \"af\": \"{}\",\n  \"grid_points\": {grid_points},\n  \"budget_frac\": {BUDGET_FRAC},\n  \"rows\": [\n",
        scale.name(),
        AfKind::PTanh.name(),
    ));
    let body: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "    {{\"dataset\": \"{}\", \"budget_mw\": {:e}, \"surrogate_watts\": {:e}, \
                 \"spice_watts\": {:e}, \"abs_err_watts\": {:e}, \"rel_err\": {:e}}}",
                r.dataset.name(),
                r.budget_mw,
                r.sample.surrogate_watts,
                r.sample.spice_watts,
                r.sample.abs_err_watts(),
                r.sample.rel_err(),
            )
        })
        .collect();
    out.push_str(&body.join(",\n"));
    out.push_str("\n  ]\n}\n");
    out
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    pnc_bench::harness::configure_threads_from_args();
    let scale = Scale::from_args();
    let fidelity = scale.fidelity();
    let cap = cap_for(scale);
    let seed = scale.seeds()[0];
    let datasets = scale.datasets();
    let args: Vec<String> = std::env::args().collect();
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_6.json".to_string());
    println!(
        "Surrogate fidelity audit — scale {}, {} dataset(s), grid {} points",
        scale.name(),
        datasets.len(),
        fidelity.surrogate.transfer_grid
    );

    let bundle = fit_bundle(AfKind::PTanh, &fidelity)?;
    let results = parallel_over_datasets(&datasets, |id| {
        audit_dataset(id, &bundle, &fidelity, cap, seed)
    });
    let rows: Vec<Row> = results.into_iter().collect::<Result<_, _>>()?;

    let mut table = TableWriter::new(&[
        "dataset",
        "budget mW",
        "surrogate µW",
        "spice µW",
        "rel err",
    ]);
    let mut csv_rows: Vec<Vec<String>> = Vec::new();
    for r in &rows {
        let cells = vec![
            r.dataset.name().to_string(),
            format!("{:.6}", r.budget_mw),
            format!("{:.4}", r.sample.surrogate_watts * 1e6),
            format!("{:.4}", r.sample.spice_watts * 1e6),
            format!("{:.3e}", r.sample.rel_err()),
        ];
        table.row(cells.clone());
        csv_rows.push(cells);
    }
    table.print();
    write_csv(
        "fidelity.csv",
        &[
            "dataset",
            "budget_mw",
            "surrogate_uw",
            "spice_uw",
            "rel_err",
        ],
        &csv_rows,
    );

    let json = render_json(scale, fidelity.surrogate.transfer_grid, &rows);
    std::fs::write(&out_path, &json)?;
    println!("wrote {out_path}");
    Ok(())
}
