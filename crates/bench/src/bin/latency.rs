//! Settling-time / energy-per-inference study (extension beyond the
//! paper's static power analysis).
//!
//! A printed classifier's energy per inference is `P · t_settle`, where
//! the settling time is set by printed parasitics and the circuit's
//! impedance level. Strict power constraints push resistances *up*
//! (lower conductance = lower power), which slows the RC settling —
//! a power/latency trade-off that static analysis hides.
//!
//! For each budget the binary trains a pNC, lowers it to its netlist,
//! attaches lumped node parasitics, applies an input step and measures
//! the classification-output settling time and the resulting energy per
//! inference.
//!
//! ```text
//! cargo run --release -p pnc-bench --bin latency -- --scale ci
//! ```

use pnc_bench::harness::{cap_for, fit_bundle, CappedData};
use pnc_bench::report::{write_csv, TableWriter};
use pnc_bench::Scale;
use pnc_core::export::export_network;
use pnc_datasets::DatasetId;
use pnc_spice::transient::{add_node_parasitics, step_response};
use pnc_spice::AfKind;
use pnc_train::auglag::{hard_power, train_auglag, AugLagConfig};
use pnc_train::experiment::{unconstrained_reference, PreparedData};
use pnc_train::finetune::finetune;

/// Lumped parasitic capacitance per circuit node (printed interconnect
/// + EGT gate capacitance are in the nF range).
const NODE_PARASITIC_F: f64 = 1.0e-9;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    pnc_bench::harness::configure_threads_from_args();
    let scale = Scale::from_args();
    let fidelity = scale.fidelity();
    let cap = cap_for(scale);
    let datasets: Vec<DatasetId> = match scale {
        Scale::Smoke => vec![DatasetId::Iris],
        _ => vec![DatasetId::Iris, DatasetId::Seeds],
    };
    println!(
        "Latency / energy-per-inference — scale {}, {} dataset(s), {} F node parasitics",
        scale.name(),
        datasets.len(),
        NODE_PARASITIC_F
    );

    let bundle = fit_bundle(AfKind::PTanh, &fidelity)?;
    let mut table = TableWriter::new(&[
        "dataset",
        "budget",
        "power mW",
        "settling µs",
        "energy/inference nJ",
    ]);
    let mut rows: Vec<Vec<String>> = Vec::new();

    for &id in &datasets {
        eprintln!("[latency] {} …", id.name());
        let prep = PreparedData::new(id, 1);
        let data = CappedData::new(&prep, cap);
        let refs = data.refs();
        let (_, p_max) = unconstrained_reference(
            id,
            &bundle.activation,
            &bundle.negation,
            &refs,
            &fidelity.train,
            1,
        )?;

        for &frac in &[0.2f64, 0.8] {
            let mut net =
                pnc_train::experiment::build_network(id, &bundle.activation, &bundle.negation, 1);
            let budget = frac * p_max;
            train_auglag(
                &mut net,
                &refs,
                &AugLagConfig {
                    budget_watts: budget,
                    mu: fidelity.mu,
                    outer_iters: fidelity.auglag_outer,
                    inner: fidelity.train.with_seed(1),
                    warm_start: true,
                    rescue: true,
                },
            )?;
            finetune(&mut net, &refs, budget, &fidelity.train)?;
            let power = hard_power(&net, refs.x_train)?;

            let exported = export_network(&net)?;
            let mut circuit = exported.circuit().clone();
            add_node_parasitics(&mut circuit, NODE_PARASITIC_F);

            // Step the first input from rest to a representative level
            // and watch the slowest classification output settle.
            // The first three sources are the rails + input 0...
            // source indices: [vdd, vss, in0, in1, …]; input 0 is 2.
            let input0_src = 2usize;
            let tstop = 2e-3;
            let dt = tstop / 400.0;
            match step_response(&circuit, input0_src, 0.0, 0.6, tstop, dt) {
                Ok(result) => {
                    let mut worst: f64 = 0.0;
                    let mut settled_all = true;
                    for &out in exported.output_nodes() {
                        match result.settling_time(out, 0.005) {
                            Some(t) => worst = worst.max(t),
                            None => settled_all = false,
                        }
                    }
                    if !settled_all {
                        println!(
                            "  {} at {:.0}%: outputs did not settle within {tstop:.0e} s",
                            id.name(),
                            frac * 100.0
                        );
                        continue;
                    }
                    let energy_nj = power * worst * 1e9;
                    table.row(vec![
                        id.name().into(),
                        format!("{:.0}%", frac * 100.0),
                        format!("{:.3}", power * 1e3),
                        format!("{:.1}", worst * 1e6),
                        format!("{energy_nj:.2}"),
                    ]);
                    rows.push(vec![
                        id.name().into(),
                        format!("{frac:.2}"),
                        format!("{:.6e}", power),
                        format!("{:.6e}", worst),
                        format!("{:.6e}", power * worst),
                    ]);
                }
                Err(e) => {
                    println!(
                        "  {} at {:.0}%: transient failed: {e}",
                        id.name(),
                        frac * 100.0
                    );
                }
            }
        }
    }

    println!();
    table.print();
    println!(
        "\nReading: tighter budgets raise impedances (R = 1/(|θ|·G_MAX) grows as conductances\n\
         shrink), so strictly power-constrained circuits settle more slowly — energy per\n\
         inference falls less than power does."
    );
    let path = write_csv(
        "latency_energy",
        &[
            "dataset",
            "budget_frac",
            "power_w",
            "settling_s",
            "energy_j",
        ],
        &rows,
    );
    println!("Wrote {}", path.display());
    Ok(())
}
