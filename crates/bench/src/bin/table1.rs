//! Regenerates **Table I**: averaged performance metrics across the
//! benchmark datasets — power (mW), accuracy (%) and device count per
//! activation function at the 20/40/60/80 % power budgets, next to the
//! penalty-based baseline at α ∈ {1, 0.75, 0.5, 0.25} — plus the
//! paper's headline accuracy-to-power ratios and run-count accounting.
//!
//! ```text
//! cargo run --release -p pnc-bench --bin table1 -- --scale ci
//! ```

use pnc_bench::aggregate::average_cell;
use pnc_bench::harness::{
    cap_for, fit_bundle, run_csv_row, run_dataset, run_dataset_penalty, BASELINE_ALPHAS,
    BUDGET_FRACS, RUN_CSV_HEADER,
};
use pnc_bench::report::{f2, write_csv, TableWriter};
use pnc_bench::Scale;
use pnc_spice::AfKind;
use pnc_train::experiment::RunResult;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    pnc_bench::harness::configure_threads_from_args();
    let scale = Scale::from_args();
    let fidelity = scale.fidelity();
    let datasets = scale.datasets();
    let seeds = scale.seeds();
    let cap = cap_for(scale);
    println!(
        "Table I reproduction — scale {}, {} datasets, {} seed(s)",
        scale.name(),
        datasets.len(),
        seeds.len()
    );

    // Constrained runs for every AF kind.
    let mut all_runs: Vec<RunResult> = Vec::new();
    let mut cells = Vec::new(); // (kind, budget, CellSummary)
    for kind in AfKind::ALL {
        eprintln!("[table1] fitting surrogates for {}", kind.name());
        let bundle = fit_bundle(kind, &fidelity)?;
        eprintln!("[table1] running {} …", kind.name());
        let per_dataset = pnc_bench::harness::parallel_over_datasets(&datasets, |id| {
            run_dataset(id, &bundle, &BUDGET_FRACS, &seeds, &fidelity, cap)
        });
        let runs: Vec<RunResult> = per_dataset
            .into_iter()
            .collect::<Result<Vec<_>, _>>()?
            .into_iter()
            .flatten()
            .collect();
        for &frac in &BUDGET_FRACS {
            let subset: Vec<RunResult> = runs
                .iter()
                .filter(|r| (r.budget_frac - frac).abs() < 1e-9)
                .cloned()
                .collect();
            cells.push((kind, frac, average_cell(&subset, 3)));
        }
        all_runs.extend(runs);
    }

    // Penalty baseline with p-tanh (the paper's baseline AF).
    eprintln!("[table1] penalty baseline (p-tanh) …");
    let baseline_bundle = fit_bundle(AfKind::PTanh, &fidelity)?;
    let baseline_per_dataset = pnc_bench::harness::parallel_over_datasets(&datasets, |id| {
        run_dataset_penalty(
            id,
            &baseline_bundle,
            &BASELINE_ALPHAS,
            &seeds,
            &fidelity,
            cap,
            true,
        )
    });
    let baseline_runs: Vec<RunResult> = baseline_per_dataset
        .into_iter()
        .collect::<Result<Vec<_>, _>>()?
        .into_iter()
        .flatten()
        .collect();
    let mut baseline_cells = Vec::new();
    for &alpha in &BASELINE_ALPHAS {
        let subset: Vec<RunResult> = baseline_runs
            .iter()
            .filter(|r| (r.budget_frac - alpha).abs() < 1e-9)
            .cloned()
            .collect();
        baseline_cells.push((alpha, average_cell(&subset, 3)));
    }

    // ------------------------------------------------------------------
    // Render Table I.
    // ------------------------------------------------------------------
    let mut table = TableWriter::new(&[
        "budget",
        "metric",
        "p-ReLU",
        "p-Clipped_ReLU",
        "p-sigmoid",
        "p-tanh",
        "baseline",
        "alpha",
    ]);
    for (row, &frac) in BUDGET_FRACS.iter().enumerate() {
        let alpha = BASELINE_ALPHAS[row];
        let b = &baseline_cells[row].1;
        let get = |kind: AfKind| {
            cells
                .iter()
                .find(|(k, f, _)| *k == kind && (*f - frac).abs() < 1e-9)
                .map(|(_, _, c)| *c)
                // lint: allow(L001, reason = "the loop above pushes a cell for every (kind, budget) pair")
                .expect("cell computed")
        };
        let cs = [
            get(AfKind::PRelu),
            get(AfKind::PClippedRelu),
            get(AfKind::PSigmoid),
            get(AfKind::PTanh),
        ];
        table.row(vec![
            format!("{:.0}%", frac * 100.0),
            "Pow(mW)".into(),
            f2(cs[0].power_mw),
            f2(cs[1].power_mw),
            f2(cs[2].power_mw),
            f2(cs[3].power_mw),
            f2(b.power_mw),
            format!("{alpha}"),
        ]);
        table.row(vec![
            String::new(),
            "Acc(%)".into(),
            f2(cs[0].accuracy_pct),
            f2(cs[1].accuracy_pct),
            f2(cs[2].accuracy_pct),
            f2(cs[3].accuracy_pct),
            f2(b.accuracy_pct),
            String::new(),
        ]);
        table.row(vec![
            String::new(),
            "#Dev".into(),
            format!("{:.0}", cs[0].devices),
            format!("{:.0}", cs[1].devices),
            format!("{:.0}", cs[2].devices),
            format!("{:.0}", cs[3].devices),
            "-".into(),
            String::new(),
        ]);
    }
    println!();
    table.print();

    // ------------------------------------------------------------------
    // Headline claims.
    // ------------------------------------------------------------------
    let best_cell = |frac: f64| -> pnc_bench::CellSummary {
        AfKind::ALL
            .iter()
            .map(|&k| {
                cells
                    .iter()
                    .find(|(kk, f, _)| *kk == k && (*f - frac).abs() < 1e-9)
                    .map(|(_, _, c)| *c)
                    // lint: allow(L001, reason = "the loop above pushes a cell for every (kind, budget) pair")
                    .expect("cell")
            })
            .max_by(|a, b| a.accuracy_per_mw().total_cmp(&b.accuracy_per_mw()))
            // lint: allow(L001, reason = "AfKind::ALL is a non-empty constant")
            .expect("four kinds")
    };
    let low = best_cell(0.2);
    let high = best_cell(0.8);
    let base_low = &baseline_cells[0].1; // α = 1 (lowest baseline power)
    let base_high = &baseline_cells[3].1; // α = 0.25
    println!("\nAccuracy-to-power ratios (% per mW), ours (best AF) vs baseline:");
    println!(
        "  20% budget: {:.1} vs {:.1}  →  {:.0}× (paper: ≈52×)",
        low.accuracy_per_mw(),
        base_low.accuracy_per_mw(),
        low.accuracy_per_mw() / base_low.accuracy_per_mw()
    );
    println!(
        "  80% budget: {:.1} vs {:.1}  →  {:.0}× (paper: ≈59×)",
        high.accuracy_per_mw(),
        base_high.accuracy_per_mw(),
        high.accuracy_per_mw() / base_high.accuracy_per_mw()
    );

    // Device-count claim: p-ReLU vs p-tanh at the 80 % budget.
    let dev_relu = cells
        .iter()
        .find(|(k, f, _)| *k == AfKind::PRelu && (*f - 0.8).abs() < 1e-9)
        .ok_or("missing p-ReLU cell at the 80% budget")?
        .2
        .devices;
    let dev_tanh = cells
        .iter()
        .find(|(k, f, _)| *k == AfKind::PTanh && (*f - 0.8).abs() < 1e-9)
        .ok_or("missing p-tanh cell at the 80% budget")?
        .2
        .devices;
    println!(
        "\nDevice count at 80% budget: p-ReLU {:.0} vs p-tanh {:.0} → {:.0}% fewer (paper: ≈36%)",
        dev_relu,
        dev_tanh,
        100.0 * (1.0 - dev_relu / dev_tanh)
    );

    // Run-count accounting.
    let ours_runs: usize = all_runs.iter().map(|r| r.training_runs).sum();
    let (full_alphas, full_seeds) = Scale::Full.penalty_sweep();
    println!(
        "\nTraining-run accounting: ours {} runs total ({} per dataset/AF/budget); a full \
         penalty Pareto front costs {} runs per dataset (paper: up to 150).",
        ours_runs,
        1,
        full_alphas.len() * full_seeds
    );

    // Feasibility check (Fig. 4's "all points below the dashed lines").
    let infeasible = all_runs.iter().filter(|r| !r.feasible).count();
    println!(
        "Feasibility: {}/{} constrained runs within budget.",
        all_runs.len() - infeasible,
        all_runs.len()
    );

    // ------------------------------------------------------------------
    // CSV artifacts.
    // ------------------------------------------------------------------
    let rows: Vec<Vec<String>> = all_runs.iter().map(run_csv_row).collect();
    let path = write_csv("table1_runs", &RUN_CSV_HEADER, &rows);
    let cell_rows: Vec<Vec<String>> = cells
        .iter()
        .map(|(k, f, c)| {
            vec![
                k.name().to_string(),
                format!("{f:.2}"),
                format!("{:.4}", c.power_mw),
                format!("{:.2}", c.accuracy_pct),
                format!("{:.1}", c.devices),
                format!("{:.2}", c.feasible_rate),
            ]
        })
        .chain(baseline_cells.iter().map(|(a, c)| {
            vec![
                "baseline".to_string(),
                format!("{a:.2}"),
                format!("{:.4}", c.power_mw),
                format!("{:.2}", c.accuracy_pct),
                "-".to_string(),
                "-".to_string(),
            ]
        }))
        .collect();
    let cell_path = write_csv(
        "table1_cells",
        &[
            "af",
            "budget_or_alpha",
            "power_mw",
            "accuracy_pct",
            "devices",
            "feasible_rate",
        ],
        &cell_rows,
    );
    println!("\nWrote {} and {}", path.display(), cell_path.display());
    Ok(())
}
