//! Solver-observatory benchmark: characterization cost and hardness
//! per activation-function kind (`BENCH_7.json`).
//!
//! Runs surrogate characterization for each printed AF cell with the
//! solve-trace recorder and the hardness atlas enabled, then writes a
//! perf-snapshot-format file (one "dataset" per AF kind) whose solver
//! rollups carry the observatory fields: the Hager/Higham condition
//! estimate, the sparsity-fingerprint cardinality, and the
//! distance↔iterations correlation. The existing `trend` binary
//! consumes the output unchanged.
//!
//! These numbers quantify ROADMAP item 3's premises: how many
//! solves/iterations a characterization costs, whether all Sobol
//! points really share one sparsity pattern (fingerprint cardinality),
//! and whether nearest-neighbor warm-starting would pay off
//! (distance↔iters correlation).
//!
//! ```text
//! cargo run --release -p pnc-bench --bin solver_obs -- --scale smoke --out BENCH_7.json
//! ```

use pnc_bench::harness::{configure_threads_from_args, fit_bundle_traced, isolate_solver_stats};
use pnc_bench::snapshot::{DatasetPerf, PerfSnapshot, SolverRollup};
use pnc_bench::Scale;
use pnc_spice::AfKind;
use pnc_surrogate::{atlas, SolverAtlas};
use pnc_telemetry::{Profiler, Stopwatch, Telemetry};
use std::process::ExitCode;

/// Ring seed for the trace recorder: fixed so repeated runs sample the
/// same solves and the snapshot stays reproducible.
const TRACE_SEED: u64 = 7;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    let threads = configure_threads_from_args();
    let scale = Scale::from_args();
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_7.json".to_string());
    match run(scale, &out, threads) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run(scale: Scale, out: &str, threads: usize) -> Result<(), Box<dyn std::error::Error>> {
    let fidelity = scale.fidelity();
    println!(
        "Solver observatory — scale {}, {} AF kind(s), {} thread(s)",
        scale.name(),
        AfKind::ALL.len(),
        threads
    );

    // Sequential on purpose: the trace recorder, the atlas, and the
    // SPICE solver stats are process-global, so a parallel map over AF
    // kinds would bleed one kind's aggregates into another's rollup.
    let mut perfs = Vec::with_capacity(AfKind::ALL.len());
    pnc_parallel::stats::reset();
    for kind in AfKind::ALL {
        eprintln!("[solver_obs] {} …", kind.name());
        pnc_spice::observe::reset();
        pnc_spice::observe::enable(TRACE_SEED, pnc_spice::observe::DEFAULT_RING_CAPACITY);
        atlas::enable();
        let tel = Telemetry::disabled().with_profiler(Profiler::enabled());
        let started = Stopwatch::start();
        let (bundle, stats, iters) = isolate_solver_stats(|| {
            let _scope = tel.profiler().scope("fit_bundle");
            fit_bundle_traced(kind, &fidelity, &tel)
        });
        let wall_ms = started.elapsed_ms();
        pnc_spice::observe::disable();
        atlas::disable();
        let atlas = SolverAtlas::new(atlas::take());
        pnc_spice::observe::reset();
        bundle?;
        let rollup = atlas.rollup();
        perfs.push(DatasetPerf::from_report(
            kind.name(),
            wall_ms,
            &tel.profiler().report(),
            SolverRollup::from_stats(stats, &iters).with_observatory(
                rollup.max_cond1_estimate,
                rollup.fingerprint_cardinality,
                rollup.distance_iters_correlation,
            ),
        ));
    }

    let executor = pnc_parallel::stats::take().into();
    let snap = PerfSnapshot {
        scale: scale.name().to_string(),
        run_id: None,
        threads: Some(threads),
        rel_tol: None,
        noise_floor_ms: None,
        executor: Some(executor),
        datasets: perfs,
    };
    snap.write(out)?;
    println!("Wrote {out}");
    for d in &snap.datasets {
        println!(
            "  {:<14} {:>9.1} ms   {:>6} solves   {:>7} iters   max cond1 {:>10.3e}   {} pattern(s)   dist↔iters {:+.3}",
            d.dataset,
            d.wall_ms,
            d.solver.solves,
            d.solver.newton_iterations,
            d.solver.max_cond1_estimate,
            d.solver.fingerprint_cardinality,
            d.solver.distance_iters_correlation,
        );
    }
    Ok(())
}
