//! Shared experiment plumbing for the binaries: surrogate bundles,
//! row-capped data, and the per-dataset pipelines.

use crate::scale::Scale;
use pnc_core::activation::{fit_negation_model, LearnableActivation};
use pnc_core::CoreError;
use pnc_datasets::DatasetId;
use pnc_linalg::Matrix;
use pnc_parallel::ExecutorHandle;
use pnc_spice::AfKind;
use pnc_surrogate::NegationModel;
use pnc_train::experiment::{
    run_constrained, run_penalty_baseline, unconstrained_reference, ExperimentFidelity,
    PreparedData, RunResult,
};
use pnc_train::trainer::DataRefs;
use std::fmt;

/// Errors the experiment harness can surface to the binaries: surrogate
/// fitting can fail (degenerate SPICE sweeps), and every training
/// pipeline propagates the core shape errors.
#[derive(Debug)]
pub enum BenchError {
    /// Fitting a transfer/power surrogate failed.
    Surrogate {
        /// Human-readable context (which surrogate was being fitted).
        context: &'static str,
        /// Underlying error.
        source: pnc_surrogate::SurrogateError,
    },
    /// A training pipeline hit a core error (shape mismatch etc.).
    Core(CoreError),
    /// A training pipeline failed with a typed training error
    /// (numerical collapse, …).
    Train(pnc_train::TrainError),
}

impl fmt::Display for BenchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BenchError::Surrogate { context, source } => {
                write!(f, "surrogate fit failed for {context}: {source}")
            }
            BenchError::Core(e) => write!(f, "{e}"),
            BenchError::Train(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for BenchError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            BenchError::Surrogate { source, .. } => Some(source),
            BenchError::Core(e) => Some(e),
            BenchError::Train(e) => Some(e),
        }
    }
}

impl From<CoreError> for BenchError {
    fn from(e: CoreError) -> Self {
        BenchError::Core(e)
    }
}

impl From<pnc_train::TrainError> for BenchError {
    fn from(e: pnc_train::TrainError) -> Self {
        BenchError::Train(e)
    }
}

/// Surrogates for one activation kind plus the shared negation cell.
#[derive(Debug, Clone)]
pub struct AfBundle {
    /// Transfer + power surrogates with the bounded parameterization.
    pub activation: LearnableActivation,
    /// Negation-circuit surrogate.
    pub negation: NegationModel,
}

/// Fits the surrogate bundle for `kind` (the expensive, shared setup of
/// every experiment — Sobol sampling + SPICE + MLP fits).
///
/// # Errors
///
/// Returns [`BenchError::Surrogate`] when either the activation or the
/// negation surrogate cannot be fitted.
pub fn fit_bundle(kind: AfKind, fidelity: &ExperimentFidelity) -> Result<AfBundle, BenchError> {
    fit_bundle_traced(kind, fidelity, &pnc_telemetry::Telemetry::disabled())
}

/// [`fit_bundle`] with instrumentation: characterization progress
/// events stream to `tel`'s sink, and with an enabled
/// [`pnc_telemetry::Profiler`] the Sobol sweeps, per-point DC solves,
/// and MLP fits record spans.
///
/// # Errors
///
/// Same failure modes as [`fit_bundle`].
pub fn fit_bundle_traced(
    kind: AfKind,
    fidelity: &ExperimentFidelity,
    tel: &pnc_telemetry::Telemetry,
) -> Result<AfBundle, BenchError> {
    let activation =
        LearnableActivation::fit_with(kind, &fidelity.surrogate, tel).map_err(|source| {
            BenchError::Surrogate {
                context: kind.name(),
                source,
            }
        })?;
    let negation = fit_negation_model(fidelity.surrogate.transfer_grid).map_err(|source| {
        BenchError::Surrogate {
            context: "negation cell",
            source,
        }
    })?;
    Ok(AfBundle {
        activation,
        negation,
    })
}

/// Owned, row-capped training data (validation and test are never
/// capped — only the full-batch training cost is bounded).
#[derive(Debug, Clone)]
pub struct CappedData {
    /// Capped training features.
    pub x_train: Matrix,
    /// Capped training labels.
    pub y_train: Vec<usize>,
    /// Validation features.
    pub x_val: Matrix,
    /// Validation labels.
    pub y_val: Vec<usize>,
    /// Test features.
    pub x_test: Matrix,
    /// Test labels.
    pub y_test: Vec<usize>,
}

impl CappedData {
    /// Materializes a prepared split with a training-row cap.
    pub fn new(prep: &PreparedData, cap: usize) -> Self {
        let n = prep.split.train.len().min(cap);
        let idx: Vec<usize> = (0..n).collect();
        CappedData {
            x_train: prep.split.train.x.select_rows(&idx),
            y_train: prep.split.train.labels[..n].to_vec(),
            x_val: prep.split.val.x.clone(),
            y_val: prep.split.val.labels.clone(),
            x_test: prep.split.test.x.clone(),
            y_test: prep.split.test.labels.clone(),
        }
    }

    /// Borrows the train/val references for the trainer.
    pub fn refs(&self) -> DataRefs<'_> {
        DataRefs {
            x_train: &self.x_train,
            y_train: &self.y_train,
            x_val: &self.x_val,
            y_val: &self.y_val,
        }
    }
}

/// Runs the full constrained pipeline for one dataset at several budget
/// fractions, reusing one unconstrained reference per seed.
pub fn run_dataset(
    id: DatasetId,
    bundle: &AfBundle,
    budget_fracs: &[f64],
    seeds: &[u64],
    fidelity: &ExperimentFidelity,
    cap: usize,
) -> Result<Vec<RunResult>, BenchError> {
    let stages = prepare_seed_stages(id, bundle, seeds, fidelity, cap)?;
    let work = seed_sweep_pairs(&stages, budget_fracs);
    ExecutorHandle::get().par_try_map(&work, |_, &((seed, data, p_max), frac)| {
        run_constrained(
            id,
            &bundle.activation,
            &bundle.negation,
            &data.refs(),
            &data.x_test,
            &data.y_test,
            p_max,
            frac,
            fidelity,
            seed,
        )
        .map_err(BenchError::from)
    })
}

/// Per-seed shared stage of every dataset sweep: the prepared split,
/// the row cap, and the unconstrained reference power. Seeds are
/// independent, so this fans out over the executor; results come back
/// in seed order.
fn prepare_seed_stages(
    id: DatasetId,
    bundle: &AfBundle,
    seeds: &[u64],
    fidelity: &ExperimentFidelity,
    cap: usize,
) -> Result<Vec<(u64, CappedData, f64)>, BenchError> {
    ExecutorHandle::get().par_try_map(seeds, |_, &seed| {
        let prep = PreparedData::new(id, seed);
        let data = CappedData::new(&prep, cap);
        let (_, p_max) = unconstrained_reference(
            id,
            &bundle.activation,
            &bundle.negation,
            &data.refs(),
            &fidelity.train,
            seed,
        )?;
        Ok::<_, BenchError>((seed, data, p_max))
    })
}

/// The `(seed stage, sweep value)` cross product in sequential order:
/// for each seed, every sweep value — exactly the nesting the old
/// sequential loops used, so parallel results collect in the same
/// order.
fn seed_sweep_pairs<'a>(
    stages: &'a [(u64, CappedData, f64)],
    values: &[f64],
) -> Vec<((u64, &'a CappedData, f64), f64)> {
    let mut out = Vec::with_capacity(stages.len() * values.len());
    for (seed, data, p_max) in stages {
        for &v in values {
            out.push(((*seed, data, *p_max), v));
        }
    }
    out
}

/// μ candidates used when an experiment tunes the augmented Lagrangian
/// step parameter per dataset (the paper's RayTune protocol).
pub const MU_GRID: [f64; 3] = [0.5, 2.0, 8.0];

/// Like [`run_dataset`] but selects μ per budget from [`MU_GRID`] by
/// validation accuracy.
pub fn run_dataset_tuned(
    id: DatasetId,
    bundle: &AfBundle,
    budget_fracs: &[f64],
    seeds: &[u64],
    fidelity: &ExperimentFidelity,
    cap: usize,
) -> Result<Vec<RunResult>, BenchError> {
    let stages = prepare_seed_stages(id, bundle, seeds, fidelity, cap)?;
    let work = seed_sweep_pairs(&stages, budget_fracs);
    ExecutorHandle::get().par_try_map(&work, |_, &((seed, data, p_max), frac)| {
        pnc_train::experiment::run_constrained_tuned(
            id,
            &bundle.activation,
            &bundle.negation,
            &data.refs(),
            &data.x_test,
            &data.y_test,
            p_max,
            frac,
            fidelity,
            seed,
            &MU_GRID,
        )
        .map_err(BenchError::from)
    })
}

/// Runs the penalty baseline sweep for one dataset. `faithful` selects
/// the paper-faithful baseline behaviour (absolute-milliwatt penalty,
/// frozen activation designs) versus the controlled variant.
pub fn run_dataset_penalty(
    id: DatasetId,
    bundle: &AfBundle,
    alphas: &[f64],
    seeds: &[u64],
    fidelity: &ExperimentFidelity,
    cap: usize,
    faithful: bool,
) -> Result<Vec<RunResult>, BenchError> {
    let stages = prepare_seed_stages(id, bundle, seeds, fidelity, cap)?;
    let work = seed_sweep_pairs(&stages, alphas);
    ExecutorHandle::get().par_try_map(&work, |_, &((seed, data, p_max), alpha)| {
        run_penalty_baseline(
            id,
            &bundle.activation,
            &bundle.negation,
            &data.refs(),
            &data.x_test,
            &data.y_test,
            p_max,
            alpha,
            &fidelity.train,
            seed,
            faithful,
        )
        .map_err(BenchError::from)
    })
}

/// Parses `--threads N` from the raw process args and configures the
/// process-wide executor — the bench binaries' counterpart of the CLI
/// flag (same `Scale::from_args` idiom). Call once at the top of
/// `main`, before any parallel work; returns the effective thread
/// count for banners and snapshots.
pub fn configure_threads_from_args() -> usize {
    let args: Vec<String> = std::env::args().collect();
    if let Some(n) = args
        .iter()
        .position(|a| a == "--threads")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse::<usize>().ok())
    {
        ExecutorHandle::configure(n);
    }
    ExecutorHandle::threads()
}

/// Maps `f` over the datasets on the process-wide executor (respects
/// `--threads` / `PNC_THREADS`) and returns results in dataset order.
pub fn parallel_over_datasets<T: Send>(
    datasets: &[DatasetId],
    f: impl Fn(DatasetId) -> T + Sync,
) -> Vec<T> {
    ExecutorHandle::get().par_map(datasets, |_, &d| f(d))
}

/// Budget fractions evaluated throughout the paper.
pub const BUDGET_FRACS: [f64; 4] = [0.2, 0.4, 0.6, 0.8];

/// Baseline α column of Table I (paired with 20/40/60/80 % rows).
pub const BASELINE_ALPHAS: [f64; 4] = [1.0, 0.75, 0.5, 0.25];

/// Formats a run result as a CSV row.
pub fn run_csv_row(r: &RunResult) -> Vec<String> {
    vec![
        r.dataset.name().to_string(),
        r.af.name().to_string(),
        format!("{:.2}", r.budget_frac),
        format!("{:.6}", r.budget_mw),
        format!("{:.6}", r.power_mw),
        format!("{:.4}", r.test_accuracy),
        r.devices.to_string(),
        r.feasible.to_string(),
        r.seed.to_string(),
    ]
}

/// Header matching [`run_csv_row`].
pub const RUN_CSV_HEADER: [&str; 9] = [
    "dataset",
    "af",
    "budget_frac",
    "budget_mw",
    "power_mw",
    "accuracy",
    "devices",
    "feasible",
    "seed",
];

/// Convenience wrapper: scale-appropriate cap.
pub fn cap_for(scale: Scale) -> usize {
    scale.max_train_rows()
}

/// Runs `f` with the process-wide SPICE solver statistics isolated to
/// it: the counters (and the per-solve Newton iteration histogram) are
/// zeroed before the closure runs and read out after, so successive
/// dataset runs do not bleed into each other's rollups. Returns the
/// closure's value, the counters it accumulated, and the iteration
/// distribution.
///
/// The stats are process-global, so two windows must never overlap in
/// time: do not call it from [`parallel_over_datasets`] (or any other
/// executor) workers. Parallelism *inside* one window is fine — the
/// counters are atomic and aggregate correctly under concurrent solves
/// — which is how `perf_snapshot` keeps per-dataset windows sequential
/// while each window's sweeps fan out.
pub fn isolate_solver_stats<T>(
    f: impl FnOnce() -> T,
) -> (
    T,
    pnc_spice::stats::SolverStatsSnapshot,
    pnc_telemetry::HistogramSummary,
) {
    let _ = pnc_spice::stats::take();
    let value = f();
    let iters = pnc_spice::stats::newton_iteration_summary();
    let stats = pnc_spice::stats::take();
    (value, stats, iters)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_map_preserves_order() {
        let ds = [DatasetId::Iris, DatasetId::Seeds, DatasetId::BalanceScale];
        let names = parallel_over_datasets(&ds, |d| d.name().to_string());
        assert_eq!(names, vec!["Iris", "Seeds", "Balance Scale"]);
    }

    #[test]
    fn capped_data_respects_cap() {
        let prep = PreparedData::new(DatasetId::BreastCancer, 1);
        let capped = CappedData::new(&prep, 100);
        assert_eq!(capped.x_train.rows(), 100);
        assert_eq!(capped.y_train.len(), 100);
        // Val/test untouched.
        assert_eq!(capped.x_val.rows(), prep.split.val.len());
        assert_eq!(capped.x_test.rows(), prep.split.test.len());
    }

    // NOTE: the solver stats are process-global and Rust runs tests in
    // parallel, so this test only makes assertions that stay true when
    // other tests solve concurrently (no other test in this binary
    // touches the solver today, but the guard costs nothing).
    #[test]
    fn isolated_solver_stats_do_not_bleed_between_runs() {
        let solve_divider = |n: usize| {
            for _ in 0..n {
                let mut c = pnc_spice::Circuit::new();
                let a = c.node("a");
                let b = c.node("b");
                c.vsource(a, pnc_spice::Circuit::GROUND, 1.0);
                c.resistor(a, b, 1_000.0);
                c.resistor(b, pnc_spice::Circuit::GROUND, 2_000.0);
                pnc_spice::solve_dc(&c).unwrap();
            }
        };
        let ((), first, _) = isolate_solver_stats(|| solve_divider(5));
        let ((), second, iters) = isolate_solver_stats(|| solve_divider(2));
        assert!(first.solves >= 5);
        // The second window must not inherit the first one's five
        // solves: its count reflects only work done inside it.
        assert!(second.solves >= 2);
        assert!(
            second.solves < first.solves + 2,
            "second window inherited counts from the first: {second:?}"
        );
        assert!(iters.count >= 2);
        assert!(iters.max >= 1.0);
    }

    #[test]
    fn csv_row_matches_header() {
        use pnc_train::experiment::RunResult;
        let r = RunResult {
            dataset: DatasetId::Iris,
            af: AfKind::PTanh,
            budget_frac: 0.4,
            budget_mw: 1.0,
            power_mw: 0.5,
            test_accuracy: 0.9,
            val_accuracy: 0.9,
            devices: 33,
            feasible: true,
            seed: 1,
            training_runs: 1,
        };
        assert_eq!(run_csv_row(&r).len(), RUN_CSV_HEADER.len());
    }
}
