//! Perf snapshots: machine-readable per-dataset timing for regression
//! tracking (`BENCH_3.json`).
//!
//! A snapshot records, per dataset, the wall clock of the standard
//! constrained pipeline, a flame-style phase breakdown taken from a
//! [`pnc_telemetry::Profiler`] report, and a rollup of the process-wide
//! SPICE solver statistics (including the per-solve Newton iteration
//! distribution). [`compare`] diffs two snapshots and flags wall-clock
//! or phase-level regressions beyond a relative threshold, so CI can
//! gate on "did this change make training slower".

use pnc_telemetry::json::{parse, write_escaped, Json};
use pnc_telemetry::{HistogramSummary, ProfileReport};
use std::io;
use std::path::Path;

/// One aggregated profiling phase (mirrors [`pnc_telemetry::PhaseStat`]
/// but owns its name and carries only what the snapshot serializes).
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseBreakdown {
    /// Span name (`epoch`, `tape_backward`, `dc_solve`, …).
    pub name: String,
    /// Number of spans recorded under this name.
    pub calls: u64,
    /// Total inclusive time, milliseconds.
    pub total_ms: f64,
    /// Self time (children subtracted), milliseconds.
    pub self_ms: f64,
}

/// Rollup of the SPICE solver counters for one dataset run.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SolverRollup {
    /// DC solves attempted.
    pub solves: u64,
    /// Total Newton iterations across all solves.
    pub newton_iterations: u64,
    /// Solves that engaged the supply-ramp homotopy.
    pub ramp_fallbacks: u64,
    /// Solves that returned an error.
    pub failures: u64,
    /// Mean Newton iterations per solve.
    pub iters_mean: f64,
    /// Median Newton iterations per solve.
    pub iters_p50: f64,
    /// 95th-percentile Newton iterations per solve.
    pub iters_p95: f64,
    /// Worst observed Newton iterations per solve.
    pub iters_max: f64,
}

impl SolverRollup {
    /// Builds a rollup from the aggregate counters plus the per-solve
    /// iteration distribution.
    pub fn from_stats(
        stats: pnc_spice::stats::SolverStatsSnapshot,
        iters: &HistogramSummary,
    ) -> Self {
        SolverRollup {
            solves: stats.solves,
            newton_iterations: stats.newton_iterations,
            ramp_fallbacks: stats.ramp_fallbacks,
            failures: stats.failures,
            iters_mean: iters.mean,
            iters_p50: iters.p50,
            iters_p95: iters.p95,
            iters_max: iters.max,
        }
    }
}

/// Timing record for one dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetPerf {
    /// Dataset name.
    pub dataset: String,
    /// End-to-end wall clock for the dataset's pipeline, milliseconds.
    pub wall_ms: f64,
    /// Phase breakdown sorted by self time (descending).
    pub phases: Vec<PhaseBreakdown>,
    /// Solver counters attributed to this dataset.
    pub solver: SolverRollup,
}

impl DatasetPerf {
    /// Builds a record from a profiler report plus the solver stats
    /// isolated for this dataset.
    pub fn from_report(
        dataset: impl Into<String>,
        wall_ms: f64,
        report: &ProfileReport,
        solver: SolverRollup,
    ) -> Self {
        DatasetPerf {
            dataset: dataset.into(),
            wall_ms,
            phases: report
                .phases
                .iter()
                .map(|p| PhaseBreakdown {
                    name: p.name.clone(),
                    calls: p.calls,
                    total_ms: p.total_ms,
                    self_ms: p.self_ms,
                })
                .collect(),
            solver,
        }
    }
}

/// A full perf snapshot: one record per dataset at a given scale.
#[derive(Debug, Clone, PartialEq)]
pub struct PerfSnapshot {
    /// Experiment scale the snapshot was taken at (`smoke`/`ci`/`full`).
    pub scale: String,
    /// Run-registry id this snapshot was taken under (`--run-id`),
    /// linking the timing file back to its `runs/<id>/` directory.
    pub run_id: Option<String>,
    /// Executor thread count the snapshot was measured with. Wall
    /// clocks taken at different thread counts are not comparable, so
    /// [`comparable_thread_counts`] gates [`compare`] on this.
    pub threads: Option<usize>,
    /// Per-dataset records, in run order.
    pub datasets: Vec<DatasetPerf>,
}

/// Snapshot file format version (bumped on incompatible changes).
const FORMAT_VERSION: u64 = 1;

fn push_num(out: &mut String, v: f64) {
    if v.is_finite() {
        out.push_str(&format!("{v:.3}"));
    } else {
        out.push_str("null");
    }
}

impl PerfSnapshot {
    /// Serializes the snapshot as pretty-stable JSON (sorted keys,
    /// fixed decimal places) so diffs of the committed file stay small.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(4096);
        out.push_str("{\n  \"bench\": \"perf_snapshot\",\n  \"version\": ");
        out.push_str(&FORMAT_VERSION.to_string());
        out.push_str(",\n  \"scale\": ");
        write_escaped(&mut out, &self.scale);
        if let Some(run_id) = &self.run_id {
            out.push_str(",\n  \"run_id\": ");
            write_escaped(&mut out, run_id);
        }
        if let Some(threads) = self.threads {
            out.push_str(&format!(",\n  \"threads\": {threads}"));
        }
        out.push_str(",\n  \"datasets\": [");
        for (i, d) in self.datasets.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {\"dataset\": ");
            write_escaped(&mut out, &d.dataset);
            out.push_str(", \"wall_ms\": ");
            push_num(&mut out, d.wall_ms);
            out.push_str(", \"phases\": [");
            for (j, p) in d.phases.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str("\n      {\"name\": ");
                write_escaped(&mut out, &p.name);
                out.push_str(&format!(", \"calls\": {}", p.calls));
                out.push_str(", \"total_ms\": ");
                push_num(&mut out, p.total_ms);
                out.push_str(", \"self_ms\": ");
                push_num(&mut out, p.self_ms);
                out.push('}');
            }
            if !d.phases.is_empty() {
                out.push_str("\n    ");
            }
            out.push_str("], \"solver\": {");
            let s = &d.solver;
            out.push_str(&format!(
                "\"solves\": {}, \"newton_iterations\": {}, \"ramp_fallbacks\": {}, \"failures\": {}",
                s.solves, s.newton_iterations, s.ramp_fallbacks, s.failures
            ));
            out.push_str(", \"iters_mean\": ");
            push_num(&mut out, s.iters_mean);
            out.push_str(", \"iters_p50\": ");
            push_num(&mut out, s.iters_p50);
            out.push_str(", \"iters_p95\": ");
            push_num(&mut out, s.iters_p95);
            out.push_str(", \"iters_max\": ");
            push_num(&mut out, s.iters_max);
            out.push_str("}}");
        }
        out.push_str("\n  ]\n}\n");
        out
    }

    /// Parses a snapshot document written by [`PerfSnapshot::to_json`].
    /// Returns `None` when the text is not valid JSON or lacks the
    /// expected shape.
    pub fn from_json(text: &str) -> Option<PerfSnapshot> {
        let doc = parse(text)?;
        if doc.get("bench")?.as_str()? != "perf_snapshot" {
            return None;
        }
        let scale = doc.get("scale")?.as_str()?.to_string();
        let run_id = doc.get("run_id").and_then(Json::as_str).map(str::to_string);
        let threads = doc
            .get("threads")
            .and_then(Json::as_f64)
            .map(|v| v as usize);
        let Json::Arr(ds) = doc.get("datasets")? else {
            return None;
        };
        let mut datasets = Vec::with_capacity(ds.len());
        for d in ds {
            let mut phases = Vec::new();
            if let Some(Json::Arr(ps)) = d.get("phases") {
                for p in ps {
                    phases.push(PhaseBreakdown {
                        name: p.get("name")?.as_str()?.to_string(),
                        calls: p.get("calls")?.as_f64()? as u64,
                        total_ms: p.get("total_ms")?.as_f64()?,
                        self_ms: p.get("self_ms")?.as_f64()?,
                    });
                }
            }
            let sv = d.get("solver")?;
            let num = |key: &str| sv.get(key).and_then(Json::as_f64).unwrap_or(0.0);
            datasets.push(DatasetPerf {
                dataset: d.get("dataset")?.as_str()?.to_string(),
                wall_ms: d.get("wall_ms")?.as_f64()?,
                phases,
                solver: SolverRollup {
                    solves: num("solves") as u64,
                    newton_iterations: num("newton_iterations") as u64,
                    ramp_fallbacks: num("ramp_fallbacks") as u64,
                    failures: num("failures") as u64,
                    iters_mean: num("iters_mean"),
                    iters_p50: num("iters_p50"),
                    iters_p95: num("iters_p95"),
                    iters_max: num("iters_max"),
                },
            });
        }
        Some(PerfSnapshot {
            scale,
            run_id,
            threads,
            datasets,
        })
    }

    /// Writes the snapshot to `path`.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write(&self, path: impl AsRef<Path>) -> io::Result<()> {
        std::fs::write(path, self.to_json())
    }

    /// Reads a snapshot from `path`.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message on I/O or parse failure.
    pub fn read(path: impl AsRef<Path>) -> Result<PerfSnapshot, String> {
        let path = path.as_ref();
        let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
        PerfSnapshot::from_json(&text)
            .ok_or_else(|| format!("{}: not a perf_snapshot document", path.display()))
    }
}

/// One flagged slowdown from [`compare`].
#[derive(Debug, Clone, PartialEq)]
pub struct Regression {
    /// Dataset the regression was observed on.
    pub dataset: String,
    /// What regressed: `wall_ms` or `phase:<name>`.
    pub metric: String,
    /// Baseline value, milliseconds.
    pub old_ms: f64,
    /// Current value, milliseconds.
    pub new_ms: f64,
    /// `new / old` ratio (> 1 means slower).
    pub ratio: f64,
}

impl std::fmt::Display for Regression {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}: {} {:.1} ms -> {:.1} ms ({:+.1} %)",
            self.dataset,
            self.metric,
            self.old_ms,
            self.new_ms,
            (self.ratio - 1.0) * 100.0
        )
    }
}

/// `true` when two snapshots were measured at compatible executor
/// thread counts and may be regression-compared. Snapshots that both
/// record a thread count must agree; a snapshot without one (written
/// before the field existed) is accepted against anything.
pub fn comparable_thread_counts(old: &PerfSnapshot, new: &PerfSnapshot) -> bool {
    match (old.threads, new.threads) {
        (Some(a), Some(b)) => a == b,
        _ => true,
    }
}

/// Relative slowdown beyond which [`compare`] flags a regression.
pub const REGRESSION_THRESHOLD: f64 = 0.10;

/// Phases or wall clocks faster than this are ignored by [`compare`]:
/// sub-10 ms timings are dominated by scheduler noise.
const MIN_COMPARABLE_MS: f64 = 10.0;

/// Diffs `new` against the `old` baseline and returns every dataset
/// whose wall clock — or any phase's total time — grew by more than
/// [`REGRESSION_THRESHOLD`]. Datasets or phases present on only one
/// side are skipped (they are adds/removes, not regressions), as are
/// timings below a small noise floor.
pub fn compare(old: &PerfSnapshot, new: &PerfSnapshot) -> Vec<Regression> {
    let mut out = Vec::new();
    for nd in &new.datasets {
        let Some(od) = old.datasets.iter().find(|d| d.dataset == nd.dataset) else {
            continue;
        };
        if od.wall_ms >= MIN_COMPARABLE_MS && nd.wall_ms > od.wall_ms * (1.0 + REGRESSION_THRESHOLD)
        {
            out.push(Regression {
                dataset: nd.dataset.clone(),
                metric: "wall_ms".to_string(),
                old_ms: od.wall_ms,
                new_ms: nd.wall_ms,
                ratio: nd.wall_ms / od.wall_ms,
            });
        }
        for np in &nd.phases {
            let Some(op) = od.phases.iter().find(|p| p.name == np.name) else {
                continue;
            };
            if op.total_ms >= MIN_COMPARABLE_MS
                && np.total_ms > op.total_ms * (1.0 + REGRESSION_THRESHOLD)
            {
                out.push(Regression {
                    dataset: nd.dataset.clone(),
                    metric: format!("phase:{}", np.name),
                    old_ms: op.total_ms,
                    new_ms: np.total_ms,
                    ratio: np.total_ms / op.total_ms,
                });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> PerfSnapshot {
        PerfSnapshot {
            scale: "smoke".to_string(),
            run_id: Some("1722-train".to_string()),
            threads: Some(2),
            datasets: vec![DatasetPerf {
                dataset: "Iris".to_string(),
                wall_ms: 1500.0,
                phases: vec![
                    PhaseBreakdown {
                        name: "epoch".to_string(),
                        calls: 75,
                        total_ms: 900.5,
                        self_ms: 12.25,
                    },
                    PhaseBreakdown {
                        name: "dc_solve".to_string(),
                        calls: 976,
                        total_ms: 57.0,
                        self_ms: 57.0,
                    },
                ],
                solver: SolverRollup {
                    solves: 976,
                    newton_iterations: 8000,
                    ramp_fallbacks: 3,
                    failures: 0,
                    iters_mean: 8.2,
                    iters_p50: 7.0,
                    iters_p95: 14.0,
                    iters_max: 42.0,
                },
            }],
        }
    }

    #[test]
    fn snapshot_round_trips_through_json() {
        let snap = sample();
        let parsed = PerfSnapshot::from_json(&snap.to_json()).unwrap();
        assert_eq!(parsed.scale, "smoke");
        assert_eq!(parsed.run_id.as_deref(), Some("1722-train"));
        assert_eq!(parsed.threads, Some(2));
        assert_eq!(parsed.datasets.len(), 1);
        // A snapshot without a run id or thread count round-trips as
        // None for both.
        let anon = PerfSnapshot {
            run_id: None,
            threads: None,
            ..sample()
        };
        let anon_parsed = PerfSnapshot::from_json(&anon.to_json()).unwrap();
        assert_eq!(anon_parsed.run_id, None);
        assert_eq!(anon_parsed.threads, None);
        let d = &parsed.datasets[0];
        assert_eq!(d.dataset, "Iris");
        assert!((d.wall_ms - 1500.0).abs() < 1e-6);
        assert_eq!(d.phases.len(), 2);
        assert_eq!(d.phases[0].name, "epoch");
        assert_eq!(d.phases[0].calls, 75);
        assert!((d.phases[0].self_ms - 12.25).abs() < 1e-6);
        assert_eq!(d.solver.solves, 976);
        assert!((d.solver.iters_p95 - 14.0).abs() < 1e-6);
    }

    #[test]
    fn malformed_snapshots_are_rejected() {
        assert!(PerfSnapshot::from_json("").is_none());
        assert!(PerfSnapshot::from_json("{}").is_none());
        assert!(PerfSnapshot::from_json("{\"bench\": \"other\"}").is_none());
        assert!(PerfSnapshot::from_json("{\"bench\": \"perf_snapshot\", \"scale\": 3}").is_none());
    }

    #[test]
    fn compare_flags_slowdowns_over_threshold() {
        let old = sample();
        let mut new = sample();
        new.datasets[0].wall_ms = 1700.0; // +13 % — flagged
        new.datasets[0].phases[1].total_ms = 75.0; // +32 % — flagged
        new.datasets[0].phases[0].total_ms = 950.0; // +5.5 % — within noise
        let regs = compare(&old, &new);
        assert_eq!(regs.len(), 2);
        assert_eq!(regs[0].metric, "wall_ms");
        assert_eq!(regs[1].metric, "phase:dc_solve");
        assert!(regs[1].ratio > 1.3);
    }

    #[test]
    fn compare_ignores_new_datasets_and_noise() {
        let old = sample();
        let mut new = sample();
        new.datasets.push(DatasetPerf {
            dataset: "Seeds".to_string(),
            wall_ms: 9000.0,
            phases: vec![],
            solver: SolverRollup::default(),
        });
        // Tiny phases never flag, however large the ratio.
        new.datasets[0].phases[0].total_ms = 900.5;
        assert!(compare(&old, &new).is_empty());
    }

    #[test]
    fn thread_counts_gate_comparison() {
        let old = sample();
        let mut new = sample();
        assert!(comparable_thread_counts(&old, &new));
        new.threads = Some(4);
        assert!(!comparable_thread_counts(&old, &new));
        // Legacy snapshots without the field compare against anything.
        new.threads = None;
        assert!(comparable_thread_counts(&old, &new));
        assert!(comparable_thread_counts(&new, &old));
    }

    #[test]
    fn display_formats_percentage() {
        let r = Regression {
            dataset: "Iris".to_string(),
            metric: "wall_ms".to_string(),
            old_ms: 100.0,
            new_ms: 125.0,
            ratio: 1.25,
        };
        assert_eq!(
            r.to_string(),
            "Iris: wall_ms 100.0 ms -> 125.0 ms (+25.0 %)"
        );
    }
}
