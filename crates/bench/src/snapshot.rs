//! Perf snapshots: machine-readable per-dataset timing for regression
//! tracking (`BENCH_3.json`).
//!
//! A snapshot records, per dataset, the wall clock of the standard
//! constrained pipeline, a flame-style phase breakdown taken from a
//! [`pnc_telemetry::Profiler`] report, and a rollup of the process-wide
//! SPICE solver statistics (including the per-solve Newton iteration
//! distribution). [`compare`] diffs two snapshots and flags wall-clock
//! or phase-level regressions beyond a relative threshold, so CI can
//! gate on "did this change make training slower".

use pnc_telemetry::json::{parse, write_escaped, Json};
use pnc_telemetry::trend::{Direction, TrendPoint, TrendSeries};
use pnc_telemetry::{HistogramSummary, ProfileReport};
use std::io;
use std::path::Path;

/// One aggregated profiling phase (mirrors [`pnc_telemetry::PhaseStat`]
/// but owns its name and carries only what the snapshot serializes).
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseBreakdown {
    /// Span name (`epoch`, `tape_backward`, `dc_solve`, …).
    pub name: String,
    /// Number of spans recorded under this name.
    pub calls: u64,
    /// Total inclusive time, milliseconds.
    pub total_ms: f64,
    /// Self time (children subtracted), milliseconds.
    pub self_ms: f64,
}

/// Rollup of the SPICE solver counters for one dataset run.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SolverRollup {
    /// DC solves attempted.
    pub solves: u64,
    /// Total Newton iterations across all solves.
    pub newton_iterations: u64,
    /// Solves that engaged the supply-ramp homotopy.
    pub ramp_fallbacks: u64,
    /// Solves that returned an error.
    pub failures: u64,
    /// Mean Newton iterations per solve.
    pub iters_mean: f64,
    /// Median Newton iterations per solve.
    pub iters_p50: f64,
    /// 95th-percentile Newton iterations per solve.
    pub iters_p95: f64,
    /// Worst observed Newton iterations per solve.
    pub iters_max: f64,
    /// Largest Jacobian `cond1` estimate observed (0.0 when the solver
    /// observatory was not enabled — snapshots written before the
    /// observatory existed parse back as 0.0).
    pub max_cond1_estimate: f64,
    /// Distinct MNA sparsity-pattern fingerprints seen (0 when not
    /// observed).
    pub fingerprint_cardinality: u64,
    /// Nearest-neighbor-distance ↔ iterations correlation from the
    /// hardness atlas (0.0 when not observed or undefined).
    pub distance_iters_correlation: f64,
    /// Full (pivot-searching) sparse numeric factorizations (0 on
    /// dense-only runs and on snapshots predating the sparse backend).
    pub factorizations: u64,
    /// Cheap structure-reusing numeric refactorizations (0 likewise).
    pub refactorizations: u64,
    /// Solves seeded from a warm state instead of a cold zero guess
    /// (0 on snapshots predating warm starting).
    pub warm_started_solves: u64,
}

impl SolverRollup {
    /// Builds a rollup from the aggregate counters plus the per-solve
    /// iteration distribution.
    pub fn from_stats(
        stats: pnc_spice::stats::SolverStatsSnapshot,
        iters: &HistogramSummary,
    ) -> Self {
        SolverRollup {
            solves: stats.solves,
            newton_iterations: stats.newton_iterations,
            ramp_fallbacks: stats.ramp_fallbacks,
            failures: stats.failures,
            iters_mean: iters.mean,
            iters_p50: iters.p50,
            iters_p95: iters.p95,
            iters_max: iters.max,
            max_cond1_estimate: 0.0,
            fingerprint_cardinality: 0,
            distance_iters_correlation: 0.0,
            factorizations: stats.factorizations,
            refactorizations: stats.refactorizations,
            warm_started_solves: stats.warm_started_solves,
        }
    }

    /// Attaches the solver observatory's per-run aggregates (condition
    /// high-water, sparsity-fingerprint cardinality, hardness-atlas
    /// locality correlation) to a rollup built from the plain counters.
    #[must_use]
    pub fn with_observatory(
        mut self,
        max_cond1_estimate: f64,
        fingerprint_cardinality: u64,
        distance_iters_correlation: f64,
    ) -> Self {
        self.max_cond1_estimate = max_cond1_estimate;
        self.fingerprint_cardinality = fingerprint_cardinality;
        self.distance_iters_correlation = distance_iters_correlation;
        self
    }
}

/// Timing record for one dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetPerf {
    /// Dataset name.
    pub dataset: String,
    /// End-to-end wall clock for the dataset's pipeline, milliseconds.
    pub wall_ms: f64,
    /// Phase breakdown sorted by self time (descending).
    pub phases: Vec<PhaseBreakdown>,
    /// Solver counters attributed to this dataset.
    pub solver: SolverRollup,
}

impl DatasetPerf {
    /// Builds a record from a profiler report plus the solver stats
    /// isolated for this dataset.
    pub fn from_report(
        dataset: impl Into<String>,
        wall_ms: f64,
        report: &ProfileReport,
        solver: SolverRollup,
    ) -> Self {
        DatasetPerf {
            dataset: dataset.into(),
            wall_ms,
            phases: report
                .phases
                .iter()
                .map(|p| PhaseBreakdown {
                    name: p.name.clone(),
                    calls: p.calls,
                    total_ms: p.total_ms,
                    self_ms: p.self_ms,
                })
                .collect(),
            solver,
        }
    }
}

/// Executor utilization over the whole snapshot run, taken from the
/// process-wide [`pnc_parallel::stats`] counters. Mirrors
/// [`pnc_parallel::ExecutorStatsSnapshot`] but owns only what the
/// snapshot serializes.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ExecutorUtilization {
    /// Parallel entry-point invocations.
    pub calls: u64,
    /// Work items processed.
    pub items: u64,
    /// Σ worker-busy nanoseconds.
    pub busy_ns: u64,
    /// Σ offered-but-unused capacity nanoseconds.
    pub idle_ns: u64,
    /// Largest single-call fan-out (queue-depth high-water).
    pub max_fanout: u64,
    /// busy / (busy + idle), in [0, 1].
    pub utilization: f64,
    /// Items per wall-clock second inside parallel calls.
    pub items_per_sec: f64,
}

impl From<pnc_parallel::ExecutorStatsSnapshot> for ExecutorUtilization {
    fn from(s: pnc_parallel::ExecutorStatsSnapshot) -> Self {
        ExecutorUtilization {
            calls: s.calls,
            items: s.items,
            busy_ns: s.busy_ns,
            idle_ns: s.idle_ns(),
            max_fanout: s.max_fanout,
            utilization: s.utilization(),
            items_per_sec: s.items_per_sec(),
        }
    }
}

/// A full perf snapshot: one record per dataset at a given scale.
#[derive(Debug, Clone, PartialEq)]
pub struct PerfSnapshot {
    /// Experiment scale the snapshot was taken at (`smoke`/`ci`/`full`).
    pub scale: String,
    /// Run-registry id this snapshot was taken under (`--run-id`),
    /// linking the timing file back to its `runs/<id>/` directory.
    pub run_id: Option<String>,
    /// Executor thread count the snapshot was measured with. Wall
    /// clocks taken at different thread counts are not comparable, so
    /// [`comparable_thread_counts`] gates [`compare`] on this.
    pub threads: Option<usize>,
    /// Relative regression tolerance the snapshot was gated with
    /// (`--rel-tol`; `None` on snapshots written before the field
    /// existed — readers fall back to [`REGRESSION_THRESHOLD`]).
    pub rel_tol: Option<f64>,
    /// Absolute noise floor, milliseconds (`--noise-floor-ms`; `None`
    /// on older snapshots — readers fall back to
    /// [`MIN_COMPARABLE_MS`]).
    pub noise_floor_ms: Option<f64>,
    /// Executor utilization over the whole run (`None` on snapshots
    /// written before the executor exported counters).
    pub executor: Option<ExecutorUtilization>,
    /// Per-dataset records, in run order.
    pub datasets: Vec<DatasetPerf>,
}

/// Snapshot file format version (bumped on incompatible changes).
const FORMAT_VERSION: u64 = 1;

fn push_num(out: &mut String, v: f64) {
    if v.is_finite() {
        out.push_str(&format!("{v:.3}"));
    } else {
        out.push_str("null");
    }
}

impl PerfSnapshot {
    /// Serializes the snapshot as pretty-stable JSON (sorted keys,
    /// fixed decimal places) so diffs of the committed file stay small.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(4096);
        out.push_str("{\n  \"bench\": \"perf_snapshot\",\n  \"version\": ");
        out.push_str(&FORMAT_VERSION.to_string());
        out.push_str(",\n  \"scale\": ");
        write_escaped(&mut out, &self.scale);
        if let Some(run_id) = &self.run_id {
            out.push_str(",\n  \"run_id\": ");
            write_escaped(&mut out, run_id);
        }
        if let Some(threads) = self.threads {
            out.push_str(&format!(",\n  \"threads\": {threads}"));
        }
        if let Some(rel_tol) = self.rel_tol {
            out.push_str(&format!(",\n  \"rel_tol\": {rel_tol:.4}"));
        }
        if let Some(floor) = self.noise_floor_ms {
            out.push_str(&format!(",\n  \"noise_floor_ms\": {floor:.3}"));
        }
        if let Some(ex) = &self.executor {
            out.push_str(&format!(
                ",\n  \"executor\": {{\"calls\": {}, \"items\": {}, \"busy_ns\": {}, \
                 \"idle_ns\": {}, \"max_fanout\": {}, \"utilization\": ",
                ex.calls, ex.items, ex.busy_ns, ex.idle_ns, ex.max_fanout
            ));
            push_num(&mut out, ex.utilization);
            out.push_str(", \"items_per_sec\": ");
            push_num(&mut out, ex.items_per_sec);
            out.push('}');
        }
        out.push_str(",\n  \"datasets\": [");
        for (i, d) in self.datasets.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {\"dataset\": ");
            write_escaped(&mut out, &d.dataset);
            out.push_str(", \"wall_ms\": ");
            push_num(&mut out, d.wall_ms);
            out.push_str(", \"phases\": [");
            for (j, p) in d.phases.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str("\n      {\"name\": ");
                write_escaped(&mut out, &p.name);
                out.push_str(&format!(", \"calls\": {}", p.calls));
                out.push_str(", \"total_ms\": ");
                push_num(&mut out, p.total_ms);
                out.push_str(", \"self_ms\": ");
                push_num(&mut out, p.self_ms);
                out.push('}');
            }
            if !d.phases.is_empty() {
                out.push_str("\n    ");
            }
            out.push_str("], \"solver\": {");
            let s = &d.solver;
            out.push_str(&format!(
                "\"solves\": {}, \"newton_iterations\": {}, \"ramp_fallbacks\": {}, \"failures\": {}",
                s.solves, s.newton_iterations, s.ramp_fallbacks, s.failures
            ));
            out.push_str(", \"iters_mean\": ");
            push_num(&mut out, s.iters_mean);
            out.push_str(", \"iters_p50\": ");
            push_num(&mut out, s.iters_p50);
            out.push_str(", \"iters_p95\": ");
            push_num(&mut out, s.iters_p95);
            out.push_str(", \"iters_max\": ");
            push_num(&mut out, s.iters_max);
            // Observatory aggregates (0 on runs without --solver-traces
            // style observation; absent fields parse back as 0 too, so
            // older checked-in snapshots stay readable).
            out.push_str(&format!(
                ", \"max_cond1_estimate\": {:.6e}, \"fingerprint_cardinality\": {}, \
                 \"distance_iters_correlation\": ",
                s.max_cond1_estimate, s.fingerprint_cardinality
            ));
            push_num(&mut out, s.distance_iters_correlation);
            out.push_str(&format!(
                ", \"factorizations\": {}, \"refactorizations\": {}, \
                 \"warm_started_solves\": {}",
                s.factorizations, s.refactorizations, s.warm_started_solves
            ));
            out.push_str("}}");
        }
        out.push_str("\n  ]\n}\n");
        out
    }

    /// Parses a snapshot document written by [`PerfSnapshot::to_json`].
    /// Returns `None` when the text is not valid JSON or lacks the
    /// expected shape.
    pub fn from_json(text: &str) -> Option<PerfSnapshot> {
        let doc = parse(text)?;
        if doc.get("bench")?.as_str()? != "perf_snapshot" {
            return None;
        }
        let scale = doc.get("scale")?.as_str()?.to_string();
        let run_id = doc.get("run_id").and_then(Json::as_str).map(str::to_string);
        let threads = doc
            .get("threads")
            .and_then(Json::as_f64)
            .map(|v| v as usize);
        let rel_tol = doc.get("rel_tol").and_then(Json::as_f64);
        let noise_floor_ms = doc.get("noise_floor_ms").and_then(Json::as_f64);
        let executor = doc.get("executor").map(|ex| {
            let num = |key: &str| ex.get(key).and_then(Json::as_f64).unwrap_or(0.0);
            ExecutorUtilization {
                calls: num("calls") as u64,
                items: num("items") as u64,
                busy_ns: num("busy_ns") as u64,
                idle_ns: num("idle_ns") as u64,
                max_fanout: num("max_fanout") as u64,
                utilization: num("utilization"),
                items_per_sec: num("items_per_sec"),
            }
        });
        let Json::Arr(ds) = doc.get("datasets")? else {
            return None;
        };
        let mut datasets = Vec::with_capacity(ds.len());
        for d in ds {
            let mut phases = Vec::new();
            if let Some(Json::Arr(ps)) = d.get("phases") {
                for p in ps {
                    phases.push(PhaseBreakdown {
                        name: p.get("name")?.as_str()?.to_string(),
                        calls: p.get("calls")?.as_f64()? as u64,
                        total_ms: p.get("total_ms")?.as_f64()?,
                        self_ms: p.get("self_ms")?.as_f64()?,
                    });
                }
            }
            let sv = d.get("solver")?;
            let num = |key: &str| sv.get(key).and_then(Json::as_f64).unwrap_or(0.0);
            datasets.push(DatasetPerf {
                dataset: d.get("dataset")?.as_str()?.to_string(),
                wall_ms: d.get("wall_ms")?.as_f64()?,
                phases,
                solver: SolverRollup {
                    solves: num("solves") as u64,
                    newton_iterations: num("newton_iterations") as u64,
                    ramp_fallbacks: num("ramp_fallbacks") as u64,
                    failures: num("failures") as u64,
                    iters_mean: num("iters_mean"),
                    iters_p50: num("iters_p50"),
                    iters_p95: num("iters_p95"),
                    iters_max: num("iters_max"),
                    max_cond1_estimate: num("max_cond1_estimate"),
                    fingerprint_cardinality: num("fingerprint_cardinality") as u64,
                    distance_iters_correlation: num("distance_iters_correlation"),
                    factorizations: num("factorizations") as u64,
                    refactorizations: num("refactorizations") as u64,
                    warm_started_solves: num("warm_started_solves") as u64,
                },
            });
        }
        Some(PerfSnapshot {
            scale,
            run_id,
            threads,
            rel_tol,
            noise_floor_ms,
            executor,
            datasets,
        })
    }

    /// Writes the snapshot to `path`.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write(&self, path: impl AsRef<Path>) -> io::Result<()> {
        std::fs::write(path, self.to_json())
    }

    /// Reads a snapshot from `path`.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message on I/O or parse failure.
    pub fn read(path: impl AsRef<Path>) -> Result<PerfSnapshot, String> {
        let path = path.as_ref();
        let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
        PerfSnapshot::from_json(&text)
            .ok_or_else(|| format!("{}: not a perf_snapshot document", path.display()))
    }
}

/// One flagged slowdown from [`compare`].
#[derive(Debug, Clone, PartialEq)]
pub struct Regression {
    /// Dataset the regression was observed on.
    pub dataset: String,
    /// What regressed: `wall_ms` or `phase:<name>`.
    pub metric: String,
    /// Baseline value, milliseconds.
    pub old_ms: f64,
    /// Current value, milliseconds.
    pub new_ms: f64,
    /// `new / old` ratio (> 1 means slower).
    pub ratio: f64,
}

impl std::fmt::Display for Regression {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}: {} {:.1} ms -> {:.1} ms ({:+.1} %)",
            self.dataset,
            self.metric,
            self.old_ms,
            self.new_ms,
            (self.ratio - 1.0) * 100.0
        )
    }
}

/// `true` when two snapshots were measured at compatible executor
/// thread counts and may be regression-compared. Snapshots that both
/// record a thread count must agree; a snapshot without one (written
/// before the field existed) is accepted against anything.
pub fn comparable_thread_counts(old: &PerfSnapshot, new: &PerfSnapshot) -> bool {
    match (old.threads, new.threads) {
        (Some(a), Some(b)) => a == b,
        _ => true,
    }
}

/// Relative slowdown beyond which [`compare`] flags a regression.
pub const REGRESSION_THRESHOLD: f64 = 0.10;

/// Phases or wall clocks faster than this are ignored by [`compare`]:
/// sub-10 ms timings are dominated by scheduler noise.
pub const MIN_COMPARABLE_MS: f64 = 10.0;

/// Thresholds for [`compare_with`]. The defaults are the historical
/// hard-coded constants ([`REGRESSION_THRESHOLD`] /
/// [`MIN_COMPARABLE_MS`]); `perf_snapshot --compare` overrides them
/// from `--rel-tol` / `--noise-floor-ms`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CompareConfig {
    /// Minimum relative slowdown to flag (0.10 = 10 %).
    pub rel_tol: f64,
    /// Timings below this many milliseconds are never compared.
    pub noise_floor_ms: f64,
}

impl Default for CompareConfig {
    fn default() -> Self {
        CompareConfig {
            rel_tol: REGRESSION_THRESHOLD,
            noise_floor_ms: MIN_COMPARABLE_MS,
        }
    }
}

/// [`compare_with`] at the default thresholds.
pub fn compare(old: &PerfSnapshot, new: &PerfSnapshot) -> Vec<Regression> {
    compare_with(old, new, CompareConfig::default())
}

/// Diffs `new` against the `old` baseline and returns every dataset
/// whose wall clock — or any phase's total time — grew by more than
/// `cfg.rel_tol`. Datasets or phases present on only one side are
/// skipped (they are adds/removes, not regressions), as are timings
/// below `cfg.noise_floor_ms`.
pub fn compare_with(old: &PerfSnapshot, new: &PerfSnapshot, cfg: CompareConfig) -> Vec<Regression> {
    let mut out = Vec::new();
    for nd in &new.datasets {
        let Some(od) = old.datasets.iter().find(|d| d.dataset == nd.dataset) else {
            continue;
        };
        if od.wall_ms >= cfg.noise_floor_ms && nd.wall_ms > od.wall_ms * (1.0 + cfg.rel_tol) {
            out.push(Regression {
                dataset: nd.dataset.clone(),
                metric: "wall_ms".to_string(),
                old_ms: od.wall_ms,
                new_ms: nd.wall_ms,
                ratio: nd.wall_ms / od.wall_ms,
            });
        }
        for np in &nd.phases {
            let Some(op) = od.phases.iter().find(|p| p.name == np.name) else {
                continue;
            };
            if op.total_ms >= cfg.noise_floor_ms && np.total_ms > op.total_ms * (1.0 + cfg.rel_tol)
            {
                out.push(Regression {
                    dataset: nd.dataset.clone(),
                    metric: format!("phase:{}", np.name),
                    old_ms: op.total_ms,
                    new_ms: np.total_ms,
                    ratio: np.total_ms / op.total_ms,
                });
            }
        }
    }
    out
}

/// Builds per-dataset trend series from a chronological sequence of
/// `(label, snapshot)` pairs (oldest first): one `"<dataset>: wall_ms"`
/// series per dataset, plus one `"<dataset>: phase:<name>"` series for
/// each phase present in *every* snapshot that carries the dataset
/// (phases that come and go are adds/removes, not trends). Datasets
/// appear in first-seen order; a dataset missing from some snapshot
/// simply contributes no point there.
pub fn trend_series(snapshots: &[(String, PerfSnapshot)]) -> Vec<TrendSeries> {
    let mut dataset_order: Vec<String> = Vec::new();
    for (_, snap) in snapshots {
        for d in &snap.datasets {
            if !dataset_order.contains(&d.dataset) {
                dataset_order.push(d.dataset.clone());
            }
        }
    }
    let mut out = Vec::new();
    for name in &dataset_order {
        let carriers: Vec<(&String, &DatasetPerf)> = snapshots
            .iter()
            .filter_map(|(label, snap)| {
                snap.datasets
                    .iter()
                    .find(|d| &d.dataset == name)
                    .map(|d| (label, d))
            })
            .collect();
        out.push(TrendSeries {
            metric: format!("{name}: wall_ms"),
            direction: Direction::UpIsBad,
            points: carriers
                .iter()
                .map(|(label, d)| TrendPoint {
                    label: (*label).clone(),
                    value: d.wall_ms,
                })
                .collect(),
        });
        let Some((_, first)) = carriers.first() else {
            continue;
        };
        for phase in &first.phases {
            let totals: Vec<Option<(&String, f64)>> = carriers
                .iter()
                .map(|(label, d)| {
                    d.phases
                        .iter()
                        .find(|p| p.name == phase.name)
                        .map(|p| (*label, p.total_ms))
                })
                .collect();
            if totals.iter().any(Option::is_none) {
                continue;
            }
            out.push(TrendSeries {
                metric: format!("{name}: phase:{}", phase.name),
                direction: Direction::UpIsBad,
                points: totals
                    .into_iter()
                    .flatten()
                    .map(|(label, v)| TrendPoint {
                        label: label.clone(),
                        value: v,
                    })
                    .collect(),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> PerfSnapshot {
        PerfSnapshot {
            scale: "smoke".to_string(),
            run_id: Some("1722-train".to_string()),
            threads: Some(2),
            rel_tol: Some(0.10),
            noise_floor_ms: Some(10.0),
            executor: Some(ExecutorUtilization {
                calls: 12,
                items: 480,
                busy_ns: 3_000_000,
                idle_ns: 1_000_000,
                max_fanout: 64,
                utilization: 0.75,
                items_per_sec: 120.5,
            }),
            datasets: vec![DatasetPerf {
                dataset: "Iris".to_string(),
                wall_ms: 1500.0,
                phases: vec![
                    PhaseBreakdown {
                        name: "epoch".to_string(),
                        calls: 75,
                        total_ms: 900.5,
                        self_ms: 12.25,
                    },
                    PhaseBreakdown {
                        name: "dc_solve".to_string(),
                        calls: 976,
                        total_ms: 57.0,
                        self_ms: 57.0,
                    },
                ],
                solver: SolverRollup {
                    solves: 976,
                    newton_iterations: 8000,
                    ramp_fallbacks: 3,
                    failures: 0,
                    iters_mean: 8.2,
                    iters_p50: 7.0,
                    iters_p95: 14.0,
                    iters_max: 42.0,
                    max_cond1_estimate: 3.25e6,
                    fingerprint_cardinality: 1,
                    distance_iters_correlation: -0.125,
                    factorizations: 12,
                    refactorizations: 7988,
                    warm_started_solves: 944,
                },
            }],
        }
    }

    #[test]
    fn snapshot_round_trips_through_json() {
        let snap = sample();
        let parsed = PerfSnapshot::from_json(&snap.to_json()).unwrap();
        assert_eq!(parsed.scale, "smoke");
        assert_eq!(parsed.run_id.as_deref(), Some("1722-train"));
        assert_eq!(parsed.threads, Some(2));
        assert_eq!(parsed.datasets.len(), 1);
        assert_eq!(parsed.rel_tol, Some(0.10));
        assert_eq!(parsed.noise_floor_ms, Some(10.0));
        let ex = parsed.executor.expect("executor block round-trips");
        assert_eq!(ex.calls, 12);
        assert_eq!(ex.items, 480);
        assert_eq!(ex.max_fanout, 64);
        assert!((ex.utilization - 0.75).abs() < 1e-9);
        // A snapshot without the optional fields (as BENCH_3/BENCH_4
        // were written) round-trips as None for each.
        let anon = PerfSnapshot {
            run_id: None,
            threads: None,
            rel_tol: None,
            noise_floor_ms: None,
            executor: None,
            ..sample()
        };
        let anon_parsed = PerfSnapshot::from_json(&anon.to_json()).unwrap();
        assert_eq!(anon_parsed.run_id, None);
        assert_eq!(anon_parsed.threads, None);
        assert_eq!(anon_parsed.rel_tol, None);
        assert_eq!(anon_parsed.noise_floor_ms, None);
        assert_eq!(anon_parsed.executor, None);
        let d = &parsed.datasets[0];
        assert_eq!(d.dataset, "Iris");
        assert!((d.wall_ms - 1500.0).abs() < 1e-6);
        assert_eq!(d.phases.len(), 2);
        assert_eq!(d.phases[0].name, "epoch");
        assert_eq!(d.phases[0].calls, 75);
        assert!((d.phases[0].self_ms - 12.25).abs() < 1e-6);
        assert_eq!(d.solver.solves, 976);
        assert!((d.solver.iters_p95 - 14.0).abs() < 1e-6);
        assert!((d.solver.max_cond1_estimate - 3.25e6).abs() < 1.0);
        assert_eq!(d.solver.fingerprint_cardinality, 1);
        assert!((d.solver.distance_iters_correlation - -0.125).abs() < 1e-3);
        assert_eq!(d.solver.factorizations, 12);
        assert_eq!(d.solver.refactorizations, 7988);
        assert_eq!(d.solver.warm_started_solves, 944);
    }

    #[test]
    fn snapshots_without_observatory_fields_parse_as_zero() {
        // A pre-observatory solver block (as BENCH_3 was written).
        let text = r#"{
  "bench": "perf_snapshot",
  "version": 1,
  "scale": "smoke",
  "datasets": [
    {"dataset": "Iris", "wall_ms": 100.0, "phases": [], "solver": {
      "solves": 10, "newton_iterations": 80, "ramp_fallbacks": 0,
      "failures": 0, "iters_mean": 8.0, "iters_p50": 8.0,
      "iters_p95": 9.0, "iters_max": 9.0}}
  ]
}"#;
        let snap = PerfSnapshot::from_json(text).expect("legacy snapshot parses");
        let s = &snap.datasets[0].solver;
        assert_eq!(s.max_cond1_estimate, 0.0);
        assert_eq!(s.fingerprint_cardinality, 0);
        assert_eq!(s.distance_iters_correlation, 0.0);
        assert_eq!(s.factorizations, 0);
        assert_eq!(s.refactorizations, 0);
        assert_eq!(s.warm_started_solves, 0);
    }

    #[test]
    fn malformed_snapshots_are_rejected() {
        assert!(PerfSnapshot::from_json("").is_none());
        assert!(PerfSnapshot::from_json("{}").is_none());
        assert!(PerfSnapshot::from_json("{\"bench\": \"other\"}").is_none());
        assert!(PerfSnapshot::from_json("{\"bench\": \"perf_snapshot\", \"scale\": 3}").is_none());
    }

    #[test]
    fn compare_flags_slowdowns_over_threshold() {
        let old = sample();
        let mut new = sample();
        new.datasets[0].wall_ms = 1700.0; // +13 % — flagged
        new.datasets[0].phases[1].total_ms = 75.0; // +32 % — flagged
        new.datasets[0].phases[0].total_ms = 950.0; // +5.5 % — within noise
        let regs = compare(&old, &new);
        assert_eq!(regs.len(), 2);
        assert_eq!(regs[0].metric, "wall_ms");
        assert_eq!(regs[1].metric, "phase:dc_solve");
        assert!(regs[1].ratio > 1.3);
    }

    #[test]
    fn compare_ignores_new_datasets_and_noise() {
        let old = sample();
        let mut new = sample();
        new.datasets.push(DatasetPerf {
            dataset: "Seeds".to_string(),
            wall_ms: 9000.0,
            phases: vec![],
            solver: SolverRollup::default(),
        });
        // Tiny phases never flag, however large the ratio.
        new.datasets[0].phases[0].total_ms = 900.5;
        assert!(compare(&old, &new).is_empty());
    }

    #[test]
    fn compare_with_honors_custom_thresholds() {
        let old = sample();
        let mut new = sample();
        new.datasets[0].wall_ms = 1700.0; // +13 %
                                          // Looser tolerance: nothing flags.
        let loose = CompareConfig {
            rel_tol: 0.25,
            noise_floor_ms: 10.0,
        };
        assert!(compare_with(&old, &new, loose).is_empty());
        // Tighter tolerance flags the +5.5 % phase drift too.
        new.datasets[0].phases[0].total_ms = 950.0;
        let tight = CompareConfig {
            rel_tol: 0.02,
            noise_floor_ms: 10.0,
        };
        let regs = compare_with(&old, &new, tight);
        assert!(regs.iter().any(|r| r.metric == "phase:epoch"), "{regs:?}");
        // A sky-high noise floor silences everything.
        let deaf = CompareConfig {
            rel_tol: 0.02,
            noise_floor_ms: 1e9,
        };
        assert!(compare_with(&old, &new, deaf).is_empty());
    }

    #[test]
    fn thread_counts_gate_comparison() {
        let old = sample();
        let mut new = sample();
        assert!(comparable_thread_counts(&old, &new));
        new.threads = Some(4);
        assert!(!comparable_thread_counts(&old, &new));
        // Legacy snapshots without the field compare against anything.
        new.threads = None;
        assert!(comparable_thread_counts(&old, &new));
        assert!(comparable_thread_counts(&new, &old));
    }

    #[test]
    fn trend_series_tracks_datasets_and_stable_phases() {
        let mut a = sample();
        let mut b = sample();
        b.datasets[0].wall_ms = 1600.0;
        // Drop one phase from b so it is excluded as an add/remove.
        b.datasets[0].phases.retain(|p| p.name == "epoch");
        // b gains a dataset a lacks: its series has a single point.
        b.datasets.push(DatasetPerf {
            dataset: "Seeds".to_string(),
            wall_ms: 2000.0,
            phases: vec![],
            solver: SolverRollup::default(),
        });
        a.datasets[0].phases[0].total_ms = 900.5;
        let series = trend_series(&[("old".to_string(), a), ("new".to_string(), b)]);
        let names: Vec<&str> = series.iter().map(|s| s.metric.as_str()).collect();
        assert_eq!(
            names,
            ["Iris: wall_ms", "Iris: phase:epoch", "Seeds: wall_ms"],
            "{names:?}"
        );
        let wall = &series[0];
        assert_eq!(wall.points.len(), 2);
        assert_eq!(wall.points[0].label, "old");
        assert_eq!(wall.points[1].value, 1600.0);
        assert_eq!(series[2].points.len(), 1);
    }

    #[test]
    fn display_formats_percentage() {
        let r = Regression {
            dataset: "Iris".to_string(),
            metric: "wall_ms".to_string(),
            old_ms: 100.0,
            new_ms: 125.0,
            ratio: 1.25,
        };
        assert_eq!(
            r.to_string(),
            "Iris: wall_ms 100.0 ms -> 125.0 ms (+25.0 %)"
        );
    }
}
