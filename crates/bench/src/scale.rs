//! Experiment scale presets.
//!
//! Every experiment binary runs at one of three scales so the same code
//! serves quick smoke checks, a single-machine reproduction pass, and
//! the paper-faithful configuration.

use pnc_datasets::DatasetId;
use pnc_train::experiment::ExperimentFidelity;
use pnc_train::trainer::TrainConfig;

/// Experiment scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Seconds-to-minutes: 3 datasets, short training. For smoke tests.
    Smoke,
    /// Tens of minutes on a laptop: all 13 datasets, reduced epochs and
    /// capped batch sizes. Trends match the paper; absolute accuracies
    /// sit a few points below the fully-trained numbers.
    Ci,
    /// Paper-faithful: all datasets, full training schedules, 10,000
    /// surrogate samples. Hours of CPU time.
    Full,
}

impl Scale {
    /// Parses `--scale <name>` from process args, defaulting to `Ci`.
    pub fn from_args() -> Scale {
        let args: Vec<String> = std::env::args().collect();
        for i in 0..args.len() {
            if args[i] == "--scale" {
                if let Some(v) = args.get(i + 1) {
                    return Scale::parse(v).unwrap_or_else(|| {
                        eprintln!("unknown scale '{v}', using ci");
                        Scale::Ci
                    });
                }
            }
        }
        Scale::Ci
    }

    /// Parses a scale name.
    pub fn parse(s: &str) -> Option<Scale> {
        match s.to_ascii_lowercase().as_str() {
            "smoke" => Some(Scale::Smoke),
            "ci" => Some(Scale::Ci),
            "full" => Some(Scale::Full),
            _ => None,
        }
    }

    /// Name for report headers.
    pub fn name(self) -> &'static str {
        match self {
            Scale::Smoke => "smoke",
            Scale::Ci => "ci",
            Scale::Full => "full",
        }
    }

    /// Datasets evaluated at this scale.
    pub fn datasets(self) -> Vec<DatasetId> {
        match self {
            Scale::Smoke => vec![
                DatasetId::Iris,
                DatasetId::Seeds,
                DatasetId::VertebralColumn,
            ],
            _ => DatasetId::ALL.to_vec(),
        }
    }

    /// Seeds per configuration.
    pub fn seeds(self) -> Vec<u64> {
        match self {
            Scale::Smoke => vec![1],
            Scale::Ci => vec![1],
            Scale::Full => vec![1, 2, 3, 4, 5],
        }
    }

    /// Training-run fidelity.
    pub fn fidelity(self) -> ExperimentFidelity {
        match self {
            Scale::Smoke => ExperimentFidelity::smoke(),
            Scale::Ci => ExperimentFidelity {
                train: TrainConfig {
                    max_epochs: 300,
                    patience: 45,
                    ..TrainConfig::default()
                },
                auglag_outer: 4,
                ..ExperimentFidelity::ci()
            },
            Scale::Full => ExperimentFidelity::full(),
        }
    }

    /// Cap on training rows (full-batch cost control for Pendigits and
    /// Cardiotocography on small machines). `usize::MAX` = no cap.
    pub fn max_train_rows(self) -> usize {
        match self {
            Scale::Smoke => 400,
            Scale::Ci => 800,
            Scale::Full => usize::MAX,
        }
    }

    /// Penalty-baseline sweep: (α values, seeds per α).
    ///
    /// The paper's full front uses 50 α values × 10 seeds.
    pub fn penalty_sweep(self) -> (Vec<f64>, usize) {
        match self {
            Scale::Smoke => (vec![0.0, 0.25, 0.5, 1.0], 1),
            Scale::Ci => ((0..10).map(|i| i as f64 / 9.0).collect(), 2),
            Scale::Full => ((0..50).map(|i| i as f64 / 49.0).collect(), 10),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_names() {
        assert_eq!(Scale::parse("smoke"), Some(Scale::Smoke));
        assert_eq!(Scale::parse("CI"), Some(Scale::Ci));
        assert_eq!(Scale::parse("Full"), Some(Scale::Full));
        assert_eq!(Scale::parse("bogus"), None);
    }

    #[test]
    fn smoke_is_subset_of_full() {
        let smoke = Scale::Smoke.datasets();
        let full = Scale::Full.datasets();
        assert!(smoke.iter().all(|d| full.contains(d)));
        assert_eq!(full.len(), 13);
    }

    #[test]
    fn penalty_sweep_sizes() {
        let (alphas, seeds) = Scale::Full.penalty_sweep();
        assert_eq!(alphas.len(), 50);
        assert_eq!(seeds, 10);
        // lint: allow(L002, reason = "linspace assigns its endpoints from these exact literals")
        assert!((alphas[0], *alphas.last().unwrap()) == (0.0, 1.0));
    }

    #[test]
    fn fidelity_scales_epochs() {
        assert!(Scale::Full.fidelity().train.max_epochs > Scale::Smoke.fidelity().train.max_epochs);
    }
}
