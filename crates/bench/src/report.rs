//! Plain-text tables and CSV output for experiment binaries.

use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// Directory experiment CSVs are written to.
pub fn experiments_dir() -> PathBuf {
    PathBuf::from("target/experiments")
}

/// Writes CSV rows (first row = header) to
/// `target/experiments/<name>.csv`, creating the directory as needed.
/// Returns the written path.
///
/// # Panics
///
/// Panics on I/O errors — experiment binaries want loud failures.
pub fn write_csv(name: &str, header: &[&str], rows: &[Vec<String>]) -> PathBuf {
    let dir = experiments_dir();
    // lint: allow(L001, reason = "documented panic API: experiment binaries want loud I/O failures")
    fs::create_dir_all(&dir).expect("create experiments dir");
    let path = dir.join(format!("{name}.csv"));
    // lint: allow(L001, reason = "documented panic API: experiment binaries want loud I/O failures")
    let mut f = fs::File::create(&path).expect("create csv");
    // lint: allow(L001, reason = "documented panic API: experiment binaries want loud I/O failures")
    writeln!(f, "{}", header.join(",")).expect("write header");
    for row in rows {
        // lint: allow(L001, reason = "documented panic API: experiment binaries want loud I/O failures")
        writeln!(f, "{}", row.join(",")).expect("write row");
    }
    path
}

/// Reads back a CSV written by [`write_csv`] (for tests).
pub fn read_csv(path: &Path) -> Vec<Vec<String>> {
    fs::read_to_string(path)
        // lint: allow(L001, reason = "documented panic API: experiment binaries want loud I/O failures")
        .expect("read csv")
        .lines()
        .map(|l| l.split(',').map(str::to_string).collect())
        .collect()
}

/// Minimal fixed-width table printer for terminal reports.
#[derive(Debug, Default)]
pub struct TableWriter {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TableWriter {
    /// Creates a table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        TableWriter {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics when the arity differs from the header.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Renders the table as a string.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for c in 0..cols {
                widths[c] = widths[c].max(row[c].len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}", w = w))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Prints the rendered table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Formats a float with 2 decimals for tables.
pub fn f2(v: f64) -> String {
    format!("{v:.2}")
}

/// Formats a float with 3 decimals for tables.
pub fn f3(v: f64) -> String {
    format!("{v:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = TableWriter::new(&["name", "value"]);
        t.row(vec!["a".into(), "1.00".into()]);
        t.row(vec!["long-name".into(), "2.50".into()]);
        let s = t.render();
        assert!(s.contains("long-name"));
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        // Columns aligned: both data lines have equal length.
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn row_arity_checked() {
        let mut t = TableWriter::new(&["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn csv_roundtrip() {
        let path = write_csv(
            "unit_test_roundtrip",
            &["x", "y"],
            &[vec!["1".into(), "2".into()], vec!["3".into(), "4".into()]],
        );
        let rows = read_csv(&path);
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0], vec!["x", "y"]);
        assert_eq!(rows[2], vec!["3", "4"]);
        std::fs::remove_file(path).ok();
    }
}
