//! # pnc-bench
//!
//! Experiment harness regenerating every table and figure of the
//! paper's evaluation (Sec. IV), plus Criterion micro-benchmarks and
//! design-choice ablations.
//!
//! Binaries (all accept `--scale smoke|ci|full`, default `ci`, and
//! write CSV under `target/experiments/`):
//!
//! | binary | reproduces |
//! |---|---|
//! | `table1` | Table I (per-AF averages at 20/40/60/80 % budgets, penalty baseline at α ∈ {1, 0.75, 0.5, 0.25}, headline accuracy-to-power ratios, run-count accounting) |
//! | `fig3_power_curves` | Fig. 3(c)–(f) bottom: AF power behaviour vs input voltage |
//! | `fig4_scatter` | Fig. 4: accuracy–power scatter with budget thresholds |
//! | `fig5_pareto` | Fig. 5: penalty Pareto fronts vs single-run augmented Lagrangian points |
//! | `ablations` | DESIGN.md §5 starred choices: warm-starting, count relaxation, constraint handling |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aggregate;
pub mod harness;
pub mod report;
pub mod scale;
pub mod snapshot;

pub use aggregate::{average_cell, CellSummary};
pub use report::{write_csv, TableWriter};
pub use scale::Scale;
pub use snapshot::{
    comparable_thread_counts, compare, DatasetPerf, PerfSnapshot, PhaseBreakdown, SolverRollup,
};
