//! Criterion benchmarks of the training-loop building blocks: one
//! epoch of each objective (plain cross-entropy, penalty, augmented
//! Lagrangian) on an Iris-sized problem, plus full short runs comparing
//! warm- and cold-started augmented Lagrangian outer loops.

use criterion::{criterion_group, criterion_main, Criterion};
use pnc_core::activation::{fit_negation_model, LearnableActivation, SurrogateFidelity};
use pnc_core::{NetworkConfig, PrintedNetwork};
use pnc_datasets::{Dataset, DatasetId};
use pnc_linalg::rng as lrng;
use pnc_spice::AfKind;
use pnc_train::auglag::{train_auglag, AugLagConfig};
use pnc_train::penalty::{train_penalty, PenaltyConfig};
use pnc_train::trainer::{fit, DataRefs, TrainConfig};

struct Fixture {
    net: PrintedNetwork,
    split: pnc_datasets::Split,
}

fn fixture() -> Fixture {
    let act = LearnableActivation::fit(AfKind::PTanh, &SurrogateFidelity::smoke())
        .expect("surrogate fit");
    let neg = fit_negation_model(9).expect("negation fit");
    let mut rng = lrng::seeded(7);
    let net = PrintedNetwork::new(4, 3, NetworkConfig::default(), act, neg, &mut rng)
        .expect("valid widths");
    let ds = Dataset::generate(DatasetId::Iris, 1);
    let split = ds.split(1);
    Fixture { net, split }
}

fn one_epoch_cfg() -> TrainConfig {
    TrainConfig {
        max_epochs: 1,
        ..TrainConfig::default()
    }
}

fn bench_epochs(c: &mut Criterion) {
    let fx = fixture();
    let mut group = c.benchmark_group("train/one_epoch_iris");

    group.bench_function("cross_entropy", |bench| {
        bench.iter(|| {
            let mut net = fx.net.clone();
            let data = DataRefs::from_split(&fx.split);
            let r = fit(&mut net, &data, &one_epoch_cfg(), &|_t, _b, ce| ce, &|_| {
                true
            });
            std::hint::black_box(r.expect("shapes match").final_objective)
        });
    });

    group.bench_function("penalty", |bench| {
        bench.iter(|| {
            let mut net = fx.net.clone();
            let data = DataRefs::from_split(&fx.split);
            let r = train_penalty(
                &mut net,
                &data,
                &PenaltyConfig {
                    alpha: 0.5,
                    p_ref_watts: 1e-4,
                    inner: one_epoch_cfg().with_seed(7),
                    faithful: false,
                },
            );
            std::hint::black_box(r.expect("shapes match").power_watts)
        });
    });

    group.bench_function("auglag_outer_iter", |bench| {
        bench.iter(|| {
            let mut net = fx.net.clone();
            let data = DataRefs::from_split(&fx.split);
            let r = train_auglag(
                &mut net,
                &data,
                &AugLagConfig {
                    budget_watts: 5e-5,
                    mu: 2.0,
                    outer_iters: 1,
                    inner: one_epoch_cfg().with_seed(7),
                    warm_start: true,
                    rescue: true,
                },
            );
            std::hint::black_box(r.expect("shapes match").power_watts)
        });
    });
    group.finish();
}

fn bench_warmstart_ablation(c: &mut Criterion) {
    let fx = fixture();
    let data = DataRefs::from_split(&fx.split);
    let budget = {
        let net = fx.net.clone();
        0.5 * pnc_train::auglag::hard_power(&net, data.x_train).expect("shapes match")
    };
    let short = TrainConfig {
        max_epochs: 15,
        patience: 10,
        ..TrainConfig::default()
    };
    let mut group = c.benchmark_group("train/auglag_3outer_iris");
    group.sample_size(10);
    for warm in [true, false] {
        group.bench_function(if warm { "warm_start" } else { "cold_start" }, |bench| {
            bench.iter(|| {
                let mut net = fx.net.clone();
                let r = train_auglag(
                    &mut net,
                    &data,
                    &AugLagConfig {
                        budget_watts: budget,
                        mu: 2.0,
                        outer_iters: 3,
                        inner: short.with_seed(7),
                        warm_start: warm,
                        rescue: true,
                    },
                );
                std::hint::black_box(r.expect("shapes match").val_accuracy)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_epochs, bench_warmstart_ablation);
criterion_main!(benches);
