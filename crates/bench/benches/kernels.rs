//! Criterion micro-benchmarks of the computational kernels every
//! experiment rests on: dense matmul, autodiff forward/backward, the
//! SPICE Newton solver, surrogate inference and the soft device counts.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pnc_autodiff::Tape;
use pnc_core::activation::{LearnableActivation, SurrogateFidelity};
use pnc_core::count::{soft_af_count, soft_neg_count, CountConfig};
use pnc_core::crossbar;
use pnc_linalg::{rng as lrng, Matrix};
use pnc_spice::af::{mean_power, transfer_curve};
use pnc_spice::dc::solve_dc;
use pnc_spice::netlist::Circuit;
use pnc_spice::AfKind;
use pnc_surrogate::NegationModel;

fn bench_matmul(c: &mut Criterion) {
    let mut group = c.benchmark_group("linalg/matmul");
    for &n in &[16usize, 64, 128] {
        let mut rng = lrng::seeded(1);
        let a = lrng::normal_matrix(&mut rng, n, n, 0.0, 1.0);
        let b = lrng::normal_matrix(&mut rng, n, n, 0.0, 1.0);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, _| {
            bench.iter(|| std::hint::black_box(a.matmul(&b)));
        });
    }
    group.finish();
}

fn bench_autodiff_step(c: &mut Criterion) {
    // Forward + backward of a crossbar + soft counts — the core of one
    // training epoch (without the activation surrogate MLP).
    let mut rng = lrng::seeded(2);
    let x = lrng::uniform_matrix(&mut rng, 90, 6, -0.8, 0.8);
    let theta = lrng::normal_matrix(&mut rng, 8, 3, 0.0, 0.3);
    let neg = NegationModel::ideal(1e-5);
    let cfg = CountConfig::default();

    c.bench_function("autodiff/crossbar_fwd_bwd", |bench| {
        bench.iter(|| {
            let mut tape = Tape::new();
            let xv = tape.constant(x.clone());
            let tv = tape.parameter(theta.clone());
            let out = crossbar::forward(&mut tape, xv, tv, &neg, None);
            let p = crossbar::power(&mut tape, &out);
            let n_af = soft_af_count(&mut tape, tv, &cfg);
            let n_neg = soft_neg_count(&mut tape, tv, 6, &cfg);
            let s1 = tape.add(p, n_af);
            let s2 = tape.add(s1, n_neg);
            let sq = tape.square(out.vz);
            let acc = tape.sum_all(sq);
            let loss = tape.add(s2, acc);
            let grads = tape.backward(loss);
            std::hint::black_box(grads.get(tv).map(|g| g.sum()));
        });
    });
}

fn bench_spice(c: &mut Criterion) {
    let mut group = c.benchmark_group("spice");
    // Single nonlinear DC solve (inverter).
    group.bench_function("dc_inverter", |bench| {
        let mut circuit = Circuit::new();
        let vdd = circuit.node("vdd");
        let vin = circuit.node("in");
        let out = circuit.node("out");
        circuit.vsource(vdd, Circuit::GROUND, 1.0);
        circuit.vsource(vin, Circuit::GROUND, 0.6);
        circuit.resistor(vdd, out, 100_000.0);
        circuit.egt(out, vin, Circuit::GROUND, 2e-4, 2e-5);
        bench.iter(|| std::hint::black_box(solve_dc(&circuit).unwrap().voltage(out)));
    });
    // Full p-tanh transfer sweep (the surrogate-data inner loop).
    group.bench_function("ptanh_transfer_21pt", |bench| {
        let d = AfKind::PTanh.default_design();
        let grid: Vec<f64> = (0..21).map(|i| -1.0 + i as f64 / 10.0).collect();
        bench.iter(|| std::hint::black_box(transfer_curve(&d, &grid).unwrap()));
    });
    group.bench_function("ptanh_mean_power_11pt", |bench| {
        let d = AfKind::PTanh.default_design();
        bench.iter(|| std::hint::black_box(mean_power(&d, 11).unwrap()));
    });
    group.finish();
}

fn bench_surrogates(c: &mut Criterion) {
    // Shared smoke-fidelity activation (fit once).
    let act = LearnableActivation::fit(AfKind::PTanh, &SurrogateFidelity::smoke())
        .expect("surrogate fit");
    let d = AfKind::PTanh.default_design();
    let mut group = c.benchmark_group("surrogate");
    group.bench_function("power_predict", |bench| {
        bench.iter(|| std::hint::black_box(act.power_surrogate().predict(d.q())));
    });
    group.bench_function("power_predict_on_tape_with_grad", |bench| {
        let q = Matrix::from_vec(1, d.q().len(), d.q().to_vec());
        bench.iter(|| {
            let mut tape = Tape::new();
            let qv = tape.parameter(q.clone());
            let p = act.power_surrogate().predict_on_tape(&mut tape, qv);
            let grads = tape.backward(p);
            std::hint::black_box(grads.get(qv).map(|g| g.sum()));
        });
    });
    group.bench_function("transfer_eval_90x3", |bench| {
        let mut rng = lrng::seeded(3);
        let v = lrng::uniform_matrix(&mut rng, 90, 3, -0.8, 0.8);
        bench.iter(|| std::hint::black_box(act.transfer().eval(&v, d.q())));
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_matmul,
    bench_autodiff_step,
    bench_spice,
    bench_surrogates
);
criterion_main!(benches);
