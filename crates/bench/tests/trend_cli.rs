//! End-to-end test of the `trend` bin: a fixture series with an
//! artificially injected sustained regression must be flagged and make
//! the process exit non-zero, while a flat series exits zero; the
//! machine-readable `--out` report must parse.

use pnc_bench::snapshot::{DatasetPerf, PerfSnapshot, SolverRollup};
use pnc_telemetry::json::parse;
use std::path::PathBuf;
use std::process::Command;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("pnc-trend-cli-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn fixture(wall_ms: f64) -> PerfSnapshot {
    PerfSnapshot {
        scale: "smoke".to_string(),
        run_id: None,
        threads: Some(1),
        rel_tol: None,
        noise_floor_ms: None,
        executor: None,
        datasets: vec![DatasetPerf {
            dataset: "Iris".to_string(),
            wall_ms,
            phases: vec![],
            solver: SolverRollup::default(),
        }],
    }
}

#[test]
fn injected_regression_flags_and_exits_non_zero() {
    let dir = temp_dir("regression");
    // Baseline ~100 ms, then two sustained +45 % points: flagged.
    let walls = [100.0, 101.0, 99.0, 145.0, 150.0];
    let mut paths = Vec::new();
    for (i, w) in walls.iter().enumerate() {
        let path = dir.join(format!("BENCH_fx{i}.json"));
        fixture(*w).write(&path).unwrap();
        paths.push(path);
    }
    let out = dir.join("BENCH_5.json");
    let report = dir.join("trend.md");
    let status = Command::new(env!("CARGO_BIN_EXE_trend"))
        .args(paths.iter().map(|p| p.to_str().unwrap()))
        .args([
            "--out",
            out.to_str().unwrap(),
            "--report",
            report.to_str().unwrap(),
        ])
        .output()
        .expect("trend bin runs");
    assert!(
        !status.status.success(),
        "sustained regression must exit non-zero: {}",
        String::from_utf8_lossy(&status.stdout)
    );

    let md = std::fs::read_to_string(&report).unwrap();
    assert!(md.contains("Iris: wall_ms"), "{md}");
    assert!(md.contains("!!"), "{md}");
    assert!(md.contains("sustained regression"), "{md}");

    let doc = parse(&std::fs::read_to_string(&out).unwrap()).expect("BENCH_5 parses");
    assert_eq!(doc.get("bench").and_then(|v| v.as_str()), Some("trend"));
    assert!(doc.get("flagged").and_then(|v| v.as_f64()).unwrap_or(0.0) >= 1.0);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn flat_series_exits_zero() {
    let dir = temp_dir("flat");
    let mut paths = Vec::new();
    for (i, w) in [100.0, 102.0, 99.0, 101.0].iter().enumerate() {
        let path = dir.join(format!("BENCH_fx{i}.json"));
        fixture(*w).write(&path).unwrap();
        paths.push(path);
    }
    let status = Command::new(env!("CARGO_BIN_EXE_trend"))
        .args(paths.iter().map(|p| p.to_str().unwrap()))
        .output()
        .expect("trend bin runs");
    assert!(
        status.status.success(),
        "flat series must exit zero: {}",
        String::from_utf8_lossy(&status.stdout)
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn fewer_than_two_inputs_is_a_usage_error() {
    let status = Command::new(env!("CARGO_BIN_EXE_trend"))
        .output()
        .expect("trend bin runs");
    assert!(!status.status.success());
    assert!(String::from_utf8_lossy(&status.stderr).contains("at least two"));
}
