//! Surrogate of the standard-cell negation circuit.
//!
//! Negative crossbar weights are realized by routing the input through a
//! printed inverter (`neg(·)` in the paper's Fig. 3b). The inverter is a
//! fixed standard cell — unlike the activation circuits its design is
//! not learnable — so its surrogate is a single fitted curve
//! `neg(V) ≈ a + b · tanh(d · (V − c))` plus a mean-power constant.

use crate::error::SurrogateError;
use crate::transfer::{fit_curve, init_from_curve, BaseShape};
use pnc_autodiff::{Tape, Var};
use pnc_linalg::Matrix;
use pnc_spice::af::{input_grid, negation_mean_power, negation_transfer};

/// Fitted negation-circuit surrogate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NegationModel {
    /// Offset `a`, in volts.
    // lint: allow(L004, reason = "tanh fit coefficient; the doc comment pins the unit")
    pub a: f64,
    /// Swing `b`, in volts (negative: the transfer falls).
    // lint: allow(L004, reason = "tanh fit coefficient; the doc comment pins the unit")
    pub b: f64,
    /// Centre `c`, in volts.
    // lint: allow(L004, reason = "tanh fit coefficient; the doc comment pins the unit")
    pub c: f64,
    /// Gain `d`, in 1/volts.
    // lint: allow(L004, reason = "tanh fit coefficient; the doc comment pins the unit")
    pub d: f64,
    /// Mean power over the standard input grid, in watts.
    pub mean_power_watts: f64,
    /// RMSE of the fit against SPICE (volts).
    pub fit_rmse_volts: f64,
}

impl NegationModel {
    /// An idealized negation `neg(V) = −V` with the fitted cell's power.
    /// Useful for ablations that isolate inverter non-ideality.
    pub fn ideal(mean_power_watts: f64) -> Self {
        NegationModel {
            a: 0.0,
            b: -1.0,
            c: 0.0,
            // tanh(d·V)·(−1) ≈ −V for small d·V; with d = 1 the
            // approximation holds well inside the signal range.
            d: 1.0,
            mean_power_watts,
            fit_rmse_volts: 0.0,
        }
    }

    /// Evaluates `neg(v)` element-wise.
    pub fn eval(&self, v: &Matrix) -> Matrix {
        v.map(|x| self.a + self.b * (self.d * (x - self.c)).tanh())
    }

    /// Evaluates `neg(v)` for a scalar.
    pub fn eval_scalar(&self, v_volts: f64) -> f64 {
        self.a + self.b * (self.d * (v_volts - self.c)).tanh()
    }

    /// Tape evaluation (all coefficients are Rust constants, so
    /// gradients flow through `v` only).
    pub fn eval_on_tape(&self, tape: &mut Tape, v: Var) -> Var {
        let centered = tape.add_scalar(v, -self.c);
        let scaled = tape.mul_scalar(centered, self.d);
        let t = tape.tanh(scaled);
        let swung = tape.mul_scalar(t, self.b);
        tape.add_scalar(swung, self.a)
    }
}

/// Fits the negation surrogate from SPICE, using a `grid_points` sweep.
///
/// # Errors
///
/// Propagates simulation failures as [`SurrogateError::SimulationFailed`]
/// and fit failures as [`SurrogateError::FitDiverged`].
pub fn fit_negation(grid_points: usize) -> Result<NegationModel, SurrogateError> {
    let inputs = input_grid(grid_points);
    let curve = negation_transfer(&inputs).map_err(|_| SurrogateError::SimulationFailed {
        failed: 1,
        requested: 1,
    })?;
    let init = init_from_curve(BaseShape::Tanh, &inputs, &curve);
    let p = fit_curve(BaseShape::Tanh, &inputs, &curve, init)?;
    let power = negation_mean_power(grid_points).map_err(|_| SurrogateError::SimulationFailed {
        failed: 1,
        requested: 1,
    })?;

    let model = NegationModel {
        a: p[0],
        b: p[1],
        c: p[3],
        d: p[2].exp(),
        mean_power_watts: power,
        fit_rmse_volts: 0.0,
    };
    let pred: Vec<f64> = inputs.iter().map(|&v| model.eval_scalar(v)).collect();
    let rmse = (pred
        .iter()
        .zip(&curve)
        .map(|(a, b)| (a - b) * (a - b))
        .sum::<f64>()
        / curve.len() as f64)
        .sqrt();
    Ok(NegationModel {
        fit_rmse_volts: rmse,
        ..model
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fit_tracks_spice() {
        let m = fit_negation(21).unwrap();
        assert!(
            m.fit_rmse_volts < 0.08,
            "negation fit RMSE {}",
            m.fit_rmse_volts
        );
        assert!(m.b < 0.0, "negation must fall: b = {}", m.b);
        assert!(m.mean_power_watts > 0.0 && m.mean_power_watts < 1e-3);
    }

    #[test]
    fn fitted_negation_flips_sign() {
        let m = fit_negation(21).unwrap();
        assert!(m.eval_scalar(-0.8) > 0.1);
        assert!(m.eval_scalar(0.8) < -0.05);
    }

    #[test]
    fn ideal_negation_is_odd() {
        let m = NegationModel::ideal(1e-5);
        for v in [-0.5, -0.1, 0.2, 0.9] {
            assert!((m.eval_scalar(v) + m.eval_scalar(-v)).abs() < 1e-12);
        }
        // Close to −V in the small-signal range.
        assert!((m.eval_scalar(0.2) + 0.2).abs() < 0.01);
    }

    #[test]
    fn tape_eval_matches_plain() {
        let m = fit_negation(11).unwrap();
        let v = Matrix::row(&[-0.7, 0.0, 0.4]);
        let plain = m.eval(&v);
        let mut tape = Tape::new();
        let vv = tape.parameter(v);
        let out = m.eval_on_tape(&mut tape, vv);
        assert!(tape.value(out).approx_eq(&plain, 1e-12));
    }

    #[test]
    fn tape_eval_gradient_checks() {
        let m = NegationModel::ideal(1e-5);
        let v = Matrix::row(&[-0.3, 0.5]);
        let rep = pnc_autodiff::gradcheck::check_gradient(&v, 1e-6, move |tape, p| {
            let out = m.eval_on_tape(tape, p);
            let sq = tape.square(out);
            tape.sum_all(sq)
        });
        assert!(rep.passes(1e-6), "{rep:?}");
    }
}
