//! Error type for surrogate-model construction.

use std::fmt;

/// Errors produced while sampling data or fitting surrogate models.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SurrogateError {
    /// Circuit simulation failed for too many sample points.
    SimulationFailed {
        /// How many sample points failed.
        failed: usize,
        /// How many were requested.
        requested: usize,
    },
    /// Not enough data to fit the requested model.
    NotEnoughData {
        /// Samples available.
        available: usize,
        /// Minimum required.
        required: usize,
    },
    /// Input dimensionality did not match the model.
    DimensionMismatch {
        /// Expected input width.
        expected: usize,
        /// Received input width.
        got: usize,
    },
    /// The nonlinear coefficient fit diverged.
    FitDiverged {
        /// Human-readable context.
        context: String,
    },
}

impl fmt::Display for SurrogateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SurrogateError::SimulationFailed { failed, requested } => {
                write!(
                    f,
                    "{failed} of {requested} SPICE samples failed to converge"
                )
            }
            SurrogateError::NotEnoughData {
                available,
                required,
            } => write!(f, "need at least {required} samples, have {available}"),
            SurrogateError::DimensionMismatch { expected, got } => {
                write!(
                    f,
                    "input dimension mismatch: expected {expected}, got {got}"
                )
            }
            SurrogateError::FitDiverged { context } => {
                write!(f, "nonlinear fit diverged: {context}")
            }
        }
    }
}

impl std::error::Error for SurrogateError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = SurrogateError::DimensionMismatch {
            expected: 6,
            got: 3,
        };
        assert!(e.to_string().contains("expected 6"));
    }
}
