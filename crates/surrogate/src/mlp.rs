//! Multi-layer perceptron regressor trained with the workspace autodiff
//! engine.
//!
//! The paper fits a "15-layer ANN" per activation function as the power
//! surrogate. [`Mlp`] reproduces that: a configurable stack of dense
//! layers with tanh hidden activations, trained by Adam on mean-squared
//! error. The trained network can be replayed on an autodiff [`Tape`]
//! with its weights as constants, which is how the power model stays
//! differentiable with respect to the *circuit design vector* during
//! pNC training while its own weights stay frozen.

use pnc_autodiff::{Adam, Optimizer, Tape, Var};
use pnc_linalg::{rng as lrng, Matrix};
use pnc_telemetry::{Event, Level, Telemetry};
use rand::rngs::StdRng;
use rand::Rng;

/// Hyperparameters for [`Mlp::train`].
#[derive(Debug, Clone, PartialEq)]
pub struct MlpConfig {
    /// Hidden layer widths. The paper's 15-layer network corresponds to
    /// 14 hidden entries; the default is a lighter stack that reaches
    /// the same validation error on our simulator data in a fraction of
    /// the time. Use [`MlpConfig::paper_depth`] for the literal depth.
    pub hidden: Vec<usize>,
    /// Adam learning rate.
    // lint: dimensionless
    pub lr: f64,
    /// Training epochs (full batch).
    pub epochs: usize,
    /// Mini-batch size; `0` means full batch.
    pub batch_size: usize,
    /// Seed for weight initialization and batch shuffling.
    pub seed: u64,
}

impl Default for MlpConfig {
    fn default() -> Self {
        MlpConfig {
            hidden: vec![32, 32, 32],
            lr: 3e-3,
            epochs: 400,
            batch_size: 0,
            seed: 7,
        }
    }
}

impl MlpConfig {
    /// The paper's literal depth: 15 layers (14 hidden × width 24).
    pub fn paper_depth() -> Self {
        MlpConfig {
            hidden: vec![24; 14],
            lr: 1e-3,
            epochs: 800,
            ..MlpConfig::default()
        }
    }
}

/// Training summary returned by [`Mlp::train`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainReport {
    /// Mean-squared error on the training set after the final epoch.
    // lint: dimensionless
    pub final_train_mse: f64,
    /// Epochs actually run.
    pub epochs: usize,
}

/// A dense feed-forward regressor with tanh hidden activations and a
/// linear output layer.
#[derive(Debug, Clone)]
pub struct Mlp {
    weights: Vec<Matrix>,
    biases: Vec<Matrix>,
}

impl Mlp {
    /// Creates an untrained MLP with He-initialized weights.
    ///
    /// # Panics
    ///
    /// Panics if `input_dim` or `output_dim` is zero.
    pub fn new(input_dim: usize, hidden: &[usize], output_dim: usize, rng: &mut StdRng) -> Self {
        assert!(input_dim > 0 && output_dim > 0, "zero-width MLP");
        let mut dims = vec![input_dim];
        dims.extend_from_slice(hidden);
        dims.push(output_dim);
        let mut weights = Vec::with_capacity(dims.len() - 1);
        let mut biases = Vec::with_capacity(dims.len() - 1);
        for w in dims.windows(2) {
            weights.push(lrng::he_init(rng, w[0], w[1], w[0]));
            biases.push(Matrix::zeros(1, w[1]));
        }
        Mlp { weights, biases }
    }

    /// Number of dense layers (hidden + output).
    pub fn layer_count(&self) -> usize {
        self.weights.len()
    }

    /// Input dimensionality.
    pub fn input_dim(&self) -> usize {
        self.weights[0].rows()
    }

    /// Output dimensionality.
    pub fn output_dim(&self) -> usize {
        // lint: allow(L001, reason = "the constructor rejects zero-layer networks")
        self.weights.last().expect("at least one layer").cols()
    }

    /// Plain forward pass (no tape).
    ///
    /// # Panics
    ///
    /// Panics when `x.cols() != self.input_dim()`.
    pub fn forward(&self, x: &Matrix) -> Matrix {
        assert_eq!(x.cols(), self.input_dim(), "forward: input width mismatch");
        let mut h = x.clone();
        let last = self.weights.len() - 1;
        for (i, (w, b)) in self.weights.iter().zip(&self.biases).enumerate() {
            h = h
                .matmul(w)
                .add_row_broadcast(b)
                // lint: allow(L001, reason = "biases are built alongside weights with matching widths")
                .expect("bias row matches layer width");
            if i != last {
                h.map_inplace(f64::tanh);
            }
        }
        h
    }

    /// Forward pass on a tape with the network weights as *constants*:
    /// gradients flow through to the input only. Used to differentiate
    /// surrogate power with respect to circuit design variables.
    pub fn forward_on_tape(&self, tape: &mut Tape, x: Var) -> Var {
        let last = self.weights.len() - 1;
        let mut h = x;
        for (i, (w, b)) in self.weights.iter().zip(&self.biases).enumerate() {
            let wv = tape.constant(w.clone());
            let bv = tape.constant(b.clone());
            let z = tape.matmul(h, wv);
            let z = tape.add_row(z, bv);
            h = if i != last { tape.tanh(z) } else { z };
        }
        h
    }

    /// Forward pass on a tape with the weights as *parameters* (used by
    /// [`Mlp::train`]). Returns the output plus the parameter handles in
    /// `(weights, biases)` interleaved order.
    fn forward_trainable(&self, tape: &mut Tape, x: Var) -> (Var, Vec<Var>) {
        let last = self.weights.len() - 1;
        let mut h = x;
        let mut params = Vec::with_capacity(self.weights.len() * 2);
        for (i, (w, b)) in self.weights.iter().zip(&self.biases).enumerate() {
            let wv = tape.parameter(w.clone());
            let bv = tape.parameter(b.clone());
            params.push(wv);
            params.push(bv);
            let z = tape.matmul(h, wv);
            let z = tape.add_row(z, bv);
            h = if i != last { tape.tanh(z) } else { z };
        }
        (h, params)
    }

    /// Trains on `(x, y)` with mean-squared error and Adam, mutating the
    /// network in place.
    ///
    /// # Panics
    ///
    /// Panics on row-count or width mismatches.
    pub fn train(&mut self, x: &Matrix, y: &Matrix, cfg: &MlpConfig) -> TrainReport {
        self.train_traced(x, y, cfg, &Telemetry::disabled())
    }

    /// Like [`Mlp::train`] but streams the training-loss curve to a
    /// telemetry sink: one `mlp_epoch` debug event per reporting stride
    /// (~50 points across the run, plus the final epoch). A disabled
    /// handle makes this exactly [`Mlp::train`].
    ///
    /// # Panics
    ///
    /// Same conditions as [`Mlp::train`].
    pub fn train_traced(
        &mut self,
        x: &Matrix,
        y: &Matrix,
        cfg: &MlpConfig,
        tel: &Telemetry,
    ) -> TrainReport {
        assert_eq!(x.rows(), y.rows(), "train: sample count mismatch");
        assert_eq!(x.cols(), self.input_dim(), "train: input width mismatch");
        assert_eq!(y.cols(), self.output_dim(), "train: output width mismatch");

        let mut prof_scope = tel.profiler().scope("mlp_fit");
        prof_scope.set_u64("rows", x.rows() as u64);
        prof_scope.set_u64("epochs", cfg.epochs as u64);
        let mut rng = lrng::seeded(cfg.seed);
        let mut opt = Adam::with_lr(cfg.lr);
        let n = x.rows();
        let bs = if cfg.batch_size == 0 || cfg.batch_size >= n {
            n
        } else {
            cfg.batch_size
        };
        let mut final_mse = f64::NAN;
        let stride = (cfg.epochs / 50).max(1);

        for epoch in 0..cfg.epochs {
            // Mini-batch order (identity when full batch).
            let order: Vec<usize> = if bs == n {
                (0..n).collect()
            } else {
                lrng::permutation(&mut rng, n)
            };
            let mut epoch_sse = 0.0;
            for chunk in order.chunks(bs) {
                let xb = x.select_rows(chunk);
                let yb = y.select_rows(chunk);
                let mut tape = Tape::new();
                let xv = tape.constant(xb);
                let (out, params) = self.forward_trainable(&mut tape, xv);
                let yv = tape.constant(yb);
                let diff = tape.sub(out, yv);
                let sq = tape.square(diff);
                let loss = tape.mean_all(sq);
                epoch_sse += tape.scalar(loss) * chunk.len() as f64;
                let grads = tape.backward(loss);

                // Collect current values and gradients; write back.
                let mut values: Vec<Matrix> =
                    params.iter().map(|&p| tape.value(p).clone()).collect();
                let grad_opt: Vec<Option<Matrix>> =
                    params.iter().map(|&p| grads.get(p).cloned()).collect();
                opt.step(&mut values, &grad_opt);
                for (k, v) in values.into_iter().enumerate() {
                    if k % 2 == 0 {
                        self.weights[k / 2] = v;
                    } else {
                        self.biases[k / 2] = v;
                    }
                }
            }
            final_mse = epoch_sse / n as f64;
            if epoch.is_multiple_of(stride) || epoch + 1 == cfg.epochs {
                let mse = final_mse;
                tel.emit(|| {
                    Event::new("mlp_epoch", Level::Debug)
                        .with_u64("epoch", (epoch + 1) as u64)
                        .with_f64("train_mse", mse)
                });
            }
        }

        TrainReport {
            final_train_mse: final_mse,
            epochs: cfg.epochs,
        }
    }

    /// Mean-squared error of the network on `(x, y)`.
    pub fn mse(&self, x: &Matrix, y: &Matrix) -> f64 {
        let pred = self.forward(x);
        let d = &pred - y;
        d.map(|v| v * v).mean()
    }

    /// Layer dimensions `[input, hidden…, output]` — the argument
    /// [`Mlp::from_flat`] needs to rebuild this network.
    pub fn dims(&self) -> Vec<usize> {
        let mut dims = vec![self.input_dim()];
        dims.extend(self.weights.iter().map(|w| w.cols()));
        dims
    }

    /// Serializes all weights into a flat vector (layer order:
    /// `W₀, b₀, W₁, b₁, …`, row-major).
    pub fn to_flat(&self) -> Vec<f64> {
        let mut out = Vec::new();
        for (w, b) in self.weights.iter().zip(&self.biases) {
            out.extend_from_slice(w.as_slice());
            out.extend_from_slice(b.as_slice());
        }
        out
    }

    /// Rebuilds an MLP from [`Mlp::to_flat`] output given the layer
    /// dimensions `[input, hidden…, output]`.
    ///
    /// # Panics
    ///
    /// Panics when `flat` has the wrong length for `dims`.
    pub fn from_flat(dims: &[usize], flat: &[f64]) -> Self {
        assert!(dims.len() >= 2, "need at least input and output dims");
        let mut weights = Vec::new();
        let mut biases = Vec::new();
        let mut off = 0usize;
        for w in dims.windows(2) {
            let (r, c) = (w[0], w[1]);
            weights.push(Matrix::from_vec(r, c, flat[off..off + r * c].to_vec()));
            off += r * c;
            biases.push(Matrix::from_vec(1, c, flat[off..off + c].to_vec()));
            off += c;
        }
        assert_eq!(off, flat.len(), "flat vector length mismatch");
        Mlp { weights, biases }
    }
}

/// Generates a noisy sample of a scalar function for tests/demos.
pub fn sample_function(
    f: impl Fn(&[f64]) -> f64,
    bounds: &[(f64, f64)],
    n: usize,
    // lint: dimensionless
    noise: f64,
    rng: &mut StdRng,
) -> (Matrix, Matrix) {
    let d = bounds.len();
    let mut x = Matrix::zeros(n, d);
    let mut y = Matrix::zeros(n, 1);
    for i in 0..n {
        for (j, &(lo, hi)) in bounds.iter().enumerate() {
            x[(i, j)] = rng.gen_range(lo..hi);
        }
        y[(i, 0)] = f(x.row_slice(i)) + noise * lrng::next_normal(rng);
    }
    (x, y)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_and_dims() {
        let mut rng = lrng::seeded(1);
        let mlp = Mlp::new(3, &[8, 8], 2, &mut rng);
        assert_eq!(mlp.layer_count(), 3);
        assert_eq!(mlp.input_dim(), 3);
        assert_eq!(mlp.output_dim(), 2);
        let out = mlp.forward(&Matrix::zeros(5, 3));
        assert_eq!(out.shape(), (5, 2));
    }

    #[test]
    fn fits_linear_function() {
        let mut rng = lrng::seeded(2);
        let (x, y) = sample_function(
            |v| 2.0 * v[0] - v[1] + 0.5,
            &[(-1.0, 1.0); 2],
            200,
            0.0,
            &mut rng,
        );
        let mut mlp = Mlp::new(2, &[16], 1, &mut rng);
        let cfg = MlpConfig {
            epochs: 600,
            lr: 1e-2,
            ..MlpConfig::default()
        };
        let rep = mlp.train(&x, &y, &cfg);
        assert!(rep.final_train_mse < 5e-3, "mse {}", rep.final_train_mse);
    }

    #[test]
    fn fits_nonlinear_function() {
        let mut rng = lrng::seeded(3);
        let (x, y) = sample_function(
            |v| (3.0 * v[0]).sin() * v[1],
            &[(-1.0, 1.0); 2],
            400,
            0.0,
            &mut rng,
        );
        let mut mlp = Mlp::new(2, &[24, 24], 1, &mut rng);
        let cfg = MlpConfig {
            epochs: 600,
            lr: 5e-3,
            ..MlpConfig::default()
        };
        let rep = mlp.train(&x, &y, &cfg);
        assert!(rep.final_train_mse < 5e-3, "mse {}", rep.final_train_mse);
    }

    #[test]
    fn minibatch_training_works() {
        let mut rng = lrng::seeded(4);
        let (x, y) = sample_function(|v| v[0] * v[0], &[(-1.0, 1.0)], 256, 0.0, &mut rng);
        let mut mlp = Mlp::new(1, &[16], 1, &mut rng);
        let cfg = MlpConfig {
            epochs: 150,
            lr: 5e-3,
            batch_size: 32,
            ..MlpConfig::default()
        };
        let rep = mlp.train(&x, &y, &cfg);
        assert!(rep.final_train_mse < 1e-2, "mse {}", rep.final_train_mse);
    }

    #[test]
    fn tape_forward_matches_plain() {
        let mut rng = lrng::seeded(5);
        let mlp = Mlp::new(3, &[8, 8], 1, &mut rng);
        let x = lrng::uniform_matrix(&mut rng, 4, 3, -1.0, 1.0);
        let plain = mlp.forward(&x);
        let mut tape = Tape::new();
        let xv = tape.parameter(x.clone());
        let out = mlp.forward_on_tape(&mut tape, xv);
        assert!(tape.value(out).approx_eq(&plain, 1e-12));
    }

    #[test]
    fn tape_forward_differentiates_wrt_input() {
        let mut rng = lrng::seeded(6);
        let mlp = Mlp::new(2, &[8], 1, &mut rng);
        let x = Matrix::row(&[0.3, -0.2]);
        let report = pnc_autodiff::gradcheck::check_gradient(&x, 1e-6, |tape, p| {
            let out = mlp.forward_on_tape(tape, p);
            tape.sum_all(out)
        });
        assert!(report.passes(1e-6), "{report:?}");
    }

    #[test]
    fn flat_roundtrip_preserves_outputs() {
        let mut rng = lrng::seeded(7);
        let mlp = Mlp::new(3, &[5, 4], 2, &mut rng);
        let flat = mlp.to_flat();
        let rebuilt = Mlp::from_flat(&[3, 5, 4, 2], &flat);
        let x = lrng::uniform_matrix(&mut rng, 6, 3, -1.0, 1.0);
        assert!(mlp.forward(&x).approx_eq(&rebuilt.forward(&x), 1e-15));
    }

    #[test]
    fn paper_depth_builds_and_runs() {
        let cfg = MlpConfig::paper_depth();
        assert_eq!(cfg.hidden.len(), 14);
        let mut rng = lrng::seeded(8);
        let mlp = Mlp::new(6, &cfg.hidden, 1, &mut rng);
        assert_eq!(mlp.layer_count(), 15);
        let out = mlp.forward(&Matrix::zeros(2, 6));
        assert!(out.all_finite());
    }

    #[test]
    #[should_panic(expected = "input width mismatch")]
    fn forward_rejects_wrong_width() {
        let mut rng = lrng::seeded(9);
        let mlp = Mlp::new(3, &[4], 1, &mut rng);
        let _ = mlp.forward(&Matrix::zeros(1, 2));
    }
}
