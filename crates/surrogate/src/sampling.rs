//! Sobol-sampled SPICE characterization data for activation circuits.
//!
//! Implements the paper's data-generation step: "We sample 10,000
//! circuit configurations using a Sobol sequence and simulate their
//! power consumption using SPICE" (Sec. III-A). Failed DC solves are
//! tolerated up to a small fraction (they are rare with the smooth nEGT
//! model but can occur at extreme design corners).

use crate::neighbors::NeighborGrid;
use crate::{atlas, SurrogateError};
use pnc_linalg::{Matrix, SobolSequence};
use pnc_parallel::ExecutorHandle;
use pnc_spice::af::{
    input_grid, mean_power_with_states, power_curve, transfer_curve_with_states,
};
use pnc_spice::{observe, AfDesign, AfKind};
use pnc_telemetry::{Event, Level, Telemetry};
use std::sync::atomic::{AtomicBool, Ordering};

/// Block size of the block-synchronous warm-start schedule: points in
/// block *b* warm-start from the coordinate-nearest solved point in
/// blocks `< b`. The block boundary — not thread scheduling — decides
/// which donors are visible, so characterization outputs are
/// bit-identical for any `--threads`.
const WARM_BLOCK: usize = 32;

// lint: allow(L003, reason = "process-wide warm-start switch; flipped once at CLI startup before characterization begins")
static WARM_START: AtomicBool = AtomicBool::new(true);

/// Enables or disables cross-point warm starting of Sobol
/// characterization (the `--no-warm-start` CLI flag). On by default.
pub fn set_warm_start(enabled: bool) {
    WARM_START.store(enabled, Ordering::Relaxed);
}

/// Whether cross-point warm starting is active.
pub fn warm_start_enabled() -> bool {
    WARM_START.load(Ordering::Relaxed)
}

/// Emits a `sobol_progress` debug event roughly every tenth of the
/// sweep plus at the end, so long characterizations are observable.
fn emit_progress(
    tel: &Telemetry,
    target: &'static str,
    kind: AfKind,
    i: usize,
    n: usize,
    failed: usize,
) {
    let stride = (n / 10).max(1);
    if (i + 1).is_multiple_of(stride) || i + 1 == n {
        tel.emit(|| {
            Event::new("sobol_progress", Level::Debug)
                .with_str("target", target)
                .with_str("kind", kind.name())
                .with_u64("done", (i + 1) as u64)
                .with_u64("total", n as u64)
                .with_u64("failed", failed as u64)
        });
    }
}

/// Shared block-synchronous characterization driver.
///
/// Sobol points are processed in [`WARM_BLOCK`]-sized blocks: donors
/// for every point of a block are chosen *before* the block's parallel
/// fan-out, from Sobol coordinates alone, among successful points of
/// strictly earlier blocks (coordinate-nearest in log space, ties to
/// the smallest index). Donor states then warm-start each grid solve
/// of the point from the matching grid index. Because the schedule
/// never depends on intra-block completion order, datasets stay
/// bit-identical for any thread count; the compaction pass runs
/// sequentially in index order exactly as before.
///
/// `simulate` returns `(value, per-grid-point solved states)` or
/// `None` on failure; `keep` receives each successful `(q, value)` in
/// index order. Returns `(kept, failed)`.
fn characterize_blocked<T: Send>(
    target: &'static str,
    kind: AfKind,
    n: usize,
    raw: &Matrix,
    log_bounds: &[(f64, f64)],
    tel: &Telemetry,
    simulate: &(impl Fn(&AfDesign, Option<&[Vec<f64>]>) -> Option<(T, Vec<Vec<f64>>)> + Sync),
    mut keep: impl FnMut(&[f64], T),
) -> (usize, usize) {
    let fanout_parent = tel.profiler().current_span_id();
    let atlas_on = atlas::is_enabled();
    let warm_on = warm_start_enabled();

    // Design vectors and their log-space coordinates (the same values
    // the compaction pass always derived — pure functions of the Sobol
    // rows, so hoisting them out of the fan-out changes nothing).
    let qs: Vec<Vec<f64>> = (0..n)
        .map(|i| raw.row_slice(i).iter().map(|&x| x.exp()).collect())
        .collect();
    let lnqs: Vec<Vec<f64>> = qs
        .iter()
        .map(|q| q.iter().map(|&v| v.ln()).collect())
        .collect();

    // One bucket-grid cell ≈ an eighth of the widest log-bounds span:
    // coarse enough that shells stay shallow, fine enough that a
    // bucket holds a small fraction of the sweep.
    let span = log_bounds
        .iter()
        .map(|&(lo, hi)| (hi - lo).abs())
        .fold(0.0f64, f64::max);
    let cell = if span > 0.0 { span / 8.0 } else { 1.0 };
    let mut donor_grid = NeighborGrid::new(cell);
    let mut donor_states: Vec<Vec<Vec<f64>>> = Vec::new();
    let mut atlas_grid = NeighborGrid::new(cell);

    let mut kept = 0usize;
    let mut failed = 0usize;
    let mut start = 0usize;
    while start < n {
        let end = (start + WARM_BLOCK).min(n);
        let block: Vec<(usize, Option<usize>)> = (start..end)
            .map(|i| {
                let donor = if warm_on {
                    donor_grid.nearest(&lnqs[i]).map(|(idx, _)| idx)
                } else {
                    None
                };
                (i, donor)
            })
            .collect();

        let results: Vec<(Option<(T, Vec<Vec<f64>>)>, observe::PointSolveStats)> =
            ExecutorHandle::get().par_map(&block, |_, &(i, donor)| {
                let design =
                    // lint: allow(L001, reason = "Sobol points are scaled into the design bounds before exponentiation")
                    AfDesign::new(kind, qs[i].clone()).expect("Sobol points lie inside the design bounds");
                let _point = tel.profiler().scope_under(fanout_parent, "characterize_point");
                observe::point_window_reset();
                let donor_ref = donor.map(|d| donor_states[d].as_slice());
                let r = simulate(&design, donor_ref);
                (r, observe::point_window_take())
            });

        let mut block_states: Vec<Option<Vec<Vec<f64>>>> = Vec::with_capacity(end - start);
        for (offset, (res, window)) in results.into_iter().enumerate() {
            let i = start + offset;
            if atlas_on {
                // Query-before-insert over *all* earlier points keeps
                // nn_distance bit-identical to the linear scan this
                // grid replaced.
                let nn = atlas_grid.nearest_distance(&lnqs[i]);
                atlas::record(atlas::AtlasPoint::from_window(
                    i as u64,
                    target,
                    kind.name(),
                    qs[i].clone(),
                    &window,
                    nn,
                    res.is_none(),
                ));
                atlas_grid.insert(lnqs[i].clone());
            }
            match res {
                Some((value, states)) => {
                    keep(&qs[i], value);
                    kept += 1;
                    block_states.push(Some(states));
                }
                None => {
                    failed += 1;
                    block_states.push(None);
                }
            }
            emit_progress(tel, target, kind, i, n, failed);
        }

        // Block boundary: publish this block's successes as donors for
        // later blocks (never for siblings within the block).
        if warm_on {
            for (offset, states) in block_states.into_iter().enumerate() {
                if let Some(s) = states {
                    donor_grid.insert(lnqs[start + offset].clone());
                    donor_states.push(s);
                }
            }
        }
        start = end;
    }
    (kept, failed)
}

/// Characterization dataset for one activation kind: design points and
/// their simulated mean power.
#[derive(Debug, Clone)]
pub struct AfPowerDataset {
    /// Activation kind that was characterized.
    pub kind: AfKind,
    /// Sampled design points, one per row (`n × q_dim`).
    pub designs: Matrix,
    /// Simulated mean power per design, in watts.
    pub power: Vec<f64>,
}

impl AfPowerDataset {
    /// Generates `n` Sobol design points for `kind` and simulates each
    /// with a `grid_points`-point input sweep.
    ///
    /// # Errors
    ///
    /// Returns [`SurrogateError::SimulationFailed`] if more than 10 % of
    /// the samples fail to converge, and propagates dimension errors
    /// from the Sobol generator as `NotEnoughData` (cannot happen for
    /// the built-in kinds).
    pub fn generate(kind: AfKind, n: usize, grid_points: usize) -> Result<Self, SurrogateError> {
        Self::generate_traced(kind, n, grid_points, &Telemetry::disabled())
    }

    /// Like [`AfPowerDataset::generate`] but streams `sobol_progress`
    /// debug events (~10 per sweep) and a final `characterization` info
    /// event to a telemetry sink.
    ///
    /// # Errors
    ///
    /// Same failure policy as [`AfPowerDataset::generate`].
    pub fn generate_traced(
        kind: AfKind,
        n: usize,
        grid_points: usize,
        tel: &Telemetry,
    ) -> Result<Self, SurrogateError> {
        let mut prof_scope = tel.profiler().scope("sobol_characterization");
        prof_scope.set_str("target", "power");
        prof_scope.set_u64("samples", n as u64);
        let bounds = kind.bounds();
        let mut sobol =
            SobolSequence::new(bounds.len()).map_err(|_| SurrogateError::NotEnoughData {
                available: 0,
                required: n,
            })?;
        sobol.burn(1); // drop the all-zero origin point

        // Sample resistances and geometry in log space: the feasible
        // ranges span decades and power is roughly log-uniform in them.
        let log_bounds: Vec<(f64, f64)> =
            bounds.iter().map(|&(lo, hi)| (lo.ln(), hi.ln())).collect();
        let raw = sobol.sample_scaled(n, &log_bounds);

        // Blocked fan-out with cross-point warm starting: each block's
        // points run in parallel (pure functions of the Sobol row plus
        // deterministically chosen donor states); compaction runs
        // sequentially in index order, so the dataset stays
        // bit-identical for any thread count.
        let mut designs = Matrix::zeros(n, bounds.len());
        let mut power: Vec<f64> = Vec::with_capacity(n);
        let simulate = |design: &AfDesign, donor: Option<&[Vec<f64>]>| {
            mean_power_with_states(design, grid_points, donor, tel).ok()
        };
        let (kept, failed) = characterize_blocked(
            "power",
            kind,
            n,
            &raw,
            &log_bounds,
            tel,
            &simulate,
            |q, p| {
                designs.row_slice_mut(power.len()).copy_from_slice(q);
                power.push(p);
            },
        );
        tel.emit(|| {
            Event::new("characterization", Level::Info)
                .with_str("target", "power")
                .with_str("kind", kind.name())
                .with_u64("kept", kept as u64)
                .with_u64("failed", failed as u64)
        });
        if failed * 10 > n {
            return Err(SurrogateError::SimulationFailed {
                failed,
                requested: n,
            });
        }
        let designs = designs.submatrix(0, kept, 0, bounds.len());
        Ok(AfPowerDataset {
            kind,
            designs,
            power,
        })
    }

    /// Number of usable samples.
    pub fn len(&self) -> usize {
        self.power.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.power.is_empty()
    }

    /// Splits into `(train, validation)` by taking every `k`-th sample
    /// for validation (Sobol points are space-filling, so striding keeps
    /// both splits representative).
    pub fn split(&self, k: usize) -> (AfPowerDataset, AfPowerDataset) {
        let mut tr_rows = Vec::new();
        let mut va_rows = Vec::new();
        for i in 0..self.len() {
            if k > 0 && i % k == 0 {
                va_rows.push(i);
            } else {
                tr_rows.push(i);
            }
        }
        let pick = |rows: &[usize]| AfPowerDataset {
            kind: self.kind,
            designs: self.designs.select_rows(rows),
            power: rows.iter().map(|&i| self.power[i]).collect(),
        };
        (pick(&tr_rows), pick(&va_rows))
    }
}

/// Characterization dataset for transfer curves: designs and the output
/// voltage at each grid input.
#[derive(Debug, Clone)]
pub struct AfTransferDataset {
    /// Activation kind that was characterized.
    pub kind: AfKind,
    /// Sampled design points (`n × q_dim`).
    pub designs: Matrix,
    /// Input voltage grid shared by all curves.
    pub inputs: Vec<f64>,
    /// One simulated output curve per design (`n × grid`).
    pub outputs: Matrix,
}

impl AfTransferDataset {
    /// Generates `n` Sobol designs and sweeps each over a
    /// `grid_points`-point input grid.
    ///
    /// # Errors
    ///
    /// Same failure policy as [`AfPowerDataset::generate`].
    pub fn generate(kind: AfKind, n: usize, grid_points: usize) -> Result<Self, SurrogateError> {
        Self::generate_traced(kind, n, grid_points, &Telemetry::disabled())
    }

    /// Like [`AfTransferDataset::generate`] but streams `sobol_progress`
    /// debug events and a final `characterization` info event.
    ///
    /// # Errors
    ///
    /// Same failure policy as [`AfPowerDataset::generate`].
    pub fn generate_traced(
        kind: AfKind,
        n: usize,
        grid_points: usize,
        tel: &Telemetry,
    ) -> Result<Self, SurrogateError> {
        let mut prof_scope = tel.profiler().scope("sobol_characterization");
        prof_scope.set_str("target", "transfer");
        prof_scope.set_u64("samples", n as u64);
        let bounds = kind.bounds();
        let mut sobol =
            SobolSequence::new(bounds.len()).map_err(|_| SurrogateError::NotEnoughData {
                available: 0,
                required: n,
            })?;
        sobol.burn(1);
        let log_bounds: Vec<(f64, f64)> =
            bounds.iter().map(|&(lo, hi)| (lo.ln(), hi.ln())).collect();
        let raw = sobol.sample_scaled(n, &log_bounds);
        let inputs = input_grid(grid_points);

        // Same blocked fan-out/ordered-compaction shape as the power
        // dataset: deterministic donor schedule, sequential keep.
        let mut designs = Matrix::zeros(n, bounds.len());
        let mut outputs = Matrix::zeros(n, grid_points);
        let mut kept_rows = 0usize;
        let simulate = |design: &AfDesign, donor: Option<&[Vec<f64>]>| {
            transfer_curve_with_states(design, &inputs, donor, tel).ok()
        };
        let (kept, failed) = characterize_blocked(
            "transfer",
            kind,
            n,
            &raw,
            &log_bounds,
            tel,
            &simulate,
            |q, curve: Vec<f64>| {
                designs.row_slice_mut(kept_rows).copy_from_slice(q);
                outputs.row_slice_mut(kept_rows).copy_from_slice(&curve);
                kept_rows += 1;
            },
        );
        tel.emit(|| {
            Event::new("characterization", Level::Info)
                .with_str("target", "transfer")
                .with_str("kind", kind.name())
                .with_u64("kept", kept as u64)
                .with_u64("failed", failed as u64)
        });
        if failed * 10 > n {
            return Err(SurrogateError::SimulationFailed {
                failed,
                requested: n,
            });
        }
        Ok(AfTransferDataset {
            kind,
            designs: designs.submatrix(0, kept, 0, bounds.len()),
            inputs,
            outputs: outputs.submatrix(0, kept, 0, grid_points),
        })
    }

    /// Number of usable samples.
    pub fn len(&self) -> usize {
        self.designs.rows()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.designs.rows() == 0
    }
}

/// Power curve of a single design over the standard grid (re-export of
/// the SPICE-level routine with dataset-friendly errors).
///
/// # Errors
///
/// Returns [`SurrogateError::SimulationFailed`] when the sweep fails.
pub fn single_power_curve(
    design: &AfDesign,
    grid_points: usize,
) -> Result<(Vec<f64>, Vec<f64>), SurrogateError> {
    let grid = input_grid(grid_points);
    let p = power_curve(design, &grid).map_err(|_| SurrogateError::SimulationFailed {
        failed: 1,
        requested: 1,
    })?;
    Ok((grid, p))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_power_dataset() {
        let ds = AfPowerDataset::generate(AfKind::PRelu, 24, 7).unwrap();
        assert!(ds.len() >= 22, "too many failures: {}", ds.len());
        assert_eq!(ds.designs.cols(), 3);
        assert!(ds.power.iter().all(|&p| p > 0.0 && p < 1e-2));
    }

    #[test]
    fn power_varies_across_designs() {
        let ds = AfPowerDataset::generate(AfKind::PTanh, 16, 5).unwrap();
        let max = ds.power.iter().cloned().fold(0.0f64, f64::max);
        let min = ds.power.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(max / min > 3.0, "power spread too small: {min}..{max}");
    }

    #[test]
    fn split_is_disjoint_and_complete() {
        let ds = AfPowerDataset::generate(AfKind::PRelu, 20, 5).unwrap();
        let (tr, va) = ds.split(5);
        assert_eq!(tr.len() + va.len(), ds.len());
        assert!(va.len() >= ds.len() / 5);
    }

    #[test]
    fn generates_transfer_dataset() {
        let ds = AfTransferDataset::generate(AfKind::PSigmoid, 8, 9).unwrap();
        assert!(ds.len() >= 7);
        assert_eq!(ds.outputs.cols(), 9);
        assert_eq!(ds.inputs.len(), 9);
        // All curves stay within the rails.
        assert!(ds.outputs.min() >= -1.2 && ds.outputs.max() <= 1.2);
    }

    #[test]
    fn traced_generation_emits_progress_and_summary() {
        use pnc_telemetry::{MemorySink, Telemetry};
        use std::sync::Arc;
        let sink = Arc::new(MemorySink::new());
        let tel = Telemetry::with_sink(sink.clone());
        let ds = AfPowerDataset::generate_traced(AfKind::PRelu, 20, 5, &tel).unwrap();

        let progress = sink.events_named("sobol_progress");
        assert!(!progress.is_empty(), "expected sobol_progress events");
        let last = progress.last().unwrap();
        assert_eq!(last.get_u64("done"), Some(20));
        assert_eq!(last.get_u64("total"), Some(20));
        assert_eq!(last.get_str("kind"), Some("p-ReLU"));

        let summary = sink.events_named("characterization");
        assert_eq!(summary.len(), 1);
        assert_eq!(summary[0].get_u64("kept"), Some(ds.len() as u64));
        assert_eq!(summary[0].get_str("target"), Some("power"));
    }

    #[test]
    fn atlas_records_one_point_per_sobol_sample() {
        // Other tests in this binary may run generations concurrently
        // while the collector is enabled, so assertions filter down to
        // this test's own (target, kind) stream.
        atlas::enable();
        let n = 12;
        let ds = AfPowerDataset::generate(AfKind::PSigmoid, n, 5).unwrap();
        atlas::disable();
        assert!(!ds.is_empty());
        let points: Vec<_> = atlas::take()
            .into_iter()
            .filter(|p| p.target == "power" && p.kind == AfKind::PSigmoid.name())
            .collect();
        // Concurrent tests may have run their own sweeps while the
        // collector was live, so the stream can hold interleaved runs;
        // invariants below hold per point and per index regardless.
        assert!(points.len() >= n, "got {} points", points.len());
        for i in 0..n as u64 {
            assert!(points.iter().any(|p| p.index == i), "index {i} missing");
        }
        for p in &points {
            assert!(p.solves >= 1);
            assert!(p.newton_iterations >= p.solves);
            assert_eq!(p.q.len(), AfKind::PSigmoid.bounds().len());
            // A sweep's first point has no already-solved neighbor;
            // later points always do.
            if p.index == 0 {
                assert_eq!(p.nn_distance, -1.0);
            } else {
                assert!(p.nn_distance > 0.0);
            }
        }
        // All points of one activation kind share a sparsity pattern.
        let fp = points[0].fingerprint;
        assert!(fp != 0);
        assert!(points.iter().all(|p| p.fingerprint == fp));
    }

    #[test]
    fn single_power_curve_matches_grid() {
        let d = AfKind::PRelu.default_design();
        let (grid, p) = single_power_curve(&d, 11).unwrap();
        assert_eq!(grid.len(), 11);
        assert_eq!(p.len(), 11);
    }
}
