//! Characterization hardness atlas: per-Sobol-point solver cost,
//! conditioning and neighborhood structure.
//!
//! ROADMAP item 3 (sparse/batched SPICE) rests on three empirical
//! claims: MNA matrices share one sparsity pattern across Sobol
//! points, neighboring points make good warm-starts, and Newton work
//! concentrates in a hard tail. The atlas measures all three. While
//! enabled, [`sampling`](crate::sampling) records one [`AtlasPoint`]
//! per characterized design — its solver cost (from the observatory's
//! per-thread accounting window), its conditioning high-water, its
//! sparsity-pattern fingerprint, and its distance to the nearest
//! *already-recorded* point (computed in the sequential index-ordered
//! compaction pass, so the value is identical for any `--threads`).
//! [`SolverAtlas::rollup`] then answers the three claims with numbers:
//! fingerprint cardinality, distance-vs-iterations correlation, and
//! the per-point iteration tail.

use pnc_spice::observe::PointSolveStats;
use pnc_telemetry::json::{write_escaped, Json};
use pnc_telemetry::{Event, Level};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{LazyLock, Mutex};

// lint: allow(L003, reason = "process-wide atlas collector switch; flipped once per run by the orchestrator")
static ENABLED: AtomicBool = AtomicBool::new(false);
// lint: allow(L003, reason = "process-wide atlas point collector; appended to only by the sequential compaction pass")
static POINTS: LazyLock<Mutex<Vec<AtlasPoint>>> = LazyLock::new(|| Mutex::new(Vec::new()));

/// Starts collecting atlas points (clears any previous collection).
pub fn enable() {
    // lint: allow(L001, reason = "mutex poisoning only follows a recorder panic; nothing to recover")
    POINTS.lock().unwrap().clear();
    ENABLED.store(true, Ordering::Relaxed);
}

/// Stops collecting (collected points survive until [`take`]).
pub fn disable() {
    ENABLED.store(false, Ordering::Relaxed);
}

/// Whether characterization should record atlas points.
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Drains the collected points (collection order — sequential per
/// dataset, datasets in call order).
pub fn take() -> Vec<AtlasPoint> {
    // lint: allow(L001, reason = "mutex poisoning only follows a recorder panic; nothing to recover")
    std::mem::take(&mut *POINTS.lock().unwrap())
}

/// Appends one point (called from the compaction pass of
/// `generate_traced`).
pub(crate) fn record(point: AtlasPoint) {
    // lint: allow(L001, reason = "mutex poisoning only follows a recorder panic; nothing to recover")
    POINTS.lock().unwrap().push(point);
}

/// Distance from `lnq` to its nearest neighbor among `seen`
/// (`-1.0` when no point has been recorded yet — the first point of a
/// sweep has no already-solved neighbor). Retained as the O(n²) oracle
/// for the bucketed [`crate::neighbors::NeighborGrid`] that replaced it
/// on the characterization path.
#[cfg(test)]
pub(crate) fn nearest_distance(seen: &[Vec<f64>], lnq: &[f64]) -> f64 {
    seen.iter()
        .map(|p| crate::neighbors::distance(p, lnq))
        .min_by(f64::total_cmp)
        .unwrap_or(-1.0)
}

/// One characterized Sobol design point.
#[derive(Debug, Clone, PartialEq)]
pub struct AtlasPoint {
    /// Sobol index within its sweep.
    pub index: u64,
    /// Characterization target (`power` or `transfer`).
    pub target: String,
    /// Activation-kind name.
    pub kind: String,
    /// Design vector `q` (linear space).
    pub q: Vec<f64>,
    /// DC solves spent on this point (a full input-grid sweep).
    pub solves: u64,
    /// Newton iterations spent across those solves.
    pub newton_iterations: u64,
    /// Solves that engaged the supply-ramp fallback.
    pub ramp_fallbacks: u64,
    /// Solves that returned an error.
    pub failures: u64,
    /// Largest Jacobian `cond1_estimate` seen (0.0 when the
    /// observatory was not tracing).
    pub max_cond1_estimate: f64, // lint: dimensionless
    /// Sparsity-pattern fingerprint of the point's circuit.
    pub fingerprint: u64,
    /// Whether the point's solves spanned more than one pattern.
    pub multi_fingerprint: bool,
    /// Log-space distance to the nearest already-recorded point of the
    /// same sweep (`-1.0` for the sweep's first point).
    pub nn_distance: f64, // lint: dimensionless
    /// Whether the point's simulation failed (dropped from the
    /// dataset).
    pub failed: bool,
}

impl AtlasPoint {
    /// Builds a point from a solver accounting window.
    pub fn from_window(
        index: u64,
        target: &str,
        kind: &str,
        q: Vec<f64>,
        window: &PointSolveStats,
        nn_distance: f64, // lint: dimensionless
        failed: bool,
    ) -> Self {
        AtlasPoint {
            index,
            target: target.to_string(),
            kind: kind.to_string(),
            q,
            solves: window.solves,
            newton_iterations: window.newton_iterations,
            ramp_fallbacks: window.ramp_fallbacks,
            failures: window.failures,
            max_cond1_estimate: window.max_cond1_estimate,
            fingerprint: window.fingerprint,
            multi_fingerprint: window.multi_fingerprint,
            nn_distance,
            failed,
        }
    }
}

/// Aggregate answers over a set of atlas points.
#[derive(Debug, Clone, PartialEq)]
pub struct AtlasRollup {
    /// Points recorded.
    pub points: u64,
    /// Points whose simulation failed.
    pub failed_points: u64,
    /// Total DC solves.
    pub solves: u64,
    /// Total Newton iterations.
    pub newton_iterations: u64,
    /// Total ramp fallbacks.
    pub ramp_fallbacks: u64,
    /// Total failed solves.
    pub failures: u64,
    /// Median per-point Newton iteration count.
    pub iters_p50: f64, // lint: dimensionless
    /// 95th-percentile per-point Newton iteration count — the hard
    /// tail ROADMAP item 3 asks about.
    pub iters_p95: f64, // lint: dimensionless
    /// Largest per-point Newton iteration count.
    pub iters_max: f64, // lint: dimensionless
    /// Largest `cond1_estimate` across all points.
    pub max_cond1_estimate: f64, // lint: dimensionless
    /// Distinct sparsity-pattern fingerprints (claim: this is 1 per
    /// activation circuit).
    pub fingerprint_cardinality: u64,
    /// Pearson correlation between nearest-neighbor distance and
    /// per-point iterations (claim: positive — closer points are
    /// easier, so neighbors make good warm-starts). 0.0 when
    /// undefined (fewer than two eligible points or zero variance).
    pub distance_iters_correlation: f64, // lint: dimensionless
}

/// Exact nearest-rank percentile of a pre-sorted slice.
fn percentile_sorted(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = (q * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// A collection of atlas points with deterministic aggregation and
/// rendering.
#[derive(Debug, Clone, PartialEq)]
pub struct SolverAtlas {
    /// Recorded points, in collection order.
    pub points: Vec<AtlasPoint>,
}

impl SolverAtlas {
    /// Wraps a drained point collection.
    pub fn new(points: Vec<AtlasPoint>) -> Self {
        SolverAtlas { points }
    }

    /// Computes the aggregate rollup. Pure function of the points, so
    /// byte-stable renders follow from point-order determinism.
    pub fn rollup(&self) -> AtlasRollup {
        let mut r = AtlasRollup {
            points: self.points.len() as u64,
            failed_points: 0,
            solves: 0,
            newton_iterations: 0,
            ramp_fallbacks: 0,
            failures: 0,
            iters_p50: 0.0,
            iters_p95: 0.0,
            iters_max: 0.0,
            max_cond1_estimate: 0.0,
            fingerprint_cardinality: 0,
            distance_iters_correlation: 0.0,
        };
        let mut iters: Vec<f64> = Vec::with_capacity(self.points.len());
        let mut fingerprints: Vec<u64> = Vec::new();
        let mut pairs: Vec<(f64, f64)> = Vec::new();
        for p in &self.points {
            r.failed_points += u64::from(p.failed);
            r.solves += p.solves;
            r.newton_iterations += p.newton_iterations;
            r.ramp_fallbacks += p.ramp_fallbacks;
            r.failures += p.failures;
            r.max_cond1_estimate = r.max_cond1_estimate.max(p.max_cond1_estimate);
            iters.push(p.newton_iterations as f64);
            if p.fingerprint != 0 {
                fingerprints.push(p.fingerprint);
                if p.multi_fingerprint {
                    // A point that saw several patterns contributes at
                    // least one beyond the one it reports.
                    fingerprints.push(p.fingerprint.wrapping_add(1));
                }
            }
            if p.nn_distance >= 0.0 {
                pairs.push((p.nn_distance, p.newton_iterations as f64));
            }
        }
        iters.sort_by(f64::total_cmp);
        r.iters_p50 = percentile_sorted(&iters, 0.50);
        r.iters_p95 = percentile_sorted(&iters, 0.95);
        r.iters_max = iters.last().copied().unwrap_or(0.0);
        fingerprints.sort_unstable();
        fingerprints.dedup();
        r.fingerprint_cardinality = fingerprints.len() as u64;
        r.distance_iters_correlation = pearson(&pairs);
        r
    }

    /// Serializes the atlas (points + rollup) as a JSON document.
    pub fn to_json_string(&self) -> String {
        let mut out = String::with_capacity(256 + 160 * self.points.len());
        out.push_str("{\"schema\":\"solver_atlas\",\"version\":1,\"rollup\":");
        let r = self.rollup();
        out.push_str(&format!(
            "{{\"points\":{},\"failed_points\":{},\"solves\":{},\"newton_iterations\":{},\"ramp_fallbacks\":{},\"failures\":{},\"iters_p50\":{:?},\"iters_p95\":{:?},\"iters_max\":{:?},\"max_cond1_estimate\":{:?},\"fingerprint_cardinality\":{},\"distance_iters_correlation\":{:?}}}",
            r.points,
            r.failed_points,
            r.solves,
            r.newton_iterations,
            r.ramp_fallbacks,
            r.failures,
            r.iters_p50,
            r.iters_p95,
            r.iters_max,
            r.max_cond1_estimate,
            r.fingerprint_cardinality,
            r.distance_iters_correlation,
        ));
        out.push_str(",\"points\":[");
        for (i, p) in self.points.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("{{\"index\":{},\"target\":", p.index));
            write_escaped(&mut out, &p.target);
            out.push_str(",\"kind\":");
            write_escaped(&mut out, &p.kind);
            out.push_str(",\"q\":[");
            for (k, v) in p.q.iter().enumerate() {
                if k > 0 {
                    out.push(',');
                }
                out.push_str(&format!("{v:?}"));
            }
            out.push_str(&format!(
                "],\"solves\":{},\"newton_iterations\":{},\"ramp_fallbacks\":{},\"failures\":{},\"max_cond1_estimate\":{:?},\"fingerprint\":\"{:016x}\",\"multi_fingerprint\":{},\"nn_distance\":{:?},\"failed\":{}}}",
                p.solves,
                p.newton_iterations,
                p.ramp_fallbacks,
                p.failures,
                p.max_cond1_estimate,
                p.fingerprint,
                p.multi_fingerprint,
                p.nn_distance,
                p.failed,
            ));
        }
        out.push_str("]}");
        out
    }

    /// Parses an atlas from the JSON produced by
    /// [`SolverAtlas::to_json_string`]. The rollup is recomputed from
    /// the points (the stored copy is for human readers), so a loaded
    /// atlas renders identically to the one that was saved.
    pub fn from_json(j: &Json) -> Option<SolverAtlas> {
        if j.get("schema").and_then(Json::as_str) != Some("solver_atlas") {
            return None;
        }
        let Json::Arr(items) = j.get("points")? else {
            return None;
        };
        let mut points = Vec::with_capacity(items.len());
        for item in items {
            let f = |k: &str| item.get(k).and_then(Json::as_f64);
            let u = |k: &str| f(k).map(|v| v as u64);
            let q = match item.get("q")? {
                Json::Arr(vs) => vs.iter().map(Json::as_f64).collect::<Option<Vec<_>>>()?,
                _ => return None,
            };
            points.push(AtlasPoint {
                index: u("index")?,
                target: item.get("target")?.as_str()?.to_string(),
                kind: item.get("kind")?.as_str()?.to_string(),
                q,
                solves: u("solves")?,
                newton_iterations: u("newton_iterations")?,
                ramp_fallbacks: u("ramp_fallbacks")?,
                failures: u("failures")?,
                max_cond1_estimate: f("max_cond1_estimate")?,
                fingerprint: u64::from_str_radix(item.get("fingerprint")?.as_str()?, 16).ok()?,
                multi_fingerprint: item.get("multi_fingerprint").and_then(Json::as_bool)?,
                nn_distance: f("nn_distance")?,
                failed: item.get("failed").and_then(Json::as_bool)?,
            });
        }
        Some(SolverAtlas { points })
    }

    /// The `top_k` hardest points: most Newton iterations first, index
    /// (then target/kind) as the deterministic tie-break.
    pub fn hardest(&self, top_k: usize) -> Vec<&AtlasPoint> {
        let mut ranked: Vec<&AtlasPoint> = self.points.iter().collect();
        ranked.sort_by(|a, b| {
            b.newton_iterations
                .cmp(&a.newton_iterations)
                .then(a.index.cmp(&b.index))
                .then(a.target.cmp(&b.target))
                .then(a.kind.cmp(&b.kind))
        });
        ranked.truncate(top_k);
        ranked
    }

    /// Renders the hardness map as a fixed-width text report. Every
    /// number is formatted deterministically, so the output is
    /// byte-identical for any thread count.
    pub fn render(&self, top_k: usize) -> String {
        let r = self.rollup();
        let mut out = String::new();
        out.push_str(&format!(
            "solver atlas · {} points ({} failed)\n",
            r.points, r.failed_points
        ));
        out.push_str(&format!(
            "  work        : {} solves · {} iters (per-point p50 {:.0}, p95 {:.0}, max {:.0})\n",
            r.solves, r.newton_iterations, r.iters_p50, r.iters_p95, r.iters_max
        ));
        out.push_str(&format!(
            "  fallbacks   : {} ramp · {} failed solves\n",
            r.ramp_fallbacks, r.failures
        ));
        out.push_str(&format!(
            "  conditioning: max cond1 {:.3e}\n",
            r.max_cond1_estimate
        ));
        out.push_str(&format!(
            "  patterns    : {} distinct sparsity fingerprint(s)\n",
            r.fingerprint_cardinality
        ));
        out.push_str(&format!(
            "  locality    : distance↔iters correlation {:+.4}\n",
            r.distance_iters_correlation
        ));
        let hardest = self.hardest(top_k);
        if !hardest.is_empty() {
            out.push_str("  hardest points:\n");
            out.push_str(
                "    rank  index  target    kind        iters  solves  max_cond1   nn_dist\n",
            );
            for (rank, p) in hardest.iter().enumerate() {
                out.push_str(&format!(
                    "    {:<4}  {:<5}  {:<8}  {:<10}  {:<5}  {:<6}  {:<9.3e}  {:.4}\n",
                    rank + 1,
                    p.index,
                    p.target,
                    p.kind,
                    p.newton_iterations,
                    p.solves,
                    p.max_cond1_estimate,
                    p.nn_distance,
                ));
            }
        }
        out
    }

    /// Renders the rollup as a `solver_atlas` telemetry event.
    pub fn to_event(&self) -> Event {
        let r = self.rollup();
        Event::new("solver_atlas", Level::Info)
            .with_u64("points", r.points)
            .with_u64("failed_points", r.failed_points)
            .with_u64("solves", r.solves)
            .with_u64("newton_iterations", r.newton_iterations)
            .with_u64("ramp_fallbacks", r.ramp_fallbacks)
            .with_u64("failures", r.failures)
            .with_f64("iters_p50", r.iters_p50)
            .with_f64("iters_p95", r.iters_p95)
            .with_f64("iters_max", r.iters_max)
            .with_f64("max_cond1_estimate", r.max_cond1_estimate)
            .with_u64("fingerprint_cardinality", r.fingerprint_cardinality)
            .with_f64("distance_iters_correlation", r.distance_iters_correlation)
    }
}

/// Pearson correlation coefficient; 0.0 when undefined.
fn pearson(pairs: &[(f64, f64)]) -> f64 {
    let n = pairs.len() as f64;
    if pairs.len() < 2 {
        return 0.0;
    }
    let mean_x = pairs.iter().map(|(x, _)| x).sum::<f64>() / n;
    let mean_y = pairs.iter().map(|(_, y)| y).sum::<f64>() / n;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (x, y) in pairs {
        sxy += (x - mean_x) * (y - mean_y);
        sxx += (x - mean_x) * (x - mean_x);
        syy += (y - mean_y) * (y - mean_y);
    }
    if sxx <= 0.0 || syy <= 0.0 {
        return 0.0;
    }
    sxy / (sxx * syy).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn point(index: u64, iters: u64, nn: f64, fp: u64) -> AtlasPoint {
        AtlasPoint {
            index,
            target: "power".to_string(),
            kind: "p-tanh".to_string(),
            q: vec![1.0e4, 2.0e-4, 4.0e-5],
            solves: 7,
            newton_iterations: iters,
            ramp_fallbacks: 0,
            failures: 0,
            max_cond1_estimate: 1.5e4,
            fingerprint: fp,
            multi_fingerprint: false,
            nn_distance: nn,
            failed: false,
        }
    }

    #[test]
    fn rollup_counts_and_percentiles() {
        let atlas = SolverAtlas::new(vec![
            point(0, 10, -1.0, 0xaa),
            point(1, 20, 0.5, 0xaa),
            point(2, 30, 0.25, 0xaa),
            point(3, 80, 1.5, 0xbb),
        ]);
        let r = atlas.rollup();
        assert_eq!(r.points, 4);
        assert_eq!(r.solves, 28);
        assert_eq!(r.newton_iterations, 140);
        assert_eq!(r.iters_p50, 20.0);
        assert_eq!(r.iters_max, 80.0);
        assert_eq!(r.fingerprint_cardinality, 2);
        // Larger nn_distance ↔ more iterations in this fixture.
        assert!(r.distance_iters_correlation > 0.5);
    }

    #[test]
    fn json_round_trip_preserves_points_and_render() {
        let atlas = SolverAtlas::new(vec![point(0, 10, -1.0, 0xaa), point(1, 25, 0.75, 0xaa)]);
        let text = atlas.to_json_string();
        let parsed = pnc_telemetry::json::parse(&text).expect("atlas JSON parses");
        let back = SolverAtlas::from_json(&parsed).expect("atlas round-trips");
        assert_eq!(back, atlas);
        assert_eq!(back.render(5), atlas.render(5));
    }

    #[test]
    fn hardest_ranks_by_iterations_with_stable_ties() {
        let atlas = SolverAtlas::new(vec![
            point(0, 10, -1.0, 0xaa),
            point(1, 40, 0.5, 0xaa),
            point(2, 40, 0.5, 0xaa),
            point(3, 5, 0.1, 0xaa),
        ]);
        let top: Vec<u64> = atlas.hardest(3).iter().map(|p| p.index).collect();
        assert_eq!(top, vec![1, 2, 0]);
    }

    #[test]
    fn render_is_stable_bytes() {
        let atlas = SolverAtlas::new(vec![point(0, 12, -1.0, 0xaa), point(1, 9, 0.33, 0xaa)]);
        let a = atlas.render(2);
        let b = SolverAtlas::new(atlas.points.clone()).render(2);
        assert_eq!(a, b);
        assert!(a.contains("solver atlas · 2 points"));
        assert!(a.contains("patterns    : 1 distinct"));
    }

    #[test]
    fn collector_round_trip() {
        enable();
        assert!(is_enabled());
        record(point(0, 3, -1.0, 0x1));
        record(point(1, 4, 0.2, 0x1));
        disable();
        let points = take();
        assert_eq!(points.len(), 2);
        assert!(take().is_empty());
    }

    #[test]
    fn pearson_handles_degenerate_inputs() {
        assert_eq!(pearson(&[]), 0.0);
        assert_eq!(pearson(&[(1.0, 2.0)]), 0.0);
        assert_eq!(pearson(&[(1.0, 5.0), (1.0, 7.0)]), 0.0);
        let corr = pearson(&[(0.0, 0.0), (1.0, 1.0), (2.0, 2.0)]);
        assert!((corr - 1.0).abs() < 1e-12);
    }

    #[test]
    fn nearest_distance_is_minimum_log_distance() {
        let seen = vec![vec![0.0, 0.0], vec![3.0, 4.0]];
        assert_eq!(nearest_distance(&[], &[1.0, 1.0]), -1.0);
        let d = nearest_distance(&seen, &[0.0, 1.0]);
        assert!((d - 1.0).abs() < 1e-12);
    }
}
