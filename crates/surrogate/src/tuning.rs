//! Light-weight hyperparameter search for surrogate MLPs.
//!
//! The paper applies "data normalization and hyperparameter tuning" when
//! fitting the surrogates and uses RayTune for the constrained trainer's
//! `μ`. This module is the workspace's RayTune stand-in for the
//! surrogate side: a deterministic grid/random search over MLP settings
//! scored by validation MSE.

use crate::mlp::{Mlp, MlpConfig};
use crate::sampling::AfPowerDataset;
use crate::SurrogateError;
use pnc_linalg::stats::Standardizer;
use pnc_linalg::{rng as lrng, Matrix};

/// One evaluated candidate in a tuning run.
#[derive(Debug, Clone, PartialEq)]
pub struct TuningTrial {
    /// Candidate configuration.
    pub config: MlpConfig,
    /// Validation mean-squared error (standardized log-power space).
    // lint: dimensionless
    pub validation_mse: f64,
}

/// Result of [`tune_mlp`]: all trials plus the winner index.
#[derive(Debug, Clone)]
pub struct TuningReport {
    /// Every evaluated trial, in evaluation order.
    pub trials: Vec<TuningTrial>,
    /// Index of the best trial.
    pub best: usize,
}

impl TuningReport {
    /// The winning configuration.
    pub fn best_config(&self) -> &MlpConfig {
        &self.trials[self.best].config
    }
}

/// Evaluates each candidate architecture on a train/validation split of
/// `ds` and returns the ranked report.
///
/// # Errors
///
/// Returns [`SurrogateError::NotEnoughData`] when the dataset cannot be
/// split, or when `candidates` is empty.
pub fn tune_mlp(
    ds: &AfPowerDataset,
    candidates: &[MlpConfig],
) -> Result<TuningReport, SurrogateError> {
    if candidates.is_empty() {
        return Err(SurrogateError::NotEnoughData {
            available: 0,
            required: 1,
        });
    }
    if ds.len() < 16 {
        return Err(SurrogateError::NotEnoughData {
            available: ds.len(),
            required: 16,
        });
    }
    let (train, val) = ds.split(5);
    let prep = |d: &AfPowerDataset, scaler: &Standardizer, ym: f64, ys: f64| {
        let x = scaler.transform(&d.designs.map(f64::ln));
        let y = Matrix::from_vec(
            d.power.len(),
            1,
            d.power.iter().map(|&p| (p.log10() - ym) / ys).collect(),
        );
        (x, y)
    };
    let scaler = Standardizer::fit(&train.designs.map(f64::ln));
    let logs: Vec<f64> = train.power.iter().map(|&p| p.log10()).collect();
    let ym = pnc_linalg::stats::mean(&logs);
    let ys = pnc_linalg::stats::std_dev(&logs).max(1e-9);
    let (xtr, ytr) = prep(&train, &scaler, ym, ys);
    let (xva, yva) = prep(&val, &scaler, ym, ys);

    let mut trials = Vec::with_capacity(candidates.len());
    for cfg in candidates {
        let mut rng = lrng::seeded(cfg.seed);
        let mut mlp = Mlp::new(xtr.cols(), &cfg.hidden, 1, &mut rng);
        mlp.train(&xtr, &ytr, cfg);
        trials.push(TuningTrial {
            config: cfg.clone(),
            validation_mse: mlp.mse(&xva, &yva),
        });
    }
    let best = trials
        .iter()
        .enumerate()
        .min_by(|a, b| a.1.validation_mse.total_cmp(&b.1.validation_mse))
        .map(|(i, _)| i)
        .unwrap_or(0);
    Ok(TuningReport { trials, best })
}

/// A small default candidate grid (width × depth × learning rate).
pub fn default_candidates() -> Vec<MlpConfig> {
    let mut out = Vec::new();
    for hidden in [vec![16, 16], vec![32, 32, 32], vec![24; 6]] {
        for &lr in &[1e-3, 5e-3] {
            out.push(MlpConfig {
                hidden: hidden.clone(),
                lr,
                epochs: 200,
                ..MlpConfig::default()
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pnc_spice::AfKind;

    #[test]
    fn tuning_picks_finite_best() {
        let ds = AfPowerDataset::generate(AfKind::PRelu, 48, 5).unwrap();
        let candidates = vec![
            MlpConfig {
                hidden: vec![8],
                epochs: 100,
                lr: 5e-3,
                ..MlpConfig::default()
            },
            MlpConfig {
                hidden: vec![16, 16],
                epochs: 100,
                lr: 5e-3,
                ..MlpConfig::default()
            },
        ];
        let report = tune_mlp(&ds, &candidates).unwrap();
        assert_eq!(report.trials.len(), 2);
        assert!(report.trials[report.best].validation_mse.is_finite());
        assert!(
            report.trials[report.best].validation_mse
                <= report.trials[1 - report.best].validation_mse
        );
    }

    #[test]
    fn empty_candidates_is_error() {
        let ds = AfPowerDataset::generate(AfKind::PRelu, 20, 5).unwrap();
        assert!(tune_mlp(&ds, &[]).is_err());
    }

    #[test]
    fn default_grid_is_nonempty() {
        assert!(default_candidates().len() >= 4);
    }
}
