//! Plain-text persistence for fitted surrogate models.
//!
//! Paper-scale surrogate fitting costs minutes to hours (10,000 SPICE
//! samples per activation); nobody wants to pay that per process.
//! This module serializes fitted [`PowerSurrogate`]s and
//! [`TransferModel`]s to a simple line-oriented text format (no external
//! serialization crates — see DESIGN.md §6) and restores them exactly:
//! round-tripped models produce bit-identical predictions.
//!
//! Format: `key value…` lines; vectors are space-separated with full
//! hex-float precision (`f64::to_bits` as hex) so round-trips are exact.

use crate::error::SurrogateError;
use crate::mlp::Mlp;
use crate::power_model::PowerSurrogate;
use crate::transfer::TransferModel;
use pnc_linalg::stats::Standardizer;
use pnc_spice::AfKind;

fn kind_name(kind: AfKind) -> &'static str {
    match kind {
        AfKind::PRelu => "p-relu",
        AfKind::PClippedRelu => "p-clipped-relu",
        AfKind::PSigmoid => "p-sigmoid",
        AfKind::PTanh => "p-tanh",
    }
}

fn kind_from_name(name: &str) -> Result<AfKind, SurrogateError> {
    match name {
        "p-relu" => Ok(AfKind::PRelu),
        "p-clipped-relu" => Ok(AfKind::PClippedRelu),
        "p-sigmoid" => Ok(AfKind::PSigmoid),
        "p-tanh" => Ok(AfKind::PTanh),
        other => Err(SurrogateError::FitDiverged {
            context: format!("unknown activation kind '{other}' in model file"),
        }),
    }
}

fn write_floats(out: &mut String, key: &str, values: &[f64]) {
    out.push_str(key);
    for v in values {
        out.push(' ');
        out.push_str(&format!("{:016x}", v.to_bits()));
    }
    out.push('\n');
}

fn write_usizes(out: &mut String, key: &str, values: &[usize]) {
    out.push_str(key);
    for v in values {
        out.push(' ');
        out.push_str(&v.to_string());
    }
    out.push('\n');
}

/// One parsed `key value…` line.
struct Line<'a> {
    key: &'a str,
    rest: Vec<&'a str>,
}

fn parse_lines(text: &str) -> Vec<Line<'_>> {
    text.lines()
        .filter(|l| !l.trim().is_empty() && !l.starts_with('#'))
        .map(|l| {
            let mut it = l.split_whitespace();
            let key = it.next().unwrap_or("");
            Line {
                key,
                rest: it.collect(),
            }
        })
        .collect()
}

fn find<'a, 'b>(lines: &'a [Line<'b>], key: &str) -> Result<&'a Line<'b>, SurrogateError> {
    lines
        .iter()
        .find(|l| l.key == key)
        .ok_or_else(|| SurrogateError::FitDiverged {
            context: format!("missing '{key}' in model file"),
        })
}

fn floats(line: &Line<'_>) -> Result<Vec<f64>, SurrogateError> {
    line.rest
        .iter()
        .map(|s| {
            u64::from_str_radix(s, 16).map(f64::from_bits).map_err(|_| {
                SurrogateError::FitDiverged {
                    context: format!("bad float field '{s}'"),
                }
            })
        })
        .collect()
}

fn usizes(line: &Line<'_>) -> Result<Vec<usize>, SurrogateError> {
    line.rest
        .iter()
        .map(|s| {
            s.parse().map_err(|_| SurrogateError::FitDiverged {
                context: format!("bad integer field '{s}'"),
            })
        })
        .collect()
}

/// Serializes a fitted power surrogate.
pub fn power_to_string(model: &PowerSurrogate) -> String {
    let (kind, scaler, mlp, y_mean, y_std, r2) = model.parts();
    let mut out = String::from("# pnc power surrogate v1\n");
    out.push_str(&format!("kind {}\n", kind_name(kind)));
    write_floats(&mut out, "x_mean", scaler.mean());
    write_floats(&mut out, "x_std", scaler.std());
    write_floats(&mut out, "y_stats", &[y_mean, y_std, r2]);
    write_usizes(&mut out, "mlp_dims", &mlp.dims());
    write_floats(&mut out, "mlp_flat", &mlp.to_flat());
    out
}

/// Restores a power surrogate written by [`power_to_string`].
///
/// # Errors
///
/// Returns [`SurrogateError::FitDiverged`] with context on any format
/// problem.
pub fn power_from_string(text: &str) -> Result<PowerSurrogate, SurrogateError> {
    let lines = parse_lines(text);
    let kind = kind_from_name(
        find(&lines, "kind")?
            .rest
            .first()
            .copied()
            .unwrap_or_default(),
    )?;
    let x_mean = floats(find(&lines, "x_mean")?)?;
    let x_std = floats(find(&lines, "x_std")?)?;
    let y = floats(find(&lines, "y_stats")?)?;
    if y.len() != 3 {
        return Err(SurrogateError::FitDiverged {
            context: "y_stats must have 3 fields".to_string(),
        });
    }
    let dims = usizes(find(&lines, "mlp_dims")?)?;
    let flat = floats(find(&lines, "mlp_flat")?)?;
    let mlp = Mlp::from_flat(&dims, &flat);
    let scaler = Standardizer::from_parts(x_mean, x_std);
    Ok(PowerSurrogate::from_parts(
        kind, scaler, mlp, y[0], y[1], y[2],
    ))
}

/// Serializes a fitted transfer surrogate.
pub fn transfer_to_string(model: &TransferModel) -> String {
    let (kind, scaler, mlp, coef_mean, coef_std, rmse) = model.parts();
    let mut out = String::from("# pnc transfer surrogate v1\n");
    out.push_str(&format!("kind {}\n", kind_name(kind)));
    write_floats(&mut out, "x_mean", scaler.mean());
    write_floats(&mut out, "x_std", scaler.std());
    write_floats(&mut out, "coef_mean", &coef_mean);
    write_floats(&mut out, "coef_std", &coef_std);
    write_floats(&mut out, "rmse", &[rmse]);
    write_usizes(&mut out, "mlp_dims", &mlp.dims());
    write_floats(&mut out, "mlp_flat", &mlp.to_flat());
    out
}

/// Restores a transfer surrogate written by [`transfer_to_string`].
///
/// # Errors
///
/// Returns [`SurrogateError::FitDiverged`] with context on any format
/// problem.
pub fn transfer_from_string(text: &str) -> Result<TransferModel, SurrogateError> {
    let lines = parse_lines(text);
    let kind = kind_from_name(
        find(&lines, "kind")?
            .rest
            .first()
            .copied()
            .unwrap_or_default(),
    )?;
    let x_mean = floats(find(&lines, "x_mean")?)?;
    let x_std = floats(find(&lines, "x_std")?)?;
    let cm = floats(find(&lines, "coef_mean")?)?;
    let cs = floats(find(&lines, "coef_std")?)?;
    if cm.len() != 4 || cs.len() != 4 {
        return Err(SurrogateError::FitDiverged {
            context: "coef stats must have 4 fields".to_string(),
        });
    }
    let rmse = floats(find(&lines, "rmse")?)?
        .first()
        .copied()
        .unwrap_or(f64::NAN);
    let dims = usizes(find(&lines, "mlp_dims")?)?;
    let flat = floats(find(&lines, "mlp_flat")?)?;
    let mlp = Mlp::from_flat(&dims, &flat);
    let scaler = Standardizer::from_parts(x_mean, x_std);
    Ok(TransferModel::from_parts(
        kind,
        scaler,
        mlp,
        [cm[0], cm[1], cm[2], cm[3]],
        [cs[0], cs[1], cs[2], cs[3]],
        rmse,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::power_model::PowerSurrogateConfig;
    use crate::transfer::fit_transfer;
    use pnc_linalg::Matrix;

    #[test]
    fn power_roundtrip_is_exact() {
        let model = PowerSurrogate::fit(AfKind::PRelu, &PowerSurrogateConfig::smoke()).unwrap();
        let text = power_to_string(&model);
        let restored = power_from_string(&text).unwrap();
        let d = AfKind::PRelu.default_design();
        assert_eq!(model.predict(d.q()), restored.predict(d.q()));
        assert_eq!(model.validation_r2(), restored.validation_r2());
        assert_eq!(model.kind(), restored.kind());
    }

    #[test]
    fn transfer_roundtrip_is_exact() {
        let model = fit_transfer(AfKind::PTanh, 12, 9).unwrap();
        let text = transfer_to_string(&model);
        let restored = transfer_from_string(&text).unwrap();
        let d = AfKind::PTanh.default_design();
        let v = Matrix::row(&[-0.5, 0.0, 0.5]);
        assert_eq!(
            model.eval(&v, d.q()).as_slice(),
            restored.eval(&v, d.q()).as_slice()
        );
        assert_eq!(model.fit_rmse(), restored.fit_rmse());
    }

    #[test]
    fn corrupted_files_are_rejected_with_context() {
        let model = PowerSurrogate::fit(AfKind::PRelu, &PowerSurrogateConfig::smoke()).unwrap();
        let text = power_to_string(&model);

        let missing_key = text.replace("x_mean", "x_nope");
        let e = power_from_string(&missing_key).unwrap_err();
        assert!(e.to_string().contains("x_mean"), "{e}");

        let bad_kind = text.replace("p-relu", "p-gelu");
        let e = power_from_string(&bad_kind).unwrap_err();
        assert!(e.to_string().contains("p-gelu"), "{e}");
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let model = PowerSurrogate::fit(AfKind::PRelu, &PowerSurrogateConfig::smoke()).unwrap();
        let text = format!("# header\n\n{}\n# trailer\n", power_to_string(&model));
        assert!(power_from_string(&text).is_ok());
    }
}
