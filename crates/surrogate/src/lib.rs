//! # pnc-surrogate
//!
//! Data-driven surrogate models of printed-circuit behaviour, built the
//! way the paper builds them (Sec. III-A):
//!
//! 1. sample activation-circuit design points `q = [R, W, L]` from the
//!    feasible space `ℚ^AF` with a **Sobol sequence**,
//! 2. simulate each with the SPICE-level solver (`pnc-spice`),
//! 3. normalize and fit an **MLP regressor** (the paper's "15-layer
//!    ANN") mapping `q → 𝒫^AF` — the mean power of the circuit.
//!
//! Two surrogate families are provided:
//!
//! * [`PowerSurrogate`] — the differentiable power model `𝒫^AF(q)` used
//!   inside the power-constrained training objective. It can be
//!   evaluated both on plain data ([`PowerSurrogate::predict`]) and on
//!   an autodiff tape ([`PowerSurrogate::predict_on_tape`]) so that
//!   gradients flow into the learnable design vector `q`.
//! * [`TransferModel`] — a physics-shaped transfer surrogate
//!   `V_out = o(q) + s(q) · h(g(q) · (V − c(q)))` with per-kind base
//!   nonlinearity `h` and coefficients linear in log-features of `q`,
//!   fitted to SPICE sweeps. This is what the printed neuron uses as its
//!   differentiable activation function.
//!
//! The crate also fits the standard-cell negation circuit
//! ([`fit_negation`]) and exposes its mean power ([`NegationModel`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod atlas;
pub mod error;
pub mod mlp;
pub mod negation;
pub(crate) mod neighbors;
pub mod persist;
pub mod power_model;
pub mod sampling;
pub mod transfer;
pub mod tuning;

pub use atlas::{AtlasPoint, AtlasRollup, SolverAtlas};
pub use error::SurrogateError;
pub use mlp::{Mlp, MlpConfig, TrainReport};
pub use negation::{fit_negation, NegationModel};
pub use power_model::{PowerSurrogate, PowerSurrogateConfig};
pub use sampling::{AfPowerDataset, AfTransferDataset};
pub use transfer::{fit_transfer, fit_transfer_with, BaseShape, TransferModel};
