//! Differentiable transfer surrogates `V_out = T(V_in; q)` for the
//! printed activation circuits.
//!
//! Each AF family gets a physics-shaped template
//!
//! ```text
//! T(V; q) = o(q) + s(q) · h( g(q) · (V − c(q)) )
//! ```
//!
//! with a fixed base nonlinearity `h` per kind (softplus for the
//! unbounded p-ReLU, sigmoid for the saturating p-Clipped_ReLU and
//! p-sigmoid, tanh for p-tanh) and four coefficients — offset `o`,
//! swing `s`, gain `g`, centre `c` — that depend on the design vector
//! `q` through a small coefficient MLP over standardized log features
//! (the dependence mixes products of resistances and bias currents, so
//! it is strongly nonlinear in `ln q`). Fitting happens in two stages,
//! both against SPICE ground truth:
//!
//! 1. per-design Gauss–Newton fit of `(o, s, g, c)` to the simulated
//!    sweep, then
//! 2. regression of the four coefficients onto `ln q` with an MLP.
//!
//! The result is cheap, smooth in both `V` and `q`, and exactly
//! representable on the autodiff tape — which is what lets the trainer
//! learn activation hardware jointly with the crossbar weights.

use crate::error::SurrogateError;
use crate::mlp::{Mlp, MlpConfig};
use crate::sampling::AfTransferDataset;
use pnc_autodiff::{Tape, Var};
use pnc_linalg::decomp::Lu;
use pnc_linalg::stats::Standardizer;
use pnc_linalg::{rng as lrng, Matrix};
use pnc_spice::AfKind;
use pnc_telemetry::Telemetry;

/// Base nonlinearity of the transfer template.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BaseShape {
    /// `ln(1 + eˣ)` — unbounded above, flat below (p-ReLU).
    Softplus,
    /// `1/(1+e⁻ˣ)` — saturates both ends (p-Clipped_ReLU, p-sigmoid).
    Sigmoid,
    /// `tanh x` — symmetric saturation (p-tanh).
    Tanh,
}

impl BaseShape {
    /// Canonical shape for an activation kind.
    pub fn for_kind(kind: AfKind) -> BaseShape {
        match kind {
            AfKind::PRelu => BaseShape::Softplus,
            AfKind::PClippedRelu | AfKind::PSigmoid => BaseShape::Sigmoid,
            AfKind::PTanh => BaseShape::Tanh,
        }
    }

    fn eval(self, x: f64) -> f64 {
        match self {
            BaseShape::Softplus => {
                if x > 30.0 {
                    x
                } else {
                    x.exp().ln_1p()
                }
            }
            BaseShape::Sigmoid => 1.0 / (1.0 + (-x).exp()),
            BaseShape::Tanh => x.tanh(),
        }
    }

    fn apply_on_tape(self, tape: &mut Tape, x: Var) -> Var {
        match self {
            BaseShape::Softplus => tape.softplus(x),
            BaseShape::Sigmoid => tape.sigmoid(x),
            BaseShape::Tanh => tape.tanh(x),
        }
    }
}

/// Template evaluation with raw coefficients.
fn template(shape: BaseShape, o: f64, s: f64, g: f64, c: f64, v: f64) -> f64 {
    o + s * shape.eval(g * (v - c))
}

/// Gauss–Newton fit of `(o, s, ln g, c)` for a single simulated curve.
///
/// `g` is parameterized through its logarithm to stay positive; `s` may
/// take either sign (the negation circuit uses a falling curve).
///
/// # Errors
///
/// Returns [`SurrogateError::FitDiverged`] when the residual fails to
/// become finite.
pub(crate) fn fit_curve(
    shape: BaseShape,
    inputs: &[f64],
    targets: &[f64],
    init: [f64; 4],
) -> Result<[f64; 4], SurrogateError> {
    let n = inputs.len();
    let mut p = init; // [o, s, ln g, c]
    let mut lambda = 1e-3;

    let residuals = |p: &[f64; 4]| -> Vec<f64> {
        let g = p[2].exp();
        inputs
            .iter()
            .zip(targets)
            .map(|(&v, &y)| template(shape, p[0], p[1], g, p[3], v) - y)
            .collect()
    };
    let sse = |r: &[f64]| r.iter().map(|x| x * x).sum::<f64>();

    let mut r = residuals(&p);
    let mut best = sse(&r);

    for _ in 0..80 {
        // Numeric Jacobian (n × 4).
        let mut jac = Matrix::zeros(n, 4);
        for k in 0..4 {
            let h = 1e-6 * p[k].abs().max(1e-3);
            let mut pp = p;
            pp[k] += h;
            let rp = residuals(&pp);
            for i in 0..n {
                jac[(i, k)] = (rp[i] - r[i]) / h;
            }
        }
        // Levenberg step: (JᵀJ + λI) δ = −Jᵀ r
        // lint: allow(L001, reason = "J is built with matching row counts two lines above")
        let jtj = jac.t_matmul(&jac).expect("JᵀJ");
        let jtr: Vec<f64> = (0..4)
            .map(|k| (0..n).map(|i| jac[(i, k)] * r[i]).sum::<f64>())
            .collect();
        let mut a = jtj.clone();
        for k in 0..4 {
            a[(k, k)] += lambda * (1.0 + jtj[(k, k)]);
        }
        let rhs: Vec<f64> = jtr.iter().map(|x| -x).collect();
        let delta = match Lu::new(&a).and_then(|lu| lu.solve(&rhs)) {
            Ok(d) => d,
            Err(_) => {
                lambda *= 10.0;
                continue;
            }
        };
        let mut cand = p;
        for k in 0..4 {
            cand[k] += delta[k];
        }
        // Keep ln g in a sane band to avoid overflow.
        cand[2] = cand[2].clamp(-6.0, 8.0);
        let rc = residuals(&cand);
        let sc = sse(&rc);
        if sc.is_finite() && sc < best {
            p = cand;
            r = rc;
            best = sc;
            lambda = (lambda * 0.5).max(1e-12);
        } else {
            lambda *= 4.0;
            if lambda > 1e8 {
                break;
            }
        }
    }

    if !best.is_finite() {
        return Err(SurrogateError::FitDiverged {
            context: "curve fit produced non-finite residual".to_string(),
        });
    }
    Ok(p)
}

/// Heuristic initialization of `(o, s, ln g, c)` from a curve.
pub(crate) fn init_from_curve(shape: BaseShape, inputs: &[f64], y: &[f64]) -> [f64; 4] {
    let n = y.len();
    let ymin = y.iter().cloned().fold(f64::INFINITY, f64::min);
    let ymax = y.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    // Centre: steepest point.
    let mut arg = 0usize;
    let mut steep = 0.0f64;
    for i in 0..n - 1 {
        let sl = (y[i + 1] - y[i]).abs() / (inputs[i + 1] - inputs[i]).abs().max(1e-12);
        if sl > steep {
            steep = sl;
            arg = i;
        }
    }
    let c = inputs[arg];
    let rising = y[n - 1] >= y[0];
    let swing = (ymax - ymin).max(1e-3);
    match shape {
        BaseShape::Softplus => {
            // o ≈ left tail; slope of the linear region ≈ s·g.
            let s = steep.max(1e-3);
            [ymin, if rising { s } else { -s }, (4.0f64).ln(), c]
        }
        BaseShape::Sigmoid => {
            // Peak slope of s·σ(g(v−c)) is s·g/4.
            let s = if rising { swing } else { -swing };
            let g = (4.0 * steep / swing).max(0.5);
            [if rising { ymin } else { ymax }, s, g.ln(), c]
        }
        BaseShape::Tanh => {
            let s = if rising { swing / 2.0 } else { -swing / 2.0 };
            let g = (steep / (swing / 2.0).max(1e-9)).max(0.5);
            [(ymin + ymax) / 2.0, s, g.ln(), c]
        }
    }
}

/// A fitted transfer surrogate for one activation kind.
#[derive(Debug, Clone)]
pub struct TransferModel {
    kind: AfKind,
    shape: BaseShape,
    /// Standardizer over `ln q` inputs.
    scaler: Standardizer,
    /// Coefficient regressor: standardized `ln q` → standardized
    /// `(o, s, ln g, c)`.
    mlp: Mlp,
    /// Output de-standardization: means of the four coefficients.
    coef_mean: [f64; 4],
    /// Output de-standardization: standard deviations.
    coef_std: [f64; 4],
    /// Root-mean-square fit error against the SPICE curves (volts).
    fit_rmse: f64,
}

impl TransferModel {
    /// The activation kind this model covers.
    pub fn kind(&self) -> AfKind {
        self.kind
    }

    /// The base nonlinearity.
    pub fn shape(&self) -> BaseShape {
        self.shape
    }

    /// RMSE against the SPICE sweeps at fit time (volts).
    pub fn fit_rmse(&self) -> f64 {
        self.fit_rmse
    }

    /// Decomposes into parts for persistence:
    /// `(kind, scaler, mlp, coef_mean, coef_std, fit_rmse)`.
    pub fn parts(&self) -> (AfKind, &Standardizer, &Mlp, [f64; 4], [f64; 4], f64) {
        (
            self.kind,
            &self.scaler,
            &self.mlp,
            self.coef_mean,
            self.coef_std,
            self.fit_rmse,
        )
    }

    /// Rebuilds a transfer surrogate from persisted parts (see
    /// [`crate::persist`]).
    ///
    /// # Panics
    ///
    /// Panics when the scaler or MLP widths disagree with the kind.
    pub fn from_parts(
        kind: AfKind,
        scaler: Standardizer,
        mlp: Mlp,
        coef_mean: [f64; 4],
        coef_std: [f64; 4],
        fit_rmse_volts: f64,
    ) -> Self {
        assert_eq!(scaler.mean().len(), kind.dim(), "scaler width mismatch");
        assert_eq!(mlp.input_dim(), kind.dim(), "mlp input width mismatch");
        assert_eq!(mlp.output_dim(), 4, "coefficient MLP must output 4 values");
        TransferModel {
            kind,
            shape: BaseShape::for_kind(kind),
            scaler,
            mlp,
            coef_mean,
            coef_std,
            fit_rmse: fit_rmse_volts,
        }
    }

    /// Evaluates the four coefficients `(o, s, g, c)` for a design `q`.
    ///
    /// # Panics
    ///
    /// Panics when `q.len()` differs from the kind's design dimension.
    pub fn coefficients(&self, q: &[f64]) -> (f64, f64, f64, f64) {
        assert_eq!(q.len(), self.kind.dim(), "coefficients: dim mismatch");
        let x_raw = Matrix::from_vec(1, q.len(), q.iter().map(|&v| v.ln()).collect());
        let x = self.scaler.transform(&x_raw);
        let out = self.mlp.forward(&x);
        let de = |k: usize| out[(0, k)] * self.coef_std[k] + self.coef_mean[k];
        (de(0), de(1), de(2).exp(), de(3))
    }

    /// Plain evaluation of the transfer at inputs `v` for design `q`.
    pub fn eval(&self, v: &Matrix, q: &[f64]) -> Matrix {
        let (o, s, g, c) = self.coefficients(q);
        v.map(|x| template(self.shape, o, s, g, c, x))
    }

    /// Tape evaluation: `v` is any `m × n` node (pre-activation
    /// voltages), `q_var` a `1 × q_dim` node of physical design values.
    /// Gradients flow into both.
    pub fn eval_on_tape(&self, tape: &mut Tape, v: Var, q_var: Var) -> Var {
        assert_eq!(
            tape.shape(q_var),
            (1, self.kind.dim()),
            "eval_on_tape: q must be 1 × {}",
            self.kind.dim()
        );
        // Standardized log features.
        let logq = tape.ln(q_var);
        let neg_mean = tape.constant(Matrix::from_vec(
            1,
            self.scaler.mean().len(),
            self.scaler.mean().iter().map(|&m| -m).collect(),
        ));
        let inv_std = tape.constant(Matrix::from_vec(
            1,
            self.scaler.std().len(),
            self.scaler.std().iter().map(|&s| 1.0 / s).collect(),
        ));
        let x = tape.add_row(logq, neg_mean);
        let x = tape.mul_row(x, inv_std);
        let coefs = self.mlp.forward_on_tape(tape, x); // 1 × 4 standardized

        // De-standardize and slice out the four scalars.
        let pick = |tape: &mut Tape, idx: usize| -> Var {
            let mut mask = Matrix::zeros(1, 4);
            mask[(0, idx)] = 1.0;
            let m = tape.mul_const(coefs, &mask);
            let raw = tape.sum_all(m);
            let scaled = tape.mul_scalar(raw, self.coef_std[idx]);
            tape.add_scalar(scaled, self.coef_mean[idx])
        };
        let o = pick(tape, 0);
        let s = pick(tape, 1);
        let lng = pick(tape, 2);
        let c = pick(tape, 3);
        let g = tape.exp(lng);

        let neg_c = tape.mul_scalar(c, -1.0);
        let centered = tape.shift_by(v, neg_c);
        let scaled = tape.scale_by(centered, g);
        let h = self.shape.apply_on_tape(tape, scaled);
        let swung = tape.scale_by(h, s);
        tape.shift_by(swung, o)
    }
}

/// MLP settings used by [`fit_transfer`] for the coefficient regressor.
fn coef_mlp_config() -> MlpConfig {
    MlpConfig {
        hidden: vec![24, 24],
        lr: 5e-3,
        epochs: 600,
        batch_size: 0,
        seed: 11,
    }
}

/// Fits a [`TransferModel`] for `kind` from `n` Sobol-sampled SPICE
/// sweeps over a `grid_points` input grid.
///
/// # Errors
///
/// Propagates sampling and per-curve fit errors; returns
/// [`SurrogateError::NotEnoughData`] for fewer than 8 usable curves.
pub fn fit_transfer(
    kind: AfKind,
    n: usize,
    grid_points: usize,
) -> Result<TransferModel, SurrogateError> {
    fit_transfer_with(kind, n, grid_points, &Telemetry::disabled())
}

/// Like [`fit_transfer`] but streams `sobol_progress` /
/// `characterization` events from the SPICE sweep to a telemetry sink.
///
/// # Errors
///
/// Same failure modes as [`fit_transfer`].
pub fn fit_transfer_with(
    kind: AfKind,
    n: usize,
    grid_points: usize,
    tel: &Telemetry,
) -> Result<TransferModel, SurrogateError> {
    let ds = AfTransferDataset::generate_traced(kind, n, grid_points, tel)?;
    fit_transfer_from_dataset(&ds)
}

/// Fits a [`TransferModel`] from an existing transfer dataset.
///
/// # Errors
///
/// Same conditions as [`fit_transfer`].
pub fn fit_transfer_from_dataset(ds: &AfTransferDataset) -> Result<TransferModel, SurrogateError> {
    let m = ds.len();
    if m < 8 {
        return Err(SurrogateError::NotEnoughData {
            available: m,
            required: 8,
        });
    }
    let shape = BaseShape::for_kind(ds.kind);

    // Stage 1: per-curve coefficient fits. Each Gauss–Newton fit is a
    // pure deterministic function of one curve, so the executor fans
    // them out; errors resolve to the lowest failing index regardless
    // of scheduling, matching the sequential `?` behaviour.
    let indices: Vec<usize> = (0..m).collect();
    let fitted = pnc_parallel::ExecutorHandle::get().par_try_map(&indices, |_, &i| {
        let y = ds.outputs.row_slice(i);
        let init = init_from_curve(shape, &ds.inputs, y);
        fit_curve(shape, &ds.inputs, y, init)
    })?;
    let mut coef = Matrix::zeros(m, 4);
    for (i, p) in fitted.iter().enumerate() {
        coef.row_slice_mut(i).copy_from_slice(p);
    }

    // Stage 2: regress standardized coefficients on standardized ln q.
    let scaler = Standardizer::fit(&ds.designs.map(f64::ln));
    let x = scaler.transform(&ds.designs.map(f64::ln));
    let coef_scaler = Standardizer::fit(&coef);
    let y = coef_scaler.transform(&coef);
    let cfg = coef_mlp_config();
    let mut rng = lrng::seeded(cfg.seed);
    let mut mlp = Mlp::new(x.cols(), &cfg.hidden, 4, &mut rng);
    mlp.train(&x, &y, &cfg);

    let mut cm = [0.0; 4];
    let mut cs = [0.0; 4];
    cm.copy_from_slice(&coef_scaler.mean()[..4]);
    cs.copy_from_slice(&coef_scaler.std()[..4]);

    let mut model = TransferModel {
        kind: ds.kind,
        shape,
        scaler,
        mlp,
        coef_mean: cm,
        coef_std: cs,
        fit_rmse: 0.0,
    };

    // Fit quality against the raw SPICE curves.
    let mut sse = 0.0;
    let mut count = 0usize;
    let vgrid = Matrix::row(&ds.inputs);
    for i in 0..m {
        let pred = model.eval(&vgrid, ds.designs.row_slice(i));
        for (j, &y) in ds.outputs.row_slice(i).iter().enumerate() {
            let e = pred[(0, j)] - y;
            sse += e * e;
            count += 1;
        }
    }
    model.fit_rmse = (sse / count as f64).sqrt();
    Ok(model)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pnc_spice::af::transfer_curve;
    use pnc_spice::AfKind;

    #[test]
    fn fit_curve_recovers_synthetic_tanh() {
        let inputs: Vec<f64> = (0..41).map(|i| -1.0 + i as f64 / 20.0).collect();
        let truth = [0.1, 0.6, (3.0f64).ln(), -0.2];
        let y: Vec<f64> = inputs
            .iter()
            .map(|&v| {
                template(
                    BaseShape::Tanh,
                    truth[0],
                    truth[1],
                    truth[2].exp(),
                    truth[3],
                    v,
                )
            })
            .collect();
        let init = init_from_curve(BaseShape::Tanh, &inputs, &y);
        let p = fit_curve(BaseShape::Tanh, &inputs, &y, init).unwrap();
        assert!((p[0] - truth[0]).abs() < 1e-4, "o: {p:?}");
        assert!((p[1] - truth[1]).abs() < 1e-4, "s: {p:?}");
        assert!((p[2] - truth[2]).abs() < 1e-3, "ln g: {p:?}");
        assert!((p[3] - truth[3]).abs() < 1e-4, "c: {p:?}");
    }

    #[test]
    fn fit_curve_recovers_synthetic_sigmoid_falling() {
        let inputs: Vec<f64> = (0..41).map(|i| -1.0 + i as f64 / 20.0).collect();
        // Falling curve: s < 0 (like the negation circuit).
        let y: Vec<f64> = inputs
            .iter()
            .map(|&v| template(BaseShape::Sigmoid, 0.9, -1.7, 5.0, 0.1, v))
            .collect();
        let init = init_from_curve(BaseShape::Sigmoid, &inputs, &y);
        let p = fit_curve(BaseShape::Sigmoid, &inputs, &y, init).unwrap();
        let check: Vec<f64> = inputs
            .iter()
            .map(|&v| template(BaseShape::Sigmoid, p[0], p[1], p[2].exp(), p[3], v))
            .collect();
        let rmse: f64 = (check
            .iter()
            .zip(&y)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            / y.len() as f64)
            .sqrt();
        assert!(rmse < 1e-3, "rmse {rmse}, params {p:?}");
    }

    #[test]
    fn transfer_model_fits_ptanh_within_tolerance() {
        let model = fit_transfer(AfKind::PTanh, 48, 13).unwrap();
        assert!(
            model.fit_rmse() < 0.12,
            "p-tanh transfer RMSE too high: {}",
            model.fit_rmse()
        );
    }

    #[test]
    fn transfer_model_generalizes_to_unseen_design() {
        let model = fit_transfer(AfKind::PTanh, 64, 13).unwrap();
        let d = AfKind::PTanh.default_design();
        let inputs: Vec<f64> = (0..21).map(|i| -1.0 + i as f64 / 10.0).collect();
        let simulated = transfer_curve(&d, &inputs).unwrap();
        let predicted = model.eval(&Matrix::row(&inputs), d.q());
        let rmse: f64 = (simulated
            .iter()
            .enumerate()
            .map(|(j, &y)| (predicted[(0, j)] - y) * (predicted[(0, j)] - y))
            .sum::<f64>()
            / inputs.len() as f64)
            .sqrt();
        assert!(rmse < 0.15, "unseen-design RMSE {rmse}");
    }

    #[test]
    fn tape_eval_matches_plain() {
        let model = fit_transfer(AfKind::PTanh, 12, 9).unwrap();
        let d = AfKind::PTanh.default_design();
        let v = Matrix::from_rows(&[&[-0.5, 0.0], &[0.3, 0.8]]);
        let plain = model.eval(&v, d.q());
        let mut tape = Tape::new();
        let vv = tape.constant(v.clone());
        let qv = tape.parameter(Matrix::from_vec(1, d.q().len(), d.q().to_vec()));
        let out = model.eval_on_tape(&mut tape, vv, qv);
        assert!(
            tape.value(out).approx_eq(&plain, 1e-10),
            "tape {:?} vs plain {plain:?}",
            tape.value(out)
        );
    }

    #[test]
    fn tape_eval_gradient_wrt_q_and_v() {
        let model = fit_transfer(AfKind::PTanh, 12, 9).unwrap();
        let d = AfKind::PTanh.default_design();
        let q0 = Matrix::from_vec(1, d.q().len(), d.q().to_vec());
        let v = Matrix::from_rows(&[&[-0.4, 0.2, 0.7]]);

        // Gradient w.r.t. q (scaled: q entries span decades).
        let model2 = model.clone();
        let v2 = v.clone();
        let rep = pnc_autodiff::gradcheck::check_gradient(&q0, 1e-1, move |tape, p| {
            let vv = tape.constant(v2.clone());
            let out = model2.eval_on_tape(tape, vv, p);
            let sq = tape.square(out);
            tape.sum_all(sq)
        });
        assert!(rep.max_rel_err < 1e-2, "q-gradient: {rep:?}");

        // Gradient w.r.t. v.
        let q1 = q0.clone();
        let rep = pnc_autodiff::gradcheck::check_gradient(&v, 1e-6, move |tape, p| {
            let qv = tape.constant(q1.clone());
            let out = model.eval_on_tape(tape, p, qv);
            let sq = tape.square(out);
            tape.sum_all(sq)
        });
        assert!(rep.passes(1e-5), "v-gradient: {rep:?}");
    }

    #[test]
    fn shapes_match_kinds() {
        assert_eq!(BaseShape::for_kind(AfKind::PRelu), BaseShape::Softplus);
        assert_eq!(
            BaseShape::for_kind(AfKind::PClippedRelu),
            BaseShape::Sigmoid
        );
        assert_eq!(BaseShape::for_kind(AfKind::PSigmoid), BaseShape::Sigmoid);
        assert_eq!(BaseShape::for_kind(AfKind::PTanh), BaseShape::Tanh);
    }
}
