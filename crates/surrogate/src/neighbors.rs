//! Uniform-grid nearest-neighbor index over log-space design vectors.
//!
//! Both consumers of neighbor structure during characterization — the
//! hardness atlas's `nn_distance` column and the warm-start donor
//! search — previously needed an O(n²) scan over every
//! already-recorded point. This grid buckets points by
//! `floor(coord / cell)` and answers nearest-neighbor queries by
//! expanding Chebyshev shells of buckets outward from the query,
//! stopping as soon as no unexplored bucket can hold a closer point.
//!
//! Determinism: insertion order is the caller's (index-ordered
//! compaction), bucket keys are exact integer functions of the
//! coordinates, and the per-pair distance uses the same expression the
//! atlas always used — so query results carry bit-identical distance
//! values to the linear scan they replace, for any thread count.

use std::collections::BTreeMap;

/// Euclidean distance between two log-space design vectors. The
/// term order is fixed (coordinate order), so the result is
/// bit-identical to the historical atlas computation.
pub(crate) fn distance(a: &[f64], b: &[f64]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y) * (x - y))
        .sum::<f64>()
        .sqrt()
}

/// Bucketed nearest-neighbor index with stable insertion indices.
#[derive(Debug, Clone)]
pub(crate) struct NeighborGrid {
    cell: f64,
    points: Vec<Vec<f64>>,
    buckets: BTreeMap<Vec<i64>, Vec<usize>>,
}

impl NeighborGrid {
    /// Creates an empty grid with the given bucket edge length.
    /// Callers derive `cell` from the design-space extent (for Sobol
    /// characterization: the widest log-bounds span over 8).
    pub(crate) fn new(cell: f64) -> Self {
        NeighborGrid {
            cell: if cell > 0.0 { cell } else { 1.0 },
            points: Vec::new(),
            buckets: BTreeMap::new(),
        }
    }

    /// Number of indexed points.
    #[cfg(test)]
    pub(crate) fn len(&self) -> usize {
        self.points.len()
    }

    fn key_of(&self, coords: &[f64]) -> Vec<i64> {
        coords.iter().map(|&c| (c / self.cell).floor() as i64).collect()
    }

    /// Indexes a point; returns its insertion index.
    pub(crate) fn insert(&mut self, coords: Vec<f64>) -> usize {
        let idx = self.points.len();
        let key = self.key_of(&coords);
        self.points.push(coords);
        self.buckets.entry(key).or_default().push(idx);
        idx
    }

    /// Nearest indexed point to `coords`: `(insertion_index, distance)`,
    /// ties on distance broken toward the smallest index. `None` when
    /// empty.
    pub(crate) fn nearest(&self, coords: &[f64]) -> Option<(usize, f64)> {
        if self.points.is_empty() {
            return None;
        }
        let center = self.key_of(coords);
        // Outermost shell that can contain an occupied bucket; beyond
        // it the expansion has provably seen every point.
        let max_r = self
            .buckets
            .keys()
            .map(|k| {
                k.iter()
                    .zip(&center)
                    .map(|(a, b)| (a - b).abs())
                    .max()
                    .unwrap_or(0)
            })
            .max()
            .unwrap_or(0);
        let mut best: Option<(usize, f64)> = None;
        for r in 0..=max_r {
            // Shells 0..r-1 are complete, so every unexplored point is
            // farther than (r-1)·cell; the incumbent wins outright.
            if let Some((_, d)) = best {
                if r >= 1 && d <= (r - 1) as f64 * self.cell {
                    break;
                }
            }
            self.for_shell(&center, r, |idx| {
                let d = distance(&self.points[idx], coords);
                let better = match best {
                    None => true,
                    Some((bi, bd)) => {
                        d.total_cmp(&bd).then(idx.cmp(&bi)) == std::cmp::Ordering::Less
                    }
                };
                if better {
                    best = Some((idx, d));
                }
            });
        }
        best
    }

    /// Distance from `coords` to its nearest indexed point (`-1.0` when
    /// the grid is empty) — drop-in for the linear-scan
    /// `nearest_distance` the atlas used.
    pub(crate) fn nearest_distance(&self, coords: &[f64]) -> f64 {
        self.nearest(coords).map_or(-1.0, |(_, d)| d)
    }

    /// Visits every point whose bucket lies at Chebyshev radius
    /// exactly `r` from `center`, by enumerating offset vectors in
    /// `[-r, r]^dim` with at least one coordinate at `±r`.
    fn for_shell(&self, center: &[i64], r: i64, mut visit: impl FnMut(usize)) {
        let dim = center.len();
        let mut offset = vec![-r; dim];
        loop {
            if offset.iter().any(|o| o.abs() == r) {
                let key: Vec<i64> = center.iter().zip(&offset).map(|(c, o)| c + o).collect();
                if let Some(ids) = self.buckets.get(&key) {
                    for &idx in ids {
                        visit(idx);
                    }
                }
            }
            // Odometer increment over [-r, r]^dim.
            let mut d = 0;
            loop {
                if d == dim {
                    return;
                }
                offset[d] += 1;
                if offset[d] <= r {
                    break;
                }
                offset[d] = -r;
                d += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// SplitMix64 — deterministic pseudo-random coordinates.
    fn mix(seed: u64, i: u64) -> f64 {
        let mut z = seed.wrapping_add(i.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        ((z ^ (z >> 31)) as f64) / (u64::MAX as f64)
    }

    fn linear_nearest(seen: &[Vec<f64>], q: &[f64]) -> Option<(usize, f64)> {
        seen.iter()
            .enumerate()
            .map(|(i, p)| (i, distance(p, q)))
            .min_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)))
    }

    #[test]
    fn empty_grid_reports_no_neighbor() {
        let g = NeighborGrid::new(0.5);
        assert_eq!(g.nearest(&[0.0, 0.0]), None);
        assert_eq!(g.nearest_distance(&[0.0, 0.0]), -1.0);
    }

    #[test]
    fn matches_linear_scan_bit_for_bit() {
        for dim in [2usize, 3] {
            let mut grid = NeighborGrid::new(0.7);
            let mut seen: Vec<Vec<f64>> = Vec::new();
            for i in 0..400u64 {
                let q: Vec<f64> = (0..dim)
                    .map(|d| 10.0 * mix(42 + dim as u64, i * dim as u64 + d as u64) - 5.0)
                    .collect();
                // Query before insert, exactly like the compaction pass.
                let got = grid.nearest(&q);
                let want = linear_nearest(&seen, &q);
                match (got, want) {
                    (None, None) => {}
                    (Some((_, gd)), Some((_, wd))) => {
                        assert_eq!(gd.to_bits(), wd.to_bits(), "point {i} (dim {dim})");
                    }
                    other => panic!("mismatch at point {i}: {other:?}"),
                }
                grid.insert(q.clone());
                seen.push(q);
            }
            assert_eq!(grid.len(), 400);
        }
    }

    #[test]
    fn clustered_and_distant_points_are_found() {
        // A tight cluster plus one far outlier exercises multi-shell
        // expansion: the outlier's nearest neighbor is many cells away.
        let mut grid = NeighborGrid::new(0.25);
        for i in 0..20u64 {
            grid.insert(vec![mix(7, i) * 0.1, mix(8, i) * 0.1]);
        }
        let (idx, d) = grid.nearest(&[40.0, 40.0]).unwrap();
        assert!(idx < 20);
        assert!(d > 50.0 && d < 60.0);
    }

    #[test]
    fn ties_prefer_the_smallest_insertion_index() {
        let mut grid = NeighborGrid::new(1.0);
        grid.insert(vec![1.0, 0.0]);
        grid.insert(vec![-1.0, 0.0]); // same distance from the origin
        let (idx, d) = grid.nearest(&[0.0, 0.0]).unwrap();
        assert_eq!(idx, 0);
        assert!((d - 1.0).abs() < 1e-12);
    }
}
