//! The differentiable surrogate power model `𝒫^AF(q)`.
//!
//! Mirrors the paper's pipeline: normalize the design inputs, regress
//! log-power with an MLP (power spans decades across the design space,
//! so a log target conditions the fit), and expose predictions both on
//! plain data and on an autodiff tape so the constrained trainer can
//! differentiate power with respect to the learnable design vector `q`.

use crate::mlp::{Mlp, MlpConfig};
use crate::sampling::AfPowerDataset;
use crate::SurrogateError;
use pnc_autodiff::{Tape, Var};
use pnc_linalg::stats::Standardizer;
use pnc_linalg::{rng as lrng, Matrix};
use pnc_spice::AfKind;
use pnc_telemetry::{Event, Level, Telemetry};

const LN10: f64 = std::f64::consts::LN_10;

/// Configuration for fitting a [`PowerSurrogate`].
#[derive(Debug, Clone, PartialEq)]
pub struct PowerSurrogateConfig {
    /// Number of Sobol/SPICE samples (the paper uses 10,000).
    pub samples: usize,
    /// Points in the input-voltage sweep used to average power.
    pub grid_points: usize,
    /// MLP architecture/training settings.
    pub mlp: MlpConfig,
}

impl Default for PowerSurrogateConfig {
    fn default() -> Self {
        PowerSurrogateConfig {
            samples: 2000,
            grid_points: 21,
            mlp: MlpConfig::default(),
        }
    }
}

impl PowerSurrogateConfig {
    /// Fast preset for unit tests and smoke runs.
    pub fn smoke() -> Self {
        PowerSurrogateConfig {
            samples: 64,
            grid_points: 7,
            mlp: MlpConfig {
                hidden: vec![16, 16],
                epochs: 300,
                lr: 5e-3,
                ..MlpConfig::default()
            },
        }
    }

    /// The paper's full-scale preset: 10,000 samples, 15-layer MLP.
    pub fn paper() -> Self {
        PowerSurrogateConfig {
            samples: 10_000,
            grid_points: 21,
            mlp: MlpConfig::paper_depth(),
        }
    }
}

/// A trained surrogate `q ↦ 𝒫^AF(q)` for one activation kind.
#[derive(Debug, Clone)]
pub struct PowerSurrogate {
    kind: AfKind,
    scaler: Standardizer,
    /// The MLP regresses standardized `log10(P)`.
    mlp: Mlp,
    y_mean: f64,
    y_std: f64,
    validation_r2: f64,
}

impl PowerSurrogate {
    /// Fits a surrogate for `kind` by sampling the design space and
    /// training the MLP.
    ///
    /// # Errors
    ///
    /// Propagates sampling errors; returns
    /// [`SurrogateError::NotEnoughData`] when fewer than 16 samples
    /// survive simulation.
    pub fn fit(kind: AfKind, cfg: &PowerSurrogateConfig) -> Result<Self, SurrogateError> {
        Self::fit_with(kind, cfg, &Telemetry::disabled())
    }

    /// Like [`PowerSurrogate::fit`] but streams characterization
    /// progress, MLP loss-curve events, and a final `surrogate_fit`
    /// summary to a telemetry sink.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`PowerSurrogate::fit`].
    pub fn fit_with(
        kind: AfKind,
        cfg: &PowerSurrogateConfig,
        tel: &Telemetry,
    ) -> Result<Self, SurrogateError> {
        let ds = AfPowerDataset::generate_traced(kind, cfg.samples, cfg.grid_points, tel)?;
        Self::fit_from_dataset_with(&ds, &cfg.mlp, tel)
    }

    /// Fits from an existing characterization dataset.
    ///
    /// # Errors
    ///
    /// Returns [`SurrogateError::NotEnoughData`] when the dataset is too
    /// small to leave a validation split.
    pub fn fit_from_dataset(
        ds: &AfPowerDataset,
        mlp_cfg: &MlpConfig,
    ) -> Result<Self, SurrogateError> {
        Self::fit_from_dataset_with(ds, mlp_cfg, &Telemetry::disabled())
    }

    /// Like [`PowerSurrogate::fit_from_dataset`] but emits `mlp_epoch`
    /// loss-curve events during training plus a final `surrogate_fit`
    /// info event with the validation R².
    ///
    /// # Errors
    ///
    /// Same failure modes as [`PowerSurrogate::fit_from_dataset`].
    pub fn fit_from_dataset_with(
        ds: &AfPowerDataset,
        mlp_cfg: &MlpConfig,
        tel: &Telemetry,
    ) -> Result<Self, SurrogateError> {
        if ds.len() < 16 {
            return Err(SurrogateError::NotEnoughData {
                available: ds.len(),
                required: 16,
            });
        }
        let (train, val) = ds.split(5);

        // Features: log of each design parameter (ranges span decades).
        let log_x = |m: &Matrix| m.map(f64::ln);
        let xtr_raw = log_x(&train.designs);
        let scaler = Standardizer::fit(&xtr_raw);
        let xtr = scaler.transform(&xtr_raw);
        let xva = scaler.transform(&log_x(&val.designs));

        // Target: standardized log10 power.
        let ytr_log: Vec<f64> = train.power.iter().map(|&p| p.log10()).collect();
        let y_mean = pnc_linalg::stats::mean(&ytr_log);
        let y_std = pnc_linalg::stats::std_dev(&ytr_log).max(1e-9);
        let ytr = Matrix::from_vec(
            ytr_log.len(),
            1,
            ytr_log.iter().map(|&y| (y - y_mean) / y_std).collect(),
        );

        let mut rng = lrng::seeded(mlp_cfg.seed);
        let mut mlp = Mlp::new(xtr.cols(), &mlp_cfg.hidden, 1, &mut rng);
        mlp.train_traced(&xtr, &ytr, mlp_cfg, tel);

        // Validation R² in log10-power space.
        let pred_std = {
            let mut eval_scope = tel.profiler().scope("mlp_eval");
            eval_scope.set_u64("rows", xva.rows() as u64);
            mlp.forward(&xva)
        };
        let pred_log: Vec<f64> = pred_std
            .as_slice()
            .iter()
            .map(|&v| v * y_std + y_mean)
            .collect();
        let target_log: Vec<f64> = val.power.iter().map(|&p| p.log10()).collect();
        let validation_r2 = pnc_linalg::stats::r_squared(&target_log, &pred_log);

        tel.emit(|| {
            Event::new("surrogate_fit", Level::Info)
                .with_str("kind", ds.kind.name())
                .with_u64("samples", ds.len() as u64)
                .with_f64("validation_r2", validation_r2)
        });

        Ok(PowerSurrogate {
            kind: ds.kind,
            scaler,
            mlp,
            y_mean,
            y_std,
            validation_r2,
        })
    }

    /// The activation kind this surrogate models.
    pub fn kind(&self) -> AfKind {
        self.kind
    }

    /// Decomposes into parts for persistence:
    /// `(kind, scaler, mlp, y_mean, y_std, validation_r2)`.
    pub fn parts(&self) -> (AfKind, &Standardizer, &Mlp, f64, f64, f64) {
        (
            self.kind,
            &self.scaler,
            &self.mlp,
            self.y_mean,
            self.y_std,
            self.validation_r2,
        )
    }

    /// Rebuilds a surrogate from persisted parts (see
    /// [`crate::persist`]).
    ///
    /// # Panics
    ///
    /// Panics when the scaler width disagrees with the kind's design
    /// dimension or the MLP input width.
    pub fn from_parts(
        kind: AfKind,
        scaler: Standardizer,
        mlp: Mlp,
        // lint: dimensionless
        y_mean: f64,
        // lint: dimensionless
        y_std: f64,
        // lint: dimensionless
        validation_r2: f64,
    ) -> Self {
        assert_eq!(scaler.mean().len(), kind.dim(), "scaler width mismatch");
        assert_eq!(mlp.input_dim(), kind.dim(), "mlp input width mismatch");
        PowerSurrogate {
            kind,
            scaler,
            mlp,
            y_mean,
            y_std,
            validation_r2,
        }
    }

    /// Validation R² (log10-power space) recorded at fit time.
    pub fn validation_r2(&self) -> f64 {
        self.validation_r2
    }

    /// Predicted power in watts for a design vector.
    ///
    /// # Panics
    ///
    /// Panics when `q.len()` differs from the kind's design dimension.
    pub fn predict(&self, q: &[f64]) -> f64 {
        assert_eq!(q.len(), self.kind.dim(), "predict: dimension mismatch");
        let x_raw = Matrix::from_vec(1, q.len(), q.iter().map(|&v| v.ln()).collect());
        let x = self.scaler.transform(&x_raw);
        let out = self.mlp.forward(&x)[(0, 0)];
        let log_p = out * self.y_std + self.y_mean;
        10f64.powf(log_p)
    }

    /// Predicted power on a tape: `q_var` is a `1 × dim` node holding
    /// the design vector in *physical units*; the return value is a
    /// `1 × 1` node holding power in watts. Gradients flow into `q_var`
    /// while the surrogate weights stay frozen.
    ///
    /// The caller must guarantee the design values are positive (the
    /// trainer parameterizes `q` through bounded transforms, so this
    /// holds by construction).
    pub fn predict_on_tape(&self, tape: &mut Tape, q_var: Var) -> Var {
        assert_eq!(
            tape.shape(q_var),
            (1, self.kind.dim()),
            "predict_on_tape: expected 1 × {}",
            self.kind.dim()
        );
        // log features + standardization
        let logq = tape.ln(q_var);
        let neg_mean = tape.constant(Matrix::from_vec(
            1,
            self.scaler.mean().len(),
            self.scaler.mean().iter().map(|&m| -m).collect(),
        ));
        let inv_std = tape.constant(Matrix::from_vec(
            1,
            self.scaler.std().len(),
            self.scaler.std().iter().map(|&s| 1.0 / s).collect(),
        ));
        let x = tape.add_row(logq, neg_mean);
        let x = tape.mul_row(x, inv_std);
        // frozen MLP
        let out = self.mlp.forward_on_tape(tape, x);
        // un-standardize and exponentiate: P = 10^(out·σ + μ)
        let scaled = tape.mul_scalar(out, self.y_std);
        let log_p = tape.add_scalar(scaled, self.y_mean);
        let ln_p = tape.mul_scalar(log_p, LN10);
        tape.exp(ln_p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pnc_spice::af::mean_power;

    fn smoke_surrogate(kind: AfKind) -> PowerSurrogate {
        PowerSurrogate::fit(kind, &PowerSurrogateConfig::smoke()).unwrap()
    }

    #[test]
    fn fits_prelu_with_decent_r2() {
        let s = smoke_surrogate(AfKind::PRelu);
        assert!(
            s.validation_r2() > 0.8,
            "validation R² too low: {}",
            s.validation_r2()
        );
    }

    #[test]
    fn prediction_tracks_simulation() {
        let s = smoke_surrogate(AfKind::PRelu);
        let d = AfKind::PRelu.default_design();
        let simulated = mean_power(&d, 7).unwrap();
        let predicted = s.predict(d.q());
        let ratio = predicted / simulated;
        assert!(
            (0.4..2.5).contains(&ratio),
            "prediction off: sim {simulated:e} vs pred {predicted:e}"
        );
    }

    #[test]
    fn prediction_is_positive_over_random_designs() {
        let s = smoke_surrogate(AfKind::PRelu);
        let bounds = AfKind::PRelu.bounds();
        let mut rng = lrng::seeded(3);
        use rand::Rng;
        for _ in 0..20 {
            let q: Vec<f64> = bounds
                .iter()
                .map(|&(lo, hi)| {
                    let t: f64 = rng.gen();
                    lo * (hi / lo).powf(t)
                })
                .collect();
            let p = s.predict(&q);
            assert!(p > 0.0 && p.is_finite(), "bad prediction {p}");
        }
    }

    #[test]
    fn tape_prediction_matches_plain() {
        let s = smoke_surrogate(AfKind::PRelu);
        let d = AfKind::PRelu.default_design();
        let plain = s.predict(d.q());
        let mut tape = Tape::new();
        let q = tape.parameter(Matrix::from_vec(1, 3, d.q().to_vec()));
        let p = s.predict_on_tape(&mut tape, q);
        assert!(
            (tape.scalar(p) - plain).abs() < 1e-12 * plain.abs().max(1e-12),
            "tape {} vs plain {plain}",
            tape.scalar(p)
        );
    }

    #[test]
    fn tape_prediction_gradient_checks() {
        let s = smoke_surrogate(AfKind::PRelu);
        let d = AfKind::PRelu.default_design();
        let q0 = Matrix::from_vec(1, 3, d.q().to_vec());
        // Power is ~1e-5 W; check relative error via scaled objective.
        let report = pnc_autodiff::gradcheck::check_gradient(&q0, 1e-2, |tape, p| {
            let out = s.predict_on_tape(tape, p);
            tape.mul_scalar(out, 1e6) // work in µW for conditioning
        });
        assert!(report.max_rel_err < 1e-2, "{report:?}");
    }

    #[test]
    fn traced_fit_emits_loss_curve_and_summary() {
        use pnc_telemetry::{MemorySink, Telemetry};
        use std::sync::Arc;
        let sink = Arc::new(MemorySink::new());
        let tel = Telemetry::with_sink(sink.clone());
        let s =
            PowerSurrogate::fit_with(AfKind::PRelu, &PowerSurrogateConfig::smoke(), &tel).unwrap();

        let fit = sink.events_named("surrogate_fit");
        assert_eq!(fit.len(), 1);
        assert_eq!(fit[0].get_str("kind"), Some("p-ReLU"));
        assert_eq!(fit[0].get_f64("validation_r2"), Some(s.validation_r2()));

        // The MLP loss curve is sampled (~50 points) and decreases overall.
        let curve = sink.events_named("mlp_epoch");
        assert!(curve.len() >= 10, "loss curve too sparse: {}", curve.len());
        let first = curve.first().unwrap().get_f64("train_mse").unwrap();
        let last = curve.last().unwrap().get_f64("train_mse").unwrap();
        assert!(last < first, "MLP loss did not decrease: {first} -> {last}");
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn predict_rejects_wrong_dim() {
        let s = smoke_surrogate(AfKind::PRelu);
        let _ = s.predict(&[1.0]);
    }
}
