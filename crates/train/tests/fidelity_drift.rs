//! Integration test for the surrogate-fidelity drift gate: a healthy
//! smoke-fit surrogate passes its SPICE spot check, while a corrupted
//! fit (the power surrogate's log-space mean shifted by one decade —
//! the shape of drift a stale cached fit or a botched persistence
//! round-trip would produce) trips the gate and latches a
//! `surrogate_drift` diagnosis, exactly like a watchdog diagnosis.

use pnc_core::activation::{fit_negation_model, SurrogateFidelity};
use pnc_core::{LearnableActivation, NetworkConfig, PrintedNetwork};
use pnc_linalg::rng as lrng;
use pnc_spice::AfKind;
use pnc_surrogate::{NegationModel, PowerSurrogate};
use pnc_telemetry::Telemetry;
use pnc_train::fidelity::{fidelity_sample, FidelityConfig, FidelityMonitor};
use pnc_train::observer::{NoopObserver, TrainObserver};
use std::sync::OnceLock;

/// The drift gate used throughout: generous against genuine smoke-fit
/// error (observed ≲ 0.2 relative), hopeless against a 10× corruption.
const GATE: f64 = 0.5;

fn smoke_parts() -> &'static (LearnableActivation, NegationModel) {
    static CELL: OnceLock<(LearnableActivation, NegationModel)> = OnceLock::new();
    CELL.get_or_init(|| {
        let act = LearnableActivation::fit(AfKind::PTanh, &SurrogateFidelity::smoke()).unwrap();
        let neg = fit_negation_model(9).unwrap();
        (act, neg)
    })
}

fn network_with(act: LearnableActivation, neg: NegationModel, seed: u64) -> PrintedNetwork {
    let mut rng = lrng::seeded(seed);
    PrintedNetwork::new(4, 3, NetworkConfig::default(), act, neg, &mut rng).unwrap()
}

/// Shifts the power surrogate's standardized-output mean up one decade
/// in log10-power space: every prediction comes out 10× too high while
/// the model stays structurally valid (finite, positive, same widths).
fn corrupt_activation(act: &LearnableActivation) -> LearnableActivation {
    let (kind, scaler, mlp, y_mean, y_std, r2) = act.power_surrogate().parts();
    let drifted =
        PowerSurrogate::from_parts(kind, scaler.clone(), mlp.clone(), y_mean + 1.0, y_std, r2);
    LearnableActivation::from_parts(kind, act.transfer().clone(), drifted)
}

fn monitor(gate: Option<f64>) -> FidelityMonitor<NoopObserver> {
    FidelityMonitor::new(
        NoopObserver,
        Telemetry::disabled(),
        FidelityConfig {
            every_epochs: 2,
            gate_rel_err: gate,
            grid_points: 9,
        },
    )
}

#[test]
fn healthy_surrogate_passes_the_gate() {
    let (act, neg) = smoke_parts().clone();
    let net = network_with(act, neg, 7);

    let mut mon = monitor(Some(GATE));
    mon.check_now(&net, "final");

    assert_eq!(mon.failed_checks(), 0);
    assert!(
        mon.drift_diagnosis().is_none(),
        "healthy fit latched a drift diagnosis: {:?}",
        mon.drift_diagnosis()
    );
    let checks = mon.checks();
    assert_eq!(checks.len(), 1);
    assert_eq!(checks[0].label, "final");
    assert!(
        checks[0].rel_err < GATE,
        "smoke-fit rel err unexpectedly large: {}",
        checks[0].rel_err
    );
    assert!(checks[0].surrogate_watts > 0.0 && checks[0].spice_watts > 0.0);
}

#[test]
fn corrupted_surrogate_latches_a_drift_diagnosis() {
    let (act, neg) = smoke_parts().clone();
    let net = network_with(corrupt_activation(&act), neg, 7);

    let mut mon = monitor(Some(GATE));
    mon.check_now(&net, "final");

    let checks = mon.checks();
    assert_eq!(checks.len(), 1, "failed checks: {}", mon.failed_checks());
    assert!(
        checks[0].rel_err > 2.0,
        "a 10× power corruption must blow the relative error: {}",
        checks[0].rel_err
    );
    let diag = mon
        .drift_diagnosis()
        .expect("gate must latch on a 10x corruption");
    assert_eq!(diag.name(), "surrogate_drift");
    assert!(
        diag.describe().contains("surrogate"),
        "diagnosis text should name the surrogate: {}",
        diag.describe()
    );
}

#[test]
fn periodic_checks_follow_the_epoch_cadence_and_latch_once() {
    let (act, neg) = smoke_parts().clone();
    let net = network_with(corrupt_activation(&act), neg, 11);

    // every_epochs = 2 over five observed epochs → checks at global
    // epochs 2 and 4. The gate trips on the first check and must latch
    // exactly once even though the second check also exceeds it.
    let mut mon = monitor(Some(GATE));
    for epoch in 1..=5usize {
        mon.on_network(epoch, &net);
    }

    let epochs: Vec<u64> = mon.checks().iter().map(|c| c.epoch).collect();
    assert_eq!(epochs, [2, 4]);
    assert!(mon.checks().iter().all(|c| c.label == "epoch"));
    let diag = mon.drift_diagnosis().expect("gate latched");
    assert_eq!(diag.name(), "surrogate_drift");
}

#[test]
fn direct_sample_agrees_with_the_monitor_record() {
    let (act, neg) = smoke_parts().clone();
    let net = network_with(act, neg, 7);

    let sample = fidelity_sample(&net, 9).expect("spot check");
    let mut mon = monitor(None);
    mon.check_now(&net, "final");
    let rec = &mon.checks()[0];

    assert_eq!(rec.surrogate_watts, sample.surrogate_watts);
    assert_eq!(rec.spice_watts, sample.spice_watts);
    assert_eq!(rec.abs_err_watts, sample.abs_err_watts());
    assert_eq!(rec.rel_err, sample.rel_err());
    // No gate configured: errors are recorded, nothing latches.
    assert!(mon.drift_diagnosis().is_none());
}
