//! End-to-end flight-recorder test: a training run whose loss goes
//! NaN mid-flight must still leave a complete, diagnosable run
//! directory — manifest flagged `aborted`, a `postmortem.md` naming
//! the `non_finite` diagnosis, the health event in `metrics.jsonl`,
//! and a summary — exactly what an operator needs after a crash.

use pnc_autodiff::Tape;
use pnc_autodiff::Var;
use pnc_core::activation::{LearnableActivation, SurrogateFidelity};
use pnc_core::network::BoundNetwork;
use pnc_core::{NetworkConfig, PrintedNetwork};
use pnc_datasets::{Dataset, DatasetId};
use pnc_telemetry::registry::{ExitStatus, RunRegistry};
use pnc_telemetry::{Sink, Telemetry};
use pnc_train::observer::NoopObserver;
use pnc_train::trainer::{fit_instrumented, DataRefs, EpochMeasure, FitContext, TrainConfig};
use pnc_train::watchdog::HealthWatchdog;
use pnc_train::{NonFiniteKind, TrainError};
use std::path::PathBuf;
use std::sync::Arc;

fn temp_root(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("pnc-run-registry-it-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn aborted_nan_run_leaves_a_complete_run_directory() {
    let root = temp_root("nan");
    let registry = RunRegistry::new(&root);
    let mut run = registry
        .create("train", &["--data".into(), "iris".into()])
        .expect("claim run dir");
    run.set_dataset("iris").unwrap();
    run.set_seed(13).unwrap();
    run.set_config("budget_mw", 0.3).unwrap();
    let run_id = run.run_id().to_string();

    // The run's metrics.jsonl is the telemetry sink, as the CLI wires it.
    let sink: Arc<dyn Sink> = run.metrics_sink();
    let tel = Telemetry::with_sink(sink);
    let mut watchdog = HealthWatchdog::new(NoopObserver, tel.clone()).with_solver_probe(|| 0);

    let ds = Dataset::generate(DatasetId::Iris, 13);
    let split = ds.split(13);
    let data = DataRefs::from_split(&split);
    let act = LearnableActivation::fit(pnc_spice::AfKind::PTanh, &SurrogateFidelity::smoke())
        .expect("smoke surrogate");
    let neg = pnc_core::activation::fit_negation_model(9).expect("negation surrogate");
    let mut rng = pnc_linalg::rng::seeded(13);
    let mut net = PrintedNetwork::new(4, 3, NetworkConfig::default(), act, neg, &mut rng)
        .expect("4-in 3-out network");

    // Poison the loss from epoch 2 onwards.
    let calls = std::cell::Cell::new(0usize);
    let objective = |tape: &mut Tape, _b: &BoundNetwork, ce: Var| {
        let n = calls.get() + 1;
        calls.set(n);
        if n >= 2 {
            tape.mul_scalar(ce, f64::NAN)
        } else {
            ce
        }
    };
    let err = fit_instrumented(
        &mut net,
        &data,
        &TrainConfig::smoke().with_seed(13),
        &objective,
        &|_n| EpochMeasure::unconstrained(),
        &FitContext::default(),
        &mut watchdog,
    )
    .expect_err("poisoned loss must abort");
    assert!(matches!(
        err,
        TrainError::NonFinite {
            what: NonFiniteKind::Loss,
            ..
        }
    ));

    // Seal the run the way the CLI abort path does.
    let diagnosis = watchdog
        .active_diagnosis()
        .expect("watchdog latched the NaN")
        .name();
    assert_eq!(diagnosis, "non_finite");
    run.write_postmortem(&watchdog.postmortem()).unwrap();
    run.abort(diagnosis, Default::default(), Default::default())
        .unwrap();

    // The run directory is complete and diagnosable after the crash.
    let record = registry.load(&run_id).expect("run loads back");
    assert_eq!(
        record.manifest.status,
        ExitStatus::Aborted("non_finite".to_string())
    );
    assert_eq!(record.manifest.seed, Some(13));
    assert!(record.manifest.ended_unix_secs.is_some());
    let summary = record.summary.expect("summary written on abort");
    assert_eq!(
        summary.status,
        ExitStatus::Aborted("non_finite".to_string())
    );

    let dir = registry.run_dir(&run_id);
    let postmortem = std::fs::read_to_string(dir.join("postmortem.md")).expect("postmortem.md");
    assert!(postmortem.contains("non_finite"), "{postmortem}");

    let metrics = std::fs::read_to_string(dir.join("metrics.jsonl")).expect("metrics.jsonl");
    assert!(
        metrics.contains("\"event\":\"health\""),
        "health event missing from metrics stream: {metrics}"
    );

    let _ = std::fs::remove_dir_all(&root);
}
