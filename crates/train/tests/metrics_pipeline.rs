//! Streaming-metrics integration: a fit driven by a registry-backed
//! [`TelemetryObserver`] must populate the hot-path histograms
//! (`tape_forward_ms`, `tape_backward_ms`, `epoch_time_ms`) in the
//! shared [`MetricsRegistry`], render a valid Prometheus exposition —
//! and, critically, produce bit-identical training results to an
//! uninstrumented run (observability must never perturb training).

use pnc_core::activation::{LearnableActivation, SurrogateFidelity};
use pnc_core::{NetworkConfig, PrintedNetwork};
use pnc_datasets::{Dataset, DatasetId};
use pnc_telemetry::stream::validate_prometheus;
use pnc_telemetry::{MetricsRegistry, Telemetry};
use pnc_train::observer::{NoopObserver, TelemetryObserver};
use pnc_train::trainer::{fit_instrumented, DataRefs, EpochMeasure, FitContext, TrainConfig};
use std::sync::Arc;

fn fresh_net() -> PrintedNetwork {
    let act = LearnableActivation::fit(pnc_spice::AfKind::PTanh, &SurrogateFidelity::smoke())
        .expect("smoke surrogate");
    let neg = pnc_core::activation::fit_negation_model(9).expect("negation surrogate");
    let mut rng = pnc_linalg::rng::seeded(29);
    PrintedNetwork::new(4, 3, NetworkConfig::default(), act, neg, &mut rng)
        .expect("4-in 3-out network")
}

#[test]
fn registry_backed_fit_populates_metrics_without_perturbing_training() {
    let ds = Dataset::generate(DatasetId::Iris, 29);
    let split = ds.split(29);
    let data = DataRefs::from_split(&split);
    let cfg = TrainConfig::smoke().with_seed(29);
    let objective = |_t: &mut pnc_autodiff::Tape, _b: &pnc_core::network::BoundNetwork, ce| ce;

    // Uninstrumented reference run.
    let mut bare = NoopObserver;
    let reference = fit_instrumented(
        &mut fresh_net(),
        &data,
        &cfg,
        &objective,
        &|_n| EpochMeasure::unconstrained(),
        &FitContext::default(),
        &mut bare,
    )
    .expect("reference fit");

    // Instrumented run: disabled sink, enabled metrics registry.
    let registry = Arc::new(MetricsRegistry::new());
    let tel = Telemetry::disabled().with_metrics(Arc::clone(&registry));
    let mut observer = TelemetryObserver::new(tel);
    let instrumented = fit_instrumented(
        &mut fresh_net(),
        &data,
        &cfg,
        &objective,
        &|_n| EpochMeasure::unconstrained(),
        &FitContext::default(),
        &mut observer,
    )
    .expect("instrumented fit");

    // Identical training trajectory: same epochs, bit-identical
    // objective and accuracy.
    assert_eq!(reference.epochs, instrumented.epochs);
    assert_eq!(
        reference.final_objective.to_bits(),
        instrumented.final_objective.to_bits()
    );
    assert_eq!(
        reference.best_val_accuracy.to_bits(),
        instrumented.best_val_accuracy.to_bits()
    );

    // Hot-path histograms saw one sample per epoch.
    let n = instrumented.epochs as u64;
    for name in ["tape_forward_ms", "tape_backward_ms", "epoch_time_ms"] {
        let s = registry.histogram(name).summary();
        assert_eq!(s.count, n, "{name}: {s:?}");
        assert!(s.min >= 0.0 && s.max.is_finite(), "{name}: {s:?}");
    }

    // And the registry renders a parseable exposition.
    let prom = registry.render_prometheus();
    let samples = validate_prometheus(&prom).expect("exposition parses");
    assert!(samples > 0, "{prom}");
    assert!(prom.contains("pnc_tape_forward_ms"), "{prom}");
}
