//! The augmented Lagrangian constrained trainer (paper Sec. III-C).
//!
//! The constrained problem (Eq. 1)
//!
//! ```text
//! minimize ℒ(𝒟, θ, q)   s.t.   c(θ, q) = P(θ, q) − P̄ ≤ 0
//! ```
//!
//! is solved as a sequence of unconstrained problems (Eq. 3). The inner
//! maximization over `λ ≥ 0` has the closed form
//! `λ* = max(0, λ' + μ·c)` (Powell–Hestenes–Rockafellar), which turns
//! the objective into
//!
//! ```text
//! ℒ + (1/2μ) · ( max(0, λ' + μ·c)² − λ'² )
//! ```
//!
//! followed by the multiplier update `λ' ← max(0, λ' + μ·c)` (Eq. 4).
//! For conditioning the constraint is normalized to
//! `c = P/P̄ − 1` (dimensionless), so a fixed `μ` behaves consistently
//! across datasets and budgets.
//!
//! Between outer iterations the parameters are warm-started with the
//! previous solution, exactly as the paper prescribes ("to save
//! computation time, θ and q should be warmstarted").

use crate::error::TrainError;
use crate::observer::{NoopObserver, RescueEvent, TrainObserver};
use crate::trainer::{
    fit_instrumented, DataRefs, EpochMeasure, FitContext, FitReport, TrainConfig,
};
use pnc_core::{CoreError, PrintedNetwork};
use pnc_linalg::Matrix;

/// Augmented Lagrangian settings.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AugLagConfig {
    /// Power budget `P̄` in watts.
    pub budget_watts: f64,
    /// Penalty/step parameter `μ` (paper: tuned per dataset).
    pub mu: f64,
    /// Number of outer (multiplier-update) iterations.
    pub outer_iters: usize,
    /// Inner minimization settings.
    pub inner: TrainConfig,
    /// Warm-start inner solves from the previous solution (the paper's
    /// choice). Disable only for the ablation benchmark.
    pub warm_start: bool,
    /// If the outer loop ends infeasible, run a power-dominated rescue
    /// phase (`ℒ + κ·max(0, c)²` with large `κ`) so that the returned
    /// model always satisfies the budget — the paper's plots show every
    /// point below its budget line. Enabled by default.
    pub rescue: bool,
}

impl AugLagConfig {
    /// Default constrained-training setup for a budget in watts.
    pub fn for_budget(budget_watts: f64) -> Self {
        AugLagConfig {
            budget_watts,
            mu: 2.0,
            outer_iters: 6,
            inner: TrainConfig::default(),
            warm_start: true,
            rescue: true,
        }
    }

    /// Tiny preset for unit tests.
    pub fn smoke(budget_watts: f64) -> Self {
        AugLagConfig {
            budget_watts,
            mu: 2.0,
            outer_iters: 3,
            inner: TrainConfig::smoke(),
            warm_start: true,
            rescue: true,
        }
    }
}

/// One outer iteration's bookkeeping.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OuterIterRecord {
    /// Multiplier estimate entering the iteration.
    pub lambda: f64,
    /// Penalty weight μ used for the iteration.
    pub mu: f64,
    /// Hard (indicator-count) power after the inner solve, watts.
    pub power_watts: f64,
    /// Normalized constraint value `P/P̄ − 1`.
    pub constraint: f64,
    /// Validation accuracy after the inner solve.
    pub val_accuracy: f64,
    /// Inner solve report.
    pub fit: FitReport,
}

/// Result of a full augmented Lagrangian run.
#[derive(Debug, Clone)]
pub struct AugLagReport {
    /// Per-outer-iteration records.
    pub outer: Vec<OuterIterRecord>,
    /// Final multiplier estimate.
    pub lambda_final: f64,
    /// Whether the restored model satisfies the budget.
    pub feasible: bool,
    /// Whether the feasibility-restoration phase had to run.
    pub rescued: bool,
    /// Hard power of the restored model (watts).
    pub power_watts: f64,
    /// Validation accuracy of the restored model.
    pub val_accuracy: f64,
}

/// Hard, indicator-count power of the network on the training inputs —
/// the quantity the constraint is enforced on (the paper's "final power
/// estimation" semantics).
///
/// # Errors
///
/// Returns [`CoreError::InputWidthMismatch`] when `x` disagrees with
/// the network topology.
pub fn hard_power(net: &PrintedNetwork, x: &Matrix) -> Result<f64, CoreError> {
    Ok(net.power_report(x)?.total())
}

/// Infallible per-epoch measurement for the training loop: a shape
/// mismatch (impossible once the fit loop has bound the same inputs)
/// degrades to "infeasible, no power reading" instead of panicking.
fn measure_hard_power(net: &PrintedNetwork, x: &Matrix, budget: f64) -> EpochMeasure {
    match hard_power(net, x) {
        Ok(p) => EpochMeasure {
            power_watts: Some(p),
            feasible: p <= budget,
        },
        Err(_) => EpochMeasure {
            power_watts: None,
            feasible: false,
        },
    }
}

/// Runs the augmented Lagrangian method, mutating `net` in place. The
/// best feasible model across all outer iterations is restored at the
/// end.
///
/// # Errors
///
/// Returns [`TrainError::Core`] when data shapes disagree with the
/// network topology, and [`TrainError::NonFinite`] when an inner solve
/// collapses numerically (NaN/Inf loss or gradient).
pub fn train_auglag(
    net: &mut PrintedNetwork,
    data: &DataRefs<'_>,
    cfg: &AugLagConfig,
) -> Result<AugLagReport, TrainError> {
    train_auglag_observed(net, data, cfg, &mut NoopObserver)
}

/// [`train_auglag`] with instrumentation: the observer receives every
/// inner-loop epoch (stamped with the outer iteration's λ, μ and the
/// normalized constraint), every outer-iteration record, and every
/// rescue-phase milestone. A [`crate::observer::NoopObserver`] makes
/// this exactly [`train_auglag`].
pub fn train_auglag_observed(
    net: &mut PrintedNetwork,
    data: &DataRefs<'_>,
    cfg: &AugLagConfig,
    observer: &mut dyn TrainObserver,
) -> Result<AugLagReport, TrainError> {
    assert!(cfg.budget_watts > 0.0, "budget must be positive");
    assert!(cfg.mu > 0.0, "mu must be positive");

    let prof = observer.profiler();
    let mut lambda = 0.0f64;
    let mut outer = Vec::with_capacity(cfg.outer_iters);
    let mut best_params: Option<Vec<Matrix>> = None;
    let mut best_key = (false, f64::NEG_INFINITY);
    let init_params = net.param_values();

    for iter in 0..cfg.outer_iters {
        let mut outer_scope = prof.scope("outer_iter");
        outer_scope.set_u64("iter", iter as u64);
        if !cfg.warm_start {
            net.set_param_values(&init_params);
        }
        let lam = lambda;
        let budget = cfg.budget_watts;
        let mu = cfg.mu;

        let objective = move |tape: &mut pnc_autodiff::Tape,
                              bound: &pnc_core::network::BoundNetwork,
                              ce: pnc_autodiff::Var| {
            // c = P/P̄ − 1 on the differentiable (soft-count) power.
            let ratio = tape.mul_scalar(bound.power, 1.0 / budget);
            let c = tape.add_scalar(ratio, -1.0);
            // Ψ = (1/2μ)(max(0, λ + μc)² − λ²)
            let mu_c = tape.mul_scalar(c, mu);
            let inner = tape.add_scalar(mu_c, lam);
            let act = tape.clamp_min(inner, 0.0);
            let act_sq = tape.square(act);
            let shifted = tape.add_scalar(act_sq, -(lam * lam));
            let psi = tape.mul_scalar(shifted, 1.0 / (2.0 * mu));
            tape.add(ce, psi)
        };
        // One hard-power evaluation per epoch serves both feasibility
        // tracking and telemetry.
        let measure = move |n: &PrintedNetwork| measure_hard_power(n, data.x_train, budget);
        let ctx = FitContext {
            lambda: Some(lam),
            mu: Some(mu),
            budget_watts: Some(budget),
        };
        let fit_report =
            fit_instrumented(net, data, &cfg.inner, &objective, &measure, &ctx, observer)?;

        let p = hard_power(net, data.x_train)?;
        let c = p / cfg.budget_watts - 1.0;
        let val_acc = net.accuracy(data.x_val, data.y_val)?;
        let record = OuterIterRecord {
            lambda,
            mu,
            power_watts: p,
            constraint: c,
            val_accuracy: val_acc,
            fit: fit_report,
        };
        outer_scope.set_f64("constraint", c);
        outer_scope.set_f64("lambda", lambda);
        observer.on_outer_iter(iter, &record);
        outer.push(record);

        // Track the best feasible iterate across outer iterations.
        let key = (c <= 0.0, val_acc);
        if key > best_key {
            best_key = key;
            best_params = Some(net.param_values());
        }

        // Multiplier update (Eq. 4).
        lambda = (lambda + cfg.mu * c).max(0.0);
    }

    if let Some(p) = best_params {
        net.set_param_values(&p);
    }

    // Feasibility restoration: if no outer iterate satisfied the
    // budget, push power down hard until one does. Quadratic exterior
    // penalty with a large weight keeps some accuracy pressure (the CE
    // term stays) while making violation dominate the objective.
    let mut rescued = false;
    if cfg.rescue && !best_key.0 {
        rescued = true;
        let _rescue_scope = prof.scope("rescue");
        let budget = cfg.budget_watts;
        let rescue_measure = move |n: &PrintedNetwork| measure_hard_power(n, data.x_train, budget);
        let rescue_ctx = FitContext {
            lambda: None,
            mu: None,
            budget_watts: Some(budget),
        };
        observer.on_rescue(&RescueEvent {
            stage: "start",
            round: 0,
            power_watts: hard_power(net, data.x_train)?,
            budget_watts: budget,
        });

        // Stage 1: escalating exterior penalties. Each round multiplies
        // the violation weight by 10; most runs become feasible in the
        // first round.
        for round in 0..3 {
            if hard_power(net, data.x_train)? <= budget {
                break;
            }
            let kappa = 200.0 * 10f64.powi(round);
            let rescue_objective = move |tape: &mut pnc_autodiff::Tape,
                                         bound: &pnc_core::network::BoundNetwork,
                                         ce: pnc_autodiff::Var| {
                let ratio = tape.mul_scalar(bound.power, 1.0 / budget);
                let c = tape.add_scalar(ratio, -1.0);
                let viol = tape.clamp_min(c, 0.0);
                let sq = tape.square(viol);
                let pen = tape.mul_scalar(sq, kappa);
                // Plus a gentle pull below the budget so the solution
                // lands safely inside, not on, the boundary.
                let slack = tape.mul_scalar(ratio, 0.05);
                let t = tape.add(ce, pen);
                tape.add(t, slack)
            };
            fit_instrumented(
                net,
                data,
                &cfg.inner,
                &rescue_objective,
                &rescue_measure,
                &rescue_ctx,
                observer,
            )?;
            observer.on_rescue(&RescueEvent {
                stage: "penalty_round",
                round: round as usize,
                power_watts: hard_power(net, data.x_train)?,
                budget_watts: budget,
            });
        }

        // Stage 2: deterministic shrink projection. Scaling every
        // surrogate conductance toward zero drives power to (near)
        // zero — below the counting threshold no activation or negation
        // circuit is printed at all — so this always terminates
        // feasible; a short CE fit then recovers accuracy without
        // leaving the feasible set.
        let mut guard = 0;
        while hard_power(net, data.x_train)? > budget && guard < 400 {
            let mut values = net.param_values();
            let half = values.len() / 2;
            for v in values.iter_mut().take(half) {
                // Θ only: once every |θ| falls below the counting
                // threshold, the activation and negation circuits stop
                // being printed and the crossbar dissipation vanishes,
                // so power provably goes to ~0.
                v.map_inplace(|x| x * 0.85);
            }
            net.set_param_values(&values);
            guard += 1;
        }
        if guard > 0 {
            observer.on_rescue(&RescueEvent {
                stage: "shrink",
                round: guard,
                power_watts: hard_power(net, data.x_train)?,
                budget_watts: budget,
            });
            let short = TrainConfig {
                max_epochs: cfg.inner.max_epochs / 2,
                ..cfg.inner
            };
            fit_instrumented(
                net,
                data,
                &short,
                &|_t, _b, ce| ce,
                &rescue_measure,
                &rescue_ctx,
                observer,
            )?;
            // `fit` restores the best iterate under (feasible, acc); if
            // every training iterate violated, re-project.
            let mut guard2 = 0;
            while hard_power(net, data.x_train)? > budget && guard2 < 400 {
                let mut values = net.param_values();
                let half = values.len() / 2;
                for v in values.iter_mut().take(half) {
                    v.map_inplace(|x| x * 0.85);
                }
                net.set_param_values(&values);
                guard2 += 1;
            }
        }
        observer.on_rescue(&RescueEvent {
            stage: "done",
            round: 0,
            power_watts: hard_power(net, data.x_train)?,
            budget_watts: budget,
        });
    }

    let power = hard_power(net, data.x_train)?;
    Ok(AugLagReport {
        outer,
        lambda_final: lambda,
        feasible: power <= cfg.budget_watts,
        power_watts: power,
        val_accuracy: net.accuracy(data.x_val, data.y_val)?,
        rescued,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trainer::test_support::tiny_network;
    use pnc_datasets::{Dataset, DatasetId};

    fn iris_data() -> (pnc_datasets::Split, ()) {
        let ds = Dataset::generate(DatasetId::Iris, 3);
        (ds.split(1), ())
    }

    #[test]
    fn enforces_a_tight_budget() {
        let (split, _) = iris_data();
        let data = DataRefs::from_split(&split);

        // Reference: unconstrained power.
        let mut net0 = tiny_network(4, 3, 11);
        crate::trainer::fit_cross_entropy(&mut net0, &data, &TrainConfig::smoke()).unwrap();
        let p_max = hard_power(&net0, data.x_train).unwrap();

        // Constrain to 30 % of it.
        let budget = 0.3 * p_max;
        let mut net = tiny_network(4, 3, 11);
        let report = train_auglag(&mut net, &data, &AugLagConfig::smoke(budget)).unwrap();
        assert!(
            report.power_watts <= budget * 1.02,
            "constraint violated: {:e} > {:e}",
            report.power_watts,
            budget
        );
        assert!(report.feasible);
        // Should still classify better than chance.
        assert!(report.val_accuracy > 0.4, "acc {}", report.val_accuracy);
    }

    #[test]
    fn lambda_rises_under_violation_pressure() {
        let (split, _) = iris_data();
        let data = DataRefs::from_split(&split);
        let mut net = tiny_network(4, 3, 13);
        // Absurdly tight budget: constraint stays violated, λ must grow.
        let p0 = hard_power(&net, data.x_train).unwrap();
        let cfg = AugLagConfig {
            outer_iters: 3,
            inner: TrainConfig {
                max_epochs: 10,
                ..TrainConfig::smoke()
            },
            ..AugLagConfig::smoke(p0 * 1e-6)
        };
        let report = train_auglag(&mut net, &data, &cfg).unwrap();
        assert!(report.lambda_final > 0.0, "λ should grow: {report:?}");
        assert!(!report.outer.is_empty());
    }

    #[test]
    fn loose_budget_behaves_like_unconstrained() {
        let (split, _) = iris_data();
        let data = DataRefs::from_split(&split);
        let mut net = tiny_network(4, 3, 17);
        let p0 = hard_power(&net, data.x_train).unwrap();
        // Budget far above anything reachable: λ stays 0 and accuracy
        // should improve like plain CE training.
        let cfg = AugLagConfig::smoke(p0 * 100.0);
        let report = train_auglag(&mut net, &data, &cfg).unwrap();
        assert_eq!(report.lambda_final, 0.0);
        assert!(report.feasible);
        assert!(report.val_accuracy > 0.5, "acc {}", report.val_accuracy);
    }

    #[test]
    fn outer_records_are_complete() {
        let (split, _) = iris_data();
        let data = DataRefs::from_split(&split);
        let mut net = tiny_network(4, 3, 19);
        let p0 = hard_power(&net, data.x_train).unwrap();
        let cfg = AugLagConfig {
            outer_iters: 2,
            inner: TrainConfig {
                max_epochs: 8,
                ..TrainConfig::smoke()
            },
            ..AugLagConfig::smoke(p0)
        };
        let report = train_auglag(&mut net, &data, &cfg).unwrap();
        assert_eq!(report.outer.len(), 2);
        assert_eq!(report.outer[0].lambda, 0.0);
        for rec in &report.outer {
            assert!(rec.power_watts > 0.0);
            assert!(rec.fit.epochs > 0);
        }
    }

    #[test]
    fn observed_run_reports_outer_iters_and_constraint_context() {
        use crate::observer::RecordingObserver;

        let (split, _) = iris_data();
        let data = DataRefs::from_split(&split);
        let mut net = tiny_network(4, 3, 29);
        let p0 = hard_power(&net, data.x_train).unwrap();
        let cfg = AugLagConfig {
            outer_iters: 2,
            inner: TrainConfig {
                max_epochs: 8,
                ..TrainConfig::smoke()
            },
            ..AugLagConfig::smoke(p0)
        };
        let mut obs = RecordingObserver::new();
        let report = train_auglag_observed(&mut net, &data, &cfg, &mut obs).unwrap();

        // One observer callback per outer record, in order.
        assert_eq!(obs.outer_iters.len(), report.outer.len());
        for (k, (iter, rec)) in obs.outer_iters.iter().enumerate() {
            assert_eq!(*iter, k);
            assert_eq!(rec.lambda, report.outer[k].lambda);
        }
        // Every inner epoch is stamped with μ, a power reading and the
        // normalized constraint.
        let total_epochs: usize = report.outer.iter().map(|r| r.fit.epochs).sum();
        assert!(obs.epochs.len() >= total_epochs);
        for e in &obs.epochs {
            assert_eq!(e.mu, Some(cfg.mu));
            let p = e.power_watts.expect("constrained epochs measure power");
            let c = e.constraint.expect("constraint stamped");
            assert!((c - (p / cfg.budget_watts - 1.0)).abs() < 1e-12);
        }
        // Constrained run: the restored model's power is reported.
        for rec in &report.outer {
            if rec.fit.best_is_feasible {
                let p = rec.fit.final_power_watts.expect("power tracked");
                assert!(p <= cfg.budget_watts * (1.0 + 1e-9));
            }
        }
    }

    #[test]
    fn rescue_milestones_are_observed_on_infeasible_runs() {
        use crate::observer::RecordingObserver;

        let (split, _) = iris_data();
        let data = DataRefs::from_split(&split);
        let mut net = tiny_network(4, 3, 31);
        // Impossible budget: the outer loop cannot become feasible, so
        // the rescue phase must fire and report its milestones.
        let cfg = AugLagConfig {
            outer_iters: 1,
            inner: TrainConfig {
                max_epochs: 6,
                ..TrainConfig::smoke()
            },
            ..AugLagConfig::smoke(hard_power(&net, data.x_train).unwrap() * 1e-9)
        };
        let mut obs = RecordingObserver::new();
        let report = train_auglag_observed(&mut net, &data, &cfg, &mut obs).unwrap();
        assert!(report.rescued);
        let stages: Vec<&str> = obs.rescues.iter().map(|r| r.stage).collect();
        assert_eq!(stages.first(), Some(&"start"));
        assert_eq!(stages.last(), Some(&"done"));
        assert!(obs
            .rescues
            .iter()
            .all(|r| r.budget_watts == cfg.budget_watts));
    }

    #[test]
    #[should_panic(expected = "budget must be positive")]
    fn rejects_nonpositive_budget() {
        let (split, _) = iris_data();
        let data = DataRefs::from_split(&split);
        let mut net = tiny_network(4, 3, 23);
        let _ = train_auglag(&mut net, &data, &AugLagConfig::smoke(0.0));
    }
}
