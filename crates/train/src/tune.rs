//! Validation-based selection of the augmented Lagrangian `μ`.
//!
//! The paper selects `μ` with RayTune (Sec. IV-A1). This module is the
//! deterministic stand-in: evaluate a log-uniform grid of candidates,
//! score each by (feasibility, validation accuracy), and return the
//! winner. The search is embarrassingly parallel across candidates;
//! callers may thread it themselves if desired.

use crate::auglag::{train_auglag, AugLagConfig};
use crate::error::TrainError;
use crate::trainer::DataRefs;
use pnc_core::PrintedNetwork;

/// One evaluated `μ` candidate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MuTrial {
    /// Candidate value.
    pub mu: f64,
    /// Whether the run ended feasible.
    pub feasible: bool,
    /// Validation accuracy of the run's restored model.
    pub val_accuracy: f64,
    /// Final power in watts.
    pub power_watts: f64,
}

/// Result of a `μ` search.
#[derive(Debug, Clone)]
pub struct MuSearchReport {
    /// Every evaluated candidate.
    pub trials: Vec<MuTrial>,
    /// Index of the winner.
    pub best: usize,
}

impl MuSearchReport {
    /// The winning `μ`.
    pub fn best_mu(&self) -> f64 {
        self.trials[self.best].mu
    }
}

/// Default log-uniform candidate grid for `μ`.
pub fn default_mu_grid() -> Vec<f64> {
    vec![0.5, 1.0, 2.0, 5.0, 10.0]
}

/// Evaluates each candidate `μ` by running the augmented Lagrangian
/// from the same initial network (cloned per trial) and scoring by
/// (feasible, validation accuracy).
///
/// # Errors
///
/// Returns [`TrainError::Core`] when data shapes disagree with the
/// network topology, and [`TrainError::NonFinite`] when a trial run
/// collapses numerically.
///
/// # Panics
///
/// Panics when `candidates` is empty.
pub fn select_mu(
    net_template: &PrintedNetwork,
    data: &DataRefs<'_>,
    base_cfg: &AugLagConfig,
    candidates: &[f64],
) -> Result<MuSearchReport, TrainError> {
    assert!(!candidates.is_empty(), "select_mu: no candidates");
    let mut trials = Vec::with_capacity(candidates.len());
    for &mu in candidates {
        let mut net = net_template.clone();
        let cfg = AugLagConfig { mu, ..*base_cfg };
        let report = train_auglag(&mut net, data, &cfg)?;
        trials.push(MuTrial {
            mu,
            feasible: report.feasible,
            val_accuracy: report.val_accuracy,
            power_watts: report.power_watts,
        });
    }
    let best = trials
        .iter()
        .enumerate()
        .max_by(|a, b| {
            // total_cmp gives a total order even if an accuracy is NaN.
            (a.1.feasible.cmp(&b.1.feasible)).then(a.1.val_accuracy.total_cmp(&b.1.val_accuracy))
        })
        .map(|(i, _)| i)
        // lint: allow(L001, reason = "candidates is asserted non-empty above, so trials is too")
        .expect("non-empty");
    Ok(MuSearchReport { trials, best })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::auglag::hard_power;
    use crate::trainer::test_support::tiny_network;
    use crate::trainer::TrainConfig;
    use pnc_datasets::{Dataset, DatasetId};

    #[test]
    fn picks_a_feasible_winner_when_possible() {
        let ds = Dataset::generate(DatasetId::Iris, 11);
        let split = ds.split(7);
        let data = DataRefs::from_split(&split);
        let net = tiny_network(4, 3, 61);
        let p0 = hard_power(&net, data.x_train).unwrap();
        let base = AugLagConfig {
            outer_iters: 2,
            inner: TrainConfig {
                max_epochs: 15,
                ..TrainConfig::smoke()
            },
            ..AugLagConfig::smoke(p0)
        };
        let report = select_mu(&net, &data, &base, &[1.0, 5.0]).unwrap();
        assert_eq!(report.trials.len(), 2);
        let winner = &report.trials[report.best];
        assert!(winner.feasible, "{report:?}");
        // lint: allow(L002, reason = "grid values are copied through untouched, bit-exact")
        assert!(report.best_mu() == 1.0 || report.best_mu() == 5.0);
    }

    #[test]
    #[should_panic(expected = "no candidates")]
    fn empty_grid_panics() {
        let ds = Dataset::generate(DatasetId::Iris, 12);
        let split = ds.split(8);
        let data = DataRefs::from_split(&split);
        let net = tiny_network(4, 3, 67);
        let _ = select_mu(&net, &data, &AugLagConfig::smoke(1e-3), &[]);
    }

    #[test]
    fn default_grid_is_log_spread() {
        let g = default_mu_grid();
        assert!(g.len() >= 4);
        assert!(g.windows(2).all(|w| w[1] > w[0]));
    }
}
