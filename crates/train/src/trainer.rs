//! The shared training loop.
//!
//! Reproduces the paper's setup (Sec. IV-A1): full-batch gradient
//! descent with Adam starting at learning rate 0.1, early stopping that
//! halves the learning rate after `patience` epochs without improvement
//! on the validation set, and best-model tracking that prefers
//! *feasible* iterates (power within budget) over infeasible ones.

use crate::error::{non_finite_what, TrainError};
use crate::observer::{NoopObserver, TrainObserver};
use pnc_autodiff::optim::clip_grad_norm;
use pnc_autodiff::{Adam, Optimizer, Tape, Var};
use pnc_core::network::BoundNetwork;
use pnc_core::PrintedNetwork;
use pnc_linalg::Matrix;
use pnc_telemetry::Stopwatch;

/// Borrowed training/validation data.
#[derive(Debug, Clone, Copy)]
pub struct DataRefs<'a> {
    /// Training features.
    pub x_train: &'a Matrix,
    /// Training labels.
    pub y_train: &'a [usize],
    /// Validation features.
    pub x_val: &'a Matrix,
    /// Validation labels.
    pub y_val: &'a [usize],
}

impl<'a> DataRefs<'a> {
    /// Builds from a dataset split.
    pub fn from_split(split: &'a pnc_datasets::Split) -> Self {
        DataRefs {
            x_train: &split.train.x,
            y_train: &split.train.labels,
            x_val: &split.val.x,
            y_val: &split.val.labels,
        }
    }
}

/// Loop hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainConfig {
    /// Maximum epochs.
    pub max_epochs: usize,
    /// Initial Adam learning rate (paper: 0.1).
    pub lr: f64,
    /// Epochs without validation improvement before halving the rate
    /// (paper: 100).
    pub patience: usize,
    /// Learning-rate multiplier on plateau.
    pub lr_decay: f64,
    /// Stop once the rate falls below this.
    pub min_lr: f64,
    /// Global gradient-norm clip (guards against exploding constraint
    /// gradients at strong violations).
    pub grad_clip: f64,
    /// RNG seed of the surrounding run (network init + data split),
    /// stamped into [`FitReport::seed`] so every persisted fit record
    /// names the seed that reproduces it. `None` when the caller did
    /// not thread one. This is the single home of the seed — outer
    /// drivers ([`crate::AugLagConfig`], [`crate::PenaltyConfig`])
    /// carry it here via their `inner` config.
    pub seed: Option<u64>,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            max_epochs: 2000,
            lr: 0.1,
            patience: 100,
            lr_decay: 0.5,
            min_lr: 1e-3,
            grad_clip: 10.0,
            seed: None,
        }
    }
}

impl TrainConfig {
    /// Tiny preset for unit tests.
    pub fn smoke() -> Self {
        TrainConfig {
            max_epochs: 60,
            patience: 25,
            ..TrainConfig::default()
        }
    }

    /// Returns this config with the run seed stamped in (see
    /// [`TrainConfig::seed`]).
    pub fn with_seed(self, seed: u64) -> Self {
        TrainConfig {
            seed: Some(seed),
            ..self
        }
    }
}

/// Outcome of a [`fit`] run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FitReport {
    /// Epochs actually executed.
    pub epochs: usize,
    /// Best validation accuracy seen (on the restored model).
    pub best_val_accuracy: f64,
    /// Whether the restored model satisfied the feasibility predicate.
    pub best_is_feasible: bool,
    /// Objective value at the last epoch.
    pub final_objective: f64,
    /// Learning rate at termination.
    pub final_lr: f64,
    /// Hard power (watts) of the restored best model, when the run's
    /// measure closure evaluated power (constrained runs); `None` for
    /// plain cross-entropy fits that never price power.
    pub final_power_watts: Option<f64>,
    /// Wall-clock duration of the whole fit, milliseconds.
    pub wall_clock_ms: f64,
    /// RNG seed the surrounding run used (stamped from
    /// [`TrainConfig::seed`]), so every persisted fit record names the
    /// seed that reproduces it. `None` when the caller did not thread
    /// one.
    pub seed: Option<u64>,
}

/// Builds the total objective for one epoch: receives the tape, the
/// bound network and the cross-entropy node; returns the scalar to
/// minimize.
pub type ObjectiveFn<'f> = dyn Fn(&mut Tape, &BoundNetwork, Var) -> Var + 'f;

/// Feasibility predicate evaluated on the *current* network each epoch
/// (e.g. "hard power within budget"). Used only for best-model
/// selection, never for gradients.
pub type FeasibleFn<'f> = dyn Fn(&PrintedNetwork) -> bool + 'f;

/// Per-epoch hard measurement produced by a [`MeasureFn`]. Bundling
/// power and feasibility into one closure means the (SPICE-backed)
/// hard power is computed at most once per epoch, exactly as often as
/// the old feasibility predicate evaluated it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpochMeasure {
    /// Hard power (watts) of the current iterate, when the run prices
    /// power; `None` for unconstrained fits.
    pub power_watts: Option<f64>,
    /// Whether the current iterate is feasible. Used only for
    /// best-model selection, never for gradients.
    pub feasible: bool,
}

impl EpochMeasure {
    /// Measure for runs without a power constraint: always feasible,
    /// no power evaluation.
    pub fn unconstrained() -> Self {
        EpochMeasure {
            power_watts: None,
            feasible: true,
        }
    }
}

/// Hard measurement evaluated on the *current* network once per epoch.
pub type MeasureFn<'f> = dyn Fn(&PrintedNetwork) -> EpochMeasure + 'f;

/// Constraint-side context a caller (e.g. the augmented Lagrangian
/// outer loop) stamps into every [`EpochRecord`] of an inner solve.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FitContext {
    /// Current multiplier estimate `λ`.
    pub lambda: Option<f64>,
    /// Penalty/step parameter `μ`.
    pub mu: Option<f64>,
    /// Power budget `P̄` (watts); with a measured power this also
    /// yields the normalized constraint `P/P̄ − 1` per epoch.
    pub budget_watts: Option<f64>,
}

/// One epoch's telemetry from [`fit_traced`] / [`fit_instrumented`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpochRecord {
    /// 1-based epoch index.
    pub epoch: usize,
    /// Objective value minimized this epoch.
    pub objective: f64,
    /// Validation accuracy after the update.
    pub val_accuracy: f64,
    /// Validation cross-entropy after the update.
    pub val_loss: f64,
    /// Whether the feasibility predicate held after the update.
    pub feasible: bool,
    /// Learning rate in effect.
    pub lr: f64,
    /// Global gradient norm *before* clipping.
    pub grad_norm: f64,
    /// Hard power (watts) after the update, when measured.
    pub power_watts: Option<f64>,
    /// Normalized constraint `P/P̄ − 1`, when both power and budget
    /// are known.
    pub constraint: Option<f64>,
    /// Multiplier `λ` of the surrounding outer iteration, if any.
    pub lambda: Option<f64>,
    /// Step parameter `μ` of the surrounding outer iteration, if any.
    pub mu: Option<f64>,
}

/// Trains `net` in place, returning the report. The best model under
/// (feasible, validation accuracy, low validation loss) ordering is
/// restored into `net` at the end.
///
/// # Errors
///
/// Returns [`TrainError::Core`] when data shapes disagree with the
/// network topology and [`TrainError::NonFinite`] when the objective
/// or gradient collapses to NaN/Inf.
pub fn fit(
    net: &mut PrintedNetwork,
    data: &DataRefs<'_>,
    cfg: &TrainConfig,
    objective: &ObjectiveFn<'_>,
    feasible: &FeasibleFn<'_>,
) -> Result<FitReport, TrainError> {
    let measure = |n: &PrintedNetwork| EpochMeasure {
        power_watts: None,
        feasible: feasible(n),
    };
    fit_instrumented(
        net,
        data,
        cfg,
        objective,
        &measure,
        &FitContext::default(),
        &mut NoopObserver,
    )
}

/// Adapts a per-epoch closure to the observer interface for
/// [`fit_traced`].
struct EpochFnObserver<'a>(&'a mut dyn FnMut(EpochRecord));

impl TrainObserver for EpochFnObserver<'_> {
    fn on_epoch(&mut self, record: &EpochRecord) {
        (self.0)(*record);
    }
}

/// Like [`fit`] but invokes `on_epoch` with per-epoch telemetry —
/// convergence curves, power trajectories, LR schedules — without
/// changing the training behaviour.
///
/// # Errors
///
/// Same conditions as [`fit`].
pub fn fit_traced(
    net: &mut PrintedNetwork,
    data: &DataRefs<'_>,
    cfg: &TrainConfig,
    objective: &ObjectiveFn<'_>,
    feasible: &FeasibleFn<'_>,
    on_epoch: &mut dyn FnMut(EpochRecord),
) -> Result<FitReport, TrainError> {
    let measure = |n: &PrintedNetwork| EpochMeasure {
        power_watts: None,
        feasible: feasible(n),
    };
    fit_instrumented(
        net,
        data,
        cfg,
        objective,
        &measure,
        &FitContext::default(),
        &mut EpochFnObserver(on_epoch),
    )
}

/// The fully instrumented training loop. `measure` runs once per epoch
/// on the updated network (hard power + feasibility in one pass);
/// `ctx` stamps the surrounding constraint state (λ, μ, budget) into
/// every [`EpochRecord`]; `observer` receives each record. Training
/// behaviour is identical to [`fit`] for the same `objective` and
/// feasibility semantics.
///
/// # Errors
///
/// Returns [`TrainError::Core`] when the training or validation
/// features disagree with the network topology, and
/// [`TrainError::NonFinite`] when the epoch's objective or gradient
/// norm is NaN/Inf — the poisoned epoch is still reported to the
/// observer (so logs and watchdogs see it) but the optimizer is never
/// stepped with non-finite values.
pub fn fit_instrumented(
    net: &mut PrintedNetwork,
    data: &DataRefs<'_>,
    cfg: &TrainConfig,
    objective: &ObjectiveFn<'_>,
    measure: &MeasureFn<'_>,
    ctx: &FitContext,
    observer: &mut dyn TrainObserver,
) -> Result<FitReport, TrainError> {
    let started = Stopwatch::start();
    let prof = observer.profiler();
    // Hot-path latency histograms: inert single-branch handles unless
    // the observer carries a metrics registry. Resolved once per fit —
    // the per-epoch cost is one `Stopwatch` read and an atomic add.
    let metrics = observer.metrics();
    let forward_ms = metrics.histogram("tape_forward_ms");
    let backward_ms = metrics.histogram("tape_backward_ms");
    let mut opt = Adam::with_lr(cfg.lr);
    let mut best_params: Vec<Matrix> = net.param_values();
    let mut best_key = (false, f64::NEG_INFINITY, f64::INFINITY); // (feasible, acc, -loss ordering)
    let mut best_power: Option<f64> = None;
    // Plateau detection follows the paper: "halving the learning rate
    // after [patience] epochs without improvement on the validation
    // set" — improvement meaning accuracy (loss still breaks ties for
    // model selection, but must not keep resetting the plateau clock).
    let mut best_acc_key = (false, f64::NEG_INFINITY);
    let mut stale = 0usize;
    let mut epochs = 0usize;
    let mut final_objective = f64::NAN;

    for epoch in 0..cfg.max_epochs {
        epochs = epoch + 1;
        let mut epoch_scope = prof.scope("epoch");
        epoch_scope.set_u64("epoch", epochs as u64);
        let mut tape = Tape::new();
        let (bound, total) = {
            let mut fwd = prof.scope("tape_forward");
            let _fwd_sample = forward_ms.start_sample();
            let bound = net.bind(&mut tape, data.x_train)?;
            let ce = tape.softmax_cross_entropy(bound.logits, data.y_train);
            let total = objective(&mut tape, &bound, ce);
            fwd.set_u64("nodes", tape.len() as u64);
            (bound, total)
        };
        final_objective = tape.scalar(total);
        let grads = {
            let _bwd_sample = backward_ms.start_sample();
            tape.backward_profiled(total, &prof)
        };

        let mut values = net.param_values();
        let mut grad_list = bound.param_grads(&grads);
        let grad_norm = clip_grad_norm(&mut grad_list, cfg.grad_clip);

        // NaN hygiene: abort before the optimizer ingests poisoned
        // values. The doomed epoch is still surfaced to the observer —
        // with NaN validation metrics, since evaluating the network
        // would be meaningless — so JSONL logs and the health watchdog
        // record exactly where the run collapsed.
        if let Some(what) = non_finite_what(final_objective, grad_norm) {
            observer.on_epoch(&EpochRecord {
                epoch: epochs,
                objective: final_objective,
                val_accuracy: f64::NAN,
                val_loss: f64::NAN,
                feasible: false,
                lr: opt.learning_rate(),
                grad_norm,
                power_watts: None,
                constraint: None,
                lambda: ctx.lambda,
                mu: ctx.mu,
            });
            net.set_param_values(&best_params);
            return Err(TrainError::NonFinite {
                epoch: epochs,
                what,
            });
        }

        opt.step_profiled(&mut values, &grad_list, &prof);
        net.set_param_values(&values);

        // Validation bookkeeping.
        let (val_acc, val_loss) = {
            let _validate = prof.scope("validate");
            let val_logits = net.predict(data.x_val)?;
            (
                pnc_autodiff::functional::accuracy(&val_logits, data.y_val),
                pnc_autodiff::functional::cross_entropy(&val_logits, data.y_val),
            )
        };
        let measured = {
            let _measure = prof.scope("measure");
            measure(net)
        };
        let is_feasible = measured.feasible;
        let key = (is_feasible, val_acc, -val_loss);

        if key > best_key {
            best_key = key;
            best_params = net.param_values();
            best_power = measured.power_watts;
        }
        observer.on_epoch(&EpochRecord {
            epoch: epochs,
            objective: final_objective,
            val_accuracy: val_acc,
            val_loss,
            feasible: is_feasible,
            lr: opt.learning_rate(),
            grad_norm,
            power_watts: measured.power_watts,
            constraint: match (measured.power_watts, ctx.budget_watts) {
                (Some(p), Some(b)) => Some(p / b - 1.0),
                _ => None,
            },
            lambda: ctx.lambda,
            mu: ctx.mu,
        });
        observer.on_network(epochs, net);
        let acc_key = (is_feasible, val_acc);
        if acc_key > best_acc_key {
            best_acc_key = acc_key;
            stale = 0;
        } else {
            stale += 1;
            if stale >= cfg.patience {
                let new_lr = opt.learning_rate() * cfg.lr_decay;
                if new_lr < cfg.min_lr {
                    break;
                }
                opt.set_learning_rate(new_lr);
                stale = 0;
            }
        }
    }

    net.set_param_values(&best_params);
    Ok(FitReport {
        epochs,
        best_val_accuracy: best_key.1.max(0.0),
        best_is_feasible: best_key.0,
        final_objective,
        final_lr: opt.learning_rate(),
        final_power_watts: best_power,
        wall_clock_ms: started.elapsed_ms(),
        seed: cfg.seed,
    })
}

/// Trains with plain cross-entropy (no power term). Used to measure the
/// unconstrained power ceiling `P_max` and as the fine-tuning engine.
///
/// # Errors
///
/// Same conditions as [`fit`].
pub fn fit_cross_entropy(
    net: &mut PrintedNetwork,
    data: &DataRefs<'_>,
    cfg: &TrainConfig,
) -> Result<FitReport, TrainError> {
    fit(net, data, cfg, &|_tape, _bound, ce| ce, &|_net| true)
}

#[cfg(test)]
pub(crate) mod test_support {
    use pnc_core::activation::{LearnableActivation, SurrogateFidelity};
    use pnc_core::{NetworkConfig, PrintedNetwork};
    use pnc_linalg::rng as lrng;
    use pnc_spice::AfKind;
    use pnc_surrogate::NegationModel;
    use std::sync::OnceLock;

    /// Process-wide smoke surrogates (fitting them once keeps the test
    /// battery fast).
    pub fn smoke_parts() -> &'static (LearnableActivation, NegationModel) {
        static CELL: OnceLock<(LearnableActivation, NegationModel)> = OnceLock::new();
        CELL.get_or_init(|| {
            let act = LearnableActivation::fit(AfKind::PTanh, &SurrogateFidelity::smoke()).unwrap();
            let neg = pnc_core::activation::fit_negation_model(9).unwrap();
            (act, neg)
        })
    }

    pub fn tiny_network(inputs: usize, outputs: usize, seed: u64) -> PrintedNetwork {
        let (act, neg) = smoke_parts().clone();
        let mut rng = lrng::seeded(seed);
        PrintedNetwork::new(
            inputs,
            outputs,
            NetworkConfig::default(),
            act,
            neg,
            &mut rng,
        )
        .unwrap()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pnc_datasets::{Dataset, DatasetId};

    #[test]
    fn cross_entropy_training_learns_iris() {
        let ds = Dataset::generate(DatasetId::Iris, 5);
        let split = ds.split(1);
        let data = DataRefs::from_split(&split);
        let mut net = test_support::tiny_network(4, 3, 42);
        let before = net.accuracy(data.x_val, data.y_val).unwrap();
        let cfg = TrainConfig {
            max_epochs: 150,
            patience: 60,
            ..TrainConfig::default()
        };
        let report = fit_cross_entropy(&mut net, &data, &cfg).unwrap();
        let after = net.accuracy(data.x_val, data.y_val).unwrap();
        assert!(
            after > before.max(0.55),
            "training should beat init/chance: {before} → {after}"
        );
        assert!(report.best_val_accuracy >= after - 1e-9);
        assert!(report.epochs > 0);
    }

    #[test]
    fn best_model_is_restored() {
        let ds = Dataset::generate(DatasetId::Iris, 6);
        let split = ds.split(2);
        let data = DataRefs::from_split(&split);
        let mut net = test_support::tiny_network(4, 3, 7);
        let report = fit_cross_entropy(&mut net, &data, &TrainConfig::smoke()).unwrap();
        // Restored model must achieve exactly the reported accuracy.
        let acc = net.accuracy(data.x_val, data.y_val).unwrap();
        assert!((acc - report.best_val_accuracy).abs() < 1e-12);
    }

    #[test]
    fn infeasible_predicate_is_recorded() {
        let ds = Dataset::generate(DatasetId::Iris, 7);
        let split = ds.split(3);
        let data = DataRefs::from_split(&split);
        let mut net = test_support::tiny_network(4, 3, 8);
        let cfg = TrainConfig {
            max_epochs: 5,
            ..TrainConfig::smoke()
        };
        let report = fit(&mut net, &data, &cfg, &|_t, _b, ce| ce, &|_n| false).unwrap();
        assert!(!report.best_is_feasible);
    }

    #[test]
    fn traced_fit_reports_every_epoch() {
        let ds = Dataset::generate(DatasetId::Iris, 9);
        let split = ds.split(5);
        let data = DataRefs::from_split(&split);
        let mut net = test_support::tiny_network(4, 3, 10);
        let cfg = TrainConfig {
            max_epochs: 12,
            ..TrainConfig::smoke()
        };
        let mut history = Vec::new();
        let report = fit_traced(
            &mut net,
            &data,
            &cfg,
            &|_t, _b, ce| ce,
            &|_n| true,
            &mut |rec| history.push(rec),
        )
        .unwrap();
        assert_eq!(history.len(), report.epochs);
        assert_eq!(history[0].epoch, 1);
        assert!(history.iter().all(|r| r.objective.is_finite()));
        assert!(history
            .iter()
            .all(|r| (0.0..=1.0).contains(&r.val_accuracy)));
        // Telemetry must not change training: plain fit from the same
        // seed produces the same final parameters.
        let mut net2 = test_support::tiny_network(4, 3, 10);
        fit(&mut net2, &data, &cfg, &|_t, _b, ce| ce, &|_n| true).unwrap();
        assert_eq!(net.param_values()[0], net2.param_values()[0]);
    }

    #[test]
    fn instrumented_fit_emits_one_event_per_epoch() {
        use crate::observer::TelemetryObserver;
        use pnc_telemetry::{MemorySink, Telemetry};
        use std::sync::Arc;

        let ds = Dataset::generate(DatasetId::Iris, 11);
        let split = ds.split(6);
        let data = DataRefs::from_split(&split);
        let mut net = test_support::tiny_network(4, 3, 12);

        let sink = Arc::new(MemorySink::new());
        let mut obs = TelemetryObserver::new(Telemetry::with_sink(sink.clone()));
        let report = fit_instrumented(
            &mut net,
            &data,
            &TrainConfig::smoke(),
            &|_t, _b, ce| ce,
            &|_n| EpochMeasure::unconstrained(),
            &FitContext::default(),
            &mut obs,
        )
        .unwrap();
        obs.finish();

        // Exactly one epoch event per executed epoch...
        let epochs = sink.events_named("epoch");
        assert_eq!(epochs.len(), report.epochs);
        // ...with 1-based, strictly monotonically increasing indices.
        for (i, e) in epochs.iter().enumerate() {
            assert_eq!(e.get_u64("epoch"), Some(i as u64 + 1));
            assert!(e.get_f64("grad_norm").is_some_and(|g| g >= 0.0));
            assert!(e.get_f64("lr").is_some_and(|l| l > 0.0));
        }
        // The duration histogram summarizes the same epoch count.
        let summary = sink.events_named("epoch_time_ms");
        assert_eq!(summary.len(), 1);
        assert_eq!(summary[0].get_u64("count"), Some(report.epochs as u64));
        assert!(report.wall_clock_ms >= 0.0);
        // Unconstrained run: no power was measured.
        assert_eq!(report.final_power_watts, None);
        assert!(epochs.iter().all(|e| e.get("power_watts").is_none()));
    }

    #[test]
    fn instrumentation_does_not_change_training() {
        use crate::observer::RecordingObserver;

        let ds = Dataset::generate(DatasetId::Iris, 12);
        let split = ds.split(7);
        let data = DataRefs::from_split(&split);
        let cfg = TrainConfig {
            max_epochs: 20,
            ..TrainConfig::smoke()
        };

        let mut plain = test_support::tiny_network(4, 3, 13);
        let r_plain = fit(&mut plain, &data, &cfg, &|_t, _b, ce| ce, &|_n| true).unwrap();

        let mut observed = test_support::tiny_network(4, 3, 13);
        let mut rec = RecordingObserver::new();
        let r_obs = fit_instrumented(
            &mut observed,
            &data,
            &cfg,
            &|_t, _b, ce| ce,
            &|_n| EpochMeasure::unconstrained(),
            &FitContext::default(),
            &mut rec,
        )
        .unwrap();

        assert_eq!(plain.param_values(), observed.param_values());
        assert_eq!(r_plain.epochs, r_obs.epochs);
        assert_eq!(r_plain.best_val_accuracy, r_obs.best_val_accuracy);
        assert_eq!(rec.epochs.len(), r_obs.epochs);
    }

    #[test]
    fn non_finite_loss_aborts_with_typed_error() {
        use crate::error::{NonFiniteKind, TrainError};
        use crate::observer::RecordingObserver;

        let ds = Dataset::generate(DatasetId::Iris, 13);
        let split = ds.split(8);
        let data = DataRefs::from_split(&split);
        let mut net = test_support::tiny_network(4, 3, 14);

        // Poison the objective from epoch 3 onwards.
        let calls = std::cell::Cell::new(0usize);
        let objective = |tape: &mut Tape, _b: &BoundNetwork, ce: Var| {
            let n = calls.get() + 1;
            calls.set(n);
            if n >= 3 {
                tape.mul_scalar(ce, f64::NAN)
            } else {
                ce
            }
        };
        let mut rec = RecordingObserver::new();
        let err = fit_instrumented(
            &mut net,
            &data,
            &TrainConfig::smoke(),
            &objective,
            &|_n| EpochMeasure::unconstrained(),
            &FitContext::default(),
            &mut rec,
        )
        .unwrap_err();
        assert_eq!(
            err,
            TrainError::NonFinite {
                epoch: 3,
                what: NonFiniteKind::Loss
            }
        );
        // The poisoned epoch is still reported (for logs/watchdogs)…
        assert_eq!(rec.epochs.len(), 3);
        assert!(rec.epochs[2].objective.is_nan());
        // …but the first two epochs were healthy.
        assert!(rec.epochs[..2].iter().all(|r| r.objective.is_finite()));
    }

    #[test]
    fn seed_is_threaded_into_the_report() {
        let ds = Dataset::generate(DatasetId::Iris, 14);
        let split = ds.split(9);
        let data = DataRefs::from_split(&split);
        let mut net = test_support::tiny_network(4, 3, 15);
        let cfg = TrainConfig {
            max_epochs: 4,
            ..TrainConfig::smoke()
        }
        .with_seed(77);
        let report = fit_instrumented(
            &mut net,
            &data,
            &cfg,
            &|_t, _b, ce| ce,
            &|_n| EpochMeasure::unconstrained(),
            &FitContext::default(),
            &mut NoopObserver,
        )
        .unwrap();
        assert_eq!(report.seed, Some(77));
        // A config without a seed threads none.
        let unseeded = TrainConfig { seed: None, ..cfg };
        let report = fit_cross_entropy(&mut net, &data, &unseeded).unwrap();
        assert_eq!(report.seed, None);
    }

    #[test]
    fn objective_can_use_power() {
        // A huge power weight must yield lower final power than pure CE.
        let ds = Dataset::generate(DatasetId::Iris, 8);
        let split = ds.split(4);
        let data = DataRefs::from_split(&split);
        let cfg = TrainConfig::smoke();

        let mut net_ce = test_support::tiny_network(4, 3, 9);
        fit_cross_entropy(&mut net_ce, &data, &cfg).unwrap();
        let p_ce = net_ce.power_report(data.x_train).unwrap().total();

        let mut net_pw = test_support::tiny_network(4, 3, 9);
        fit(
            &mut net_pw,
            &data,
            &cfg,
            &|tape, bound, ce| {
                let pw = tape.mul_scalar(bound.power, 1e6); // watts → O(10)
                tape.add(ce, pw)
            },
            &|_n| true,
        )
        .unwrap();
        let p_pw = net_pw.power_report(data.x_train).unwrap().total();
        assert!(
            p_pw < p_ce,
            "power-penalized run should burn less: {p_pw:e} vs {p_ce:e}"
        );
    }
}
