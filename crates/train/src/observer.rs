//! Non-global training observers.
//!
//! Instrumentation is threaded through the trainers as an explicit
//! `&mut dyn TrainObserver` — no global subscriber, no thread-locals —
//! so two concurrent experiments can log to different sinks and tests
//! can capture events deterministically. [`NoopObserver`] keeps the
//! uninstrumented paths free (empty default methods inline away), and
//! [`TelemetryObserver`] bridges the typed callbacks onto a
//! [`pnc_telemetry`] sink.

use crate::auglag::OuterIterRecord;
use crate::trainer::EpochRecord;
use pnc_core::network::PrintedNetwork;
use pnc_telemetry::{Event, Level, MetricsHandle, Profiler, Stopwatch, StreamHistogram, Telemetry};

/// A feasibility-restoration (rescue) phase milestone.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RescueEvent {
    /// Which stage fired: `"start"`, `"penalty_round"`, `"shrink"`,
    /// `"done"`.
    pub stage: &'static str,
    /// Stage-specific counter: penalty round index, shrink steps
    /// taken; 0 for start/done.
    pub round: usize,
    /// Hard power (watts) when the event fired.
    pub power_watts: f64,
    /// The power budget being restored to (watts).
    pub budget_watts: f64,
}

/// Typed callbacks from the trainers. All methods default to no-ops so
/// observers implement only what they care about.
pub trait TrainObserver {
    /// Whether this observer consumes per-epoch power measurements.
    /// Trainers whose algorithm does not itself need hard power (the
    /// penalty baseline) skip the per-epoch power evaluation when this
    /// returns `false`. Defaults to `true`.
    fn wants_power(&self) -> bool {
        true
    }

    /// The profiler the trainers open hierarchical spans through
    /// (`outer_iter` → `epoch` → `tape_forward` / `tape_backward` /
    /// `optimizer_step` / …). Defaults to a disabled profiler, whose
    /// scopes are single-branch no-ops.
    fn profiler(&self) -> Profiler {
        Profiler::disabled()
    }

    /// The streaming-metrics handle the trainers resolve hot-path
    /// histograms from (`tape_forward_ms`, `tape_backward_ms`).
    /// Defaults to a disabled handle, whose histograms are
    /// single-branch no-ops.
    fn metrics(&self) -> MetricsHandle {
        MetricsHandle::disabled()
    }

    /// One inner-loop epoch finished.
    fn on_epoch(&mut self, _record: &EpochRecord) {}
    /// Peek at the network right after an epoch's update and power
    /// measurement (same `epoch` as the matching [`EpochRecord`]).
    /// Observers must not perturb training — read-only access, no RNG.
    /// Defaults to a no-op so ordinary observers pay nothing; the
    /// fidelity monitor uses it for SPICE spot checks.
    fn on_network(&mut self, _epoch: usize, _net: &PrintedNetwork) {}
    /// One augmented-Lagrangian outer iteration finished
    /// (`iter` is 0-based).
    fn on_outer_iter(&mut self, _iter: usize, _record: &OuterIterRecord) {}
    /// The rescue phase reached a milestone.
    fn on_rescue(&mut self, _event: &RescueEvent) {}
}

/// Ignores everything; the default observer.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopObserver;

impl TrainObserver for NoopObserver {
    fn wants_power(&self) -> bool {
        false
    }
}

/// Collects every callback into vectors — the test observer.
#[derive(Debug, Default)]
pub struct RecordingObserver {
    /// Epoch records in arrival order.
    pub epochs: Vec<EpochRecord>,
    /// `(iter, record)` pairs in arrival order.
    pub outer_iters: Vec<(usize, OuterIterRecord)>,
    /// Rescue milestones in arrival order.
    pub rescues: Vec<RescueEvent>,
}

impl RecordingObserver {
    /// An empty recorder.
    pub fn new() -> Self {
        Self::default()
    }
}

impl TrainObserver for RecordingObserver {
    fn on_epoch(&mut self, record: &EpochRecord) {
        self.epochs.push(*record);
    }

    fn on_outer_iter(&mut self, iter: usize, record: &OuterIterRecord) {
        self.outer_iters.push((iter, *record));
    }

    fn on_rescue(&mut self, event: &RescueEvent) {
        self.rescues.push(*event);
    }
}

/// Bridges trainer callbacks onto a telemetry sink:
///
/// * each epoch → an `"epoch"` [`Level::Info`] event;
/// * each outer iteration → an `"outer_iter"` [`Level::Info`] event;
/// * each rescue milestone → a `"rescue"` [`Level::Warn`] event
///   (rescues mean the constrained run left the feasible set);
/// * epoch wall-clock durations accumulate into a streamed histogram
///   that [`TelemetryObserver::finish`] flushes as one
///   `"epoch_time_ms"` summary event (count/min/max/mean/p50/p95/p99).
///   When the wrapped handle carries a metrics registry
///   ([`pnc_telemetry::Telemetry::with_metrics`]) the histogram lives
///   in the registry under the same name, so the Prometheus exposition
///   sees it too.
#[derive(Debug)]
pub struct TelemetryObserver {
    tel: Telemetry,
    epoch_ms: StreamHistogram,
    last_epoch: Stopwatch,
}

impl TelemetryObserver {
    /// Wraps a telemetry handle.
    pub fn new(tel: Telemetry) -> Self {
        let epoch_ms = if tel.metrics().is_enabled() {
            tel.metrics().histogram("epoch_time_ms")
        } else {
            StreamHistogram::new()
        };
        TelemetryObserver {
            tel,
            epoch_ms,
            last_epoch: Stopwatch::start(),
        }
    }

    /// The wrapped handle.
    pub fn telemetry(&self) -> &Telemetry {
        &self.tel
    }

    /// Emits the epoch-duration summary (if any epochs ran) and
    /// returns the handle.
    pub fn finish(self) -> Telemetry {
        let summary = self.epoch_ms.summary();
        if summary.count > 0 {
            self.tel
                .emit_event(summary.to_event("epoch_time_ms", Level::Info));
        }
        self.tel
    }
}

impl TrainObserver for TelemetryObserver {
    fn profiler(&self) -> Profiler {
        self.tel.profiler().clone()
    }

    fn metrics(&self) -> MetricsHandle {
        self.tel.metrics().clone()
    }

    fn on_epoch(&mut self, record: &EpochRecord) {
        self.epoch_ms.record(self.last_epoch.lap_ms());

        let r = *record;
        self.tel.emit(|| {
            let mut e = Event::new("epoch", Level::Info)
                .with_u64("epoch", r.epoch as u64)
                .with_f64("objective", r.objective)
                .with_f64("val_accuracy", r.val_accuracy)
                .with_f64("val_loss", r.val_loss)
                .with_bool("feasible", r.feasible)
                .with_f64("lr", r.lr)
                .with_f64("grad_norm", r.grad_norm);
            if let Some(p) = r.power_watts {
                e = e.with_f64("power_watts", p);
            }
            if let Some(c) = r.constraint {
                e = e.with_f64("constraint", c);
            }
            if let Some(l) = r.lambda {
                e = e.with_f64("lambda", l);
            }
            if let Some(m) = r.mu {
                e = e.with_f64("mu", m);
            }
            e
        });
    }

    fn on_outer_iter(&mut self, iter: usize, record: &OuterIterRecord) {
        let r = *record;
        self.tel.emit(|| {
            Event::new("outer_iter", Level::Info)
                .with_u64("iter", iter as u64)
                .with_f64("lambda", r.lambda)
                .with_f64("mu", r.mu)
                .with_f64("power_watts", r.power_watts)
                .with_f64("constraint", r.constraint)
                .with_f64("val_accuracy", r.val_accuracy)
                .with_u64("epochs", r.fit.epochs as u64)
                .with_bool("fit_feasible", r.fit.best_is_feasible)
        });
    }

    fn on_rescue(&mut self, event: &RescueEvent) {
        let e = *event;
        self.tel.emit(|| {
            Event::new("rescue", Level::Warn)
                .with_str("stage", e.stage)
                .with_u64("round", e.round as u64)
                .with_f64("power_watts", e.power_watts)
                .with_f64("budget_watts", e.budget_watts)
        });
    }
}
