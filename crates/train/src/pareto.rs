//! Pareto-front extraction and accuracy-per-power utilities.
//!
//! Used for Fig. 5 (penalty-based Pareto fronts vs single-run augmented
//! Lagrangian optima) and the headline accuracy-to-power-ratio
//! comparisons (52×/59× in the abstract).

/// One evaluated model in the power–accuracy plane.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ParetoPoint {
    /// Power in milliwatts (lower is better).
    pub power_mw: f64,
    /// Test accuracy in `[0, 1]` (higher is better).
    pub accuracy: f64,
}

impl ParetoPoint {
    /// `true` when `self` dominates `other` (no worse in both, strictly
    /// better in at least one).
    pub fn dominates(&self, other: &ParetoPoint) -> bool {
        let no_worse = self.power_mw <= other.power_mw && self.accuracy >= other.accuracy;
        let better = self.power_mw < other.power_mw || self.accuracy > other.accuracy;
        no_worse && better
    }

    /// Accuracy-to-power ratio (percentage points per milliwatt) — the
    /// paper's headline efficiency metric.
    pub fn accuracy_per_mw(&self) -> f64 {
        100.0 * self.accuracy / self.power_mw.max(1e-12)
    }
}

/// Extracts the non-dominated subset, sorted by ascending power.
pub fn pareto_front(points: &[ParetoPoint]) -> Vec<ParetoPoint> {
    let mut front: Vec<ParetoPoint> = points
        .iter()
        .filter(|p| !points.iter().any(|q| q.dominates(p)))
        .copied()
        .collect();
    front.sort_by(|a, b| a.power_mw.total_cmp(&b.power_mw));
    front.dedup_by(|a, b| a.power_mw == b.power_mw && a.accuracy == b.accuracy);
    front
}

/// Best accuracy on the front at power `≤ budget_mw`, if any point
/// qualifies — how a Pareto front answers a budget query.
pub fn best_under_budget(front: &[ParetoPoint], budget_mw: f64) -> Option<ParetoPoint> {
    front
        .iter()
        .filter(|p| p.power_mw <= budget_mw)
        .max_by(|a, b| a.accuracy.total_cmp(&b.accuracy))
        .copied()
}

/// Hypervolume with respect to a reference point `(ref_power_mw, 0)` —
/// a scalar quality measure for comparing fronts in ablations. Points
/// beyond the reference power are ignored.
pub fn hypervolume(front: &[ParetoPoint], ref_power_mw: f64) -> f64 {
    let mut pts: Vec<ParetoPoint> = front
        .iter()
        .filter(|p| p.power_mw <= ref_power_mw)
        .copied()
        .collect();
    pts.sort_by(|a, b| a.power_mw.total_cmp(&b.power_mw));
    let mut hv = 0.0;
    let mut best_acc: f64 = 0.0;
    // Sweep from high power to low: each point covers a rectangle up to
    // the next-more-expensive point; accuracy below the cheapest point
    // contributes nothing.
    let mut right = ref_power_mw;
    for p in pts.iter().rev() {
        best_acc = best_acc.max(p.accuracy);
        hv += (right - p.power_mw) * best_acc;
        right = p.power_mw;
    }
    hv
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pt(power_mw: f64, accuracy: f64) -> ParetoPoint {
        ParetoPoint { power_mw, accuracy }
    }

    #[test]
    fn domination_rules() {
        assert!(pt(1.0, 0.9).dominates(&pt(2.0, 0.8)));
        assert!(pt(1.0, 0.9).dominates(&pt(1.0, 0.8)));
        assert!(!pt(1.0, 0.8).dominates(&pt(2.0, 0.9)));
        assert!(!pt(1.0, 0.9).dominates(&pt(1.0, 0.9)));
    }

    #[test]
    fn front_extraction() {
        let points = vec![
            pt(1.0, 0.6),
            pt(2.0, 0.8),
            pt(3.0, 0.9),
            pt(2.5, 0.7),  // dominated by (2.0, 0.8)
            pt(1.5, 0.55), // dominated by (1.0, 0.6)
        ];
        let front = pareto_front(&points);
        assert_eq!(front.len(), 3);
        assert_eq!(front[0], pt(1.0, 0.6));
        assert_eq!(front[2], pt(3.0, 0.9));
    }

    #[test]
    fn front_of_empty_is_empty() {
        assert!(pareto_front(&[]).is_empty());
    }

    #[test]
    fn budget_query() {
        let front = pareto_front(&[pt(1.0, 0.6), pt(2.0, 0.8), pt(3.0, 0.9)]);
        assert_eq!(best_under_budget(&front, 2.5).unwrap(), pt(2.0, 0.8));
        assert_eq!(best_under_budget(&front, 0.5), None);
    }

    #[test]
    fn accuracy_per_mw_metric() {
        let p = pt(0.25, 0.745);
        assert!((p.accuracy_per_mw() - 298.0).abs() < 1e-9);
    }

    #[test]
    fn hypervolume_prefers_better_fronts() {
        let good = pareto_front(&[pt(1.0, 0.9), pt(0.5, 0.7)]);
        let bad = pareto_front(&[pt(1.0, 0.6), pt(0.5, 0.4)]);
        assert!(hypervolume(&good, 2.0) > hypervolume(&bad, 2.0));
    }

    #[test]
    fn hypervolume_ignores_points_beyond_reference() {
        let f1 = vec![pt(1.0, 0.8)];
        let f2 = vec![pt(1.0, 0.8), pt(5.0, 0.99)];
        assert_eq!(hypervolume(&f1, 2.0), hypervolume(&f2, 2.0));
    }

    #[test]
    fn front_of_single_point_is_that_point() {
        let front = pareto_front(&[pt(2.0, 0.7)]);
        assert_eq!(front, vec![pt(2.0, 0.7)]);
    }

    #[test]
    fn front_deduplicates_identical_points() {
        // Identical points do not dominate each other (domination is
        // strict), so dedup must collapse them after sorting.
        let front = pareto_front(&[pt(1.0, 0.6), pt(1.0, 0.6), pt(1.0, 0.6)]);
        assert_eq!(front, vec![pt(1.0, 0.6)]);
    }

    #[test]
    fn front_drops_every_dominated_point() {
        // One point dominates all others: the front is that point alone.
        let points = vec![pt(1.0, 0.9), pt(2.0, 0.8), pt(3.0, 0.5), pt(1.5, 0.9)];
        let front = pareto_front(&points);
        assert_eq!(front, vec![pt(1.0, 0.9)]);
    }

    #[test]
    fn budget_query_with_no_feasible_point_is_none() {
        let front = pareto_front(&[pt(1.0, 0.6), pt(2.0, 0.8)]);
        assert_eq!(best_under_budget(&front, 0.9), None);
        assert_eq!(best_under_budget(&[], 10.0), None);
    }

    #[test]
    fn hypervolume_with_reference_below_the_front_is_zero() {
        // Every point costs more than the reference power, so nothing
        // contributes volume.
        let front = pareto_front(&[pt(2.0, 0.9), pt(3.0, 0.95)]);
        assert_eq!(hypervolume(&front, 1.0), 0.0);
        assert_eq!(hypervolume(&[], 1.0), 0.0);
    }
}
