//! The penalty-based baseline (Zhao et al., ICCAD'23 — the paper's
//! comparison method, Sec. IV-A3).
//!
//! Minimizes `ℒ + α · P/P_ref` for a fixed scaling factor `α ∈ [0, 1]`.
//! Unlike the augmented Lagrangian there is no constraint semantics:
//! each `α` lands *somewhere* on the power–accuracy plane, so tracing a
//! Pareto front takes a grid of `α` values × several seeds — up to 150
//! runs per dataset in the paper, versus a single constrained run.

use crate::auglag::hard_power;
use crate::error::TrainError;
use crate::observer::{NoopObserver, TrainObserver};
use crate::trainer::{
    fit_instrumented, DataRefs, EpochMeasure, FitContext, FitReport, TrainConfig,
};
use pnc_core::PrintedNetwork;

/// Penalty-method settings.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PenaltyConfig {
    /// Power weight `α` (0 = pure accuracy, 1 = heavy power pressure).
    pub alpha: f64,
    /// Normalizing power `P_ref` in watts (typically the unconstrained
    /// maximum power of the dataset). Ignored in faithful mode.
    pub p_ref_watts: f64,
    /// Inner training settings.
    pub inner: TrainConfig,
    /// Paper-faithful baseline behaviour (Zhao et al., ICCAD'23, as the
    /// paper benchmarks it): the penalty is `α · P` with `P` in
    /// milliwatts (no per-dataset normalization — the ill-conditioning
    /// the paper criticizes) and the activation designs `q` stay frozen
    /// at their initial values (learnable activation hardware is this
    /// paper's contribution, not the baseline's).
    pub faithful: bool,
}

impl PenaltyConfig {
    /// Controlled baseline for a given `α` and reference power: same
    /// substrate as the augmented Lagrangian (learnable designs,
    /// normalized penalty).
    pub fn new(alpha: f64, p_ref_watts: f64) -> Self {
        PenaltyConfig {
            alpha,
            p_ref_watts,
            inner: TrainConfig::default(),
            faithful: false,
        }
    }

    /// Paper-faithful baseline (see [`PenaltyConfig::faithful`]).
    pub fn faithful(alpha: f64) -> Self {
        PenaltyConfig {
            alpha,
            p_ref_watts: 1.0,
            inner: TrainConfig::default(),
            faithful: true,
        }
    }

    /// Tiny preset for unit tests.
    pub fn smoke(alpha: f64, p_ref_watts: f64) -> Self {
        PenaltyConfig {
            alpha,
            p_ref_watts,
            inner: TrainConfig::smoke(),
            faithful: false,
        }
    }
}

/// Outcome of one penalty run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PenaltyReport {
    /// The `α` used.
    pub alpha: f64,
    /// Hard power of the final model, watts.
    pub power_watts: f64,
    /// Validation accuracy of the final model.
    pub val_accuracy: f64,
    /// Inner fit report.
    pub fit: FitReport,
}

/// Trains `net` with the penalty objective, in place.
///
/// # Errors
///
/// Returns [`TrainError::Core`] when data shapes disagree with the
/// network topology, and [`TrainError::NonFinite`] on numerical
/// collapse (NaN/Inf loss or gradient).
///
/// # Panics
///
/// Panics when `alpha` is negative or `p_ref_watts` is not positive.
pub fn train_penalty(
    net: &mut PrintedNetwork,
    data: &DataRefs<'_>,
    cfg: &PenaltyConfig,
) -> Result<PenaltyReport, TrainError> {
    train_penalty_observed(net, data, cfg, &mut NoopObserver)
}

/// [`train_penalty`] with instrumentation. With a real observer the
/// hard power is additionally measured once per epoch (the baseline
/// has no feasibility notion, so power is telemetry-only and never
/// affects model selection); with a [`NoopObserver`] the measurement
/// is skipped and this is exactly [`train_penalty`].
///
/// # Errors
///
/// Same conditions as [`train_penalty`].
///
/// # Panics
///
/// Same conditions as [`train_penalty`].
pub fn train_penalty_observed(
    net: &mut PrintedNetwork,
    data: &DataRefs<'_>,
    cfg: &PenaltyConfig,
    observer: &mut dyn TrainObserver,
) -> Result<PenaltyReport, TrainError> {
    assert!(cfg.alpha >= 0.0, "alpha must be nonnegative");
    assert!(cfg.p_ref_watts > 0.0, "p_ref must be positive");

    let alpha = cfg.alpha;
    // Faithful mode: α·P with P in milliwatts (no normalization).
    let weight = if cfg.faithful {
        alpha * 1e3
    } else {
        alpha / cfg.p_ref_watts
    };
    if cfg.faithful {
        // Standard-cell designs: freeze every activation at the centre
        // of the design space (ρ = 0 → geometric-mean q), the natural
        // fixed cell a pre-learnable-AF baseline would print.
        let mut values = net.param_values();
        let half = values.len() / 2;
        for v in values.iter_mut().skip(half) {
            v.map_inplace(|_| 0.0);
        }
        net.set_param_values(&values);
        net.set_freeze_designs(true);
    }
    let objective = move |tape: &mut pnc_autodiff::Tape,
                          bound: &pnc_core::network::BoundNetwork,
                          ce: pnc_autodiff::Var| {
        let scaled = tape.mul_scalar(bound.power, weight);
        tape.add(ce, scaled)
    };
    // No feasibility notion in the baseline: every iterate qualifies.
    // Power is measured per epoch only when an observer wants it — it
    // is telemetry, never a selection criterion here.
    let want_power = observer.wants_power();
    // A shape mismatch inside the measure closure (impossible once the
    // fit loop has bound the same inputs) degrades to "no reading".
    let measure = move |n: &PrintedNetwork| EpochMeasure {
        power_watts: want_power
            .then(|| hard_power(n, data.x_train).ok())
            .flatten(),
        feasible: true,
    };
    let report = {
        let mut scope = observer.profiler().scope("penalty_train");
        scope.set_f64("alpha", cfg.alpha);
        scope.set_bool("faithful", cfg.faithful);
        fit_instrumented(
            net,
            data,
            &cfg.inner,
            &objective,
            &measure,
            &FitContext::default(),
            observer,
        )?
    };
    if cfg.faithful {
        net.set_freeze_designs(false);
    }

    Ok(PenaltyReport {
        alpha: cfg.alpha,
        power_watts: net.power_report(data.x_train)?.total(),
        val_accuracy: net.accuracy(data.x_val, data.y_val)?,
        fit: report,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trainer::test_support::tiny_network;
    use pnc_datasets::{Dataset, DatasetId};

    #[test]
    fn higher_alpha_yields_lower_power() {
        let ds = Dataset::generate(DatasetId::Iris, 4);
        let split = ds.split(2);
        let data = DataRefs::from_split(&split);
        let p_ref = {
            let net = tiny_network(4, 3, 31);
            net.power_report(data.x_train).unwrap().total()
        };

        let mut low = tiny_network(4, 3, 31);
        let r_low = train_penalty(&mut low, &data, &PenaltyConfig::smoke(0.0, p_ref)).unwrap();
        let mut high = tiny_network(4, 3, 31);
        let r_high = train_penalty(&mut high, &data, &PenaltyConfig::smoke(1.0, p_ref)).unwrap();
        assert!(
            r_high.power_watts < r_low.power_watts,
            "α=1 should burn less than α=0: {:e} vs {:e}",
            r_high.power_watts,
            r_low.power_watts
        );
    }

    #[test]
    fn alpha_zero_is_pure_accuracy() {
        let ds = Dataset::generate(DatasetId::Iris, 5);
        let split = ds.split(3);
        let data = DataRefs::from_split(&split);
        let mut net = tiny_network(4, 3, 37);
        let r = train_penalty(&mut net, &data, &PenaltyConfig::smoke(0.0, 1e-3)).unwrap();
        assert!(r.val_accuracy > 0.5, "acc {}", r.val_accuracy);
    }

    #[test]
    fn faithful_mode_freezes_designs() {
        let ds = Dataset::generate(DatasetId::Iris, 7);
        let split = ds.split(5);
        let data = DataRefs::from_split(&split);
        let mut net = tiny_network(4, 3, 43);
        let cfg = PenaltyConfig {
            inner: TrainConfig {
                max_epochs: 10,
                ..TrainConfig::smoke()
            },
            ..PenaltyConfig::faithful(0.5)
        };
        train_penalty(&mut net, &data, &cfg).unwrap();
        // Faithful mode pins designs at the standard cell (ρ = 0) and
        // never moves them.
        for rho in &net.param_values()[2..] {
            // lint: allow(L002, reason = "designs are pinned to exactly 0.0 by construction")
            assert!(rho.max_abs() == 0.0, "frozen designs must stay at ρ = 0");
        }
        assert!(!net.designs_frozen(), "flag restored after training");
    }

    #[test]
    fn normalized_mode_moves_designs_faithful_does_not() {
        // With α = 0 both modes are pure cross-entropy; the only
        // difference is that faithful mode freezes the activation
        // designs ρ while the controlled baseline learns them.
        let ds = Dataset::generate(DatasetId::Iris, 8);
        let split = ds.split(6);
        let data = DataRefs::from_split(&split);
        let cfg_inner = TrainConfig {
            max_epochs: 15,
            ..TrainConfig::smoke()
        };

        let mut ctrl = tiny_network(4, 3, 47);
        let rho0 = ctrl.param_values()[2..].to_vec();
        train_penalty(
            &mut ctrl,
            &data,
            &PenaltyConfig {
                inner: cfg_inner,
                ..PenaltyConfig::new(0.0, 1e-4)
            },
        )
        .unwrap();
        let moved = ctrl.param_values()[2..]
            .iter()
            .zip(&rho0)
            .any(|(a, b)| a != b);
        assert!(moved, "controlled baseline should learn designs");

        let mut faith = tiny_network(4, 3, 47);
        train_penalty(
            &mut faith,
            &data,
            &PenaltyConfig {
                inner: cfg_inner,
                ..PenaltyConfig::faithful(0.0)
            },
        )
        .unwrap();
        for rho in &faith.param_values()[2..] {
            // lint: allow(L002, reason = "designs are pinned to exactly 0.0 by construction")
            assert!(rho.max_abs() == 0.0, "faithful baseline pins ρ at 0");
        }
    }

    #[test]
    #[should_panic(expected = "p_ref must be positive")]
    fn rejects_bad_p_ref() {
        let ds = Dataset::generate(DatasetId::Iris, 6);
        let split = ds.split(4);
        let data = DataRefs::from_split(&split);
        let mut net = tiny_network(4, 3, 41);
        let _ = train_penalty(&mut net, &data, &PenaltyConfig::smoke(0.5, 0.0));
    }
}
