//! Typed errors for the training stack.
//!
//! Before this module existed, the trainers surfaced only
//! [`CoreError`] (shape mismatches) and silently carried NaN/Inf
//! losses through to the end of a run — only tests asserted finiteness.
//! [`TrainError::NonFinite`] makes numerical collapse a first-class,
//! typed outcome: the training loop aborts at the poisoned epoch
//! *before* stepping the optimizer, the [`crate::watchdog`] turns the
//! same condition into a `health` diagnosis, and run registries can
//! record the abort with an actionable post-mortem.

use pnc_core::CoreError;
use std::fmt;

/// Which quantity went non-finite inside the training loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NonFiniteKind {
    /// The scalar objective (loss) was NaN or ±Inf.
    Loss,
    /// The global gradient norm was NaN or ±Inf.
    Gradient,
}

impl NonFiniteKind {
    /// Lower-case name used in events and post-mortems.
    pub fn as_str(self) -> &'static str {
        match self {
            NonFiniteKind::Loss => "loss",
            NonFiniteKind::Gradient => "gradient",
        }
    }
}

impl fmt::Display for NonFiniteKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Errors surfaced by the training loops.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum TrainError {
    /// A core model error (shape mismatch, missing surrogate, …).
    Core(CoreError),
    /// The objective or gradient went NaN/Inf at `epoch` (1-based).
    /// The optimizer was *not* stepped with the poisoned values; the
    /// network holds the parameters from the last finite epoch.
    NonFinite {
        /// 1-based epoch at which the non-finite value appeared.
        epoch: usize,
        /// Which quantity collapsed.
        what: NonFiniteKind,
    },
}

impl fmt::Display for TrainError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrainError::Core(e) => write!(f, "{e}"),
            TrainError::NonFinite { epoch, what } => {
                write!(f, "non-finite {what} at epoch {epoch}")
            }
        }
    }
}

impl std::error::Error for TrainError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TrainError::Core(e) => Some(e),
            TrainError::NonFinite { .. } => None,
        }
    }
}

impl From<CoreError> for TrainError {
    fn from(e: CoreError) -> Self {
        TrainError::Core(e)
    }
}

/// The shared finiteness check: the inline trainer guard and the
/// [`crate::watchdog::HealthWatchdog`] both classify an epoch through
/// this one function, so the two paths can never disagree on what
/// counts as numerically collapsed.
pub fn non_finite_what(objective: f64, grad_norm: f64) -> Option<NonFiniteKind> {
    if !objective.is_finite() {
        Some(NonFiniteKind::Loss)
    } else if !grad_norm.is_finite() {
        Some(NonFiniteKind::Gradient)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_collapse() {
        let e = TrainError::NonFinite {
            epoch: 17,
            what: NonFiniteKind::Loss,
        };
        assert_eq!(e.to_string(), "non-finite loss at epoch 17");
        let e = TrainError::NonFinite {
            epoch: 3,
            what: NonFiniteKind::Gradient,
        };
        assert_eq!(e.to_string(), "non-finite gradient at epoch 3");
    }

    #[test]
    fn core_errors_convert() {
        let core = CoreError::InputWidthMismatch {
            expected: 4,
            got: 7,
        };
        let e = TrainError::from(core.clone());
        assert_eq!(e, TrainError::Core(core));
        assert!(e.to_string().contains("expected 4"));
    }

    #[test]
    fn shared_check_prefers_loss_over_gradient() {
        assert_eq!(non_finite_what(1.0, 1.0), None);
        assert_eq!(non_finite_what(f64::NAN, 1.0), Some(NonFiniteKind::Loss));
        assert_eq!(
            non_finite_what(f64::INFINITY, f64::NAN),
            Some(NonFiniteKind::Loss)
        );
        assert_eq!(
            non_finite_what(1.0, f64::NAN),
            Some(NonFiniteKind::Gradient)
        );
        assert_eq!(
            non_finite_what(1.0, f64::NEG_INFINITY),
            Some(NonFiniteKind::Gradient)
        );
    }
}
