//! Multi-constraint augmented Lagrangian training — the paper's stated
//! future-work direction ("future works may explore its applicability
//! to additional circuit components and constraints", Sec. V).
//!
//! Generalizes the single power constraint to a set of inequality
//! constraints `c_k(θ, q) ≤ 0`, each with its own multiplier `λ_k` and
//! shared step parameter `μ`:
//!
//! ```text
//! minimize  ℒ + Σ_k (1/2μ)(max(0, λ_k + μ·c_k)² − λ_k²)
//! λ_k ← max(0, λ_k + μ·c_k)
//! ```
//!
//! Two constraint families are built in:
//!
//! * [`ConstraintKind::Power`] — the paper's `P(θ, q) ≤ P̄`.
//! * [`ConstraintKind::DeviceCount`] — a printed-area proxy: the soft
//!   device count (crossbar resistors + activation + negation
//!   circuits, in device units) must not exceed a budget. Device count
//!   is the paper's `#Dev` metric; constraining it directly targets
//!   substrate area and yield rather than energy.

use crate::auglag::hard_power;
use crate::error::TrainError;
use crate::trainer::{fit, DataRefs, TrainConfig};
use pnc_autodiff::{Tape, Var};
use pnc_core::activation::{devices_per_af, DEVICES_PER_NEGATION};
use pnc_core::count::{soft_af_count, soft_neg_count};
use pnc_core::network::BoundNetwork;
use pnc_core::{CoreError, PrintedNetwork};

/// A constraint family with its budget.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ConstraintKind {
    /// Total power ≤ budget (watts).
    Power {
        /// Budget in watts.
        budget_watts: f64,
    },
    /// Soft total device count ≤ budget (devices).
    DeviceCount {
        /// Budget in printed devices.
        budget_devices: f64,
    },
}

impl ConstraintKind {
    /// Builds the normalized constraint node `c = value/budget − 1` on
    /// the tape for the current bound network.
    fn build(&self, tape: &mut Tape, bound: &BoundNetwork, net: &PrintedNetwork) -> Var {
        match *self {
            ConstraintKind::Power { budget_watts } => {
                let ratio = tape.mul_scalar(bound.power, 1.0 / budget_watts);
                tape.add_scalar(ratio, -1.0)
            }
            ConstraintKind::DeviceCount { budget_devices } => {
                let count = soft_device_total(tape, bound, net);
                let ratio = tape.mul_scalar(count, 1.0 / budget_devices);
                tape.add_scalar(ratio, -1.0)
            }
        }
    }

    /// Hard (indicator) evaluation of the constraint on the current
    /// network: `value/budget − 1`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InputWidthMismatch`] when `x` disagrees
    /// with the network topology.
    pub fn hard_violation(
        &self,
        net: &PrintedNetwork,
        x: &pnc_linalg::Matrix,
    ) -> Result<f64, CoreError> {
        match *self {
            ConstraintKind::Power { budget_watts } => Ok(hard_power(net, x)? / budget_watts - 1.0),
            ConstraintKind::DeviceCount { budget_devices } => {
                Ok(net.device_count() as f64 / budget_devices - 1.0)
            }
        }
    }
}

/// Differentiable total device count of a bound network: crossbar
/// resistors (soft indicators) + soft activation and negation counts,
/// weighted by the devices each circuit costs.
///
/// Uses a deliberately *gentler* sigmoid than the reporting
/// configuration: a sharp indicator carries gradient only for weights
/// sitting right at the pruning threshold, so constraint pressure would
/// never reach the bulk of the conductances. The gentle relaxation
/// trades a small counting bias for useful gradients everywhere.
pub fn soft_device_total(tape: &mut Tape, bound: &BoundNetwork, net: &PrintedNetwork) -> Var {
    let mut cfg = net.config().count;
    cfg.steepness = (cfg.steepness / 20.0).max(5.0);
    let af_cost = devices_per_af(net.activation().kind()) as f64;
    let mut total: Option<Var> = None;
    for (i, layer) in bound.layers.iter().enumerate() {
        // Crossbar resistors: Σ σ(k(|θ| − τ)).
        let a = tape.abs(layer.theta);
        let shifted = tape.add_scalar(a, -cfg.threshold);
        let scaled = tape.mul_scalar(shifted, cfg.steepness);
        let sig = tape.sigmoid(scaled);
        let resistors = tape.sum_all(sig);

        let n_af = soft_af_count(tape, layer.theta, &cfg);
        let inputs = tape.shape(layer.theta).0 - 2;
        let n_neg = soft_neg_count(tape, layer.theta, inputs, &cfg);

        let af_devices = tape.mul_scalar(n_af, af_cost);
        let neg_devices = tape.mul_scalar(n_neg, DEVICES_PER_NEGATION as f64);
        let s1 = tape.add(resistors, af_devices);
        let layer_total = tape.add(s1, neg_devices);
        total = Some(match total {
            Some(t) => tape.add(t, layer_total),
            None => layer_total,
        });
        let _ = i;
    }
    // lint: allow(L001, reason = "a PrintedNetwork always has at least one layer by construction")
    total.expect("network has at least one layer")
}

/// Multi-constraint trainer settings.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiConstraintConfig {
    /// The constraint set.
    pub constraints: Vec<ConstraintKind>,
    /// Shared step parameter `μ`.
    pub mu: f64,
    /// Outer iterations.
    pub outer_iters: usize,
    /// Inner minimization settings.
    pub inner: TrainConfig,
}

/// Report of a multi-constraint run.
#[derive(Debug, Clone)]
pub struct MultiConstraintReport {
    /// Final multipliers, one per constraint.
    pub lambdas: Vec<f64>,
    /// Hard violations `value/budget − 1` of the restored model.
    pub violations: Vec<f64>,
    /// Whether every constraint is satisfied.
    pub feasible: bool,
    /// Validation accuracy of the restored model.
    pub val_accuracy: f64,
}

/// Runs the multi-constraint augmented Lagrangian, mutating `net`.
///
/// # Errors
///
/// Returns [`TrainError::Core`] when data shapes disagree with the
/// network topology, and [`TrainError::NonFinite`] on numerical
/// collapse inside an inner solve.
///
/// # Panics
///
/// Panics when `constraints` is empty or `mu ≤ 0`.
pub fn train_multi_constraint(
    net: &mut PrintedNetwork,
    data: &DataRefs<'_>,
    cfg: &MultiConstraintConfig,
) -> Result<MultiConstraintReport, TrainError> {
    assert!(!cfg.constraints.is_empty(), "no constraints given");
    assert!(cfg.mu > 0.0, "mu must be positive");

    let mut lambdas = vec![0.0f64; cfg.constraints.len()];
    let mut best_params = net.param_values();
    let mut best_key = (false, f64::NEG_INFINITY);

    for _ in 0..cfg.outer_iters {
        let lam = lambdas.clone();
        let constraints = cfg.constraints.clone();
        let mu = cfg.mu;
        // The objective needs `net` for device-count weights, but `fit`
        // also borrows it mutably; clone the immutable configuration
        // bits we need instead.
        let net_snapshot = net.clone();

        let objective = move |tape: &mut Tape, bound: &BoundNetwork, ce: Var| {
            let mut total = ce;
            for (k, constraint) in constraints.iter().enumerate() {
                let c = constraint.build(tape, bound, &net_snapshot);
                let mu_c = tape.mul_scalar(c, mu);
                let inner = tape.add_scalar(mu_c, lam[k]);
                let act = tape.clamp_min(inner, 0.0);
                let act_sq = tape.square(act);
                let shifted = tape.add_scalar(act_sq, -(lam[k] * lam[k]));
                let psi = tape.mul_scalar(shifted, 1.0 / (2.0 * mu));
                total = tape.add(total, psi);
            }
            total
        };
        let cons2 = cfg.constraints.clone();
        // A shape mismatch inside the feasibility probe (impossible
        // once the fit loop has bound the same inputs) counts as
        // infeasible instead of panicking.
        let feasible = move |n: &PrintedNetwork| {
            cons2
                .iter()
                .all(|c| c.hard_violation(n, data.x_train).is_ok_and(|v| v <= 0.0))
        };
        fit(net, data, &cfg.inner, &objective, &feasible)?;

        // Multiplier updates on hard violations.
        let violations: Vec<f64> = cfg
            .constraints
            .iter()
            .map(|c| c.hard_violation(net, data.x_train))
            .collect::<Result<_, _>>()?;
        let all_ok = violations.iter().all(|&v| v <= 0.0);
        let val_acc = net.accuracy(data.x_val, data.y_val)?;
        let key = (all_ok, val_acc);
        if key > best_key {
            best_key = key;
            best_params = net.param_values();
        }
        for (l, &v) in lambdas.iter_mut().zip(&violations) {
            *l = (*l + cfg.mu * v).max(0.0);
        }
    }

    net.set_param_values(&best_params);
    let violations: Vec<f64> = cfg
        .constraints
        .iter()
        .map(|c| c.hard_violation(net, data.x_train))
        .collect::<Result<_, _>>()?;
    Ok(MultiConstraintReport {
        feasible: violations.iter().all(|&v| v <= 0.0),
        violations,
        lambdas,
        val_accuracy: net.accuracy(data.x_val, data.y_val)?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trainer::fit_cross_entropy;
    use crate::trainer::test_support::tiny_network;
    use pnc_datasets::{Dataset, DatasetId};

    #[test]
    fn power_plus_device_constraints_are_enforced() {
        let ds = Dataset::generate(DatasetId::Iris, 21);
        let split = ds.split(9);
        let data = DataRefs::from_split(&split);

        // References for budget setting.
        let mut reference = tiny_network(4, 3, 71);
        fit_cross_entropy(&mut reference, &data, &TrainConfig::smoke()).unwrap();
        let p_max = hard_power(&reference, data.x_train).unwrap();
        let dev_max = reference.device_count() as f64;

        let mut net = tiny_network(4, 3, 71);
        let report = train_multi_constraint(
            &mut net,
            &data,
            &MultiConstraintConfig {
                constraints: vec![
                    ConstraintKind::Power {
                        budget_watts: 0.6 * p_max,
                    },
                    ConstraintKind::DeviceCount {
                        budget_devices: 0.85 * dev_max,
                    },
                ],
                mu: 2.0,
                outer_iters: 4,
                // Two active constraints leave a narrow feasible set;
                // give the inner solver a little more budget than the
                // bare smoke preset so accuracy recovers inside it.
                inner: TrainConfig {
                    max_epochs: 120,
                    ..TrainConfig::smoke()
                },
            },
        )
        .unwrap();
        assert!(
            report.feasible,
            "both constraints should be satisfiable: {report:?}"
        );
        assert!(hard_power(&net, data.x_train).unwrap() <= 0.6 * p_max * 1.0001);
        assert!(net.device_count() as f64 <= 0.85 * dev_max + 1e-9);
        assert!(report.val_accuracy > 0.4, "acc {}", report.val_accuracy);
    }

    #[test]
    fn soft_device_total_tracks_hard_count() {
        let net = tiny_network(4, 3, 73);
        let x = pnc_linalg::rng::uniform_matrix(&mut pnc_linalg::rng::seeded(1), 5, 4, -0.5, 0.5);
        let mut tape = Tape::new();
        let bound = net.bind(&mut tape, &x).unwrap();
        let soft = soft_device_total(&mut tape, &bound, &net);
        let soft_v = tape.scalar(soft);
        let hard = net.device_count() as f64;
        assert!(
            (soft_v - hard).abs() < 0.1 * hard.max(1.0) + 2.0,
            "soft {soft_v} vs hard {hard}"
        );
    }

    #[test]
    #[should_panic(expected = "no constraints")]
    fn empty_constraints_panics() {
        let ds = Dataset::generate(DatasetId::Iris, 22);
        let split = ds.split(10);
        let data = DataRefs::from_split(&split);
        let mut net = tiny_network(4, 3, 79);
        let _ = train_multi_constraint(
            &mut net,
            &data,
            &MultiConstraintConfig {
                constraints: vec![],
                mu: 2.0,
                outer_iters: 1,
                inner: TrainConfig::smoke(),
            },
        );
    }
}
