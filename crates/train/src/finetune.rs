//! Mask-based fine-tuning (paper Sec. IV-A1).
//!
//! "Following the primary training phase, a fine-tuning step was
//! conducted to enhance accuracy while strictly adhering to power
//! constraints. During this process, masks m^C were generated to
//! deactivate inactive components […] The model was then retrained
//! using cross-entropy loss, optimizing accuracy without violating the
//! power constraints."
//!
//! Implementation: build pruning masks from the converged parameters,
//! retrain with cross-entropy only, and track the best model that
//! remains within the budget; if no epoch of the fine-tune stays
//! feasible, the pre-fine-tune parameters are restored.

use crate::auglag::hard_power;
use crate::error::TrainError;
use crate::trainer::{fit, DataRefs, TrainConfig};
use pnc_core::PrintedNetwork;

/// Result of the fine-tuning phase.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FinetuneReport {
    /// Crossbar entries pruned by the masks.
    pub pruned_entries: usize,
    /// Validation accuracy before fine-tuning.
    pub val_accuracy_before: f64,
    /// Validation accuracy after fine-tuning (restored model).
    pub val_accuracy_after: f64,
    /// Hard power after fine-tuning, watts.
    pub power_watts: f64,
    /// Whether the final model satisfies the budget.
    pub feasible: bool,
}

/// Prunes and fine-tunes `net` under the power budget, in place.
///
/// # Errors
///
/// Returns [`TrainError::Core`] when data shapes disagree with the
/// network topology, and [`TrainError::NonFinite`] on numerical
/// collapse during the retrain.
pub fn finetune(
    net: &mut PrintedNetwork,
    data: &DataRefs<'_>,
    budget_watts: f64,
    cfg: &TrainConfig,
) -> Result<FinetuneReport, TrainError> {
    let before_acc = net.accuracy(data.x_val, data.y_val)?;
    let before_params = net.param_values();
    let before_power = hard_power(net, data.x_train)?;

    let pruned = net.build_masks();
    let report = fit(
        net,
        data,
        cfg,
        &|_tape, _bound, ce| ce,
        // A shape mismatch inside the feasibility probe (impossible once
        // the fit loop has bound the same inputs) counts as infeasible.
        &|n: &PrintedNetwork| hard_power(n, data.x_train).is_ok_and(|p| p <= budget_watts),
    )?;

    // If fine-tuning never found a feasible iterate (and we started
    // feasible), roll back.
    let power = hard_power(net, data.x_train)?;
    if power > budget_watts && before_power <= budget_watts {
        net.clear_masks();
        net.set_param_values(&before_params);
        return Ok(FinetuneReport {
            pruned_entries: pruned,
            val_accuracy_before: before_acc,
            val_accuracy_after: before_acc,
            power_watts: before_power,
            feasible: true,
        });
    }

    Ok(FinetuneReport {
        pruned_entries: pruned,
        val_accuracy_before: before_acc,
        val_accuracy_after: report.best_val_accuracy,
        power_watts: power,
        feasible: power <= budget_watts,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::auglag::{train_auglag, AugLagConfig};
    use crate::trainer::fit_cross_entropy;
    use crate::trainer::test_support::tiny_network;
    use pnc_datasets::{Dataset, DatasetId};

    #[test]
    fn finetune_respects_budget() {
        let ds = Dataset::generate(DatasetId::Iris, 9);
        let split = ds.split(5);
        let data = DataRefs::from_split(&split);

        let mut ref_net = tiny_network(4, 3, 51);
        fit_cross_entropy(&mut ref_net, &data, &TrainConfig::smoke()).unwrap();
        let p_max = hard_power(&ref_net, data.x_train).unwrap();
        let budget = 0.4 * p_max;

        let mut net = tiny_network(4, 3, 51);
        let al = train_auglag(&mut net, &data, &AugLagConfig::smoke(budget)).unwrap();
        let ft = finetune(&mut net, &data, budget, &TrainConfig::smoke()).unwrap();

        assert!(ft.feasible, "fine-tune must stay within budget: {ft:?}");
        assert!(ft.power_watts <= budget * 1.02);
        // Fine-tuning must not destroy the model.
        assert!(
            ft.val_accuracy_after >= al.val_accuracy - 0.15,
            "fine-tune regressed too far: {} → {}",
            al.val_accuracy,
            ft.val_accuracy_after
        );
    }

    #[test]
    fn finetune_reports_pruning() {
        let ds = Dataset::generate(DatasetId::Iris, 10);
        let split = ds.split(6);
        let data = DataRefs::from_split(&split);
        let mut net = tiny_network(4, 3, 53);
        // Push some weights under the pruning threshold.
        let mut values = net.param_values();
        for v in values[0].as_mut_slice().iter_mut().take(5) {
            *v *= 1e-4;
        }
        net.set_param_values(&values);
        let p0 = hard_power(&net, data.x_train).unwrap();
        let ft = finetune(
            &mut net,
            &data,
            p0 * 10.0,
            &TrainConfig {
                max_epochs: 10,
                ..TrainConfig::smoke()
            },
        )
        .unwrap();
        assert!(ft.pruned_entries >= 5, "{ft:?}");
    }
}
