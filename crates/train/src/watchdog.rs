//! Numerical-health watchdog for training runs.
//!
//! [`HealthWatchdog`] wraps any [`TrainObserver`] and inspects every
//! callback for the failure signatures that make constrained runs
//! numerically sick:
//!
//! * **NaN/Inf loss or gradient** — via the same
//!   [`crate::error::non_finite_what`] check the trainer's abort path
//!   uses, so the two can never disagree;
//! * **gradient-norm explosion** — the pre-clip norm jumping orders of
//!   magnitude above its recent median;
//! * **multiplier blow-up** — the augmented-Lagrangian `λ` escaping to
//!   absurd magnitudes (a diverging dual ascent);
//! * **solver divergence** — a streak of consecutive SPICE Newton
//!   non-convergences (polled from [`pnc_spice::stats`]);
//! * **ill-conditioning** — the worst Jacobian condition estimate seen
//!   by the solver observatory (polled from [`pnc_spice::observe`])
//!   crossing the configured gate;
//! * **constraint stall** — several outer iterations in a row violated
//!   and not improving.
//!
//! Each detection emits one structured `health` event at
//! [`Level::Warn`] — deliberately: `--quiet` console output filters at
//! `Warn`, so health findings are *never* silenced — and is latched so
//! a sick run produces one diagnosis per failure mode, not one per
//! epoch. On abort, [`HealthWatchdog::postmortem`] renders a markdown
//! report with the active diagnosis, a suggested knob, and the last-k
//! epoch records.

use crate::auglag::OuterIterRecord;
use crate::error::{non_finite_what, NonFiniteKind};
use crate::observer::{RescueEvent, TrainObserver};
use crate::trainer::EpochRecord;
use pnc_telemetry::{Event, Level, Profiler, Telemetry};
use std::collections::VecDeque;

/// Detection thresholds. The defaults are deliberately loose — the
/// watchdog is a smoke alarm, not a convergence critic.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WatchdogConfig {
    /// Epoch records kept for the post-mortem (last-k window).
    pub history: usize,
    /// Gradient explosion: pre-clip norm exceeds this multiple of the
    /// median norm over the history window.
    pub grad_explosion_factor: f64,
    /// Minimum finite gradient records before explosion detection arms
    /// (a cold network's first steps are legitimately wild).
    pub grad_warmup: usize,
    /// Multiplier blow-up: `λ` beyond this magnitude. The constraint is
    /// normalized (`c = P/P̄ − 1`), so a healthy `λ` stays O(1)–O(100).
    pub lambda_max: f64,
    /// Solver divergence: consecutive failed DC solves at or above this
    /// count.
    pub solver_streak: u64,
    /// Ill-conditioning: worst observed 1-norm condition estimate above
    /// this gate. Only meaningful when solver observation is enabled
    /// (`--solver-traces`); the probe reads 0.0 otherwise.
    pub cond1_gate: f64,
    /// Constraint stall: this many most-recent outer iterations all
    /// violated with no meaningful progress.
    pub stall_outer_iters: usize,
    /// Relative constraint improvement below which a violated outer
    /// iteration counts as "not progressing".
    pub stall_min_improvement: f64,
}

impl Default for WatchdogConfig {
    fn default() -> Self {
        WatchdogConfig {
            history: 10,
            grad_explosion_factor: 1e3,
            grad_warmup: 5,
            lambda_max: 1e6,
            solver_streak: 25,
            cond1_gate: 1e12,
            stall_outer_iters: 3,
            stall_min_improvement: 0.01,
        }
    }
}

/// A typed health finding. Variants carry the evidence that fired them.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Diagnosis {
    /// The objective or gradient went NaN/Inf.
    NonFinite {
        /// 1-based epoch of the collapse.
        epoch: usize,
        /// Which quantity collapsed.
        what: NonFiniteKind,
    },
    /// The pre-clip gradient norm exploded relative to its recent
    /// median.
    GradientExplosion {
        /// 1-based epoch of the spike.
        epoch: usize,
        /// The offending norm.
        grad_norm: f64,
        /// Median norm over the history window it is compared against.
        baseline: f64,
    },
    /// The augmented-Lagrangian multiplier escaped to absurd magnitude.
    MultiplierBlowup {
        /// 0-based outer iteration.
        iter: usize,
        /// The runaway `λ`.
        lambda: f64,
    },
    /// Consecutive SPICE Newton non-convergences.
    SolverDivergence {
        /// Length of the failure streak when detected.
        streak: u64,
    },
    /// The solver observatory saw a Jacobian whose estimated 1-norm
    /// condition number crossed the configured gate — Newton steps are
    /// being computed against a numerically fragile system.
    IllConditioned {
        /// Worst condition estimate observed when detected.
        cond1: f64,
        /// The configured [`WatchdogConfig::cond1_gate`].
        gate: f64,
    },
    /// Several outer iterations violated the constraint without
    /// progress.
    ConstraintStall {
        /// 0-based outer iteration where the stall was confirmed.
        iter: usize,
        /// Normalized constraint value `P/P̄ − 1` at detection.
        constraint: f64,
    },
    /// The surrogate power model drifted from the SPICE ground truth
    /// beyond the configured fidelity gate (latched by the
    /// [`crate::fidelity::FidelityMonitor`]).
    SurrogateDrift {
        /// Global epoch counter at the failing spot check.
        epoch: u64,
        /// Measured surrogate-vs-SPICE relative error.
        rel_err: f64,
        /// The configured `--fidelity-gate` threshold.
        gate: f64,
    },
}

impl Diagnosis {
    /// Stable lower-snake identifier used in `health` events and
    /// post-mortems.
    pub fn name(&self) -> &'static str {
        match self {
            Diagnosis::NonFinite { .. } => "non_finite",
            Diagnosis::GradientExplosion { .. } => "gradient_explosion",
            Diagnosis::MultiplierBlowup { .. } => "multiplier_blowup",
            Diagnosis::SolverDivergence { .. } => "solver_divergence",
            Diagnosis::IllConditioned { .. } => "ill_conditioned",
            Diagnosis::ConstraintStall { .. } => "constraint_stall",
            Diagnosis::SurrogateDrift { .. } => "surrogate_drift",
        }
    }

    /// The knob a human should reach for first.
    pub fn suggested_knob(&self) -> &'static str {
        match self {
            Diagnosis::NonFinite { .. } => {
                "lower TrainConfig::lr or tighten TrainConfig::grad_clip"
            }
            Diagnosis::GradientExplosion { .. } => {
                "tighten TrainConfig::grad_clip (constraint gradients spike at strong violations)"
            }
            Diagnosis::MultiplierBlowup { .. } => {
                "reduce AugLagConfig::mu or raise the power budget (the dual ascent is diverging)"
            }
            Diagnosis::SolverDivergence { .. } => {
                "loosen SolverConfig tolerances or increase max Newton iterations"
            }
            Diagnosis::IllConditioned { .. } => {
                "shrink the design bounds away from extreme R/W/L ratios (the MNA \
                 Jacobian is near-singular there)"
            }
            Diagnosis::ConstraintStall { .. } => {
                "increase AugLagConfig::mu or AugLagConfig::outer_iters (constraint pressure too weak)"
            }
            Diagnosis::SurrogateDrift { .. } => {
                "refit the power surrogate at higher fidelity (--fidelity paper) or relax --fidelity-gate"
            }
        }
    }

    /// One-line human description with the evidence.
    pub fn describe(&self) -> String {
        match *self {
            Diagnosis::NonFinite { epoch, what } => {
                format!("non-finite {what} at epoch {epoch}")
            }
            Diagnosis::GradientExplosion {
                epoch,
                grad_norm,
                baseline,
            } => format!(
                "gradient norm {grad_norm:.3e} at epoch {epoch} \
                 (recent median {baseline:.3e})"
            ),
            Diagnosis::MultiplierBlowup { iter, lambda } => {
                format!("multiplier λ = {lambda:.3e} at outer iteration {iter}")
            }
            Diagnosis::SolverDivergence { streak } => {
                format!("{streak} consecutive SPICE solve failures")
            }
            Diagnosis::IllConditioned { cond1, gate } => format!(
                "Jacobian condition estimate {cond1:.3e} exceeds the \
                 {gate:.3e} gate"
            ),
            Diagnosis::ConstraintStall { iter, constraint } => format!(
                "constraint still violated (c = {constraint:.3e}) with no progress \
                 through outer iteration {iter}"
            ),
            Diagnosis::SurrogateDrift {
                epoch,
                rel_err,
                gate,
            } => format!(
                "surrogate power drifted {rel_err:.3e} relative from SPICE at \
                 epoch {epoch} (gate {gate:.3e})"
            ),
        }
    }

    pub(crate) fn to_event(self) -> Event {
        let mut e = Event::new("health", Level::Warn)
            .with_str("diagnosis", self.name())
            .with_str("detail", self.describe())
            .with_str("suggestion", self.suggested_knob());
        match self {
            Diagnosis::NonFinite { epoch, what } => {
                e = e
                    .with_u64("epoch", epoch as u64)
                    .with_str("what", what.as_str());
            }
            Diagnosis::GradientExplosion {
                epoch,
                grad_norm,
                baseline,
            } => {
                e = e
                    .with_u64("epoch", epoch as u64)
                    .with_f64("grad_norm", grad_norm)
                    .with_f64("baseline", baseline);
            }
            Diagnosis::MultiplierBlowup { iter, lambda } => {
                e = e.with_u64("iter", iter as u64).with_f64("lambda", lambda);
            }
            Diagnosis::SolverDivergence { streak } => {
                e = e.with_u64("streak", streak);
            }
            Diagnosis::IllConditioned { cond1, gate } => {
                e = e.with_f64("cond1", cond1).with_f64("gate", gate);
            }
            Diagnosis::ConstraintStall { iter, constraint } => {
                e = e
                    .with_u64("iter", iter as u64)
                    .with_f64("constraint", constraint);
            }
            Diagnosis::SurrogateDrift {
                epoch,
                rel_err,
                gate,
            } => {
                e = e
                    .with_u64("epoch", epoch)
                    .with_f64("rel_err", rel_err)
                    .with_f64("gate", gate);
            }
        }
        e
    }
}

/// A [`TrainObserver`] decorator that diagnoses numerically sick runs.
/// All callbacks are forwarded to the wrapped observer unchanged.
pub struct HealthWatchdog<O> {
    inner: O,
    tel: Telemetry,
    cfg: WatchdogConfig,
    history: VecDeque<EpochRecord>,
    recent_constraints: Vec<f64>,
    diagnoses: Vec<Diagnosis>,
    solver_probe: fn() -> u64,
    cond_probe: fn() -> f64,
}

impl<O: TrainObserver> HealthWatchdog<O> {
    /// Wraps `inner`, emitting `health` events through `tel`. The
    /// solver-divergence probe defaults to the process-wide
    /// [`pnc_spice::stats::failure_streak`].
    pub fn new(inner: O, tel: Telemetry) -> Self {
        Self::with_config(inner, tel, WatchdogConfig::default())
    }

    /// [`HealthWatchdog::new`] with explicit thresholds.
    pub fn with_config(inner: O, tel: Telemetry, cfg: WatchdogConfig) -> Self {
        HealthWatchdog {
            inner,
            tel,
            cfg,
            history: VecDeque::with_capacity(cfg.history + 1),
            recent_constraints: Vec::new(),
            diagnoses: Vec::new(),
            solver_probe: pnc_spice::stats::failure_streak,
            cond_probe: pnc_spice::observe::max_cond1_estimate,
        }
    }

    /// Replaces the solver-divergence probe (tests inject synthetic
    /// streaks without touching the process-global counters).
    pub fn with_solver_probe(mut self, probe: fn() -> u64) -> Self {
        self.solver_probe = probe;
        self
    }

    /// Replaces the conditioning probe (defaults to the process-wide
    /// [`pnc_spice::observe::max_cond1_estimate`], which reads 0.0
    /// unless solver observation is enabled).
    pub fn with_cond_probe(mut self, probe: fn() -> f64) -> Self {
        self.cond_probe = probe;
        self
    }

    /// Findings so far, in detection order (one per failure mode — each
    /// diagnosis kind is latched on first detection).
    pub fn diagnoses(&self) -> &[Diagnosis] {
        &self.diagnoses
    }

    /// The most recent finding, if any.
    pub fn active_diagnosis(&self) -> Option<&Diagnosis> {
        self.diagnoses.last()
    }

    /// The wrapped observer.
    pub fn into_inner(self) -> O {
        self.inner
    }

    /// Renders the post-mortem markdown: active diagnosis, suggested
    /// knob, and the last-k epoch records (newest last).
    pub fn postmortem(&self) -> String {
        let mut out = String::from("# Run post-mortem\n\n");
        match self.active_diagnosis() {
            Some(d) => {
                out.push_str(&format!(
                    "**Diagnosis:** `{}` — {}\n\n**Suggested knob:** {}\n",
                    d.name(),
                    d.describe(),
                    d.suggested_knob()
                ));
                if self.diagnoses.len() > 1 {
                    out.push_str("\nEarlier findings:\n");
                    for d in &self.diagnoses[..self.diagnoses.len() - 1] {
                        out.push_str(&format!("- `{}` — {}\n", d.name(), d.describe()));
                    }
                }
            }
            None => out.push_str(
                "**Diagnosis:** none — the watchdog saw no numerical-health \
                 finding before the run ended.\n",
            ),
        }
        out.push_str(&format!(
            "\n## Last {} epoch records\n\n",
            self.history.len()
        ));
        out.push_str(
            "| epoch | objective | val_acc | grad_norm | power_watts | constraint | lambda |\n",
        );
        out.push_str("|---|---|---|---|---|---|---|\n");
        for r in &self.history {
            let opt = |v: Option<f64>| v.map_or_else(|| "—".to_string(), |x| format!("{x:.4e}"));
            out.push_str(&format!(
                "| {} | {:.4e} | {:.4} | {:.4e} | {} | {} | {} |\n",
                r.epoch,
                r.objective,
                r.val_accuracy,
                r.grad_norm,
                opt(r.power_watts),
                opt(r.constraint),
                opt(r.lambda),
            ));
        }
        out
    }

    fn report(&mut self, diag: Diagnosis) {
        // Latch per failure mode: a run that explodes keeps exploding;
        // one event per diagnosis keeps logs readable.
        if self.diagnoses.iter().any(|d| d.name() == diag.name()) {
            return;
        }
        self.tel.emit_event(diag.to_event());
        self.diagnoses.push(diag);
    }

    fn check_epoch(&mut self, record: &EpochRecord) {
        if let Some(what) = non_finite_what(record.objective, record.grad_norm) {
            self.report(Diagnosis::NonFinite {
                epoch: record.epoch,
                what,
            });
        } else {
            // Explosion check only on finite norms, against the median
            // of the (finite) history window.
            let mut norms: Vec<f64> = self
                .history
                .iter()
                .map(|r| r.grad_norm)
                .filter(|g| g.is_finite())
                .collect();
            if norms.len() >= self.cfg.grad_warmup {
                norms.sort_by(f64::total_cmp);
                let median = norms[norms.len() / 2];
                if median > 0.0 && record.grad_norm > self.cfg.grad_explosion_factor * median {
                    self.report(Diagnosis::GradientExplosion {
                        epoch: record.epoch,
                        grad_norm: record.grad_norm,
                        baseline: median,
                    });
                }
            }
        }

        let streak = (self.solver_probe)();
        if streak >= self.cfg.solver_streak {
            self.report(Diagnosis::SolverDivergence { streak });
        }

        let cond1 = (self.cond_probe)();
        if cond1.is_finite() && cond1 > self.cfg.cond1_gate {
            self.report(Diagnosis::IllConditioned {
                cond1,
                gate: self.cfg.cond1_gate,
            });
        }

        self.history.push_back(*record);
        if self.history.len() > self.cfg.history {
            self.history.pop_front();
        }
    }

    fn check_outer(&mut self, iter: usize, record: &OuterIterRecord) {
        if !record.lambda.is_finite() || record.lambda.abs() > self.cfg.lambda_max {
            self.report(Diagnosis::MultiplierBlowup {
                iter,
                lambda: record.lambda,
            });
        }
        self.recent_constraints.push(record.constraint);
        let n = self.cfg.stall_outer_iters;
        if self.recent_constraints.len() >= n {
            let window = &self.recent_constraints[self.recent_constraints.len() - n..];
            let all_violated = window.iter().all(|&c| c > 0.0);
            let first = window[0];
            let last = window[n - 1];
            let improvement = (first - last) / first.abs().max(f64::MIN_POSITIVE);
            if all_violated && improvement < self.cfg.stall_min_improvement {
                self.report(Diagnosis::ConstraintStall {
                    iter,
                    constraint: last,
                });
            }
        }
    }
}

impl<O: TrainObserver> TrainObserver for HealthWatchdog<O> {
    fn wants_power(&self) -> bool {
        self.inner.wants_power()
    }

    fn profiler(&self) -> Profiler {
        self.inner.profiler()
    }

    fn on_epoch(&mut self, record: &EpochRecord) {
        self.check_epoch(record);
        self.inner.on_epoch(record);
    }

    fn on_network(&mut self, epoch: usize, net: &pnc_core::network::PrintedNetwork) {
        self.inner.on_network(epoch, net);
    }

    fn on_outer_iter(&mut self, iter: usize, record: &OuterIterRecord) {
        self.check_outer(iter, record);
        self.inner.on_outer_iter(iter, record);
    }

    fn on_rescue(&mut self, event: &RescueEvent) {
        self.inner.on_rescue(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observer::NoopObserver;
    use crate::trainer::FitReport;
    use pnc_telemetry::MemorySink;
    use std::sync::Arc;

    fn epoch(epoch: usize, objective: f64, grad_norm: f64) -> EpochRecord {
        EpochRecord {
            epoch,
            objective,
            val_accuracy: 0.5,
            val_loss: 1.0,
            feasible: true,
            lr: 0.1,
            grad_norm,
            power_watts: None,
            constraint: None,
            lambda: None,
            mu: None,
        }
    }

    fn outer(lambda: f64, constraint: f64) -> OuterIterRecord {
        OuterIterRecord {
            lambda,
            mu: 2.0,
            power_watts: 1.0,
            constraint,
            val_accuracy: 0.5,
            fit: FitReport {
                epochs: 1,
                best_val_accuracy: 0.5,
                best_is_feasible: false,
                final_objective: 1.0,
                final_lr: 0.1,
                final_power_watts: None,
                wall_clock_ms: 0.0,
                seed: None,
            },
        }
    }

    fn watchdog() -> (HealthWatchdog<NoopObserver>, Arc<MemorySink>) {
        let sink = Arc::new(MemorySink::new());
        let tel = Telemetry::with_sink(sink.clone());
        let wd = HealthWatchdog::new(NoopObserver, tel)
            .with_solver_probe(|| 0)
            .with_cond_probe(|| 0.0);
        (wd, sink)
    }

    #[test]
    fn nan_loss_fires_a_latched_non_finite_diagnosis() {
        let (mut wd, sink) = watchdog();
        wd.on_epoch(&epoch(1, 1.0, 1.0));
        wd.on_epoch(&epoch(2, f64::NAN, 1.0));
        wd.on_epoch(&epoch(3, f64::NAN, 1.0));
        assert_eq!(
            wd.diagnoses(),
            &[Diagnosis::NonFinite {
                epoch: 2,
                what: NonFiniteKind::Loss
            }]
        );
        // Latched: two poisoned epochs, one health event.
        let events = sink.events_named("health");
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].get_str("diagnosis"), Some("non_finite"));
        assert_eq!(events[0].get_str("what"), Some("loss"));
        assert!(events[0].get_str("suggestion").is_some());
    }

    #[test]
    fn health_events_survive_the_quiet_console_level() {
        // `--quiet` configures the console sink at Level::Warn; health
        // findings are errors, not chatter, and must not be filtered.
        let (mut wd, sink) = watchdog();
        wd.on_epoch(&epoch(1, f64::INFINITY, 1.0));
        let events = sink.events_named("health");
        assert_eq!(events.len(), 1);
        assert!(
            events[0].level >= Level::Warn,
            "health events must pass a Warn-filtered (--quiet) console sink"
        );
    }

    #[test]
    fn gradient_explosion_compares_against_recent_median() {
        let (mut wd, sink) = watchdog();
        for k in 1..=6 {
            wd.on_epoch(&epoch(k, 1.0, 2.0));
        }
        assert!(wd.diagnoses().is_empty(), "steady norms are healthy");
        wd.on_epoch(&epoch(7, 1.0, 5e4));
        match wd.diagnoses() {
            [Diagnosis::GradientExplosion {
                epoch: 7,
                grad_norm,
                baseline,
            }] => {
                assert_eq!(*grad_norm, 5e4);
                assert_eq!(*baseline, 2.0);
            }
            other => panic!("expected a gradient explosion, got {other:?}"),
        }
        assert_eq!(sink.events_named("health").len(), 1);
    }

    #[test]
    fn exploding_lambda_fires_multiplier_blowup() {
        let (mut wd, sink) = watchdog();
        wd.on_outer_iter(0, &outer(10.0, 0.5));
        assert!(wd.diagnoses().is_empty());
        wd.on_outer_iter(1, &outer(3e7, 0.5));
        assert_eq!(
            wd.diagnoses(),
            &[Diagnosis::MultiplierBlowup {
                iter: 1,
                lambda: 3e7
            }]
        );
        let events = sink.events_named("health");
        assert_eq!(events[0].get_str("diagnosis"), Some("multiplier_blowup"));
    }

    #[test]
    fn solver_divergence_streak_is_detected_via_the_probe() {
        let sink = Arc::new(MemorySink::new());
        let tel = Telemetry::with_sink(sink.clone());
        let mut wd = HealthWatchdog::new(NoopObserver, tel).with_solver_probe(|| 40);
        wd.on_epoch(&epoch(1, 1.0, 1.0));
        assert_eq!(
            wd.diagnoses(),
            &[Diagnosis::SolverDivergence { streak: 40 }]
        );
        assert_eq!(sink.events_named("health")[0].get_u64("streak"), Some(40));
    }

    #[test]
    fn crossing_the_cond1_gate_latches_ill_conditioned() {
        let sink = Arc::new(MemorySink::new());
        let tel = Telemetry::with_sink(sink.clone());
        let mut wd = HealthWatchdog::new(NoopObserver, tel)
            .with_solver_probe(|| 0)
            .with_cond_probe(|| 3.5e13);
        wd.on_epoch(&epoch(1, 1.0, 1.0));
        wd.on_epoch(&epoch(2, 1.0, 1.0));
        assert_eq!(
            wd.diagnoses(),
            &[Diagnosis::IllConditioned {
                cond1: 3.5e13,
                gate: 1e12
            }]
        );
        // Latched: the probe is a high-water mark, so it stays above the
        // gate forever — still exactly one health event.
        let events = sink.events_named("health");
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].get_str("diagnosis"), Some("ill_conditioned"));
        assert_eq!(events[0].get_f64("cond1"), Some(3.5e13));
        assert_eq!(events[0].get_f64("gate"), Some(1e12));
    }

    #[test]
    fn cond1_below_the_gate_is_healthy() {
        let sink = Arc::new(MemorySink::new());
        let tel = Telemetry::with_sink(sink.clone());
        let mut wd = HealthWatchdog::new(NoopObserver, tel)
            .with_solver_probe(|| 0)
            .with_cond_probe(|| 1e8);
        wd.on_epoch(&epoch(1, 1.0, 1.0));
        assert!(wd.diagnoses().is_empty());
        assert!(sink.events_named("health").is_empty());
    }

    #[test]
    fn constraint_stall_requires_violation_without_progress() {
        let (mut wd, _sink) = watchdog();
        // Violated but improving fast: no stall.
        wd.on_outer_iter(0, &outer(1.0, 0.9));
        wd.on_outer_iter(1, &outer(2.0, 0.5));
        wd.on_outer_iter(2, &outer(3.0, 0.2));
        assert!(wd.diagnoses().is_empty());
        // Three flat violated iterations: stall.
        wd.on_outer_iter(3, &outer(4.0, 0.2));
        wd.on_outer_iter(4, &outer(5.0, 0.2));
        assert_eq!(
            wd.diagnoses(),
            &[Diagnosis::ConstraintStall {
                iter: 4,
                constraint: 0.2
            }]
        );
    }

    #[test]
    fn postmortem_names_the_diagnosis_and_lists_last_epochs() {
        let (mut wd, _sink) = watchdog();
        for k in 1..=12 {
            wd.on_epoch(&epoch(k, 1.0 / k as f64, 1.0));
        }
        wd.on_epoch(&epoch(13, f64::NAN, 1.0));
        let md = wd.postmortem();
        assert!(md.contains("`non_finite`"), "{md}");
        assert!(md.contains("non-finite loss at epoch 13"), "{md}");
        assert!(md.contains("TrainConfig::lr"), "{md}");
        // History is capped at the configured window (default 10).
        assert!(md.contains("Last 10 epoch records"), "{md}");
        assert!(!md.contains("| 2 |"), "oldest epochs dropped: {md}");
        assert!(md.contains("| 13 |"), "{md}");
    }

    #[test]
    fn healthy_run_has_an_empty_postmortem_diagnosis() {
        let (mut wd, sink) = watchdog();
        for k in 1..=5 {
            wd.on_epoch(&epoch(k, 1.0, 1.0));
        }
        assert!(wd.diagnoses().is_empty());
        assert!(sink.events_named("health").is_empty());
        assert!(wd.postmortem().contains("none"));
    }
}
