//! End-to-end experiment drivers for the paper's evaluation section.
//!
//! These functions tie the whole reproduction together and are what the
//! `pnc-bench` binaries call to regenerate Table I and Figs. 4/5:
//!
//! 1. fit the surrogate bundle for an activation kind,
//! 2. train an *unconstrained* reference to find the dataset's maximum
//!    power `P_max`,
//! 3. run the augmented Lagrangian at budgets `{20, 40, 60, 80} % ·
//!    P_max`, fine-tune under the mask, and
//! 4. report test accuracy, hard power and device count —
//!
//! plus the penalty-baseline sweep used for the Pareto comparison.

use crate::auglag::{hard_power, train_auglag, AugLagConfig};
use crate::error::TrainError;
use crate::finetune::finetune;
use crate::penalty::{train_penalty, PenaltyConfig};
use crate::trainer::{fit_cross_entropy, DataRefs, TrainConfig};
use pnc_core::activation::{LearnableActivation, SurrogateFidelity};
use pnc_core::{NetworkConfig, PrintedNetwork};
use pnc_datasets::{Dataset, DatasetId};
use pnc_linalg::rng as lrng;
use pnc_spice::AfKind;
use pnc_surrogate::NegationModel;

/// Fidelity preset controlling the cost of a full experiment run.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentFidelity {
    /// Surrogate-fitting fidelity.
    pub surrogate: SurrogateFidelity,
    /// Training-loop settings.
    pub train: TrainConfig,
    /// Outer iterations of the augmented Lagrangian.
    pub auglag_outer: usize,
    /// `μ` used when no per-dataset tuning is requested.
    pub mu: f64,
}

impl ExperimentFidelity {
    /// Seconds-scale preset for unit tests.
    pub fn smoke() -> Self {
        ExperimentFidelity {
            surrogate: SurrogateFidelity::smoke(),
            train: TrainConfig::smoke(),
            auglag_outer: 3,
            mu: 2.0,
        }
    }

    /// Minutes-scale preset: enough optimization for the qualitative
    /// trends (used by the CI benchmark harness).
    pub fn ci() -> Self {
        ExperimentFidelity {
            surrogate: SurrogateFidelity::default(),
            train: TrainConfig {
                max_epochs: 500,
                patience: 60,
                ..TrainConfig::default()
            },
            auglag_outer: 5,
            mu: 2.0,
        }
    }

    /// Paper-scale preset (10,000-sample surrogates, 2000-epoch inner
    /// solves).
    pub fn full() -> Self {
        ExperimentFidelity {
            surrogate: SurrogateFidelity::paper(),
            train: TrainConfig::default(),
            auglag_outer: 8,
            mu: 2.0,
        }
    }
}

/// One trained model's evaluation summary.
#[derive(Debug, Clone, PartialEq)]
pub struct RunResult {
    /// Dataset evaluated.
    pub dataset: DatasetId,
    /// Activation kind used.
    pub af: AfKind,
    /// Budget as a fraction of `P_max` (1.0 for unconstrained).
    pub budget_frac: f64,
    /// Budget in milliwatts.
    pub budget_mw: f64,
    /// Hard power of the final model in milliwatts.
    pub power_mw: f64,
    /// Test-set accuracy in `[0, 1]`.
    pub test_accuracy: f64,
    /// Validation accuracy in `[0, 1]` (for model/μ selection without
    /// touching the test set).
    pub val_accuracy: f64,
    /// Hard printed-device count.
    pub devices: usize,
    /// Whether the final model satisfies the budget.
    pub feasible: bool,
    /// Seed used for initialization and the data split.
    pub seed: u64,
    /// Number of full training runs this result cost (1 for the
    /// augmented Lagrangian; the baseline pays one per (α, seed)).
    pub training_runs: usize,
}

/// Builds a fresh network for a dataset with the standard
/// `#inputs-3-#outputs` topology.
pub fn build_network(
    id: DatasetId,
    activation: &LearnableActivation,
    negation: &NegationModel,
    seed: u64,
) -> PrintedNetwork {
    let mut rng = lrng::seeded(seed);
    PrintedNetwork::new(
        id.features(),
        id.classes(),
        NetworkConfig::default(),
        activation.clone(),
        *negation,
        &mut rng,
    )
    // lint: allow(L001, reason = "every DatasetId reports positive feature/class counts")
    .expect("benchmark datasets have positive widths")
}

/// Trains an unconstrained reference and returns `(trained_net, P_max)`
/// where `P_max` is the maximum hard power observed during training —
/// the paper's normalization for all budget fractions.
/// # Errors
///
/// Returns [`TrainError::Core`] when data shapes disagree with the
/// dataset's topology, and [`TrainError::NonFinite`] on numerical
/// collapse.
pub fn unconstrained_reference(
    id: DatasetId,
    activation: &LearnableActivation,
    negation: &NegationModel,
    data: &DataRefs<'_>,
    train: &TrainConfig,
    seed: u64,
) -> Result<(PrintedNetwork, f64), TrainError> {
    let mut net = build_network(id, activation, negation, seed);
    let p_init = hard_power(&net, data.x_train)?;
    fit_cross_entropy(&mut net, data, train)?;
    let p_final = hard_power(&net, data.x_train)?;
    Ok((net, p_final.max(p_init)))
}

/// Full single-run pipeline: augmented Lagrangian at
/// `budget = budget_frac · p_max`, then mask-based fine-tuning.
///
/// # Errors
///
/// Returns [`TrainError::Core`] when data shapes disagree with the
/// dataset's topology, and [`TrainError::NonFinite`] on numerical
/// collapse.
#[allow(clippy::too_many_arguments)]
pub fn run_constrained(
    id: DatasetId,
    activation: &LearnableActivation,
    negation: &NegationModel,
    data: &DataRefs<'_>,
    x_test: &pnc_linalg::Matrix,
    y_test: &[usize],
    p_max: f64,
    budget_frac: f64,
    fidelity: &ExperimentFidelity,
    seed: u64,
) -> Result<RunResult, TrainError> {
    let budget = budget_frac * p_max;
    let mut net = build_network(id, activation, negation, seed);
    let cfg = AugLagConfig {
        budget_watts: budget,
        mu: fidelity.mu,
        outer_iters: fidelity.auglag_outer,
        inner: fidelity.train.with_seed(seed),
        warm_start: true,
        rescue: true,
    };
    train_auglag(&mut net, data, &cfg)?;
    finetune(&mut net, data, budget, &fidelity.train)?;

    let power = hard_power(&net, data.x_train)?;
    Ok(RunResult {
        dataset: id,
        af: activation.kind(),
        budget_frac,
        budget_mw: budget * 1e3,
        power_mw: power * 1e3,
        test_accuracy: net.accuracy(x_test, y_test)?,
        val_accuracy: net.accuracy(data.x_val, data.y_val)?,
        devices: net.device_count(),
        feasible: power <= budget,
        seed,
        training_runs: 1,
    })
}

/// Like [`run_constrained`] but selects the augmented Lagrangian `μ`
/// from `mu_candidates` by validation accuracy among feasible runs —
/// the paper's RayTune protocol. `training_runs` reflects every
/// candidate trained.
///
/// # Errors
///
/// Returns [`TrainError::Core`] when data shapes disagree with the
/// dataset's topology, and [`TrainError::NonFinite`] on numerical
/// collapse.
///
/// # Panics
///
/// Panics when `mu_candidates` is empty.
#[allow(clippy::too_many_arguments)]
pub fn run_constrained_tuned(
    id: DatasetId,
    activation: &LearnableActivation,
    negation: &NegationModel,
    data: &DataRefs<'_>,
    x_test: &pnc_linalg::Matrix,
    y_test: &[usize],
    p_max: f64,
    budget_frac: f64,
    fidelity: &ExperimentFidelity,
    seed: u64,
    mu_candidates: &[f64],
) -> Result<RunResult, TrainError> {
    assert!(!mu_candidates.is_empty(), "need at least one μ candidate");
    // Each μ candidate trains an independent network from the same
    // seed, so the grid fans out over the executor. Selection folds in
    // candidate order with a strict `>`, so the first candidate wins
    // ties exactly as the sequential loop did, for any thread count.
    let candidates = pnc_parallel::ExecutorHandle::get().par_try_map(mu_candidates, |_, &mu| {
        let fid = ExperimentFidelity {
            mu,
            ..fidelity.clone()
        };
        run_constrained(
            id,
            activation,
            negation,
            data,
            x_test,
            y_test,
            p_max,
            budget_frac,
            &fid,
            seed,
        )
    })?;
    let mut best: Option<RunResult> = None;
    for candidate in candidates {
        let better = match &best {
            None => true,
            Some(b) => (candidate.feasible, candidate.val_accuracy) > (b.feasible, b.val_accuracy),
        };
        if better {
            best = Some(candidate);
        }
    }
    // lint: allow(L001, reason = "mu_candidates is asserted non-empty above, so best was set")
    let mut out = best.expect("non-empty candidates");
    out.training_runs = mu_candidates.len();
    Ok(out)
}

/// One penalty-baseline run at scaling factor `alpha`.
///
/// # Errors
///
/// Returns [`TrainError::Core`] when data shapes disagree with the
/// dataset's topology, and [`TrainError::NonFinite`] on numerical
/// collapse.
#[allow(clippy::too_many_arguments)]
pub fn run_penalty_baseline(
    id: DatasetId,
    activation: &LearnableActivation,
    negation: &NegationModel,
    data: &DataRefs<'_>,
    x_test: &pnc_linalg::Matrix,
    y_test: &[usize],
    p_max: f64,
    alpha: f64,
    train: &TrainConfig,
    seed: u64,
    faithful: bool,
) -> Result<RunResult, TrainError> {
    let mut net = build_network(id, activation, negation, seed);
    let cfg = PenaltyConfig {
        alpha,
        p_ref_watts: p_max,
        inner: train.with_seed(seed),
        faithful,
    };
    train_penalty(&mut net, data, &cfg)?;
    let power = hard_power(&net, data.x_train)?;
    Ok(RunResult {
        dataset: id,
        af: activation.kind(),
        budget_frac: alpha, // repurposed: the α knob
        budget_mw: f64::NAN,
        power_mw: power * 1e3,
        test_accuracy: net.accuracy(x_test, y_test)?,
        val_accuracy: net.accuracy(data.x_val, data.y_val)?,
        devices: net.device_count(),
        feasible: true,
        seed,
        training_runs: 1,
    })
}

/// Convenience: materializes a dataset + split and returns everything a
/// run needs. The split seed is derived from `seed` so each seed sees a
/// different shuffle, as with fresh seeds in the paper.
pub struct PreparedData {
    /// The generated dataset.
    pub dataset: Dataset,
    /// Its 60/20/20 split.
    pub split: pnc_datasets::Split,
}

impl PreparedData {
    /// Generates and splits `id` deterministically from `seed`.
    pub fn new(id: DatasetId, seed: u64) -> Self {
        let dataset = Dataset::generate(id, 0xDA7A ^ id as u64);
        let split = dataset.split(seed);
        PreparedData { dataset, split }
    }

    /// Borrow the train/val references.
    pub fn refs(&self) -> DataRefs<'_> {
        DataRefs::from_split(&self.split)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trainer::test_support::smoke_parts;

    #[test]
    fn smoke_pipeline_on_iris() {
        let (act, neg) = smoke_parts().clone();
        let prep = PreparedData::new(DatasetId::Iris, 1);
        let data = prep.refs();
        let fid = ExperimentFidelity::smoke();

        let (_, p_max) =
            unconstrained_reference(DatasetId::Iris, &act, &neg, &data, &fid.train, 1).unwrap();
        assert!(p_max > 0.0);

        let result = run_constrained(
            DatasetId::Iris,
            &act,
            &neg,
            &data,
            &prep.split.test.x,
            &prep.split.test.labels,
            p_max,
            0.4,
            &fid,
            1,
        )
        .unwrap();
        assert!(result.feasible, "{result:?}");
        assert!(result.power_mw <= result.budget_mw * 1.02);
        assert!(result.test_accuracy > 0.3, "{result:?}");
        assert!(result.devices > 0);
        assert_eq!(result.training_runs, 1);
    }

    #[test]
    fn penalty_baseline_runs() {
        let (act, neg) = smoke_parts().clone();
        let prep = PreparedData::new(DatasetId::Iris, 2);
        let data = prep.refs();
        let result = run_penalty_baseline(
            DatasetId::Iris,
            &act,
            &neg,
            &data,
            &prep.split.test.x,
            &prep.split.test.labels,
            1e-4,
            0.5,
            &TrainConfig::smoke(),
            2,
            false,
        )
        .unwrap();
        assert!(result.power_mw > 0.0);
        assert!(result.test_accuracy >= 0.0);
    }

    #[test]
    fn prepared_data_is_deterministic() {
        let a = PreparedData::new(DatasetId::Seeds, 5);
        let b = PreparedData::new(DatasetId::Seeds, 5);
        assert_eq!(a.split.train.labels, b.split.train.labels);
    }
}
