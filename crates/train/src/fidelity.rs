//! Surrogate-fidelity drift monitoring.
//!
//! The trainers optimize against *surrogate* power models (the MLP
//! activation-power surrogate and the characterized negation constant);
//! the SPICE engine is the ground truth. [`FidelityMonitor`] is a
//! [`TrainObserver`] decorator that every K epochs — and always once at
//! convergence — re-evaluates the current network's surrogate-modelled
//! circuit power through the SPICE path and records the absolute and
//! relative error:
//!
//! * a `fidelity_check` event per check (→ `metrics.jsonl`),
//! * `fidelity_abs_err_watts` / `fidelity_rel_err` streaming histograms
//!   plus last-value gauges in the metrics registry (→ `metrics.prom`),
//! * [`FidelityRecord`]s for the `fidelity` section of `summary.json`,
//! * an optional drift gate: when the relative error of any check
//!   exceeds the configured threshold, a
//!   [`Diagnosis::SurrogateDrift`] latches (once) and is emitted as a
//!   Warn-level `health` event, exactly like the
//!   [`crate::watchdog::HealthWatchdog`] diagnoses.
//!
//! What is compared: the crossbar term of the power report is computed
//! analytically from `Θ` in both the training path and the SPICE
//! netlist export, so it cannot drift. The components that *can* drift
//! are the ones a surrogate stands in for — activation circuits
//! (`N^AF · 𝒫^AF(q)` vs. a SPICE DC sweep of the same design `q`) and
//! negation circuits (the characterized constant vs. a fresh SPICE
//! sweep). The monitor therefore compares exactly those, which keeps a
//! genuine drift from being diluted by the large shared crossbar term.
//!
//! Cost: one check solves `grid_points` DC operating points per layer
//! (plus a one-time negation sweep, cached — the negation circuit has
//! no trainable parameters). At the default smoke settings that is
//! tens of Newton solves per check, a few milliseconds.

use crate::auglag::OuterIterRecord;
use crate::observer::{RescueEvent, TrainObserver};
use crate::trainer::EpochRecord;
use crate::watchdog::Diagnosis;
use pnc_core::{count, network::PrintedNetwork};
use pnc_spice::af::{mean_power, negation_mean_power};
use pnc_spice::AfDesign;
use pnc_telemetry::registry::FidelityRecord;
use pnc_telemetry::{Event, Level, MetricsHandle, Profiler, StreamHistogram, Telemetry};

/// Configuration of the fidelity monitor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FidelityConfig {
    /// Spot-check every this many epochs (counted globally, across
    /// outer iterations). `0` disables periodic checks entirely.
    pub every_epochs: usize,
    /// Latch a [`Diagnosis::SurrogateDrift`] when a check's relative
    /// error exceeds this. `None` records errors without gating.
    pub gate_rel_err: Option<f64>,
    /// DC-sweep grid resolution of the SPICE re-evaluation.
    pub grid_points: usize,
}

impl Default for FidelityConfig {
    fn default() -> Self {
        FidelityConfig {
            every_epochs: 0,
            gate_rel_err: None,
            grid_points: 9,
        }
    }
}

/// One surrogate-vs-SPICE comparison of a network's circuit power.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FidelitySample {
    /// Surrogate-path circuit power (activation + negation), watts.
    pub surrogate_watts: f64,
    /// SPICE-path circuit power of the same circuits, watts.
    pub spice_watts: f64,
}

impl FidelitySample {
    /// Absolute error `|surrogate − spice|` in watts.
    pub fn abs_err_watts(&self) -> f64 {
        (self.surrogate_watts - self.spice_watts).abs()
    }

    /// Absolute error relative to the SPICE ground truth. Defined as 0
    /// when both paths report (near-)zero power (fully pruned nets).
    pub fn rel_err(&self) -> f64 {
        let denom = self.spice_watts.abs();
        if denom < 1e-30 {
            if self.abs_err_watts() < 1e-30 {
                0.0
            } else {
                f64::INFINITY
            }
        } else {
            self.abs_err_watts() / denom
        }
    }
}

/// Re-evaluates the surrogate-modelled circuit power of `net` through
/// the SPICE path: each layer's activation design `q` is swept on the
/// standard input grid, the negation circuit once (it carries no
/// trainable parameters). Circuit counts use the same hard indicator
/// counting as [`PrintedNetwork::power_report`].
///
/// # Errors
///
/// Returns a description when a design leaves the feasible bounds or a
/// DC solve fails to converge.
pub fn fidelity_sample(net: &PrintedNetwork, grid_points: usize) -> Result<FidelitySample, String> {
    let kind = net.activation().kind();
    let cfg = &net.config().count;
    let neg_spice = negation_mean_power(grid_points)
        .map_err(|e| format!("negation SPICE sweep failed: {e}"))?;
    sample_with_negation(net, grid_points, kind, cfg, neg_spice)
}

fn sample_with_negation(
    net: &PrintedNetwork,
    grid_points: usize,
    kind: pnc_spice::AfKind,
    cfg: &pnc_core::count::CountConfig,
    neg_spice_watts: f64,
) -> Result<FidelitySample, String> {
    let mut surrogate_watts = 0.0;
    let mut spice_watts = 0.0;
    let mut neg_total = 0usize;
    for i in 0..net.layer_count() {
        let theta_eff = net.theta_effective(i);
        let inputs = theta_eff.rows() - 2;
        let n_af = count::hard_af_count(&theta_eff, cfg);
        let n_neg = count::hard_neg_count(&theta_eff, inputs, cfg);
        neg_total += n_neg;
        if n_af == 0 {
            continue;
        }
        let q = net.layer_design(i);
        let per_af_surrogate = net.activation().power_surrogate().predict(&q);
        let design = AfDesign::new(kind, q)
            .map_err(|e| format!("layer {i} design left feasible bounds: {e}"))?;
        let per_af_spice = mean_power(&design, grid_points)
            .map_err(|e| format!("layer {i} SPICE sweep failed: {e}"))?;
        surrogate_watts += n_af as f64 * per_af_surrogate;
        spice_watts += n_af as f64 * per_af_spice;
    }
    surrogate_watts += neg_total as f64 * net.negation().mean_power_watts;
    spice_watts += neg_total as f64 * neg_spice_watts;
    Ok(FidelitySample {
        surrogate_watts,
        spice_watts,
    })
}

/// A [`TrainObserver`] decorator that spot-checks surrogate power
/// against SPICE. All callbacks forward to the wrapped observer
/// unchanged; the monitor only *reads* the network.
pub struct FidelityMonitor<O> {
    inner: O,
    tel: Telemetry,
    cfg: FidelityConfig,
    epochs_seen: u64,
    checks: Vec<FidelityRecord>,
    failed_checks: u64,
    diagnosis: Option<Diagnosis>,
    abs_err_hist: StreamHistogram,
    rel_err_hist: StreamHistogram,
    // The negation circuit has no trainable parameters, so its SPICE
    // sweep is computed once and reused by every check.
    neg_spice_watts: Option<Result<f64, String>>,
}

impl<O: TrainObserver> FidelityMonitor<O> {
    /// Wraps `inner`, recording through `tel`. Histograms resolve from
    /// the telemetry metrics registry when one is attached (so they
    /// appear in the Prometheus exposition) and fall back to detached
    /// histograms otherwise. Tick scales: picowatts for the absolute
    /// error, 1e-9 relative for the relative error.
    pub fn new(inner: O, tel: Telemetry, cfg: FidelityConfig) -> Self {
        let (abs_err_hist, rel_err_hist) = match tel.metrics().registry() {
            Some(reg) => (
                reg.histogram_scaled("fidelity_abs_err_watts", 1e12),
                reg.histogram_scaled("fidelity_rel_err", 1e9),
            ),
            None => (
                StreamHistogram::with_ticks_per_unit(1e12),
                StreamHistogram::with_ticks_per_unit(1e9),
            ),
        };
        FidelityMonitor {
            inner,
            tel,
            cfg,
            epochs_seen: 0,
            checks: Vec::new(),
            failed_checks: 0,
            diagnosis: None,
            abs_err_hist,
            rel_err_hist,
            neg_spice_watts: None,
        }
    }

    /// Whether periodic checks are active.
    pub fn is_enabled(&self) -> bool {
        self.cfg.every_epochs > 0
    }

    /// The checks recorded so far, in order.
    pub fn checks(&self) -> &[FidelityRecord] {
        &self.checks
    }

    /// Takes the recorded checks (for `summary.json`).
    pub fn take_checks(&mut self) -> Vec<FidelityRecord> {
        std::mem::take(&mut self.checks)
    }

    /// The latched drift diagnosis, when the gate tripped.
    pub fn drift_diagnosis(&self) -> Option<&Diagnosis> {
        self.diagnosis.as_ref()
    }

    /// Checks that could not be evaluated (SPICE failure / infeasible
    /// design); each emitted a Warn event when it happened.
    pub fn failed_checks(&self) -> u64 {
        self.failed_checks
    }

    /// Unwraps the decorated observer.
    pub fn into_inner(self) -> O {
        self.inner
    }

    /// Runs one spot check immediately, tagged `label` (`"final"` for
    /// the at-convergence check). Failures are recorded and reported as
    /// Warn events, never propagated — a broken spot check must not
    /// kill a training run.
    pub fn check_now(&mut self, net: &PrintedNetwork, label: &str) {
        let grid = self.cfg.grid_points;
        let neg_spice = self.neg_spice_watts.get_or_insert_with(|| {
            negation_mean_power(grid).map_err(|e| format!("negation SPICE sweep failed: {e}"))
        });
        let sample = match neg_spice {
            Ok(neg) => sample_with_negation(
                net,
                grid,
                net.activation().kind(),
                &net.config().count,
                *neg,
            ),
            Err(e) => Err(e.clone()),
        };
        let epoch = self.epochs_seen;
        match sample {
            Ok(s) => self.record_check(epoch, label, s),
            Err(reason) => {
                self.failed_checks += 1;
                self.tel.emit(|| {
                    Event::new("fidelity_check_failed", Level::Warn)
                        .with_u64("epoch", epoch)
                        .with_str("label", label)
                        .with_str("reason", reason)
                });
            }
        }
    }

    fn record_check(&mut self, epoch: u64, label: &str, s: FidelitySample) {
        let abs_err_watts = s.abs_err_watts();
        let rel_err = s.rel_err();
        self.abs_err_hist.record(abs_err_watts);
        self.rel_err_hist.record(rel_err);
        if let Some(reg) = self.tel.metrics().registry() {
            reg.counter("fidelity_checks_total").incr();
            reg.gauge("fidelity_rel_err_last").set(rel_err);
            reg.gauge("fidelity_abs_err_watts_last").set(abs_err_watts);
        }
        self.tel.emit(|| {
            Event::new("fidelity_check", Level::Info)
                .with_u64("epoch", epoch)
                .with_str("label", label)
                .with_f64("surrogate_watts", s.surrogate_watts)
                .with_f64("spice_watts", s.spice_watts)
                .with_f64("abs_err_watts", abs_err_watts)
                .with_f64("rel_err", rel_err)
        });
        self.checks.push(FidelityRecord {
            epoch,
            label: label.to_string(),
            surrogate_watts: s.surrogate_watts,
            spice_watts: s.spice_watts,
            abs_err_watts,
            rel_err,
        });
        if self.diagnosis.is_none() {
            if let Some(gate) = self.cfg.gate_rel_err {
                if rel_err > gate {
                    let diag = Diagnosis::SurrogateDrift {
                        epoch,
                        rel_err,
                        gate,
                    };
                    self.tel.emit_event(diag.to_event());
                    self.diagnosis = Some(diag);
                }
            }
        }
    }
}

impl<O: TrainObserver> TrainObserver for FidelityMonitor<O> {
    fn wants_power(&self) -> bool {
        self.inner.wants_power()
    }

    fn profiler(&self) -> Profiler {
        self.inner.profiler()
    }

    fn metrics(&self) -> MetricsHandle {
        self.inner.metrics()
    }

    fn on_epoch(&mut self, record: &EpochRecord) {
        self.inner.on_epoch(record);
    }

    fn on_network(&mut self, epoch: usize, net: &PrintedNetwork) {
        // Global epoch counter: the inner loop restarts `epoch` at 1
        // each outer iteration, the cadence should not.
        self.epochs_seen += 1;
        if self.cfg.every_epochs > 0
            && self
                .epochs_seen
                .is_multiple_of(self.cfg.every_epochs as u64)
        {
            let _span = self.profiler().scope("fidelity_check");
            self.check_now(net, "epoch");
        }
        self.inner.on_network(epoch, net);
    }

    fn on_outer_iter(&mut self, iter: usize, record: &OuterIterRecord) {
        self.inner.on_outer_iter(iter, record);
    }

    fn on_rescue(&mut self, event: &RescueEvent) {
        self.inner.on_rescue(event);
    }
}
