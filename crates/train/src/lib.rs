//! # pnc-train
//!
//! Power-constrained training of printed neuromorphic circuits — the
//! paper's core contribution (Sec. III-C, IV).
//!
//! The crate implements:
//!
//! * [`trainer`] — the shared training loop: full-batch Adam at an
//!   initial learning rate of 0.1, plateau-halving after 100 epochs
//!   without validation improvement, best-feasible model tracking.
//! * [`auglag`] — the **augmented Lagrangian** method of Eq. (1)/(3)/(4):
//!   a sequence of unconstrained minimizations of
//!   `ℒ + (1/2μ)·(max(0, λ' + μ·c)² − λ'²)` with multiplier updates
//!   `λ' ← max(0, λ' + μ·c)`, warm-started between outer iterations.
//! * [`penalty`] — the penalty-based baseline (Zhao et al., ICCAD'23):
//!   `ℒ + α · P/P_ref`, swept over `α` and seeds to trace a Pareto
//!   front the expensive way.
//! * [`finetune`] — the paper's mask-based fine-tuning phase: prune
//!   inactive components (`m^C`, `m^N`), retrain with cross-entropy
//!   only, and stop if the power constraint is violated.
//! * [`pareto`] — non-dominated front extraction and
//!   accuracy-per-power utilities for the headline comparisons.
//! * [`tune`] — validation-based selection of `μ` (the paper uses
//!   RayTune; we use a seeded search over a log-uniform grid).
//! * [`experiment`] — end-to-end drivers that produce the rows of
//!   Table I and the series of Figs. 4 and 5.
//! * [`multi`] — the paper's future-work extension: several
//!   simultaneous constraints (power + device count), each with its own
//!   multiplier.
//! * [`observer`] — non-global instrumentation: a [`TrainObserver`]
//!   trait threaded through the trainers, with a telemetry bridge that
//!   turns epochs, outer iterations and rescue phases into structured
//!   events.
//! * [`error`] — typed training failures: numerical collapse
//!   ([`TrainError::NonFinite`]) is a first-class outcome, not a
//!   silently-propagated NaN.
//! * [`watchdog`] — a [`HealthWatchdog`] observer decorator that
//!   diagnoses numerically sick runs (NaN/Inf, gradient explosions,
//!   multiplier blow-ups, solver-divergence streaks, constraint
//!   stalls) and renders post-mortems.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod auglag;
pub mod error;
pub mod experiment;
pub mod fidelity;
pub mod finetune;
pub mod multi;
pub mod observer;
pub mod pareto;
pub mod penalty;
pub mod trainer;
pub mod tune;
pub mod watchdog;

pub use auglag::{train_auglag, train_auglag_observed, AugLagConfig, AugLagReport};
pub use error::{NonFiniteKind, TrainError};
pub use experiment::{ExperimentFidelity, RunResult};
pub use fidelity::{fidelity_sample, FidelityConfig, FidelityMonitor, FidelitySample};
pub use observer::{
    NoopObserver, RecordingObserver, RescueEvent, TelemetryObserver, TrainObserver,
};
pub use pareto::{pareto_front, ParetoPoint};
pub use penalty::{train_penalty, train_penalty_observed, PenaltyConfig};
pub use trainer::{
    fit, fit_instrumented, fit_traced, DataRefs, EpochMeasure, EpochRecord, FitContext, FitReport,
    TrainConfig,
};
pub use watchdog::{Diagnosis, HealthWatchdog, WatchdogConfig};
