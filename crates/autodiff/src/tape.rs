//! The reverse-mode tape: nodes, operations and backpropagation.

use pnc_linalg::Matrix;

/// Handle to a node on a [`Tape`].
///
/// `Var` is a plain index — `Copy`, cheap, and only meaningful for the
/// tape that created it. Using a `Var` with a different tape panics on
/// the first out-of-bounds access (indices are never reused).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Var(usize);

impl Var {
    /// Raw node index (stable for the lifetime of the tape).
    pub fn index(self) -> usize {
        self.0
    }
}

/// Element-wise unary operations with closed-form derivatives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum UnaryKind {
    Neg,
    Abs,
    Square,
    Sqrt,
    Exp,
    Ln,
    Sigmoid,
    Tanh,
    Relu,
    Softplus,
    Recip,
}

impl UnaryKind {
    fn apply(self, x: f64) -> f64 {
        match self {
            UnaryKind::Neg => -x,
            UnaryKind::Abs => x.abs(),
            UnaryKind::Square => x * x,
            UnaryKind::Sqrt => x.sqrt(),
            UnaryKind::Exp => x.exp(),
            UnaryKind::Ln => x.ln(),
            UnaryKind::Sigmoid => 1.0 / (1.0 + (-x).exp()),
            UnaryKind::Tanh => x.tanh(),
            UnaryKind::Relu => x.max(0.0),
            UnaryKind::Softplus => {
                // Numerically stable log(1 + e^x).
                if x > 30.0 {
                    x
                } else {
                    x.exp().ln_1p()
                }
            }
            UnaryKind::Recip => 1.0 / x,
        }
    }

    /// Derivative given the input `x` and the already-computed output `y`.
    fn derivative(self, x: f64, y: f64) -> f64 {
        match self {
            UnaryKind::Neg => -1.0,
            UnaryKind::Abs => {
                if x > 0.0 {
                    1.0
                } else if x < 0.0 {
                    -1.0
                } else {
                    0.0
                }
            }
            UnaryKind::Square => 2.0 * x,
            UnaryKind::Sqrt => 0.5 / y,
            UnaryKind::Exp => y,
            UnaryKind::Ln => 1.0 / x,
            UnaryKind::Sigmoid => y * (1.0 - y),
            UnaryKind::Tanh => 1.0 - y * y,
            UnaryKind::Relu => {
                if x > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            UnaryKind::Softplus => 1.0 / (1.0 + (-x).exp()),
            UnaryKind::Recip => -y * y,
        }
    }
}

/// Tape operations. Parents are stored as raw indices.
#[derive(Debug, Clone)]
enum Op {
    /// Leaf node: a trainable parameter (receives gradient).
    Parameter,
    /// Leaf node: constant data (no gradient is accumulated).
    Constant,
    Add(usize, usize),
    Sub(usize, usize),
    Mul(usize, usize),
    Div(usize, usize),
    AddScalar(usize),
    MulScalar(usize, f64),
    Unary(usize, UnaryKind),
    ClampMin(usize, f64),
    ClampMax(usize, f64),
    MatMul(usize, usize),
    /// Broadcast-add a `1 × n` row to each row of a `m × n` matrix.
    AddRow(usize, usize),
    /// Broadcast-multiply each row of a `m × n` matrix by a `1 × n` row.
    MulRow(usize, usize),
    /// Broadcast-divide each row of a `m × n` matrix by a `1 × n` row.
    DivRow(usize, usize),
    /// Element-wise multiply by a constant matrix (e.g. a pruning mask).
    MulConst(usize, Matrix),
    /// Broadcast-multiply by a 1 × 1 scalar node.
    ScaleByScalar(usize, usize),
    /// Broadcast-add a 1 × 1 scalar node.
    ShiftByScalar(usize, usize),
    SumAll(usize),
    MeanAll(usize),
    /// Collapse rows: `m × n` → `1 × n`.
    SumRows(usize),
    /// Collapse columns: `m × n` → `m × 1`.
    SumCols(usize),
    /// Column-wise maximum `m × n` → `1 × n`; stores row arg-max per column.
    ColMax(usize, Vec<usize>),
    /// Row-wise maximum `m × n` → `m × 1`; stores column arg-max per row.
    RowMax(usize, Vec<usize>),
    /// Append a ones column and a zeros column: `m × n` → `m × (n+2)`.
    AppendBiasCols(usize),
    /// Horizontal concatenation; second field is the column count of lhs.
    HStack(usize, usize, usize),
    /// Fused softmax + cross-entropy against integer labels.
    /// Stores softmax probabilities for the backward pass.
    SoftmaxCrossEntropy(usize, Vec<usize>, Matrix),
}

#[derive(Debug, Clone)]
struct Node {
    value: Matrix,
    op: Op,
}

/// Gradients produced by [`Tape::backward`].
///
/// Indexed by [`Var`]; nodes that are unreachable from the loss or are
/// [`Tape::constant`] leaves report `None`.
#[derive(Debug)]
pub struct Gradients {
    grads: Vec<Option<Matrix>>,
}

impl Gradients {
    /// Gradient of the backward root with respect to `var`, if any.
    pub fn get(&self, var: Var) -> Option<&Matrix> {
        self.grads.get(var.0).and_then(|g| g.as_ref())
    }

    /// Like [`Gradients::get`] but panics with a clear message when the
    /// gradient is absent. Intended for optimizer loops where parameters
    /// are guaranteed to participate in the loss.
    pub fn expect(&self, var: Var) -> &Matrix {
        self.get(var)
            // lint: allow(L001, reason = "documented panic API: a missing gradient in an optimizer loop is a programming error")
            .unwrap_or_else(|| panic!("no gradient for var {}", var.0))
    }
}

/// A reverse-mode autodiff tape.
///
/// All operations validate shapes eagerly and panic with descriptive
/// messages on mismatch: shape errors on a tape are programming errors,
/// not runtime conditions.
#[derive(Debug, Default)]
pub struct Tape {
    nodes: Vec<Node>,
}

impl Tape {
    /// Creates an empty tape.
    pub fn new() -> Self {
        Tape { nodes: Vec::new() }
    }

    /// Number of nodes recorded so far.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the tape is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Discards all recorded nodes (for reuse across training steps).
    pub fn clear(&mut self) {
        self.nodes.clear();
    }

    /// Value of a node.
    pub fn value(&self, var: Var) -> &Matrix {
        &self.nodes[var.0].value
    }

    /// Shape of a node's value.
    pub fn shape(&self, var: Var) -> (usize, usize) {
        self.nodes[var.0].value.shape()
    }

    /// Scalar value of a `1 × 1` node.
    ///
    /// # Panics
    ///
    /// Panics when the node is not `1 × 1`.
    pub fn scalar(&self, var: Var) -> f64 {
        let v = self.value(var);
        assert_eq!(v.shape(), (1, 1), "scalar: node has shape {:?}", v.shape());
        v[(0, 0)]
    }

    fn push(&mut self, value: Matrix, op: Op) -> Var {
        self.nodes.push(Node { value, op });
        Var(self.nodes.len() - 1)
    }

    // ------------------------------------------------------------------
    // Leaves
    // ------------------------------------------------------------------

    /// Registers a trainable parameter leaf (participates in gradients).
    pub fn parameter(&mut self, value: Matrix) -> Var {
        self.push(value, Op::Parameter)
    }

    /// Registers a constant leaf (no gradient accumulated).
    pub fn constant(&mut self, value: Matrix) -> Var {
        self.push(value, Op::Constant)
    }

    /// Registers a `1 × 1` constant scalar.
    pub fn scalar_constant(&mut self, value: f64) -> Var {
        self.constant(Matrix::filled(1, 1, value))
    }

    // ------------------------------------------------------------------
    // Binary element-wise
    // ------------------------------------------------------------------

    fn assert_same_shape(&self, op: &str, a: Var, b: Var) {
        assert_eq!(
            self.shape(a),
            self.shape(b),
            "{op}: shape mismatch {:?} vs {:?}",
            self.shape(a),
            self.shape(b)
        );
    }

    /// Element-wise sum.
    pub fn add(&mut self, a: Var, b: Var) -> Var {
        self.assert_same_shape("add", a, b);
        let v = self.value(a) + self.value(b);
        self.push(v, Op::Add(a.0, b.0))
    }

    /// Element-wise difference.
    pub fn sub(&mut self, a: Var, b: Var) -> Var {
        self.assert_same_shape("sub", a, b);
        let v = self.value(a) - self.value(b);
        self.push(v, Op::Sub(a.0, b.0))
    }

    /// Element-wise (Hadamard) product.
    pub fn mul(&mut self, a: Var, b: Var) -> Var {
        self.assert_same_shape("mul", a, b);
        let v = self.value(a).hadamard(self.value(b));
        self.push(v, Op::Mul(a.0, b.0))
    }

    /// Element-wise quotient.
    pub fn div(&mut self, a: Var, b: Var) -> Var {
        self.assert_same_shape("div", a, b);
        let v = self.value(a).elem_div(self.value(b));
        self.push(v, Op::Div(a.0, b.0))
    }

    // ------------------------------------------------------------------
    // Scalar-broadcast arithmetic
    // ------------------------------------------------------------------

    /// Adds a Rust scalar to every element.
    pub fn add_scalar(&mut self, a: Var, s: f64) -> Var {
        let v = self.value(a).shift(s);
        self.push(v, Op::AddScalar(a.0))
    }

    /// Multiplies every element by a Rust scalar.
    pub fn mul_scalar(&mut self, a: Var, s: f64) -> Var {
        let v = self.value(a).scale(s);
        self.push(v, Op::MulScalar(a.0, s))
    }

    // ------------------------------------------------------------------
    // Unary element-wise
    // ------------------------------------------------------------------

    fn unary(&mut self, a: Var, kind: UnaryKind) -> Var {
        let v = self.value(a).map(|x| kind.apply(x));
        self.push(v, Op::Unary(a.0, kind))
    }

    /// `-x`.
    pub fn neg(&mut self, a: Var) -> Var {
        self.unary(a, UnaryKind::Neg)
    }

    /// `|x|` (sub-gradient 0 at the kink).
    pub fn abs(&mut self, a: Var) -> Var {
        self.unary(a, UnaryKind::Abs)
    }

    /// `x²`.
    pub fn square(&mut self, a: Var) -> Var {
        self.unary(a, UnaryKind::Square)
    }

    /// `√x`.
    pub fn sqrt(&mut self, a: Var) -> Var {
        self.unary(a, UnaryKind::Sqrt)
    }

    /// `eˣ`.
    pub fn exp(&mut self, a: Var) -> Var {
        self.unary(a, UnaryKind::Exp)
    }

    /// `ln x`.
    pub fn ln(&mut self, a: Var) -> Var {
        self.unary(a, UnaryKind::Ln)
    }

    /// Logistic sigmoid `1 / (1 + e⁻ˣ)`.
    pub fn sigmoid(&mut self, a: Var) -> Var {
        self.unary(a, UnaryKind::Sigmoid)
    }

    /// Hyperbolic tangent.
    pub fn tanh(&mut self, a: Var) -> Var {
        self.unary(a, UnaryKind::Tanh)
    }

    /// Rectifier `max(x, 0)` (sub-gradient 0 at the kink).
    pub fn relu(&mut self, a: Var) -> Var {
        self.unary(a, UnaryKind::Relu)
    }

    /// Softplus `ln(1 + eˣ)` (numerically stable).
    pub fn softplus(&mut self, a: Var) -> Var {
        self.unary(a, UnaryKind::Softplus)
    }

    /// Reciprocal `1 / x`.
    pub fn recip(&mut self, a: Var) -> Var {
        self.unary(a, UnaryKind::Recip)
    }

    /// `max(x, lo)` element-wise against a Rust scalar.
    pub fn clamp_min(&mut self, a: Var, lo: f64) -> Var {
        let v = self.value(a).map(|x| x.max(lo));
        self.push(v, Op::ClampMin(a.0, lo))
    }

    /// `min(x, hi)` element-wise against a Rust scalar.
    pub fn clamp_max(&mut self, a: Var, hi: f64) -> Var {
        let v = self.value(a).map(|x| x.min(hi));
        self.push(v, Op::ClampMax(a.0, hi))
    }

    // ------------------------------------------------------------------
    // Linear algebra & broadcasting
    // ------------------------------------------------------------------

    /// Matrix product.
    pub fn matmul(&mut self, a: Var, b: Var) -> Var {
        let v = self
            .value(a)
            .try_matmul(self.value(b))
            // lint: allow(L001, reason = "shape errors on a tape are documented programming errors (see type docs)")
            .expect("matmul: inner dimension mismatch");
        self.push(v, Op::MatMul(a.0, b.0))
    }

    /// Adds a `1 × n` row `b` to every row of `a`.
    pub fn add_row(&mut self, a: Var, b: Var) -> Var {
        let v = self
            .value(a)
            .add_row_broadcast(self.value(b))
            // lint: allow(L001, reason = "shape errors on a tape are documented programming errors (see type docs)")
            .expect("add_row: shape mismatch");
        self.push(v, Op::AddRow(a.0, b.0))
    }

    /// Multiplies every row of `a` element-wise by a `1 × n` row `b`.
    pub fn mul_row(&mut self, a: Var, b: Var) -> Var {
        let v = self
            .value(a)
            .mul_row_broadcast(self.value(b))
            // lint: allow(L001, reason = "shape errors on a tape are documented programming errors (see type docs)")
            .expect("mul_row: shape mismatch");
        self.push(v, Op::MulRow(a.0, b.0))
    }

    /// Divides every row of `a` element-wise by a `1 × n` row `b`.
    pub fn div_row(&mut self, a: Var, b: Var) -> Var {
        let bv = self.value(b);
        assert_eq!(bv.rows(), 1, "div_row: divisor must be 1 × n");
        let v = self
            .value(a)
            .zip_row_div(bv)
            // lint: allow(L001, reason = "shape errors on a tape are documented programming errors (see type docs)")
            .expect("div_row: shape mismatch");
        self.push(v, Op::DivRow(a.0, b.0))
    }

    /// Broadcast-multiplies every element of `a` by a `1 × 1` scalar
    /// node `s` (used to scale a whole matrix by a learnable scalar,
    /// e.g. activation-transfer coefficients).
    pub fn scale_by(&mut self, a: Var, s: Var) -> Var {
        assert_eq!(self.shape(s), (1, 1), "scale_by: s must be 1 × 1");
        let sv = self.value(s)[(0, 0)];
        let v = self.value(a).scale(sv);
        self.push(v, Op::ScaleByScalar(a.0, s.0))
    }

    /// Broadcast-adds a `1 × 1` scalar node `s` to every element of `a`.
    pub fn shift_by(&mut self, a: Var, s: Var) -> Var {
        assert_eq!(self.shape(s), (1, 1), "shift_by: s must be 1 × 1");
        let sv = self.value(s)[(0, 0)];
        let v = self.value(a).shift(sv);
        self.push(v, Op::ShiftByScalar(a.0, s.0))
    }

    /// Element-wise product with a constant matrix (masking).
    pub fn mul_const(&mut self, a: Var, mask: &Matrix) -> Var {
        assert_eq!(
            self.shape(a),
            mask.shape(),
            "mul_const: shape mismatch {:?} vs {:?}",
            self.shape(a),
            mask.shape()
        );
        let v = self.value(a).hadamard(mask);
        self.push(v, Op::MulConst(a.0, mask.clone()))
    }

    // ------------------------------------------------------------------
    // Reductions
    // ------------------------------------------------------------------

    /// Sum of all elements → `1 × 1`.
    pub fn sum_all(&mut self, a: Var) -> Var {
        let v = Matrix::filled(1, 1, self.value(a).sum());
        self.push(v, Op::SumAll(a.0))
    }

    /// Mean of all elements → `1 × 1`.
    pub fn mean_all(&mut self, a: Var) -> Var {
        let v = Matrix::filled(1, 1, self.value(a).mean());
        self.push(v, Op::MeanAll(a.0))
    }

    /// Column sums: `m × n` → `1 × n`.
    pub fn sum_rows(&mut self, a: Var) -> Var {
        let v = self.value(a).sum_rows();
        self.push(v, Op::SumRows(a.0))
    }

    /// Row sums: `m × n` → `m × 1`.
    pub fn sum_cols(&mut self, a: Var) -> Var {
        let v = self.value(a).sum_cols();
        self.push(v, Op::SumCols(a.0))
    }

    /// Column-wise maximum: `m × n` → `1 × n`. The gradient flows to the
    /// first (smallest row index) arg-max of each column.
    pub fn col_max(&mut self, a: Var) -> Var {
        let av = self.value(a);
        let (m, n) = av.shape();
        assert!(m > 0, "col_max: empty matrix");
        let mut arg = vec![0usize; n];
        let mut v = Matrix::zeros(1, n);
        for j in 0..n {
            let mut best = av[(0, j)];
            let mut bi = 0usize;
            for i in 1..m {
                if av[(i, j)] > best {
                    best = av[(i, j)];
                    bi = i;
                }
            }
            arg[j] = bi;
            v[(0, j)] = best;
        }
        self.push(v, Op::ColMax(a.0, arg))
    }

    /// Row-wise maximum: `m × n` → `m × 1`. The gradient flows to the
    /// first (smallest column index) arg-max of each row.
    pub fn row_max(&mut self, a: Var) -> Var {
        let av = self.value(a);
        let (m, n) = av.shape();
        assert!(n > 0, "row_max: empty matrix");
        let mut arg = vec![0usize; m];
        let mut v = Matrix::zeros(m, 1);
        for i in 0..m {
            let row = av.row_slice(i);
            let mut best = row[0];
            let mut bj = 0usize;
            for (j, &x) in row.iter().enumerate().skip(1) {
                if x > best {
                    best = x;
                    bj = j;
                }
            }
            arg[i] = bj;
            v[(i, 0)] = best;
        }
        self.push(v, Op::RowMax(a.0, arg))
    }

    // ------------------------------------------------------------------
    // Structure
    // ------------------------------------------------------------------

    /// Appends a ones column and a zeros column (crossbar input
    /// augmentation for the bias conductance `g_b` and the grounded
    /// conductance `g_d`): `m × n` → `m × (n + 2)`.
    pub fn append_bias_cols(&mut self, a: Var) -> Var {
        let av = self.value(a);
        let (m, n) = av.shape();
        let mut v = Matrix::zeros(m, n + 2);
        for i in 0..m {
            v.row_slice_mut(i)[..n].copy_from_slice(av.row_slice(i));
            v[(i, n)] = 1.0;
            // column n+1 stays 0.0 (conductance to ground)
        }
        self.push(v, Op::AppendBiasCols(a.0))
    }

    /// Horizontal concatenation of two nodes with equal row counts.
    pub fn hstack(&mut self, a: Var, b: Var) -> Var {
        let v = self
            .value(a)
            .hstack(self.value(b))
            // lint: allow(L001, reason = "shape errors on a tape are documented programming errors (see type docs)")
            .expect("hstack: row count mismatch");
        let ac = self.shape(a).1;
        self.push(v, Op::HStack(a.0, b.0, ac))
    }

    // ------------------------------------------------------------------
    // Loss
    // ------------------------------------------------------------------

    /// Fused softmax + mean cross-entropy against integer class labels.
    ///
    /// `logits` is `batch × classes`; `labels[i] ∈ 0..classes`. Returns
    /// a `1 × 1` scalar: `−(1/B) Σᵢ ln softmax(logitsᵢ)[labelᵢ]`.
    ///
    /// # Panics
    ///
    /// Panics when `labels.len()` differs from the batch size or a label
    /// is out of range.
    pub fn softmax_cross_entropy(&mut self, logits: Var, labels: &[usize]) -> Var {
        let lv = self.value(logits);
        let (b, c) = lv.shape();
        assert_eq!(labels.len(), b, "softmax_ce: label count mismatch");
        let mut probs = Matrix::zeros(b, c);
        let mut loss = 0.0;
        for i in 0..b {
            let row = lv.row_slice(i);
            let m = row.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            let mut z = 0.0;
            for &x in row {
                z += (x - m).exp();
            }
            let label = labels[i];
            assert!(label < c, "softmax_ce: label {label} out of range 0..{c}");
            for j in 0..c {
                probs[(i, j)] = (row[j] - m).exp() / z;
            }
            loss -= (probs[(i, label)]).max(1e-300).ln();
        }
        loss /= b as f64;
        let v = Matrix::filled(1, 1, loss);
        self.push(v, Op::SoftmaxCrossEntropy(logits.0, labels.to_vec(), probs))
    }

    // ------------------------------------------------------------------
    // Backward
    // ------------------------------------------------------------------

    /// [`Tape::backward`] under a `tape_backward` profiling scope
    /// carrying the tape length (graph size) as a span attribute. With
    /// a disabled profiler this is exactly [`Tape::backward`].
    ///
    /// # Panics
    ///
    /// Panics when `root` is not `1 × 1`.
    pub fn backward_profiled(&self, root: Var, prof: &pnc_telemetry::Profiler) -> Gradients {
        let mut scope = prof.scope("tape_backward");
        scope.set_u64("nodes", self.len() as u64);
        self.backward(root)
    }

    /// Runs backpropagation from a scalar root, returning gradients for
    /// every reachable node.
    ///
    /// # Panics
    ///
    /// Panics when `root` is not `1 × 1`.
    pub fn backward(&self, root: Var) -> Gradients {
        assert_eq!(
            self.shape(root),
            (1, 1),
            "backward: root must be a scalar, got {:?}",
            self.shape(root)
        );
        let mut grads: Vec<Option<Matrix>> = vec![None; self.nodes.len()];
        grads[root.0] = Some(Matrix::ones(1, 1));

        for idx in (0..=root.0).rev() {
            let Some(g) = grads[idx].take() else {
                continue;
            };
            // Re-store: callers may query any node's gradient afterwards.
            let g_for_children = g.clone();
            grads[idx] = Some(g);
            let g = g_for_children;

            match &self.nodes[idx].op {
                Op::Parameter | Op::Constant => {}
                Op::Add(a, b) => {
                    accumulate(&mut grads, *a, g.clone());
                    accumulate(&mut grads, *b, g);
                }
                Op::Sub(a, b) => {
                    accumulate(&mut grads, *a, g.clone());
                    accumulate(&mut grads, *b, -&g);
                }
                Op::Mul(a, b) => {
                    let ga = g.hadamard(&self.nodes[*b].value);
                    let gb = g.hadamard(&self.nodes[*a].value);
                    accumulate(&mut grads, *a, ga);
                    accumulate(&mut grads, *b, gb);
                }
                Op::Div(a, b) => {
                    let bv = &self.nodes[*b].value;
                    let ga = g.elem_div(bv);
                    let av = &self.nodes[*a].value;
                    let gb = g
                        .hadamard(av)
                        .zip_map(bv, |num, den| -num / (den * den))
                        // lint: allow(L001, reason = "backward shapes mirror the forward pass, which validated them")
                        .expect("div backward shape");
                    accumulate(&mut grads, *a, ga);
                    accumulate(&mut grads, *b, gb);
                }
                Op::AddScalar(a) => accumulate(&mut grads, *a, g),
                Op::MulScalar(a, s) => accumulate(&mut grads, *a, g.scale(*s)),
                Op::Unary(a, kind) => {
                    let x = &self.nodes[*a].value;
                    let y = &self.nodes[idx].value;
                    let mut ga = g;
                    for (i, gi) in ga.as_mut_slice().iter_mut().enumerate() {
                        let xi = x.as_slice()[i];
                        let yi = y.as_slice()[i];
                        *gi *= kind.derivative(xi, yi);
                    }
                    accumulate(&mut grads, *a, ga);
                }
                Op::ClampMin(a, lo) => {
                    let x = &self.nodes[*a].value;
                    let mut ga = g;
                    for (i, gi) in ga.as_mut_slice().iter_mut().enumerate() {
                        if x.as_slice()[i] <= *lo {
                            *gi = 0.0;
                        }
                    }
                    accumulate(&mut grads, *a, ga);
                }
                Op::ClampMax(a, hi) => {
                    let x = &self.nodes[*a].value;
                    let mut ga = g;
                    for (i, gi) in ga.as_mut_slice().iter_mut().enumerate() {
                        if x.as_slice()[i] >= *hi {
                            *gi = 0.0;
                        }
                    }
                    accumulate(&mut grads, *a, ga);
                }
                Op::MatMul(a, b) => {
                    // y = a·b  ⇒  ∂a = g·bᵀ, ∂b = aᵀ·g
                    let bv = &self.nodes[*b].value;
                    let av = &self.nodes[*a].value;
                    // lint: allow(L001, reason = "backward shapes mirror the forward pass, which validated them")
                    let ga = g.matmul_t(bv).expect("matmul backward lhs");
                    // lint: allow(L001, reason = "backward shapes mirror the forward pass, which validated them")
                    let gb = av.t_matmul(&g).expect("matmul backward rhs");
                    accumulate(&mut grads, *a, ga);
                    accumulate(&mut grads, *b, gb);
                }
                Op::AddRow(a, b) => {
                    accumulate(&mut grads, *a, g.clone());
                    accumulate(&mut grads, *b, g.sum_rows());
                }
                Op::MulRow(a, b) => {
                    let bv = &self.nodes[*b].value;
                    let av = &self.nodes[*a].value;
                    // lint: allow(L001, reason = "backward shapes mirror the forward pass, which validated them")
                    let ga = g.mul_row_broadcast(bv).expect("mul_row backward");
                    let gb = g.hadamard(av).sum_rows();
                    accumulate(&mut grads, *a, ga);
                    accumulate(&mut grads, *b, gb);
                }
                Op::DivRow(a, b) => {
                    let bv = &self.nodes[*b].value;
                    let av = &self.nodes[*a].value;
                    // y = a / row(b): ∂a = g / row(b); ∂b_j = -Σ_i g_ij a_ij / b_j²
                    // lint: allow(L001, reason = "backward shapes mirror the forward pass, which validated them")
                    let ga = g.zip_row_div(bv).expect("div_row backward lhs");
                    let mut gb = g.hadamard(av).sum_rows();
                    for (j, v) in gb.as_mut_slice().iter_mut().enumerate() {
                        let d = bv[(0, j)];
                        *v = -*v / (d * d);
                    }
                    accumulate(&mut grads, *a, ga);
                    accumulate(&mut grads, *b, gb);
                }
                Op::MulConst(a, mask) => {
                    accumulate(&mut grads, *a, g.hadamard(mask));
                }
                Op::ScaleByScalar(a, s) => {
                    let sv = self.nodes[*s].value[(0, 0)];
                    let av = &self.nodes[*a].value;
                    let gs = g.hadamard(av).sum();
                    accumulate(&mut grads, *a, g.scale(sv));
                    accumulate(&mut grads, *s, Matrix::filled(1, 1, gs));
                }
                Op::ShiftByScalar(a, s) => {
                    let gs = g.sum();
                    accumulate(&mut grads, *a, g);
                    accumulate(&mut grads, *s, Matrix::filled(1, 1, gs));
                }
                Op::SumAll(a) => {
                    let (m, n) = self.nodes[*a].value.shape();
                    accumulate(&mut grads, *a, Matrix::filled(m, n, g[(0, 0)]));
                }
                Op::MeanAll(a) => {
                    let (m, n) = self.nodes[*a].value.shape();
                    let scale = g[(0, 0)] / (m * n) as f64;
                    accumulate(&mut grads, *a, Matrix::filled(m, n, scale));
                }
                Op::SumRows(a) => {
                    let (m, n) = self.nodes[*a].value.shape();
                    let ga = Matrix::from_fn(m, n, |_, j| g[(0, j)]);
                    accumulate(&mut grads, *a, ga);
                }
                Op::SumCols(a) => {
                    let (m, n) = self.nodes[*a].value.shape();
                    let ga = Matrix::from_fn(m, n, |i, _| g[(i, 0)]);
                    accumulate(&mut grads, *a, ga);
                }
                Op::ColMax(a, arg) => {
                    let (m, n) = self.nodes[*a].value.shape();
                    let mut ga = Matrix::zeros(m, n);
                    for j in 0..n {
                        ga[(arg[j], j)] = g[(0, j)];
                    }
                    accumulate(&mut grads, *a, ga);
                }
                Op::RowMax(a, arg) => {
                    let (m, n) = self.nodes[*a].value.shape();
                    let mut ga = Matrix::zeros(m, n);
                    for i in 0..m {
                        ga[(i, arg[i])] = g[(i, 0)];
                    }
                    accumulate(&mut grads, *a, ga);
                }
                Op::AppendBiasCols(a) => {
                    let (m, n2) = self.nodes[idx].value.shape();
                    let n = n2 - 2;
                    let ga = Matrix::from_fn(m, n, |i, j| g[(i, j)]);
                    accumulate(&mut grads, *a, ga);
                }
                Op::HStack(a, b, ac) => {
                    let (m, _) = self.nodes[idx].value.shape();
                    let bc = self.nodes[*b].value.cols();
                    let ga = Matrix::from_fn(m, *ac, |i, j| g[(i, j)]);
                    let gb = Matrix::from_fn(m, bc, |i, j| g[(i, ac + j)]);
                    accumulate(&mut grads, *a, ga);
                    accumulate(&mut grads, *b, gb);
                }
                Op::SoftmaxCrossEntropy(a, labels, probs) => {
                    let (b, c) = probs.shape();
                    let scale = g[(0, 0)] / b as f64;
                    let mut ga = probs.clone();
                    for i in 0..b {
                        ga[(i, labels[i])] -= 1.0;
                    }
                    for v in ga.as_mut_slice() {
                        *v *= scale;
                    }
                    let _ = c;
                    accumulate(&mut grads, *a, ga);
                }
            }
        }

        // Constants never expose gradients.
        for (i, node) in self.nodes.iter().enumerate() {
            if matches!(node.op, Op::Constant) {
                grads[i] = None;
            }
        }
        Gradients { grads }
    }
}

fn accumulate(grads: &mut [Option<Matrix>], idx: usize, g: Matrix) {
    match &mut grads[idx] {
        Some(existing) => *existing += &g,
        slot @ None => *slot = Some(g),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scalar_tape(x: f64) -> (Tape, Var) {
        let mut t = Tape::new();
        let v = t.parameter(Matrix::filled(1, 1, x));
        (t, v)
    }

    #[test]
    fn add_and_mul_gradients() {
        let mut t = Tape::new();
        let a = t.parameter(Matrix::filled(1, 1, 3.0));
        let b = t.parameter(Matrix::filled(1, 1, 4.0));
        let s = t.add(a, b);
        let p = t.mul(s, b); // (a+b)*b = 28
        assert_eq!(t.scalar(p), 28.0);
        let g = t.backward(p);
        assert_eq!(g.expect(a)[(0, 0)], 4.0); // d/da = b
        assert_eq!(g.expect(b)[(0, 0)], 11.0); // d/db = (a+b) + b
    }

    #[test]
    fn sub_div_gradients() {
        let mut t = Tape::new();
        let a = t.parameter(Matrix::filled(1, 1, 6.0));
        let b = t.parameter(Matrix::filled(1, 1, 2.0));
        let d = t.div(a, b);
        let e = t.sub(d, b); // a/b - b = 1
        assert_eq!(t.scalar(e), 1.0);
        let g = t.backward(e);
        assert!((g.expect(a)[(0, 0)] - 0.5).abs() < 1e-12);
        assert!((g.expect(b)[(0, 0)] - (-6.0 / 4.0 - 1.0)).abs() < 1e-12);
    }

    #[test]
    fn unary_derivatives_match_analytic() {
        let (mut t, x) = scalar_tape(0.7);
        let y = t.tanh(x);
        let g = t.backward(y);
        let expect = 1.0 - 0.7f64.tanh().powi(2);
        assert!((g.expect(x)[(0, 0)] - expect).abs() < 1e-12);

        let (mut t, x) = scalar_tape(0.7);
        let y = t.sigmoid(x);
        let g = t.backward(y);
        let s = 1.0 / (1.0 + (-0.7f64).exp());
        assert!((g.expect(x)[(0, 0)] - s * (1.0 - s)).abs() < 1e-12);

        let (mut t, x) = scalar_tape(2.0);
        let y = t.recip(x);
        let g = t.backward(y);
        assert!((g.expect(x)[(0, 0)] + 0.25).abs() < 1e-12);
    }

    #[test]
    fn abs_subgradient_at_zero_is_zero() {
        let (mut t, x) = scalar_tape(0.0);
        let y = t.abs(x);
        let g = t.backward(y);
        assert_eq!(g.expect(x)[(0, 0)], 0.0);
    }

    #[test]
    fn relu_gates_gradient() {
        let (mut t, x) = scalar_tape(-1.0);
        let y = t.relu(x);
        let g = t.backward(y);
        assert_eq!(g.expect(x)[(0, 0)], 0.0);

        let (mut t, x) = scalar_tape(1.5);
        let y = t.relu(x);
        let g = t.backward(y);
        assert_eq!(g.expect(x)[(0, 0)], 1.0);
    }

    #[test]
    fn clamp_min_max_gradients() {
        let mut t = Tape::new();
        let x = t.parameter(Matrix::row(&[-1.0, 0.5, 2.0]));
        let lo = t.clamp_min(x, 0.0);
        let hi = t.clamp_max(lo, 1.0);
        let s = t.sum_all(hi);
        let g = t.backward(s);
        assert_eq!(g.expect(x).as_slice(), &[0.0, 1.0, 0.0]);
    }

    #[test]
    fn matmul_gradients() {
        let mut t = Tape::new();
        let a = t.parameter(Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]));
        let b = t.parameter(Matrix::from_rows(&[&[5.0], &[6.0]]));
        let y = t.matmul(a, b); // 2×1
        let s = t.sum_all(y);
        let g = t.backward(s);
        // ∂s/∂a = 1·bᵀ broadcast over rows
        assert!(g
            .expect(a)
            .approx_eq(&Matrix::from_rows(&[&[5.0, 6.0], &[5.0, 6.0]]), 1e-12));
        // ∂s/∂b = aᵀ·1
        assert!(g
            .expect(b)
            .approx_eq(&Matrix::from_rows(&[&[4.0], &[6.0]]), 1e-12));
    }

    #[test]
    fn broadcast_row_ops_gradients() {
        let mut t = Tape::new();
        let a = t.parameter(Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]));
        let r = t.parameter(Matrix::row(&[10.0, 20.0]));
        let y = t.add_row(a, r);
        let s = t.sum_all(y);
        let g = t.backward(s);
        assert!(g.expect(r).approx_eq(&Matrix::row(&[2.0, 2.0]), 1e-12));

        let mut t = Tape::new();
        let a = t.parameter(Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]));
        let r = t.parameter(Matrix::row(&[2.0, 4.0]));
        let y = t.div_row(a, r);
        let s = t.sum_all(y);
        let g = t.backward(s);
        // ∂s/∂r_j = -Σ_i a_ij / r_j²
        assert!(g
            .expect(r)
            .approx_eq(&Matrix::row(&[-4.0 / 4.0, -6.0 / 16.0]), 1e-12));
        assert!(g
            .expect(a)
            .approx_eq(&Matrix::from_rows(&[&[0.5, 0.25], &[0.5, 0.25]]), 1e-12));
    }

    #[test]
    fn reductions_gradients() {
        let mut t = Tape::new();
        let a = t.parameter(Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]));
        let m = t.mean_all(a);
        let g = t.backward(m);
        assert!(g.expect(a).approx_eq(&Matrix::filled(2, 2, 0.25), 1e-12));

        let mut t = Tape::new();
        let a = t.parameter(Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]));
        let sr = t.sum_rows(a); // 1×2
        let sq = t.square(sr);
        let s = t.sum_all(sq); // (1+3)² + (2+4)² = 52
        assert_eq!(t.scalar(s), 52.0);
        let g = t.backward(s);
        assert!(g
            .expect(a)
            .approx_eq(&Matrix::from_rows(&[&[8.0, 12.0], &[8.0, 12.0]]), 1e-12));
    }

    #[test]
    fn col_max_routes_gradient_to_argmax() {
        let mut t = Tape::new();
        let a = t.parameter(Matrix::from_rows(&[&[1.0, 5.0], &[3.0, 2.0]]));
        let m = t.col_max(a); // [3, 5]
        assert_eq!(t.value(m).as_slice(), &[3.0, 5.0]);
        let s = t.sum_all(m);
        let g = t.backward(s);
        assert!(g
            .expect(a)
            .approx_eq(&Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]), 1e-12));
    }

    #[test]
    fn row_max_routes_gradient_to_argmax() {
        let mut t = Tape::new();
        let a = t.parameter(Matrix::from_rows(&[&[1.0, 5.0], &[3.0, 2.0]]));
        let m = t.row_max(a); // [5, 3]ᵀ
        assert_eq!(t.value(m).as_slice(), &[5.0, 3.0]);
        let s = t.sum_all(m);
        let g = t.backward(s);
        assert!(g
            .expect(a)
            .approx_eq(&Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]), 1e-12));
    }

    #[test]
    fn scale_and_shift_by_scalar_var() {
        let mut t = Tape::new();
        let a = t.parameter(Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]));
        let s = t.parameter(Matrix::filled(1, 1, 2.0));
        let o = t.parameter(Matrix::filled(1, 1, -1.0));
        let scaled = t.scale_by(a, s);
        let shifted = t.shift_by(scaled, o);
        // 2a − 1 summed = 2·10 − 4 = 16
        let y = t.sum_all(shifted);
        assert_eq!(t.scalar(y), 16.0);
        let g = t.backward(y);
        assert!(g.expect(a).approx_eq(&Matrix::filled(2, 2, 2.0), 1e-12));
        assert_eq!(g.expect(s)[(0, 0)], 10.0); // Σ a
        assert_eq!(g.expect(o)[(0, 0)], 4.0); // count
    }

    #[test]
    fn append_bias_cols_shapes_and_grad() {
        let mut t = Tape::new();
        let a = t.parameter(Matrix::from_rows(&[&[0.3, 0.7]]));
        let aug = t.append_bias_cols(a);
        assert_eq!(t.value(aug).as_slice(), &[0.3, 0.7, 1.0, 0.0]);
        let sq = t.square(aug);
        let s = t.sum_all(sq);
        let g = t.backward(s);
        assert!(g.expect(a).approx_eq(&Matrix::row(&[0.6, 1.4]), 1e-12));
    }

    #[test]
    fn hstack_gradient_splits() {
        let mut t = Tape::new();
        let a = t.parameter(Matrix::from_rows(&[&[1.0], &[2.0]]));
        let b = t.parameter(Matrix::from_rows(&[&[3.0, 4.0], &[5.0, 6.0]]));
        let h = t.hstack(a, b); // 2×3
        let w = t.constant(Matrix::column(&[1.0, 10.0, 100.0]));
        let y = t.matmul(h, w);
        let s = t.sum_all(y);
        let g = t.backward(s);
        assert!(g.expect(a).approx_eq(&Matrix::column(&[1.0, 1.0]), 1e-12));
        assert!(g
            .expect(b)
            .approx_eq(&Matrix::from_rows(&[&[10.0, 100.0], &[10.0, 100.0]]), 1e-12));
    }

    #[test]
    fn softmax_ce_value_and_gradient() {
        let mut t = Tape::new();
        let logits = t.parameter(Matrix::from_rows(&[&[2.0, 0.0], &[0.0, 3.0]]));
        let loss = t.softmax_cross_entropy(logits, &[0, 1]);
        // loss = -½ [ln σ₀(2,0) + ln σ₁(0,3)]
        let p0 = (2.0f64).exp() / ((2.0f64).exp() + 1.0);
        let p1 = (3.0f64).exp() / ((3.0f64).exp() + 1.0);
        let expect = -(p0.ln() + p1.ln()) / 2.0;
        assert!((t.scalar(loss) - expect).abs() < 1e-12);
        let g = t.backward(loss);
        let gl = g.expect(logits);
        // row 0: (p - onehot)/B
        assert!((gl[(0, 0)] - (p0 - 1.0) / 2.0).abs() < 1e-12);
        assert!((gl[(0, 1)] - (1.0 - p0) / 2.0).abs() < 1e-12);
        assert!((gl[(1, 1)] - (p1 - 1.0) / 2.0).abs() < 1e-12);
    }

    #[test]
    fn constants_receive_no_gradient() {
        let mut t = Tape::new();
        let c = t.constant(Matrix::filled(1, 1, 2.0));
        let p = t.parameter(Matrix::filled(1, 1, 3.0));
        let y = t.mul(c, p);
        let g = t.backward(y);
        assert!(g.get(c).is_none());
        assert_eq!(g.expect(p)[(0, 0)], 2.0);
    }

    #[test]
    fn diamond_graph_accumulates() {
        // y = x² + x² through two separate square nodes.
        let (mut t, x) = scalar_tape(3.0);
        let a = t.square(x);
        let b = t.square(x);
        let y = t.add(a, b);
        let g = t.backward(y);
        assert_eq!(g.expect(x)[(0, 0)], 12.0); // 2·2x
    }

    #[test]
    fn deep_chain_exponent() {
        // y = ((x²)²)² = x⁸, dy/dx = 8x⁷
        let (mut t, x) = scalar_tape(1.1);
        let mut y = x;
        for _ in 0..3 {
            y = t.square(y);
        }
        let g = t.backward(y);
        let expect = 8.0 * 1.1f64.powi(7);
        assert!((g.expect(x)[(0, 0)] - expect).abs() < 1e-9);
    }

    #[test]
    fn unreachable_nodes_have_no_gradient() {
        let mut t = Tape::new();
        let a = t.parameter(Matrix::filled(1, 1, 1.0));
        let b = t.parameter(Matrix::filled(1, 1, 2.0));
        let _orphan = t.square(b);
        let y = t.square(a);
        let g = t.backward(y);
        assert!(g.get(b).is_none());
    }

    #[test]
    #[should_panic(expected = "backward: root must be a scalar")]
    fn backward_requires_scalar_root() {
        let mut t = Tape::new();
        let a = t.parameter(Matrix::zeros(2, 2));
        let b = t.square(a);
        let _ = t.backward(b);
    }

    #[test]
    fn sqrt_ln_exp_chain() {
        let (mut t, x) = scalar_tape(2.0);
        let a = t.sqrt(x); // √2
        let b = t.ln(a); // ½ ln 2
        let y = t.exp(b); // √2
        assert!((t.scalar(y) - 2.0f64.sqrt()).abs() < 1e-12);
        let g = t.backward(y);
        // d√x/dx = 1/(2√x)
        assert!((g.expect(x)[(0, 0)] - 0.5 / 2.0f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn hstack_same_node_doubles_gradient() {
        let mut t = Tape::new();
        let a = t.parameter(Matrix::from_rows(&[&[1.0, 2.0]]));
        let h = t.hstack(a, a); // 1×4
        let s = t.sum_all(h);
        assert_eq!(t.scalar(s), 6.0);
        let g = t.backward(s);
        assert!(g.expect(a).approx_eq(&Matrix::row(&[2.0, 2.0]), 1e-12));
    }

    #[test]
    fn softplus_matches_closed_form() {
        let (mut t, x) = scalar_tape(1.3);
        let y = t.softplus(x);
        assert!((t.scalar(y) - (1.0 + 1.3f64.exp()).ln()).abs() < 1e-12);
        let g = t.backward(y);
        let sig = 1.0 / (1.0 + (-1.3f64).exp());
        assert!((g.expect(x)[(0, 0)] - sig).abs() < 1e-12);
    }

    #[test]
    fn clear_resets_tape() {
        let mut t = Tape::new();
        let _ = t.parameter(Matrix::zeros(2, 2));
        assert_eq!(t.len(), 1);
        t.clear();
        assert!(t.is_empty());
    }

    #[test]
    fn mul_const_masks_gradient() {
        let mut t = Tape::new();
        let x = t.parameter(Matrix::row(&[1.0, 2.0, 3.0]));
        let mask = Matrix::row(&[1.0, 0.0, 1.0]);
        let y = t.mul_const(x, &mask);
        let s = t.sum_all(y);
        assert_eq!(t.scalar(s), 4.0);
        let g = t.backward(s);
        assert_eq!(g.expect(x).as_slice(), &[1.0, 0.0, 1.0]);
    }
}
