//! Finite-difference gradient verification.
//!
//! Every exotic op the pNC pipeline relies on (broadcast division for
//! crossbar normalization, column-max for device counting, the fused
//! softmax cross-entropy) is validated here against central differences.
//! The property-based tests in `tests/` build random compositions and
//! re-check; this module provides the shared machinery.

use crate::{Tape, Var};
use pnc_linalg::Matrix;

/// Result of a gradient check for one parameter.
#[derive(Debug, Clone)]
pub struct GradCheckReport {
    /// Maximum absolute difference between analytic and numeric entries.
    pub max_abs_err: f64,
    /// Maximum relative difference (guarded denominator).
    pub max_rel_err: f64,
}

impl GradCheckReport {
    /// Whether both error measures fall below `tol`.
    pub fn passes(&self, tol: f64) -> bool {
        self.max_abs_err <= tol || self.max_rel_err <= tol
    }
}

/// Checks the analytic gradient of `f` with respect to one parameter.
///
/// `f` receives a fresh tape plus the parameter `Var` and must return a
/// scalar output `Var`. The parameter value is `theta`; `eps` is the
/// central-difference step (use `1e-6`..`1e-5` for well-scaled values).
///
/// Functions containing kinks (`abs`, `relu`, `col_max`) should be
/// checked at points away from the kink; callers are responsible for
/// choosing such points.
pub fn check_gradient(
    theta: &Matrix,
    eps: f64,
    f: impl Fn(&mut Tape, Var) -> Var,
) -> GradCheckReport {
    // Analytic gradient.
    let mut tape = Tape::new();
    let p = tape.parameter(theta.clone());
    let out = f(&mut tape, p);
    let grads = tape.backward(out);
    let analytic = grads
        .get(p)
        .cloned()
        .unwrap_or_else(|| Matrix::zeros(theta.rows(), theta.cols()));

    // Numeric gradient by central differences.
    let mut max_abs_err: f64 = 0.0;
    let mut max_rel_err: f64 = 0.0;
    for k in 0..theta.len() {
        let mut plus = theta.clone();
        plus.as_mut_slice()[k] += eps;
        let mut minus = theta.clone();
        minus.as_mut_slice()[k] -= eps;

        let mut tp = Tape::new();
        let vp = tp.parameter(plus);
        let op = f(&mut tp, vp);
        let fp = tp.scalar(op);

        let mut tm = Tape::new();
        let vm = tm.parameter(minus);
        let om = f(&mut tm, vm);
        let fm = tm.scalar(om);

        let numeric = (fp - fm) / (2.0 * eps);
        let a = analytic.as_slice()[k];
        let abs_err = (a - numeric).abs();
        let rel_err = abs_err / a.abs().max(numeric.abs()).max(1e-8);
        max_abs_err = max_abs_err.max(abs_err);
        max_rel_err = max_rel_err.max(rel_err);
    }

    GradCheckReport {
        max_abs_err,
        max_rel_err,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pnc_linalg::rng;

    #[test]
    fn quadratic_form_passes() {
        let theta = Matrix::from_rows(&[&[0.5, -0.3], &[0.2, 0.9]]);
        let r = check_gradient(&theta, 1e-6, |t, p| {
            let sq = t.square(p);
            t.sum_all(sq)
        });
        assert!(r.passes(1e-6), "{r:?}");
    }

    #[test]
    fn crossbar_like_expression_passes() {
        // V_z = (X·relu(θ) + negX·relu(−θ)) / rowsum(|θ|) — the actual
        // normalized crossbar computation used by pnc-core.
        let mut rng = rng::seeded(9);
        let theta = rng::normal_matrix(&mut rng, 4, 3, 0.0, 1.0);
        let x = rng::uniform_matrix(&mut rng, 5, 4, 0.1, 0.9);
        let r = check_gradient(&theta, 1e-6, move |t, p| {
            let xc = t.constant(x.clone());
            let negx = t.mul_scalar(xc, -1.0);
            let gpos = t.relu(p);
            let np = t.neg(p);
            let gneg = t.relu(np);
            let num_pos = t.matmul(xc, gpos);
            let num_neg = t.matmul(negx, gneg);
            let num = t.add(num_pos, num_neg);
            let absd = t.abs(p);
            let den = t.sum_rows(absd);
            let den = t.add_scalar(den, 1e-6);
            let vz = t.div_row(num, den);
            let sq = t.square(vz);
            t.sum_all(sq)
        });
        assert!(r.passes(1e-5), "{r:?}");
    }

    #[test]
    fn softmax_ce_passes() {
        let mut rng = rng::seeded(4);
        let logits = rng::normal_matrix(&mut rng, 6, 3, 0.0, 2.0);
        let labels = vec![0, 1, 2, 0, 1, 2];
        let r = check_gradient(&logits, 1e-6, move |t, p| {
            t.softmax_cross_entropy(p, &labels)
        });
        assert!(r.passes(1e-6), "{r:?}");
    }

    #[test]
    fn col_max_away_from_ties_passes() {
        let theta = Matrix::from_rows(&[&[1.0, 5.0], &[3.0, 2.0], &[0.5, 4.0]]);
        let r = check_gradient(&theta, 1e-6, |t, p| {
            let m = t.col_max(p);
            let sq = t.square(m);
            t.sum_all(sq)
        });
        assert!(r.passes(1e-6), "{r:?}");
    }

    #[test]
    fn sigmoid_count_expression_passes() {
        // Soft device count: Σ col_max(σ(k(|θ| − τ)))
        let theta = Matrix::from_rows(&[&[0.4, -0.8], &[0.05, 0.3]]);
        let r = check_gradient(&theta, 1e-7, |t, p| {
            let a = t.abs(p);
            let shifted = t.add_scalar(a, -0.1);
            let scaled = t.mul_scalar(shifted, 10.0);
            let s = t.sigmoid(scaled);
            let m = t.col_max(s);
            t.sum_all(m)
        });
        assert!(r.passes(1e-5), "{r:?}");
    }

    #[test]
    fn augmented_lagrangian_term_passes() {
        // Ψ(c) = max(0, λ + μ c)² with c = sum(θ²) − budget.
        let theta = Matrix::from_rows(&[&[0.6, -0.2]]);
        let r = check_gradient(&theta, 1e-6, |t, p| {
            let sq = t.square(p);
            let c = t.sum_all(sq);
            let c = t.add_scalar(c, -0.1);
            let inner = t.mul_scalar(c, 2.0);
            let inner = t.add_scalar(inner, 0.5);
            let act = t.clamp_min(inner, 0.0);
            t.square(act)
        });
        assert!(r.passes(1e-6), "{r:?}");
    }
}
