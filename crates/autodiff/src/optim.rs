//! First-order optimizers operating on raw parameter matrices.
//!
//! Because the [`Tape`](crate::Tape) is rebuilt every iteration (define-
//! by-run, as in PyTorch), optimizers hold *their own* state keyed by
//! parameter position: the training loop owns the `Vec<Matrix>` of
//! parameter values, re-registers them on a fresh tape each step, runs
//! backward, and hands `(values, grads)` to the optimizer.
//!
//! [`Adam`] implements Kingma & Ba (2014) exactly as the paper's setup
//! requires ("full-batch gradient descent with the Adam optimizer,
//! starting with an initial learning rate of 0.1"), including bias
//! correction and optional AMSGrad.

use pnc_linalg::Matrix;

/// A first-order optimizer over an indexed list of parameter matrices.
pub trait Optimizer {
    /// Applies one update step.
    ///
    /// `params[i]` is updated in place using `grads[i]`. A `None`
    /// gradient leaves the corresponding parameter untouched.
    ///
    /// # Panics
    ///
    /// Implementations panic when `params.len() != grads.len()` or when
    /// a parameter changes shape between steps.
    fn step(&mut self, params: &mut [Matrix], grads: &[Option<Matrix>]);

    /// [`Optimizer::step`] under an `optimizer_step` profiling scope
    /// carrying the parameter-tensor count as a span attribute. With a
    /// disabled profiler this is exactly [`Optimizer::step`].
    ///
    /// # Panics
    ///
    /// Same conditions as [`Optimizer::step`].
    fn step_profiled(
        &mut self,
        params: &mut [Matrix],
        grads: &[Option<Matrix>],
        prof: &pnc_telemetry::Profiler,
    ) {
        let mut scope = prof.scope("optimizer_step");
        scope.set_u64("params", params.len() as u64);
        self.step(params, grads);
    }

    /// Current learning rate.
    fn learning_rate(&self) -> f64;

    /// Overrides the learning rate (used by LR schedules such as the
    /// paper's halve-on-plateau rule).
    fn set_learning_rate(&mut self, lr: f64);
}

/// Plain gradient descent with optional classical momentum.
#[derive(Debug, Clone)]
pub struct GradientDescent {
    lr: f64,
    momentum: f64,
    velocity: Vec<Matrix>,
}

impl GradientDescent {
    /// Creates SGD with learning rate `lr` and no momentum.
    pub fn new(lr: f64) -> Self {
        GradientDescent {
            lr,
            momentum: 0.0,
            velocity: Vec::new(),
        }
    }

    /// Adds classical momentum `β ∈ [0, 1)`.
    pub fn with_momentum(mut self, beta: f64) -> Self {
        assert!((0.0..1.0).contains(&beta), "momentum must be in [0, 1)");
        self.momentum = beta;
        self
    }
}

impl Optimizer for GradientDescent {
    fn step(&mut self, params: &mut [Matrix], grads: &[Option<Matrix>]) {
        assert_eq!(params.len(), grads.len(), "step: length mismatch");
        if self.velocity.is_empty() {
            self.velocity = params
                .iter()
                .map(|p| Matrix::zeros(p.rows(), p.cols()))
                .collect();
        }
        for ((p, g), v) in params.iter_mut().zip(grads).zip(&mut self.velocity) {
            let Some(g) = g else { continue };
            assert_eq!(p.shape(), g.shape(), "step: param/grad shape mismatch");
            if self.momentum > 0.0 {
                *v = &v.scale(self.momentum) + g;
                *p = &*p - &v.scale(self.lr);
            } else {
                *p = &*p - &g.scale(self.lr);
            }
        }
    }

    fn learning_rate(&self) -> f64 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f64) {
        self.lr = lr;
    }
}

/// Configuration for [`Adam`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdamConfig {
    /// Step size (the paper starts at 0.1).
    pub lr: f64,
    /// Exponential decay for the first moment.
    pub beta1: f64,
    /// Exponential decay for the second moment.
    pub beta2: f64,
    /// Denominator fuzz.
    pub eps: f64,
    /// Use the AMSGrad maximum of second moments.
    pub amsgrad: bool,
}

impl Default for AdamConfig {
    fn default() -> Self {
        AdamConfig {
            lr: 0.1,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            amsgrad: false,
        }
    }
}

/// The Adam optimizer (Kingma & Ba, 2014).
#[derive(Debug, Clone)]
pub struct Adam {
    cfg: AdamConfig,
    step_count: u64,
    m: Vec<Matrix>,
    v: Vec<Matrix>,
    v_hat_max: Vec<Matrix>,
}

impl Adam {
    /// Creates Adam with the given configuration.
    pub fn new(cfg: AdamConfig) -> Self {
        Adam {
            cfg,
            step_count: 0,
            m: Vec::new(),
            v: Vec::new(),
            v_hat_max: Vec::new(),
        }
    }

    /// Creates Adam with default betas and the given learning rate.
    pub fn with_lr(lr: f64) -> Self {
        Adam::new(AdamConfig {
            lr,
            ..AdamConfig::default()
        })
    }

    /// Number of update steps performed.
    pub fn steps(&self) -> u64 {
        self.step_count
    }

    /// Resets the moment estimates (used when fine-tuning restarts on a
    /// pruned circuit).
    pub fn reset_state(&mut self) {
        self.step_count = 0;
        self.m.clear();
        self.v.clear();
        self.v_hat_max.clear();
    }
}

impl Optimizer for Adam {
    fn step(&mut self, params: &mut [Matrix], grads: &[Option<Matrix>]) {
        assert_eq!(params.len(), grads.len(), "step: length mismatch");
        if self.m.is_empty() {
            self.m = params
                .iter()
                .map(|p| Matrix::zeros(p.rows(), p.cols()))
                .collect();
            self.v = self.m.clone();
            if self.cfg.amsgrad {
                self.v_hat_max = self.m.clone();
            }
        }
        self.step_count += 1;
        let t = self.step_count as f64;
        let bc1 = 1.0 - self.cfg.beta1.powf(t);
        let bc2 = 1.0 - self.cfg.beta2.powf(t);

        for i in 0..params.len() {
            let Some(g) = &grads[i] else { continue };
            assert_eq!(
                params[i].shape(),
                g.shape(),
                "step: param/grad shape mismatch at index {i}"
            );
            let m = &mut self.m[i];
            let v = &mut self.v[i];
            for (k, &gk) in g.as_slice().iter().enumerate() {
                let mk = self.cfg.beta1 * m.as_slice()[k] + (1.0 - self.cfg.beta1) * gk;
                let vk = self.cfg.beta2 * v.as_slice()[k] + (1.0 - self.cfg.beta2) * gk * gk;
                m.as_mut_slice()[k] = mk;
                v.as_mut_slice()[k] = vk;
                let m_hat = mk / bc1;
                let mut v_hat = vk / bc2;
                if self.cfg.amsgrad {
                    let vm = &mut self.v_hat_max[i].as_mut_slice()[k];
                    *vm = vm.max(v_hat);
                    v_hat = *vm;
                }
                params[i].as_mut_slice()[k] -= self.cfg.lr * m_hat / (v_hat.sqrt() + self.cfg.eps);
            }
        }
    }

    fn learning_rate(&self) -> f64 {
        self.cfg.lr
    }

    fn set_learning_rate(&mut self, lr: f64) {
        self.cfg.lr = lr;
    }
}

/// Clips gradients in place to a maximum global L2 norm, returning the
/// pre-clip norm. A standard guard against the exploding constraint
/// gradients that arise when a power budget is strongly violated.
pub fn clip_grad_norm(grads: &mut [Option<Matrix>], max_norm: f64) -> f64 {
    let mut total = 0.0;
    for g in grads.iter().flatten() {
        total += g.as_slice().iter().map(|x| x * x).sum::<f64>();
    }
    let norm = total.sqrt();
    if norm > max_norm && norm > 0.0 {
        let scale = max_norm / norm;
        for g in grads.iter_mut().flatten() {
            for x in g.as_mut_slice() {
                *x *= scale;
            }
        }
    }
    norm
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimizes f(x) = (x - 3)² from x = 0 and checks convergence.
    fn run_quadratic(opt: &mut dyn Optimizer, iters: usize) -> f64 {
        let mut params = vec![Matrix::filled(1, 1, 0.0)];
        for _ in 0..iters {
            let x = params[0][(0, 0)];
            let grad = Matrix::filled(1, 1, 2.0 * (x - 3.0));
            opt.step(&mut params, &[Some(grad)]);
        }
        params[0][(0, 0)]
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let mut opt = GradientDescent::new(0.1);
        let x = run_quadratic(&mut opt, 200);
        assert!((x - 3.0).abs() < 1e-6, "x = {x}");
    }

    #[test]
    fn sgd_momentum_converges() {
        let mut opt = GradientDescent::new(0.05).with_momentum(0.9);
        let x = run_quadratic(&mut opt, 300);
        assert!((x - 3.0).abs() < 1e-4, "x = {x}");
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let mut opt = Adam::with_lr(0.1);
        let x = run_quadratic(&mut opt, 600);
        assert!((x - 3.0).abs() < 1e-3, "x = {x}");
    }

    #[test]
    fn adam_first_step_is_lr_sized() {
        // With bias correction the first Adam step has magnitude ≈ lr.
        let mut opt = Adam::with_lr(0.1);
        let mut params = vec![Matrix::filled(1, 1, 0.0)];
        let grad = Matrix::filled(1, 1, 123.0);
        opt.step(&mut params, &[Some(grad)]);
        assert!((params[0][(0, 0)].abs() - 0.1).abs() < 1e-6);
    }

    #[test]
    fn amsgrad_converges() {
        let mut opt = Adam::new(AdamConfig {
            lr: 0.1,
            amsgrad: true,
            ..AdamConfig::default()
        });
        let x = run_quadratic(&mut opt, 800);
        assert!((x - 3.0).abs() < 1e-2, "x = {x}");
    }

    #[test]
    fn none_gradient_skips_parameter() {
        let mut opt = Adam::with_lr(0.5);
        let mut params = vec![Matrix::filled(1, 1, 7.0)];
        opt.step(&mut params, &[None]);
        assert_eq!(params[0][(0, 0)], 7.0);
    }

    #[test]
    fn set_learning_rate_takes_effect() {
        let mut opt = GradientDescent::new(1.0);
        opt.set_learning_rate(0.0);
        let mut params = vec![Matrix::filled(1, 1, 5.0)];
        opt.step(&mut params, &[Some(Matrix::filled(1, 1, 100.0))]);
        assert_eq!(params[0][(0, 0)], 5.0);
        assert_eq!(opt.learning_rate(), 0.0);
    }

    #[test]
    fn reset_state_clears_moments() {
        let mut opt = Adam::with_lr(0.1);
        let mut params = vec![Matrix::filled(1, 1, 0.0)];
        opt.step(&mut params, &[Some(Matrix::filled(1, 1, 1.0))]);
        assert_eq!(opt.steps(), 1);
        opt.reset_state();
        assert_eq!(opt.steps(), 0);
    }

    #[test]
    fn clip_grad_norm_scales_down() {
        let mut grads = vec![Some(Matrix::row(&[3.0, 4.0]))]; // norm 5
        let pre = clip_grad_norm(&mut grads, 1.0);
        assert!((pre - 5.0).abs() < 1e-12);
        let g = grads[0].as_ref().unwrap();
        let post = (g.as_slice()[0].powi(2) + g.as_slice()[1].powi(2)).sqrt();
        assert!((post - 1.0).abs() < 1e-12);
    }

    #[test]
    fn clip_grad_norm_leaves_small_gradients() {
        let mut grads = vec![Some(Matrix::row(&[0.3, 0.4]))]; // norm 0.5
        let pre = clip_grad_norm(&mut grads, 1.0);
        assert!((pre - 0.5).abs() < 1e-12);
        assert_eq!(grads[0].as_ref().unwrap().as_slice(), &[0.3, 0.4]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn step_length_mismatch_panics() {
        let mut opt = Adam::with_lr(0.1);
        let mut params = vec![Matrix::zeros(1, 1)];
        opt.step(&mut params, &[]);
    }
}
