//! Tape-free numeric helpers used around the training loop.
//!
//! These operate on plain [`Matrix`] values: evaluation-time softmax,
//! accuracy computation, one-hot encoding. Nothing here participates in
//! gradients.

use pnc_linalg::Matrix;

/// Row-wise softmax (numerically stable).
pub fn softmax(logits: &Matrix) -> Matrix {
    let (b, c) = logits.shape();
    let mut out = Matrix::zeros(b, c);
    for i in 0..b {
        let row = logits.row_slice(i);
        let m = row.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let mut z = 0.0;
        for &x in row {
            z += (x - m).exp();
        }
        for j in 0..c {
            out[(i, j)] = (row[j] - m).exp() / z;
        }
    }
    out
}

/// Classification accuracy of `logits` against integer `labels`,
/// in `[0, 1]`.
///
/// # Panics
///
/// Panics when `labels.len()` differs from the number of logit rows.
pub fn accuracy(logits: &Matrix, labels: &[usize]) -> f64 {
    assert_eq!(logits.rows(), labels.len(), "accuracy: length mismatch");
    if labels.is_empty() {
        return 0.0;
    }
    let preds = logits.row_argmax();
    let correct = preds.iter().zip(labels).filter(|(p, l)| p == l).count();
    correct as f64 / labels.len() as f64
}

/// Mean cross-entropy of `logits` against integer `labels` (no tape).
///
/// # Panics
///
/// Panics when `labels.len()` differs from the batch size or a label is
/// out of range.
pub fn cross_entropy(logits: &Matrix, labels: &[usize]) -> f64 {
    assert_eq!(
        logits.rows(),
        labels.len(),
        "cross_entropy: length mismatch"
    );
    let p = softmax(logits);
    let mut loss = 0.0;
    for (i, &label) in labels.iter().enumerate() {
        assert!(label < logits.cols(), "label {label} out of range");
        loss -= p[(i, label)].max(1e-300).ln();
    }
    loss / labels.len() as f64
}

/// One-hot encodes labels into a `len × classes` matrix.
///
/// # Panics
///
/// Panics when a label is `>= classes`.
pub fn one_hot(labels: &[usize], classes: usize) -> Matrix {
    let mut out = Matrix::zeros(labels.len(), classes);
    for (i, &l) in labels.iter().enumerate() {
        assert!(l < classes, "label {l} out of range 0..{classes}");
        out[(i, l)] = 1.0;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn softmax_rows_sum_to_one() {
        let l = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[-5.0, 0.0, 5.0]]);
        let p = softmax(&l);
        for i in 0..2 {
            let s: f64 = p.row_slice(i).iter().sum();
            assert!((s - 1.0).abs() < 1e-12);
        }
        // Larger logit ⇒ larger probability.
        assert!(p[(0, 2)] > p[(0, 1)] && p[(0, 1)] > p[(0, 0)]);
    }

    #[test]
    fn softmax_is_shift_invariant() {
        let a = Matrix::from_rows(&[&[1.0, 2.0]]);
        let b = Matrix::from_rows(&[&[1001.0, 1002.0]]);
        assert!(softmax(&a).approx_eq(&softmax(&b), 1e-12));
    }

    #[test]
    fn accuracy_counts_argmax_matches() {
        let l = Matrix::from_rows(&[&[0.9, 0.1], &[0.2, 0.8], &[0.6, 0.4]]);
        assert!((accuracy(&l, &[0, 1, 1]) - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(accuracy(&l, &[0, 1, 0]), 1.0);
    }

    #[test]
    fn cross_entropy_of_confident_correct_is_small() {
        let good = Matrix::from_rows(&[&[10.0, -10.0]]);
        let bad = Matrix::from_rows(&[&[-10.0, 10.0]]);
        assert!(cross_entropy(&good, &[0]) < 1e-6);
        assert!(cross_entropy(&bad, &[0]) > 10.0);
    }

    #[test]
    fn one_hot_shape_and_placement() {
        let h = one_hot(&[2, 0], 3);
        assert_eq!(h.shape(), (2, 3));
        assert_eq!(h[(0, 2)], 1.0);
        assert_eq!(h[(1, 0)], 1.0);
        assert_eq!(h.sum(), 2.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn one_hot_rejects_bad_label() {
        let _ = one_hot(&[3], 3);
    }
}
