//! # pnc-autodiff
//!
//! Reverse-mode automatic differentiation for the pNC workspace — the
//! hand-built replacement for PyTorch autograd that the paper's training
//! pipeline relies on.
//!
//! The engine is a classic *tape* (Wengert list): every operation
//! appends a node to a [`Tape`] arena and returns a lightweight
//! [`Var`] handle. Calling [`Tape::backward`] on a scalar output walks
//! the tape in reverse, accumulating vector–Jacobian products into
//! per-node gradient matrices.
//!
//! Design choices (see DESIGN.md §5):
//!
//! * **Arena + indices**, not `Rc<RefCell<…>>` graphs: allocation-free
//!   handles, cache-friendly traversal, no interior mutability in the
//!   public API.
//! * **`f64` matrices only** ([`pnc_linalg::Matrix`]); scalars are
//!   `1 × 1` matrices, which keeps the op set small and uniform.
//! * **Sub-gradient conventions** chosen for training printed circuits:
//!   `|x|` has derivative `0` at `x = 0`, `relu` likewise, and `col_max`
//!   routes gradient to the first arg-max. These match PyTorch.
//!
//! # Example: gradient of a tiny expression
//!
//! ```
//! use pnc_autodiff::Tape;
//! use pnc_linalg::Matrix;
//!
//! let mut tape = Tape::new();
//! let x = tape.constant(Matrix::from_rows(&[&[1.0, 2.0]]));
//! let w = tape.parameter(Matrix::from_rows(&[&[0.5], &[-0.25]]));
//! let y = tape.matmul(x, w);        // 1×1: x·w = 0.0
//! let loss = tape.square(y);        // (x·w)²
//! let grads = tape.backward(loss);
//! // d(x·w)²/dw = 2 (x·w) xᵀ = 0 here since x·w = 0
//! assert!(grads.get(w).unwrap().approx_eq(&Matrix::zeros(2, 1), 1e-12));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod functional;
pub mod gradcheck;
pub mod optim;
pub mod tape;

pub use optim::{Adam, AdamConfig, GradientDescent, Optimizer};
pub use tape::{Gradients, Tape, Var};
