//! Process-wide executor utilization accounting.
//!
//! The executor is stateless and `Copy` — there is no pool object to
//! hang counters off — so, like the SPICE solver's `stats`, every
//! parallel call updates relaxed process-wide atomics (a few clock
//! reads and atomic adds per *call*, never per item) and an
//! orchestrator reads them out once per run with [`snapshot`] or
//! [`take`] and emits a single `executor_stats` event.
//!
//! Busy time is accumulated per worker: each scoped worker times its
//! own lifetime locally and publishes one atomic add when it finishes,
//! so the accounting adds no per-item synchronization. Idle time is
//! derived: a call that keeps `w` workers alive for `t` ns offers
//! `w × t` ns of capacity, and whatever the workers didn't spend
//! executing closures (stragglers finishing early) is idle.

use pnc_telemetry::{Event, Level};
use std::sync::atomic::{AtomicU64, Ordering};

// lint: allow(L003, reason = "process-wide executor utilization counters aggregated across ephemeral scoped workers; read out once per run")
static CALLS: AtomicU64 = AtomicU64::new(0);
// lint: allow(L003, reason = "process-wide executor utilization counters aggregated across ephemeral scoped workers; read out once per run")
static ITEMS: AtomicU64 = AtomicU64::new(0);
// lint: allow(L003, reason = "process-wide executor utilization counters aggregated across ephemeral scoped workers; read out once per run")
static BUSY_NS: AtomicU64 = AtomicU64::new(0);
// lint: allow(L003, reason = "process-wide executor utilization counters aggregated across ephemeral scoped workers; read out once per run")
static WALL_NS: AtomicU64 = AtomicU64::new(0);
// lint: allow(L003, reason = "process-wide executor utilization counters aggregated across ephemeral scoped workers; read out once per run")
static CAPACITY_NS: AtomicU64 = AtomicU64::new(0);
// lint: allow(L003, reason = "process-wide fan-out high-water mark, same lifecycle as the counters above")
static MAX_FANOUT: AtomicU64 = AtomicU64::new(0);

/// A point-in-time copy of the executor utilization counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ExecutorStatsSnapshot {
    /// Parallel entry-point invocations (including sequential
    /// fallbacks).
    pub calls: u64,
    /// Work items (map elements / chunks) processed.
    pub items: u64,
    /// Nanoseconds workers spent alive executing their drain loops,
    /// summed across workers.
    pub busy_ns: u64,
    /// Wall-clock nanoseconds spent inside parallel calls (not scaled
    /// by worker count).
    pub wall_ns: u64,
    /// Offered capacity: Σ per-call `workers × wall` ns.
    pub capacity_ns: u64,
    /// Largest number of items submitted to a single call — the
    /// queue-depth high-water mark (work is claimed from an atomic
    /// next-index queue).
    pub max_fanout: u64,
}

impl ExecutorStatsSnapshot {
    /// Capacity the workers did not spend in their drain loops.
    pub fn idle_ns(&self) -> u64 {
        self.capacity_ns.saturating_sub(self.busy_ns)
    }

    /// Fraction of offered capacity spent busy (0 when nothing ran).
    pub fn utilization(&self) -> f64 {
        if self.capacity_ns == 0 {
            return 0.0;
        }
        self.busy_ns as f64 / self.capacity_ns as f64
    }

    /// Items completed per wall-clock second inside parallel calls
    /// (0 when nothing ran).
    pub fn items_per_sec(&self) -> f64 {
        if self.wall_ns == 0 {
            return 0.0;
        }
        self.items as f64 / (self.wall_ns as f64 / 1e9)
    }

    /// Renders the snapshot as an `executor_stats` telemetry event.
    pub fn to_event(&self) -> Event {
        Event::new("executor_stats", Level::Info)
            .with_u64("calls", self.calls)
            .with_u64("items", self.items)
            .with_u64("busy_ns", self.busy_ns)
            .with_u64("idle_ns", self.idle_ns())
            .with_u64("max_fanout", self.max_fanout)
            .with_f64("utilization", self.utilization())
            .with_f64("items_per_sec", self.items_per_sec())
    }
}

/// Reads the counters without resetting them.
pub fn snapshot() -> ExecutorStatsSnapshot {
    ExecutorStatsSnapshot {
        calls: CALLS.load(Ordering::Relaxed),
        items: ITEMS.load(Ordering::Relaxed),
        busy_ns: BUSY_NS.load(Ordering::Relaxed),
        wall_ns: WALL_NS.load(Ordering::Relaxed),
        capacity_ns: CAPACITY_NS.load(Ordering::Relaxed),
        max_fanout: MAX_FANOUT.load(Ordering::Relaxed),
    }
}

/// Reads and zeroes the counters, returning the values they held. Use
/// this to attribute executor work to a phase of a larger run.
pub fn take() -> ExecutorStatsSnapshot {
    ExecutorStatsSnapshot {
        calls: CALLS.swap(0, Ordering::Relaxed),
        items: ITEMS.swap(0, Ordering::Relaxed),
        busy_ns: BUSY_NS.swap(0, Ordering::Relaxed),
        wall_ns: WALL_NS.swap(0, Ordering::Relaxed),
        capacity_ns: CAPACITY_NS.swap(0, Ordering::Relaxed),
        max_fanout: MAX_FANOUT.swap(0, Ordering::Relaxed),
    }
}

/// Zeroes the counters.
pub fn reset() {
    let _ = take();
}

/// One worker finished its drain loop after `busy_ns` alive.
pub(crate) fn record_worker_busy(busy_ns: u64) {
    BUSY_NS.fetch_add(busy_ns, Ordering::Relaxed);
}

/// One parallel call completed: `items` work items across `workers`
/// threads in `wall_ns` of caller wall-clock.
pub(crate) fn record_call(items: usize, workers: usize, wall_ns: u64) {
    CALLS.fetch_add(1, Ordering::Relaxed);
    ITEMS.fetch_add(items as u64, Ordering::Relaxed);
    WALL_NS.fetch_add(wall_ns, Ordering::Relaxed);
    CAPACITY_NS.fetch_add((workers as u64).saturating_mul(wall_ns), Ordering::Relaxed);
    MAX_FANOUT.fetch_max(items as u64, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    // NOTE: counters are process-global and tests run in parallel, so
    // assertions against the live statics are monotonic (deltas ≥
    // expected) rather than exact.
    #[test]
    fn calls_accumulate_and_derive_consistently() {
        let before = snapshot();
        record_call(10, 4, 1_000);
        record_worker_busy(600);
        record_worker_busy(900);
        let after = snapshot();
        assert!(after.calls > before.calls);
        assert!(after.items >= before.items + 10);
        assert!(after.busy_ns >= before.busy_ns + 1_500);
        assert!(after.capacity_ns >= before.capacity_ns + 4_000);
        assert!(after.max_fanout >= 10);
    }

    #[test]
    fn derived_rates_on_a_fixed_snapshot() {
        let s = ExecutorStatsSnapshot {
            calls: 2,
            items: 100,
            busy_ns: 3_000_000_000,
            wall_ns: 1_000_000_000,
            capacity_ns: 4_000_000_000,
            max_fanout: 64,
        };
        assert_eq!(s.idle_ns(), 1_000_000_000);
        assert!((s.utilization() - 0.75).abs() < 1e-12);
        assert!((s.items_per_sec() - 100.0).abs() < 1e-9);
        let e = s.to_event();
        assert_eq!(e.name, "executor_stats");
        assert_eq!(e.get_u64("idle_ns"), Some(1_000_000_000));
        assert_eq!(e.get_u64("max_fanout"), Some(64));
    }

    #[test]
    fn empty_snapshot_rates_are_zero() {
        let s = ExecutorStatsSnapshot::default();
        assert_eq!(s.utilization(), 0.0);
        assert_eq!(s.items_per_sec(), 0.0);
        assert_eq!(s.idle_ns(), 0);
    }
}
