//! Deterministic scoped parallelism for the pnc workspace.
//!
//! The paper's workload is dominated by embarrassingly-parallel sweeps
//! — Sobol-sampled SPICE characterization, Monte-Carlo variation
//! evaluation, α-grid × seed experiment fan-out — and the workspace has
//! no rayon (std-only, no network access). This crate hand-builds the
//! one primitive those sweeps need: a scoped worker-pool [`Executor`]
//! whose results are **bit-identical for any thread count**.
//!
//! # Determinism contract
//!
//! Every entry point guarantees that the value it returns does not
//! depend on the number of worker threads or on scheduling order:
//!
//! * [`Executor::par_map`] collects results into index-ordered slots —
//!   item `i` always lands in slot `i`, regardless of which worker ran
//!   it or when it finished.
//! * [`Executor::par_for_chunks`] hands each worker a *disjoint*
//!   mutable chunk; chunk contents are computed exactly as the
//!   sequential loop would compute them.
//! * [`Executor::par_reduce`] maps in parallel but folds sequentially
//!   in index order, so float accumulation order never depends on
//!   scheduling.
//!
//! Callers must hold up their side: closures must be pure functions of
//! `(index, item)` — in particular, any randomness must be derived from
//! a per-index seed (see [`derive_seed`]), never from a shared RNG
//! advanced in loop order.
//!
//! # Sequential fallback
//!
//! `threads == 1` (the `--threads 1` CLI flag) runs every closure
//! inline on the caller's thread and never spawns — byte-for-byte the
//! code path a plain `for` loop would take.
//!
//! # Panics and errors
//!
//! Worker panics are propagated to the caller (via
//! [`std::thread::scope`]'s join-and-resume semantics), so a panicking
//! closure behaves like it would in a sequential loop. Fallible work
//! should instead return `Result` per item and go through
//! [`Executor::par_try_map`], which yields the **lowest-index** error —
//! again independent of scheduling — ready for `?`-propagation into the
//! workspace's typed error enums.

pub mod stats;

use pnc_telemetry::Stopwatch;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock, PoisonError};

pub use stats::ExecutorStatsSnapshot;

// Process-wide thread-count override, set once by the CLI / bench bins.
// lint: allow(L003, reason = "the executor is configured exactly once at process start (CLI --threads); a OnceLock is the mechanism that enforces 'configured once'")
static CONFIGURED_THREADS: OnceLock<usize> = OnceLock::new();

/// Global access to the process-wide executor configuration.
///
/// Binaries call [`ExecutorHandle::configure`] exactly once at startup
/// (from `--threads N` or the `PNC_THREADS` env var); library code
/// calls [`ExecutorHandle::get`] to obtain an [`Executor`] wherever a
/// sweep fans out. Unconfigured processes default to the machine's
/// available parallelism.
#[derive(Debug, Clone, Copy)]
pub struct ExecutorHandle;

impl ExecutorHandle {
    /// Sets the process-wide thread count (clamped to ≥ 1). Returns
    /// `false` if the executor was already configured — first caller
    /// wins, later calls are ignored.
    pub fn configure(threads: usize) -> bool {
        CONFIGURED_THREADS.set(threads.max(1)).is_ok()
    }

    /// The resolved process-wide thread count: the configured value if
    /// [`ExecutorHandle::configure`] ran, else `PNC_THREADS` from the
    /// environment, else [`std::thread::available_parallelism`].
    pub fn threads() -> usize {
        if let Some(&t) = CONFIGURED_THREADS.get() {
            return t;
        }
        if let Some(t) = std::env::var("PNC_THREADS")
            .ok()
            .and_then(|s| s.parse::<usize>().ok())
        {
            if t >= 1 {
                return t;
            }
        }
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
    }

    /// An executor using the process-wide thread count.
    pub fn get() -> Executor {
        Executor::new(Self::threads())
    }
}

/// A scoped worker-pool executor over a fixed thread count.
///
/// Stateless and `Copy`: each parallel call spawns scoped workers for
/// its own duration (no persistent pool, no channels to drain), which
/// keeps panic propagation and borrow lifetimes trivial — closures may
/// borrow from the caller's stack.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Executor {
    threads: usize,
}

impl Default for Executor {
    fn default() -> Self {
        ExecutorHandle::get()
    }
}

impl Executor {
    /// An executor with an explicit thread count (clamped to ≥ 1).
    pub fn new(threads: usize) -> Executor {
        Executor {
            threads: threads.max(1),
        }
    }

    /// The exact sequential fallback: runs everything inline, never
    /// spawns.
    pub fn sequential() -> Executor {
        Executor { threads: 1 }
    }

    /// This executor's thread count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Maps `f` over `items`, returning results in item order.
    ///
    /// `f` receives `(index, &item)` so per-index seeds can be derived.
    /// Work is distributed dynamically (atomic next-index counter), but
    /// result slot `i` always holds `f(i, &items[i])` — the output is
    /// identical for any thread count.
    pub fn par_map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        let n = items.len();
        let call = Stopwatch::start();
        if self.threads == 1 || n <= 1 {
            let out: Vec<R> = items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
            let ns = call.elapsed_ns();
            stats::record_worker_busy(ns);
            stats::record_call(n, 1, ns);
            return out;
        }
        let workers = self.threads.min(n);
        let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| {
                    let busy = Stopwatch::start();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        let r = f(i, &items[i]);
                        *slots[i].lock().unwrap_or_else(PoisonError::into_inner) = Some(r);
                    }
                    stats::record_worker_busy(busy.elapsed_ns());
                });
            }
        });
        stats::record_call(n, workers, call.elapsed_ns());
        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .unwrap_or_else(PoisonError::into_inner)
                    // lint: allow(L001, reason = "scope() joins every worker before returning, so each slot was written; a panicking worker already re-panicked the caller")
                    .expect("worker filled every slot")
            })
            .collect()
    }

    /// Fallible [`Executor::par_map`]: evaluates every item, then
    /// returns all successes in item order, or the **lowest-index**
    /// error — deterministic regardless of which worker failed first.
    ///
    /// # Errors
    ///
    /// Returns the error produced by the smallest failing index.
    pub fn par_try_map<T, R, E, F>(&self, items: &[T], f: F) -> Result<Vec<R>, E>
    where
        T: Sync,
        R: Send,
        E: Send,
        F: Fn(usize, &T) -> Result<R, E> + Sync,
    {
        self.par_map(items, f).into_iter().collect()
    }

    /// Runs `f` over disjoint mutable chunks of `data` (the last chunk
    /// may be short), in parallel. `f` receives `(chunk_index, chunk)`.
    ///
    /// Because chunks are disjoint and each is processed by exactly one
    /// worker, the final contents of `data` equal the sequential
    /// result for any thread count. This is the row-blocked matmul
    /// primitive: chunk the output buffer by row blocks.
    ///
    /// # Panics
    ///
    /// Panics if `chunk_len == 0` (as [`slice::chunks_mut`] does).
    pub fn par_for_chunks<T, F>(&self, data: &mut [T], chunk_len: usize, f: F)
    where
        T: Send,
        F: Fn(usize, &mut [T]) + Sync,
    {
        let call = Stopwatch::start();
        if self.threads == 1 || data.len() <= chunk_len {
            let mut n = 0usize;
            for (i, chunk) in data.chunks_mut(chunk_len).enumerate() {
                f(i, chunk);
                n = i + 1;
            }
            let ns = call.elapsed_ns();
            stats::record_worker_busy(ns);
            stats::record_call(n, 1, ns);
            return;
        }
        let chunks: Vec<Mutex<&mut [T]>> = data.chunks_mut(chunk_len).map(Mutex::new).collect();
        let n = chunks.len();
        let workers = self.threads.min(n);
        let next = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| {
                    let busy = Stopwatch::start();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        let mut guard = chunks[i].lock().unwrap_or_else(PoisonError::into_inner);
                        f(i, &mut guard);
                    }
                    stats::record_worker_busy(busy.elapsed_ns());
                });
            }
        });
        stats::record_call(n, workers, call.elapsed_ns());
    }

    /// Parallel map + sequential index-ordered fold. The fold order is
    /// `0, 1, 2, …` no matter how the map work was scheduled, so float
    /// accumulation is bit-identical for any thread count.
    pub fn par_reduce<T, R, A, M, F>(&self, items: &[T], init: A, map: M, fold: F) -> A
    where
        T: Sync,
        R: Send,
        M: Fn(usize, &T) -> R + Sync,
        F: FnMut(A, R) -> A,
    {
        self.par_map(items, map).into_iter().fold(init, fold)
    }
}

/// Derives an independent per-index RNG seed from a base seed — the
/// SplitMix64 finalizer, so neighbouring indices land in uncorrelated
/// streams. Parallel sweeps must seed per index with this (or
/// equivalent) instead of advancing one shared RNG in loop order.
pub fn derive_seed(base: u64, index: u64) -> u64 {
    let mut z = base.wrapping_add(0x9E37_79B9_7F4A_7C15_u64.wrapping_mul(index.wrapping_add(1)));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;

    #[test]
    fn par_map_matches_sequential_for_any_thread_count() {
        let items: Vec<u64> = (0..103).collect();
        let expected: Vec<u64> = items.iter().map(|&x| x * x + 1).collect();
        for threads in [1, 2, 3, 4, 8] {
            let ex = Executor::new(threads);
            let got = ex.par_map(&items, |_, &x| x * x + 1);
            assert_eq!(got, expected, "threads = {threads}");
        }
    }

    #[test]
    fn single_thread_runs_inline_and_never_spawns() {
        let ex = Executor::sequential();
        let caller = std::thread::current().id();
        // lint: allow(L010, reason = "asserts the sequential executor runs inline; thread identity is the subject under test")
        let ids = ex.par_map(&[1, 2, 3], |_, _| std::thread::current().id());
        assert!(ids.iter().all(|&id| id == caller));
    }

    #[test]
    fn multi_thread_actually_uses_workers() {
        let ex = Executor::new(4);
        let items: Vec<usize> = (0..64).collect();
        let off_caller = AtomicBool::new(false);
        let caller = std::thread::current().id();
        ex.par_map(&items, |_, _| {
            // lint: allow(L010, reason = "asserts workers actually run off-caller; thread identity is the subject under test")
            if std::thread::current().id() != caller {
                off_caller.store(true, Ordering::Relaxed);
            }
        });
        assert!(off_caller.load(Ordering::Relaxed), "no worker thread ran");
    }

    #[test]
    fn par_try_map_returns_lowest_index_error() {
        let items: Vec<usize> = (0..50).collect();
        for threads in [1, 4] {
            let ex = Executor::new(threads);
            let r: Result<Vec<usize>, usize> =
                ex.par_try_map(&items, |i, &x| if i % 7 == 3 { Err(i) } else { Ok(x) });
            assert_eq!(r.unwrap_err(), 3, "threads = {threads}");
        }
        let ok: Result<Vec<usize>, usize> = Executor::new(4).par_try_map(&items, |_, &x| Ok(x * 2));
        assert_eq!(
            ok.unwrap(),
            items.iter().map(|&x| x * 2).collect::<Vec<_>>()
        );
    }

    #[test]
    fn par_for_chunks_fills_disjoint_chunks_in_order() {
        let mut expected = vec![0usize; 37];
        for (i, chunk) in expected.chunks_mut(5).enumerate() {
            for (j, v) in chunk.iter_mut().enumerate() {
                *v = i * 100 + j;
            }
        }
        for threads in [1, 2, 4] {
            let mut data = vec![0usize; 37];
            Executor::new(threads).par_for_chunks(&mut data, 5, |i, chunk| {
                for (j, v) in chunk.iter_mut().enumerate() {
                    *v = i * 100 + j;
                }
            });
            assert_eq!(data, expected, "threads = {threads}");
        }
    }

    #[test]
    fn par_reduce_folds_in_index_order() {
        // A non-commutative fold exposes any ordering difference.
        let items: Vec<u64> = (1..=40).collect();
        let seq = items
            .iter()
            .enumerate()
            .map(|(i, &x)| x + i as u64)
            .fold(String::new(), |acc, v| format!("{acc},{v}"));
        for threads in [1, 3, 6] {
            let got = Executor::new(threads).par_reduce(
                &items,
                String::new(),
                |i, &x| x + i as u64,
                |acc, v| format!("{acc},{v}"),
            );
            assert_eq!(got, seq, "threads = {threads}");
        }
    }

    #[test]
    fn worker_panics_propagate_to_caller() {
        let result = std::panic::catch_unwind(|| {
            Executor::new(4).par_map(&[0usize; 16], |i, _| {
                assert!(i != 9, "boom");
                i
            })
        });
        assert!(result.is_err(), "panic should cross the scope join");
    }

    #[test]
    fn derive_seed_is_stable_and_spreads() {
        assert_eq!(derive_seed(42, 0), derive_seed(42, 0));
        let a = derive_seed(42, 0);
        let b = derive_seed(42, 1);
        let c = derive_seed(43, 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
        // Finalizer output should flip roughly half the bits between
        // neighbouring indices.
        let flipped = (a ^ b).count_ones();
        assert!((8..=56).contains(&flipped), "flipped {flipped} bits");
    }

    #[test]
    fn configure_is_first_caller_wins() {
        // This test intentionally pins the process-wide value for this
        // test binary; every other test here uses explicit Executor::new.
        let first = ExecutorHandle::configure(3);
        let second = ExecutorHandle::configure(7);
        if first {
            assert_eq!(ExecutorHandle::threads(), 3);
        }
        assert!(!second || !first, "only the first configure may win");
        assert!(ExecutorHandle::get().threads() >= 1);
    }

    #[test]
    fn utilization_counters_track_parallel_calls() {
        let before = stats::snapshot();
        let items: Vec<u64> = (0..64).collect();
        Executor::new(4).par_map(&items, |_, &x| x.wrapping_mul(3));
        Executor::sequential().par_map(&items, |_, &x| x.wrapping_mul(3));
        let after = stats::snapshot();
        assert!(after.calls >= before.calls + 2);
        assert!(after.items >= before.items + 128);
        assert!(after.busy_ns > before.busy_ns);
        assert!(after.capacity_ns >= after.busy_ns - before.busy_ns);
        assert!(after.max_fanout >= 64);
    }

    #[test]
    fn shared_histogram_summaries_are_bit_identical_across_thread_counts() {
        // The cross-layer determinism contract: workers recording
        // per-item samples into one shared streamed histogram must
        // summarize bit-identically for any thread count, because the
        // histogram accumulates in order-independent integer ticks.
        use pnc_telemetry::StreamHistogram;
        let items: Vec<u64> = (0..257).collect();
        let summarize = |threads: usize| {
            let hist = StreamHistogram::with_ticks_per_unit(1.0);
            Executor::new(threads).par_map(&items, |i, &x| {
                hist.record((x % 97) as f64);
                i
            });
            hist.summary()
        };
        let base = summarize(1);
        assert_eq!(base.count, 257);
        for threads in [2, 4, 8] {
            let s = summarize(threads);
            assert_eq!(s.count, base.count, "threads = {threads}");
            for (a, b) in [
                (s.min, base.min),
                (s.max, base.max),
                (s.mean, base.mean),
                (s.p50, base.p50),
                (s.p95, base.p95),
                (s.p99, base.p99),
            ] {
                assert_eq!(a.to_bits(), b.to_bits(), "threads = {threads}");
            }
        }
    }

    #[test]
    fn empty_and_tiny_inputs() {
        let ex = Executor::new(8);
        let empty: Vec<u32> = Vec::new();
        assert!(ex.par_map(&empty, |_, &x| x).is_empty());
        assert_eq!(ex.par_map(&[5u32], |i, &x| (i, x)), vec![(0, 5)]);
        let mut nothing: [u8; 0] = [];
        ex.par_for_chunks(&mut nothing, 4, |_, _| {});
    }
}
