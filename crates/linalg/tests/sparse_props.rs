//! Property tests for the sparse LU path on random MNA-shaped systems:
//! a boosted conductance diagonal, symmetric off-diagonal coupling, and
//! zero-diagonal source rows with ±1 voltage/current coupling — the
//! exact structure [`pnc_spice`]'s stamping produces. Dense LU with
//! partial pivoting is the oracle: solutions must agree to 1e-10
//! relative, and one symbolic analysis must serve arbitrarily many
//! numeric (re)factorizations of the same pattern.

use pnc_linalg::decomp::Lu;
use pnc_linalg::sparse::{PatternBuilder, SparseLu, SparsityPattern, SymbolicLu};
use pnc_linalg::Matrix;
use proptest::prelude::*;
use std::sync::Arc;

/// Deterministic pseudo-random entry in [-1, 1] from a seed and index
/// (SplitMix64 finalizer — same generator family the workspace uses
/// for seed derivation).
fn entry(seed: u64, index: u64) -> f64 {
    let mut z = seed
        .wrapping_add(index.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    (z >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0
}

/// An MNA-shaped test system: `nodes` conductance rows + `sources`
/// branch rows. Node block: diagonally-dominant symmetric pattern with
/// a random subset of off-diagonal couplings. Source rows/columns:
/// zero diagonal, ±1 coupling to one node each — the structure that
/// makes naive no-pivot elimination fail and forces the sparse path
/// to handle pivoting like the dense oracle does. The *structure*
/// (which couplings exist, which nodes the sources pin) depends only
/// on `seed`; the numeric values also mix in `value_seed`, so two
/// calls with the same `seed` share one sparsity pattern, like two
/// Newton iterates of one topology.
fn mna_system(
    seed: u64,
    value_seed: u64,
    nodes: usize,
    sources: usize,
) -> (SparsityPattern, Vec<f64>, Matrix) {
    // Each ideal source pins a *distinct* node — two sources on one
    // node would be genuinely singular (duplicate constraint rows).
    let sources = sources.min(nodes);
    let n = nodes + sources;
    let mut b = PatternBuilder::new(n);
    let mut dense = Matrix::zeros(n, n);
    let mut slots: Vec<(usize, f64)> = Vec::new();
    let mut stamp = |b: &mut PatternBuilder, r: usize, c: usize, v: f64| {
        slots.push((b.slot(r, c), v));
        dense[(r, c)] += v;
    };
    for i in 0..nodes {
        // Conductance diagonal, boosted for diagonal dominance.
        let g = entry(value_seed, i as u64).abs() + 1.0 + nodes as f64;
        stamp(&mut b, i, i, g);
        for j in (i + 1)..nodes {
            // ~Half of the possible couplings (structure from `seed`),
            // symmetric, like a resistor between nodes i and j.
            if entry(seed, (7 + i * nodes + j) as u64) > 0.0 {
                let v = entry(value_seed, (7 + i * nodes + j) as u64).abs() + 0.1;
                stamp(&mut b, i, j, -v);
                stamp(&mut b, j, i, -v);
            }
        }
    }
    let offset = (entry(seed, 1000).abs() * nodes as f64) as usize % nodes;
    for k in 0..sources {
        let row = nodes + k;
        let node = (offset + k) % nodes;
        stamp(&mut b, row, node, 1.0);
        stamp(&mut b, node, row, 1.0);
    }
    let pattern = b.build();
    let mut values = pattern.new_values();
    for &(slot, v) in &slots {
        values[pattern.slot_position(slot)] += v;
    }
    (pattern, values, dense)
}

fn rhs(seed: u64, n: usize) -> Vec<f64> {
    (0..n).map(|i| entry(seed ^ 0xABCD, i as u64)).collect()
}

fn max_rel_err(sparse: &[f64], dense: &[f64]) -> f64 {
    sparse
        .iter()
        .zip(dense)
        .map(|(s, d)| (s - d).abs() / d.abs().max(1.0))
        .fold(0.0f64, f64::max)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn sparse_solves_match_the_dense_oracle(
        seed in 0u64..100_000,
        nodes in 1usize..12,
        sources in 0usize..4,
    ) {
        let (pattern, values, dense) = mna_system(seed, seed, nodes, sources);
        let n = pattern.dim();
        let sym = Arc::new(SymbolicLu::analyze(&pattern));
        let slu = SparseLu::factorize(&sym, &values).unwrap();
        let dlu = Lu::new(&dense).unwrap();
        let b = rhs(seed, n);
        let xs = slu.solve(&b).unwrap();
        let xd = dlu.solve(&b).unwrap();
        let err = max_rel_err(&xs, &xd);
        prop_assert!(err < 1e-10, "sparse vs dense solution diverged by {err}");
    }

    #[test]
    fn one_symbolic_analysis_serves_many_numeric_values(
        seed in 0u64..100_000,
        nodes in 2usize..10,
        sources in 0usize..3,
    ) {
        // Same pattern, three different value sets: analyze once,
        // factorize once, then refactorize in place. Every numeric
        // pass must match the dense oracle on its own values.
        let (pattern, values, dense) = mna_system(seed, seed, nodes, sources);
        let n = pattern.dim();
        let sym = Arc::new(SymbolicLu::analyze(&pattern));
        let mut slu = SparseLu::factorize(&sym, &values).unwrap();
        let b = rhs(seed, n);
        for round in 1..3u64 {
            // Rescale the conductance block only — the physical analog
            // of re-stamping the same topology at a new Newton iterate.
            let (_, values2, dense2) = mna_system(seed, seed ^ (round << 32), nodes, sources);
            slu.refactorize(&values2).unwrap();
            let xs = slu.solve(&b).unwrap();
            let xd = Lu::new(&dense2).unwrap().solve(&b).unwrap();
            let err = max_rel_err(&xs, &xd);
            prop_assert!(err < 1e-10, "round {round}: diverged by {err}");
        }
        // And the structure still matches the first factorization's.
        prop_assert_eq!(slu.dim(), dense.rows());
    }

    #[test]
    fn multi_rhs_solve_matches_column_solves(
        seed in 0u64..100_000,
        nodes in 1usize..10,
        cols in 1usize..6,
    ) {
        let (pattern, values, _) = mna_system(seed, seed, nodes, 1);
        let n = pattern.dim();
        let sym = Arc::new(SymbolicLu::analyze(&pattern));
        let slu = SparseLu::factorize(&sym, &values).unwrap();
        let rhs_m = Matrix::from_fn(n, cols, |i, j| entry(seed ^ 0x55AA, (i * cols + j) as u64));
        let solved = slu.solve_matrix(&rhs_m).unwrap();
        for j in 0..cols {
            let col: Vec<f64> = (0..n).map(|i| rhs_m[(i, j)]).collect();
            let x = slu.solve(&col).unwrap();
            for i in 0..n {
                let d = (solved[(i, j)] - x[i]).abs();
                prop_assert!(d < 1e-12, "blocked column {j} row {i} off by {d}");
            }
        }
    }
}
