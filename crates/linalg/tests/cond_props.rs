//! Property tests for the Hager 1-norm condition estimator: on random
//! small dense well-posed matrices the estimate must (a) never exceed
//! the exact `‖A‖₁·‖A⁻¹‖₁` (Hager's ascent is a lower bound by
//! construction), (b) stay within a known factor of it — for n ≤ 6 the
//! ascent is near-exact, so a generous ×10 slack pins real quality
//! without flaking — and (c) be bit-identical no matter how many
//! executor threads are configured, because the solver observatory
//! folds these estimates into renders that CI diffs across `--threads`.

use pnc_linalg::cond::{cond1_estimate, invnorm1_estimate, norm1};
use pnc_linalg::decomp::Lu;
use pnc_linalg::Matrix;
use pnc_parallel::Executor;
use proptest::prelude::*;

/// Deterministic pseudo-random entry in [-1, 1] from a seed and index
/// (SplitMix64 finalizer — same generator family the workspace uses
/// for seed derivation).
fn entry(seed: u64, index: u64) -> f64 {
    let mut z = seed
        .wrapping_add(index.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    (z >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0
}

/// Random dense matrix with a boosted diagonal so the factorization
/// is well-posed (the estimator's behaviour on near-singular input is
/// covered by unit tests; here we pin the bound on the bulk).
fn random_matrix(seed: u64, n: usize) -> Matrix {
    Matrix::from_fn(n, n, |i, j| {
        let v = entry(seed, (i * n + j) as u64);
        if i == j {
            v + 2.0 * (n as f64)
        } else {
            v
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn estimate_is_a_lower_bound_within_the_hager_slack(
        seed in 0u64..100_000,
        n in 1usize..7,
    ) {
        let a = random_matrix(seed, n);
        let lu = Lu::new(&a).unwrap();
        let est = cond1_estimate(&a, &lu).unwrap();
        let exact = norm1(&a) * norm1(&lu.inverse().unwrap());
        // κ₁ ≥ 1 mathematically; the estimate may round a hair below.
        prop_assert!(
            est.is_finite() && est >= 1.0 - 1e-9,
            "κ₁ estimate {est} out of range"
        );
        // Lower bound (tiny relative slack for the float arithmetic).
        prop_assert!(est <= exact * (1.0 + 1e-9), "est {est} exceeds exact {exact}");
        // Quality: within ×10 of exact on small dense matrices.
        prop_assert!(est * 10.0 >= exact, "est {est} too far below exact {exact}");
    }

    #[test]
    fn estimate_is_identical_for_any_thread_count(
        seed in 0u64..100_000,
        n in 1usize..7,
    ) {
        let a = random_matrix(seed, n);
        let reference = {
            let lu = Lu::new(&a).unwrap();
            invnorm1_estimate(&lu).unwrap()
        };
        for threads in [1usize, 2, 4] {
            let ex = Executor::new(threads);
            let work: Vec<usize> = (0..4).collect();
            let results = ex.par_map(&work, |_, _| {
                let lu = Lu::new(&a).unwrap();
                invnorm1_estimate(&lu).unwrap()
            });
            for r in results {
                prop_assert!(
                    r.to_bits() == reference.to_bits(),
                    "threads={threads}: {r} != {reference}"
                );
            }
        }
    }
}
