//! Seeded random matrix constructors.
//!
//! Every stochastic component in the workspace (parameter initialization,
//! dataset synthesis, penalty-method seeds) draws from a seeded
//! [`rand::rngs::StdRng`] so that experiments are bit-reproducible.

use crate::Matrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Creates a seeded RNG. Thin wrapper so callers don't need `rand`
/// imports for the common case.
pub fn seeded(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Samples a standard-normal value via the Box–Muller transform.
///
/// We use Box–Muller rather than pulling in `rand_distr`: the workspace
/// keeps external dependencies to `rand` + dev-deps only (see DESIGN.md §6).
pub fn next_normal(rng: &mut impl Rng) -> f64 {
    loop {
        let u1: f64 = rng.gen();
        let u2: f64 = rng.gen();
        if u1 > f64::MIN_POSITIVE {
            return (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        }
    }
}

/// `rows × cols` matrix of i.i.d. `N(mean, std²)` samples.
pub fn normal_matrix(rng: &mut impl Rng, rows: usize, cols: usize, mean: f64, std: f64) -> Matrix {
    Matrix::from_fn(rows, cols, |_, _| mean + std * next_normal(rng))
}

/// `rows × cols` matrix of i.i.d. `U[lo, hi)` samples.
pub fn uniform_matrix(rng: &mut impl Rng, rows: usize, cols: usize, lo: f64, hi: f64) -> Matrix {
    Matrix::from_fn(rows, cols, |_, _| rng.gen_range(lo..hi))
}

/// Kaiming/He-style initialization for a layer with `fan_in` inputs:
/// `N(0, 2 / fan_in)`. Used to initialize surrogate MLPs.
pub fn he_init(rng: &mut impl Rng, rows: usize, cols: usize, fan_in: usize) -> Matrix {
    let std = (2.0 / fan_in as f64).sqrt();
    normal_matrix(rng, rows, cols, 0.0, std)
}

/// Fisher–Yates shuffle of `0..n`, returning the permutation.
pub fn permutation(rng: &mut impl Rng, n: usize) -> Vec<usize> {
    let mut p: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        let j = rng.gen_range(0..=i);
        p.swap(i, j);
    }
    p
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_is_reproducible() {
        let a = normal_matrix(&mut seeded(7), 4, 4, 0.0, 1.0);
        let b = normal_matrix(&mut seeded(7), 4, 4, 0.0, 1.0);
        assert_eq!(a, b);
        let c = normal_matrix(&mut seeded(8), 4, 4, 0.0, 1.0);
        assert_ne!(a, c);
    }

    #[test]
    fn normal_moments_are_sane() {
        let mut rng = seeded(123);
        let m = normal_matrix(&mut rng, 200, 200, 3.0, 2.0);
        let mean = m.mean();
        let var = m.map(|x| (x - mean) * (x - mean)).mean();
        assert!((mean - 3.0).abs() < 0.05, "mean {mean}");
        assert!((var - 4.0).abs() < 0.2, "var {var}");
    }

    #[test]
    fn uniform_respects_bounds() {
        let mut rng = seeded(5);
        let m = uniform_matrix(&mut rng, 50, 50, -2.0, 3.0);
        assert!(m.min() >= -2.0 && m.max() < 3.0);
        // Mean of U[-2,3) is 0.5.
        assert!((m.mean() - 0.5).abs() < 0.1);
    }

    #[test]
    fn he_init_variance_scales_with_fan_in() {
        let mut rng = seeded(11);
        let m = he_init(&mut rng, 100, 100, 50);
        let var = m.map(|x| x * x).mean();
        assert!((var - 2.0 / 50.0).abs() < 0.01, "var {var}");
    }

    #[test]
    fn permutation_is_a_bijection() {
        let mut rng = seeded(2);
        let p = permutation(&mut rng, 100);
        let mut seen = [false; 100];
        for &i in &p {
            assert!(!seen[i]);
            seen[i] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn permutation_is_not_identity_whp() {
        let mut rng = seeded(3);
        let p = permutation(&mut rng, 64);
        assert!(p.iter().enumerate().any(|(i, &v)| i != v));
    }
}
