//! Normalization and summary statistics for surrogate training data.
//!
//! The paper applies "data normalization and hyperparameter tuning"
//! when fitting the surrogate power MLPs (Sec. III-A). [`Standardizer`]
//! and [`MinMaxScaler`] implement the two classic schemes; both remember
//! their fitted statistics so the same transform can be applied at
//! inference time and inverted for reporting.

use crate::Matrix;

/// Per-column z-score normalization: `x' = (x − μ) / σ`.
#[derive(Debug, Clone, PartialEq)]
pub struct Standardizer {
    mean: Vec<f64>,
    std: Vec<f64>,
}

impl Standardizer {
    /// Fits column means and standard deviations. Columns with zero
    /// variance get `σ = 1` so the transform is a pure shift.
    pub fn fit(data: &Matrix) -> Self {
        let n = data.rows().max(1) as f64;
        let mut mean = vec![0.0; data.cols()];
        for i in 0..data.rows() {
            for (j, m) in mean.iter_mut().enumerate() {
                *m += data[(i, j)];
            }
        }
        for m in &mut mean {
            *m /= n;
        }
        let mut std = vec![0.0; data.cols()];
        for i in 0..data.rows() {
            for (j, s) in std.iter_mut().enumerate() {
                let d = data[(i, j)] - mean[j];
                *s += d * d;
            }
        }
        for s in &mut std {
            *s = (*s / n).sqrt();
            if *s < 1e-12 {
                *s = 1.0;
            }
        }
        Standardizer { mean, std }
    }

    /// Rebuilds a standardizer from previously fitted statistics (used
    /// by surrogate-model persistence).
    ///
    /// # Panics
    ///
    /// Panics when the vectors have different lengths.
    pub fn from_parts(mean: Vec<f64>, std: Vec<f64>) -> Self {
        assert_eq!(mean.len(), std.len(), "from_parts: length mismatch");
        Standardizer { mean, std }
    }

    /// Column means found by [`Standardizer::fit`].
    pub fn mean(&self) -> &[f64] {
        &self.mean
    }

    /// Column standard deviations found by [`Standardizer::fit`].
    pub fn std(&self) -> &[f64] {
        &self.std
    }

    /// Applies the fitted transform.
    ///
    /// # Panics
    ///
    /// Panics if `data` has a different column count than the fit data.
    pub fn transform(&self, data: &Matrix) -> Matrix {
        assert_eq!(data.cols(), self.mean.len(), "transform: column mismatch");
        Matrix::from_fn(data.rows(), data.cols(), |i, j| {
            (data[(i, j)] - self.mean[j]) / self.std[j]
        })
    }

    /// Inverts the fitted transform.
    ///
    /// # Panics
    ///
    /// Panics if `data` has a different column count than the fit data.
    pub fn inverse_transform(&self, data: &Matrix) -> Matrix {
        assert_eq!(data.cols(), self.mean.len(), "inverse: column mismatch");
        Matrix::from_fn(data.rows(), data.cols(), |i, j| {
            data[(i, j)] * self.std[j] + self.mean[j]
        })
    }
}

/// Per-column min–max scaling onto `[0, 1]`.
#[derive(Debug, Clone, PartialEq)]
pub struct MinMaxScaler {
    min: Vec<f64>,
    range: Vec<f64>,
}

impl MinMaxScaler {
    /// Fits per-column minima and ranges. Constant columns get range 1.
    pub fn fit(data: &Matrix) -> Self {
        let cols = data.cols();
        let mut min = vec![f64::INFINITY; cols];
        let mut max = vec![f64::NEG_INFINITY; cols];
        for i in 0..data.rows() {
            for j in 0..cols {
                let v = data[(i, j)];
                min[j] = min[j].min(v);
                max[j] = max[j].max(v);
            }
        }
        let range = min
            .iter()
            .zip(&max)
            .map(|(&lo, &hi)| if hi - lo < 1e-12 { 1.0 } else { hi - lo })
            .collect();
        MinMaxScaler { min, range }
    }

    /// Applies the fitted scaling.
    ///
    /// # Panics
    ///
    /// Panics on column-count mismatch.
    pub fn transform(&self, data: &Matrix) -> Matrix {
        assert_eq!(data.cols(), self.min.len(), "transform: column mismatch");
        Matrix::from_fn(data.rows(), data.cols(), |i, j| {
            (data[(i, j)] - self.min[j]) / self.range[j]
        })
    }

    /// Inverts the fitted scaling.
    ///
    /// # Panics
    ///
    /// Panics on column-count mismatch.
    pub fn inverse_transform(&self, data: &Matrix) -> Matrix {
        assert_eq!(data.cols(), self.min.len(), "inverse: column mismatch");
        Matrix::from_fn(data.rows(), data.cols(), |i, j| {
            data[(i, j)] * self.range[j] + self.min[j]
        })
    }
}

/// Mean of a slice (`NaN` when empty).
pub fn mean(xs: &[f64]) -> f64 {
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Population standard deviation of a slice.
pub fn std_dev(xs: &[f64]) -> f64 {
    let m = mean(xs);
    (xs.iter().map(|&x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64).sqrt()
}

/// Pearson correlation coefficient between two equal-length slices.
///
/// # Panics
///
/// Panics when lengths differ or are zero.
pub fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len(), "pearson: length mismatch");
    assert!(!xs.is_empty(), "pearson: empty input");
    let mx = mean(xs);
    let my = mean(ys);
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for (&x, &y) in xs.iter().zip(ys) {
        cov += (x - mx) * (y - my);
        vx += (x - mx) * (x - mx);
        vy += (y - my) * (y - my);
    }
    cov / (vx.sqrt() * vy.sqrt()).max(1e-300)
}

/// Coefficient of determination R² of predictions against targets.
///
/// # Panics
///
/// Panics when lengths differ or are zero.
pub fn r_squared(targets: &[f64], predictions: &[f64]) -> f64 {
    assert_eq!(targets.len(), predictions.len(), "r2: length mismatch");
    assert!(!targets.is_empty(), "r2: empty input");
    let m = mean(targets);
    let ss_res: f64 = targets
        .iter()
        .zip(predictions)
        .map(|(&t, &p)| (t - p) * (t - p))
        .sum();
    let ss_tot: f64 = targets.iter().map(|&t| (t - m) * (t - m)).sum();
    1.0 - ss_res / ss_tot.max(1e-300)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standardizer_roundtrip() {
        let m = Matrix::from_rows(&[&[1.0, 100.0], &[2.0, 200.0], &[3.0, 300.0]]);
        let s = Standardizer::fit(&m);
        let t = s.transform(&m);
        // Each column now has zero mean, unit variance.
        for j in 0..2 {
            let col = t.col_vec(j);
            assert!(mean(&col).abs() < 1e-12);
            assert!((std_dev(&col) - 1.0).abs() < 1e-12);
        }
        assert!(s.inverse_transform(&t).approx_eq(&m, 1e-9));
    }

    #[test]
    fn standardizer_constant_column() {
        let m = Matrix::from_rows(&[&[5.0], &[5.0], &[5.0]]);
        let s = Standardizer::fit(&m);
        let t = s.transform(&m);
        // lint: allow(L002, reason = "a constant column standardizes to bit-exact zeros")
        assert!(t.as_slice().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn minmax_roundtrip() {
        let m = Matrix::from_rows(&[&[-1.0, 10.0], &[0.0, 20.0], &[3.0, 15.0]]);
        let s = MinMaxScaler::fit(&m);
        let t = s.transform(&m);
        assert!(t.min() >= 0.0 && t.max() <= 1.0);
        assert_eq!(t.col_vec(0)[0], 0.0); // min maps to 0
        assert_eq!(t.col_vec(0)[2], 1.0); // max maps to 1
        assert!(s.inverse_transform(&t).approx_eq(&m, 1e-12));
    }

    #[test]
    fn pearson_perfect_correlation() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [2.0, 4.0, 6.0, 8.0];
        assert!((pearson(&xs, &ys) - 1.0).abs() < 1e-12);
        let neg: Vec<f64> = ys.iter().map(|y| -y).collect();
        assert!((pearson(&xs, &neg) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn r_squared_perfect_and_mean_predictor() {
        let t = [1.0, 2.0, 3.0];
        assert!((r_squared(&t, &t) - 1.0).abs() < 1e-12);
        let mean_pred = [2.0, 2.0, 2.0];
        assert!(r_squared(&t, &mean_pred).abs() < 1e-12);
    }

    #[test]
    fn scalar_stats() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&xs) - 5.0).abs() < 1e-12);
        assert!((std_dev(&xs) - 2.0).abs() < 1e-12);
    }
}
