//! Row-major dense `f64` matrix.
//!
//! [`Matrix`] is the single numeric container used throughout the pNC
//! workspace: autodiff tensors, SPICE Jacobians, surrogate training data
//! and crossbar conductance matrices are all `Matrix` values. The type
//! favours clarity and predictable performance over genericity: it is
//! always `f64`, always row-major, and all shape errors are either
//! `Result`s (for the `try_*` API) or panics with precise messages (for
//! the infallible convenience API used in hot internal code where shapes
//! are invariants).

use crate::LinalgError;
use pnc_parallel::{Executor, ExecutorHandle};
use std::fmt;
use std::ops::{Add, AddAssign, Index, IndexMut, Mul, Neg, Sub};

/// Products below this flop count (`m · k · n`) always run
/// sequentially: the per-call scoped-spawn overhead of the executor
/// (~tens of µs) would swamp the arithmetic, and the training hot loop
/// multiplies many small per-layer matrices.
const PAR_MIN_FLOPS: usize = 128 * 1024;

/// Row blocks handed out per worker thread. More blocks than threads
/// lets the atomic work queue even out rows of unequal cost (the
/// sparse-skip fast path makes pruned rows cheaper); block size only
/// changes the partition, never the per-row arithmetic, so results are
/// bit-identical for any value.
const PAR_BLOCKS_PER_THREAD: usize = 4;

/// The process-wide executor (respects `--threads` / `PNC_THREADS`).
fn par_executor() -> Executor {
    ExecutorHandle::get()
}

/// A dense, row-major matrix of `f64` values.
///
/// # Examples
///
/// ```
/// use pnc_linalg::Matrix;
///
/// let m = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
/// assert_eq!(m.shape(), (2, 3));
/// assert_eq!(m[(1, 2)], 6.0);
/// assert_eq!(m.transpose().shape(), (3, 2));
/// ```
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    // ------------------------------------------------------------------
    // Constructors
    // ------------------------------------------------------------------

    /// Creates a `rows × cols` matrix filled with `value`.
    pub fn filled(rows: usize, cols: usize, value: f64) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Creates a `rows × cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self::filled(rows, cols, 0.0)
    }

    /// Creates a `rows × cols` matrix of ones.
    pub fn ones(rows: usize, cols: usize) -> Self {
        Self::filled(rows, cols, 1.0)
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m.data[i * n + i] = 1.0;
        }
        m
    }

    /// Creates a matrix from a flat row-major vector.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "Matrix::from_vec: data length {} does not match {rows}x{cols}",
            data.len()
        );
        Matrix { rows, cols, data }
    }

    /// Creates a matrix from row slices.
    ///
    /// # Panics
    ///
    /// Panics if the rows have differing lengths or `rows` is empty.
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        assert!(!rows.is_empty(), "Matrix::from_rows: no rows given");
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for (i, r) in rows.iter().enumerate() {
            assert_eq!(
                r.len(),
                cols,
                "Matrix::from_rows: row {i} has length {} but row 0 has length {cols}",
                r.len()
            );
            data.extend_from_slice(r);
        }
        Matrix {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Creates a single-column matrix from a slice.
    pub fn column(values: &[f64]) -> Self {
        Matrix {
            rows: values.len(),
            cols: 1,
            data: values.to_vec(),
        }
    }

    /// Creates a single-row matrix from a slice.
    pub fn row(values: &[f64]) -> Self {
        Matrix {
            rows: 1,
            cols: values.len(),
            data: values.to_vec(),
        }
    }

    /// Creates a matrix by evaluating `f(row, col)` for every element.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Creates a diagonal matrix from the given diagonal entries.
    pub fn diag(values: &[f64]) -> Self {
        let n = values.len();
        let mut m = Self::zeros(n, n);
        for (i, &v) in values.iter().enumerate() {
            m.data[i * n + i] = v;
        }
        m
    }

    // ------------------------------------------------------------------
    // Shape and element access
    // ------------------------------------------------------------------

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the matrix has zero elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the underlying row-major storage.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable view of the underlying row-major storage.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consumes the matrix and returns its row-major storage.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Returns element `(i, j)`, or an error if out of bounds.
    pub fn try_get(&self, i: usize, j: usize) -> Result<f64, LinalgError> {
        if i >= self.rows || j >= self.cols {
            return Err(LinalgError::IndexOutOfBounds {
                index: (i, j),
                shape: self.shape(),
            });
        }
        Ok(self.data[i * self.cols + j])
    }

    /// Returns row `i` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.rows()`.
    pub fn row_slice(&self, i: usize) -> &[f64] {
        assert!(
            i < self.rows,
            "row {i} out of bounds for {} rows",
            self.rows
        );
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Returns a mutable slice of row `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.rows()`.
    pub fn row_slice_mut(&mut self, i: usize) -> &mut [f64] {
        assert!(
            i < self.rows,
            "row {i} out of bounds for {} rows",
            self.rows
        );
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Returns column `j` as a freshly allocated vector.
    ///
    /// # Panics
    ///
    /// Panics if `j >= self.cols()`.
    pub fn col_vec(&self, j: usize) -> Vec<f64> {
        assert!(
            j < self.cols,
            "col {j} out of bounds for {} cols",
            self.cols
        );
        (0..self.rows)
            .map(|i| self.data[i * self.cols + j])
            .collect()
    }

    /// Iterates over rows as slices.
    pub fn row_iter(&self) -> impl Iterator<Item = &[f64]> {
        self.data.chunks_exact(self.cols.max(1))
    }

    // ------------------------------------------------------------------
    // Structural operations
    // ------------------------------------------------------------------

    /// Returns the transpose.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out.data[j * self.rows + i] = self.data[i * self.cols + j];
            }
        }
        out
    }

    /// Horizontally concatenates `self` with `other` (same row count).
    pub fn hstack(&self, other: &Matrix) -> Result<Matrix, LinalgError> {
        if self.rows != other.rows {
            return Err(LinalgError::ShapeMismatch {
                op: "hstack",
                lhs: self.shape(),
                rhs: other.shape(),
            });
        }
        let mut out = Matrix::zeros(self.rows, self.cols + other.cols);
        for i in 0..self.rows {
            out.row_slice_mut(i)[..self.cols].copy_from_slice(self.row_slice(i));
            out.row_slice_mut(i)[self.cols..].copy_from_slice(other.row_slice(i));
        }
        Ok(out)
    }

    /// Vertically concatenates `self` with `other` (same column count).
    pub fn vstack(&self, other: &Matrix) -> Result<Matrix, LinalgError> {
        if self.cols != other.cols {
            return Err(LinalgError::ShapeMismatch {
                op: "vstack",
                lhs: self.shape(),
                rhs: other.shape(),
            });
        }
        let mut data = self.data.clone();
        data.extend_from_slice(&other.data);
        Ok(Matrix {
            rows: self.rows + other.rows,
            cols: self.cols,
            data,
        })
    }

    /// Returns the sub-matrix of rows `r0..r1` and columns `c0..c1`.
    ///
    /// # Panics
    ///
    /// Panics if the ranges exceed the matrix bounds or are reversed.
    pub fn submatrix(&self, r0: usize, r1: usize, c0: usize, c1: usize) -> Matrix {
        assert!(r0 <= r1 && r1 <= self.rows, "bad row range {r0}..{r1}");
        assert!(c0 <= c1 && c1 <= self.cols, "bad col range {c0}..{c1}");
        Matrix::from_fn(r1 - r0, c1 - c0, |i, j| {
            self.data[(r0 + i) * self.cols + c0 + j]
        })
    }

    /// Returns a matrix containing the selected rows, in order.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range.
    pub fn select_rows(&self, indices: &[usize]) -> Matrix {
        let mut out = Matrix::zeros(indices.len(), self.cols);
        for (k, &i) in indices.iter().enumerate() {
            out.row_slice_mut(k).copy_from_slice(self.row_slice(i));
        }
        out
    }

    /// Reshapes into `(rows, cols)` without copying semantics change.
    ///
    /// # Panics
    ///
    /// Panics if the element count differs.
    pub fn reshape(mut self, rows: usize, cols: usize) -> Matrix {
        assert_eq!(
            self.data.len(),
            rows * cols,
            "reshape: cannot view {} elements as {rows}x{cols}",
            self.data.len()
        );
        self.rows = rows;
        self.cols = cols;
        self
    }

    // ------------------------------------------------------------------
    // Element-wise operations
    // ------------------------------------------------------------------

    /// Applies `f` to every element, returning a new matrix.
    pub fn map(&self, f: impl Fn(f64) -> f64) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace(&mut self, f: impl Fn(f64) -> f64) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// Combines two equal-shaped matrices element-wise with `f`.
    pub fn zip_map(
        &self,
        other: &Matrix,
        f: impl Fn(f64, f64) -> f64,
    ) -> Result<Matrix, LinalgError> {
        if self.shape() != other.shape() {
            return Err(LinalgError::ShapeMismatch {
                op: "zip_map",
                lhs: self.shape(),
                rhs: other.shape(),
            });
        }
        Ok(Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(&a, &b)| f(a, b))
                .collect(),
        })
    }

    /// Element-wise (Hadamard) product.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch; use [`Matrix::zip_map`] for a fallible
    /// variant.
    pub fn hadamard(&self, other: &Matrix) -> Matrix {
        self.zip_map(other, |a, b| a * b)
            // lint: allow(L001, reason = "documented panic API with a fallible variant alongside")
            .expect("hadamard: shape mismatch")
    }

    /// Element-wise division.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn elem_div(&self, other: &Matrix) -> Matrix {
        self.zip_map(other, |a, b| a / b)
            // lint: allow(L001, reason = "documented panic API with a fallible variant alongside")
            .expect("elem_div: shape mismatch")
    }

    /// Multiplies every element by `s`.
    pub fn scale(&self, s: f64) -> Matrix {
        self.map(|x| x * s)
    }

    /// Adds `s` to every element.
    pub fn shift(&self, s: f64) -> Matrix {
        self.map(|x| x + s)
    }

    // ------------------------------------------------------------------
    // Broadcasting helpers
    // ------------------------------------------------------------------

    /// Adds a `1 × cols` row vector to every row.
    pub fn add_row_broadcast(&self, row: &Matrix) -> Result<Matrix, LinalgError> {
        if row.rows != 1 || row.cols != self.cols {
            return Err(LinalgError::ShapeMismatch {
                op: "add_row_broadcast",
                lhs: self.shape(),
                rhs: row.shape(),
            });
        }
        let mut out = self.clone();
        for i in 0..out.rows {
            for j in 0..out.cols {
                out.data[i * out.cols + j] += row.data[j];
            }
        }
        Ok(out)
    }

    /// Multiplies every row element-wise by a `1 × cols` row vector.
    pub fn mul_row_broadcast(&self, row: &Matrix) -> Result<Matrix, LinalgError> {
        if row.rows != 1 || row.cols != self.cols {
            return Err(LinalgError::ShapeMismatch {
                op: "mul_row_broadcast",
                lhs: self.shape(),
                rhs: row.shape(),
            });
        }
        let mut out = self.clone();
        for i in 0..out.rows {
            for j in 0..out.cols {
                out.data[i * out.cols + j] *= row.data[j];
            }
        }
        Ok(out)
    }

    /// Divides every row element-wise by a `1 × cols` row vector.
    pub fn zip_row_div(&self, row: &Matrix) -> Result<Matrix, LinalgError> {
        if row.rows != 1 || row.cols != self.cols {
            return Err(LinalgError::ShapeMismatch {
                op: "zip_row_div",
                lhs: self.shape(),
                rhs: row.shape(),
            });
        }
        let mut out = self.clone();
        for i in 0..out.rows {
            for j in 0..out.cols {
                out.data[i * out.cols + j] /= row.data[j];
            }
        }
        Ok(out)
    }

    /// Divides every row element-wise by a `rows × 1` column vector.
    pub fn div_col_broadcast(&self, col: &Matrix) -> Result<Matrix, LinalgError> {
        if col.cols != 1 || col.rows != self.rows {
            return Err(LinalgError::ShapeMismatch {
                op: "div_col_broadcast",
                lhs: self.shape(),
                rhs: col.shape(),
            });
        }
        let mut out = self.clone();
        for i in 0..out.rows {
            let d = col.data[i];
            for j in 0..out.cols {
                out.data[i * out.cols + j] /= d;
            }
        }
        Ok(out)
    }

    // ------------------------------------------------------------------
    // Reductions
    // ------------------------------------------------------------------

    /// Sum of all elements.
    pub fn sum(&self) -> f64 {
        self.data.iter().sum()
    }

    /// Mean of all elements (`NaN` for an empty matrix).
    pub fn mean(&self) -> f64 {
        self.sum() / self.data.len() as f64
    }

    /// Maximum element (`-inf` for an empty matrix).
    pub fn max(&self) -> f64 {
        self.data.iter().copied().fold(f64::NEG_INFINITY, f64::max)
    }

    /// Minimum element (`+inf` for an empty matrix).
    pub fn min(&self) -> f64 {
        self.data.iter().copied().fold(f64::INFINITY, f64::min)
    }

    /// Column sums as a `1 × cols` matrix.
    pub fn sum_rows(&self) -> Matrix {
        let mut out = Matrix::zeros(1, self.cols);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out.data[j] += self.data[i * self.cols + j];
            }
        }
        out
    }

    /// Row sums as a `rows × 1` matrix.
    pub fn sum_cols(&self) -> Matrix {
        let mut out = Matrix::zeros(self.rows, 1);
        for i in 0..self.rows {
            out.data[i] = self.row_slice(i).iter().sum();
        }
        out
    }

    /// Row-wise maximum as a `rows × 1` matrix.
    pub fn row_max(&self) -> Matrix {
        let mut out = Matrix::zeros(self.rows, 1);
        for i in 0..self.rows {
            out.data[i] = self
                .row_slice(i)
                .iter()
                .copied()
                .fold(f64::NEG_INFINITY, f64::max);
        }
        out
    }

    /// Index of the maximum element in each row.
    pub fn row_argmax(&self) -> Vec<usize> {
        (0..self.rows)
            .map(|i| {
                let r = self.row_slice(i);
                let mut best = 0usize;
                for (j, &v) in r.iter().enumerate() {
                    if v > r[best] {
                        best = j;
                    }
                }
                best
            })
            .collect()
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|&x| x * x).sum::<f64>().sqrt()
    }

    /// Maximum absolute element.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0, |m, &x| m.max(x.abs()))
    }

    // ------------------------------------------------------------------
    // Matrix multiplication and linear maps
    // ------------------------------------------------------------------

    /// Matrix product `self · other`.
    ///
    /// # Panics
    ///
    /// Panics if inner dimensions disagree; use [`Matrix::try_matmul`]
    /// for a fallible variant.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        // lint: allow(L001, reason = "documented panic API with a fallible variant alongside")
        self.try_matmul(other).expect("matmul: shape mismatch")
    }

    /// Matrix product `self · other`, returning an error on mismatch.
    pub fn try_matmul(&self, other: &Matrix) -> Result<Matrix, LinalgError> {
        if self.cols != other.rows {
            return Err(LinalgError::ShapeMismatch {
                op: "matmul",
                lhs: self.shape(),
                rhs: other.shape(),
            });
        }
        let (m, k, n) = (self.rows, self.cols, other.cols);
        let mut out = Matrix::zeros(m, n);
        // ikj loop order: the inner loop walks both `other` and `out`
        // contiguously, which matters for the full-batch training loops.
        // Each output row depends only on one row of `self` plus all of
        // `other`, so rows are computed independently — the row kernel
        // below runs either sequentially or over row blocks, producing
        // bit-identical results either way.
        let fill_row = |i: usize, crow: &mut [f64]| {
            for p in 0..k {
                let a = self.data[i * k + p];
                // lint: allow(L002, reason = "sparse-skip fast path: only a bit-exact zero may skip the accumulation")
                if a == 0.0 {
                    continue;
                }
                let orow = &other.data[p * n..(p + 1) * n];
                for j in 0..n {
                    crow[j] += a * orow[j];
                }
            }
        };
        let ex = par_executor();
        if ex.threads() > 1 && m >= 2 && m * k * n >= PAR_MIN_FLOPS {
            let rows_per_block = m.div_ceil((ex.threads() * PAR_BLOCKS_PER_THREAD).min(m));
            ex.par_for_chunks(&mut out.data, rows_per_block * n, |block, chunk| {
                for (r, crow) in chunk.chunks_mut(n).enumerate() {
                    fill_row(block * rows_per_block + r, crow);
                }
            });
        } else {
            for (i, crow) in out.data.chunks_mut(n).enumerate() {
                fill_row(i, crow);
            }
        }
        Ok(out)
    }

    /// Computes `selfᵀ · other` without materializing the transpose.
    pub fn t_matmul(&self, other: &Matrix) -> Result<Matrix, LinalgError> {
        if self.rows != other.rows {
            return Err(LinalgError::ShapeMismatch {
                op: "t_matmul",
                lhs: self.shape(),
                rhs: other.shape(),
            });
        }
        let (k, m, n) = (self.rows, self.cols, other.cols);
        let mut out = Matrix::zeros(m, n);
        for p in 0..k {
            for i in 0..m {
                let a = self.data[p * m + i];
                // lint: allow(L002, reason = "sparse-skip fast path: only a bit-exact zero may skip the accumulation")
                if a == 0.0 {
                    continue;
                }
                let orow = &other.data[p * n..(p + 1) * n];
                let crow = &mut out.data[i * n..(i + 1) * n];
                for j in 0..n {
                    crow[j] += a * orow[j];
                }
            }
        }
        Ok(out)
    }

    /// Computes `self · otherᵀ` without materializing the transpose.
    pub fn matmul_t(&self, other: &Matrix) -> Result<Matrix, LinalgError> {
        if self.cols != other.cols {
            return Err(LinalgError::ShapeMismatch {
                op: "matmul_t",
                lhs: self.shape(),
                rhs: other.shape(),
            });
        }
        let (m, k, n) = (self.rows, self.cols, other.rows);
        let mut out = Matrix::zeros(m, n);
        // Row i of the product is the dot of `self` row i with every
        // row of `other` — row-independent, so it parallelizes over row
        // blocks exactly like [`Matrix::try_matmul`].
        let fill_row = |i: usize, crow: &mut [f64]| {
            let arow = &self.data[i * k..(i + 1) * k];
            for (j, slot) in crow.iter_mut().enumerate() {
                let brow = &other.data[j * k..(j + 1) * k];
                let mut acc = 0.0;
                for p in 0..k {
                    acc += arow[p] * brow[p];
                }
                *slot = acc;
            }
        };
        let ex = par_executor();
        if ex.threads() > 1 && m >= 2 && m * k * n >= PAR_MIN_FLOPS {
            let rows_per_block = m.div_ceil((ex.threads() * PAR_BLOCKS_PER_THREAD).min(m));
            ex.par_for_chunks(&mut out.data, rows_per_block * n, |block, chunk| {
                for (r, crow) in chunk.chunks_mut(n).enumerate() {
                    fill_row(block * rows_per_block + r, crow);
                }
            });
        } else {
            for (i, crow) in out.data.chunks_mut(n).enumerate() {
                fill_row(i, crow);
            }
        }
        Ok(out)
    }

    /// Matrix–vector product `self · v`.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != self.cols()`.
    pub fn matvec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(v.len(), self.cols, "matvec: length mismatch");
        (0..self.rows)
            .map(|i| self.row_slice(i).iter().zip(v).map(|(&a, &b)| a * b).sum())
            .collect()
    }

    /// Returns `true` if every element is finite.
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }

    /// Returns `true` when `self` and `other` agree element-wise within
    /// an absolute tolerance `tol`.
    pub fn approx_eq(&self, other: &Matrix, tol: f64) -> bool {
        self.shape() == other.shape()
            && self
                .data
                .iter()
                .zip(&other.data)
                .all(|(&a, &b)| (a - b).abs() <= tol)
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;

    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        assert!(
            i < self.rows && j < self.cols,
            "index ({i}, {j}) out of bounds for shape ({}, {})",
            self.rows,
            self.cols
        );
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        assert!(
            i < self.rows && j < self.cols,
            "index ({i}, {j}) out of bounds for shape ({}, {})",
            self.rows,
            self.cols
        );
        &mut self.data[i * self.cols + j]
    }
}

impl Add<&Matrix> for &Matrix {
    type Output = Matrix;

    fn add(self, rhs: &Matrix) -> Matrix {
        self.zip_map(rhs, |a, b| a + b)
            // lint: allow(L001, reason = "operator traits cannot return Result; shape mismatch is a documented panic")
            .expect("add: shape mismatch")
    }
}

impl Sub<&Matrix> for &Matrix {
    type Output = Matrix;

    fn sub(self, rhs: &Matrix) -> Matrix {
        self.zip_map(rhs, |a, b| a - b)
            // lint: allow(L001, reason = "operator traits cannot return Result; shape mismatch is a documented panic")
            .expect("sub: shape mismatch")
    }
}

impl Mul<f64> for &Matrix {
    type Output = Matrix;

    fn mul(self, s: f64) -> Matrix {
        self.scale(s)
    }
}

impl Neg for &Matrix {
    type Output = Matrix;

    fn neg(self) -> Matrix {
        self.scale(-1.0)
    }
}

impl AddAssign<&Matrix> for Matrix {
    fn add_assign(&mut self, rhs: &Matrix) {
        assert_eq!(self.shape(), rhs.shape(), "add_assign: shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(&rhs.data) {
            *a += b;
        }
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        let max_rows = 8;
        for i in 0..self.rows.min(max_rows) {
            write!(f, "  [")?;
            for j in 0..self.cols.min(10) {
                if j > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{:.4}", self.data[i * self.cols + j])?;
            }
            if self.cols > 10 {
                write!(f, ", …")?;
            }
            writeln!(f, "]")?;
        }
        if self.rows > max_rows {
            writeln!(f, "  …")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn abcd() -> Matrix {
        Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]])
    }

    #[test]
    fn construct_and_index() {
        let m = abcd();
        assert_eq!(m.shape(), (2, 2));
        assert_eq!(m[(0, 1)], 2.0);
        assert_eq!(m.try_get(1, 0), Ok(3.0));
        assert!(matches!(
            m.try_get(2, 0),
            Err(LinalgError::IndexOutOfBounds { .. })
        ));
    }

    #[test]
    fn identity_is_matmul_neutral() {
        let m = abcd();
        assert_eq!(m.matmul(&Matrix::identity(2)), m);
        assert_eq!(Matrix::identity(2).matmul(&m), m);
    }

    #[test]
    fn matmul_known_product() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let b = Matrix::from_rows(&[&[7.0, 8.0], &[9.0, 10.0], &[11.0, 12.0]]);
        let c = a.matmul(&b);
        assert_eq!(c, Matrix::from_rows(&[&[58.0, 64.0], &[139.0, 154.0]]));
    }

    #[test]
    fn matmul_shape_mismatch_is_error() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        assert!(matches!(
            a.try_matmul(&b),
            Err(LinalgError::ShapeMismatch { op: "matmul", .. })
        ));
    }

    #[test]
    fn large_matmul_is_bit_identical_to_naive_reference() {
        // Big enough (64·80·64 = 327k flops) that the row-blocked
        // parallel path engages whenever the machine has > 1 core; the
        // result must still match the naive triple loop bit for bit.
        let mut rng = crate::rng::seeded(17);
        let a = crate::rng::uniform_matrix(&mut rng, 64, 80, -1.0, 1.0);
        let b = crate::rng::uniform_matrix(&mut rng, 80, 64, -1.0, 1.0);
        let mut naive = Matrix::zeros(64, 64);
        for i in 0..64 {
            for p in 0..80 {
                let v = a[(i, p)];
                for j in 0..64 {
                    naive[(i, j)] += v * b[(p, j)];
                }
            }
        }
        assert_eq!(a.matmul(&b), naive);
        assert_eq!(a.matmul_t(&b.transpose()).unwrap(), a.matmul(&b));
    }

    #[test]
    fn transpose_involution() {
        let m = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(m.transpose().transpose(), m);
        assert_eq!(m.transpose()[(2, 1)], 6.0);
    }

    #[test]
    fn t_matmul_matches_explicit_transpose() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        let b = Matrix::from_rows(&[&[1.0, 0.5, 2.0], &[0.0, 1.0, -1.0], &[2.0, 2.0, 0.25]]);
        let expect = a.transpose().matmul(&b);
        assert!(a.t_matmul(&b).unwrap().approx_eq(&expect, 1e-12));
    }

    #[test]
    fn matmul_t_matches_explicit_transpose() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0], &[9.0, -1.0]]);
        let expect = a.matmul(&b.transpose());
        assert!(a.matmul_t(&b).unwrap().approx_eq(&expect, 1e-12));
    }

    #[test]
    fn broadcast_add_row() {
        let m = abcd();
        let r = Matrix::row(&[10.0, 20.0]);
        let out = m.add_row_broadcast(&r).unwrap();
        assert_eq!(out, Matrix::from_rows(&[&[11.0, 22.0], &[13.0, 24.0]]));
    }

    #[test]
    fn broadcast_div_row() {
        let m = abcd();
        let r = Matrix::row(&[2.0, 4.0]);
        let out = m.zip_row_div(&r).unwrap();
        assert_eq!(out, Matrix::from_rows(&[&[0.5, 0.5], &[1.5, 1.0]]));
        assert!(m.zip_row_div(&Matrix::row(&[1.0])).is_err());
        assert!(m.zip_row_div(&Matrix::column(&[1.0, 2.0])).is_err());
    }

    #[test]
    fn broadcast_div_col() {
        let m = abcd();
        let c = Matrix::column(&[1.0, 2.0]);
        let out = m.div_col_broadcast(&c).unwrap();
        assert_eq!(out, Matrix::from_rows(&[&[1.0, 2.0], &[1.5, 2.0]]));
    }

    #[test]
    fn reductions() {
        let m = abcd();
        assert_eq!(m.sum(), 10.0);
        assert_eq!(m.mean(), 2.5);
        assert_eq!(m.max(), 4.0);
        assert_eq!(m.min(), 1.0);
        assert_eq!(m.sum_rows(), Matrix::row(&[4.0, 6.0]));
        assert_eq!(m.sum_cols(), Matrix::column(&[3.0, 7.0]));
        assert_eq!(m.row_max(), Matrix::column(&[2.0, 4.0]));
        assert_eq!(m.row_argmax(), vec![1, 1]);
    }

    #[test]
    fn stacking() {
        let m = abcd();
        let h = m.hstack(&m).unwrap();
        assert_eq!(h.shape(), (2, 4));
        assert_eq!(h[(1, 3)], 4.0);
        let v = m.vstack(&m).unwrap();
        assert_eq!(v.shape(), (4, 2));
        assert_eq!(v[(3, 1)], 4.0);
        assert!(m.hstack(&Matrix::zeros(3, 1)).is_err());
        assert!(m.vstack(&Matrix::zeros(1, 3)).is_err());
    }

    #[test]
    fn submatrix_and_select() {
        let m = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0], &[7.0, 8.0, 9.0]]);
        let s = m.submatrix(1, 3, 0, 2);
        assert_eq!(s, Matrix::from_rows(&[&[4.0, 5.0], &[7.0, 8.0]]));
        let sel = m.select_rows(&[2, 0]);
        assert_eq!(
            sel,
            Matrix::from_rows(&[&[7.0, 8.0, 9.0], &[1.0, 2.0, 3.0]])
        );
    }

    #[test]
    fn map_and_hadamard() {
        let m = abcd();
        assert_eq!(m.map(|x| x * x).sum(), 30.0);
        assert_eq!(m.hadamard(&m).sum(), 30.0);
        assert_eq!(m.elem_div(&m), Matrix::ones(2, 2));
    }

    #[test]
    fn operators() {
        let m = abcd();
        assert_eq!((&m + &m).sum(), 20.0);
        assert_eq!((&m - &m).sum(), 0.0);
        assert_eq!((&m * 2.0).sum(), 20.0);
        assert_eq!((-&m).sum(), -10.0);
        let mut n = m.clone();
        n += &m;
        assert_eq!(n.sum(), 20.0);
    }

    #[test]
    fn norms_and_finiteness() {
        let m = Matrix::from_rows(&[&[3.0, 4.0]]);
        assert!((m.frobenius_norm() - 5.0).abs() < 1e-12);
        assert_eq!(m.max_abs(), 4.0);
        assert!(m.all_finite());
        let bad = Matrix::from_rows(&[&[f64::NAN]]);
        assert!(!bad.all_finite());
    }

    #[test]
    fn reshape_roundtrip() {
        let m = Matrix::from_rows(&[&[1.0, 2.0, 3.0, 4.0]]);
        let r = m.clone().reshape(2, 2);
        assert_eq!(r, abcd());
    }

    #[test]
    #[should_panic(expected = "reshape")]
    fn reshape_bad_count_panics() {
        let _ = Matrix::zeros(2, 2).reshape(3, 2);
    }

    #[test]
    fn diag_matrix() {
        let d = Matrix::diag(&[1.0, 2.0, 3.0]);
        assert_eq!(d[(1, 1)], 2.0);
        assert_eq!(d[(0, 1)], 0.0);
        assert_eq!(d.sum(), 6.0);
    }

    #[test]
    fn matvec_matches_matmul() {
        let m = abcd();
        let v = vec![5.0, -1.0];
        let out = m.matvec(&v);
        let expect = m.matmul(&Matrix::column(&v));
        assert_eq!(out, expect.into_vec());
    }

    #[test]
    fn debug_format_is_bounded() {
        let big = Matrix::zeros(100, 100);
        let s = format!("{big:?}");
        assert!(s.len() < 2000, "Debug output should be truncated");
    }
}
