//! Sparse LU with pattern reuse for MNA-structured systems.
//!
//! The SPICE characterization workload solves the *same* sparsity
//! pattern thousands of times (BENCH_7 measured fingerprint
//! cardinality exactly 1 per activation kind). This module splits the
//! factorization into the three phases that makes cheap:
//!
//! 1. **Pattern** ([`PatternBuilder`] → [`SparsityPattern`]): the fixed
//!    set of structural nonzeros in compressed-sparse-column form, plus
//!    a slot map so stamping code can write values into preallocated
//!    positions without re-deriving coordinates.
//! 2. **Symbolic analysis** ([`SymbolicLu::analyze`]): a fill-reducing
//!    minimum-degree ordering of the pattern of `A + Aᵀ` and the
//!    permuted column gather lists. Pure function of the pattern —
//!    value-free, immutable, shareable across threads and solves.
//! 3. **Numeric factorization** ([`SparseLu::factorize`]): a
//!    left-looking Gilbert–Peierls factorization with partial pivoting
//!    (depth-first reach over the growing `L` structure, dense
//!    accumulator column). The first factorization freezes the pivot
//!    order and the `L`/`U` fill pattern; subsequent
//!    [`SparseLu::refactorize`] calls re-run only the numeric sweep
//!    over that frozen structure — no ordering, no reach, no pivot
//!    search — with a pivot-health guard that falls back to a full
//!    re-pivoted factorization when values drift too far.
//!
//! Row pivoting is not optional here: MNA branch rows (voltage
//! sources, controlled sources) have structurally zero diagonals, so a
//! diagonal-pivot factorization would fail on every circuit that
//! contains a source.
//!
//! The dense [`crate::decomp::Lu`] remains the fallback backend and the
//! oracle for the property tests in `tests/sparse_props.rs`.

use crate::error::LinalgError;
use crate::matrix::Matrix;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// Absolute pivot magnitude below which a matrix is declared singular
/// (same floor as the dense LU in [`crate::decomp`]).
const PIVOT_FLOOR: f64 = 1e-300;

/// Relative pivot-drift guard for [`SparseLu::refactorize`]: when a
/// frozen pivot shrinks below this fraction of its column's largest
/// magnitude, the numeric-only sweep is abandoned and a full
/// re-pivoted factorization runs instead.
const PIVOT_DRIFT_TOL: f64 = 1e-6;

/// Sentinel for "row not yet chosen as a pivot".
const UNASSIGNED: usize = usize::MAX;

/// Records the structural nonzeros of a square matrix one *stamp slot*
/// at a time. Every [`PatternBuilder::slot`] call reserves one slot;
/// duplicate `(row, col)` coordinates are legal (MNA stamping hits the
/// same cell from several elements) and alias the same stored value
/// position, which accumulates under `+=` stamping.
#[derive(Debug, Clone)]
pub struct PatternBuilder {
    n: usize,
    entries: Vec<(usize, usize)>,
}

impl PatternBuilder {
    /// Starts a pattern for an `n × n` matrix.
    #[must_use]
    pub fn new(n: usize) -> Self {
        PatternBuilder {
            n,
            entries: Vec::new(),
        }
    }

    /// Reserves a stamp slot at `(row, col)` and returns its slot id
    /// (dense in call order: 0, 1, 2, …).
    pub fn slot(&mut self, row: usize, col: usize) -> usize {
        debug_assert!(row < self.n && col < self.n, "slot out of bounds");
        self.entries.push((row, col));
        self.entries.len() - 1
    }

    /// Finalizes the pattern: deduplicates coordinates into CSC storage
    /// and maps every slot to its value position.
    #[must_use]
    pub fn build(self) -> SparsityPattern {
        // (col, row) keys sort into CSC order directly.
        let mut positions: BTreeMap<(usize, usize), usize> = BTreeMap::new();
        for &(r, c) in &self.entries {
            let next = positions.len();
            positions.entry((c, r)).or_insert(next);
        }
        // Re-number in sorted (CSC) order.
        let mut csc_pos: BTreeMap<(usize, usize), usize> = BTreeMap::new();
        for (i, (&key, _)) in positions.iter().enumerate() {
            csc_pos.insert(key, i);
        }
        let nnz = csc_pos.len();
        let mut col_ptr = vec![0usize; self.n + 1];
        let mut row_idx = vec![0usize; nnz];
        for (&(c, r), &p) in &csc_pos {
            col_ptr[c + 1] += 1;
            row_idx[p] = r;
        }
        for c in 0..self.n {
            col_ptr[c + 1] += col_ptr[c];
        }
        let slot_pos = self
            .entries
            .iter()
            .map(|&(r, c)| csc_pos[&(c, r)])
            .collect();
        SparsityPattern {
            n: self.n,
            col_ptr,
            row_idx,
            slot_pos,
        }
    }
}

/// A fixed sparsity pattern in compressed-sparse-column form plus the
/// slot → value-position map produced by [`PatternBuilder`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SparsityPattern {
    n: usize,
    col_ptr: Vec<usize>,
    row_idx: Vec<usize>,
    slot_pos: Vec<usize>,
}

impl SparsityPattern {
    /// Matrix dimension.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Number of structural nonzeros (deduplicated).
    #[must_use]
    pub fn nnz(&self) -> usize {
        self.row_idx.len()
    }

    /// Number of stamp slots reserved while building.
    #[must_use]
    pub fn slots(&self) -> usize {
        self.slot_pos.len()
    }

    /// Value position for `slot` (index into a values slice of length
    /// [`SparsityPattern::nnz`]).
    #[must_use]
    pub fn slot_position(&self, slot: usize) -> usize {
        self.slot_pos[slot]
    }

    /// The full slot → position map, in slot order.
    #[must_use]
    pub fn slot_positions(&self) -> &[usize] {
        &self.slot_pos
    }

    /// A zeroed values buffer sized for this pattern.
    #[must_use]
    pub fn new_values(&self) -> Vec<f64> {
        vec![0.0; self.nnz()]
    }

    /// Materializes `values` as a dense matrix (test/oracle helper).
    #[must_use]
    pub fn to_dense(&self, values: &[f64]) -> Matrix {
        let mut m = Matrix::zeros(self.n, self.n);
        for c in 0..self.n {
            for p in self.col_ptr[c]..self.col_ptr[c + 1] {
                m[(self.row_idx[p], c)] = values[p];
            }
        }
        m
    }
}

/// One-time symbolic analysis of a [`SparsityPattern`]: the
/// fill-reducing ordering and the permuted column gather lists. Pure
/// pattern data — no numeric state — so one `Arc<SymbolicLu>` is
/// safely shared across threads and reused for every solve of the same
/// circuit topology.
#[derive(Debug)]
pub struct SymbolicLu {
    n: usize,
    nnz: usize,
    /// Factor position → original index (symmetric fill-reducing
    /// minimum-degree order on `A + Aᵀ`).
    perm: Vec<usize>,
    /// Column `j` of the permuted matrix: `(permuted row, value
    /// position)` per structural entry.
    acols: Vec<Vec<(usize, usize)>>,
}

impl SymbolicLu {
    /// Analyzes `pattern`: computes the minimum-degree ordering and the
    /// permuted column structure.
    #[must_use]
    pub fn analyze(pattern: &SparsityPattern) -> Self {
        let n = pattern.n;
        let perm = min_degree_order(n, &pattern.col_ptr, &pattern.row_idx);
        let mut inv_perm = vec![0usize; n];
        for (new, &old) in perm.iter().enumerate() {
            inv_perm[old] = new;
        }
        let mut acols = vec![Vec::new(); n];
        for (jp, col) in acols.iter_mut().enumerate() {
            let c = perm[jp];
            for p in pattern.col_ptr[c]..pattern.col_ptr[c + 1] {
                col.push((inv_perm[pattern.row_idx[p]], p));
            }
        }
        SymbolicLu {
            n,
            nnz: pattern.nnz(),
            perm,
            acols,
        }
    }

    /// Matrix dimension.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Structural nonzeros of the analyzed pattern.
    #[must_use]
    pub fn nnz(&self) -> usize {
        self.nnz
    }

    /// The fill-reducing permutation (factor position → original
    /// index). Exposed for tests.
    #[must_use]
    pub fn ordering(&self) -> &[usize] {
        &self.perm
    }
}

/// Symmetric minimum-degree ordering on the pattern of `A + Aᵀ`
/// (classic elimination-graph variant; deterministic ties → smallest
/// index). Quadratic in `n`, which is fine at MNA sizes.
fn min_degree_order(n: usize, col_ptr: &[usize], row_idx: &[usize]) -> Vec<usize> {
    let mut adj: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); n];
    for c in 0..n {
        for p in col_ptr[c]..col_ptr[c + 1] {
            let r = row_idx[p];
            if r != c {
                adj[r].insert(c);
                adj[c].insert(r);
            }
        }
    }
    let mut alive = vec![true; n];
    let mut perm = Vec::with_capacity(n);
    for _ in 0..n {
        let mut best = UNASSIGNED;
        let mut best_deg = usize::MAX;
        for (v, &live) in alive.iter().enumerate() {
            if live && adj[v].len() < best_deg {
                best_deg = adj[v].len();
                best = v;
            }
        }
        let v = best;
        perm.push(v);
        alive[v] = false;
        let neigh: Vec<usize> = adj[v].iter().copied().collect();
        for &u in &neigh {
            adj[u].remove(&v);
        }
        for a in 0..neigh.len() {
            for b in a + 1..neigh.len() {
                adj[neigh[a]].insert(neigh[b]);
                adj[neigh[b]].insert(neigh[a]);
            }
        }
        adj[v].clear();
    }
    perm
}

/// A numeric sparse LU factorization with a frozen structure: pivot
/// order, `L`/`U` fill and the scatter map are fixed at the first
/// [`SparseLu::factorize`]; [`SparseLu::refactorize`] re-runs only the
/// numeric sweep. All index arrays live in *pivot-position* space.
#[derive(Debug)]
pub struct SparseLu {
    n: usize,
    sym: Arc<SymbolicLu>,
    /// `L` (unit diagonal implicit): strictly-below-pivot entries per
    /// factor column, CSC-flattened.
    l_colptr: Vec<usize>,
    l_rows: Vec<usize>,
    l_vals: Vec<f64>,
    /// `U` above-diagonal entries per factor column (rows ascending —
    /// ascending pivot position is a valid elimination order).
    u_colptr: Vec<usize>,
    u_rows: Vec<usize>,
    u_vals: Vec<f64>,
    u_diag: Vec<f64>,
    /// Pivot position → permuted row it eliminated.
    row_perm: Vec<usize>,
    /// Per factor column: `(pivot-space row, value position)` scatter
    /// list for loading the column from a values slice.
    scatter_ptr: Vec<usize>,
    scatter_x: Vec<usize>,
    scatter_pos: Vec<usize>,
}

/// Working state of the pivoting factorization, kept separate so the
/// frozen arrays can be assembled in one place.
struct FactorState {
    pinv: Vec<usize>,
    row_perm: Vec<usize>,
    /// `(permuted row, value)` pairs per column of `L`.
    lcols: Vec<Vec<(usize, f64)>>,
    /// `(pivot position, value)` pairs per column of `U`.
    ucols: Vec<Vec<(usize, f64)>>,
    u_diag: Vec<f64>,
}

impl SparseLu {
    /// Factorizes `values` (CSC-position-indexed, as produced by
    /// stamping through the pattern's slot map) with partial pivoting,
    /// freezing the pivot order and fill structure for later
    /// [`SparseLu::refactorize`] calls.
    ///
    /// # Errors
    ///
    /// [`LinalgError::ShapeMismatch`] when `values` does not match the
    /// analyzed pattern's nonzero count; [`LinalgError::Singular`] when
    /// no acceptable pivot exists in some column.
    pub fn factorize(sym: &Arc<SymbolicLu>, values: &[f64]) -> Result<SparseLu, LinalgError> {
        if values.len() != sym.nnz {
            return Err(LinalgError::ShapeMismatch {
                op: "sparse_factorize",
                lhs: (values.len(), 1),
                rhs: (sym.nnz, 1),
            });
        }
        let state = factor_with_pivoting(sym, values)?;
        Ok(freeze(Arc::clone(sym), state))
    }

    /// Matrix dimension.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Nonzeros in the computed factors (`L` strict + `U` strict +
    /// diagonal) — the fill-in telemetry number.
    #[must_use]
    pub fn factor_nnz(&self) -> usize {
        self.l_rows.len() + self.u_rows.len() + self.n
    }

    /// Recomputes the numeric factors for new `values` over the frozen
    /// structure. Returns `Ok(true)` when the cheap structure-reusing
    /// sweep succeeded, `Ok(false)` when pivot drift forced an internal
    /// full re-pivoted factorization (the factorization is still valid
    /// — callers only need the flag for accounting).
    ///
    /// # Errors
    ///
    /// [`LinalgError::ShapeMismatch`] on a values-length mismatch and
    /// [`LinalgError::Singular`] when even the re-pivoted fallback
    /// fails; after an error the numeric contents are unspecified and
    /// the factorization must not be used for solves.
    pub fn refactorize(&mut self, values: &[f64]) -> Result<bool, LinalgError> {
        if values.len() != self.sym.nnz {
            return Err(LinalgError::ShapeMismatch {
                op: "sparse_refactorize",
                lhs: (values.len(), 1),
                rhs: (self.sym.nnz, 1),
            });
        }
        let n = self.n;
        let mut x = vec![0.0; n];
        for jp in 0..n {
            // Zero exactly the column's frozen pattern, then scatter.
            x[jp] = 0.0;
            for p in self.u_colptr[jp]..self.u_colptr[jp + 1] {
                x[self.u_rows[p]] = 0.0;
            }
            for p in self.l_colptr[jp]..self.l_colptr[jp + 1] {
                x[self.l_rows[p]] = 0.0;
            }
            for s in self.scatter_ptr[jp]..self.scatter_ptr[jp + 1] {
                x[self.scatter_x[s]] += values[self.scatter_pos[s]];
            }
            // Eliminate in ascending pivot order (valid topological
            // order of the frozen dependency DAG).
            for p in self.u_colptr[jp]..self.u_colptr[jp + 1] {
                let k = self.u_rows[p];
                let ukj = x[k];
                self.u_vals[p] = ukj;
                for q in self.l_colptr[k]..self.l_colptr[k + 1] {
                    x[self.l_rows[q]] -= self.l_vals[q] * ukj;
                }
            }
            let pivot = x[jp];
            let mut col_max = pivot.abs();
            for p in self.l_colptr[jp]..self.l_colptr[jp + 1] {
                col_max = col_max.max(x[self.l_rows[p]].abs());
            }
            if pivot.abs() < PIVOT_FLOOR || pivot.abs() < PIVOT_DRIFT_TOL * col_max {
                // Values drifted away from the frozen pivot choice:
                // redo the full pivoted factorization in place.
                let state = factor_with_pivoting(&self.sym, values)?;
                *self = freeze(Arc::clone(&self.sym), state);
                return Ok(false);
            }
            self.u_diag[jp] = pivot;
            for p in self.l_colptr[jp]..self.l_colptr[jp + 1] {
                self.l_vals[p] = x[self.l_rows[p]] / pivot;
            }
        }
        Ok(true)
    }

    /// Solves `A x = b` using the current factors.
    ///
    /// # Errors
    ///
    /// [`LinalgError::ShapeMismatch`] when `b` has the wrong length.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
        if b.len() != self.n {
            return Err(LinalgError::ShapeMismatch {
                op: "sparse_solve",
                lhs: (self.n, self.n),
                rhs: (b.len(), 1),
            });
        }
        let n = self.n;
        let mut c = vec![0.0; n];
        for k in 0..n {
            c[k] = b[self.sym.perm[self.row_perm[k]]];
        }
        // Forward substitution with unit-lower L.
        for k in 0..n {
            let ck = c[k];
            for p in self.l_colptr[k]..self.l_colptr[k + 1] {
                c[self.l_rows[p]] -= self.l_vals[p] * ck;
            }
        }
        // Back substitution with U.
        for k in (0..n).rev() {
            let ck = c[k] / self.u_diag[k];
            c[k] = ck;
            for p in self.u_colptr[k]..self.u_colptr[k + 1] {
                c[self.u_rows[p]] -= self.u_vals[p] * ck;
            }
        }
        let mut x = vec![0.0; n];
        for j in 0..n {
            x[self.sym.perm[j]] = c[j];
        }
        Ok(x)
    }

    /// Multi-RHS solve: one blocked forward/back-substitution sweep for
    /// all columns of `rhs` (the substitution loops run once, with the
    /// RHS columns as the inner dimension).
    ///
    /// # Errors
    ///
    /// [`LinalgError::ShapeMismatch`] when `rhs` has the wrong row
    /// count.
    pub fn solve_matrix(&self, rhs: &Matrix) -> Result<Matrix, LinalgError> {
        if rhs.rows() != self.n {
            return Err(LinalgError::ShapeMismatch {
                op: "sparse_solve_matrix",
                lhs: (self.n, self.n),
                rhs: (rhs.rows(), rhs.cols()),
            });
        }
        let n = self.n;
        let m = rhs.cols();
        // Row-major scratch: row k holds the k-th permuted equation for
        // every RHS column.
        let mut c = vec![0.0; n * m];
        for k in 0..n {
            let src = self.sym.perm[self.row_perm[k]];
            for j in 0..m {
                c[k * m + j] = rhs[(src, j)];
            }
        }
        for k in 0..n {
            for p in self.l_colptr[k]..self.l_colptr[k + 1] {
                let i = self.l_rows[p];
                let lv = self.l_vals[p];
                for j in 0..m {
                    c[i * m + j] -= lv * c[k * m + j];
                }
            }
        }
        for k in (0..n).rev() {
            let d = self.u_diag[k];
            for j in 0..m {
                c[k * m + j] /= d;
            }
            for p in self.u_colptr[k]..self.u_colptr[k + 1] {
                let i = self.u_rows[p];
                let uv = self.u_vals[p];
                for j in 0..m {
                    c[i * m + j] -= uv * c[k * m + j];
                }
            }
        }
        let mut out = Matrix::zeros(n, m);
        for k in 0..n {
            let dst = self.sym.perm[k];
            for j in 0..m {
                out[(dst, j)] = c[k * m + j];
            }
        }
        Ok(out)
    }
}

/// Left-looking Gilbert–Peierls factorization with partial pivoting:
/// per column, a depth-first reach over the already-built `L`
/// structure discovers the fill pattern, a dense accumulator carries
/// the numeric column, and the largest-magnitude unassigned row
/// becomes the pivot (ties → smallest permuted row index, so the
/// result never depends on traversal incidentals).
fn factor_with_pivoting(sym: &SymbolicLu, values: &[f64]) -> Result<FactorState, LinalgError> {
    let n = sym.n;
    let mut st = FactorState {
        pinv: vec![UNASSIGNED; n],
        row_perm: vec![0; n],
        lcols: vec![Vec::new(); n],
        ucols: vec![Vec::new(); n],
        u_diag: vec![0.0; n],
    };
    let mut x = vec![0.0; n];
    let mut mark = vec![UNASSIGNED; n];
    let mut topo: Vec<usize> = Vec::with_capacity(n);
    let mut stack: Vec<(usize, usize)> = Vec::new();
    for jp in 0..n {
        // Symbolic: reach of the column's structural rows through L.
        topo.clear();
        for &(r, _) in &sym.acols[jp] {
            if mark[r] == jp {
                continue;
            }
            mark[r] = jp;
            stack.push((r, 0));
            while let Some(&(row, cursor)) = stack.last() {
                let k = st.pinv[row];
                let deg = if k == UNASSIGNED { 0 } else { st.lcols[k].len() };
                if cursor < deg {
                    if let Some(top) = stack.last_mut() {
                        top.1 += 1;
                    }
                    let child = st.lcols[k][cursor].0;
                    if mark[child] != jp {
                        mark[child] = jp;
                        stack.push((child, 0));
                    }
                } else {
                    topo.push(row);
                    stack.pop();
                }
            }
        }
        // Numeric: scatter, then eliminate in reverse postorder
        // (dependencies before dependents).
        for &r in &topo {
            x[r] = 0.0;
        }
        for &(r, pos) in &sym.acols[jp] {
            x[r] += values[pos];
        }
        for &r in topo.iter().rev() {
            let k = st.pinv[r];
            if k == UNASSIGNED {
                continue;
            }
            let ukj = x[r];
            st.ucols[jp].push((k, ukj));
            for &(cr, lv) in &st.lcols[k] {
                x[cr] -= lv * ukj;
            }
        }
        st.ucols[jp].sort_unstable_by_key(|&(k, _)| k);
        // Pivot: largest magnitude among unassigned reached rows.
        let mut best = UNASSIGNED;
        let mut best_abs = -1.0;
        for &r in &topo {
            if st.pinv[r] != UNASSIGNED {
                continue;
            }
            let a = x[r].abs();
            if a > best_abs || (a >= best_abs && r < best) {
                best_abs = a;
                best = r;
            }
        }
        if best == UNASSIGNED || best_abs < PIVOT_FLOOR {
            return Err(LinalgError::Singular { pivot: jp });
        }
        st.pinv[best] = jp;
        st.row_perm[jp] = best;
        let pivot = x[best];
        st.u_diag[jp] = pivot;
        // Keep every structurally reached row — even numerically zero
        // ones — so the frozen pattern covers later refactorizations.
        let lcol = &mut st.lcols[jp];
        for &r in &topo {
            if st.pinv[r] == UNASSIGNED {
                lcol.push((r, x[r] / pivot));
            }
        }
        lcol.sort_unstable_by_key(|&(r, _)| r);
    }
    Ok(st)
}

/// Converts the pivoting factorization state into the frozen
/// pivot-position-space CSC arrays of a [`SparseLu`].
fn freeze(sym: Arc<SymbolicLu>, st: FactorState) -> SparseLu {
    let n = sym.n;
    let mut l_colptr = Vec::with_capacity(n + 1);
    let mut l_rows = Vec::new();
    let mut l_vals = Vec::new();
    let mut u_colptr = Vec::with_capacity(n + 1);
    let mut u_rows = Vec::new();
    let mut u_vals = Vec::new();
    let mut scatter_ptr = Vec::with_capacity(n + 1);
    let mut scatter_x = Vec::new();
    let mut scatter_pos = Vec::new();
    l_colptr.push(0);
    u_colptr.push(0);
    scatter_ptr.push(0);
    for jp in 0..n {
        for &(r, v) in &st.lcols[jp] {
            l_rows.push(st.pinv[r]);
            l_vals.push(v);
        }
        l_colptr.push(l_rows.len());
        for &(k, v) in &st.ucols[jp] {
            u_rows.push(k);
            u_vals.push(v);
        }
        u_colptr.push(u_rows.len());
        for &(r, pos) in &sym.acols[jp] {
            scatter_x.push(st.pinv[r]);
            scatter_pos.push(pos);
        }
        scatter_ptr.push(scatter_x.len());
    }
    SparseLu {
        n,
        sym,
        l_colptr,
        l_rows,
        l_vals,
        u_colptr,
        u_rows,
        u_vals,
        u_diag: st.u_diag,
        row_perm: st.row_perm,
        scatter_ptr,
        scatter_x,
        scatter_pos,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decomp::Lu;

    /// Builds an MNA-flavored test system: two node equations plus a
    /// voltage-source branch row with a structurally zero diagonal.
    fn mna_like() -> (SparsityPattern, Vec<f64>) {
        let mut b = PatternBuilder::new(3);
        let mut slots = Vec::new();
        // Node 0: conductances + branch coupling.
        slots.push((b.slot(0, 0), 3.0e-4));
        slots.push((b.slot(0, 1), -1.0e-4));
        slots.push((b.slot(0, 2), 1.0));
        // Node 1.
        slots.push((b.slot(1, 0), -1.0e-4));
        slots.push((b.slot(1, 1), 2.0e-4));
        // Branch row: zero diagonal, needs pivoting.
        slots.push((b.slot(2, 0), 1.0));
        let pat = b.build();
        let mut vals = pat.new_values();
        for (slot, v) in slots {
            vals[pat.slot_position(slot)] += v;
        }
        (pat, vals)
    }

    fn max_rel_err(a: &[f64], b: &[f64]) -> f64 {
        a.iter()
            .zip(b)
            .map(|(x, y)| (x - y).abs() / x.abs().max(y.abs()).max(1e-30))
            .fold(0.0, f64::max)
    }

    #[test]
    fn builder_dedups_aliased_slots() {
        let mut b = PatternBuilder::new(2);
        let s1 = b.slot(0, 0);
        let s2 = b.slot(0, 0);
        let s3 = b.slot(1, 0);
        let pat = b.build();
        assert_eq!(pat.nnz(), 2);
        assert_eq!(pat.slots(), 3);
        assert_eq!(pat.slot_position(s1), pat.slot_position(s2));
        assert_ne!(pat.slot_position(s1), pat.slot_position(s3));
    }

    #[test]
    fn ordering_is_a_permutation() {
        let (pat, _) = mna_like();
        let sym = SymbolicLu::analyze(&pat);
        let mut seen = sym.ordering().to_vec();
        seen.sort_unstable();
        assert_eq!(seen, vec![0, 1, 2]);
    }

    #[test]
    fn zero_diagonal_source_row_is_pivoted() {
        let (pat, vals) = mna_like();
        let sym = Arc::new(SymbolicLu::analyze(&pat));
        let lu = SparseLu::factorize(&sym, &vals).expect("factorizes despite zero diagonal");
        let b = vec![1.0, -0.5, 0.25];
        let x = lu.solve(&b).expect("solves");
        let dense = Lu::new(&pat.to_dense(&vals)).expect("dense oracle");
        let xd = dense.solve(&b).expect("dense solve");
        assert!(max_rel_err(&x, &xd) < 1e-12, "{x:?} vs {xd:?}");
    }

    #[test]
    fn refactorize_reuses_structure_and_matches_dense() {
        let (pat, vals) = mna_like();
        let sym = Arc::new(SymbolicLu::analyze(&pat));
        let mut lu = SparseLu::factorize(&sym, &vals).expect("first factorization");
        // Perturb values (same signs/magnitudes — a Newton re-stamp).
        let vals2: Vec<f64> = vals.iter().map(|v| v * 1.25).collect();
        let reused = lu.refactorize(&vals2).expect("refactorize");
        assert!(reused, "mild value change must reuse the frozen pivots");
        let b = vec![0.5, 1.5, -1.0];
        let x = lu.solve(&b).expect("solve after refactorize");
        let dense = Lu::new(&pat.to_dense(&vals2)).expect("dense oracle");
        let xd = dense.solve(&b).expect("dense solve");
        assert!(max_rel_err(&x, &xd) < 1e-12, "{x:?} vs {xd:?}");
    }

    #[test]
    fn refactorize_falls_back_on_pivot_drift() {
        // Start with a matrix whose natural pivots sit off-diagonal,
        // then hand refactorize values whose magnitudes invert — the
        // frozen pivot becomes tiny relative to its column and the
        // sweep must fall back to a full factorization, still
        // producing correct factors.
        let mut b = PatternBuilder::new(2);
        b.slot(0, 0);
        b.slot(1, 0);
        b.slot(0, 1);
        b.slot(1, 1);
        let pat = b.build();
        let sym = Arc::new(SymbolicLu::analyze(&pat));
        let mut vals = pat.new_values();
        // [[1e-9, 1], [1, 1e-9]] — pivots land on the off-diagonal.
        vals[pat.slot_position(0)] = 1e-9;
        vals[pat.slot_position(1)] = 1.0;
        vals[pat.slot_position(2)] = 1.0;
        vals[pat.slot_position(3)] = 1e-9;
        let mut lu = SparseLu::factorize(&sym, &vals).expect("factorize");
        // Swap the magnitudes: the frozen pivot rows now hold 1e-9.
        let mut vals2 = pat.new_values();
        vals2[pat.slot_position(0)] = 1.0;
        vals2[pat.slot_position(1)] = 1e-9;
        vals2[pat.slot_position(2)] = 1e-9;
        vals2[pat.slot_position(3)] = 1.0;
        let reused = lu.refactorize(&vals2).expect("fallback refactorize");
        assert!(!reused, "magnitude inversion must trigger the fallback");
        let x = lu.solve(&[1.0, 2.0]).expect("solve");
        let dense = Lu::new(&pat.to_dense(&vals2)).expect("dense");
        let xd = dense.solve(&[1.0, 2.0]).expect("dense solve");
        assert!(max_rel_err(&x, &xd) < 1e-10, "{x:?} vs {xd:?}");
    }

    #[test]
    fn solve_matrix_matches_column_solves() {
        let (pat, vals) = mna_like();
        let sym = Arc::new(SymbolicLu::analyze(&pat));
        let lu = SparseLu::factorize(&sym, &vals).expect("factorize");
        let rhs = Matrix::from_rows(&[&[1.0, 0.0, 2.0], &[0.0, 1.0, -1.0], &[0.0, 0.0, 0.5]]);
        let x = lu.solve_matrix(&rhs).expect("multi-RHS");
        for j in 0..3 {
            let col: Vec<f64> = (0..3).map(|i| rhs[(i, j)]).collect();
            let xc = lu.solve(&col).expect("column solve");
            for i in 0..3 {
                assert!((x[(i, j)] - xc[i]).abs() < 1e-14);
            }
        }
    }

    #[test]
    fn singular_matrix_is_reported() {
        let mut b = PatternBuilder::new(2);
        b.slot(0, 0);
        b.slot(1, 0);
        let pat = b.build();
        let sym = Arc::new(SymbolicLu::analyze(&pat));
        let vals = vec![1.0, 1.0];
        // Column 1 has no structural entries → structurally singular.
        assert!(matches!(
            SparseLu::factorize(&sym, &vals),
            Err(LinalgError::Singular { .. })
        ));
    }

    #[test]
    fn wrong_value_length_is_rejected() {
        let (pat, _) = mna_like();
        let sym = Arc::new(SymbolicLu::analyze(&pat));
        assert!(matches!(
            SparseLu::factorize(&sym, &[1.0]),
            Err(LinalgError::ShapeMismatch { .. })
        ));
    }
}
