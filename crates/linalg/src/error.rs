//! Error type shared by all fallible operations in this crate.

use std::fmt;

/// Errors produced by linear-algebra routines.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum LinalgError {
    /// Two operands had incompatible shapes.
    ///
    /// Carries `(rows_a, cols_a)` and `(rows_b, cols_b)` of the operands
    /// plus the name of the operation that rejected them.
    ShapeMismatch {
        /// Operation that failed (e.g. `"matmul"`).
        op: &'static str,
        /// Shape of the left operand.
        lhs: (usize, usize),
        /// Shape of the right operand.
        rhs: (usize, usize),
    },
    /// A factorization encountered a (numerically) singular matrix.
    Singular {
        /// Pivot index at which singularity was detected.
        pivot: usize,
    },
    /// A routine that requires a square matrix received a rectangular one.
    NotSquare {
        /// Actual shape received.
        shape: (usize, usize),
    },
    /// An index was out of bounds for the matrix shape.
    IndexOutOfBounds {
        /// Requested index.
        index: (usize, usize),
        /// Matrix shape.
        shape: (usize, usize),
    },
    /// Dimension of a requested object was invalid (e.g. a Sobol sequence
    /// with more dimensions than the direction-number table supports).
    InvalidDimension {
        /// What was asked for.
        requested: usize,
        /// The supported maximum.
        max: usize,
    },
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinalgError::ShapeMismatch { op, lhs, rhs } => write!(
                f,
                "shape mismatch in {op}: ({}, {}) vs ({}, {})",
                lhs.0, lhs.1, rhs.0, rhs.1
            ),
            LinalgError::Singular { pivot } => {
                write!(f, "matrix is singular (zero pivot at index {pivot})")
            }
            LinalgError::NotSquare { shape } => {
                write!(
                    f,
                    "expected a square matrix, got ({}, {})",
                    shape.0, shape.1
                )
            }
            LinalgError::IndexOutOfBounds { index, shape } => write!(
                f,
                "index ({}, {}) out of bounds for matrix of shape ({}, {})",
                index.0, index.1, shape.0, shape.1
            ),
            LinalgError::InvalidDimension { requested, max } => {
                write!(
                    f,
                    "invalid dimension {requested}; supported maximum is {max}"
                )
            }
        }
    }
}

impl std::error::Error for LinalgError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = LinalgError::ShapeMismatch {
            op: "matmul",
            lhs: (2, 3),
            rhs: (4, 5),
        };
        let s = e.to_string();
        assert!(s.contains("matmul"));
        assert!(s.contains("(2, 3)"));
        assert!(s.contains("(4, 5)"));
    }

    #[test]
    fn error_trait_object() {
        let e: Box<dyn std::error::Error> = Box::new(LinalgError::Singular { pivot: 3 });
        assert!(e.to_string().contains("singular"));
    }
}
