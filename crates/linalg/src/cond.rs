//! 1-norm condition estimation from existing LU factors.
//!
//! The SPICE Newton loop factorizes its Jacobian every iteration
//! anyway; estimating `κ₁(A) = ‖A‖₁·‖A⁻¹‖₁` on top of those factors
//! costs only a handful of extra triangular solves. [`invnorm1_estimate`]
//! implements Hager's algorithm (Hager 1984, as refined by Higham —
//! the same scheme behind LAPACK's `xLACON`): a gradient ascent on
//! `‖A⁻¹x‖₁` over the unit 1-ball that probes `A⁻¹` and `A⁻ᵀ` through
//! [`Lu::solve`] / [`Lu::solve_transpose`] and converges in a small,
//! bounded number of iterations. The result is a **lower bound** on
//! the true `‖A⁻¹‖₁` — in practice within a small factor of it — which
//! is exactly the right polarity for an ill-conditioning alarm: the
//! estimator never cries wolf about a matrix better conditioned than
//! reported.
//!
//! Everything here is a pure function of its inputs (no randomness, no
//! clocks), so estimates are bit-identical for any thread count.

use crate::decomp::Lu;
use crate::{LinalgError, Matrix};

/// Hard cap on Hager ascent steps. The algorithm almost always stops
/// after 2–3 probes; 5 matches the LAPACK `xLACON` budget.
const MAX_PROBES: usize = 5;

/// The matrix 1-norm `‖A‖₁`: the maximum absolute column sum. Zero for
/// an empty matrix.
pub fn norm1(a: &Matrix) -> f64 {
    let mut max = 0.0f64;
    for j in 0..a.cols() {
        let mut sum = 0.0;
        for i in 0..a.rows() {
            sum += a[(i, j)].abs();
        }
        max = max.max(sum);
    }
    max
}

/// Hager's estimate of `‖A⁻¹‖₁` from the LU factors of `A`.
///
/// Returns a deterministic lower bound on the true inverse norm (see
/// the module docs). The factors are probed via forward/transpose
/// solves only — `A` itself is not needed.
///
/// # Errors
///
/// Propagates [`LinalgError`] from the triangular solves (cannot
/// normally occur after a successful factorization).
pub fn invnorm1_estimate(lu: &Lu) -> Result<f64, LinalgError> {
    let n = lu.dim();
    if n == 0 {
        return Ok(0.0);
    }
    // Start at the barycenter of the unit 1-ball: x = e/n.
    let mut x = vec![1.0 / n as f64; n];
    let mut est = 0.0f64;
    for _ in 0..MAX_PROBES {
        let y = lu.solve(&x)?;
        let y_norm: f64 = y.iter().map(|v| v.abs()).sum();
        est = est.max(y_norm);
        // ξ = sign(y); z = A⁻ᵀ·ξ is the subgradient of x ↦ ‖A⁻¹x‖₁.
        let xi: Vec<f64> = y
            .iter()
            .map(|v| if *v < 0.0 { -1.0 } else { 1.0 })
            .collect();
        let z = lu.solve_transpose(&xi)?;
        let (mut j_max, mut z_max) = (0, 0.0f64);
        for (j, zj) in z.iter().enumerate() {
            if zj.abs() > z_max {
                z_max = zj.abs();
                j_max = j;
            }
        }
        let z_dot_x: f64 = z.iter().zip(&x).map(|(zj, xj)| zj * xj).sum();
        // Optimality test: no coordinate direction improves on the
        // current iterate, so the ascent has converged.
        if z_max <= z_dot_x {
            break;
        }
        x = vec![0.0; n];
        x[j_max] = 1.0;
    }
    Ok(est)
}

/// Estimated 1-norm condition number `κ₁(A) ≈ ‖A‖₁·‖A⁻¹‖₁` of the
/// matrix `a`, reusing its existing factorization `lu`. Lower bound;
/// see [`invnorm1_estimate`].
///
/// # Errors
///
/// Propagates [`LinalgError`] from the probe solves.
pub fn cond1_estimate(a: &Matrix, lu: &Lu) -> Result<f64, LinalgError> {
    Ok(norm1(a) * invnorm1_estimate(lu)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exact_cond1(a: &Matrix) -> f64 {
        let inv = Lu::new(a).unwrap().inverse().unwrap();
        norm1(a) * norm1(&inv)
    }

    #[test]
    fn norm1_is_the_max_column_abs_sum() {
        let a = Matrix::from_rows(&[&[1.0, -7.0], &[-2.0, 3.0]]);
        assert_eq!(norm1(&a), 10.0);
    }

    #[test]
    fn identity_has_condition_one() {
        let a = Matrix::identity(4);
        let lu = Lu::new(&a).unwrap();
        assert_eq!(cond1_estimate(&a, &lu).unwrap(), 1.0);
    }

    #[test]
    fn diagonal_condition_is_exact() {
        // For diagonal matrices the Hager ascent lands on the extreme
        // column and the estimate equals the true κ₁.
        let a = Matrix::from_fn(
            3,
            3,
            |i, j| {
                if i == j {
                    [1.0, 10.0, 1000.0][i]
                } else {
                    0.0
                }
            },
        );
        let lu = Lu::new(&a).unwrap();
        let est = cond1_estimate(&a, &lu).unwrap();
        assert!((est - 1000.0).abs() < 1e-9, "estimate {est}");
    }

    #[test]
    fn estimate_is_a_lower_bound_and_close_on_a_hilbert_block() {
        // The 4×4 Hilbert matrix is a classic ill-conditioned case
        // (κ₁ ≈ 2.8e4).
        let a = Matrix::from_fn(4, 4, |i, j| 1.0 / (i + j + 1) as f64);
        let lu = Lu::new(&a).unwrap();
        let est = cond1_estimate(&a, &lu).unwrap();
        let exact = exact_cond1(&a);
        assert!(est <= exact * (1.0 + 1e-12), "est {est} > exact {exact}");
        assert!(est >= 0.1 * exact, "est {est} far below exact {exact}");
        assert!(exact > 1e4, "Hilbert κ₁ sanity: {exact}");
    }

    #[test]
    fn near_singular_matrices_report_huge_condition() {
        let eps = 1e-12;
        let a = Matrix::from_rows(&[&[1.0, 1.0], &[1.0, 1.0 + eps]]);
        let lu = Lu::new(&a).unwrap();
        let est = cond1_estimate(&a, &lu).unwrap();
        assert!(est > 1e11, "estimate {est}");
    }
}
