//! Matrix factorizations and linear solvers.
//!
//! Two solvers are provided:
//!
//! * [`Lu`] — LU decomposition with partial pivoting. This is the
//!   workhorse of the SPICE-level simulator: every Newton–Raphson
//!   iteration solves `J Δx = -f` with the (small, dense) modified nodal
//!   analysis Jacobian.
//! * [`lstsq`] — least-squares via Householder QR, used to fit
//!   closed-form transfer approximations of printed activation circuits
//!   to simulated samples.

use crate::{LinalgError, Matrix};

/// LU decomposition with partial (row) pivoting: `P·A = L·U`.
///
/// # Examples
///
/// ```
/// use pnc_linalg::{Matrix, decomp::Lu};
///
/// let a = Matrix::from_rows(&[&[4.0, 3.0], &[6.0, 3.0]]);
/// let lu = Lu::new(&a).unwrap();
/// let x = lu.solve(&[10.0, 12.0]).unwrap();
/// // verify A·x = b
/// let b = a.matvec(&x);
/// assert!((b[0] - 10.0).abs() < 1e-12 && (b[1] - 12.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone)]
pub struct Lu {
    /// Packed LU factors (unit lower triangle implicit).
    lu: Matrix,
    /// Row permutation: `perm[i]` is the original row stored at row `i`.
    perm: Vec<usize>,
    /// Sign of the permutation (for determinants).
    sign: f64,
}

impl Lu {
    /// Factorizes a square matrix.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::NotSquare`] for rectangular input and
    /// [`LinalgError::Singular`] when a pivot underflows the singularity
    /// threshold.
    pub fn new(a: &Matrix) -> Result<Self, LinalgError> {
        if a.rows() != a.cols() {
            return Err(LinalgError::NotSquare { shape: a.shape() });
        }
        let n = a.rows();
        let mut lu = a.clone();
        let mut perm: Vec<usize> = (0..n).collect();
        let mut sign = 1.0;

        for k in 0..n {
            // Partial pivoting: find the largest |entry| in column k.
            let mut p = k;
            let mut pmax = lu[(k, k)].abs();
            for i in (k + 1)..n {
                let v = lu[(i, k)].abs();
                if v > pmax {
                    pmax = v;
                    p = i;
                }
            }
            if pmax < 1e-300 {
                return Err(LinalgError::Singular { pivot: k });
            }
            if p != k {
                for j in 0..n {
                    let tmp = lu[(k, j)];
                    lu[(k, j)] = lu[(p, j)];
                    lu[(p, j)] = tmp;
                }
                perm.swap(k, p);
                sign = -sign;
            }
            let pivot = lu[(k, k)];
            for i in (k + 1)..n {
                let m = lu[(i, k)] / pivot;
                lu[(i, k)] = m;
                // lint: allow(L002, reason = "sparse-skip fast path: only a bit-exact zero may skip the update")
                if m != 0.0 {
                    for j in (k + 1)..n {
                        let v = lu[(k, j)];
                        lu[(i, j)] -= m * v;
                    }
                }
            }
        }
        Ok(Lu { lu, perm, sign })
    }

    /// Dimension of the factorized matrix.
    pub fn dim(&self) -> usize {
        self.lu.rows()
    }

    /// Solves `A·x = b` for a single right-hand side.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] when `b.len()` differs from
    /// the factorized dimension.
    #[allow(clippy::needless_range_loop)] // index loops mirror the textbook algorithm
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
        let n = self.dim();
        if b.len() != n {
            return Err(LinalgError::ShapeMismatch {
                op: "lu_solve",
                lhs: (n, n),
                rhs: (b.len(), 1),
            });
        }
        // Apply permutation and forward-substitute through L.
        let mut x: Vec<f64> = (0..n).map(|i| b[self.perm[i]]).collect();
        for i in 1..n {
            let mut acc = x[i];
            for j in 0..i {
                acc -= self.lu[(i, j)] * x[j];
            }
            x[i] = acc;
        }
        // Back-substitute through U.
        for i in (0..n).rev() {
            let mut acc = x[i];
            for j in (i + 1)..n {
                acc -= self.lu[(i, j)] * x[j];
            }
            x[i] = acc / self.lu[(i, i)];
        }
        Ok(x)
    }

    /// Solves `Aᵀ·x = b` reusing the factors of `A` (`P·A = L·U`, so
    /// `Aᵀ = Uᵀ·Lᵀ·P`): forward-substitute through `Uᵀ`,
    /// back-substitute through the unit-diagonal `Lᵀ`, then undo the
    /// row permutation. This is what the Hager 1-norm condition
    /// estimator ([`crate::cond`]) needs — one extra triangular pair
    /// per probe, no refactorization.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] when `b.len()` differs
    /// from the factorized dimension.
    #[allow(clippy::needless_range_loop)] // index loops mirror the textbook algorithm
    pub fn solve_transpose(&self, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
        let n = self.dim();
        if b.len() != n {
            return Err(LinalgError::ShapeMismatch {
                op: "lu_solve_transpose",
                lhs: (n, n),
                rhs: (b.len(), 1),
            });
        }
        // Forward-substitute through Uᵀ (lower triangular, diagonal of U).
        let mut y = b.to_vec();
        for i in 0..n {
            let mut acc = y[i];
            for j in 0..i {
                acc -= self.lu[(j, i)] * y[j];
            }
            y[i] = acc / self.lu[(i, i)];
        }
        // Back-substitute through Lᵀ (upper triangular, unit diagonal).
        for i in (0..n).rev() {
            let mut acc = y[i];
            for j in (i + 1)..n {
                acc -= self.lu[(j, i)] * y[j];
            }
            y[i] = acc;
        }
        // Undo the permutation: x = Pᵀ·z.
        let mut x = vec![0.0; n];
        for i in 0..n {
            x[self.perm[i]] = y[i];
        }
        Ok(x)
    }

    /// Solves `A·X = B` for all right-hand sides at once: one blocked
    /// forward/back-substitution sweep with the RHS columns as the
    /// inner dimension, instead of re-walking the triangular factors
    /// per column. This is the batched-Newton building block — the
    /// triangular factors stream through cache once per sweep, not
    /// once per RHS.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] when `B` has the wrong row
    /// count.
    pub fn solve_matrix(&self, b: &Matrix) -> Result<Matrix, LinalgError> {
        let n = self.dim();
        if b.rows() != n {
            return Err(LinalgError::ShapeMismatch {
                op: "lu_solve_matrix",
                lhs: (n, n),
                rhs: b.shape(),
            });
        }
        let m = b.cols();
        // Apply the row permutation to every column up front.
        let mut out = Matrix::zeros(n, m);
        for i in 0..n {
            let src = self.perm[i];
            for j in 0..m {
                out[(i, j)] = b[(src, j)];
            }
        }
        // Forward-substitute through unit-lower L, all columns per row.
        for i in 1..n {
            for k in 0..i {
                let l = self.lu[(i, k)];
                // lint: allow(L002, reason = "sparse-skip fast path: only a bit-exact zero may skip the update")
                if l != 0.0 {
                    for j in 0..m {
                        out[(i, j)] -= l * out[(k, j)];
                    }
                }
            }
        }
        // Back-substitute through U, all columns per row.
        for i in (0..n).rev() {
            for k in (i + 1)..n {
                let u = self.lu[(i, k)];
                // lint: allow(L002, reason = "sparse-skip fast path: only a bit-exact zero may skip the update")
                if u != 0.0 {
                    for j in 0..m {
                        out[(i, j)] -= u * out[(k, j)];
                    }
                }
            }
            let d = self.lu[(i, i)];
            for j in 0..m {
                out[(i, j)] /= d;
            }
        }
        Ok(out)
    }

    /// Determinant of the factorized matrix.
    pub fn det(&self) -> f64 {
        let mut d = self.sign;
        for i in 0..self.dim() {
            d *= self.lu[(i, i)];
        }
        d
    }

    /// Explicit inverse (prefer [`Lu::solve`] when possible).
    ///
    /// # Errors
    ///
    /// Propagates solver errors (cannot normally occur after a
    /// successful factorization).
    pub fn inverse(&self) -> Result<Matrix, LinalgError> {
        self.solve_matrix(&Matrix::identity(self.dim()))
    }
}

/// Solves the linear system `A·x = b` in one call (factorize + solve).
///
/// # Errors
///
/// Same conditions as [`Lu::new`] and [`Lu::solve`].
pub fn solve(a: &Matrix, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
    Lu::new(a)?.solve(b)
}

/// Least-squares solution of `A·x ≈ b` (`A` is `m × n`, `m ≥ n`) via
/// Householder QR without explicit Q formation.
///
/// Returns the coefficient vector of length `n` minimizing `‖A·x − b‖₂`.
///
/// # Errors
///
/// Returns [`LinalgError::ShapeMismatch`] when `b.len() != A.rows()` or
/// when the system is underdetermined, and [`LinalgError::Singular`]
/// when `A` is rank-deficient to working precision.
#[allow(clippy::needless_range_loop)] // index loops mirror the textbook algorithm
pub fn lstsq(a: &Matrix, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
    let (m, n) = a.shape();
    if b.len() != m || m < n {
        return Err(LinalgError::ShapeMismatch {
            op: "lstsq",
            lhs: a.shape(),
            rhs: (b.len(), 1),
        });
    }
    let mut r = a.clone();
    let mut rhs = b.to_vec();

    for k in 0..n {
        // Householder vector for column k below the diagonal.
        let mut norm = 0.0;
        for i in k..m {
            norm += r[(i, k)] * r[(i, k)];
        }
        let norm = norm.sqrt();
        if norm < 1e-300 {
            return Err(LinalgError::Singular { pivot: k });
        }
        let alpha = if r[(k, k)] >= 0.0 { -norm } else { norm };
        let mut v: Vec<f64> = (k..m).map(|i| r[(i, k)]).collect();
        v[0] -= alpha;
        let vnorm2: f64 = v.iter().map(|x| x * x).sum();
        if vnorm2 > 0.0 {
            // Reflect the remaining columns of R.
            for j in k..n {
                let mut dot = 0.0;
                for (t, &vi) in v.iter().enumerate() {
                    dot += vi * r[(k + t, j)];
                }
                let c = 2.0 * dot / vnorm2;
                for (t, &vi) in v.iter().enumerate() {
                    r[(k + t, j)] -= c * vi;
                }
            }
            // Reflect the right-hand side.
            let mut dot = 0.0;
            for (t, &vi) in v.iter().enumerate() {
                dot += vi * rhs[k + t];
            }
            let c = 2.0 * dot / vnorm2;
            for (t, &vi) in v.iter().enumerate() {
                rhs[k + t] -= c * vi;
            }
        }
    }

    // Back-substitution on the upper-triangular R (top n rows).
    let mut x = vec![0.0; n];
    for i in (0..n).rev() {
        let mut acc = rhs[i];
        for j in (i + 1)..n {
            acc -= r[(i, j)] * x[j];
        }
        let d = r[(i, i)];
        if d.abs() < 1e-300 {
            return Err(LinalgError::Singular { pivot: i });
        }
        x[i] = acc / d;
    }
    Ok(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lu_solves_known_system() {
        let a = Matrix::from_rows(&[&[2.0, 1.0, -1.0], &[-3.0, -1.0, 2.0], &[-2.0, 1.0, 2.0]]);
        let x = solve(&a, &[8.0, -11.0, -3.0]).unwrap();
        assert!((x[0] - 2.0).abs() < 1e-10);
        assert!((x[1] - 3.0).abs() < 1e-10);
        assert!((x[2] + 1.0).abs() < 1e-10);
    }

    #[test]
    fn lu_requires_pivoting() {
        // Zero in the (0,0) position forces a row swap.
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let x = solve(&a, &[3.0, 7.0]).unwrap();
        assert_eq!(x, vec![7.0, 3.0]);
    }

    #[test]
    fn lu_detects_singular() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        assert!(matches!(Lu::new(&a), Err(LinalgError::Singular { .. })));
    }

    #[test]
    fn lu_rejects_rectangular() {
        let a = Matrix::zeros(2, 3);
        assert!(matches!(Lu::new(&a), Err(LinalgError::NotSquare { .. })));
    }

    #[test]
    fn solve_transpose_matches_factorizing_the_transpose() {
        let a = Matrix::from_rows(&[&[2.0, 1.0, -1.0], &[-3.0, -1.0, 2.0], &[-2.0, 1.0, 2.0]]);
        let b = [1.0, -2.0, 0.5];
        let via_factors = Lu::new(&a).unwrap().solve_transpose(&b).unwrap();
        let at = Matrix::from_fn(3, 3, |i, j| a[(j, i)]);
        let direct = solve(&at, &b).unwrap();
        for (x, y) in via_factors.iter().zip(&direct) {
            assert!((x - y).abs() < 1e-10, "{via_factors:?} vs {direct:?}");
        }
    }

    #[test]
    fn solve_transpose_survives_pivoting() {
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let x = Lu::new(&a).unwrap().solve_transpose(&[3.0, 7.0]).unwrap();
        // Aᵀ = A for this permutation matrix.
        assert_eq!(x, vec![7.0, 3.0]);
    }

    #[test]
    fn solve_transpose_wrong_rhs_length_errors() {
        let lu = Lu::new(&Matrix::identity(3)).unwrap();
        assert!(lu.solve_transpose(&[1.0, 2.0]).is_err());
    }

    #[test]
    fn det_matches_cofactor_expansion() {
        let a = Matrix::from_rows(&[&[3.0, 8.0], &[4.0, 6.0]]);
        let lu = Lu::new(&a).unwrap();
        assert!((lu.det() - (3.0 * 6.0 - 8.0 * 4.0)).abs() < 1e-10);
    }

    #[test]
    fn inverse_times_matrix_is_identity() {
        let a = Matrix::from_rows(&[&[4.0, 7.0], &[2.0, 6.0]]);
        let inv = Lu::new(&a).unwrap().inverse().unwrap();
        assert!(a.matmul(&inv).approx_eq(&Matrix::identity(2), 1e-10));
    }

    #[test]
    fn solve_matrix_multiple_rhs() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 1.0], &[11.0, 1.0]]);
        let x = Lu::new(&a).unwrap().solve_matrix(&b).unwrap();
        assert!(a.matmul(&x).approx_eq(&b, 1e-10));
    }

    #[test]
    fn solve_wrong_rhs_length_errors() {
        let a = Matrix::identity(3);
        let lu = Lu::new(&a).unwrap();
        assert!(lu.solve(&[1.0, 2.0]).is_err());
    }

    #[test]
    fn lstsq_exact_system() {
        let a = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0], &[0.0, 0.0]]);
        let x = lstsq(&a, &[3.0, -2.0, 0.0]).unwrap();
        assert!((x[0] - 3.0).abs() < 1e-12 && (x[1] + 2.0).abs() < 1e-12);
    }

    #[test]
    fn lstsq_fits_line() {
        // y = 2x + 1 with symmetric noise that least squares rejects.
        let xs = [0.0, 1.0, 2.0, 3.0];
        let ys = [1.1, 2.9, 5.1, 6.9];
        let a = Matrix::from_fn(4, 2, |i, j| if j == 0 { xs[i] } else { 1.0 });
        let c = lstsq(&a, &ys).unwrap();
        assert!((c[0] - 2.0).abs() < 0.05, "slope {}", c[0]);
        assert!((c[1] - 1.0).abs() < 0.10, "intercept {}", c[1]);
    }

    #[test]
    fn lstsq_underdetermined_is_error() {
        let a = Matrix::zeros(2, 3);
        assert!(lstsq(&a, &[1.0, 2.0]).is_err());
    }

    #[test]
    fn lstsq_residual_is_orthogonal_to_columns() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 0.5], &[3.0, -1.0], &[0.5, 4.0]]);
        let b = [1.0, 2.0, 3.0, 4.0];
        let x = lstsq(&a, &b).unwrap();
        let pred = a.matvec(&x);
        let resid: Vec<f64> = b.iter().zip(&pred).map(|(&bi, &pi)| bi - pi).collect();
        // Normal equations: Aᵀ r = 0 at the optimum.
        for j in 0..2 {
            let dot: f64 = (0..4).map(|i| a[(i, j)] * resid[i]).sum();
            assert!(dot.abs() < 1e-9, "column {j} residual dot {dot}");
        }
    }
}
