//! # pnc-linalg
//!
//! Dense linear algebra foundation for the printed-neuromorphic-circuit
//! (pNC) reproduction workspace.
//!
//! The crate provides exactly what the rest of the workspace needs and
//! nothing more:
//!
//! * [`Matrix`] — a row-major dense `f64` matrix with the arithmetic,
//!   broadcasting and reduction operations required by the autodiff
//!   engine (`pnc-autodiff`).
//! * [`decomp`] — LU factorization with partial pivoting (used by the
//!   Newton–Raphson loop of the SPICE-level circuit simulator) and a
//!   QR-based least-squares solver (used when fitting closed-form
//!   activation-transfer approximations).
//! * [`cond`] — Hager/Higham 1-norm condition estimation reusing
//!   existing LU factors (the solver observatory's per-solve
//!   `cond1_estimate`).
//! * [`sparse`] — pattern-reusing sparse LU (CSC storage, one-time
//!   symbolic analysis with a fill-reducing ordering, cheap numeric
//!   refactorization, multi-RHS solves) for MNA systems whose sparsity
//!   pattern is fixed across thousands of solves.
//! * [`qmc`] — a Sobol low-discrepancy sequence generator used to sample
//!   activation-circuit design spaces exactly as the paper does
//!   ("We sample 10,000 circuit configurations using a Sobol sequence").
//! * [`stats`] — normalization and summary statistics for surrogate-model
//!   training data.
//! * [`rng`] — seeded random matrix/vector constructors (normal and
//!   uniform) so every experiment in the workspace is reproducible.
//!
//! # Example
//!
//! ```
//! use pnc_linalg::Matrix;
//!
//! let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
//! let b = Matrix::identity(2);
//! let c = a.matmul(&b);
//! assert_eq!(c, a);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cond;
pub mod decomp;
pub mod error;
pub mod matrix;
pub mod qmc;
pub mod rng;
pub mod sparse;
pub mod stats;

pub use error::LinalgError;
pub use matrix::Matrix;
pub use qmc::SobolSequence;
