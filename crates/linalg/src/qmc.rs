//! Quasi-Monte-Carlo sampling: Sobol low-discrepancy sequences.
//!
//! The paper samples 10,000 printed-activation-circuit configurations
//! "using a Sobol sequence" before running SPICE on each to build the
//! surrogate power models (Sec. III-A). This module provides the same
//! generator: a Gray-code Sobol sequence with Joe–Kuo direction numbers
//! for up to [`SobolSequence::MAX_DIM`] dimensions — ample for the
//! activation design spaces `q = [R, W, L]` used in this workspace.

use crate::{LinalgError, Matrix};

/// Primitive-polynomial degree, coefficient and initial direction
/// numbers for dimensions 2..=21 (dimension 1 is the van der Corput
/// sequence in base 2). Values follow the Joe–Kuo "new-joe-kuo-6" table.
const JOE_KUO: &[(u32, u32, &[u32])] = &[
    (1, 0, &[1]),
    (2, 1, &[1, 3]),
    (3, 1, &[1, 3, 1]),
    (3, 2, &[1, 1, 1]),
    (4, 1, &[1, 1, 3, 3]),
    (4, 4, &[1, 3, 5, 13]),
    (5, 2, &[1, 1, 5, 5, 17]),
    (5, 4, &[1, 1, 5, 5, 5]),
    (5, 7, &[1, 1, 7, 11, 19]),
    (5, 11, &[1, 1, 5, 1, 1]),
    (5, 13, &[1, 1, 1, 3, 11]),
    (5, 14, &[1, 3, 5, 5, 31]),
    (6, 1, &[1, 3, 3, 9, 7, 49]),
    (6, 13, &[1, 1, 1, 15, 21, 21]),
    (6, 16, &[1, 3, 1, 13, 27, 49]),
    (6, 19, &[1, 1, 1, 15, 7, 5]),
    (6, 22, &[1, 3, 1, 15, 13, 25]),
    (6, 25, &[1, 1, 5, 5, 19, 61]),
    (7, 1, &[1, 3, 7, 11, 23, 15, 57]),
    (7, 4, &[1, 3, 5, 5, 21, 51, 115]),
];

const BITS: usize = 32;

/// A Gray-code Sobol low-discrepancy sequence over the unit hypercube.
///
/// # Examples
///
/// ```
/// use pnc_linalg::SobolSequence;
///
/// let mut sobol = SobolSequence::new(3).unwrap();
/// let first: Vec<Vec<f64>> = (0..4).map(|_| sobol.next_point()).collect();
/// // All coordinates lie in [0, 1).
/// assert!(first.iter().flatten().all(|&x| (0.0..1.0).contains(&x)));
/// // The first point of the Gray-code sequence is the origin.
/// assert_eq!(first[0], vec![0.0, 0.0, 0.0]);
/// ```
#[derive(Debug, Clone)]
pub struct SobolSequence {
    dim: usize,
    /// Direction integers, `directions[d][bit]`.
    directions: Vec<[u32; BITS]>,
    /// Current integer state per dimension.
    state: Vec<u32>,
    /// Zero-based index of the next point to emit.
    index: u64,
}

impl SobolSequence {
    /// Highest supported dimensionality.
    pub const MAX_DIM: usize = JOE_KUO.len() + 1;

    /// Creates a Sobol sequence over `[0,1)^dim`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::InvalidDimension`] when `dim` is zero or
    /// exceeds [`Self::MAX_DIM`].
    pub fn new(dim: usize) -> Result<Self, LinalgError> {
        if dim == 0 || dim > Self::MAX_DIM {
            return Err(LinalgError::InvalidDimension {
                requested: dim,
                max: Self::MAX_DIM,
            });
        }
        let mut directions = Vec::with_capacity(dim);
        // Dimension 1: van der Corput — v_k = 2^(31-k).
        let mut v0 = [0u32; BITS];
        for (k, v) in v0.iter_mut().enumerate() {
            *v = 1 << (31 - k);
        }
        directions.push(v0);

        for d in 1..dim {
            let (s, a, m_init) = JOE_KUO[d - 1];
            let s = s as usize;
            let mut m = [0u32; BITS];
            m[..s].copy_from_slice(&m_init[..s]);
            // Recurrence: m_k = 2 a_1 m_{k-1} ^ 4 a_2 m_{k-2} ^ ...
            //                    ^ 2^s m_{k-s} ^ m_{k-s}
            for k in s..BITS {
                let mut mk = m[k - s] ^ (m[k - s] << s);
                for i in 1..s {
                    let a_i = (a >> (s - 1 - i)) & 1;
                    if a_i == 1 {
                        mk ^= m[k - i] << i;
                    }
                }
                m[k] = mk;
            }
            let mut v = [0u32; BITS];
            for (k, vk) in v.iter_mut().enumerate() {
                *vk = m[k] << (31 - k);
            }
            directions.push(v);
        }

        Ok(SobolSequence {
            dim,
            directions,
            state: vec![0; dim],
            index: 0,
        })
    }

    /// Dimensionality of the sequence.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of points emitted so far.
    pub fn emitted(&self) -> u64 {
        self.index
    }

    /// Returns the next point in `[0,1)^dim`.
    pub fn next_point(&mut self) -> Vec<f64> {
        let point: Vec<f64> = self
            .state
            .iter()
            .map(|&s| s as f64 / (1u64 << 32) as f64)
            .collect();
        // Advance the Gray-code state: flip by the direction number of
        // the lowest zero bit of the running index.
        let c = (!self.index).trailing_zeros() as usize;
        let c = c.min(BITS - 1);
        for d in 0..self.dim {
            self.state[d] ^= self.directions[d][c];
        }
        self.index += 1;
        point
    }

    /// Generates the next `n` points as an `n × dim` matrix.
    pub fn sample_matrix(&mut self, n: usize) -> Matrix {
        let mut out = Matrix::zeros(n, self.dim);
        for i in 0..n {
            let p = self.next_point();
            out.row_slice_mut(i).copy_from_slice(&p);
        }
        out
    }

    /// Generates `n` points scaled to per-dimension bounds
    /// `[(lo, hi); dim]`, returned as an `n × dim` matrix.
    ///
    /// # Panics
    ///
    /// Panics if `bounds.len() != self.dim()`.
    pub fn sample_scaled(&mut self, n: usize, bounds: &[(f64, f64)]) -> Matrix {
        assert_eq!(
            bounds.len(),
            self.dim,
            "sample_scaled: bounds length {} != dim {}",
            bounds.len(),
            self.dim
        );
        let mut out = self.sample_matrix(n);
        for i in 0..n {
            let row = out.row_slice_mut(i);
            for (j, &(lo, hi)) in bounds.iter().enumerate() {
                row[j] = lo + row[j] * (hi - lo);
            }
        }
        out
    }

    /// Consumes and discards the first `n` points (common practice: drop the origin).
    pub fn burn(&mut self, n: usize) {
        for _ in 0..n {
            let _ = self.next_point();
        }
    }
}

impl Iterator for SobolSequence {
    type Item = Vec<f64>;

    fn next(&mut self) -> Option<Vec<f64>> {
        Some(self.next_point())
    }
}

/// Star-discrepancy proxy: the maximum absolute deviation between the
/// empirical measure of axis-aligned boxes `[0, x)` anchored at sample
/// points and their volume. Exact star discrepancy is exponential to
/// compute; this proxy is adequate for regression tests.
pub fn discrepancy_proxy(points: &Matrix) -> f64 {
    let n = points.rows();
    let d = points.cols();
    let mut worst: f64 = 0.0;
    for a in 0..n {
        let anchor = points.row_slice(a);
        let mut volume = 1.0;
        for &x in anchor {
            volume *= x;
        }
        let count = (0..n)
            .filter(|&i| {
                let r = points.row_slice(i);
                (0..d).all(|j| r[j] < anchor[j])
            })
            .count();
        worst = worst.max((count as f64 / n as f64 - volume).abs());
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_bad_dimensions() {
        assert!(SobolSequence::new(0).is_err());
        assert!(SobolSequence::new(SobolSequence::MAX_DIM + 1).is_err());
        assert!(SobolSequence::new(SobolSequence::MAX_DIM).is_ok());
    }

    #[test]
    fn first_points_dimension_one_are_van_der_corput() {
        let mut s = SobolSequence::new(1).unwrap();
        let pts: Vec<f64> = (0..8).map(|_| s.next_point()[0]).collect();
        assert_eq!(pts, vec![0.0, 0.5, 0.75, 0.25, 0.375, 0.875, 0.625, 0.125]);
    }

    #[test]
    fn two_dim_first_points() {
        let mut s = SobolSequence::new(2).unwrap();
        let p0 = s.next_point();
        let p1 = s.next_point();
        let p2 = s.next_point();
        assert_eq!(p0, vec![0.0, 0.0]);
        assert_eq!(p1, vec![0.5, 0.5]);
        assert_eq!(p2, vec![0.75, 0.25]);
    }

    #[test]
    fn points_stay_in_unit_cube() {
        let mut s = SobolSequence::new(6).unwrap();
        for _ in 0..2048 {
            let p = s.next_point();
            assert!(p.iter().all(|&x| (0.0..1.0).contains(&x)), "{p:?}");
        }
    }

    #[test]
    fn balanced_in_each_dimension() {
        // After 2^k points each dimension has exactly half below 0.5.
        let mut s = SobolSequence::new(5).unwrap();
        let m = s.sample_matrix(256);
        for j in 0..5 {
            let below = m.col_vec(j).iter().filter(|&&x| x < 0.5).count();
            assert_eq!(below, 128, "dimension {j} unbalanced");
        }
    }

    #[test]
    fn lower_discrepancy_than_random() {
        use rand::{Rng, SeedableRng};
        let mut s = SobolSequence::new(2).unwrap();
        s.burn(1); // drop origin
        let sobol = s.sample_matrix(256);
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        let random = Matrix::from_fn(256, 2, |_, _| rng.gen::<f64>());
        let ds = discrepancy_proxy(&sobol);
        let dr = discrepancy_proxy(&random);
        assert!(ds < dr, "sobol {ds} should beat random {dr}");
    }

    #[test]
    fn scaled_sampling_respects_bounds() {
        let mut s = SobolSequence::new(3).unwrap();
        let bounds = [(10.0, 20.0), (-1.0, 1.0), (1e3, 1e6)];
        let m = s.sample_scaled(100, &bounds);
        for i in 0..100 {
            let r = m.row_slice(i);
            for (j, &(lo, hi)) in bounds.iter().enumerate() {
                assert!(r[j] >= lo && r[j] <= hi, "({i},{j}) = {}", r[j]);
            }
        }
    }

    #[test]
    fn iterator_interface() {
        let s = SobolSequence::new(2).unwrap();
        let pts: Vec<Vec<f64>> = s.take(10).collect();
        assert_eq!(pts.len(), 10);
    }

    #[test]
    fn emitted_counts_points() {
        let mut s = SobolSequence::new(2).unwrap();
        s.burn(5);
        assert_eq!(s.emitted(), 5);
    }

    #[test]
    fn distinct_points() {
        let mut s = SobolSequence::new(4).unwrap();
        let m = s.sample_matrix(512);
        for i in 0..511 {
            let a = m.row_slice(i);
            let b = m.row_slice(i + 1);
            assert_ne!(a, b, "consecutive duplicates at {i}");
        }
    }
}
